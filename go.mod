module rdfindexes

go 1.24
