module rdfindexes

go 1.22
