// Benchmarks regenerating the paper's tables and figures as testing.B
// benches, one family per experiment. They run on small calibrated
// datasets so `go test -bench=. -benchmem` completes quickly; the full
// paper-shaped tables are produced by cmd/rdfbench (see EXPERIMENTS.md).
package rdfindexes

import (
	"sync"
	"testing"

	"rdfindexes/internal/bench"
	"rdfindexes/internal/core"
	"rdfindexes/internal/gen"
	"rdfindexes/internal/hdt"
	"rdfindexes/internal/rdf3x"
	"rdfindexes/internal/seq"
	"rdfindexes/internal/sparql"
	"rdfindexes/internal/trie"
	"rdfindexes/internal/triplebit"
)

const benchTriples = 100000

var (
	fixtureOnce sync.Once
	fx          struct {
		d       *core.Dataset
		sample  []core.Triple
		layouts map[string]core.Index
		hdt     *hdt.Index
		tb      *triplebit.Index
		r3      *rdf3x.Index
		wd      *gen.WatDivData
		lubm    *gen.LUBMData
	}
)

func fixture(b *testing.B) {
	fixtureOnce.Do(func() {
		d, err := gen.GeneratePreset("dbpedia", benchTriples, 1)
		if err != nil {
			panic(err)
		}
		fx.d = d
		fx.sample = gen.SampleTriples(d, 1000, 2)
		fx.layouts = map[string]core.Index{}
		for _, l := range []core.Layout{core.Layout3T, core.LayoutCC, core.Layout2Tp, core.Layout2To} {
			x, err := core.Build(d, l)
			if err != nil {
				panic(err)
			}
			fx.layouts[l.String()] = x
		}
		if fx.hdt, err = hdt.Build(d); err != nil {
			panic(err)
		}
		if fx.tb, err = triplebit.Build(d); err != nil {
			panic(err)
		}
		if fx.r3, err = rdf3x.Build(d); err != nil {
			panic(err)
		}
		fx.wd = gen.WatDiv(3000, 3)
		fx.lubm = gen.LUBM(4, 4)
	})
	b.ReportAllocs()
}

func drain(b *testing.B, st bench.Store, pats []core.Pattern) {
	b.Helper()
	total := 0
	var buf [512]core.Triple
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pats[i%len(pats)]
		it := st.Select(p)
		for {
			k := it.NextBatch(buf[:])
			if k == 0 {
				break
			}
			total += k
		}
	}
	if total > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(total), "ns/triple")
	}
}

// BenchmarkTable1 measures access/find/scan of each sequence
// representation on the second level of the SPO trie.
func BenchmarkTable1(b *testing.B) {
	fixture(b)
	for _, kind := range []seq.Kind{seq.KindCompact, seq.KindEF, seq.KindPEF, seq.KindVByte} {
		cfg := trie.Config{Nodes1: kind, Nodes2: kind, Ptr0: seq.KindEF, Ptr1: seq.KindEF}
		scratch := make([]core.Triple, len(fx.d.Triples))
		copy(scratch, fx.d.Triples)
		t, err := trie.Build(len(scratch), fx.d.NS, func(i int) (uint32, uint32, uint32) {
			tr := scratch[i]
			return uint32(tr.S), uint32(tr.P), uint32(tr.O)
		}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		nodes := t.Nodes(1)
		type probe struct {
			b1, e1, j int
			p         uint32
		}
		var probes []probe
		for _, tr := range fx.sample {
			b1, e1 := t.RootRange(uint32(tr.S))
			j := t.FindChild1(b1, e1, uint32(tr.P))
			if j >= 0 {
				probes = append(probes, probe{b1, e1, j, uint32(tr.P)})
			}
		}
		b.Run("access/"+kind.String(), func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				p := probes[i%len(probes)]
				sink += nodes.At(p.b1, p.j)
			}
			_ = sink
		})
		b.Run("find/"+kind.String(), func(b *testing.B) {
			var sink int
			for i := 0; i < b.N; i++ {
				p := probes[i%len(probes)]
				sink += nodes.Find(p.b1, p.e1, uint64(p.p))
			}
			_ = sink
		})
		b.Run("scan/"+kind.String(), func(b *testing.B) {
			var sink uint64
			it := nodes.Iter(0, nodes.Len())
			for i := 0; i < b.N; i++ {
				v, ok := it.Next()
				if !ok {
					it = nodes.Iter(0, nodes.Len())
					continue
				}
				sink += v
			}
			_ = sink
		})
	}
}

// BenchmarkTable4 measures every selection pattern on every layout.
func BenchmarkTable4(b *testing.B) {
	fixture(b)
	for _, name := range []string{"3T", "CC", "2Tp", "2To"} {
		x := fx.layouts[name]
		for _, shape := range core.AllShapes() {
			if shape == core.Shapexxx {
				continue // full scans dominate -bench time; covered by tests
			}
			pats := gen.PatternWorkload(fx.sample, shape)
			b.Run(name+"/"+shape.String(), func(b *testing.B) {
				drain(b, x, pats)
			})
		}
	}
}

// BenchmarkTable5 measures the baseline systems on the paper's six
// Table 5 patterns.
func BenchmarkTable5(b *testing.B) {
	fixture(b)
	stores := map[string]bench.Store{
		"2Tp": fx.layouts["2Tp"], "HDT-FoQ": fx.hdt, "TripleBit": fx.tb, "RDF-3X": fx.r3,
	}
	shapes := []core.Shape{core.ShapexPO, core.ShapeSxO, core.ShapeSPx,
		core.ShapeSxx, core.ShapexPx, core.ShapexxO}
	for name, st := range stores {
		for _, shape := range shapes {
			pats := gen.PatternWorkload(fx.sample, shape)
			b.Run(name+"/"+shape.String(), func(b *testing.B) {
				drain(b, st, pats)
			})
		}
	}
}

// BenchmarkTable6 replays the WatDiv and LUBM query-log decompositions.
func BenchmarkTable6(b *testing.B) {
	fixture(b)
	p2, err := core.Build2Tp(fx.wd.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	queries := gen.WatDivQueries(fx.wd, 10, 5)
	var patterns []core.Pattern
	for _, q := range queries {
		ps, err := sparql.Decompose(q, p2)
		if err != nil {
			b.Fatal(err)
		}
		patterns = append(patterns, ps...)
	}
	h, err := hdt.Build(fx.wd.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	tb, err := triplebit.Build(fx.wd.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	for name, st := range map[string]bench.Store{"2Tp": p2, "HDT-FoQ": h, "TripleBit": tb} {
		b.Run("watdiv/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sparql.Replay(patterns, st.(sparql.Store))
			}
		})
	}
}

// BenchmarkFig7 contrasts select and enumerate on S?O for low and high
// subject out-degrees.
func BenchmarkFig7(b *testing.B) {
	fixture(b)
	buckets := gen.SubjectsByOutDegree(fx.d)
	bySubject := map[core.ID]core.Triple{}
	for _, tr := range fx.d.Triples {
		bySubject[tr.S] = tr
	}
	makePats := func(degLo, degHi int) []core.Pattern {
		var pats []core.Pattern
		for c := degLo; c <= degHi; c++ {
			for _, s := range buckets[c] {
				tr := bySubject[s]
				pats = append(pats, core.Pattern{S: tr.S, P: core.Wildcard, O: tr.O})
				if len(pats) >= 400 {
					return pats
				}
			}
		}
		return pats
	}
	low := makePats(1, 3)
	high := makePats(12, 60)
	for name, pats := range map[string][]core.Pattern{"lowC": low, "highC": high} {
		if len(pats) == 0 {
			continue
		}
		b.Run("select3T/"+name, func(b *testing.B) { drain(b, fx.layouts["3T"], pats) })
		b.Run("enumerate2Tp/"+name, func(b *testing.B) { drain(b, fx.layouts["2Tp"], pats) })
	}
}

// BenchmarkRangeQueries measures range-constrained patterns through the R
// structure (Section 4.1).
func BenchmarkRangeQueries(b *testing.B) {
	fixture(b)
	p2, err := core.Build2Tp(fx.wd.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	r := fx.wd.R()
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint64(i*37) % 100000
		it := core.SelectValueRange(p2, r, core.ID(gen.WdPrice), lo, lo+5000)
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			total++
		}
	}
	if total > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(total), "ns/triple")
	}
}

// BenchmarkBuild measures index construction throughput per layout.
func BenchmarkBuild(b *testing.B) {
	fixture(b)
	for _, layout := range []core.Layout{core.Layout3T, core.LayoutCC, core.Layout2Tp, core.Layout2To} {
		b.Run(layout.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(fx.d, layout); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(fx.d.Len())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mtriples/s")
		})
	}
}

// BenchmarkSPARQLExecute measures full query execution (plan + join) on
// the LUBM-like graph.
func BenchmarkSPARQLExecute(b *testing.B) {
	fixture(b)
	x, err := core.Build2Tp(fx.lubm.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	queries := gen.LUBMQueries(fx.lubm, 12, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, err := sparql.Execute(q, x, nil); err != nil {
			b.Fatal(err)
		}
	}
}
