// Command rdfbench reproduces the paper's evaluation. Each experiment
// prints a table shaped like the corresponding table or figure of the
// paper; EXPERIMENTS.md records a full run with commentary.
//
// Usage:
//
//	rdfbench -exp table1|table2|table3|table4|table5|table6|fig6a|fig6b|fig7|range|ablation|all \
//	         [-triples 300000] [-queries 2000] [-runs 3] [-seed 1]
//
// With -json, rdfbench instead writes machine-readable measurements —
// ns/triple and bits/triple per layout × pattern shape — to one
// BENCH_<preset>.json file per requested preset, so the performance
// trajectory can be tracked across commits:
//
//	rdfbench -json [-preset dblp,watdiv] [-out .] [-triples N] [-queries N] [-runs N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rdfindexes/internal/bench"
)

var experiments = []struct {
	name string
	what string
	run  func(bench.Config) ([]*bench.Table, error)
}{
	{"table1", "compressor space/time on trie levels (DBpedia-shaped)", bench.Table1},
	{"table2", "children per trie node (DBpedia-shaped)", bench.Table2},
	{"table3", "dataset statistics (all six shapes)", bench.Table3},
	{"table4", "3T vs CC vs 2To vs 2Tp, space and per-pattern speed", bench.Table4},
	{"table5", "2Tp vs HDT-FoQ vs TripleBit (and RDF-3X*), space and speed", bench.Table5},
	{"table6", "WatDiv and LUBM query-log decompositions", bench.Table6},
	{"fig6a", "??O by decreasing matches: select vs inverted", bench.Fig6a},
	{"fig6b", "?P? by decreasing matches: select vs select+CC vs inverted", bench.Fig6b},
	{"fig7", "S?O by subject out-degree: select vs enumerate", bench.Fig7},
	{"range", "range-constrained patterns via the R structure", bench.RangeQueries},
	{"breakdown", "per-level space shares of the 3T index (Section 3.1)", bench.Breakdown},
	{"ablation", "encoder choices and cross-compression variants", bench.Ablation},
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run (or 'all')")
		triples = flag.Int("triples", 300000, "synthetic dataset size")
		queries = flag.Int("queries", 2000, "sampled queries per pattern")
		runs    = flag.Int("runs", 3, "measurement repetitions (best is kept)")
		seed    = flag.Int64("seed", 1, "generator seed")
		list    = flag.Bool("list", false, "list experiments and exit")
		jsonOut = flag.Bool("json", false, "emit BENCH_<preset>.json files instead of tables")
		presets = flag.String("preset", "dblp", "comma-separated dataset presets for -json")
		outDir  = flag.String("out", ".", "output directory for -json files")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("  %-8s %s\n", e.name, e.what)
		}
		return
	}

	cfg := bench.Config{Triples: *triples, Queries: *queries, Runs: *runs, Seed: *seed}

	if *jsonOut {
		for _, preset := range strings.Split(*presets, ",") {
			preset = strings.TrimSpace(preset)
			if preset == "" {
				continue
			}
			rep, err := bench.MeasureJSON(cfg, preset)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rdfbench: %s: %v\n", preset, err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, "BENCH_"+preset+".json")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rdfbench: %v\n", err)
				os.Exit(1)
			}
			if err := rep.WriteJSON(f); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "rdfbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d triples, %d measurements)\n", path, rep.Triples, len(rep.Patterns))
		}
		return
	}
	ran := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran = true
		fmt.Printf("=== %s: %s ===\n", e.name, e.what)
		start := time.Now()
		tables, err := e.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rdfbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("\n(%s completed in %v)\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "rdfbench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
}
