// Command rdfbench reproduces the paper's evaluation. Each experiment
// prints a table shaped like the corresponding table or figure of the
// paper; EXPERIMENTS.md records a full run with commentary.
//
// Usage:
//
//	rdfbench -exp table1|table2|table3|table4|table5|table6|fig6a|fig6b|fig7|range|ablation|all \
//	         [-triples 300000] [-queries 2000] [-runs 3] [-seed 1]
//
// With -json, rdfbench instead writes machine-readable measurements —
// ns/triple and bits/triple per layout × pattern shape, materialized
// rows/sec per serializer, and serving-path latency percentiles
// (p50/p95/p99 at 1, 4 and 16 goroutines) — to one BENCH_<preset>.json
// file per requested preset, so the performance trajectory can be
// tracked across commits. -baseline gates the run against a committed
// report: throughputs must not fall below (1-tolerance)×baseline, and
// p50/p99 latency must not rise past the doubled tolerance plus an
// absolute noise floor:
//
//	rdfbench -json [-preset dblp,watdiv] [-out .] [-triples N] [-queries N] [-runs N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rdfindexes/internal/bench"
)

var experiments = []struct {
	name string
	what string
	run  func(bench.Config) ([]*bench.Table, error)
}{
	{"table1", "compressor space/time on trie levels (DBpedia-shaped)", bench.Table1},
	{"table2", "children per trie node (DBpedia-shaped)", bench.Table2},
	{"table3", "dataset statistics (all six shapes)", bench.Table3},
	{"table4", "3T vs CC vs 2To vs 2Tp, space and per-pattern speed", bench.Table4},
	{"table5", "2Tp vs HDT-FoQ vs TripleBit (and RDF-3X*), space and speed", bench.Table5},
	{"table6", "WatDiv and LUBM query-log decompositions", bench.Table6},
	{"fig6a", "??O by decreasing matches: select vs inverted", bench.Fig6a},
	{"fig6b", "?P? by decreasing matches: select vs select+CC vs inverted", bench.Fig6b},
	{"fig7", "S?O by subject out-degree: select vs enumerate", bench.Fig7},
	{"range", "range-constrained patterns via the R structure", bench.RangeQueries},
	{"breakdown", "per-level space shares of the 3T index (Section 3.1)", bench.Breakdown},
	{"ablation", "encoder choices and cross-compression variants", bench.Ablation},
	{"parallel", "concurrent query throughput on one shared index (1/4/16 goroutines)", bench.ServeParallel},
	{"update", "amortized-update throughput and read interference by merge threshold", bench.UpdateThroughput},
	{"shard", "sharded store: parallel build time and scatter-gather throughput at 1/2/4/8 shards", bench.ShardScaling},
	{"dict", "dictionary materialization: cursor/batch extraction, hash locate, NDJSON rows/sec", bench.DictMaterialization},
	{"repl", "WAL-shipping replication: bootstrap, shipping lag and read fan-out at 1/2/4/8 followers", bench.ReplFanOut},
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (or 'all')")
		triples  = flag.Int("triples", 300000, "synthetic dataset size")
		queries  = flag.Int("queries", 2000, "sampled queries per pattern")
		runs     = flag.Int("runs", 3, "measurement repetitions (best is kept)")
		seed     = flag.Int64("seed", 1, "generator seed")
		list     = flag.Bool("list", false, "list experiments and exit")
		jsonOut  = flag.Bool("json", false, "emit BENCH_<preset>.json files instead of tables")
		presets  = flag.String("preset", "dblp", "comma-separated dataset presets for -json")
		outDir   = flag.String("out", ".", "output directory for -json files")
		baseline = flag.String("baseline", "", "directory holding committed BENCH_<preset>.json baselines to gate against (with -json)")
		tol      = flag.Float64("tolerance", 0.25, "ns/triple regression tolerance for -baseline (0.25 = fail at >25% slower)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("  %-8s %s\n", e.name, e.what)
		}
		return
	}

	cfg := bench.Config{Triples: *triples, Queries: *queries, Runs: *runs, Seed: *seed}

	if *jsonOut {
		regressed := false
		for _, preset := range strings.Split(*presets, ",") {
			preset = strings.TrimSpace(preset)
			if preset == "" {
				continue
			}
			// Load the baseline before anything is written: with -out and
			// -baseline pointing at the same directory the report below
			// overwrites the baseline file, and a gate comparing the fresh
			// report against itself would always pass.
			var base *bench.JSONReport
			if *baseline != "" {
				basePath := filepath.Join(*baseline, "BENCH_"+preset+".json")
				bf, err := os.Open(basePath)
				if err != nil {
					// A missing baseline is not a regression: new presets
					// gate from their next commit on.
					fmt.Fprintf(os.Stderr, "rdfbench: no baseline %s, skipping gate\n", basePath)
				} else {
					base, err = bench.ReadJSON(bf)
					bf.Close()
					if err != nil {
						fmt.Fprintf(os.Stderr, "rdfbench: %s: %v\n", basePath, err)
						os.Exit(1)
					}
				}
			}
			rep, err := bench.MeasureJSON(cfg, preset)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rdfbench: %s: %v\n", preset, err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, "BENCH_"+preset+".json")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rdfbench: %v\n", err)
				os.Exit(1)
			}
			if err := rep.WriteJSON(f); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "rdfbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d triples, %d measurements)\n", path, rep.Triples, len(rep.Patterns))

			if base != nil {
				regs := bench.Compare(base, rep, *tol)
				if len(regs) == 0 {
					fmt.Printf("baseline BENCH_%s.json: ok (tolerance %.0f%%)\n", preset, *tol*100)
					continue
				}
				regressed = true
				fmt.Fprintf(os.Stderr, "rdfbench: %d regression(s) vs baseline BENCH_%s.json:\n", len(regs), preset)
				for _, r := range regs {
					fmt.Fprintf(os.Stderr, "  %s\n", r)
				}
			}
		}
		if regressed {
			os.Exit(1)
		}
		return
	}
	ran := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran = true
		fmt.Printf("=== %s: %s ===\n", e.name, e.what)
		start := time.Now()
		tables, err := e.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rdfbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("\n(%s completed in %v)\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "rdfbench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
}
