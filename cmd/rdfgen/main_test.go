package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// generate runs rdfgen in-process and returns the produced bytes.
func generate(t *testing.T, args ...string) []byte {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out, io.Discard); err != nil {
		t.Fatalf("rdfgen %s: %v", strings.Join(args, " "), err)
	}
	return out.Bytes()
}

// TestSeedReproducibility pins the -seed contract the shard benchmarks
// rely on: identical seeds produce byte-identical datasets, different
// seeds produce different ones — for both statistical and structured
// presets and both output formats.
func TestSeedReproducibility(t *testing.T) {
	cases := [][]string{
		{"-preset", "dblp", "-triples", "5000", "-format", "bin"},
		{"-preset", "dbpedia", "-triples", "5000", "-format", "nt"},
		{"-preset", "lubm-structured", "-scale", "2", "-format", "bin"},
		{"-preset", "watdiv-structured", "-scale", "50", "-format", "bin"},
	}
	for _, base := range cases {
		name := base[1] + "/" + base[5]
		a := generate(t, append(base, "-seed", "7")...)
		b := generate(t, append(base, "-seed", "7")...)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: same seed produced different datasets", name)
		}
		c := generate(t, append(base, "-seed", "8")...)
		if bytes.Equal(a, c) {
			t.Errorf("%s: different seeds produced identical datasets", name)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-preset", "nope"}, &out, io.Discard); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if err := run([]string{"-preset", "dblp", "-triples", "100", "-format", "nope"}, &out, io.Discard); err == nil {
		t.Fatal("unknown format accepted")
	}
}
