// Command rdfgen generates the synthetic datasets used by the
// experiments, either as compact binary dataset files (consumed by
// rdfstore and ReadDataset) or as N-Triples text with synthetic URIs.
//
// Usage:
//
//	rdfgen -preset dbpedia -triples 1000000 -seed 1 -out dbpedia.bin
//	rdfgen -preset lubm-structured -scale 50 -out lubm.bin
//	rdfgen -preset watdiv-structured -scale 5000 -format nt -out watdiv.nt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"rdfindexes/internal/core"
	"rdfindexes/internal/gen"
)

func main() {
	var (
		preset  = flag.String("preset", "dbpedia", "dataset shape: dblp|geonames|dbpedia|watdiv|lubm|freebase|lubm-structured|watdiv-structured")
		triples = flag.Int("triples", 1000000, "triple count (statistical presets)")
		scale   = flag.Int("scale", 20, "scale for structured presets (universities / products)")
		seed    = flag.Int64("seed", 1, "generator seed")
		format  = flag.String("format", "bin", "output format: bin (binary dataset) or nt (N-Triples)")
		out     = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var (
		d   *core.Dataset
		err error
	)
	switch *preset {
	case "lubm-structured":
		d = gen.LUBM(*scale, *seed).Dataset
	case "watdiv-structured":
		d = gen.WatDiv(*scale, *seed).Dataset
	default:
		d, err = gen.GeneratePreset(*preset, *triples, *seed)
		if err != nil {
			fatal(err)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	switch *format {
	case "bin":
		if err := core.WriteDataset(w, d); err != nil {
			fatal(err)
		}
	case "nt":
		bw := bufio.NewWriter(w)
		for _, t := range d.Triples {
			fmt.Fprintf(bw, "<http://gen/s%d> <http://gen/p%d> <http://gen/o%d> .\n", t.S, t.P, t.O)
		}
		if err := bw.Flush(); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	st := d.ComputeStats()
	fmt.Fprintf(os.Stderr, "rdfgen: %d triples (S=%d P=%d O=%d) written\n",
		st.Triples, st.DistinctS, st.DistinctP, st.DistinctO)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rdfgen: %v\n", err)
	os.Exit(1)
}
