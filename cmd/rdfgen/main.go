// Command rdfgen generates the synthetic datasets used by the
// experiments, either as compact binary dataset files (consumed by
// rdfstore and ReadDataset) or as N-Triples text with synthetic URIs.
//
// Generation is deterministic in -seed: the same preset, size and seed
// always produce byte-identical output, so benchmark datasets (the
// shard-scaling experiment in particular) are reproducible across
// machines and commits; vary -seed to get independent instances.
//
// Usage:
//
//	rdfgen -preset dbpedia -triples 1000000 -seed 1 -out dbpedia.bin
//	rdfgen -preset lubm-structured -scale 50 -out lubm.bin
//	rdfgen -preset watdiv-structured -scale 5000 -format nt -out watdiv.nt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"rdfindexes/internal/core"
	"rdfindexes/internal/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "rdfgen: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable entry point: it parses flags, generates the
// dataset, and writes it to -out (or stdout).
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rdfgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		preset  = fs.String("preset", "dbpedia", "dataset shape: dblp|geonames|dbpedia|watdiv|lubm|freebase|lubm-structured|watdiv-structured")
		triples = fs.Int("triples", 1000000, "triple count (statistical presets)")
		scale   = fs.Int("scale", 20, "scale for structured presets (universities / products)")
		seed    = fs.Int64("seed", 1, "generator seed; identical seeds reproduce identical datasets")
		format  = fs.String("format", "bin", "output format: bin (binary dataset) or nt (N-Triples)")
		out     = fs.String("out", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		d   *core.Dataset
		err error
	)
	switch *preset {
	case "lubm-structured":
		d = gen.LUBM(*scale, *seed).Dataset
	case "watdiv-structured":
		d = gen.WatDiv(*scale, *seed).Dataset
	default:
		d, err = gen.GeneratePreset(*preset, *triples, *seed)
		if err != nil {
			return err
		}
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch *format {
	case "bin":
		if err := core.WriteDataset(w, d); err != nil {
			return err
		}
	case "nt":
		bw := bufio.NewWriter(w)
		for _, t := range d.Triples {
			fmt.Fprintf(bw, "<http://gen/s%d> <http://gen/p%d> <http://gen/o%d> .\n", t.S, t.P, t.O)
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	st := d.ComputeStats()
	fmt.Fprintf(stderr, "rdfgen: %d triples (S=%d P=%d O=%d) written\n",
		st.Triples, st.DistinctS, st.DistinctP, st.DistinctO)
	return nil
}
