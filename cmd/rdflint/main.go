// Command rdflint is the repository's vettool: it runs the
// internal/analysis suite (hotpath, poolhygiene, nonretention) under
// `go vet -vettool=<path-to-rdflint> ./...`.
//
// The program speaks go vet's unitchecker protocol directly so that it
// needs nothing beyond the standard library: vet probes it with
// -V=full (version fingerprint for build caching) and -flags (the
// tool's flag schema, empty here), then invokes it once per package
// with a vet.cfg JSON file as the last argument. Dependency packages
// arrive with VetxOnly set — for those the tool only extracts the
// //rdf: annotation facts (a parse-only scan) into the .vetx slot vet
// provides, so that call-site checks in dependent packages can see
// annotations on functions declared elsewhere. For the package under
// analysis it type-checks the sources against the export data vet
// lists in PackageFile, runs the analyzers, and prints diagnostics to
// stderr in the file:line:col form vet relays; exit status 2 tells vet
// findings were reported.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"rdfindexes/internal/analysis"
)

// vetConfig mirrors the fields of go vet's per-package vet.cfg file
// that rdflint consumes.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: go vet -vettool=$(which rdflint) ./...")
		return 1
	}
	switch args[0] {
	case "-V=full", "--V=full":
		// The version line is hashed into vet's action cache; bump the
		// suffix when analyzer behavior changes to invalidate cached
		// results.
		fmt.Println("rdflint version rdflint-1")
		return 0
	case "-flags", "--flags":
		fmt.Println("[]")
		return 0
	case "-print-path", "--print-path":
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println(exe)
		return 0
	}

	cfgPath := args[len(args)-1]
	if !strings.HasSuffix(cfgPath, ".cfg") {
		fmt.Fprintf(os.Stderr, "rdflint: expected a vet.cfg path, got %q\n", cfgPath)
		return 1
	}
	b, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(b, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "rdflint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	return analyze(&cfg)
}

func analyze(cfg *vetConfig) int {
	fset := token.NewFileSet()
	var files []*ast.File
	// Standard-library units can't carry //rdf: annotations; skip even
	// the parse and publish empty facts.
	if !cfg.Standard[cfg.ImportPath] {
		for _, name := range cfg.GoFiles {
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
			if err != nil {
				if cfg.SucceedOnTypecheckFailure {
					return 0
				}
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			files = append(files, f)
		}
	}

	facts := analysis.ScanFacts(files)
	if cfg.VetxOutput != "" {
		if err := analysis.WriteFacts(cfg.VetxOutput, facts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	pkg, info, err := typecheck(cfg, fset, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "rdflint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	factMap := analysis.FactMap{cfg.ImportPath: facts}
	for path, vetx := range cfg.PackageVetx {
		factMap[path] = analysis.ReadFacts(vetx)
	}

	pass := analysis.NewPass(fset, files, pkg, info, factMap)
	diags := pass.Run(analysis.Analyzers())
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// typecheck resolves the package against the export data files vet
// listed for its dependencies, using the gc importer's lookup hook.
func typecheck(cfg *vetConfig, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		exportFile, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exportFile)
	}
	tc := &types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(compiler, "amd64"),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
