package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettoolEndToEnd drives the real protocol: build rdflint, then run
// `go vet -vettool` over a throwaway module seeded with one violation
// per analyzer. The nonretention case crosses a package boundary, so it
// also proves the facts pipeline (annotations exported by package a,
// consumed while vetting package b).
func TestVettoolEndToEnd(t *testing.T) {
	modRoot := findModRoot(t)
	tmp := t.TempDir()
	tool := filepath.Join(tmp, "rdflint")

	build := exec.Command("go", "build", "-o", tool, "./cmd/rdflint")
	build.Dir = modRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building rdflint: %v\n%s", err, out)
	}

	target := filepath.Join(tmp, "mod")
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(target, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module e2e\n\ngo 1.22\n")
	write("a/a.go", `// Package a exports an annotated streaming API.
package a

//rdf:nonretaining
func Stream(n int, emit func(map[string]uint64)) {
	b := map[string]uint64{}
	for i := 0; i < n; i++ {
		b["x"] = uint64(i)
		emit(b)
	}
}
`)
	write("b/b.go", `// Package b seeds one violation per analyzer.
package b

import (
	"sync"

	"e2e/a"
)

var pool = sync.Pool{New: func() any { return new([]byte) }}

//rdf:hotpath
func Hot(n int) []byte {
	return make([]byte, n) // hotpath: make in a hot function
}

func Leak() {
	v := pool.Get().(*[]byte)
	_ = v
} // poolhygiene: no Put on this path

func Retain() map[string]uint64 {
	var last map[string]uint64
	a.Stream(3, func(b map[string]uint64) {
		last = b // nonretention: cross-package annotated callee
	})
	return last
}
`)

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = target
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed on seeded violations; output:\n%s", out)
	}
	text := string(out)
	for _, wantFrag := range []string{
		"hotpath: hot path: make allocates",
		"poolhygiene: sync.Pool value v is not returned to the pool",
		"nonretention: callback argument assigned outside the callback",
	} {
		if !strings.Contains(text, wantFrag) {
			t.Errorf("vet output missing %q\noutput:\n%s", wantFrag, text)
		}
	}

	// A clean module must vet clean through the same pipeline.
	clean := filepath.Join(tmp, "clean")
	if err := os.MkdirAll(filepath.Join(clean, "p"), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(clean, "go.mod"), []byte("module clean\n\ngo 1.22\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(clean, "p", "p.go"), []byte(`// Package p is violation-free.
package p

//rdf:hotpath
func Sum(xs []uint64) uint64 {
	var s uint64
	for _, x := range xs {
		s += x
	}
	return s
}
`), 0o666); err != nil {
		t.Fatal(err)
	}
	vetClean := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vetClean.Dir = clean
	if out, err := vetClean.CombinedOutput(); err != nil {
		t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
	}
}

func findModRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
