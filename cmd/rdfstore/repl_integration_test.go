package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildBinary compiles the rdfstore binary for the multi-process
// replication test: real processes over localhost, not in-process
// handler calls, so process death is a real TCP reset.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rdfstore")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// serveProc is one running `rdfstore serve` child with the addresses
// parsed off its startup banner.
type serveProc struct {
	cmd      *exec.Cmd
	httpAddr string // "serving ... on ADDR"
	replAddr string // "replication leader listening on ADDR" (leaders only)
}

// startServe launches `rdfstore serve` with the given flags and blocks
// until the serving banner announces the bound HTTP address.
func startServe(t *testing.T, bin string, args ...string) *serveProc {
	t.Helper()
	p := &serveProc{cmd: exec.Command(bin, args...)}
	p.cmd.Stderr = os.Stderr
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})

	ready := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if addr, ok := strings.CutPrefix(line, "replication leader listening on "); ok {
				p.replAddr = addr
			}
			if i := strings.Index(line, ") on "); strings.HasPrefix(line, "serving ") && i >= 0 {
				p.httpAddr = line[i+len(") on "):]
				ready <- nil
				break
			}
		}
		// Keep draining so the child never blocks on a full pipe.
		io.Copy(io.Discard, stdout)
	}()
	select {
	case <-ready:
	case <-time.After(30 * time.Second):
		t.Fatalf("rdfstore %s never announced its serving address", strings.Join(args, " "))
	}
	return p
}

// httpGet fetches a URL with a short timeout, returning status and body.
func httpGet(t *testing.T, rawURL string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(rawURL)
	if err != nil {
		return 0, err.Error()
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// waitStatus polls url until it answers with want, failing the test at
// the deadline.
func waitStatus(t *testing.T, rawURL string, want int, what string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body := httpGet(t, rawURL)
		if code == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: still %d (%q), want %d", what, code, body, want)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestReplicationMultiProcess is the CI failover scenario: a leader and
// a follower run as separate OS processes over localhost, the follower
// bootstraps its store over the replication link, writes stream through
// live, the leader is SIGKILLed mid-stream (follower keeps serving its
// last verified view and reports not-ready), a successor leader binds
// the same replication address, and the follower reconnects and
// converges on the post-failover writes without manual intervention.
func TestReplicationMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test: builds the binary and spawns servers")
	}
	bin := buildBinary(t)
	dir := t.TempDir()
	nt := filepath.Join(dir, "data.nt")
	if err := os.WriteFile(nt, []byte(sampleNT), 0o644); err != nil {
		t.Fatal(err)
	}
	leaderIdx := filepath.Join(dir, "leader.idx")
	replicaIdx := filepath.Join(dir, "replica.idx")
	runOK(t, "build", "-in", nt, "-layout", "2Tp", "-out", leaderIdx)

	leader := startServe(t, bin, "serve", "-store", leaderIdx,
		"-addr", "127.0.0.1:0", "-replicate-addr", "127.0.0.1:0")
	if leader.replAddr == "" {
		t.Fatal("leader did not announce a replication address")
	}
	// The follower has no store file: it bootstraps over the link.
	follower := startServe(t, bin, "serve", "-store", replicaIdx,
		"-addr", "127.0.0.1:0", "-follow", leader.replAddr)

	insert := func(httpAddr string, i int) (int, string) {
		vals := url.Values{
			"s": {fmt.Sprintf("<http://ex/new%d>", i)},
			"p": {"<http://ex/knows>"},
			"o": {"<http://ex/alice>"},
		}
		client := &http.Client{Timeout: 5 * time.Second}
		resp, err := client.PostForm("http://"+httpAddr+"/v1/insert", vals)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	for i := 0; i < 8; i++ {
		if code, body := insert(leader.httpAddr, i); code != 200 {
			t.Fatalf("leader insert %d: %d %q", i, code, body)
		}
	}

	// Writes on the replica are refused toward the leader.
	waitStatus(t, "http://"+follower.httpAddr+"/readyz", 200, "follower readiness")
	if code, body := insert(follower.httpAddr, 99); code != http.StatusForbidden {
		t.Fatalf("replica accepted a write: %d %q", code, body)
	}
	probe := "http://" + follower.httpAddr + "/v1/query?s=" + url.QueryEscape("<http://ex/new7>")
	waitStatus(t, probe, 200, "replicated triple on follower")

	// Hard failover: SIGKILL, no drain, no WAL close.
	if err := leader.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	leader.cmd.Wait()
	waitStatus(t, "http://"+follower.httpAddr+"/readyz", 503, "follower noticing dead leader")
	if code, body := httpGet(t, probe); code != 200 {
		t.Fatalf("follower stopped serving during failover: %d %q", code, body)
	}

	// Successor leader on the same replication address and store; the
	// follower's backoff loop finds it and resumes.
	leader = startServe(t, bin, "serve", "-store", leaderIdx,
		"-addr", "127.0.0.1:0", "-replicate-addr", leader.replAddr)
	for i := 8; i < 12; i++ {
		if code, body := insert(leader.httpAddr, i); code != 200 {
			t.Fatalf("successor insert %d: %d %q", i, code, body)
		}
	}
	waitStatus(t, "http://"+follower.httpAddr+"/readyz", 200, "follower re-catching up")
	probe = "http://" + follower.httpAddr + "/v1/query?s=" + url.QueryEscape("<http://ex/new11>")
	waitStatus(t, probe, 200, "post-failover triple on follower")

	// Clean shutdown releases the flocks.
	for _, p := range []*serveProc{follower, leader} {
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := p.cmd.Wait(); err != nil {
			t.Fatalf("serve did not exit cleanly: %v", err)
		}
	}
}
