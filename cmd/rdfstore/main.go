// Command rdfstore is the end-to-end store: it builds a compressed index
// from N-Triples or binary dataset files, saves it to disk with its
// dictionaries, answers triple selection patterns and SPARQL basic graph
// patterns against it, and serves it over HTTP to concurrent clients.
//
// Usage:
//
//	rdfstore build -in data.nt -layout 2Tp -out store.idx
//	rdfstore build -in data.nt -layout 2Tp -shards 4 -out store.idx
//	rdfstore query -store store.idx -s '<http://ex/alice>' -p '?' -o '?'
//	rdfstore sparql -store store.idx -q 'SELECT ?x WHERE { ?x <http://ex/knows> ?y . }'
//	rdfstore insert -store store.idx -s '<http://ex/alice>' -p '<http://ex/knows>' -o '<http://ex/carol>'
//	rdfstore delete -store store.idx -s '<http://ex/alice>' -p '<http://ex/knows>' -o '<http://ex/carol>'
//	rdfstore merge -store store.idx
//	rdfstore stats -store store.idx
//	rdfstore verify -store store.idx
//	rdfstore serve -store store.idx -addr :8080 -workers 8
//	rdfstore serve -store leader.idx -addr :8080 -replicate-addr :7878
//	rdfstore serve -store replica.idx -addr :8081 -follow leaderhost:7878
//
// verify checks every container section (header, dictionaries, shard
// sections) against its stored CRC32C checksum and scans the WAL,
// reporting per-section results; it exits non-zero if anything is
// corrupt. Legacy (version 1) stores predate checksums and can only be
// decode-checked, which verify and stats report as "unverified".
//
// insert and delete append to a write-ahead log (store.idx.wal) and keep
// the static index untouched until the pending log reaches the merge
// threshold (or merge is run), at which point the store file is rewritten
// atomically. serve recovers the pending log on startup and accepts
// writes on /v1/insert and /v1/delete.
//
// serve answers standard SPARQL 1.1 Protocol queries on /sparql (GET,
// HEAD or POST, ?query= with results as SPARQL JSON/XML/CSV/TSV by
// Accept header, ?explain=1 for a JSON execution profile instead of
// results) and the deprecated private NDJSON dialect under /v1/; see
// internal/server for the endpoint table. Prometheus metrics are
// exposed on /metrics, a JSON summary with latency percentiles on
// /stats, and -slow-query DURATION samples queries over the threshold
// to stderr as JSON lines.
//
// serve -replicate-addr makes the process a replication leader: it
// ships every WAL record (and merge epoch transition) to followers over
// a checksummed frame protocol. serve -follow makes it a read replica:
// the store file is bootstrapped from the leader when absent, writes
// answer 403 with the leader's address, /readyz reports catch-up state,
// and reads honor the min-gen consistency token (see internal/repl and
// DESIGN.md "Replication").
//
// build -shards N partitions the index by subject hash into N shards
// built in parallel; query, sparql, stats and serve auto-detect the
// multi-shard format. Sharded stores are read-only: insert, delete and
// merge refuse them, and serve falls back to read-only serving.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rdfindexes/internal/core"
	"rdfindexes/internal/rdf"
	"rdfindexes/internal/repl"
	"rdfindexes/internal/server"
	"rdfindexes/internal/shard"
	"rdfindexes/internal/sparql"
	"rdfindexes/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == errUsage {
			fmt.Fprintln(os.Stderr, "usage: rdfstore build|query|sparql|insert|delete|merge|stats|verify|serve [flags]")
			os.Exit(2)
		}
		if err == errParse {
			// The FlagSet already printed the error and usage.
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "rdfstore: %v\n", err)
		os.Exit(1)
	}
}

var (
	errUsage = fmt.Errorf("usage")
	// errParse marks a flag parse failure whose diagnostics the FlagSet
	// has already written to stderr.
	errParse = fmt.Errorf("flag parse error")
)

// parseFlags runs fs.Parse, folding its already-printed errors into the
// sentinels main knows not to re-print.
func parseFlags(fs *flag.FlagSet, args []string) error {
	switch err := fs.Parse(args); {
	case err == nil:
		return nil
	case errors.Is(err, flag.ErrHelp):
		return flag.ErrHelp
	default:
		return errParse
	}
}

// run dispatches a subcommand, writing results to out; it is the
// testable entry point behind main.
func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return errUsage
	}
	var err error
	switch args[0] {
	case "build":
		err = buildCmd(args[1:], out)
	case "query":
		err = queryCmd(args[1:], out)
	case "sparql":
		err = sparqlCmd(args[1:], out)
	case "insert":
		err = writeCmd("insert", args[1:], out)
	case "delete":
		err = writeCmd("delete", args[1:], out)
	case "merge":
		err = mergeCmd(args[1:], out)
	case "stats":
		err = statsCmd(args[1:], out)
	case "verify":
		err = verifyCmd(args[1:], out)
	case "serve":
		err = serveCmd(args[1:], out)
	default:
		return errUsage
	}
	if errors.Is(err, flag.ErrHelp) {
		// -h/-help printed the flag defaults; that is a successful run.
		return nil
	}
	return err
}

func buildCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("build", flag.ContinueOnError)
	in := fs.String("in", "", "input file (.nt N-Triples or .bin dataset)")
	layout := fs.String("layout", "2Tp", "index layout: 3T|CC|2Tp|2To")
	outPath := fs.String("out", "store.idx", "output store file")
	shards := fs.Int("shards", 1, "partition the index into N subject-hashed shards (built in parallel; read-only)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("build needs -in")
	}
	l, err := core.ParseLayout(*layout)
	if err != nil {
		return err
	}
	// A previous updatable store at the output path must not leak into
	// the rebuild: refuse while its WAL is live (flocked by a serving
	// process) or holds acknowledged writes, drop an empty leftover.
	if err := store.PrepareRebuild(*outPath); err != nil {
		return err
	}

	st := &store.Store{}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	var d *core.Dataset
	if strings.HasSuffix(*in, ".nt") {
		statements, err := rdf.ParseAll(f)
		if err != nil {
			return err
		}
		d, st.Dicts, err = rdf.Encode(statements)
		if err != nil {
			return err
		}
	} else {
		d, err = core.ReadDataset(f)
		if err != nil {
			return err
		}
	}
	if *shards > 1 {
		st.Index, err = shard.BuildSharded(d, l, *shards)
	} else {
		st.Index, err = core.Build(d, l)
	}
	if err != nil {
		return err
	}
	if err := store.Write(*outPath, st); err != nil {
		return err
	}
	if *shards > 1 {
		fmt.Fprintf(out, "indexed %d triples as %v across %d shards: %.2f bits/triple -> %s\n",
			st.Index.NumTriples(), l, *shards, core.BitsPerTriple(st.Index), *outPath)
	} else {
		fmt.Fprintf(out, "indexed %d triples as %v: %.2f bits/triple -> %s\n",
			st.Index.NumTriples(), l, core.BitsPerTriple(st.Index), *outPath)
	}
	return nil
}

func queryCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	path := fs.String("store", "store.idx", "store file")
	s := fs.String("s", "?", "subject term")
	p := fs.String("p", "?", "predicate term")
	o := fs.String("o", "?", "object term")
	limit := fs.Int("limit", 20, "max results to print (-1 for all)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	st, err := store.ReadView(*path)
	if err != nil {
		return err
	}
	pat, err := st.ParsePattern(*s, *p, *o)
	if err != nil {
		return err
	}

	qc := core.AcquireQueryCtx()
	defer qc.Release()
	// Matches render through the pooled dictionary cursors: each
	// front-coded bucket entry of a sorted result run decodes once, and
	// the line is built in one reused buffer instead of per-row strings.
	rend := store.AcquireRenderer(st)
	defer rend.Release()
	it := core.SelectWithCtx(st.Index, pat, qc)
	buf := qc.Batch()
	var line []byte
	count := 0
	for {
		k := it.NextBatch(buf)
		if k == 0 {
			break
		}
		for _, t := range buf[:k] {
			count++
			if *limit >= 0 && count > *limit {
				continue
			}
			if st.Dicts != nil {
				line = rend.AppendTerm(line[:0], t.S)
				line = append(line, ' ')
				line = rend.AppendPredicate(line, t.P)
				line = append(line, ' ')
				line = rend.AppendTerm(line, t.O)
				line = append(line, ' ', '.', '\n')
				if _, err := out.Write(line); err != nil {
					return err
				}
			} else {
				fmt.Fprintln(out, t)
			}
		}
	}
	fmt.Fprintf(out, "-- %d matches (pattern %v)\n", count, pat.Shape())
	return nil
}

func sparqlCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sparql", flag.ContinueOnError)
	path := fs.String("store", "store.idx", "store file")
	qs := fs.String("q", "", "SELECT query, e.g. 'SELECT ?x WHERE { ?x <http://ex/knows> ?y . }'")
	limit := fs.Int("limit", 20, "max solutions to print (-1 for all)")
	stats := fs.Bool("plan-stats", false, "use measured-cardinality planning")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *qs == "" {
		return fmt.Errorf("sparql needs -q")
	}
	st, err := store.ReadView(*path)
	if err != nil {
		return err
	}
	translated, err := st.TranslateQuery(*qs)
	if err != nil {
		return err
	}
	q, err := sparql.Parse(translated)
	if err != nil {
		return err
	}
	order := sparql.Plan(q)
	if *stats {
		order = sparql.PlanWithStats(q, st.Index)
	}
	// Solutions stream through the reused-bindings executor and the
	// pooled renderer: no per-row maps, no per-term strings.
	rend := store.AcquireRenderer(st)
	defer rend.Release()
	var line []byte
	var writeErr error
	printed := 0
	execStats, err := sparql.StreamWithOrder(nil, q, st.Index, order, func(b sparql.Bindings) {
		if writeErr != nil || (*limit >= 0 && printed >= *limit) {
			return
		}
		printed++
		line = line[:0]
		for i, v := range q.Vars {
			if i > 0 {
				line = append(line, '\t')
			}
			line = append(line, '?')
			line = append(line, v...)
			line = append(line, '=')
			line = rend.AppendTerm(line, b[v])
		}
		line = append(line, '\n')
		if _, werr := out.Write(line); werr != nil {
			writeErr = werr
		}
	})
	if err != nil {
		return err
	}
	if writeErr != nil {
		return writeErr
	}
	fmt.Fprintf(out, "-- %d solutions; %d atomic patterns issued; %d triples matched\n",
		execStats.Results, execStats.PatternsIssued, execStats.TriplesMatched)
	return nil
}

// writeCmd applies one insert or delete through the mutable store: the
// write lands in the WAL immediately and folds into the static index at
// the merge threshold.
func writeCmd(name string, args []string, out io.Writer) error {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	path := fs.String("store", "store.idx", "store file")
	s := fs.String("s", "", "subject term")
	p := fs.String("p", "", "predicate term")
	o := fs.String("o", "", "object term")
	threshold := fs.Int("threshold", 0, "merge threshold (0 = default)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	m, err := store.OpenMutable(*path, *threshold)
	if err != nil {
		return err
	}
	defer m.Close()
	var res store.WriteResult
	if name == "insert" {
		res, err = m.Insert(*s, *p, *o)
	} else {
		res, err = m.Delete(*s, *p, *o)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: changed=%v merged=%v triples=%d pending=%d\n",
		name, res.Changed, res.Merged, res.Triples, res.LogSize)
	return nil
}

// mergeCmd forces the pending log to fold into a rebuilt store file.
func mergeCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("merge", flag.ContinueOnError)
	path := fs.String("store", "store.idx", "store file")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	m, err := store.OpenMutable(*path, 0)
	if err != nil {
		return err
	}
	defer m.Close()
	st := m.View()
	pending := 0
	if dyn, ok := st.Index.(*core.DynamicSnapshot); ok {
		pending = dyn.LogSize()
	}
	if err := m.Merge(); err != nil {
		return err
	}
	st = m.View()
	fmt.Fprintf(out, "merged %d pending updates: %d triples, %.2f bits/triple -> %s\n",
		pending, st.Index.NumTriples(), core.BitsPerTriple(st.Index), *path)
	return nil
}

func statsCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	path := fs.String("store", "store.idx", "store file")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	st, err := store.ReadView(*path)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "layout:       %v\n", st.Index.Layout())
	if n := st.Shards(); n > 1 {
		fmt.Fprintf(out, "shards:       %d\n", n)
	}
	fmt.Fprintf(out, "triples:      %d\n", st.Index.NumTriples())
	fmt.Fprintf(out, "index space:  %.2f bits/triple (%.2f MiB)\n",
		core.BitsPerTriple(st.Index), float64(st.Index.SizeBits())/8/1024/1024)
	if st.Dicts != nil {
		fmt.Fprintf(out, "dictionaries: %d SO terms, %d predicates (%.2f MiB)\n",
			st.Dicts.SO.Len(), st.Dicts.P.Len(),
			float64(st.Dicts.SO.SizeBits()+st.Dicts.P.SizeBits())/8/1024/1024)
	}
	switch {
	case st.Integrity.Verified:
		fmt.Fprintf(out, "format:       v%d (checksums verified)\n", st.Integrity.Version)
	case st.Integrity.Version == 1:
		fmt.Fprintf(out, "format:       v1 (legacy, UNVERIFIED: no checksums; rebuild to upgrade)\n")
	}
	return nil
}

// verifyCmd checks the store section by section against its stored
// checksums (and scans the WAL, when one exists), printing a per-section
// report. Corruption anywhere makes the command fail, so scripts can
// gate on the exit status.
func verifyCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	path := fs.String("store", "store.idx", "store file")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	rep, err := store.Verify(*path)
	if err != nil {
		return err
	}
	if rep.Verified {
		fmt.Fprintf(out, "%s: format v%d (checksummed)\n", rep.Path, rep.Version)
	} else {
		fmt.Fprintf(out, "%s: format v%d (legacy, no checksums: decode check only)\n", rep.Path, rep.Version)
	}
	for _, sec := range rep.Sections {
		status := "ok"
		if !sec.OK {
			status = "CORRUPT: " + sec.Error
		}
		if sec.Bytes > 0 {
			fmt.Fprintf(out, "  %-10s %12d bytes  %s\n", sec.Name, sec.Bytes, status)
		} else {
			fmt.Fprintf(out, "  %-10s %s\n", sec.Name, status)
		}
	}
	if rec := rep.WAL; rec != nil {
		if rec.Corrupt {
			fmt.Fprintf(out, "  %-10s CORRUPT after %d valid records (%d records / %d bytes would be dropped): %s\n",
				"wal", rec.Replayed, rec.DroppedRecords, rec.DroppedBytes, rec.Error)
		} else if rec.TornTail {
			fmt.Fprintf(out, "  %-10s %d records ok; torn tail from an interrupted append (%d bytes, dropped on next writing open)\n",
				"wal", rec.Replayed, rec.DroppedBytes)
		} else {
			fmt.Fprintf(out, "  %-10s %d records ok\n", "wal", rec.Replayed)
		}
	}
	if !rep.OK {
		return fmt.Errorf("%s failed verification", rep.Path)
	}
	fmt.Fprintf(out, "%s: OK\n", rep.Path)
	return nil
}

func serveCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	path := fs.String("store", "store.idx", "store file")
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "max concurrent queries (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request execution deadline")
	cache := fs.Int("cache", 256, "result cache entries (-1 disables)")
	readonly := fs.Bool("readonly", false, "serve the store immutably (no /insert, /delete, WAL)")
	threshold := fs.Int("threshold", 0, "pending-update merge threshold (0 = default)")
	pprofOn := fs.Bool("pprof", false, "expose /debug/pprof/* runtime profiling endpoints")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown deadline for draining in-flight requests")
	rate := fs.Float64("rate-limit", 0, "per-client requests/second on query and write endpoints (0 disables)")
	burst := fs.Int("rate-burst", 0, "per-client token-bucket burst (0 = 2x rate)")
	brkN := fs.Int("breaker-threshold", 5, "consecutive internal write failures that open the write circuit breaker (negative disables)")
	brkCool := fs.Duration("breaker-cooldown", 10*time.Second, "how long the opened breaker rejects writes before probing")
	slowQ := fs.Duration("slow-query", 0, "log queries slower than this to stderr as JSON lines (0 disables)")
	replAddr := fs.String("replicate-addr", "", "accept WAL-shipping replication followers on this address (leader role)")
	follow := fs.String("follow", "", "replicate from the leader at this address and serve as a read replica")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *follow != "" && (*readonly || *replAddr != "") {
		return fmt.Errorf("-follow serves a read replica; it cannot combine with -readonly or -replicate-addr")
	}
	if *replAddr != "" && *readonly {
		return fmt.Errorf("-replicate-addr needs the write path; it cannot combine with -readonly")
	}
	cfg := server.Options{
		Workers:          *workers,
		Timeout:          *timeout,
		CacheEntries:     *cache,
		Pprof:            *pprofOn,
		RateLimit:        *rate,
		RateBurst:        *burst,
		BreakerThreshold: *brkN,
		BreakerCooldown:  *brkCool,
		SlowQuery:        *slowQ,
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	var srv *server.Server
	var st *store.Store
	var mut *store.Mutable
	var leader *repl.Leader
	var followerStop context.CancelFunc
	if *follow != "" {
		// Read replica: the follower owns the mutable store (bootstrapping
		// it from the leader when the file does not exist yet) and the
		// server refuses direct writes, pointing clients at the leader.
		f, err := repl.OpenFollower(*path, *follow, repl.FollowerOptions{
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "repl: "+format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		mut = f.Mutable()
		st = mut.View()
		cfg.Replica = f
		srv = server.NewMutable(mut, cfg)
		rctx, cancel := context.WithCancel(context.Background())
		followerStop = cancel
		go f.Run(rctx)
		fmt.Fprintf(out, "replicating from %s\n", *follow)
	} else if *readonly {
		// ReadView folds in any pending WAL without locking or touching
		// it, so a read-only replica can serve next to a writing process.
		// The degraded variant keeps a sharded store with checksum-failed
		// sections serving from its healthy shards.
		var err error
		st, err = store.ReadViewDegraded(*path)
		if err != nil {
			return err
		}
		srv = server.New(st, cfg)
	} else {
		m, err := store.OpenMutable(*path, *threshold)
		switch {
		case errors.Is(err, store.ErrSharded):
			if *replAddr != "" {
				return fmt.Errorf("-replicate-addr needs the write path; sharded stores are read-only")
			}
			// Sharded stores have no write path; serve them like
			// -readonly instead of failing the default invocation.
			fmt.Fprintln(out, "sharded store: serving read-only")
			if st, err = store.ReadViewDegraded(*path); err != nil {
				return err
			}
			srv = server.New(st, cfg)
		case err != nil:
			return err
		default:
			mut = m
			st = m.View()
			if *replAddr != "" {
				// Leader role: attach the WAL-shipping hub before the
				// server so its metrics register, and start accepting
				// followers alongside the HTTP listener.
				l, err := repl.NewLeader(m, repl.LeaderOptions{})
				if err != nil {
					m.Close()
					return err
				}
				rln, err := net.Listen("tcp", *replAddr)
				if err != nil {
					l.Close()
					return err
				}
				leader = l
				cfg.ReplLeader = l
				go l.Serve(rln)
				fmt.Fprintf(out, "replication leader listening on %s\n", rln.Addr())
			}
			srv = server.NewMutable(m, cfg)
			if rec := m.Recovery(); rec.Corrupt {
				fmt.Fprintf(out, "WAL recovery: %d records replayed, %d dropped after corruption (%s)\n",
					rec.Replayed, rec.DroppedRecords, rec.Error)
			}
		}
	}
	if q := st.Integrity.Quarantined; len(q) > 0 {
		fmt.Fprintf(out, "DEGRADED: shards %v failed verification and are quarantined; results are partial until the store is rebuilt\n", q)
	}
	// Bind before announcing, so ":0" invocations (tests, scripted
	// topologies) can read the real port off the serving line.
	hln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if n := st.Shards(); n > 1 {
		fmt.Fprintf(out, "serving %d triples (%v, %d shards, %.2f bits/triple) on %s\n",
			st.Index.NumTriples(), st.Index.Layout(), n, core.BitsPerTriple(st.Index), hln.Addr())
	} else {
		fmt.Fprintf(out, "serving %d triples (%v, %.2f bits/triple) on %s\n",
			st.Index.NumTriples(), st.Index.Layout(), core.BitsPerTriple(st.Index), hln.Addr())
	}

	hs := &http.Server{Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(hln) }()
	var serveErr error
	select {
	case serveErr = <-errc:
	case <-ctx.Done():
		// Graceful drain on SIGINT/SIGTERM: stop accepting, give
		// in-flight requests (which hold worker-pool slots) the drain
		// deadline to finish, then fall through to close the WAL so the
		// flock releases and no acknowledged write is left buffered.
		fmt.Fprintln(out, "shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		serveErr = hs.Shutdown(shutCtx)
	}
	if errors.Is(serveErr, http.ErrServerClosed) {
		serveErr = nil
	}
	// Replication links shut before the WAL handle closes: the leader
	// detaches its observer and drops followers (who will reconnect to a
	// successor), the follower stops its session loop so nothing applies
	// records into a closing store.
	if leader != nil {
		leader.Close()
	}
	if followerStop != nil {
		followerStop()
	}
	if mut != nil {
		// Closed after the listener has drained: no request can race the
		// WAL handle, and a close failure (lost flock release, dirty
		// handle) surfaces instead of vanishing in a defer.
		if err := mut.Close(); err != nil && serveErr == nil {
			serveErr = err
		}
	}
	return serveErr
}
