// Command rdfstore is the end-to-end store: it builds a compressed index
// from N-Triples or binary dataset files, saves it to disk with its
// dictionaries, and answers triple selection patterns and SPARQL basic
// graph patterns against it.
//
// Usage:
//
//	rdfstore build -in data.nt -layout 2Tp -out store.idx
//	rdfstore query -store store.idx -s '<http://ex/alice>' -p '?' -o '?'
//	rdfstore stats -store store.idx
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rdfindexes/internal/codec"
	"rdfindexes/internal/core"
	"rdfindexes/internal/dict"
	"rdfindexes/internal/rdf"
	"rdfindexes/internal/sparql"
)

const storeMagic = "RDFSTORE1"

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		buildCmd(os.Args[2:])
	case "query":
		queryCmd(os.Args[2:])
	case "sparql":
		sparqlCmd(os.Args[2:])
	case "stats":
		statsCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rdfstore build|query|sparql|stats [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rdfstore: %v\n", err)
	os.Exit(1)
}

// store bundles the index with its dictionaries (nil dictionaries for
// integer-only datasets).
type store struct {
	index core.Index
	dicts *rdf.Dicts
}

func writeStore(path string, st store) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := codec.NewWriter(f)
	w.String(storeMagic)
	if st.dicts != nil {
		w.Byte(1)
		st.dicts.SO.Encode(w)
		st.dicts.P.Encode(w)
	} else {
		w.Byte(0)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return core.WriteIndex(f, st.index)
}

func readStore(path string) (store, error) {
	f, err := os.Open(path)
	if err != nil {
		return store{}, err
	}
	defer f.Close()
	// One buffered stream shared by the header decoder and ReadIndex.
	br := bufio.NewReader(f)
	r := codec.NewReader(br)
	if magic := r.String(); magic != storeMagic {
		return store{}, fmt.Errorf("not an rdfstore file (magic %q)", magic)
	}
	var st store
	if r.Byte() == 1 {
		so, err := dict.Decode(r)
		if err != nil {
			return store{}, err
		}
		p, err := dict.Decode(r)
		if err != nil {
			return store{}, err
		}
		st.dicts = &rdf.Dicts{SO: so, P: p}
	}
	if err := r.Err(); err != nil {
		return store{}, err
	}
	st.index, err = core.ReadIndex(br)
	return st, err
}

func buildCmd(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	in := fs.String("in", "", "input file (.nt N-Triples or .bin dataset)")
	layout := fs.String("layout", "2Tp", "index layout: 3T|CC|2Tp|2To")
	out := fs.String("out", "store.idx", "output store file")
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("build needs -in"))
	}
	l, err := core.ParseLayout(*layout)
	if err != nil {
		fatal(err)
	}

	var st store
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var d *core.Dataset
	if strings.HasSuffix(*in, ".nt") {
		statements, err := rdf.ParseAll(f)
		if err != nil {
			fatal(err)
		}
		d, st.dicts, err = rdf.Encode(statements)
		if err != nil {
			fatal(err)
		}
	} else {
		d, err = core.ReadDataset(f)
		if err != nil {
			fatal(err)
		}
	}
	st.index, err = core.Build(d, l)
	if err != nil {
		fatal(err)
	}
	if err := writeStore(*out, st); err != nil {
		fatal(err)
	}
	fmt.Printf("indexed %d triples as %v: %.2f bits/triple -> %s\n",
		st.index.NumTriples(), l, core.BitsPerTriple(st.index), *out)
}

// parseTerm interprets a query term: "?" is a wildcard, <...> and quoted
// literals go through the dictionary, bare integers are raw IDs.
func parseTerm(s string, d *dict.Dict) (core.ID, error) {
	if s == "?" || s == "" {
		return core.Wildcard, nil
	}
	if strings.HasPrefix(s, "<") || strings.HasPrefix(s, "\"") || strings.HasPrefix(s, "_:") {
		if d == nil {
			return 0, fmt.Errorf("store has no dictionary; use integer IDs")
		}
		id, ok := d.Locate(s)
		if !ok {
			return 0, fmt.Errorf("term %s not in dictionary", s)
		}
		return core.ID(id), nil
	}
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("term %q is neither ?, a <uri>, a literal, nor an integer ID", s)
	}
	return core.ID(v), nil
}

func queryCmd(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	path := fs.String("store", "store.idx", "store file")
	s := fs.String("s", "?", "subject term")
	p := fs.String("p", "?", "predicate term")
	o := fs.String("o", "?", "object term")
	limit := fs.Int("limit", 20, "max results to print (-1 for all)")
	fs.Parse(args)

	st, err := readStore(*path)
	if err != nil {
		fatal(err)
	}
	var soDict, pDict *dict.Dict
	if st.dicts != nil {
		soDict, pDict = st.dicts.SO, st.dicts.P
	}
	pat := core.Pattern{}
	if pat.S, err = parseTerm(*s, soDict); err != nil {
		fatal(err)
	}
	if pat.P, err = parseTerm(*p, pDict); err != nil {
		fatal(err)
	}
	if pat.O, err = parseTerm(*o, soDict); err != nil {
		fatal(err)
	}

	it := st.index.Select(pat)
	count := 0
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		count++
		if *limit < 0 || count <= *limit {
			if st.dicts != nil {
				line, err := st.dicts.DecodeTriple(t)
				if err != nil {
					fatal(err)
				}
				fmt.Println(line)
			} else {
				fmt.Println(t)
			}
		}
	}
	fmt.Printf("-- %d matches (pattern %v)\n", count, pat.Shape())
}

// translateQuery rewrites URI/literal constants of a BGP query into
// dictionary IDs so the integer-level parser can handle it. Constants in
// predicate position use the predicate dictionary; subject/object
// positions use the shared SO dictionary.
func translateQuery(qs string, dicts *rdf.Dicts) (string, error) {
	open := strings.IndexByte(qs, '{')
	close := strings.LastIndexByte(qs, '}')
	if open < 0 || close < open {
		return "", fmt.Errorf("query has no { ... } block")
	}
	head := qs[:open+1]
	body := qs[open+1 : close]
	var out strings.Builder
	out.WriteString(head)
	for _, patStr := range strings.Split(body, ".") {
		fields := strings.Fields(patStr)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 3 {
			return "", fmt.Errorf("triple pattern %q does not have 3 terms", strings.TrimSpace(patStr))
		}
		for pos, f := range fields {
			out.WriteByte(' ')
			if strings.HasPrefix(f, "?") || isNumericIRI(f) {
				out.WriteString(f)
				continue
			}
			if dicts == nil {
				return "", fmt.Errorf("store has no dictionary; use <id> constants")
			}
			d := dicts.SO
			if pos == 1 {
				d = dicts.P
			}
			id, ok := d.Locate(f)
			if !ok {
				return "", fmt.Errorf("term %s not in dictionary", f)
			}
			fmt.Fprintf(&out, "<%d>", id)
		}
		out.WriteString(" .")
	}
	out.WriteString(" }")
	return out.String(), nil
}

func isNumericIRI(s string) bool {
	if !strings.HasPrefix(s, "<") || !strings.HasSuffix(s, ">") {
		return false
	}
	body := s[1 : len(s)-1]
	if body == "" {
		return false
	}
	for _, c := range body {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

func sparqlCmd(args []string) {
	fs := flag.NewFlagSet("sparql", flag.ExitOnError)
	path := fs.String("store", "store.idx", "store file")
	qs := fs.String("q", "", "SELECT query, e.g. 'SELECT ?x WHERE { ?x <http://ex/knows> ?y . }'")
	limit := fs.Int("limit", 20, "max solutions to print (-1 for all)")
	stats := fs.Bool("plan-stats", false, "use measured-cardinality planning")
	fs.Parse(args)
	if *qs == "" {
		fatal(fmt.Errorf("sparql needs -q"))
	}
	st, err := readStore(*path)
	if err != nil {
		fatal(err)
	}
	translated, err := translateQuery(*qs, st.dicts)
	if err != nil {
		fatal(err)
	}
	q, err := sparql.Parse(translated)
	if err != nil {
		fatal(err)
	}
	order := sparql.Plan(q)
	if *stats {
		order = sparql.PlanWithStats(q, st.index)
	}
	printed := 0
	render := func(id core.ID) string {
		if st.dicts != nil {
			if s, ok := st.dicts.SO.Extract(int(id)); ok {
				return s
			}
		}
		return fmt.Sprintf("<%d>", id)
	}
	execStats, err := sparql.ExecuteWithOrder(q, st.index, order, func(b sparql.Bindings) {
		if *limit >= 0 && printed >= *limit {
			return
		}
		printed++
		for i, v := range q.Vars {
			if i > 0 {
				fmt.Print("\t")
			}
			fmt.Printf("?%s=%s", v, render(b[v]))
		}
		fmt.Println()
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("-- %d solutions; %d atomic patterns issued; %d triples matched\n",
		execStats.Results, execStats.PatternsIssued, execStats.TriplesMatched)
}

func statsCmd(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	path := fs.String("store", "store.idx", "store file")
	fs.Parse(args)
	st, err := readStore(*path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("layout:       %v\n", st.index.Layout())
	fmt.Printf("triples:      %d\n", st.index.NumTriples())
	fmt.Printf("index space:  %.2f bits/triple (%.2f MiB)\n",
		core.BitsPerTriple(st.index), float64(st.index.SizeBits())/8/1024/1024)
	if st.dicts != nil {
		fmt.Printf("dictionaries: %d SO terms, %d predicates (%.2f MiB)\n",
			st.dicts.SO.Len(), st.dicts.P.Len(),
			float64(st.dicts.SO.SizeBits()+st.dicts.P.SizeBits())/8/1024/1024)
	}
}
