package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleNT = `<http://ex/alice> <http://ex/knows> <http://ex/bob> .
<http://ex/bob> <http://ex/knows> <http://ex/carol> .
<http://ex/carol> <http://ex/knows> <http://ex/alice> .
<http://ex/alice> <http://ex/likes> <http://ex/pizza> .
<http://ex/bob> <http://ex/likes> <http://ex/pizza> .
<http://ex/carol> <http://ex/likes> <http://ex/pasta> .
`

// runOK invokes a subcommand in-process and returns its stdout.
func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("rdfstore %s: %v\noutput:\n%s", strings.Join(args, " "), err, sb.String())
	}
	return sb.String()
}

// TestInsertDeleteMergeCLI drives the update subcommands: insert a
// triple with a brand-new term, query it back, restart-style reopen (a
// separate subcommand invocation recovers the WAL), delete it, and fold
// the log with merge.
func TestInsertDeleteMergeCLI(t *testing.T) {
	dir := t.TempDir()
	nt := filepath.Join(dir, "data.nt")
	if err := os.WriteFile(nt, []byte(sampleNT), 0o644); err != nil {
		t.Fatal(err)
	}
	idx := filepath.Join(dir, "store.idx")
	runOK(t, "build", "-in", nt, "-layout", "2Tp", "-out", idx)

	out := runOK(t, "insert", "-store", idx,
		"-s", "<http://ex/dave>", "-p", "<http://ex/likes>", "-o", "<http://ex/pizza>")
	if !strings.Contains(out, "changed=true") || !strings.Contains(out, "triples=7") {
		t.Fatalf("insert output: %q", out)
	}
	// Each subcommand reopens the store: query must incorporate the
	// pending WAL (ReadView), since the store file itself is untouched
	// until merge.
	out = runOK(t, "query", "-store", idx, "-s", "<http://ex/dave>")
	if !strings.Contains(out, "<http://ex/dave> <http://ex/likes> <http://ex/pizza> .") ||
		!strings.Contains(out, "-- 1 matches") {
		t.Fatalf("query after insert: %q", out)
	}

	out = runOK(t, "merge", "-store", idx)
	if !strings.Contains(out, "merged") {
		t.Fatalf("merge output: %q", out)
	}
	out = runOK(t, "stats", "-store", idx)
	if !strings.Contains(out, "triples:      7") {
		t.Fatalf("stats after merge: %q", out)
	}
	out = runOK(t, "delete", "-store", idx,
		"-s", "<http://ex/dave>", "-p", "<http://ex/likes>", "-o", "<http://ex/pizza>")
	if !strings.Contains(out, "changed=true") || !strings.Contains(out, "triples=6") {
		t.Fatalf("delete output: %q", out)
	}
	runOK(t, "merge", "-store", idx)
	out = runOK(t, "query", "-store", idx, "-s", "<http://ex/dave>")
	if !strings.Contains(out, "-- 0 matches") {
		t.Fatalf("query after delete+merge: %q", out)
	}
}

// TestEndToEnd drives the full CLI round trip — build an index from
// N-Triples, inspect it, resolve a pattern, execute a BGP join — against
// a store file in a temp dir, for every layout.
func TestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	nt := filepath.Join(dir, "data.nt")
	if err := os.WriteFile(nt, []byte(sampleNT), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, layout := range []string{"3T", "CC", "2Tp", "2To"} {
		t.Run(layout, func(t *testing.T) {
			idx := filepath.Join(dir, "store-"+layout+".idx")

			out := runOK(t, "build", "-in", nt, "-layout", layout, "-out", idx)
			if !strings.Contains(out, "indexed 6 triples as "+layout) {
				t.Fatalf("build output: %q", out)
			}

			out = runOK(t, "stats", "-store", idx)
			if !strings.Contains(out, "layout:       "+layout) ||
				!strings.Contains(out, "triples:      6") ||
				!strings.Contains(out, "dictionaries: 5 SO terms, 2 predicates") {
				t.Fatalf("stats output: %q", out)
			}

			// S?? round trip: alice's two triples come back as N-Triples.
			out = runOK(t, "query", "-store", idx, "-s", "<http://ex/alice>")
			if !strings.Contains(out, "<http://ex/alice> <http://ex/knows> <http://ex/bob> .") ||
				!strings.Contains(out, "<http://ex/alice> <http://ex/likes> <http://ex/pizza> .") ||
				!strings.Contains(out, "-- 2 matches") {
				t.Fatalf("query output: %q", out)
			}

			// ?P? with a term constant.
			out = runOK(t, "query", "-store", idx, "-p", "<http://ex/likes>")
			if !strings.Contains(out, "-- 3 matches") {
				t.Fatalf("likes query output: %q", out)
			}

			// BGP join: who does alice know that likes pizza?
			out = runOK(t, "sparql", "-store", idx,
				"-q", "SELECT ?x WHERE { <http://ex/alice> <http://ex/knows> ?x . ?x <http://ex/likes> <http://ex/pizza> . }")
			if !strings.Contains(out, "?x=<http://ex/bob>") || !strings.Contains(out, "-- 1 solutions") {
				t.Fatalf("sparql output: %q", out)
			}

			// Measured-cardinality planning gives the same answer.
			out = runOK(t, "sparql", "-store", idx, "-plan-stats",
				"-q", "SELECT ?x ?y WHERE { ?x <http://ex/knows> ?y . }")
			if !strings.Contains(out, "-- 3 solutions") {
				t.Fatalf("plan-stats sparql output: %q", out)
			}
		})
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"bogus"}, os.Stdout); err != errUsage {
		t.Fatalf("unknown subcommand: %v", err)
	}
	if err := run(nil, os.Stdout); err != errUsage {
		t.Fatalf("no subcommand: %v", err)
	}
	if err := run([]string{"build"}, io_discard()); err == nil {
		t.Fatal("build without -in accepted")
	}
	if err := run([]string{"stats", "-store", filepath.Join(dir, "missing.idx")}, io_discard()); err == nil {
		t.Fatal("missing store accepted")
	}
	// Unknown dictionary term surfaces as an error, not a crash.
	nt := filepath.Join(dir, "d.nt")
	idx := filepath.Join(dir, "d.idx")
	if err := os.WriteFile(nt, []byte(sampleNT), 0o644); err != nil {
		t.Fatal(err)
	}
	runOK(t, "build", "-in", nt, "-out", idx)
	if err := run([]string{"query", "-store", idx, "-s", "<http://ex/nobody>"}, io_discard()); err == nil {
		t.Fatal("unknown term accepted")
	}
}

func io_discard() *strings.Builder { return &strings.Builder{} }

// TestShardedCLI drives the sharded path end to end: build -shards,
// stats reporting the partition, routed and fan-out queries, BGP
// execution, and the write-path refusal.
func TestShardedCLI(t *testing.T) {
	dir := t.TempDir()
	nt := filepath.Join(dir, "data.nt")
	if err := os.WriteFile(nt, []byte(sampleNT), 0o644); err != nil {
		t.Fatal(err)
	}
	idx := filepath.Join(dir, "sharded.idx")
	out := runOK(t, "build", "-in", nt, "-layout", "2Tp", "-shards", "3", "-out", idx)
	if !strings.Contains(out, "across 3 shards") {
		t.Fatalf("build output: %q", out)
	}

	out = runOK(t, "stats", "-store", idx)
	if !strings.Contains(out, "shards:       3") || !strings.Contains(out, "triples:      6") {
		t.Fatalf("stats output: %q", out)
	}

	// Routed: subject bound, answered by one shard.
	out = runOK(t, "query", "-store", idx, "-s", "<http://ex/alice>")
	if !strings.Contains(out, "-- 2 matches") {
		t.Fatalf("routed query output: %q", out)
	}
	// Fan-out: subject unbound, scatter-gathered across shards.
	out = runOK(t, "query", "-store", idx, "-p", "<http://ex/likes>")
	if !strings.Contains(out, "-- 3 matches") {
		t.Fatalf("fan-out query output: %q", out)
	}

	out = runOK(t, "sparql", "-store", idx,
		"-q", "SELECT ?x ?y WHERE { ?x <http://ex/knows> ?y . }")
	if !strings.Contains(out, "-- 3 solutions") {
		t.Fatalf("sparql output: %q", out)
	}

	// Sharded stores are read-only: writes must refuse, not corrupt.
	if err := run([]string{"insert", "-store", idx,
		"-s", "<http://ex/dave>", "-p", "<http://ex/likes>", "-o", "<http://ex/pizza>"}, io_discard()); err == nil {
		t.Fatal("insert on sharded store accepted")
	}
	if err := run([]string{"merge", "-store", idx}, io_discard()); err == nil {
		t.Fatal("merge on sharded store accepted")
	}
}

// TestBuildOverWAL pins the rebuild-over-updatable-store rules: a WAL
// holding pending writes refuses the rebuild (acknowledged writes must
// not vanish silently), while an empty leftover WAL is cleaned up so it
// cannot replay into the unrelated new store.
func TestBuildOverWAL(t *testing.T) {
	dir := t.TempDir()
	nt := filepath.Join(dir, "data.nt")
	if err := os.WriteFile(nt, []byte(sampleNT), 0o644); err != nil {
		t.Fatal(err)
	}
	idx := filepath.Join(dir, "store.idx")
	runOK(t, "build", "-in", nt, "-out", idx)
	runOK(t, "insert", "-store", idx,
		"-s", "<http://ex/dave>", "-p", "<http://ex/likes>", "-o", "<http://ex/pizza>")

	// Pending WAL: both plain and sharded rebuilds must refuse.
	if err := run([]string{"build", "-in", nt, "-out", idx}, io_discard()); err == nil {
		t.Fatal("rebuild over pending WAL accepted")
	}
	if err := run([]string{"build", "-in", nt, "-shards", "2", "-out", idx}, io_discard()); err == nil {
		t.Fatal("sharded rebuild over pending WAL accepted")
	}

	// Folding the WAL (merge truncates it to empty) unblocks the
	// rebuild, and the leftover empty WAL is removed.
	runOK(t, "merge", "-store", idx)
	runOK(t, "build", "-in", nt, "-shards", "2", "-out", idx)
	if _, err := os.Stat(idx + ".wal"); !os.IsNotExist(err) {
		t.Fatalf("empty WAL not cleaned up: %v", err)
	}
	out := runOK(t, "query", "-store", idx, "-p", "<http://ex/likes>")
	if !strings.Contains(out, "-- 3 matches") {
		t.Fatalf("query after reshard: %q", out)
	}
}
