// Package rdfindexes is a Go implementation of the compressed RDF triple
// indexes of Perego, Pibiri and Venturini, "Compressed Indexes for Fast
// Search of Semantic Data" (ICDE 2021 / arXiv:1904.07619): the permuted
// trie index (3T), its cross-compressed variant (CC) and the two-trie
// layouts (2Tp, 2To), resolving the eight triple selection patterns over
// integer triples with trie levels compressed with Elias-Fano, partitioned
// Elias-Fano, bit-packed or VByte sequences.
//
// The package is a facade over internal/core; it exposes everything an
// application needs to build, query, persist and load indexes:
//
//	d := rdfindexes.NewDataset(triples)
//	x, err := rdfindexes.Build(d, rdfindexes.Layout2Tp)
//	it := x.Select(rdfindexes.NewPattern(12, -1, 7)) // S?O
//	for t, ok := it.Next(); ok; t, ok = it.Next() { ... }
//
// Iterators produce results in blocks; hot consumers should drain
// through NextBatch with a reusable buffer, which performs zero
// allocations per triple:
//
//	var buf [512]rdfindexes.Triple
//	for {
//		n := it.NextBatch(buf[:])
//		if n == 0 {
//			break
//		}
//		// process buf[:n]
//	}
//
// A built index is immutable and may be shared by any number of
// goroutines; concurrent servers should give each goroutine a pooled
// QueryCtx (AcquireQueryCtx / SelectWithCtx) so steady-state query
// serving performs no allocation at all. The rdfstore CLI wires this up
// as an HTTP service (`rdfstore serve`).
//
// See DESIGN.md for the layer inventory, the batched-iteration contract
// and the serving architecture, and EXPERIMENTS.md for the reproduction
// of the paper's evaluation.
package rdfindexes

import (
	"io"

	"rdfindexes/internal/core"
	"rdfindexes/internal/gen"
)

// Core types, re-exported.
type (
	// ID identifies a subject, predicate or object.
	ID = core.ID
	// Triple is an RDF statement with components mapped to IDs.
	Triple = core.Triple
	// Pattern is a triple selection pattern (components may be Wildcard).
	Pattern = core.Pattern
	// Shape classifies a pattern by its fixed components.
	Shape = core.Shape
	// Layout identifies an index variant (3T, CC, 2Tp, 2To).
	Layout = core.Layout
	// Dataset is a sorted, deduplicated integer triple collection.
	Dataset = core.Dataset
	// Stats summarizes a dataset as in Table 3 of the paper.
	Stats = core.Stats
	// Index is a static compressed triple index.
	Index = core.Index
	// Iterator yields the triples matching a pattern.
	Iterator = core.Iterator
	// Option configures index construction.
	Option = core.Option
	// R supports range queries over numeric objects.
	R = core.R
	// RangeSelecter is an index supporting object-range queries.
	RangeSelecter = core.RangeSelecter
	// DynamicIndex pairs a static index with an update log, merged
	// amortizedly (the strategy sketched in Section 3.1 of the paper).
	// It is single-writer; concurrent readers query DynamicSnapshot
	// views obtained from Snapshot.
	DynamicIndex = core.DynamicIndex
	// DynamicSnapshot is an immutable point-in-time view of a
	// DynamicIndex; it implements Index, so any read path serves it.
	DynamicSnapshot = core.DynamicSnapshot
	// QueryCtx is the pooled per-query scratch arena for concurrent
	// serving; see the concurrency contract in internal/core.
	QueryCtx = core.QueryCtx
)

// Wildcard matches every ID in a pattern component.
const Wildcard = core.Wildcard

// Index layouts.
const (
	Layout3T  = core.Layout3T
	LayoutCC  = core.LayoutCC
	Layout2Tp = core.Layout2Tp
	Layout2To = core.Layout2To
)

// Pattern shapes in the paper's notation.
const (
	ShapeSPO = core.ShapeSPO
	ShapeSPx = core.ShapeSPx
	ShapeSxO = core.ShapeSxO
	ShapeSxx = core.ShapeSxx
	ShapexPO = core.ShapexPO
	ShapexPx = core.ShapexPx
	ShapexxO = core.ShapexxO
	Shapexxx = core.Shapexxx
)

// NewDataset takes ownership of triples, sorts and deduplicates them.
func NewDataset(triples []Triple) *Dataset { return core.NewDataset(triples) }

// NewPattern builds a pattern from ints; negative values become
// wildcards.
func NewPattern(s, p, o int) Pattern { return core.NewPattern(s, p, o) }

// Build constructs an index of the requested layout with the paper's
// default compression configuration.
func Build(d *Dataset, layout Layout, opts ...Option) (Index, error) {
	return core.Build(d, layout, opts...)
}

// BitsPerTriple returns the index space divided by its triple count, the
// paper's space metric.
func BitsPerTriple(x Index) float64 { return core.BitsPerTriple(x) }

// Count resolves the pattern and counts its matches.
func Count(x Index, p Pattern) int { return core.Count(x, p) }

// AcquireQueryCtx takes a pooled query context. A built index is
// immutable and serves any number of goroutines concurrently; each
// goroutine should acquire its own ctx, resolve patterns through
// SelectWithCtx, and Release the ctx when its query finishes, making
// steady-state serving allocation-free.
func AcquireQueryCtx() *QueryCtx { return core.AcquireQueryCtx() }

// SelectWithCtx resolves p on x, drawing per-query scratch from c when
// non-nil; identical results to x.Select(p).
func SelectWithCtx(x Index, p Pattern, c *QueryCtx) *Iterator {
	return core.SelectWithCtx(x, p, c)
}

// Lookup reports whether the index contains t.
func Lookup(x Index, t Triple) bool { return core.Lookup(x, t) }

// WriteIndex serializes an index; ReadIndex loads it back.
func WriteIndex(w io.Writer, x Index) error { return core.WriteIndex(w, x) }

// ReadIndex deserializes an index written by WriteIndex.
func ReadIndex(r io.Reader) (Index, error) { return core.ReadIndex(r) }

// WriteDataset serializes a dataset; ReadDataset loads it back.
func WriteDataset(w io.Writer, d *Dataset) error { return core.WriteDataset(w, d) }

// ReadDataset deserializes a dataset written by WriteDataset.
func ReadDataset(r io.Reader) (*Dataset, error) { return core.ReadDataset(r) }

// NewDynamic builds an updatable index: a static index plus a small
// update log that is merged back when it reaches threshold entries
// (threshold 0 picks the default, negative disables automatic merging).
func NewDynamic(d *Dataset, layout Layout, threshold int, opts ...Option) (*DynamicIndex, error) {
	return core.NewDynamic(d, layout, threshold, opts...)
}

// NewDynamicFromIndex wraps an already-built static index with an empty
// update log; threshold semantics match NewDynamic.
func NewDynamicFromIndex(base Index, threshold int, opts ...Option) *DynamicIndex {
	return core.NewDynamicFromIndex(base, threshold, opts...)
}

// NewR builds the range-query structure over numeric object values
// (sorted ascending, value k belonging to object ID base+k).
func NewR(base ID, values []uint64) *R { return core.NewR(base, values) }

// SelectValueRange resolves (?, p, ?v) with lo <= value(v) <= hi.
func SelectValueRange(x RangeSelecter, r *R, p ID, lo, hi uint64) *Iterator {
	return core.SelectValueRange(x, r, p, lo, hi)
}

// GenerateDataset produces a synthetic dataset calibrated to one of the
// paper's six dataset shapes ("dblp", "geonames", "dbpedia", "watdiv",
// "lubm", "freebase"); see DESIGN.md for the substitution rationale.
func GenerateDataset(preset string, triples int, seed int64) (*Dataset, error) {
	return gen.GeneratePreset(preset, triples, seed)
}

// DatasetPresets lists the available synthetic dataset presets.
func DatasetPresets() []string { return gen.PresetNames() }
