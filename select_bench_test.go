// Benchmarks for the block-decoded iteration pipeline: raw selection
// throughput per layout and pattern shape (BenchmarkSelect) and SPARQL
// star-join throughput (BenchmarkJoin). `go test -bench 'Select|Join'`
// tracks the ns/triple trajectory across PRs; cmd/rdfbench -json emits
// the same metrics machine-readably.
package rdfindexes

import (
	"fmt"
	"testing"

	"rdfindexes/internal/core"
	"rdfindexes/internal/gen"
	"rdfindexes/internal/sparql"
)

// BenchmarkSelect measures pattern selection throughput (ns/triple) on
// the paper's layouts, including the full ??? scan that Table 4 skips.
func BenchmarkSelect(b *testing.B) {
	fixture(b)
	shapes := []core.Shape{core.ShapeSPx, core.ShapeSxO, core.ShapeSxx,
		core.ShapexPO, core.ShapexPx, core.ShapexxO, core.Shapexxx}
	for _, name := range []string{"3T", "2Tp"} {
		x := fx.layouts[name]
		for _, shape := range shapes {
			pats := gen.PatternWorkload(fx.sample, shape)
			if shape == core.Shapexxx {
				pats = []core.Pattern{core.NewPattern(-1, -1, -1)}
			}
			b.Run(name+"/"+shape.String(), func(b *testing.B) {
				drain(b, x, pats)
			})
		}
	}
}

// starQueries builds star-shaped BGPs (2 and 3 patterns sharing the
// subject variable) from subjects of the fixture dataset, the join shape
// that profits from sorted merge-intersection.
func starQueries(d *core.Dataset, arms, n int) []sparql.Query {
	bySubject := map[core.ID][]core.Triple{}
	for _, t := range d.Triples {
		bySubject[t.S] = append(bySubject[t.S], t)
	}
	var out []sparql.Query
	for s := core.ID(0); int(s) < d.NS && len(out) < n; s++ {
		ts := bySubject[s]
		if len(ts) < arms {
			continue
		}
		q := "SELECT ?x WHERE {"
		used := map[core.ID]bool{}
		got := 0
		for _, t := range ts {
			if used[t.P] {
				continue
			}
			used[t.P] = true
			q += fmt.Sprintf(" ?x <%d> <%d> .", t.P, t.O)
			got++
			if got == arms {
				break
			}
		}
		if got < arms {
			continue
		}
		pq, err := sparql.Parse(q + " }")
		if err != nil {
			panic(err)
		}
		out = append(out, pq)
	}
	return out
}

// BenchmarkJoin measures SPARQL BGP execution: subject-star joins over
// the DBpedia-shaped fixture and the LUBM query mix (stars and chains).
func BenchmarkJoin(b *testing.B) {
	fixture(b)
	lubmIdx, err := core.Build2Tp(fx.lubm.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	lubmQs := gen.LUBMQueries(fx.lubm, 12, 6)
	for _, tc := range []struct {
		name    string
		store   sparql.Store
		queries []sparql.Query
	}{
		{"star2/3T", fx.layouts["3T"].(sparql.Store), starQueries(fx.d, 2, 200)},
		{"star2/2Tp", fx.layouts["2Tp"].(sparql.Store), starQueries(fx.d, 2, 200)},
		{"star3/2Tp", fx.layouts["2Tp"].(sparql.Store), starQueries(fx.d, 3, 200)},
		{"lubm/2Tp", lubmIdx, lubmQs},
	} {
		if len(tc.queries) == 0 {
			b.Fatalf("%s: no queries generated", tc.name)
		}
		b.Run(tc.name, func(b *testing.B) {
			results := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := tc.queries[i%len(tc.queries)]
				stats, err := sparql.Execute(q, tc.store, nil)
				if err != nil {
					b.Fatal(err)
				}
				results += stats.Results
			}
			b.ReportMetric(float64(results)/float64(b.N), "results/op")
		})
	}
}
