// Command sparqljoin generates a LUBM-like university graph (LUBM is
// itself a synthetic benchmark; see DESIGN.md), builds the paper's 2Tp
// index over it, and answers SPARQL basic graph patterns through the
// selectivity-driven planner, which serializes each query into the atomic
// triple selection patterns the index resolves — the methodology of
// Table 6 of the paper.
package main

import (
	"fmt"
	"log"

	"rdfindexes"
	"rdfindexes/internal/gen"
	"rdfindexes/internal/sparql"
)

func main() {
	data := gen.LUBM(5, 42)
	d := data.Dataset
	st := d.ComputeStats()
	fmt.Printf("LUBM-like graph: %d triples, %d subjects, %d predicates, %d objects\n",
		st.Triples, st.DistinctS, st.DistinctP, st.DistinctO)

	x, err := rdfindexes.Build(d, rdfindexes.Layout2Tp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2Tp index: %.2f bits/triple\n\n", rdfindexes.BitsPerTriple(x))

	dept := data.Departments[0]
	uni := data.Universities[0]
	queries := []string{
		// Professors of a department with their advisees (star join).
		fmt.Sprintf("SELECT ?prof ?student WHERE { ?prof <%d> <%d> . ?student <%d> ?prof . }",
			gen.LubmWorksFor, dept, gen.LubmAdvisor),
		// Members of a university through its departments (chain join).
		fmt.Sprintf("SELECT ?x ?d WHERE { ?x <%d> ?d . ?d <%d> <%d> . }",
			gen.LubmMemberOf, gen.LubmSubOrganizationOf, uni),
		// Graduate students and the universities they came from.
		fmt.Sprintf("SELECT ?s ?u WHERE { ?s <%d> <%d> . ?s <%d> ?u . }",
			gen.LubmType, gen.LubmClassGradStudent, gen.LubmUndergraduateDegreeFrom),
	}

	for _, qs := range queries {
		q, err := sparql.Parse(qs)
		if err != nil {
			log.Fatalf("parse %q: %v", qs, err)
		}
		order := sparql.Plan(q)
		fmt.Printf("query: %s\n", q)
		fmt.Printf("  plan order: %v\n", order)
		shown := 0
		stats, err := sparql.Execute(q, x, func(b sparql.Bindings) {
			if shown < 3 {
				fmt.Printf("  solution: %v\n", b)
				shown++
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d solutions; %d atomic patterns issued; %d triples matched\n\n",
			stats.Results, stats.PatternsIssued, stats.TriplesMatched)
	}
}
