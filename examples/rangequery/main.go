// Command rangequery demonstrates the range queries of Section 3.1 of
// the paper on a WatDiv-like e-commerce graph: numeric literal objects
// (prices, ratings) receive consecutive IDs in increasing value order,
// and the auxiliary R structure translates a value interval into an ID
// interval with two compressed-domain searches, after which the regular
// select machinery produces the matches.
package main

import (
	"fmt"
	"log"

	"rdfindexes"
	"rdfindexes/internal/core"
	"rdfindexes/internal/gen"
)

func main() {
	data := gen.WatDiv(2000, 7)
	d := data.Dataset
	fmt.Printf("WatDiv-like graph: %d triples, %d products, %d numeric values\n",
		d.Len(), len(data.Products), len(data.NumericValues))

	built, err := rdfindexes.Build(d, rdfindexes.Layout2Tp)
	if err != nil {
		log.Fatal(err)
	}
	x := built.(rdfindexes.RangeSelecter) // 2Tp materializes POS: range-capable
	r := data.R()
	fmt.Printf("2Tp index: %.2f bits/triple; R structure adds %.4f bits/triple\n\n",
		rdfindexes.BitsPerTriple(built), float64(r.SizeBits())/float64(d.Len()))

	for _, rq := range []struct {
		name   string
		pred   core.ID
		lo, hi uint64
	}{
		{"products priced 100..500 cents", gen.WdPrice, 100, 500},
		{"products priced 50000..60000 cents", gen.WdPrice, 50000, 60000},
		{"reviews rated 9..10", gen.WdRating, 9, 10},
		{"reviews rated exactly 0", gen.WdRating, 0, 0},
		{"empty range (price 1..2)", gen.WdPrice, 1, 2},
	} {
		it := rdfindexes.SelectValueRange(x, r, rq.pred, rq.lo, rq.hi)
		count := 0
		var sample []rdfindexes.Triple
		for {
			t, ok := it.Next()
			if !ok {
				break
			}
			if count < 2 {
				sample = append(sample, t)
			}
			count++
		}
		fmt.Printf("%-38s -> %5d matches", rq.name, count)
		for _, t := range sample {
			fmt.Printf("  e.g. subject %d has value %d", t.S, r.Value(t.O))
		}
		fmt.Println()
	}
}
