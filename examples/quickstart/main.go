// Command quickstart indexes the worked example of Fig. 1 of the paper
// and resolves all eight triple selection patterns, then saves the index
// to disk and loads it back.
package main

import (
	"bytes"
	"fmt"
	"log"

	"rdfindexes"
)

func main() {
	// The 11 triples of Fig. 1.
	triples := []rdfindexes.Triple{
		{S: 0, P: 0, O: 2}, {S: 0, P: 0, O: 3}, {S: 0, P: 1, O: 0},
		{S: 1, P: 0, O: 4}, {S: 1, P: 2, O: 0}, {S: 1, P: 2, O: 1},
		{S: 2, P: 0, O: 2}, {S: 2, P: 1, O: 0},
		{S: 3, P: 2, O: 1}, {S: 3, P: 2, O: 2},
		{S: 4, P: 2, O: 4},
	}
	d := rdfindexes.NewDataset(triples)

	for _, layout := range []rdfindexes.Layout{
		rdfindexes.Layout3T, rdfindexes.LayoutCC, rdfindexes.Layout2Tp, rdfindexes.Layout2To,
	} {
		x, err := rdfindexes.Build(d, layout)
		if err != nil {
			log.Fatalf("build %v: %v", layout, err)
		}
		fmt.Printf("== %v index: %d triples, %.2f bits/triple ==\n",
			layout, x.NumTriples(), rdfindexes.BitsPerTriple(x))

		// The paper's example: pattern (1, 2, ?) returns (1,2,0) and (1,2,1).
		show(x, rdfindexes.NewPattern(1, 2, -1))
		show(x, rdfindexes.NewPattern(1, -1, -1)) // S??
		show(x, rdfindexes.NewPattern(1, -1, 0))  // S?O
		show(x, rdfindexes.NewPattern(-1, 2, 1))  // ?PO
		show(x, rdfindexes.NewPattern(-1, 0, -1)) // ?P?
		show(x, rdfindexes.NewPattern(-1, -1, 2)) // ??O
		show(x, rdfindexes.NewPattern(1, 2, 0))   // SPO
		fmt.Printf("   ???  -> %d triples (full scan)\n\n",
			rdfindexes.Count(x, rdfindexes.NewPattern(-1, -1, -1)))
	}

	// Persistence round trip.
	x, err := rdfindexes.Build(d, rdfindexes.Layout2Tp)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rdfindexes.WriteIndex(&buf, x); err != nil {
		log.Fatal(err)
	}
	loaded, err := rdfindexes.ReadIndex(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized 2Tp index: %d bytes; reload finds (1,2,0): %v\n",
		buf.Len(), rdfindexes.Lookup(loaded, rdfindexes.Triple{S: 1, P: 2, O: 0}))
}

func show(x rdfindexes.Index, p rdfindexes.Pattern) {
	it := x.Select(p)
	var matches []string
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		matches = append(matches, t.String())
	}
	fmt.Printf("   %-4v -> %v\n", p.Shape(), matches)
}
