// Command ntriples is the end-to-end pipeline the paper's system sits in:
// parse N-Triples, dictionary-encode URIs and literals to dense integer
// IDs with a front-coded compressed dictionary (the paper treats the
// dictionary as a separate problem, Section 1), index the integer
// triples, and answer URI-level queries by translating through the
// dictionary in both directions.
package main

import (
	"fmt"
	"log"
	"strings"

	"rdfindexes"
	"rdfindexes/internal/core"
	"rdfindexes/internal/rdf"
)

const graph = `# a tiny social/bibliographic graph
<http://ex/alice>  <http://ex/knows>    <http://ex/bob> .
<http://ex/alice>  <http://ex/knows>    <http://ex/carol> .
<http://ex/bob>    <http://ex/knows>    <http://ex/carol> .
<http://ex/alice>  <http://ex/name>     "Alice" .
<http://ex/bob>    <http://ex/name>     "Bob" .
<http://ex/carol>  <http://ex/name>     "Carol" .
<http://ex/alice>  <http://ex/wrote>    <http://ex/paper1> .
<http://ex/carol>  <http://ex/wrote>    <http://ex/paper1> .
<http://ex/carol>  <http://ex/wrote>    <http://ex/paper2> .
<http://ex/paper1> <http://ex/title>    "Compressed Indexes" .
<http://ex/paper2> <http://ex/title>    "Fast Search" .
<http://ex/paper1> <http://ex/year>     "2021"^^<http://www.w3.org/2001/XMLSchema#integer> .
`

func main() {
	statements, err := rdf.ParseAll(strings.NewReader(graph))
	if err != nil {
		log.Fatal(err)
	}
	d, dicts, err := rdf.Encode(statements)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d statements; %d terms in the SO dictionary, %d predicates\n",
		len(statements), dicts.SO.Len(), dicts.P.Len())
	fmt.Printf("dictionary size: %d bits (%.1f bits/term)\n",
		dicts.SO.SizeBits(), float64(dicts.SO.SizeBits())/float64(dicts.SO.Len()))

	x, err := rdfindexes.Build(d, rdfindexes.Layout2Tp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2Tp index over the integer triples: %.1f bits/triple\n\n",
		rdfindexes.BitsPerTriple(x))

	// Who wrote paper1? (?PO with URI terms)
	ask(x, dicts, "", "<http://ex/wrote>", "<http://ex/paper1>")
	// Everything about carol. (S??)
	ask(x, dicts, "<http://ex/carol>", "", "")
	// Did alice write paper2? (SPO)
	ask(x, dicts, "<http://ex/alice>", "<http://ex/wrote>", "<http://ex/paper2>")
}

// ask resolves a pattern given as N-Triples terms; empty strings are
// wildcards.
func ask(x rdfindexes.Index, dicts *rdf.Dicts, s, p, o string) {
	pat := rdfindexes.Pattern{S: rdfindexes.Wildcard, P: rdfindexes.Wildcard, O: rdfindexes.Wildcard}
	lookup := func(term string, d interface{ Locate(string) (int, bool) }) (core.ID, bool) {
		id, ok := d.Locate(term)
		return core.ID(id), ok
	}
	okAll := true
	if s != "" {
		if id, ok := lookup(s, dicts.SO); ok {
			pat.S = id
		} else {
			okAll = false
		}
	}
	if p != "" {
		if id, ok := lookup(p, dicts.P); ok {
			pat.P = id
		} else {
			okAll = false
		}
	}
	if o != "" {
		if id, ok := lookup(o, dicts.SO); ok {
			pat.O = id
		} else {
			okAll = false
		}
	}
	fmt.Printf("pattern (%s %s %s):\n", orQ(s), orQ(p), orQ(o))
	if !okAll {
		fmt.Println("   (a term is not in the dictionary: no matches)")
		return
	}
	it := x.Select(pat)
	n := 0
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		line, err := dicts.DecodeTriple(t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %s\n", line)
		n++
	}
	if n == 0 {
		fmt.Println("   (no matches)")
	}
	fmt.Println()
}

func orQ(s string) string {
	if s == "" {
		return "?"
	}
	return s
}
