package rdfindexes_test

import (
	"fmt"

	"rdfindexes"
)

// Example indexes the worked example of Fig. 1 of the paper and resolves
// the pattern (1, 2, ?), which matches the two triples sharing the prefix
// (1, 2).
func Example() {
	triples := []rdfindexes.Triple{
		{S: 0, P: 0, O: 2}, {S: 0, P: 0, O: 3}, {S: 0, P: 1, O: 0},
		{S: 1, P: 0, O: 4}, {S: 1, P: 2, O: 0}, {S: 1, P: 2, O: 1},
		{S: 2, P: 0, O: 2}, {S: 2, P: 1, O: 0},
		{S: 3, P: 2, O: 1}, {S: 3, P: 2, O: 2},
		{S: 4, P: 2, O: 4},
	}
	d := rdfindexes.NewDataset(triples)
	x, err := rdfindexes.Build(d, rdfindexes.Layout2Tp)
	if err != nil {
		panic(err)
	}
	it := x.Select(rdfindexes.NewPattern(1, 2, -1))
	for t, ok := it.Next(); ok; t, ok = it.Next() {
		fmt.Println(t)
	}
	// Output:
	// (1, 2, 0)
	// (1, 2, 1)
}

// Example_rangeQuery shows a range-constrained pattern: numeric objects
// get IDs in increasing value order and the R structure translates value
// bounds into ID bounds (Section 3.1 of the paper).
func Example_rangeQuery() {
	// Objects 100..104 are numeric literals with values 10, 20, 30, 40, 50.
	values := []uint64{10, 20, 30, 40, 50}
	var triples []rdfindexes.Triple
	for k := range values {
		triples = append(triples, rdfindexes.Triple{S: rdfindexes.ID(k), P: 0, O: rdfindexes.ID(100 + k)})
	}
	d := rdfindexes.NewDataset(triples)
	built, err := rdfindexes.Build(d, rdfindexes.Layout2Tp)
	if err != nil {
		panic(err)
	}
	x := built.(rdfindexes.RangeSelecter)
	r := rdfindexes.NewR(100, values)
	it := rdfindexes.SelectValueRange(x, r, 0, 15, 35) // values in [15, 35]
	for t, ok := it.Next(); ok; t, ok = it.Next() {
		fmt.Printf("subject %d -> value %d\n", t.S, r.Value(t.O))
	}
	// Output:
	// subject 1 -> value 20
	// subject 2 -> value 30
}
