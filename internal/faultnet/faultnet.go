// Package faultnet injects faults into network connections, the
// replication-link counterpart of internal/faultfs: a net.Conn wrapper
// consults a fault plan before every read and write, so tests can cut,
// tear, duplicate, or stall the link at any exact protocol state and
// assert the endpoints recover.
package faultnet

import (
	"errors"
	"net"
	"sync/atomic"
	"time"
)

// Op classifies the connection operation a plan is consulted for.
type Op int

const (
	// OpRead is a Read call on a wrapped connection.
	OpRead Op = iota
	// OpWrite is a Write call on a wrapped connection.
	OpWrite
)

// Fault is the injected behavior for one operation.
type Fault int

const (
	// None performs the operation normally.
	None Fault = iota
	// Cut closes the connection and fails the operation — a dropped
	// link.
	Cut
	// Torn delivers only part of the data, then closes the connection —
	// a write sheared mid-frame, or a read that dies mid-stream.
	Torn
	// Dup performs a write twice, byte-for-byte — duplicate delivery.
	// (Reads treat Dup as None: duplication is a sender-side artifact.)
	Dup
	// Stall sleeps past the peer's (or our own) deadline before
	// attempting the operation — a hung link that heals too late.
	Stall
)

// ErrInjected marks operation failures caused by the plan rather than
// the real network.
var ErrInjected = errors.New("faultnet: injected fault")

// Plan decides the fault for the n-th operation (a single counter
// across all reads and writes on all connections of one Injector, so a
// sweep over n visits every protocol state in order).
type Plan func(op Op, n int) Fault

// Injector wraps connections with a shared plan and operation counter.
type Injector struct {
	plan  Plan
	stall time.Duration
	n     atomic.Int64
}

// NewInjector builds an injector. stall is how long a Stall fault
// sleeps; pick it longer than the protocol's read deadline.
func NewInjector(plan Plan, stall time.Duration) *Injector {
	return &Injector{plan: plan, stall: stall}
}

// Ops returns how many operations have been attempted so far — used by
// sweeps to size the fault-index space.
func (inj *Injector) Ops() int { return int(inj.n.Load()) }

// Wrap returns c with the injector's plan applied to every read and
// write.
func (inj *Injector) Wrap(c net.Conn) net.Conn {
	return &conn{Conn: c, inj: inj}
}

type conn struct {
	net.Conn
	inj *Injector
}

func (c *conn) Read(b []byte) (int, error) {
	switch c.inj.plan(OpRead, int(c.inj.n.Add(1)-1)) {
	case Cut:
		c.Conn.Close()
		return 0, ErrInjected
	case Torn:
		// Deliver at most half of what was asked, then kill the link: the
		// reader sees a short prefix and then an error.
		half := len(b) / 2
		if half == 0 {
			half = 1
		}
		n, _ := c.Conn.Read(b[:half])
		c.Conn.Close()
		if n > 0 {
			return n, nil
		}
		return 0, ErrInjected
	case Stall:
		time.Sleep(c.inj.stall)
	}
	return c.Conn.Read(b)
}

func (c *conn) Write(b []byte) (int, error) {
	switch c.inj.plan(OpWrite, int(c.inj.n.Add(1)-1)) {
	case Cut:
		c.Conn.Close()
		return 0, ErrInjected
	case Torn:
		half := len(b) / 2
		if half > 0 {
			c.Conn.Write(b[:half])
		}
		c.Conn.Close()
		return half, ErrInjected
	case Dup:
		if n, err := c.Conn.Write(b); err != nil {
			return n, err
		}
		return c.Conn.Write(b)
	case Stall:
		time.Sleep(c.inj.stall)
	}
	return c.Conn.Write(b)
}
