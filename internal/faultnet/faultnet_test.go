package faultnet

import (
	"io"
	"net"
	"testing"
	"time"
)

func TestDupWriteDuplicatesWholeBuffers(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	inj := NewInjector(func(op Op, n int) Fault {
		if op == OpWrite {
			return Dup
		}
		return None
	}, 0)
	w := inj.Wrap(a)
	go func() {
		w.Write([]byte("abc"))
	}()
	got := make([]byte, 6)
	b.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcabc" {
		t.Fatalf("dup write delivered %q, want abcabc", got)
	}
}

func TestCutFailsAndClosesConn(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	inj := NewInjector(func(op Op, n int) Fault { return Cut }, 0)
	w := inj.Wrap(a)
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("cut write did not fail")
	}
	// The underlying connection must actually be dead.
	if _, err := a.Write([]byte("y")); err == nil {
		t.Fatal("underlying conn still alive after cut")
	}
}

func TestTornWriteDeliversPrefixThenDies(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	inj := NewInjector(func(op Op, n int) Fault {
		if op == OpWrite && n == 0 {
			return Torn
		}
		return None
	}, 0)
	w := inj.Wrap(a)
	go w.Write([]byte("abcd"))
	got := make([]byte, 2)
	b.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "ab" {
		t.Fatalf("torn write delivered %q, want ab", got)
	}
	b.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := b.Read(make([]byte, 1)); err == nil {
		t.Fatal("torn write left the conn open")
	}
}
