package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketGeometry(t *testing.T) {
	// Bucket bounds are continuous: every value maps into exactly the
	// bucket whose [BucketBound(i-1), BucketBound(i)) range holds it.
	for i := 0; i < NumBuckets-1; i++ {
		lo := uint64(0)
		if i > 0 {
			lo = BucketBound(i - 1)
		}
		hi := BucketBound(i)
		if hi <= lo {
			t.Fatalf("bucket %d: bound %d not above previous %d", i, hi, lo)
		}
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(%d) = %d, want %d", lo, got, i)
		}
		if got := bucketIndex(hi - 1); got != i {
			t.Fatalf("bucketIndex(%d) = %d, want %d", hi-1, got, i)
		}
	}
	// Overflow clamps.
	if got := bucketIndex(math.MaxUint64); got != NumBuckets-1 {
		t.Fatalf("bucketIndex(max) = %d, want %d", got, NumBuckets-1)
	}
	// The top regular bound covers multi-minute latencies.
	if top := BucketBound(NumBuckets - 2); top < uint64(60*time.Second) {
		t.Fatalf("histogram ceiling %v too low", time.Duration(top))
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// A uniform spread of 1..1000 µs: quantiles should land within the
	// sub-bucket quantization error (25%).
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{{0.5, 500 * time.Microsecond}, {0.99, 990 * time.Microsecond}} {
		got := s.Quantile(tc.q)
		if got < tc.want*3/4 || got > tc.want*5/4 {
			t.Errorf("q%.2f = %v, want within 25%% of %v", tc.q, got, tc.want)
		}
	}
	if m := s.Mean(); m < 400*time.Microsecond || m > 600*time.Microsecond {
		t.Errorf("mean = %v, want ~500µs", m)
	}
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(time.Millisecond)
		b.Observe(10 * time.Millisecond)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(&sb)
	if sa.Count != 200 {
		t.Fatalf("merged count = %d", sa.Count)
	}
	if q := sa.Quantile(0.25); q > 2*time.Millisecond {
		t.Errorf("merged q25 = %v, want ~1ms", q)
	}
	if q := sa.Quantile(0.75); q < 8*time.Millisecond {
		t.Errorf("merged q75 = %v, want ~10ms", q)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// under -race this doubles as the lock-freedom proof, and the final
// snapshot must account for every observation in both the counter and
// the bucket array.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*i) * time.Nanosecond)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	sum := uint64(0)
	for _, b := range s.Buckets {
		sum += b
	}
	if sum != goroutines*per {
		t.Fatalf("bucket total = %d, want %d", sum, goroutines*per)
	}
}

// TestRecordingAllocs pins the hot recorders at zero allocations.
func TestRecordingAllocs(t *testing.T) {
	var h Histogram
	var c Counter
	tr := AcquireTrace()
	defer tr.Release()
	tr.EnableSteps(4)
	if n := testing.AllocsPerRun(1000, func() { h.Observe(42 * time.Microsecond) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Errorf("Counter.Add allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		tr.StepIssued(1, 2, false)
		tr.StepScanned(1)
		tr.StepMatched(1)
		tr.AddStage(StageExec, time.Microsecond)
	}); n != 0 {
		t.Errorf("Trace recorders allocate %.1f/op", n)
	}
	// Steady-state trace reuse does not allocate either.
	tr.Release()
	if n := testing.AllocsPerRun(100, func() {
		tr2 := AcquireTrace()
		tr2.EnableSteps(4)
		tr2.Release()
	}); n != 0 {
		t.Errorf("trace acquire/release allocates %.1f/op steady-state", n)
	}
}

// TestExposition is the golden scrape test: a registry with all three
// metric kinds renders text the minimal parser accepts, with the
// structural properties a scraper depends on.
func TestExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rdf_test_requests_total", `endpoint="sparql"`, "requests served")
	c2 := r.Counter("rdf_test_requests_total", `endpoint="query"`, "requests served")
	r.GaugeFunc("rdf_test_goroutines", "", "live goroutines", func() float64 { return 7 })
	r.CounterFunc("rdf_test_hits_total", `cache="plan"`, "cache hits", func() uint64 { return 3 })
	h := r.Histogram("rdf_test_latency_seconds", `stage="exec"`, "stage latency")
	c.Add(5)
	c2.Inc()
	h.Observe(3 * time.Millisecond)
	h.Observe(40 * time.Millisecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	// Exact golden for the scalar families (the histogram's bucket list
	// is checked structurally below).
	for _, want := range []string{
		"# HELP rdf_test_requests_total requests served\n# TYPE rdf_test_requests_total counter\n" +
			"rdf_test_requests_total{endpoint=\"sparql\"} 5\nrdf_test_requests_total{endpoint=\"query\"} 1\n",
		"# TYPE rdf_test_goroutines gauge\nrdf_test_goroutines 7\n",
		"rdf_test_hits_total{cache=\"plan\"} 3\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}

	samples, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("scrape does not parse: %v\n%s", err, text)
	}
	// Histogram invariants: cumulative buckets are non-decreasing, the
	// +Inf bucket equals _count, and the observations land at plausible
	// bounds.
	var lastCum float64 = -1
	var inf, count, sum float64
	bucketSeen := 0
	for _, s := range samples {
		switch s.Name {
		case "rdf_test_latency_seconds_bucket":
			bucketSeen++
			if s.Value < lastCum {
				t.Errorf("bucket le=%s cumulative %v below previous %v", s.Labels["le"], s.Value, lastCum)
			}
			lastCum = s.Value
			if s.Labels["le"] == "+Inf" {
				inf = s.Value
			}
			if s.Labels["stage"] != "exec" {
				t.Errorf("bucket lost its stage label: %v", s.Labels)
			}
		case "rdf_test_latency_seconds_count":
			count = s.Value
		case "rdf_test_latency_seconds_sum":
			sum = s.Value
		}
	}
	if bucketSeen < 10 {
		t.Fatalf("only %d bucket lines exposed", bucketSeen)
	}
	if inf != 2 || count != 2 {
		t.Errorf("+Inf bucket %v / count %v, want 2 / 2", inf, count)
	}
	if sum < 0.042 || sum > 0.044 {
		t.Errorf("sum = %v s, want ~0.043", sum)
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"rdf_x 1\n",                                  // sample before TYPE
		"# TYPE rdf_x counter\nrdf_x notanum\n",      // bad value
		"# TYPE rdf_x counter\nrdf_x{le=\"1 1\n",     // unterminated labels
		"# TYPE rdf_x counter\n# TYPE rdf_x gauge\n", // duplicate TYPE
	} {
		if _, err := ParseProm(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseProm accepted %q", bad)
		}
	}
}

func TestTraceStages(t *testing.T) {
	tr := AcquireTrace()
	defer tr.Release()
	tr.AddStage(StageQueue, time.Millisecond)
	tr.AddStage(StageExec, 2*time.Millisecond)
	tr.AddStage(StageExec, time.Millisecond)
	if tr.Stages[StageExec] != 3*time.Millisecond {
		t.Errorf("exec = %v", tr.Stages[StageExec])
	}
	if tr.Total() != 4*time.Millisecond {
		t.Errorf("total = %v", tr.Total())
	}
	// nil traces swallow every recorder.
	var nilTr *Trace
	nilTr.AddStage(StageExec, time.Second)
	nilTr.StepScanned(0)
	if nilTr.Total() != 0 || len(nilTr.Steps()) != 0 {
		t.Error("nil trace recorded something")
	}
	// Step recording without EnableSteps is a no-op.
	tr2 := AcquireTrace()
	defer tr2.Release()
	tr2.StepScanned(0)
	if len(tr2.Steps()) != 0 {
		t.Error("unarmed trace recorded a step")
	}
}

func TestSlowLog(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(&buf, 10*time.Millisecond, 0)
	if l.Record("sparql", "q1", 3, 10, false, "", 5*time.Millisecond, nil) {
		t.Error("under-threshold query logged")
	}
	tr := AcquireTrace()
	defer tr.Release()
	tr.AddStage(StageExec, 11*time.Millisecond)
	if !l.Record("sparql", "q2", 3, 10, true, "", 12*time.Millisecond, tr) {
		t.Error("over-threshold query not logged")
	}
	var entry SlowQuery
	if err := json.Unmarshal(buf.Bytes(), &entry); err != nil {
		t.Fatalf("entry is not JSON: %v (%q)", err, buf.String())
	}
	if entry.Kind != "slow_query" || entry.Query != "q2" || entry.Rows != 10 ||
		entry.Generation != 3 || !entry.Truncated || entry.DurationMs != 12 {
		t.Errorf("entry = %+v", entry)
	}
	if entry.StagesUs["exec"] != 11000 {
		t.Errorf("stages = %v", entry.StagesUs)
	}
	if l.Logged() != 1 {
		t.Errorf("logged = %d", l.Logged())
	}
}

func TestSlowLogSampling(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(&buf, time.Millisecond, time.Hour)
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }
	if !l.Record("sparql", "q1", 0, 0, false, "", time.Second, nil) {
		t.Fatal("first slow query not logged")
	}
	if l.Record("sparql", "q2", 0, 0, false, "", time.Second, nil) {
		t.Error("second slow query inside the gap was logged")
	}
	if l.Suppressed() != 1 {
		t.Errorf("suppressed = %d", l.Suppressed())
	}
	now = now.Add(2 * time.Hour)
	if !l.Record("sparql", "q3", 0, 0, false, "", time.Second, nil) {
		t.Error("slow query after the gap not logged")
	}
	if got := len(bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))); got != 2 {
		t.Errorf("entries = %d, want 2", got)
	}
	// Disabled logs never fire.
	if NewSlowLog(nil, time.Millisecond, 0).Record("e", "q", 0, 0, false, "", time.Hour, nil) {
		t.Error("nil-writer log fired")
	}
	var nilLog *SlowLog
	if nilLog.Record("e", "q", 0, 0, false, "", time.Hour, nil) {
		t.Error("nil log fired")
	}
}
