package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: log-spaced octaves (powers of two of the
// nanosecond scale) subdivided into histSub linearly spaced sub-buckets
// — the HDR-histogram layout with 2 mantissa bits. Bucket index is a
// handful of integer ops (one Len64), recording is one atomic add per
// bucket + count + sum, and the relative quantization error is bounded
// by 1/histSub = 25% before interpolation, far inside the bench gate's
// tolerance. NumBuckets covers [0ns, ~137s); anything slower clamps
// into the last bucket, which the exposition reports as +Inf.
const (
	histSubBits = 2
	histSub     = 1 << histSubBits

	// NumBuckets is the fixed bucket count of every Histogram.
	NumBuckets = 144
)

// Histogram is a lock-free fixed-bucket latency histogram: any number
// of goroutines Observe concurrently with plain atomic adds, snapshots
// are cheap copies, and snapshots from different histograms (or
// processes) merge by bucket-wise addition. The zero value is ready to
// use.
//
// A snapshot taken while writers are active may be torn by at most the
// in-flight observations (count, sum and buckets are read
// independently); Quantile therefore derives its total from the bucket
// array itself, never from Count.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
}

// bucketIndex maps a nanosecond value to its bucket: identity below
// histSub, then (octave, sub-bucket) above. The mapping is continuous
// — bucket upper bounds are exactly the next bucket's lower bounds.
func bucketIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	msb := bits.Len64(v) - 1
	idx := (msb-histSubBits)*histSub + int((v>>(msb-histSubBits))&(histSub-1)) + histSub
	if idx >= NumBuckets {
		return NumBuckets - 1
	}
	return idx
}

// BucketBound returns the exclusive upper bound, in nanoseconds, of
// bucket i. The last bucket is the overflow bucket; its nominal bound
// is returned but Observe clamps larger values into it.
func BucketBound(i int) uint64 {
	if i < histSub {
		return uint64(i + 1)
	}
	j := i - histSub
	msb := j/histSub + histSubBits
	sub := uint64(j % histSub)
	return 1<<msb + (sub+1)<<(msb-histSubBits)
}

// octaveEdge reports whether bucket i's upper bound is a power of two
// — the subset of bounds the Prometheus exposition emits.
func octaveEdge(i int) bool {
	if i < histSub {
		return i == histSub-1
	}
	return (i-histSub)%histSub == histSub-1
}

// Observe records one duration. Negative durations count as zero.
//
//rdf:hotpath
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	v := uint64(d)
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistogramSnapshot is a point-in-time copy of a histogram, suitable
// for merging and quantile estimation.
type HistogramSnapshot struct {
	Buckets [NumBuckets]uint64
	Count   uint64
	Sum     uint64 // nanoseconds
}

// Snapshot copies the current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// Merge adds o's observations into s: same-geometry histograms from
// different goroutines, shards or processes aggregate exactly.
func (s *HistogramSnapshot) Merge(o *HistogramSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Quantile estimates the q-quantile (q in [0,1]) with linear
// interpolation inside the target bucket. It returns 0 for an empty
// snapshot. The estimate's relative error is bounded by the sub-bucket
// width (25%) and is far smaller for smooth distributions.
func (s *HistogramSnapshot) Quantile(q float64) time.Duration {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := uint64(0)
	for i := range s.Buckets {
		total += s.Buckets[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range s.Buckets {
		n := float64(s.Buckets[i])
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo := 0.0
			if i > 0 {
				lo = float64(BucketBound(i - 1))
			}
			hi := float64(BucketBound(i))
			frac := (rank - cum) / n
			return time.Duration(lo + (hi-lo)*frac)
		}
		cum += n
	}
	return time.Duration(BucketBound(NumBuckets - 1))
}

// Mean returns the average observed duration, 0 when empty.
func (s *HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}
