// Package obs is the observability substrate of the serving stack: a
// stdlib-only metrics registry (atomic counters, callback gauges,
// lock-free fixed-bucket latency histograms) with Prometheus
// text-format exposition, a pooled per-request trace that records
// per-stage wall time and per-pattern cardinalities, and a sampled
// structured slow-query log.
//
// The recording paths — Counter.Add, Histogram.Observe, the Trace
// step/stage recorders — are //rdf:hotpath: they run once per request,
// per stage or per candidate triple inside the serving loops, must not
// allocate, and are safe for any number of concurrent goroutines
// (plain atomics, no locks). Exposition and snapshotting are cold
// paths and allocate freely.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; counters handed out by a Registry are additionally
// exposed on /metrics.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
//
//rdf:hotpath
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
//
//rdf:hotpath
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Load returns the current count.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// metricKind is the Prometheus TYPE of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is one labeled sample set within a family; exactly one of the
// value sources is set.
type series struct {
	labels    string // rendered label pairs without braces, e.g. `stage="parse"`; empty for none
	counter   *Counter
	counterFn func() uint64
	gaugeFn   func() float64
	hist      *Histogram
}

// family groups the series sharing one metric name; HELP and TYPE are
// emitted once per family.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry holds named metrics for exposition. Registration happens at
// server construction (it locks and allocates); the handed-out Counter
// and Histogram pointers are then recorded into lock-free. Families
// are exposed in registration order; series within a family in the
// order they were added.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// register appends a series to name's family, creating the family on
// first use. Registering the same name with two different kinds is a
// programming error and panics at construction time.
func (r *Registry) register(name, help string, kind metricKind, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, f.kind, kind))
	}
	f.series = append(f.series, s)
}

// Counter registers and returns a counter series. labels is the
// rendered Prometheus label list without braces (e.g. `cache="plan"`),
// or empty for an unlabeled metric.
func (r *Registry) Counter(name, labels, help string) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, &series{labels: labels, counter: c})
	return c
}

// CounterFunc registers a counter series whose value is read from fn
// at exposition time — for counts maintained elsewhere (cache
// hit/miss totals, slow-query counts) that must not be double-tracked.
// fn must be monotonically non-decreasing and safe to call
// concurrently.
func (r *Registry) CounterFunc(name, labels, help string, fn func() uint64) {
	r.register(name, help, kindCounter, &series{labels: labels, counterFn: fn})
}

// GaugeFunc registers a gauge series evaluated at exposition time. fn
// must be safe to call concurrently.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) {
	r.register(name, help, kindGauge, &series{labels: labels, gaugeFn: fn})
}

// Histogram registers and returns a latency histogram series.
func (r *Registry) Histogram(name, labels, help string) *Histogram {
	h := &Histogram{}
	r.register(name, help, kindHistogram, &series{labels: labels, hist: h})
	return h
}

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4). Histograms expose their
// cumulative buckets at octave boundaries (every power of two of the
// nanosecond scale, converted to seconds) — the fine sub-octave
// resolution stays internal to quantile computation.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	var buf []byte
	for _, f := range fams {
		buf = buf[:0]
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.help...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, string(f.kind)...)
		buf = append(buf, '\n')
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				buf = appendSample(buf, f.name, "", s.labels, "", float64(s.counter.Load()))
			case s.counterFn != nil:
				buf = appendSample(buf, f.name, "", s.labels, "", float64(s.counterFn()))
			case s.gaugeFn != nil:
				buf = appendSample(buf, f.name, "", s.labels, "", s.gaugeFn())
			case s.hist != nil:
				buf = appendHistogram(buf, f.name, s.labels, s.hist.Snapshot())
			}
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// appendSample renders one exposition line:
// name<suffix>{labels,extra} value.
func appendSample(buf []byte, name, suffix, labels, extra string, v float64) []byte {
	buf = append(buf, name...)
	buf = append(buf, suffix...)
	if labels != "" || extra != "" {
		buf = append(buf, '{')
		buf = append(buf, labels...)
		if labels != "" && extra != "" {
			buf = append(buf, ',')
		}
		buf = append(buf, extra...)
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
	buf = append(buf, '\n')
	return buf
}

// appendHistogram renders the cumulative _bucket series at octave
// bounds, then _sum (seconds) and _count.
func appendHistogram(buf []byte, name, labels string, s HistogramSnapshot) []byte {
	cum := uint64(0)
	for i := 0; i < NumBuckets; i++ {
		cum += s.Buckets[i]
		if i == NumBuckets-1 {
			break // the last bucket is the overflow bucket: exposed as +Inf below
		}
		if !octaveEdge(i) {
			continue
		}
		le := strconv.FormatFloat(float64(BucketBound(i))/1e9, 'g', -1, 64)
		buf = appendSample(buf, name, "_bucket", labels, `le="`+le+`"`, float64(cum))
	}
	buf = appendSample(buf, name, "_bucket", labels, `le="+Inf"`, float64(cum))
	buf = appendSample(buf, name, "_sum", labels, "", float64(s.Sum)/1e9)
	buf = appendSample(buf, name, "_count", labels, "", float64(s.Count))
	return buf
}

// Sample is one parsed exposition line, as returned by ParseProm.
type Sample struct {
	Name   string            // metric name including _bucket/_sum/_count suffixes
	Labels map[string]string // nil when the line carries no labels
	Value  float64
}

// ParseProm is a minimal Prometheus text-format parser: enough to
// verify a scrape of WritePrometheus round-trips (names, labels,
// values, HELP/TYPE pairing). It rejects malformed lines, a TYPE
// repeated for one name, and samples without a preceding TYPE — the
// properties a real scraper depends on. It is used by the exposition
// tests and by operators spot-checking a scrape; it does not aim to
// parse arbitrary third-party exposition.
func ParseProm(r io.Reader) ([]Sample, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	typed := map[string]string{}
	var samples []Sample
	lineNo := 0
	for len(data) > 0 {
		lineNo++
		line := data
		if i := indexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		if len(line) == 0 {
			continue
		}
		if line[0] == '#' {
			name, kind, ok := parseMeta(string(line))
			if !ok {
				return nil, fmt.Errorf("obs: line %d: malformed comment %q", lineNo, line)
			}
			if kind != "" { // a TYPE line
				if _, dup := typed[name]; dup {
					return nil, fmt.Errorf("obs: line %d: duplicate TYPE for %s", lineNo, name)
				}
				typed[name] = kind
			}
			continue
		}
		s, err := parseSample(string(line))
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		base := s.Name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if t := trimSuffix(s.Name, suffix); t != s.Name && typed[t] == string(kindHistogram) {
				base = t
			}
		}
		if _, ok := typed[base]; !ok {
			return nil, fmt.Errorf("obs: line %d: sample %s precedes its TYPE", lineNo, s.Name)
		}
		samples = append(samples, s)
	}
	return samples, nil
}

func indexByte(b []byte, c byte) int {
	for i := range b {
		if b[i] == c {
			return i
		}
	}
	return -1
}

func trimSuffix(s, suffix string) string {
	if len(s) > len(suffix) && s[len(s)-len(suffix):] == suffix {
		return s[:len(s)-len(suffix)]
	}
	return s
}

// parseMeta parses "# HELP name ..." / "# TYPE name kind" comments,
// returning the metric name and, for TYPE lines, the kind.
func parseMeta(line string) (name, kind string, ok bool) {
	fields := splitFields(line)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", false
	}
	switch fields[1] {
	case "HELP":
		return fields[2], "", true
	case "TYPE":
		if len(fields) != 4 {
			return "", "", false
		}
		return fields[2], fields[3], true
	}
	return "", "", false
}

// parseSample parses one "name{l="v",...} value" line.
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	brace := -1
	for i := 0; i < len(rest); i++ {
		if rest[i] == '{' {
			brace = i
			break
		}
		if rest[i] == ' ' {
			break
		}
	}
	if brace >= 0 {
		s.Name = rest[:brace]
		end := -1
		for i := brace + 1; i < len(rest); i++ {
			if rest[i] == '}' {
				end = i
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[brace+1 : end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	} else {
		i := 0
		for i < len(rest) && rest[i] != ' ' {
			i++
		}
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if s.Name == "" {
		return s, fmt.Errorf("missing metric name in %q", line)
	}
	for len(rest) > 0 && rest[0] == ' ' {
		rest = rest[1:]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string) (map[string]string, error) {
	m := map[string]string{}
	for body != "" {
		eq := -1
		for i := 0; i < len(body); i++ {
			if body[i] == '=' {
				eq = i
				break
			}
		}
		if eq < 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label in %q", body)
		}
		name := body[:eq]
		i := eq + 2
		var val []byte
		for i < len(body) && body[i] != '"' {
			if body[i] == '\\' && i+1 < len(body) {
				i++
			}
			val = append(val, body[i])
			i++
		}
		if i >= len(body) {
			return nil, fmt.Errorf("unterminated label value in %q", body)
		}
		m[name] = string(val)
		body = body[i+1:]
		if body != "" {
			if body[0] != ',' {
				return nil, fmt.Errorf("missing comma in label set %q", body)
			}
			body = body[1:]
		}
	}
	return m, nil
}

func splitFields(s string) []string {
	var out []string
	i := 0
	for i < len(s) {
		for i < len(s) && s[i] == ' ' {
			i++
		}
		j := i
		for j < len(s) && s[j] != ' ' {
			j++
		}
		if j > i {
			out = append(out, s[i:j])
		}
		i = j
	}
	return out
}

// SortSamples orders samples by name then rendered labels, for stable
// test comparison.
func SortSamples(samples []Sample) {
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].Name != samples[j].Name {
			return samples[i].Name < samples[j].Name
		}
		return fmt.Sprint(samples[i].Labels) < fmt.Sprint(samples[j].Labels)
	})
}
