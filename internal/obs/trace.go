package obs

import (
	"sync"
	"time"
)

// Stage is one phase of a request's life. Stage times are recorded
// into a Trace by the serving path and surfaced as histograms
// (/metrics), a Server-Timing header/trailer, the ?explain=1 document
// and the slow-query log.
type Stage uint8

const (
	// StageQueue is the wait for a worker-pool slot.
	StageQueue Stage = iota
	// StageParse covers query translation and parsing.
	StageParse
	// StagePlan covers plan-cache lookup or BGP planning.
	StagePlan
	// StageExec is the executor's time, including row serialization
	// into the response buffer (the two interleave on the streaming
	// path); client-write time is subtracted out into StageRender.
	StageExec
	// StageRender is the time spent pushing bytes toward the client:
	// buffered flushes, gzip compression and the final head/tail
	// writes.
	StageRender

	// NumStages is the number of stages; Trace arrays are indexed by
	// Stage.
	NumStages = int(StageRender) + 1
)

var stageNames = [NumStages]string{"queue", "parse", "plan", "exec", "render"}

// String returns the stage's exposition label.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// PatternStat is the per-execution-step cardinality record of a traced
// query: which triple pattern ran at this plan position, how many
// candidate triples its selections produced (Scanned), and how many
// survived binding consistency (Matched). For a step resolved inside a
// leapfrog merge-intersection, Gallop is set, Scanned counts the
// stream advances (Next/NextGEQ) and Matched the agreed values — the
// gap is exactly the work the join optimization skips.
type PatternStat struct {
	Pattern int    // index into the query's pattern list
	Calls   uint64 // times this step (re-)issued its selection
	Scanned uint64
	Matched uint64
	Gallop  bool
}

// Trace is a pooled per-request recording context. The stage recorders
// and step recorders are nil-safe and allocation-free, so the serving
// and executor hot loops call them unconditionally; a request without
// a trace passes nil and pays one predictable branch.
type Trace struct {
	// Stages holds the accumulated wall time per stage.
	Stages [NumStages]time.Duration
	steps  []PatternStat
}

var tracePool = sync.Pool{New: func() any { return &Trace{} }}

// AcquireTrace returns a cleared trace from the pool.
func AcquireTrace() *Trace {
	tr := tracePool.Get().(*Trace)
	tr.Stages = [NumStages]time.Duration{}
	tr.steps = tr.steps[:0]
	//rdf:allow(ownership transfers to the caller; Release returns it to the pool)
	return tr
}

// Release returns the trace to the pool. The trace and the slice
// returned by Steps must not be used afterwards.
func (t *Trace) Release() {
	if t == nil {
		return
	}
	tracePool.Put(t)
}

// EnableSteps arms per-pattern recording for an n-step plan. Without
// it, the step recorders are no-ops (stage timing alone has no
// per-candidate cost). The backing array is reused across requests, so
// steady-state recording does not allocate.
func (t *Trace) EnableSteps(n int) {
	if cap(t.steps) < n {
		t.steps = make([]PatternStat, n)
	}
	t.steps = t.steps[:n]
	for i := range t.steps {
		t.steps[i] = PatternStat{}
	}
}

// Steps returns the recorded per-step stats; valid until Release.
func (t *Trace) Steps() []PatternStat {
	if t == nil {
		return nil
	}
	return t.steps
}

// AddStage accumulates wall time into a stage.
//
//rdf:hotpath
func (t *Trace) AddStage(s Stage, d time.Duration) {
	if t == nil {
		return
	}
	t.Stages[s] += d
}

// Total returns the sum of all recorded stage times.
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	var sum time.Duration
	for _, d := range t.Stages {
		sum += d
	}
	return sum
}

// StepIssued records that execution step (plan position) step issued a
// selection for pattern (its index in the query), under gallop when it
// is one stream of a merge-intersection.
//
//rdf:hotpath
func (t *Trace) StepIssued(step, pattern int, gallop bool) {
	if t == nil || step >= len(t.steps) {
		return
	}
	st := &t.steps[step]
	st.Pattern = pattern
	st.Calls++
	st.Gallop = gallop
}

// StepScanned counts one candidate examined at step.
//
//rdf:hotpath
func (t *Trace) StepScanned(step int) {
	if t == nil || step >= len(t.steps) {
		return
	}
	t.steps[step].Scanned++
}

// StepMatched counts one candidate surviving binding at step.
//
//rdf:hotpath
func (t *Trace) StepMatched(step int) {
	if t == nil || step >= len(t.steps) {
		return
	}
	t.steps[step].Matched++
}
