package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SlowLog writes one structured JSON line per query whose total time
// crosses a threshold, with sampling: at most one entry per MinGap, so
// a storm of slow queries (an overloaded store makes every query slow
// at once) degrades to a heartbeat instead of multiplying the
// overload with logging I/O. Suppressed entries are counted, never
// silently dropped. All methods are safe for concurrent use; Record is
// called on the serving path but only does work past the threshold
// comparison, which is one branch.
type SlowLog struct {
	threshold time.Duration
	minGap    time.Duration

	last       atomic.Int64 // unix nanos of the last written entry
	logged     atomic.Uint64
	suppressed atomic.Uint64

	mu  sync.Mutex
	w   io.Writer
	now func() time.Time // test seam
}

// NewSlowLog returns a log writing entries for queries slower than
// threshold to w, with at most one entry per minGap (0 logs every slow
// query). A nil SlowLog, a zero threshold or a nil writer disable
// logging entirely.
func NewSlowLog(w io.Writer, threshold, minGap time.Duration) *SlowLog {
	return &SlowLog{w: w, threshold: threshold, minGap: minGap, now: time.Now}
}

// SlowQuery is one slow-query log entry. StagesUs is present when the
// request carried a stage trace.
type SlowQuery struct {
	Time        string             `json:"ts"`
	Kind        string             `json:"kind"` // always "slow_query"
	Endpoint    string             `json:"endpoint"`
	Query       string             `json:"query"`
	DurationMs  float64            `json:"duration_ms"`
	ThresholdMs float64            `json:"threshold_ms"`
	StagesUs    map[string]float64 `json:"stages_us,omitempty"`
	Generation  uint64             `json:"generation"`
	Rows        int                `json:"rows"`
	Truncated   bool               `json:"truncated,omitempty"`
	Error       string             `json:"error,omitempty"`
}

// Record logs the query when total crosses the threshold and the
// sampler admits it, and reports whether an entry was written. tr may
// be nil (no stage breakdown).
func (l *SlowLog) Record(endpoint, query string, gen uint64, rows int, truncated bool, errMsg string, total time.Duration, tr *Trace) bool {
	if l == nil || l.w == nil || l.threshold <= 0 || total < l.threshold {
		return false
	}
	now := l.now()
	if l.minGap > 0 {
		last := l.last.Load()
		if (last != 0 && now.UnixNano()-last < int64(l.minGap)) || !l.last.CompareAndSwap(last, now.UnixNano()) {
			l.suppressed.Add(1)
			return false
		}
	}
	entry := SlowQuery{
		Time:        now.UTC().Format(time.RFC3339Nano),
		Kind:        "slow_query",
		Endpoint:    endpoint,
		Query:       query,
		DurationMs:  float64(total) / 1e6,
		ThresholdMs: float64(l.threshold) / 1e6,
		Generation:  gen,
		Rows:        rows,
		Truncated:   truncated,
		Error:       errMsg,
	}
	if tr != nil {
		entry.StagesUs = make(map[string]float64, NumStages)
		for i := 0; i < NumStages; i++ {
			entry.StagesUs[Stage(i).String()] = float64(tr.Stages[i]) / 1e3
		}
	}
	line, err := json.Marshal(entry)
	if err != nil {
		return false
	}
	line = append(line, '\n')
	l.mu.Lock()
	_, werr := l.w.Write(line)
	l.mu.Unlock()
	if werr != nil {
		return false
	}
	l.logged.Add(1)
	return true
}

// Threshold returns the configured threshold (0 when disabled).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Logged returns the number of entries written.
func (l *SlowLog) Logged() uint64 {
	if l == nil {
		return 0
	}
	return l.logged.Load()
}

// Suppressed returns the number of over-threshold queries the sampler
// dropped.
func (l *SlowLog) Suppressed() uint64 {
	if l == nil {
		return 0
	}
	return l.suppressed.Load()
}
