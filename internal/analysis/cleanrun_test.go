package analysis

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestServingPathPoolHygieneClean pins the audit result for the
// serving stack's pooling code: the gzip-writer release in
// internal/server/protocol.go (Get on one branch, Put behind a nil
// guard) and the merge-state recycling in internal/shard verify clean
// under the real vettool pipeline, with no suppressions beyond the
// documented ownership-transfer //rdf:allow annotations. If a future
// edit introduces a leaky early return, a retained pooled value, or a
// use-after-Put in these packages, this test fails even when CI's lint
// job is skipped.
func TestServingPathPoolHygieneClean(t *testing.T) {
	modRoot := findModRootClean(t)
	tool := filepath.Join(t.TempDir(), "rdflint")
	build := exec.Command("go", "build", "-o", tool, "./cmd/rdflint")
	build.Dir = modRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building rdflint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+tool,
		"./internal/server/...", "./internal/shard/...", "./internal/store/...")
	vet.Dir = modRoot
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("serving-path packages are no longer rdflint-clean: %v\n%s", err, out)
	}
}

func findModRootClean(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, statErr := os.Stat(filepath.Join(dir, "go.mod")); statErr == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
