package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath rejects AST-level allocation constructs inside functions
// annotated //rdf:hotpath: the per-row / per-triple serving paths whose
// zero-allocation steady state the repository's benchmarks and
// AllocsPerRun pins depend on. The checks are syntactic and
// type-informed but deliberately conservative — what the AST cannot
// prove allocation-free is flagged, and intentional exceptions carry an
// //rdf:allow(reason). Amortized growth (append, map insert into
// bounded caches) is allowed by design: those are the idioms the hot
// paths are built on.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "reject allocation constructs in //rdf:hotpath functions",
	Run:  runHotPath,
}

func runHotPath(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcDocHas(fd, "//rdf:hotpath") {
				continue
			}
			hp := &hotPathCheck{p: p, fd: fd}
			hp.stmtList(fd.Body.List)
			ast.Inspect(fd.Body, hp.inspect)
		}
	}
}

type hotPathCheck struct {
	p  *Pass
	fd *ast.FuncDecl
}

func (h *hotPathCheck) reportf(pos token.Pos, format string, args ...any) {
	h.p.Reportf("hotpath", pos, format, args...)
}

// stmtList covers the checks that need statement-level context (return
// results, assignment targets); inspect covers the purely expression-
// local ones.
func (h *hotPathCheck) stmtList(stmts []ast.Stmt) {
	sig, _ := h.p.Info.TypeOf(h.fd.Name).(*types.Signature)
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					if i >= len(st.Rhs) {
						break // x, y := f() — conversion covered at the call
					}
					h.boxCheck(h.p.Info.TypeOf(lhs), st.Rhs[i])
				}
			case *ast.ReturnStmt:
				if sig == nil || sig.Results() == nil || len(st.Results) != sig.Results().Len() {
					return true
				}
				for i, r := range st.Results {
					h.boxCheck(sig.Results().At(i).Type(), r)
				}
			case *ast.ValueSpec:
				if st.Type == nil {
					return true
				}
				dt := h.p.Info.TypeOf(st.Type)
				for _, v := range st.Values {
					h.boxCheck(dt, v)
				}
			}
			return true
		})
	}
}

func (h *hotPathCheck) inspect(n ast.Node) bool {
	switch e := n.(type) {
	case *ast.CallExpr:
		h.call(e)
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			if t := h.p.Info.TypeOf(e); t != nil && isStringType(t) {
				h.reportf(e.OpPos, "hot path: string concatenation allocates; append into a reused []byte buffer")
			}
		}
	case *ast.CompositeLit:
		t := h.p.Info.TypeOf(e)
		if t == nil {
			break
		}
		switch t.Underlying().(type) {
		case *types.Slice:
			h.reportf(e.Pos(), "hot path: slice literal allocates; reuse a pooled or caller-provided buffer")
		case *types.Map:
			h.reportf(e.Pos(), "hot path: map literal allocates; hoist it out of the hot function")
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, ok := e.X.(*ast.CompositeLit); ok {
				h.reportf(e.Pos(), "hot path: &composite literal escapes to the heap; reuse pooled state")
			}
		}
	case *ast.FuncLit:
		if obj := h.capturedLocal(e); obj != nil {
			h.reportf(e.Pos(), "hot path: closure captures local %q and allocates; hoist the function or pass state explicitly", obj.Name())
		}
	}
	return true
}

// call flags make/new, fmt calls, allocating string conversions, and
// interface boxing at argument positions.
func (h *hotPathCheck) call(call *ast.CallExpr) {
	// Conversions: T(x).
	if tv, ok := h.p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		h.conversion(call, tv.Type)
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			if isBuiltin(h.p.Info, fun) {
				h.reportf(call.Pos(), "hot path: make allocates; reuse a pooled or caller-provided buffer")
				return
			}
		case "new":
			if isBuiltin(h.p.Info, fun) {
				h.reportf(call.Pos(), "hot path: new allocates; reuse pooled state")
				return
			}
		}
	case *ast.SelectorExpr:
		if obj, ok := h.p.Info.Uses[fun.Sel]; ok {
			if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				h.reportf(call.Pos(), "hot path: fmt.%s allocates (interface boxing, reflection); use strconv/append builders", fn.Name())
				return
			}
		}
	}
	// Interface boxing of arguments.
	sig, ok := h.p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice: no per-element boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		h.boxCheck(pt, arg)
	}
}

// conversion flags []byte <-> string <-> []rune conversions (which
// copy) and conversions to interface types (which box).
func (h *hotPathCheck) conversion(call *ast.CallExpr, target types.Type) {
	src := h.p.Info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	if types.IsInterface(target.Underlying()) {
		h.boxCheck(target, call.Args[0])
		return
	}
	to, from := target.Underlying(), src.Underlying()
	switch {
	case isStringType(to) && !isStringType(from) && !isIntegerType(from):
		h.reportf(call.Pos(), "hot path: string(...) conversion copies; keep the bytes and compare/append directly")
	case isStringType(to) && isIntegerType(from):
		h.reportf(call.Pos(), "hot path: string(rune) conversion allocates; use strconv or utf8.AppendRune into a buffer")
	case isByteOrRuneSlice(to) && isStringType(from):
		h.reportf(call.Pos(), "hot path: []byte(string) conversion copies; append the string into a reused buffer instead")
	}
}

// boxCheck flags storing a concrete non-pointer-shaped value into an
// interface-typed slot: the conversion heap-allocates the value's box.
// Pointer-shaped values (pointers, channels, maps, funcs) ride in the
// interface word for free, constants fold into static boxes, and nil is
// nil.
func (h *hotPathCheck) boxCheck(dst types.Type, src ast.Expr) {
	if dst == nil || !types.IsInterface(dst.Underlying()) {
		return
	}
	tv, ok := h.p.Info.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() || tv.Value != nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return
	}
	if bt, ok := tv.Type.Underlying().(*types.Basic); ok && bt.Kind() == types.UnsafePointer {
		return
	}
	h.reportf(src.Pos(), "hot path: interface boxing of non-pointer %s allocates; pass a pointer or avoid the interface", tv.Type)
}

// capturedLocal returns a variable declared in the enclosing function
// (but outside lit) that lit references, or nil: referencing one turns
// the literal into a heap-allocated closure.
func (h *hotPathCheck) capturedLocal(lit *ast.FuncLit) *types.Var {
	var captured *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := h.p.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Parent() == h.p.Pkg.Scope() || obj.Parent() == types.Universe {
			return true // package-level or universe: not a capture
		}
		// Declared inside the enclosing function but outside the literal.
		if obj.Pos() >= h.fd.Pos() && obj.Pos() < h.fd.End() &&
			!(obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()) {
			captured = obj
		}
		return true
	})
	return captured
}

func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}
