package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolHygiene tracks every sync.Pool.Get through the function that
// performs it and demands the value reach a Put on all paths that leave
// the function. Ownership transfers out of the function — factory
// helpers that return a pooled value for a later Release — are legal
// but must be spelled out with //rdf:allow(reason) at the escaping
// return. The checker also rejects storing pooled values into state
// that outlives the request (globals, fields of parameters or
// receivers) and any use of a value after it was returned to the pool.
//
// The walk is a small abstract interpretation: a set of states, each
// mapping tracked variables to live/dead, flows through the statement
// list. Branches fork the set and path conditions prune it — `if v !=
// nil` discards live-v states from the else branch (a Get result is
// never nil), and the comma-ok form of `pool.Get().(*T)` forks into a
// hit state and a miss state keyed by the ok variable — so the
// repository's guarded-release and typed-Get idioms verify without
// annotation.
var PoolHygiene = &Analyzer{
	Name: "poolhygiene",
	Doc:  "sync.Pool values must reach Put on every path",
	Run:  runPoolHygiene,
}

func runPoolHygiene(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &poolCheck{p: p, fd: fd, reported: map[string]bool{}, handled: map[ast.Node]bool{}}
			out := c.exec([]*poolState{newPoolState()}, fd.Body.List)
			c.checkExit(out, fd.Body.Rbrace, nil)
		}
	}
}

type poolStatus int

const (
	psLive     poolStatus = iota + 1 // holds a Get result that still owes a Put
	psDead                           // returned to the pool; using it now is a bug
	psDeferred                       // a deferred Put covers it on every exit
)

// poolState is one abstract execution state: which variables currently
// hold pooled values, and which boolean facts (comma-ok results) are
// known on this path.
type poolState struct {
	vars  map[*types.Var]poolStatus
	bools map[*types.Var]bool
}

func newPoolState() *poolState {
	return &poolState{vars: map[*types.Var]poolStatus{}, bools: map[*types.Var]bool{}}
}

func (s *poolState) clone() *poolState {
	n := newPoolState()
	for k, v := range s.vars {
		n.vars[k] = v
	}
	for k, v := range s.bools {
		n.bools[k] = v
	}
	return n
}

// maxPoolStates caps the state set; pathological branch fans degrade to
// analyzing a prefix of the set rather than exploding.
const maxPoolStates = 64

type poolCheck struct {
	p        *Pass
	fd       *ast.FuncDecl
	reported map[string]bool
	handled  map[ast.Node]bool // Get calls consumed by a recognized pattern
}

func (c *poolCheck) reportOnce(pos token.Pos, key, format string, args ...any) {
	where := c.p.Fset.Position(pos)
	k := where.String() + ":" + key
	if c.reported[k] {
		return
	}
	c.reported[k] = true
	c.p.Reportf("poolhygiene", pos, format, args...)
}

// poolMethod resolves call to (*sync.Pool).Get or Put.
func poolMethod(p *Pass, call *ast.CallExpr) (name string, ok bool) {
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK {
		return "", false
	}
	fn, fnOK := p.Info.Uses[sel.Sel].(*types.Func)
	if !fnOK || (fn.Name() != "Get" && fn.Name() != "Put") {
		return "", false
	}
	sig, sigOK := fn.Type().(*types.Signature)
	if !sigOK || sig.Recv() == nil {
		return "", false
	}
	rt := sig.Recv().Type()
	if ptr, isPtr := rt.(*types.Pointer); isPtr {
		rt = ptr.Elem()
	}
	named, namedOK := rt.(*types.Named)
	if !namedOK || named.Obj().Pkg() == nil {
		return "", false
	}
	if named.Obj().Pkg().Path() != "sync" || named.Obj().Name() != "Pool" {
		return "", false
	}
	return fn.Name(), true
}

// getCall unwraps expr to a (*sync.Pool).Get call, looking through one
// type assertion (the `pool.Get().(*T)` idiom). assert reports whether
// an assertion wrapped it.
func (c *poolCheck) getCall(expr ast.Expr) (call *ast.CallExpr, assert bool) {
	e := ast.Unparen(expr)
	if ta, ok := e.(*ast.TypeAssertExpr); ok && ta.Type != nil {
		e, assert = ast.Unparen(ta.X), true
	}
	if ce, ok := e.(*ast.CallExpr); ok {
		if name, isPool := poolMethod(c.p, ce); isPool && name == "Get" {
			return ce, assert
		}
	}
	return nil, false
}

func (c *poolCheck) varOf(expr ast.Expr) *types.Var {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := c.p.Info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := c.p.Info.Uses[id].(*types.Var)
	return v
}

// exec flows the state set through stmts, reporting as it goes, and
// returns the states that fall off the end. Terminated paths (return)
// contribute nothing. An empty input set means the code is infeasible
// under the tracked facts and is skipped.
func (c *poolCheck) exec(states []*poolState, stmts []ast.Stmt) []*poolState {
	for _, stmt := range stmts {
		if len(states) == 0 {
			return nil
		}
		states = c.execStmt(states, stmt)
	}
	return states
}

func (c *poolCheck) execStmt(states []*poolState, stmt ast.Stmt) []*poolState {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		return c.assign(states, s)

	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if name, isPool := poolMethod(c.p, call); isPool && name == "Put" && len(call.Args) == 1 {
				return c.put(states, call)
			}
		}
		c.useScan(states, s)
		return states

	case *ast.DeferStmt:
		if name, isPool := poolMethod(c.p, s.Call); isPool && name == "Put" && len(s.Call.Args) == 1 {
			if v := c.varOf(s.Call.Args[0]); v != nil {
				for _, st := range states {
					if st.vars[v] == psLive {
						st.vars[v] = psDeferred
					}
				}
				return states
			}
		}
		c.useScan(states, s)
		return states

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if gc, _ := c.getCall(r); gc != nil {
				c.handled[gc] = true
				c.reportOnce(s.Pos(), "retget", "sync.Pool.Get result escapes via return; add //rdf:allow(reason) if the caller takes ownership")
			}
		}
		c.useScan(states, s)
		c.checkExit(states, s.Pos(), s.Results)
		return nil

	case *ast.IfStmt:
		if s.Init != nil {
			states = c.execStmt(states, s.Init)
		}
		c.useScan(states, s.Cond)
		thenStates, elseStates := c.filterCond(states, s.Cond)
		out := c.exec(clonePoolStates(thenStates), s.Body.List)
		switch e := s.Else.(type) {
		case nil:
			out = append(out, elseStates...)
		case *ast.BlockStmt:
			out = append(out, c.exec(clonePoolStates(elseStates), e.List)...)
		case *ast.IfStmt:
			out = append(out, c.execStmt(clonePoolStates(elseStates), e)...)
		}
		return capPoolStates(out)

	case *ast.BlockStmt:
		return c.exec(states, s.List)

	case *ast.LabeledStmt:
		return c.execStmt(states, s.Stmt)

	case *ast.ForStmt:
		if s.Init != nil {
			states = c.execStmt(states, s.Init)
		}
		if s.Cond != nil {
			c.useScan(states, s.Cond)
		}
		return c.loop(states, s.Body.List, s.Post)

	case *ast.RangeStmt:
		c.useScan(states, s.X)
		return c.loop(states, s.Body.List, nil)

	case *ast.SwitchStmt:
		if s.Init != nil {
			states = c.execStmt(states, s.Init)
		}
		if s.Tag != nil {
			c.useScan(states, s.Tag)
		}
		return c.clauses(states, s.Body)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			states = c.execStmt(states, s.Init)
		}
		c.useScan(states, s.Assign)
		return c.clauses(states, s.Body)

	case *ast.SelectStmt:
		return c.clauses(states, s.Body)

	default:
		c.useScan(states, stmt)
		return states
	}
}

// loop approximates a loop body with two unrollings; states from zero,
// one and two executions all flow past the loop. break/continue are
// modeled as fallthrough, which can miss a leak on a break path but
// never invents one.
func (c *poolCheck) loop(states []*poolState, body []ast.Stmt, post ast.Stmt) []*poolState {
	once := c.exec(clonePoolStates(states), body)
	if post != nil {
		once = c.execStmt(once, post)
	}
	twice := c.exec(clonePoolStates(once), body)
	return capPoolStates(append(append(states, once...), twice...))
}

func (c *poolCheck) clauses(states []*poolState, body *ast.BlockStmt) []*poolState {
	var out []*poolState
	hasDefault := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch clause := cl.(type) {
		case *ast.CaseClause:
			stmts = clause.Body
			hasDefault = hasDefault || clause.List == nil
		case *ast.CommClause:
			stmts = clause.Body
			hasDefault = hasDefault || clause.Comm == nil
			if clause.Comm != nil {
				c.useScan(states, clause.Comm)
			}
		}
		out = append(out, c.exec(clonePoolStates(states), stmts)...)
	}
	if !hasDefault {
		out = append(out, states...)
	}
	return capPoolStates(out)
}

// assign handles Get-binding, overwrites of live values, and stores of
// pooled values into long-lived locations.
func (c *poolCheck) assign(states []*poolState, s *ast.AssignStmt) []*poolState {
	if len(s.Rhs) == 1 {
		if gc, asserted := c.getCall(s.Rhs[0]); gc != nil {
			c.handled[gc] = true
			c.useScan(states, s.Rhs[0]) // flags uses of dead vars in pool/index exprs
			v := c.varOf(s.Lhs[0])
			if v == nil {
				c.reportOnce(s.Pos(), "getdst", "sync.Pool.Get result is not bound to a local variable; it cannot be tracked to a Put")
				return states
			}
			c.overwrite(states, v, s.Pos())
			if asserted && len(s.Lhs) == 2 {
				// v, ok := pool.Get().(*T): fork hit and miss states.
				okVar := c.varOf(s.Lhs[1])
				var out []*poolState
				for _, st := range states {
					hit := st.clone()
					hit.vars[v] = psLive
					miss := st.clone()
					delete(miss.vars, v)
					if okVar != nil {
						hit.bools[okVar] = true
						miss.bools[okVar] = false
					}
					out = append(out, hit, miss)
				}
				return capPoolStates(out)
			}
			for _, st := range states {
				st.vars[v] = psLive
			}
			return states
		}
	}
	for _, rhs := range s.Rhs {
		c.useScan(states, rhs)
	}
	for i, lhs := range s.Lhs {
		// Reassigning a dead variable is fine; only scan the non-ident
		// parts of the target (index bases, selector roots) for dead uses.
		if _, plainIdent := ast.Unparen(lhs).(*ast.Ident); !plainIdent {
			c.useScan(states, lhs)
		}
		if i < len(s.Rhs) {
			c.storeCheck(states, lhs, s.Rhs[i])
		}
		if s.Tok != token.DEFINE {
			if v := c.varOf(lhs); v != nil {
				c.overwrite(states, v, s.Pos())
			}
		}
	}
	return states
}

// overwrite reports a live pooled value being clobbered, then untracks
// the variable.
func (c *poolCheck) overwrite(states []*poolState, v *types.Var, pos token.Pos) {
	for _, st := range states {
		if st.vars[v] == psLive {
			c.reportOnce(pos, "ovw:"+v.Name(), "pooled value %s is overwritten before being returned to the pool", v.Name())
		}
		delete(st.vars, v)
	}
}

// storeCheck flags `x.f = v` / `g = v` where v is a live pooled value
// and the destination outlives the request: a package-level variable,
// or a field or element reachable from a parameter or receiver.
func (c *poolCheck) storeCheck(states []*poolState, lhs, rhs ast.Expr) {
	v := c.varOf(rhs)
	if v == nil {
		return
	}
	live := false
	for _, st := range states {
		if st.vars[v] == psLive || st.vars[v] == psDeferred {
			live = true
		}
	}
	if !live {
		return
	}
	root := rootIdentVar(c.p, lhs)
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if root != nil && root.Parent() == c.p.Pkg.Scope() {
			c.reportOnce(lhs.Pos(), "store:"+v.Name(), "pooled value %s stored into package-level %s outlives the request", v.Name(), root.Name())
		}
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		_ = l
		if root == nil || root.Parent() == c.p.Pkg.Scope() || c.isParamOrRecv(root) {
			c.reportOnce(lhs.Pos(), "store:"+v.Name(), "pooled value %s stored into a location that may outlive the request", v.Name())
		}
	}
}

// isParamOrRecv reports whether v is a parameter or the receiver of the
// function under analysis.
func (c *poolCheck) isParamOrRecv(v *types.Var) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if c.p.Info.Defs[name] == v {
					return true
				}
			}
		}
		return false
	}
	return check(c.fd.Recv) || check(c.fd.Type.Params) || check(c.fd.Type.Results)
}

// rootIdentVar unwraps selector/index/star/slice chains to the base
// identifier's variable, or nil.
func rootIdentVar(p *Pass, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if v, ok := p.Info.Uses[x].(*types.Var); ok {
				return v
			}
			if v, ok := p.Info.Defs[x].(*types.Var); ok {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// put transitions v live→dead, diagnosing double-Puts.
func (c *poolCheck) put(states []*poolState, call *ast.CallExpr) []*poolState {
	v := c.varOf(call.Args[0])
	if v == nil {
		return states
	}
	deadEverywhere := len(states) > 0
	for _, st := range states {
		if st.vars[v] != psDead {
			deadEverywhere = false
		}
	}
	if deadEverywhere {
		c.reportOnce(call.Pos(), "dbl:"+v.Name(), "%s is returned to the pool twice", v.Name())
	}
	for _, st := range states {
		st.vars[v] = psDead
	}
	return states
}

// useScan reports reads of variables that every state agrees were
// already returned to the pool.
func (c *poolCheck) useScan(states []*poolState, n ast.Node) {
	if n == nil || len(states) == 0 {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		if c.handled[node] {
			return false
		}
		if call, ok := node.(*ast.CallExpr); ok && !c.handled[call] {
			if name, isPool := poolMethod(c.p, call); isPool && name == "Get" {
				c.handled[call] = true
				c.reportOnce(call.Pos(), "naked", "sync.Pool.Get result escapes tracking here; bind it to a local so every path can Put it")
			}
		}
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.p.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		dead := true
		for _, st := range states {
			if st.vars[v] != psDead {
				dead = false
				break
			}
		}
		if dead {
			c.reportOnce(id.Pos(), "uap:"+v.Name(), "use of %s after it was returned to the pool", v.Name())
		}
		return true
	})
}

// checkExit reports pooled values still live when control leaves the
// function. A live value named in the return expression is an ownership
// transfer and gets the //rdf:allow-oriented message; anything else is
// a leak on this path.
func (c *poolCheck) checkExit(states []*poolState, pos token.Pos, results []ast.Expr) {
	for _, st := range states {
		for v, status := range st.vars {
			if status != psLive {
				continue
			}
			if exprsMention(c.p, results, v) {
				c.reportOnce(pos, "esc:"+v.Name(), "pooled value %s escapes via return; add //rdf:allow(reason) if the caller takes ownership", v.Name())
				continue
			}
			c.reportOnce(pos, "leak:"+v.Name(), "sync.Pool value %s is not returned to the pool on this path", v.Name())
		}
	}
}

func exprsMention(p *Pass, exprs []ast.Expr, v *types.Var) bool {
	for _, e := range exprs {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == v {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// filterCond splits the state set by a branch condition, pruning
// infeasible combinations: a live pooled value is never nil, and
// comma-ok facts recorded at a Get fork are decisive.
func (c *poolCheck) filterCond(states []*poolState, cond ast.Expr) (then, els []*poolState) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if v, eq := c.nilTest(e); v != nil {
			for _, st := range states {
				live := st.vars[v] == psLive || st.vars[v] == psDeferred
				if eq { // v == nil: live states only reach else
					if !live {
						then = append(then, st)
					}
					els = append(els, st)
				} else { // v != nil: live states only reach then
					then = append(then, st)
					if !live {
						els = append(els, st)
					}
				}
			}
			return then, els
		}
	case *ast.Ident:
		if v := c.varOf(e); v != nil {
			return c.boolSplit(states, v, true)
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			if v := c.varOf(e.X); v != nil {
				return c.boolSplit(states, v, false)
			}
		}
	}
	return states, states
}

// nilTest matches `v == nil` / `v != nil` (either operand order) and
// returns the variable and whether the operator was ==.
func (c *poolCheck) nilTest(e *ast.BinaryExpr) (*types.Var, bool) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return nil, false
	}
	x, y := e.X, e.Y
	if tv, ok := c.p.Info.Types[x]; ok && tv.IsNil() {
		x, y = y, x
	}
	if tv, ok := c.p.Info.Types[y]; !ok || !tv.IsNil() {
		return nil, false
	}
	return c.varOf(x), e.Op == token.EQL
}

// boolSplit routes states by a known boolean fact; states with no fact
// go both ways.
func (c *poolCheck) boolSplit(states []*poolState, v *types.Var, want bool) (then, els []*poolState) {
	for _, st := range states {
		val, known := st.bools[v]
		if !known || val == want {
			then = append(then, st)
		}
		if !known || val != want {
			els = append(els, st)
		}
	}
	return then, els
}

func clonePoolStates(states []*poolState) []*poolState {
	out := make([]*poolState, len(states))
	for i, st := range states {
		out[i] = st.clone()
	}
	return out
}

func capPoolStates(states []*poolState) []*poolState {
	if len(states) > maxPoolStates {
		return states[:maxPoolStates]
	}
	return states
}
