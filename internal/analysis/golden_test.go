package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"testing"
)

// The golden tests mirror x/tools' analysistest: each package under
// testdata/src/<analyzer>/ is type-checked (source importer, so the
// fixtures can use sync and fmt offline) and run through the full
// suite; every diagnostic must be matched by a `// want "regexp"`
// comment on its line, and every want must fire.

var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

type wantExpect struct {
	re   *regexp.Regexp
	used bool
}

func TestGoldenHotPath(t *testing.T)      { runGolden(t, "hotpath") }
func TestGoldenPoolHygiene(t *testing.T)  { runGolden(t, "poolhygiene") }
func TestGoldenNonRetention(t *testing.T) { runGolden(t, "nonretention") }

func runGolden(t *testing.T, name string) {
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	wants := map[string][]*wantExpect{} // "file:line" -> expectations
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".go" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					wants[key] = append(wants[key], &wantExpect{re: regexp.MustCompile(m[1])})
				}
			}
		}
	}
	conf := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		t.Fatal(err)
	}
	pass := NewPass(fset, files, pkg, info, FactMap{name: ScanFacts(files)})
	diags := pass.Run(Analyzers())

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	var missed []string
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				missed = append(missed, fmt.Sprintf("%s: no diagnostic matched %q", key, w.re))
			}
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Error(m)
	}
}
