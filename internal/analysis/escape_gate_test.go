package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// findModRoot walks up from the test's working directory to go.mod.
func findModRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestEscapeGateRepoIsClean is the gate itself: every heap escape the
// compiler reports inside an //rdf:hotpath function must be recorded in
// escapes.txt, and every escapes.txt entry must still name a live
// annotated function.
func TestEscapeGateRepoIsClean(t *testing.T) {
	modRoot := findModRoot(t)
	hot, err := ScanHotFuncs(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(hot) == 0 {
		t.Fatal("no //rdf:hotpath functions found; the gate is vacuous")
	}
	data, err := os.ReadFile(filepath.Join(modRoot, "internal/analysis/escapes.txt"))
	if err != nil {
		t.Fatal(err)
	}
	allows, err := ParseEscapeAllowlist(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range StaleEscapeAllows(allows, hot) {
		t.Errorf("escapes.txt entry is stale (no such //rdf:hotpath function): %s\t%s\t%s — delete it", a.Pkg, a.Key, a.Message)
	}
	findings, err := EscapeGate(modRoot, hot)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range UnallowedEscapes(findings, allows) {
		t.Errorf("new heap escape in hot path: %s\n\tfix it, or record it in internal/analysis/escapes.txt as:\n\t%s\t%s\t%s", f, f.Pkg, f.Key, f.Message)
	}
}

// TestEscapeGateCatchesSeededEscape proves the gate detects a fresh
// escape: a throwaway module with an annotated function that leaks a
// composite literal must produce an unallowed finding.
func TestEscapeGateCatchesSeededEscape(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module escprobe\n\ngo 1.22\n")
	write("p/p.go", `package p

type Box struct{ v [64]uint64 }

//rdf:hotpath
func Leak() *Box {
	b := Box{}
	return &b
}
`)
	hot, err := ScanHotFuncs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(hot) != 1 || hot[0].Key != "Leak" || hot[0].Pkg != "escprobe/p" {
		t.Fatalf("ScanHotFuncs = %+v, want one escprobe/p.Leak", hot)
	}
	findings, err := EscapeGate(root, hot)
	if err != nil {
		t.Fatal(err)
	}
	un := UnallowedEscapes(findings, nil)
	if len(un) == 0 {
		t.Fatal("seeded escape was not detected")
	}
	found := false
	for _, f := range un {
		if f.Key == "Leak" && strings.Contains(f.Message, "moved to heap") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a moved-to-heap finding for Leak, got %v", un)
	}
	// The same finding recorded in an allowlist must pass the gate.
	allow := []EscapeAllow{{Pkg: un[0].Pkg, Key: un[0].Key, Message: un[0].Message}}
	rest := UnallowedEscapes(findings[:1], allow)
	if len(rest) != 0 {
		t.Fatalf("allowlisted finding still reported: %v", rest)
	}
}

func TestEscapeAllowlistParser(t *testing.T) {
	good := "# comment\n\npkg\tFunc\tx escapes to heap\n"
	allows, err := ParseEscapeAllowlist([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(allows) != 1 || allows[0] != (EscapeAllow{"pkg", "Func", "x escapes to heap"}) {
		t.Fatalf("parsed %+v", allows)
	}
	for _, bad := range []string{
		"pkg Func message with spaces not tabs\n",
		"pkg\tFunc\n",
		"\tFunc\tmsg\n",
	} {
		if _, err := ParseEscapeAllowlist([]byte(bad)); err == nil {
			t.Errorf("ParseEscapeAllowlist(%q) accepted a malformed line", bad)
		}
	}
}

// TestStaleEscapeAllowsRejected pins that entries for deleted or
// renamed functions are flagged rather than silently retained.
func TestStaleEscapeAllowsRejected(t *testing.T) {
	hot := []HotFunc{{Pkg: "m/p", Key: "T.Fill", File: "p/f.go", Start: 1, End: 9}}
	allows := []EscapeAllow{
		{Pkg: "m/p", Key: "T.Fill", Message: "make([]int, n) escapes to heap"},
		{Pkg: "m/p", Key: "Gone", Message: "x escapes to heap"},
		{Pkg: "m/q", Key: "T.Fill", Message: "x escapes to heap"},
	}
	stale := StaleEscapeAllows(allows, hot)
	if len(stale) != 2 {
		t.Fatalf("StaleEscapeAllows = %+v, want the Gone and m/q entries", stale)
	}
	for _, s := range stale {
		if s.Key == "T.Fill" && s.Pkg == "m/p" {
			t.Fatalf("live entry reported stale: %+v", s)
		}
	}
}
