package analysis

import (
	"encoding/json"
	"go/ast"
	"os"
	"sort"
)

// Facts are the annotation sets one package exports to its dependents:
// the cross-package half of the annotation system. They are produced by
// a parse-only scan (no type information needed — annotations hang off
// declaration syntax), serialized as JSON into go vet's per-package
// .vetx facts file, and read back through the PackageVetx table the vet
// driver hands the tool for each dependency.
type Facts struct {
	// HotPath lists functions annotated //rdf:hotpath, in FuncKey form.
	HotPath []string `json:"hotpath,omitempty"`
	// NonRetaining lists functions and interface methods annotated
	// //rdf:nonretaining, in FuncKey form.
	NonRetaining []string `json:"nonretaining,omitempty"`
}

// FactMap indexes Facts by package import path.
type FactMap map[string]*Facts

// Has reports whether key carries the given annotation set membership
// in pkgPath's facts.
func (m FactMap) Has(pkgPath, key string, set func(*Facts) []string) bool {
	f := m[pkgPath]
	if f == nil {
		return false
	}
	for _, k := range set(f) {
		if k == key {
			return true
		}
	}
	return false
}

// NonRetaining is the set accessor for FactMap.Has.
func NonRetaining(f *Facts) []string { return f.NonRetaining }

// ScanFacts extracts the exported annotation sets from parsed files.
// Both function declarations and interface method specifications are
// scanned: //rdf:nonretaining on an interface method covers every call
// through that interface.
func ScanFacts(files []*ast.File) *Facts {
	f := &Facts{}
	for _, file := range files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if funcDocHas(d, "//rdf:hotpath") {
					f.HotPath = append(f.HotPath, FuncKey(d))
				}
				if funcDocHas(d, "//rdf:nonretaining") {
					f.NonRetaining = append(f.NonRetaining, FuncKey(d))
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					it, ok := ts.Type.(*ast.InterfaceType)
					if !ok || it.Methods == nil {
						continue
					}
					for _, m := range it.Methods.List {
						if m.Doc == nil || len(m.Names) == 0 {
							continue
						}
						for _, c := range m.Doc.List {
							if c.Text == "//rdf:nonretaining" {
								for _, name := range m.Names {
									f.NonRetaining = append(f.NonRetaining,
										ts.Name.Name+"."+name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(f.HotPath)
	sort.Strings(f.NonRetaining)
	return f
}

// WriteFacts serializes facts to path (go vet's VetxOutput slot).
func WriteFacts(path string, f *Facts) error {
	b, err := json.Marshal(f)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o666)
}

// ReadFacts loads a facts file written by WriteFacts. A missing or
// undecodable file yields empty facts: a dependency analyzed by a
// different tool generation must degrade to fewer cross-package
// findings, not an error.
func ReadFacts(path string) *Facts {
	b, err := os.ReadFile(path)
	if err != nil {
		return &Facts{}
	}
	f := &Facts{}
	if json.Unmarshal(b, f) != nil {
		return &Facts{}
	}
	return f
}
