package analysis

import (
	"go/ast"
	"go/types"
)

// NonRetention enforces the //rdf:nonretaining contract from both
// sides. At call sites, a func literal passed to an annotated API (the
// sparql streaming executors hand the same Bindings map to every emit;
// ExtractAppend reuses the caller's buffer) must not let its
// reference-typed parameters escape the callback: no assignment into
// enclosing or global state, no channel send, no goroutine capture. On
// the declaration side, an annotated function must honor its own
// promise: its reference-typed parameters must not be stored into
// fields, globals, or channels. Copies of elements (b["x"] is a plain
// core.ID) and calls that receive the value (the callee is checked in
// its own right) are fine — only aliases of the reused storage are
// retention.
var NonRetention = &Analyzer{
	Name: "nonretention",
	Doc:  "callbacks of //rdf:nonretaining APIs must not retain their arguments",
	Run:  runNonRetention,
}

func runNonRetention(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if funcDocHas(fd, "//rdf:nonretaining") {
				checkNonRetainingDecl(p, fd)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isNonRetainingCallee(p, call) {
					for _, arg := range call.Args {
						if lit, ok := arg.(*ast.FuncLit); ok {
							checkCallback(p, lit)
						}
					}
				}
				return true
			})
		}
	}
}

// isNonRetainingCallee reports whether the call target carries
// //rdf:nonretaining, resolved through the facts of the declaring
// package (which includes the package under analysis).
func isNonRetainingCallee(p *Pass, call *ast.CallExpr) bool {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = p.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = p.Info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil {
		return false
	}
	pkgPath, key := objFuncKey(fn)
	return p.Facts.Has(pkgPath, key, NonRetaining)
}

// checkCallback flags escapes of lit's reference-typed parameters: the
// values behind them are reused by the caller after emit returns.
func checkCallback(p *Pass, lit *ast.FuncLit) {
	tracked := trackedParams(p, lit.Type)
	if len(tracked) == 0 {
		return
	}
	e := &escapeCheck{p: p, scope: lit, body: lit.Body, tracked: tracked,
		what: "callback argument"}
	e.walk(lit.Body)
}

// checkNonRetainingDecl verifies the annotated function keeps its own
// promise for its reference-typed parameters.
func checkNonRetainingDecl(p *Pass, fd *ast.FuncDecl) {
	tracked := trackedParams(p, fd.Type)
	if len(tracked) == 0 {
		return
	}
	e := &escapeCheck{p: p, scope: fd, body: fd.Body, tracked: tracked,
		what: "parameter of //rdf:nonretaining function", decl: true}
	e.walk(fd.Body)
}

// trackedParams collects the reference-typed parameters of a function
// type: aliases of these are what retention means.
func trackedParams(p *Pass, ft *ast.FuncType) map[*types.Var]bool {
	tracked := map[*types.Var]bool{}
	if ft.Params == nil {
		return tracked
	}
	for _, f := range ft.Params.List {
		for _, name := range f.Names {
			v, ok := p.Info.Defs[name].(*types.Var)
			if ok && isRefType(v.Type()) {
				tracked[v] = true
			}
		}
	}
	return tracked
}

// escapeCheck walks one function body looking for tracked parameters
// (or reference-typed projections of them) flowing into storage that
// outlives the call.
type escapeCheck struct {
	p       *Pass
	scope   ast.Node // the FuncLit or FuncDecl whose params are tracked
	body    *ast.BlockStmt
	tracked map[*types.Var]bool
	what    string
	decl    bool // declaration-side check: returning the buffer is allowed
}

func (e *escapeCheck) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if i >= len(s.Rhs) {
					break
				}
				if e.lhsOutlives(lhs) {
					e.flagEscapes(s.Rhs[i], "assigned outside the callback")
				}
			}
		case *ast.SendStmt:
			e.flagEscapes(s.Value, "sent on a channel")
		case *ast.GoStmt:
			e.flagAnyUse(s.Call, "captured by a goroutine")
		case *ast.ReturnStmt:
			if e.decl {
				return true // returning the buffer is the append contract
			}
			for _, r := range s.Results {
				e.flagEscapes(r, "returned from the callback")
			}
		}
		return true
	})
}

// lhsOutlives reports whether an assignment target survives the tracked
// scope. A plain local (including a parameter variable, which dies with
// the call) does not; a variable declared outside the scope or at
// package level does; and writing *through* a parameter, receiver, or
// outer variable (selector, index, deref) reaches caller-owned memory
// that outlives the call.
func (e *escapeCheck) lhsOutlives(lhs ast.Expr) bool {
	root := rootIdentVar(e.p, lhs)
	if root == nil {
		return false
	}
	switch ast.Unparen(lhs).(type) {
	case *ast.Ident:
		return !e.inScope(root)
	default: // selector, index, star: writing through storage
		if e.tracked[root] {
			return false // b[k] = v mutates the tracked value itself; separate concern
		}
		return !e.inBody(root) || root.Parent() == e.p.Pkg.Scope()
	}
}

// inScope: declared anywhere in the tracked function, parameters
// included. inBody: declared in its body — parameters and the receiver
// are handles to caller-owned memory, so they do not count.
func (e *escapeCheck) inScope(v *types.Var) bool {
	return v.Pos() >= e.scope.Pos() && v.Pos() < e.scope.End()
}

func (e *escapeCheck) inBody(v *types.Var) bool {
	return v.Pos() >= e.body.Pos() && v.Pos() < e.body.End()
}

// flagEscapes reports reference-typed projections of tracked parameters
// inside expr. Call results break the alias chain (append and
// conversions are transparent: both alias their argument), element
// reads of basic type are copies, and anything else recurses.
func (e *escapeCheck) flagEscapes(expr ast.Expr, how string) {
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		x, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if root := rootIdentVar(e.p, x); root != nil && e.tracked[root] {
			if t := e.p.Info.TypeOf(x); t != nil && isRefType(t) {
				e.p.Reportf("nonretention", x.Pos(), "%s %s; the storage is reused after the call — copy what you need", e.what, how)
			}
			return false // the path is claimed; don't re-flag its base
		}
		if lit, ok := x.(*ast.FuncLit); ok {
			if e.usesTracked(lit) {
				e.p.Reportf("nonretention", lit.Pos(), "%s captured by an escaping closure; the storage is reused after the call", e.what)
			}
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			if tv, isConv := e.p.Info.Types[call.Fun]; isConv && tv.IsType() {
				return true // conversion: aliases its operand, keep looking
			}
			if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "append" {
				if _, isBI := e.p.Info.Uses[id].(*types.Builtin); isBI {
					return true // append aliases its arguments into the result
				}
			}
			return false // other call results are the callee's responsibility
		}
		return true
	}
	ast.Inspect(expr, visit)
}

// flagAnyUse reports any read of a tracked parameter under n — used for
// goroutine launches, where even an element copy races with the
// caller's reuse.
func (e *escapeCheck) flagAnyUse(n ast.Node, how string) {
	ast.Inspect(n, func(node ast.Node) bool {
		if id, ok := node.(*ast.Ident); ok {
			if v, isVar := e.p.Info.Uses[id].(*types.Var); isVar && e.tracked[v] {
				e.p.Reportf("nonretention", id.Pos(), "%s %s; the storage is reused after the call", e.what, how)
				return false
			}
		}
		return true
	})
}

func (e *escapeCheck) usesTracked(lit *ast.FuncLit) bool {
	used := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, isVar := e.p.Info.Uses[id].(*types.Var); isVar && e.tracked[v] {
				used = true
			}
		}
		return !used
	})
	return used
}

// isRefType reports whether values of t alias underlying storage:
// slices, maps, pointers, channels, funcs, and interfaces. Strings and
// other value types are copies.
func isRefType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}
