// Package nonretention is the golden fixture for the nonretention
// analyzer.
package nonretention

// ID mirrors core.ID: a plain value type, so element reads are copies.
type ID uint64

// Bindings mirrors sparql.Bindings: a reused map.
type Bindings map[string]ID

var (
	keep  Bindings
	saved []Bindings
	cb    func(Bindings)
	arena struct{ b []byte }
)

func handle(Bindings) {}

// stream reuses one map across emit calls.
//
//rdf:nonretaining
func stream(n int, emit func(Bindings)) {
	b := Bindings{}
	for i := 0; i < n; i++ {
		b["x"] = ID(i)
		emit(b)
	}
}

func callers(ch chan Bindings) {
	var last Bindings
	stream(3, func(b Bindings) {
		last = b // want "assigned outside the callback"
		_ = last
	})
	stream(3, func(b Bindings) {
		v := b["x"] // element copy: no diagnostic
		_ = v
	})
	stream(3, func(b Bindings) {
		local := b // local alias dies with the callback: no diagnostic
		_ = local
	})
	stream(3, func(b Bindings) {
		keep = b // want "assigned outside the callback"
	})
	stream(3, func(b Bindings) {
		saved = append(saved, b) // want "assigned outside the callback"
	})
	stream(3, func(b Bindings) {
		ch <- b // want "sent on a channel"
	})
	stream(3, func(b Bindings) {
		go handle(b) // want "captured by a goroutine"
	})
	var lastAllowed Bindings
	stream(3, func(b Bindings) {
		lastAllowed = b //rdf:allow(this consumer checks map identity, not contents)
		_ = lastAllowed
	})
}

// badRetainer breaks its own annotation: the callback must not outlive
// the call.
//
//rdf:nonretaining
func badRetainer(emit func(Bindings)) {
	cb = emit // want "assigned outside the callback"
	emit(nil)
}

// extractAppend follows the append contract: growing and returning the
// caller's buffer is not retention.
//
//rdf:nonretaining
func extractAppend(buf []byte, id ID) ([]byte, bool) {
	buf = append(buf, byte(id))
	return buf, true
}

// badExtract parks the caller's buffer in a global arena.
//
//rdf:nonretaining
func badExtract(buf []byte) {
	arena.b = buf // want "assigned outside the callback"
}
