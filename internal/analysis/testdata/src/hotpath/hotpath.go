// Package hotpath is the golden fixture for the hotpath analyzer.
package hotpath

import "fmt"

type row struct{ id uint64 }

func sink(x any) { _ = x }

//rdf:hotpath
func allocs(ids []uint64, s string) string {
	buf := make([]byte, 8) // want "make allocates"
	_ = buf
	m := map[string]int{} // want "map literal allocates"
	_ = m
	sl := []int{1} // want "slice literal allocates"
	_ = sl
	r := &row{id: 1} // want "composite literal escapes"
	_ = r
	fmt.Println(s) // want "fmt.Println allocates"
	b := []byte(s) // want "conversion copies"
	_ = b
	s2 := s + "x" // want "string concatenation allocates"
	return s2
}

//rdf:hotpath
func boxes(v uint64, p *row) {
	var a any
	a = v // want "interface boxing of non-pointer uint64"
	_ = a
	sink(v)    // want "interface boxing of non-pointer uint64"
	sink(p)    // pointers ride in the interface word: no diagnostic
	a = any(v) // want "interface boxing of non-pointer uint64"
	_ = a
}

//rdf:hotpath
func closures(n int) int {
	f := func() int { return n } // want "closure captures local"
	g := func() int { return 42 }
	return f() + g()
}

//rdf:hotpath
func stringify(id uint64, out []byte) []byte {
	out = append(out, 'x') // append is amortized by design: no diagnostic
	return out
}

//rdf:hotpath
func allowed() []byte {
	//rdf:allow(setup path that runs once per process)
	return make([]byte, 8)
}

//rdf:hotpath
func emptyReason() {
	//rdf:allow()
	_ = make([]byte, 1) // want "needs a reason"
}

//rdf:allow missing parens // want "malformed //rdf:allow"

// cold is not annotated; nothing in it is diagnosed.
func cold(s string) string {
	return s + s
}
