// Package poolhygiene is the golden fixture for the poolhygiene
// analyzer.
package poolhygiene

import "sync"

type buf struct{ b []byte }

type holder struct{ v *buf }

var pool = sync.Pool{New: func() any { return new(buf) }}

var global *buf

func use(*buf) {}

func leak() {
	v := pool.Get().(*buf)
	use(v)
} // want "not returned to the pool"

func deferred() {
	v := pool.Get().(*buf)
	defer pool.Put(v)
	use(v)
}

func bothPaths(cond bool) {
	v := pool.Get().(*buf)
	if cond {
		use(v)
		pool.Put(v)
		return
	}
	pool.Put(v)
}

func earlyReturn(cond bool) {
	v := pool.Get().(*buf)
	if cond {
		return // want "not returned to the pool"
	}
	pool.Put(v)
}

// nilGuard is the gzip-writer idiom: Get on one branch, release behind
// a nil check. The nil guard prunes the infeasible live-and-nil state,
// so this is clean.
func nilGuard(cond bool) {
	var v *buf
	if cond {
		v = pool.Get().(*buf)
	}
	if v != nil {
		use(v)
		pool.Put(v)
	}
}

// commaOk is the typed-Get idiom: the miss state carries ok=false, so
// only the hit branch owes a Put.
func commaOk() {
	if v, ok := pool.Get().(*buf); ok {
		pool.Put(v)
	}
}

func transfer() *buf {
	v := pool.Get().(*buf)
	//rdf:allow(ownership transfers to the caller; Release returns it)
	return v
}

func transferBad() *buf {
	v := pool.Get().(*buf)
	return v // want "escapes via return"
}

func useAfterPut() {
	v := pool.Get().(*buf)
	pool.Put(v)
	use(v) // want "after it was returned to the pool"
}

func doublePut() {
	v := pool.Get().(*buf)
	pool.Put(v)
	pool.Put(v) // want "returned to the pool twice"
}

func storeGlobal() {
	v := pool.Get().(*buf)
	global = v // want "outlives the request"
	pool.Put(v)
}

func storeField(h *holder) {
	v := pool.Get().(*buf)
	h.v = v // want "may outlive the request"
	pool.Put(v)
}

// storeLocalField stores into a function-local struct, which dies with
// the call: no diagnostic.
func storeLocalField() {
	var h holder
	v := pool.Get().(*buf)
	h.v = v
	use(h.v)
	pool.Put(v)
}

func naked() {
	use(pool.Get().(*buf)) // want "escapes tracking"
}

func overwritten() {
	v := pool.Get().(*buf)
	v = nil // want "overwritten before being returned"
	_ = v
}
