// Package analysis is the repository's static-analysis suite: a small,
// dependency-free analyzer framework (the container image carries no
// golang.org/x/tools, so the usual go/analysis machinery is rebuilt here
// on the standard library) plus the three repo-invariant checkers that
// turn this codebase's performance contracts into build errors:
//
//   - hotpath: functions annotated //rdf:hotpath — the per-row and
//     per-triple paths — must not contain AST-level allocation
//     constructs (make/new, escaping composite literals, string
//     concatenation or conversion, fmt calls, interface boxing of
//     non-pointer values, closures capturing locals).
//   - poolhygiene: every sync.Pool.Get must reach a Put on all return
//     paths (or carry an //rdf:allow ownership annotation), pooled
//     values must not be stored into fields or globals, and a value
//     must not be used after it was Put.
//   - nonretention: func literals passed to APIs annotated
//     //rdf:nonretaining (the sparql streaming executors, the
//     dictionary ExtractAppend protocol) must not let their reused
//     arguments escape the callback, and the annotated APIs themselves
//     must not squirrel their reference parameters away.
//
// The analyzers run as a vettool (cmd/rdflint) under `go vet
// -vettool=…`, so CI and `make lint` enforce the invariants on every
// package; the AST checks are complemented by an escape-analysis gate
// (escape.go) that compiles the annotated packages with -gcflags=-m and
// diffs the compiler's heap-escape report against a committed allowlist.
//
// # Annotations
//
//	//rdf:hotpath            (function doc) marks a per-row function
//	//rdf:nonretaining       (function doc) callback/buffer args are not retained
//	//rdf:allow(reason)      (end of line, or the line above) suppresses
//	                         one line's diagnostics; the reason is mandatory
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named checker over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the full rdflint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{HotPath, PoolHygiene, NonRetention}
}

// Pass carries one type-checked package through an analyzer, mirroring
// golang.org/x/tools/go/analysis.Pass. Diagnostics land in Diags after
// //rdf:allow suppression.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Facts maps an import path to the annotation sets exported by that
	// package (including this one), so call sites can see annotations on
	// functions declared elsewhere.
	Facts FactMap

	allows map[string]map[int]allowComment // file -> line -> comment
	diags  []Diagnostic
}

// allowComment is one parsed //rdf:allow(reason) comment.
type allowComment struct {
	reason string
	pos    token.Position
}

var allowRE = regexp.MustCompile(`^//rdf:allow\((.*)\)\s*$`)

// NewPass assembles a Pass and indexes its //rdf:allow comments.
func NewPass(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts FactMap) *Pass {
	p := &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info, Facts: facts,
		allows: map[string]map[int]allowComment{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.HasPrefix(c.Text, "//rdf:allow") {
						p.report(c.Pos(), "rdflint", "malformed //rdf:allow: want //rdf:allow(reason)")
					}
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := p.allows[pos.Filename]
				if byLine == nil {
					byLine = map[int]allowComment{}
					p.allows[pos.Filename] = byLine
				}
				byLine[pos.Line] = allowComment{reason: strings.TrimSpace(m[1]), pos: pos}
			}
		}
	}
	return p
}

// Allowed reports whether a diagnostic at pos is suppressed by an
// //rdf:allow comment on the same line or the line directly above. An
// empty reason never suppresses — it is itself diagnosed by NewPass's
// malformed-annotation check or here.
func (p *Pass) Allowed(pos token.Pos) bool {
	where := p.Fset.Position(pos)
	byLine := p.allows[where.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{where.Line, where.Line - 1} {
		if a, ok := byLine[line]; ok {
			if a.reason == "" {
				p.report(pos, "rdflint", "//rdf:allow needs a reason: //rdf:allow(why this is safe)")
				return true // suppress the original finding; the empty reason is the finding
			}
			return true
		}
	}
	return false
}

// Reportf records a diagnostic unless an //rdf:allow covers its line.
func (p *Pass) Reportf(name string, pos token.Pos, format string, args ...any) {
	if p.Allowed(pos) {
		return
	}
	p.report(pos, name, fmt.Sprintf(format, args...))
}

func (p *Pass) report(pos token.Pos, name, msg string) {
	p.diags = append(p.diags, Diagnostic{Pos: p.Fset.Position(pos), Analyzer: name, Message: msg})
}

// Run applies every analyzer and returns the findings in file/line
// order.
func (p *Pass) Run(analyzers []*Analyzer) []Diagnostic {
	for _, a := range analyzers {
		a.Run(p)
	}
	sort.Slice(p.diags, func(i, j int) bool {
		a, b := p.diags[i].Pos, p.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return p.diags
}

// funcDocHas reports whether a function declaration's doc comment group
// contains the given //rdf: directive.
func funcDocHas(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if text, ok := strings.CutPrefix(c.Text, directive); ok {
			if text == "" || text[0] == ' ' || text[0] == '\t' {
				return true
			}
		}
	}
	return false
}

// FuncKey is the qualified, package-local name annotations are recorded
// under: "Func" for package functions, "Type.Method" for methods (the
// receiver's pointerness is erased — an annotation describes the method,
// not the spelling of its receiver).
func FuncKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return recvTypeName(fd.Recv.List[0].Type) + "." + fd.Name.Name
}

// recvTypeName extracts the bare receiver type name from its AST form.
func recvTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr: // generic receiver T[P]
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// objFuncKey renders a resolved function object in FuncKey form, plus
// the package path it belongs to. Interface methods resolve to the
// interface type's name.
func objFuncKey(fn *types.Func) (pkgPath, key string) {
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkgPath, fn.Name()
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		// Receiver is an unnamed interface or similar; fall back to the
		// bare method name.
		return pkgPath, fn.Name()
	}
	return pkgPath, named.Obj().Name() + "." + fn.Name()
}
