package analysis

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// The escape-analysis gate is the compiler-grade backstop behind the
// hotpath analyzer: AST checks cannot see what the optimizer decides,
// so the gate compiles every package containing an //rdf:hotpath
// function with -gcflags=-m and collects the "escapes to heap" /
// "moved to heap" reports that land inside an annotated function's
// line range. Findings must match the committed allowlist
// (internal/analysis/escapes.txt) exactly; a new escape — including one
// introduced by a compiler upgrade — fails the build until it is fixed
// or deliberately recorded. Allowlist entries are keyed by package,
// function, and message text rather than line numbers, so ordinary
// edits don't churn the file, and entries for functions that no longer
// exist are rejected as stale.

// HotFunc locates one //rdf:hotpath function in the module.
type HotFunc struct {
	Pkg   string // import path
	Key   string // FuncKey form: "Func" or "Type.Method"
	File  string // path relative to the module root, as the compiler prints it
	Start int    // first line of the declaration
	End   int    // last line of the body
}

// EscapeFinding is one compiler escape report inside a HotFunc.
type EscapeFinding struct {
	Pkg     string
	Key     string
	File    string
	Line    int
	Message string
}

func (f EscapeFinding) String() string {
	return fmt.Sprintf("%s:%d: %s.%s: %s", f.File, f.Line, f.Pkg, f.Key, f.Message)
}

// ScanHotFuncs walks the module for //rdf:hotpath annotations in
// non-test sources. The walk is marker-first (a byte scan before any
// parse), so adding a new annotated package automatically brings it
// under the gate.
func ScanHotFuncs(modRoot string) ([]HotFunc, error) {
	modPath, err := modulePath(modRoot)
	if err != nil {
		return nil, err
	}
	var hot []HotFunc
	err = filepath.WalkDir(modRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "vendor", ".github":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if !bytes.Contains(src, []byte("//rdf:hotpath")) {
			return nil
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(modRoot, path)
		if err != nil {
			return err
		}
		pkgPath := modPath
		if dir := filepath.Dir(rel); dir != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(dir)
		}
		for _, fd := range hotFuncDecls(file) {
			hot = append(hot, HotFunc{
				Pkg:   pkgPath,
				Key:   FuncKey(fd),
				File:  filepath.ToSlash(rel),
				Start: fset.Position(fd.Pos()).Line,
				End:   fset.Position(fd.End()).Line,
			})
		}
		return nil
	})
	return hot, err
}

// escapeRE matches one compiler diagnostic line: path:line:col: message.
var escapeRE = regexp.MustCompile(`^([^\s:]+\.go):(\d+):(\d+): (.+)$`)

// EscapeGate compiles the packages owning hot with -gcflags=-m and
// returns the escape reports inside annotated functions. Each package
// is rebuilt through a content-changing overlay (a nonce comment
// appended to one of its files), because the build cache does not
// replay compiler diagnostics for up-to-date packages.
func EscapeGate(modRoot string, hot []HotFunc) ([]EscapeFinding, error) {
	if len(hot) == 0 {
		return nil, nil
	}
	modPath, err := modulePath(modRoot)
	if err != nil {
		return nil, err
	}

	// One representative file per package to bust the cache with.
	repFile := map[string]string{}
	for _, h := range hot {
		if _, ok := repFile[h.Pkg]; !ok {
			repFile[h.Pkg] = h.File
		}
	}
	tmpDir, err := os.MkdirTemp("", "rdflint-escape-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmpDir)
	nonce := fmt.Sprintf("\n// escape-gate nonce %d\n", time.Now().UnixNano())
	replace := map[string]string{}
	pkgs := make([]string, 0, len(repFile))
	for pkg, rel := range repFile {
		orig := filepath.Join(modRoot, filepath.FromSlash(rel))
		src, err := os.ReadFile(orig)
		if err != nil {
			return nil, err
		}
		copyPath := filepath.Join(tmpDir, fmt.Sprintf("nonce-%d.go", len(replace)))
		if err := os.WriteFile(copyPath, append(src, nonce...), 0o666); err != nil {
			return nil, err
		}
		replace[orig] = copyPath
		pkgs = append(pkgs, pkg)
	}
	overlay, err := json.Marshal(struct{ Replace map[string]string }{replace})
	if err != nil {
		return nil, err
	}
	overlayPath := filepath.Join(tmpDir, "overlay.json")
	if err := os.WriteFile(overlayPath, overlay, 0o666); err != nil {
		return nil, err
	}

	args := append([]string{"build", "-overlay", overlayPath,
		"-gcflags", modPath + "/...=-m"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = modRoot
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, stderr.String())
	}

	var findings []EscapeFinding
	sc := bufio.NewScanner(&stderr)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := escapeRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		line, _ := strconv.Atoi(m[2])
		file := filepath.ToSlash(m[1])
		for _, h := range hot {
			if h.File == file && line >= h.Start && line <= h.End {
				findings = append(findings, EscapeFinding{
					Pkg: h.Pkg, Key: h.Key, File: file, Line: line,
					Message: strings.TrimSuffix(msg, ":"),
				})
				break
			}
		}
	}
	return findings, sc.Err()
}

// EscapeAllow is one committed allowlist entry: a known, deliberate
// escape inside a hot function.
type EscapeAllow struct {
	Pkg, Key, Message string
}

// ParseEscapeAllowlist reads escapes.txt: one entry per line in the
// form `pkg<TAB>func<TAB>message`, with #-comments and blank lines
// ignored. Malformed lines are an error, not a skip — a typo must not
// silently widen the gate.
func ParseEscapeAllowlist(data []byte) ([]EscapeAllow, error) {
	var allows []EscapeAllow
	for i, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
			return nil, fmt.Errorf("escapes.txt:%d: malformed entry %q (want pkg<TAB>func<TAB>message)", i+1, line)
		}
		allows = append(allows, EscapeAllow{Pkg: parts[0], Key: parts[1], Message: parts[2]})
	}
	return allows, nil
}

// StaleEscapeAllows returns allowlist entries that no longer name an
// annotated function; they must be deleted, or they would mask a future
// escape at the same key.
func StaleEscapeAllows(allows []EscapeAllow, hot []HotFunc) []EscapeAllow {
	known := map[[2]string]bool{}
	for _, h := range hot {
		known[[2]string{h.Pkg, h.Key}] = true
	}
	var stale []EscapeAllow
	for _, a := range allows {
		if !known[[2]string{a.Pkg, a.Key}] {
			stale = append(stale, a)
		}
	}
	return stale
}

// UnallowedEscapes filters findings down to those not covered by the
// allowlist.
func UnallowedEscapes(findings []EscapeFinding, allows []EscapeAllow) []EscapeFinding {
	allowed := map[EscapeAllow]bool{}
	for _, a := range allows {
		allowed[a] = true
	}
	var out []EscapeFinding
	for _, f := range findings {
		if !allowed[EscapeAllow{Pkg: f.Pkg, Key: f.Key, Message: f.Message}] {
			out = append(out, f)
		}
	}
	return out
}

// hotFuncDecls returns the //rdf:hotpath function declarations in file.
func hotFuncDecls(file *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil && funcDocHas(fd, "//rdf:hotpath") {
			out = append(out, fd)
		}
	}
	return out
}

// modulePath reads the module declaration from modRoot's go.mod.
func modulePath(modRoot string) (string, error) {
	data, err := os.ReadFile(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module declaration in %s/go.mod", modRoot)
}
