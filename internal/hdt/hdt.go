// Package hdt reimplements the HDT-FoQ (Focused on Querying) baseline of
// Martinez-Prieto, Gallego and Fernandez, the RDF index the paper compares
// against in Tables 5 and 6. HDT-FoQ keeps a single SPO trie: the
// predicate level is a wavelet tree (so predicate-based patterns can be
// answered with select operations) and object-based retrieval uses an
// additional inverted index of object occurrences ("O-index").
//
// Differences from the original C++ library, none of which change the
// experimental shape: sibling group boundaries are delimited with
// Elias-Fano pointer sequences rather than plain bitmaps with rank/select
// (equivalent information, comparable space), and the dictionary is
// external, as in the paper's methodology which excludes dictionaries for
// all systems.
package hdt

import (
	"fmt"

	"rdfindexes/internal/bits"
	"rdfindexes/internal/codec"
	"rdfindexes/internal/core"
	"rdfindexes/internal/ef"
	"rdfindexes/internal/wavelet"
)

// Index is an immutable HDT-FoQ style index.
type Index struct {
	numTriples int
	numS       int
	numP       int
	numO       int

	ptrS       *ef.Sequence        // numS+1 positions into the pair level
	predicates *wavelet.Tree       // predicate of each (s, p) pair
	ptrPair    *ef.Sequence        // numPairs+1 positions into objects
	objects    *bits.CompactVector // object of each triple, grouped by pair

	// O-index: for every object, the sorted positions of its occurrences
	// in the objects array.
	objPtr       *ef.Sequence
	objPositions *bits.CompactVector
}

// Build constructs the index from a dataset (whose triples are already in
// canonical sorted SPO order).
func Build(d *core.Dataset) (*Index, error) {
	x := &Index{numTriples: d.Len(), numS: d.NS, numP: d.NP, numO: d.NO}

	ptrS := make([]uint64, 0, d.NS+1)
	var preds []uint64
	ptrPair := []uint64{}
	objects := make([]uint64, 0, d.Len())

	var ps, pp core.ID
	for i, t := range d.Triples {
		newSubject := i == 0 || t.S != ps
		if newSubject {
			for len(ptrS) <= int(t.S) {
				ptrS = append(ptrS, uint64(len(preds)))
			}
		}
		if newSubject || t.P != pp {
			preds = append(preds, uint64(t.P))
			ptrPair = append(ptrPair, uint64(len(objects)))
		}
		objects = append(objects, uint64(t.O))
		ps, pp = t.S, t.P
	}
	for len(ptrS) <= d.NS {
		ptrS = append(ptrS, uint64(len(preds)))
	}
	ptrPair = append(ptrPair, uint64(len(objects)))

	x.ptrS = ef.New(ptrS)
	x.predicates = wavelet.New(preds, uint64(maxInt(d.NP, 1)))
	x.ptrPair = ef.New(ptrPair)
	x.objects = bits.NewCompact(objects)

	// O-index: bucket the object positions.
	counts := make([]int, d.NO+1)
	for _, o := range objects {
		counts[o+1]++
	}
	objPtr := make([]uint64, d.NO+1)
	for o := 1; o <= d.NO; o++ {
		counts[o] += counts[o-1]
		objPtr[o] = uint64(counts[o])
	}
	positions := make([]uint64, len(objects))
	fill := make([]int, d.NO)
	for pos, o := range objects {
		positions[int(objPtr[o])+fill[o]] = uint64(pos)
		fill[o]++
	}
	x.objPtr = ef.New(objPtr)
	x.objPositions = bits.NewCompact(positions)
	return x, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NumTriples returns the number of indexed triples.
func (x *Index) NumTriples() int { return x.numTriples }

// SizeBits returns the total storage footprint in bits.
func (x *Index) SizeBits() uint64 {
	return x.ptrS.SizeBits() + x.predicates.SizeBits() + x.ptrPair.SizeBits() +
		x.objects.SizeBits() + x.objPtr.SizeBits() + x.objPositions.SizeBits() + 4*64
}

// pairRange returns the pair positions of subject s.
func (x *Index) pairRange(s core.ID) (int, int) {
	if int(s) >= x.numS {
		return 0, 0
	}
	return int(x.ptrS.Access(int(s))), int(x.ptrS.Access(int(s) + 1))
}

// objRange returns the object positions of pair j.
func (x *Index) objRange(j int) (int, int) {
	return int(x.ptrPair.Access(j)), int(x.ptrPair.Access(j + 1))
}

// subjectOfPair returns the subject owning pair j.
func (x *Index) subjectOfPair(j int) core.ID {
	pos, _, _ := x.ptrS.NextGEQ(uint64(j) + 1)
	return core.ID(pos - 1)
}

// pairOfPosition returns the pair owning object position q.
func (x *Index) pairOfPosition(q int) int {
	pos, _, _ := x.ptrPair.NextGEQ(uint64(q) + 1)
	return pos - 1
}

// findPair locates predicate p among subject s's pairs by binary search
// over wavelet tree accesses; returns the pair position or -1.
func (x *Index) findPair(s, p core.ID) int {
	lo, hi := x.pairRange(s)
	for lo < hi {
		mid := (lo + hi) / 2
		v := x.predicates.Access(mid)
		switch {
		case v < uint64(p):
			lo = mid + 1
		case v > uint64(p):
			hi = mid
		default:
			return mid
		}
	}
	return -1
}

// objPositionsOf returns the O-index slice bounds of object o.
func (x *Index) objPositionsOf(o core.ID) (int, int) {
	if int(o) >= x.numO {
		return 0, 0
	}
	return int(x.objPtr.Access(int(o))), int(x.objPtr.Access(int(o) + 1))
}

// Select resolves a triple selection pattern.
func (x *Index) Select(p core.Pattern) *core.Iterator {
	switch p.Shape() {
	case core.ShapeSPO:
		return x.selectSPO(p.S, p.P, p.O)
	case core.ShapeSPx:
		return x.selectSP(p.S, p.P)
	case core.ShapeSxx:
		return x.selectS(p.S)
	case core.ShapeSxO:
		// Resolved through the O-index, filtering on the subject; the
		// cost is proportional to the object's popularity, which is what
		// makes HDT-FoQ's S?O slow in Table 5.
		return x.selectViaOIndex(p.O, func(s core.ID, _ core.ID) bool { return s == p.S })
	case core.ShapexPO:
		return x.selectViaOIndex(p.O, func(_ core.ID, pr core.ID) bool { return pr == p.P })
	case core.ShapexPx:
		return x.selectP(p.P)
	case core.ShapexxO:
		return x.selectViaOIndex(p.O, func(core.ID, core.ID) bool { return true })
	default:
		return x.scan()
	}
}

func (x *Index) selectSPO(s, p, o core.ID) *core.Iterator {
	j := x.findPair(s, p)
	if j < 0 {
		return core.EmptyIterator()
	}
	b, e := x.objRange(j)
	for q := b; q < e; q++ {
		v := x.objects.At(q)
		if v == uint64(o) {
			return core.SingleIterator(core.Triple{S: s, P: p, O: o})
		}
		if v > uint64(o) {
			break
		}
	}
	return core.EmptyIterator()
}

func (x *Index) selectSP(s, p core.ID) *core.Iterator {
	j := x.findPair(s, p)
	if j < 0 {
		return core.EmptyIterator()
	}
	b, e := x.objRange(j)
	q := b
	return core.NewIterator(func() (core.Triple, bool) {
		if q >= e {
			return core.Triple{}, false
		}
		o := core.ID(x.objects.At(q))
		q++
		return core.Triple{S: s, P: p, O: o}, true
	})
}

func (x *Index) selectS(s core.ID) *core.Iterator {
	jb, je := x.pairRange(s)
	j := jb
	var (
		curP core.ID
		q, e int
		open bool
	)
	return core.NewIterator(func() (core.Triple, bool) {
		for {
			if open && q < e {
				o := core.ID(x.objects.At(q))
				q++
				return core.Triple{S: s, P: curP, O: o}, true
			}
			if j >= je {
				return core.Triple{}, false
			}
			curP = core.ID(x.predicates.Access(j))
			q, e = x.objRange(j)
			open = true
			j++
		}
	})
}

// selectViaOIndex iterates the occurrences of object o, keeping the
// triples accepted by keep(subject, predicate).
func (x *Index) selectViaOIndex(o core.ID, keep func(core.ID, core.ID) bool) *core.Iterator {
	b, e := x.objPositionsOf(o)
	q := b
	return core.NewIterator(func() (core.Triple, bool) {
		for q < e {
			pos := int(x.objPositions.At(q))
			q++
			j := x.pairOfPosition(pos)
			s := x.subjectOfPair(j)
			p := core.ID(x.predicates.Access(j))
			if keep(s, p) {
				return core.Triple{S: s, P: p, O: o}, true
			}
		}
		return core.Triple{}, false
	})
}

// selectP resolves ?P? with one wavelet-tree select per occurrence of the
// predicate, the operation the paper identifies as HDT-FoQ's weak spot.
func (x *Index) selectP(p core.ID) *core.Iterator {
	if int(p) >= x.numP {
		return core.EmptyIterator()
	}
	total := x.predicates.Count(uint64(p))
	k := 0
	var (
		curS core.ID
		q, e int
		open bool
	)
	return core.NewIterator(func() (core.Triple, bool) {
		for {
			if open && q < e {
				o := core.ID(x.objects.At(q))
				q++
				return core.Triple{S: curS, P: p, O: o}, true
			}
			if k >= total {
				return core.Triple{}, false
			}
			j := x.predicates.Select(uint64(p), k)
			k++
			curS = x.subjectOfPair(j)
			q, e = x.objRange(j)
			open = true
		}
	})
}

func (x *Index) scan() *core.Iterator {
	numPairs := x.predicates.Len()
	j := 0
	var (
		curS, curP core.ID
		q, e       int
		open       bool
	)
	return core.NewIterator(func() (core.Triple, bool) {
		for {
			if open && q < e {
				o := core.ID(x.objects.At(q))
				q++
				return core.Triple{S: curS, P: curP, O: o}, true
			}
			if j >= numPairs {
				return core.Triple{}, false
			}
			curS = x.subjectOfPair(j)
			curP = core.ID(x.predicates.Access(j))
			q, e = x.objRange(j)
			open = true
			j++
		}
	})
}

// Encode writes the index to w.
func (x *Index) Encode(w *codec.Writer) {
	w.Uvarint(uint64(x.numTriples))
	w.Uvarint(uint64(x.numS))
	w.Uvarint(uint64(x.numP))
	w.Uvarint(uint64(x.numO))
	x.ptrS.Encode(w)
	x.predicates.Encode(w)
	x.ptrPair.Encode(w)
	x.objects.Encode(w)
	x.objPtr.Encode(w)
	x.objPositions.Encode(w)
}

// Decode reads an index written by Encode.
func Decode(r *codec.Reader) (*Index, error) {
	x := &Index{}
	x.numTriples = int(r.Uvarint())
	x.numS = int(r.Uvarint())
	x.numP = int(r.Uvarint())
	x.numO = int(r.Uvarint())
	var err error
	if x.ptrS, err = ef.Decode(r); err != nil {
		return nil, err
	}
	if x.predicates, err = wavelet.Decode(r); err != nil {
		return nil, err
	}
	if x.ptrPair, err = ef.Decode(r); err != nil {
		return nil, err
	}
	if x.objects, err = bits.DecodeCompact(r); err != nil {
		return nil, err
	}
	if x.objPtr, err = ef.Decode(r); err != nil {
		return nil, err
	}
	if x.objPositions, err = bits.DecodeCompact(r); err != nil {
		return nil, err
	}
	if x.ptrS.Len() != x.numS+1 || x.objects.Len() != x.numTriples {
		return nil, r.Fail(fmt.Errorf("%w: hdt index sizes", codec.ErrCorrupt))
	}
	return x, nil
}
