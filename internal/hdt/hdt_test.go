package hdt

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"rdfindexes/internal/codec"
	"rdfindexes/internal/core"
)

func refSelect(ts []core.Triple, p core.Pattern) []core.Triple {
	var out []core.Triple
	for _, t := range ts {
		if p.Matches(t) {
			out = append(out, t)
		}
	}
	return out
}

func sameSet(a, b []core.Triple) bool {
	if len(a) != len(b) {
		return false
	}
	less := func(ts []core.Triple) func(i, j int) bool {
		return func(i, j int) bool { return ts[i].Less(ts[j]) }
	}
	as := append([]core.Triple(nil), a...)
	bs := append([]core.Triple(nil), b...)
	sort.Slice(as, less(as))
	sort.Slice(bs, less(bs))
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func testDataset(rng *rand.Rand, n int) *core.Dataset {
	zipf := rand.NewZipf(rng, 1.3, 2, 11)
	ts := make([]core.Triple, 0, n)
	for len(ts) < n {
		s := core.ID(rng.Intn(n/10 + 20))
		p := core.ID(zipf.Uint64())
		var o core.ID
		if rng.Intn(4) == 0 {
			o = core.ID(rng.Intn(30)) // popular objects
		} else {
			o = core.ID(30 + rng.Intn(n/3+20))
		}
		ts = append(ts, core.Triple{S: s, P: p, O: o})
	}
	return core.NewDataset(ts)
}

func TestHDTAgainstOracleAllShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	d := testDataset(rng, 4000)
	x, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if x.NumTriples() != d.Len() {
		t.Fatalf("NumTriples = %d, want %d", x.NumTriples(), d.Len())
	}
	for i := 0; i < 80; i++ {
		tr := d.Triples[rng.Intn(len(d.Triples))]
		for _, s := range core.AllShapes() {
			pat := core.WithWildcards(tr, s)
			want := refSelect(d.Triples, pat)
			got := x.Select(pat).Collect(-1)
			if !sameSet(got, want) {
				t.Fatalf("pattern %v (%v): got %d matches, want %d", pat, s, len(got), len(want))
			}
		}
	}
	// Absent probes.
	for i := 0; i < 30; i++ {
		tr := d.Triples[rng.Intn(len(d.Triples))]
		tr.P = core.ID(rng.Intn(d.NP))
		tr.O = core.ID(rng.Intn(d.NO))
		for _, s := range []core.Shape{core.ShapeSPO, core.ShapeSPx, core.ShapeSxO, core.ShapexPO} {
			pat := core.WithWildcards(tr, s)
			if !sameSet(x.Select(pat).Collect(-1), refSelect(d.Triples, pat)) {
				t.Fatalf("absent probe %v (%v) mismatch", pat, s)
			}
		}
	}
}

func TestHDTTinyDatasets(t *testing.T) {
	for _, triples := range [][]core.Triple{
		{{S: 0, P: 0, O: 0}},
		{{S: 0, P: 0, O: 0}, {S: 0, P: 0, O: 1}, {S: 1, P: 1, O: 0}},
	} {
		d := core.NewDataset(append([]core.Triple(nil), triples...))
		x, err := Build(d)
		if err != nil {
			t.Fatal(err)
		}
		got := x.Select(core.NewPattern(-1, -1, -1)).Collect(-1)
		if !sameSet(got, d.Triples) {
			t.Fatalf("scan of %d triples returned %d", len(d.Triples), len(got))
		}
	}
}

func TestHDTLargerThan2Tp(t *testing.T) {
	// Table 5: HDT-FoQ takes ~30-45% more space than 2Tp.
	rng := rand.New(rand.NewSource(139))
	d := testDataset(rng, 20000)
	x, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := core.Build2Tp(d)
	if err != nil {
		t.Fatal(err)
	}
	if x.SizeBits() <= p2.SizeBits() {
		t.Errorf("HDT (%d bits) not larger than 2Tp (%d bits)", x.SizeBits(), p2.SizeBits())
	}
}

func TestHDTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(149))
	d := testDataset(rng, 2000)
	x, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := codec.NewWriter(&buf)
	x.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(codec.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		tr := d.Triples[rng.Intn(len(d.Triples))]
		for _, s := range core.AllShapes() {
			pat := core.WithWildcards(tr, s)
			if !sameSet(got.Select(pat).Collect(-1), x.Select(pat).Collect(-1)) {
				t.Fatalf("decoded index disagrees on %v", pat)
			}
		}
	}
}
