package bits

import (
	"math/bits"
)

// selSampleLog is the sampling rate of the select hints: the block index of
// every 2^selSampleLog-th set (resp. unset) bit is recorded. At 2^9 the
// hinted window almost always collapses to a single superblock (EF upper
// vectors run at ~50% density, so 512 ones span about one 512-bit block),
// making Select1 a near-constant three-memory-access operation for 0.07
// bits of directory per element.
const selSampleLog = 9

// blockBits is the rank directory granularity: one superblock counter and
// one packed word-counter entry per 512 bits, i.e. 25% overhead.
const blockBits = 512

// RankSelect augments a Vector with constant-time rank and near
// constant-time select over both ones and zeroes (rank9-style directory
// plus sampled select hints). The underlying vector must not be modified
// after construction.
type RankSelect struct {
	v *Vector
	// super[b] is the number of ones before block b; super[numBlocks] is
	// the total.
	super []uint64
	// sub[b] packs, in 9-bit fields, the number of ones in block b before
	// each of words 1..7.
	sub []uint64
	// sel1[h] (sel0[h]) is the block containing the (h<<selSampleLog)-th
	// one (zero).
	sel1  []uint32
	sel0  []uint32
	ones  int
	zeros int
}

// NewRankSelect builds the rank/select directory for v.
func NewRankSelect(v *Vector) *RankSelect {
	numBlocks := (v.n + blockBits - 1) / blockBits
	if numBlocks == 0 {
		numBlocks = 1
	}
	r := &RankSelect{
		v:     v,
		super: make([]uint64, numBlocks+1),
		sub:   make([]uint64, numBlocks),
	}
	words := v.words
	var cum uint64
	for b := 0; b < numBlocks; b++ {
		r.super[b] = cum
		var inBlock uint64
		var packed uint64
		for j := 0; j < 8; j++ {
			if j > 0 {
				packed |= inBlock << (9 * uint(j-1))
			}
			idx := b*8 + j
			if idx < len(words) {
				inBlock += uint64(bits.OnesCount64(words[idx]))
			}
		}
		r.sub[b] = packed
		cum += inBlock
	}
	r.super[numBlocks] = cum
	r.ones = int(cum)
	r.zeros = v.n - r.ones

	r.sel1 = r.buildHints(numBlocks, r.ones, func(b int) uint64 { return r.super[b] })
	r.sel0 = r.buildHints(numBlocks, r.zeros, func(b int) uint64 {
		return uint64(b*blockBits) - r.super[b]
	})
	return r
}

// buildHints records, for every sampled k, the block containing the k-th
// one (or zero) according to the cumulative function cumAt.
func (r *RankSelect) buildHints(numBlocks, total int, cumAt func(int) uint64) []uint32 {
	if total == 0 {
		return nil
	}
	numHints := (total-1)>>selSampleLog + 1
	hints := make([]uint32, numHints)
	b := 0
	for h := 0; h < numHints; h++ {
		k := uint64(h) << selSampleLog
		for b+1 < numBlocks && cumAt(b+1) <= k {
			b++
		}
		hints[h] = uint32(b)
	}
	return hints
}

// Ones returns the total number of set bits.
func (r *RankSelect) Ones() int { return r.ones }

// Zeros returns the total number of unset bits.
func (r *RankSelect) Zeros() int { return r.zeros }

// Vector returns the underlying bit vector.
func (r *RankSelect) Vector() *Vector { return r.v }

func (r *RankSelect) subCount(b, word int) uint64 {
	if word == 0 {
		return 0
	}
	return r.sub[b] >> (9 * uint(word-1)) & 0x1ff
}

// Rank1 returns the number of ones in positions [0, i). i may equal Len().
func (r *RankSelect) Rank1(i int) int {
	if i <= 0 {
		return 0
	}
	if i >= r.v.n {
		return r.ones
	}
	b := i / blockBits
	word := (i / 64) & 7
	c := r.super[b] + r.subCount(b, word)
	if rem := uint(i) & 63; rem != 0 {
		c += uint64(bits.OnesCount64(r.v.words[i/64] & (1<<rem - 1)))
	}
	return int(c)
}

// Rank0 returns the number of zeros in positions [0, i).
func (r *RankSelect) Rank0(i int) int {
	if i <= 0 {
		return 0
	}
	if i >= r.v.n {
		return r.zeros
	}
	return i - r.Rank1(i)
}

// Select1 returns the position of the k-th (0-based) set bit. k must be in
// [0, Ones()).
func (r *RankSelect) Select1(k int) int {
	// Locate the block via the sampled hint, then binary search the
	// superblock counters within the hinted window.
	h := k >> selSampleLog
	lo := int(r.sel1[h])
	hi := len(r.super) - 2 // last block index
	if h+1 < len(r.sel1) {
		hi = int(r.sel1[h+1])
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if r.super[mid] <= uint64(k) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	b := lo
	rem := uint64(k) - r.super[b]
	// Find the word within the block using the packed counters.
	word := 0
	for word < 7 && r.subCount(b, word+1) <= rem {
		word++
	}
	rem -= r.subCount(b, word)
	idx := b*8 + word
	return idx*64 + selectInWord(r.v.words[idx], int(rem))
}

// Select0 returns the position of the k-th (0-based) unset bit. k must be
// in [0, Zeros()).
func (r *RankSelect) Select0(k int) int {
	zerosBefore := func(b int) uint64 { return uint64(b*blockBits) - r.super[b] }
	h := k >> selSampleLog
	lo := int(r.sel0[h])
	hi := len(r.super) - 2
	if h+1 < len(r.sel0) {
		hi = int(r.sel0[h+1])
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if zerosBefore(mid) <= uint64(k) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	b := lo
	rem := uint64(k) - zerosBefore(b)
	// Zeros in block b before word j: 64*j - subCount(b, j), valid for the
	// words that lie entirely within the vector; the tail word is masked.
	word := 0
	for word < 7 {
		next := uint64(64*(word+1)) - r.subCount(b, word+1)
		if b*blockBits+64*(word+1) > r.v.n || next > rem {
			break
		}
		word++
	}
	rem -= uint64(64*word) - r.subCount(b, word)
	idx := b*8 + word
	w := ^r.v.words[idx]
	if tail := r.v.n - idx*64; tail < 64 {
		w &= 1<<uint(tail) - 1
	}
	return idx*64 + selectInWord(w, int(rem))
}

// SuccessorOne returns the position of the first set bit at or after pos,
// or Len() if there is none.
func (r *RankSelect) SuccessorOne(pos int) int {
	if pos >= r.v.n {
		return r.v.n
	}
	if pos < 0 {
		pos = 0
	}
	k := r.Rank1(pos)
	if k >= r.ones {
		return r.v.n
	}
	return r.Select1(k)
}

// selectByte[b][k] is the position of the k-th set bit in byte b.
var selectByte [256][8]uint8

func init() {
	for b := 0; b < 256; b++ {
		k := 0
		for i := 0; i < 8; i++ {
			if b&(1<<i) != 0 {
				selectByte[b][k] = uint8(i)
				k++
			}
		}
	}
}

// SelectInWord returns the position of the k-th (0-based) set bit of w.
// k must be smaller than the number of set bits.
func SelectInWord(w uint64, k int) int { return selectInWord(w, k) }

// selectInWord returns the position of the k-th (0-based) set bit of w,
// branch-free except for the final byte-table lookup: SWAR popcounts give
// the cumulative ones per byte, a parallel comparison against k locates
// the byte, and the table finishes within it.
func selectInWord(w uint64, k int) int {
	const onesStep = 0x0101010101010101
	const msbsStep = 0x8080808080808080
	byteSums := w - w>>1&0x5555555555555555
	byteSums = byteSums&0x3333333333333333 + byteSums>>2&0x3333333333333333
	byteSums = (byteSums + byteSums>>4) & 0x0f0f0f0f0f0f0f0f
	byteSums *= onesStep // byte i holds popcount of bytes 0..i
	kStep := uint64(k) * onesStep
	// A byte's msb survives iff its cumulative count is <= k; their number
	// is the index of the byte containing the k-th set bit.
	b := bits.OnesCount64(((kStep | msbsStep) - byteSums) & msbsStep)
	shift := uint(b) * 8
	byteRank := k - int(byteSums<<8>>shift&0xff)
	return int(shift) + int(selectByte[uint8(w>>shift)][byteRank])
}

// SizeBits returns the directory storage footprint in bits, excluding the
// underlying vector.
func (r *RankSelect) SizeBits() uint64 {
	return uint64(len(r.super)+len(r.sub))*64 + uint64(len(r.sel1)+len(r.sel0))*32
}
