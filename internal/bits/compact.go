package bits

import (
	"fmt"
	"math/bits"

	"rdfindexes/internal/codec"
)

// CompactVector stores n integers using a fixed number of bits per value:
// ceil(log2(max+1)) bits. It is the paper's "Compact" representation, with
// O(1) random access implemented by a couple of shifts and masks.
type CompactVector struct {
	bv    Vector
	width uint
	n     int
}

// WidthFor returns the number of bits needed to store values up to max.
// It returns at least 1 so that a vector of zeros still occupies one bit
// per element and positions remain addressable.
func WidthFor(max uint64) uint {
	if max == 0 {
		return 1
	}
	return uint(bits.Len64(max))
}

// NewCompact packs values using the minimal width for the largest value.
func NewCompact(values []uint64) *CompactVector {
	var max uint64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	return NewCompactWidth(values, WidthFor(max))
}

// NewCompactWidth packs values using the given width. Every value must fit
// in width bits.
func NewCompactWidth(values []uint64, width uint) *CompactVector {
	if width == 0 || width > 64 {
		panic(fmt.Sprintf("bits: invalid compact width %d", width))
	}
	c := &CompactVector{width: width, n: len(values)}
	c.bv.words = make([]uint64, 0, (len(values)*int(width)+63)/64)
	for _, v := range values {
		c.bv.AppendBits(v, width)
	}
	return c
}

// CompactBuilder incrementally builds a CompactVector of known width.
type CompactBuilder struct {
	c CompactVector
}

// NewCompactBuilder returns a builder for values of the given width, with
// storage preallocated for n values.
func NewCompactBuilder(width uint, n int) *CompactBuilder {
	if width == 0 || width > 64 {
		panic(fmt.Sprintf("bits: invalid compact width %d", width))
	}
	b := &CompactBuilder{}
	b.c.width = width
	b.c.bv.words = make([]uint64, 0, (n*int(width)+63)/64)
	return b
}

// Append adds a value. It must fit in the builder's width.
func (b *CompactBuilder) Append(v uint64) {
	b.c.bv.AppendBits(v, b.c.width)
	b.c.n++
}

// Build finalizes and returns the vector. The builder must not be reused.
func (b *CompactBuilder) Build() *CompactVector { return &b.c }

// At returns the value at index i.
func (c *CompactVector) At(i int) uint64 {
	return c.bv.Get(i*int(c.width), c.width)
}

// Fill decodes the values at indexes [i, i+len(buf)) into buf. It is the
// bulk counterpart of At: the bit cursor advances sequentially instead of
// being recomputed per element, which is what the batched sequence
// iterators build on.
func (c *CompactVector) Fill(i int, buf []uint64) {
	w := c.width
	pos := i * int(w)
	for j := range buf {
		buf[j] = c.bv.Get(pos, w)
		pos += int(w)
	}
}

// Len returns the number of values.
func (c *CompactVector) Len() int { return c.n }

// Width returns the number of bits per value.
func (c *CompactVector) Width() uint { return c.width }

// SizeBits returns the storage footprint in bits.
func (c *CompactVector) SizeBits() uint64 {
	return c.bv.SizeBits() + 2*64
}

// Encode writes the vector to w.
func (c *CompactVector) Encode(w *codec.Writer) {
	w.Byte(byte(c.width))
	w.Uvarint(uint64(c.n))
	c.bv.Encode(w)
}

// DecodeCompact reads a CompactVector written by Encode.
func DecodeCompact(r *codec.Reader) (*CompactVector, error) {
	width := uint(r.Byte())
	n := int(r.Uvarint())
	bv, err := DecodeVector(r)
	if err != nil {
		return nil, err
	}
	if width == 0 || width > 64 || bv.Len() != n*int(width) {
		return nil, r.Fail(fmt.Errorf("%w: compact vector header", codec.ErrCorrupt))
	}
	return &CompactVector{bv: *bv, width: width, n: n}, nil
}
