// Package bits provides the plain bit-level storage primitives used by all
// compressed sequences in this repository: append-only bit vectors,
// fixed-width integer arrays (the paper's "Compact" representation), and a
// rank/select directory in the style of rank9 with sampled select hints.
package bits

import (
	"fmt"
	"math/bits"

	"rdfindexes/internal/codec"
)

// Vector is a growable sequence of bits backed by 64-bit words. The zero
// value is an empty vector ready to use.
type Vector struct {
	words []uint64
	n     int
}

// NewVector returns a zero-filled vector of length n bits.
func NewVector(n int) *Vector {
	return &Vector{words: make([]uint64, (n+63)/64), n: n}
}

// WithCapacity returns an empty vector with storage preallocated for n bits.
func WithCapacity(n int) *Vector {
	return &Vector{words: make([]uint64, 0, (n+63)/64)}
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Words exposes the backing words. The bits at positions >= Len() of the
// last word are guaranteed to be zero.
func (v *Vector) Words() []uint64 { return v.words }

// Bit reports whether bit i is set.
func (v *Vector) Bit(i int) bool {
	return v.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// SetBit sets bit i to 1. The bit must be within Len().
func (v *Vector) SetBit(i int) {
	v.words[i>>6] |= 1 << (uint(i) & 63)
}

// AppendBit appends a single bit.
func (v *Vector) AppendBit(b bool) {
	if v.n>>6 == len(v.words) {
		v.words = append(v.words, 0)
	}
	if b {
		v.words[v.n>>6] |= 1 << (uint(v.n) & 63)
	}
	v.n++
}

// AppendBits appends the width low-order bits of val, least significant
// first. width must be in [0, 64] and val must fit in width bits.
func (v *Vector) AppendBits(val uint64, width uint) {
	if width == 0 {
		return
	}
	off := uint(v.n) & 63
	if off == 0 {
		v.words = append(v.words, val)
	} else {
		v.words[len(v.words)-1] |= val << off
		if off+width > 64 {
			v.words = append(v.words, val>>(64-off))
		}
	}
	v.n += int(width)
}

// Get returns the width bits starting at position pos, least significant
// first. width must be in [0, 64].
func (v *Vector) Get(pos int, width uint) uint64 {
	if width == 0 {
		return 0
	}
	w := pos >> 6
	off := uint(pos) & 63
	x := v.words[w] >> off
	if off+width > 64 {
		x |= v.words[w+1] << (64 - off)
	}
	if width == 64 {
		return x
	}
	return x & (1<<width - 1)
}

// Set overwrites the width bits starting at position pos with val.
func (v *Vector) Set(pos int, width uint, val uint64) {
	if width == 0 {
		return
	}
	w := pos >> 6
	off := uint(pos) & 63
	if width == 64 {
		if off == 0 {
			v.words[w] = val
			return
		}
		mask := uint64(1)<<off - 1
		v.words[w] = v.words[w]&mask | val<<off
		v.words[w+1] = v.words[w+1]&^mask | val>>(64-off)
		return
	}
	mask := uint64(1)<<width - 1
	v.words[w] = v.words[w]&^(mask<<off) | (val&mask)<<off
	if off+width > 64 {
		spill := off + width - 64
		hi := uint64(1)<<spill - 1
		v.words[w+1] = v.words[w+1]&^hi | (val&mask)>>(64-off)
	}
}

// OnesCount returns the total number of set bits.
func (v *Vector) OnesCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// SizeBits returns the storage footprint of the vector in bits.
func (v *Vector) SizeBits() uint64 {
	return uint64(len(v.words))*64 + 64 // words + length field
}

// Encode writes the vector to w.
func (v *Vector) Encode(w *codec.Writer) {
	w.Uvarint(uint64(v.n))
	w.Uint64s(v.words)
}

// DecodeVector reads a vector written by Encode.
func DecodeVector(r *codec.Reader) (*Vector, error) {
	n := r.Uvarint()
	words := r.Uint64s()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if uint64(len(words)) != (n+63)/64 {
		return nil, r.Fail(fmt.Errorf("%w: bit vector length %d does not match %d words", codec.ErrCorrupt, n, len(words)))
	}
	return &Vector{words: words, n: int(n)}, nil
}
