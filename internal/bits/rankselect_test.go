package bits

import (
	"math/rand"
	"testing"
)

// refRankSelect is a brute-force oracle.
type refRankSelect struct {
	bits []bool
}

func (r refRankSelect) rank1(i int) int {
	c := 0
	for j := 0; j < i; j++ {
		if r.bits[j] {
			c++
		}
	}
	return c
}

func (r refRankSelect) select1(k int) int {
	for j, b := range r.bits {
		if b {
			if k == 0 {
				return j
			}
			k--
		}
	}
	return -1
}

func (r refRankSelect) select0(k int) int {
	for j, b := range r.bits {
		if !b {
			if k == 0 {
				return j
			}
			k--
		}
	}
	return -1
}

func buildRandom(n int, density float64, seed int64) (*Vector, refRankSelect) {
	rng := rand.New(rand.NewSource(seed))
	v := NewVector(n)
	ref := refRankSelect{bits: make([]bool, n)}
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			v.SetBit(i)
			ref.bits[i] = true
		}
	}
	return v, ref
}

func TestRankSelectAgainstOracle(t *testing.T) {
	for _, tc := range []struct {
		n       int
		density float64
	}{
		{1, 1}, {1, 0}, {63, 0.5}, {64, 0.5}, {65, 0.5},
		{511, 0.3}, {512, 0.3}, {513, 0.3},
		{5000, 0.01}, {5000, 0.99}, {5000, 0.5}, {4096, 0.5},
	} {
		v, ref := buildRandom(tc.n, tc.density, int64(tc.n)*7+int64(tc.density*100))
		rs := NewRankSelect(v)

		wantOnes := ref.rank1(tc.n)
		if rs.Ones() != wantOnes {
			t.Fatalf("n=%d d=%v: Ones() = %d, want %d", tc.n, tc.density, rs.Ones(), wantOnes)
		}
		if rs.Zeros() != tc.n-wantOnes {
			t.Fatalf("n=%d d=%v: Zeros() = %d, want %d", tc.n, tc.density, rs.Zeros(), tc.n-wantOnes)
		}
		for i := 0; i <= tc.n; i++ {
			if got, want := rs.Rank1(i), ref.rank1(i); got != want {
				t.Fatalf("n=%d d=%v: Rank1(%d) = %d, want %d", tc.n, tc.density, i, got, want)
			}
		}
		for k := 0; k < rs.Ones(); k++ {
			if got, want := rs.Select1(k), ref.select1(k); got != want {
				t.Fatalf("n=%d d=%v: Select1(%d) = %d, want %d", tc.n, tc.density, k, got, want)
			}
		}
		for k := 0; k < rs.Zeros(); k++ {
			if got, want := rs.Select0(k), ref.select0(k); got != want {
				t.Fatalf("n=%d d=%v: Select0(%d) = %d, want %d", tc.n, tc.density, k, got, want)
			}
		}
	}
}

func TestRankSelectLarge(t *testing.T) {
	// Exercise the sampled select hints (> 2^selSampleLog ones and zeros).
	n := 300000
	v, _ := buildRandom(n, 0.5, 42)
	rs := NewRankSelect(v)
	// Spot-check with rank/select inverse properties instead of the O(n^2)
	// oracle.
	for k := 0; k < rs.Ones(); k += 997 {
		p := rs.Select1(k)
		if !v.Bit(p) {
			t.Fatalf("Select1(%d) = %d: bit not set", k, p)
		}
		if got := rs.Rank1(p); got != k {
			t.Fatalf("Rank1(Select1(%d)) = %d", k, got)
		}
	}
	for k := 0; k < rs.Zeros(); k += 997 {
		p := rs.Select0(k)
		if v.Bit(p) {
			t.Fatalf("Select0(%d) = %d: bit set", k, p)
		}
		if got := rs.Rank0(p); got != k {
			t.Fatalf("Rank0(Select0(%d)) = %d", k, got)
		}
	}
}

func TestRankSelectRunStructured(t *testing.T) {
	// Alternating runs stress block/word boundary logic.
	n := 10000
	v := NewVector(n)
	ref := refRankSelect{bits: make([]bool, n)}
	for i := 0; i < n; i++ {
		if (i/37)%2 == 0 {
			v.SetBit(i)
			ref.bits[i] = true
		}
	}
	rs := NewRankSelect(v)
	for i := 0; i <= n; i += 13 {
		if got, want := rs.Rank1(i), ref.rank1(i); got != want {
			t.Fatalf("Rank1(%d) = %d, want %d", i, got, want)
		}
	}
	for k := 0; k < rs.Ones(); k += 11 {
		if got, want := rs.Select1(k), ref.select1(k); got != want {
			t.Fatalf("Select1(%d) = %d, want %d", k, got, want)
		}
	}
	for k := 0; k < rs.Zeros(); k += 11 {
		if got, want := rs.Select0(k), ref.select0(k); got != want {
			t.Fatalf("Select0(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestSuccessorOne(t *testing.T) {
	v := NewVector(200)
	for _, p := range []int{3, 64, 65, 130, 199} {
		v.SetBit(p)
	}
	rs := NewRankSelect(v)
	cases := []struct{ pos, want int }{
		{0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 65}, {66, 130},
		{131, 199}, {199, 199}, {200, 200}, {500, 200}, {-5, 3},
	}
	for _, c := range cases {
		if got := rs.SuccessorOne(c.pos); got != c.want {
			t.Errorf("SuccessorOne(%d) = %d, want %d", c.pos, got, c.want)
		}
	}
}

func TestSelectInWord(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 1000; trial++ {
		w := rng.Uint64()
		k := 0
		for i := 0; i < 64; i++ {
			if w&(1<<uint(i)) != 0 {
				if got := selectInWord(w, k); got != i {
					t.Fatalf("selectInWord(%#x, %d) = %d, want %d", w, k, got, i)
				}
				k++
			}
		}
	}
}

func BenchmarkRank1(b *testing.B) {
	v, _ := buildRandom(1<<20, 0.5, 1)
	rs := NewRankSelect(v)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Rank1((i * 2654435761) & (1<<20 - 1))
	}
}

func BenchmarkSelect1(b *testing.B) {
	v, _ := buildRandom(1<<20, 0.5, 1)
	rs := NewRankSelect(v)
	ones := rs.Ones()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Select1((i * 2654435761) % ones)
	}
}
