package bits

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"rdfindexes/internal/codec"
)

func TestVectorAppendAndGetBit(t *testing.T) {
	var v Vector
	pattern := []bool{true, false, true, true, false, false, true, false}
	for i := 0; i < 200; i++ {
		v.AppendBit(pattern[i%len(pattern)])
	}
	if v.Len() != 200 {
		t.Fatalf("Len() = %d, want 200", v.Len())
	}
	for i := 0; i < 200; i++ {
		if got, want := v.Bit(i), pattern[i%len(pattern)]; got != want {
			t.Fatalf("Bit(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestVectorAppendBitsCrossingWords(t *testing.T) {
	var v Vector
	vals := []uint64{5, 1023, 0, 77, 1 << 36, 42, 0xffffffffffffffff, 3}
	widths := []uint{3, 10, 1, 7, 37, 6, 64, 2}
	for i, val := range vals {
		if widths[i] < 64 {
			val &= 1<<widths[i] - 1
		}
		v.AppendBits(val, widths[i])
	}
	pos := 0
	for i, val := range vals {
		if widths[i] < 64 {
			val &= 1<<widths[i] - 1
		}
		if got := v.Get(pos, widths[i]); got != val {
			t.Fatalf("Get(%d, %d) = %d, want %d", pos, widths[i], got, val)
		}
		pos += int(widths[i])
	}
}

func TestVectorSet(t *testing.T) {
	v := NewVector(300)
	rng := rand.New(rand.NewSource(1))
	type field struct {
		pos   int
		width uint
		val   uint64
	}
	var fields []field
	pos := 0
	for pos < 230 {
		w := uint(rng.Intn(64) + 1)
		val := rng.Uint64()
		if w < 64 {
			val &= 1<<w - 1
		}
		fields = append(fields, field{pos, w, val})
		pos += int(w)
	}
	for _, f := range fields {
		v.Set(f.pos, f.width, f.val)
	}
	for _, f := range fields {
		if got := v.Get(f.pos, f.width); got != f.val {
			t.Fatalf("Get(%d, %d) = %d, want %d", f.pos, f.width, got, f.val)
		}
	}
}

func TestVectorGetWidth64AlignedAndUnaligned(t *testing.T) {
	var v Vector
	v.AppendBits(0xdeadbeefcafebabe, 64)
	v.AppendBits(0x0123456789abcdef, 64)
	if got := v.Get(0, 64); got != 0xdeadbeefcafebabe {
		t.Fatalf("aligned Get = %#x", got)
	}
	// Unaligned 64-bit read spanning both words.
	lo, hi := uint64(0xdeadbeefcafebabe), uint64(0x0123456789abcdef)
	want := lo>>8 | hi<<56
	if got := v.Get(8, 64); got != want {
		t.Fatalf("unaligned Get = %#x, want %#x", got, want)
	}
}

func TestVectorRoundTrip(t *testing.T) {
	f := func(vals []uint64, widthSeed uint8) bool {
		width := uint(widthSeed%64 + 1)
		var v Vector
		for _, x := range vals {
			if width < 64 {
				x &= 1<<width - 1
			}
			v.AppendBits(x, width)
		}
		var buf bytes.Buffer
		w := codec.NewWriter(&buf)
		v.Encode(w)
		if err := w.Flush(); err != nil {
			t.Logf("flush: %v", err)
			return false
		}
		got, err := DecodeVector(codec.NewReader(&buf))
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		if got.Len() != v.Len() {
			return false
		}
		for i, x := range vals {
			if width < 64 {
				x &= 1<<width - 1
			}
			if got.Get(i*int(width), width) != x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeVectorCorrupt(t *testing.T) {
	var buf bytes.Buffer
	w := codec.NewWriter(&buf)
	w.Uvarint(1000) // claims 1000 bits
	w.Uint64s([]uint64{1, 2})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeVector(codec.NewReader(&buf)); err == nil {
		t.Fatal("DecodeVector accepted mismatched word count")
	}
}

func TestCompactVector(t *testing.T) {
	vals := []uint64{0, 1, 5, 1023, 512, 7, 0, 1000}
	c := NewCompact(vals)
	if c.Width() != 10 {
		t.Fatalf("Width() = %d, want 10", c.Width())
	}
	if c.Len() != len(vals) {
		t.Fatalf("Len() = %d, want %d", c.Len(), len(vals))
	}
	for i, v := range vals {
		if got := c.At(i); got != v {
			t.Fatalf("At(%d) = %d, want %d", i, got, v)
		}
	}
}

func TestCompactBuilderMatchesNewCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]uint64, 1000)
	for i := range vals {
		vals[i] = uint64(rng.Intn(1 << 17))
	}
	direct := NewCompactWidth(vals, 17)
	b := NewCompactBuilder(17, len(vals))
	for _, v := range vals {
		b.Append(v)
	}
	built := b.Build()
	for i := range vals {
		if direct.At(i) != built.At(i) {
			t.Fatalf("mismatch at %d: %d vs %d", i, direct.At(i), built.At(i))
		}
	}
}

func TestWidthFor(t *testing.T) {
	cases := []struct {
		max  uint64
		want uint
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9},
		{1<<63 - 1, 63}, {1 << 63, 64}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := WidthFor(c.max); got != c.want {
			t.Errorf("WidthFor(%d) = %d, want %d", c.max, got, c.want)
		}
	}
}

func TestCompactRoundTrip(t *testing.T) {
	vals := make([]uint64, 500)
	rng := rand.New(rand.NewSource(3))
	for i := range vals {
		vals[i] = rng.Uint64() % 100000
	}
	c := NewCompact(vals)
	var buf bytes.Buffer
	w := codec.NewWriter(&buf)
	c.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCompact(codec.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if got.At(i) != v {
			t.Fatalf("At(%d) = %d, want %d", i, got.At(i), v)
		}
	}
}
