// Package faultfs abstracts the handful of filesystem operations the
// store's durability paths use — store serialization, WAL append/fsync,
// and the merge's atomic rewrite — behind an interface with two
// implementations: OS, a direct passthrough, and Injector, a
// fault-injecting wrapper for crash-consistency testing.
//
// The Injector consults a fault plan before every operation. A plan can
// fail an operation with an error (ENOSPC, EIO), truncate a write to a
// prefix (a short write), or crash: the operation fails, every later
// operation fails with ErrCrashed, and — mimicking the loss of the page
// cache at power failure — data written but not yet fsynced through any
// injector-opened file is optionally dropped. A torture test drives the
// same workload with the crash point at every successive operation and
// asserts the store reopens consistently each time.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// File is the subset of *os.File the store's write paths use.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	WriteString(s string) (int, error)
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	Fd() uintptr
}

// FS is the set of filesystem entry points the store goes through.
type FS interface {
	Create(name string) (File, error)
	Open(name string) (File, error)
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// OS is the passthrough implementation over the real filesystem.
type OS struct{}

func (OS) Create(name string) (File, error) { return passthrough(os.Create(name)) }
func (OS) Open(name string) (File, error)   { return passthrough(os.Open(name)) }
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return passthrough(os.OpenFile(name, flag, perm))
}
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error             { return os.Remove(name) }

// passthrough converts (*os.File, error) without wrapping a typed nil
// into a non-nil interface.
func passthrough(f *os.File, err error) (File, error) {
	if err != nil {
		return nil, err
	}
	return f, nil
}

// OpKind names a faultable operation class.
type OpKind string

const (
	OpCreate   OpKind = "create"
	OpOpen     OpKind = "open"
	OpWrite    OpKind = "write"
	OpSync     OpKind = "sync"
	OpTruncate OpKind = "truncate"
	OpRename   OpKind = "rename"
	OpRemove   OpKind = "remove"
)

// Op identifies one faultable operation as the plan sees it.
type Op struct {
	Kind OpKind
	Path string // target path (the file's name for handle operations)
	Seq  int    // 1-based position in the injector's global operation order
}

// Fault is the plan's verdict for one operation.
type Fault int

const (
	// None lets the operation through.
	None Fault = iota
	// Error fails the operation with ErrInjected without touching state.
	Error
	// ShortWrite applies only the first half of the buffer, then fails
	// (meaningful for OpWrite only; other kinds treat it as Error).
	ShortWrite
	// Crash fails the operation, drops unsynced data from every open
	// injector file when DropUnsynced is set, and fails every subsequent
	// operation with ErrCrashed.
	Crash
)

// ErrInjected is the error surfaced by Error and ShortWrite faults.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned by every operation after a Crash fault fired.
var ErrCrashed = errors.New("faultfs: simulated crash (process is dead)")

// Injector wraps an FS with a fault plan.
type Injector struct {
	inner FS

	// DropUnsynced makes a Crash truncate every open file back to its
	// last-synced size, simulating the loss of unflushed page cache at
	// power failure. Without it the crash keeps whatever bytes the real
	// filesystem already has — both are legal crash outcomes, and the
	// torture test runs each.
	DropUnsynced bool

	mu      sync.Mutex
	plan    func(Op) Fault
	seq     int
	crashed bool
	files   []*injFile
}

// NewInjector wraps inner; with a nil plan every operation passes.
func NewInjector(inner FS) *Injector {
	return &Injector{inner: inner}
}

// SetPlan installs the fault plan consulted before every operation.
func (in *Injector) SetPlan(plan func(Op) Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plan = plan
}

// CrashAtOp arms a plan that crashes at the n-th faultable operation
// (1-based) counted across the injector's lifetime.
func (in *Injector) CrashAtOp(n int) {
	in.SetPlan(func(op Op) Fault {
		if op.Seq == n {
			return Crash
		}
		return None
	})
}

// Ops returns the number of faultable operations observed so far; a
// clean run's total bounds the crash-point sweep.
func (in *Injector) Ops() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seq
}

// Crashed reports whether a Crash fault has fired.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// check consults the plan for one operation. It returns the fault to
// apply; Crash transitions the injector into the dead state (the caller
// still applies crash side effects via crashLocked having run).
func (in *Injector) check(kind OpKind, path string) (Fault, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return None, ErrCrashed
	}
	in.seq++
	f := None
	if in.plan != nil {
		f = in.plan(Op{Kind: kind, Path: path, Seq: in.seq})
	}
	if f == Crash {
		in.crashLocked()
	}
	return f, nil
}

// crashLocked marks the injector dead and, when DropUnsynced is set,
// rewinds every open file to its last-synced length.
func (in *Injector) crashLocked() {
	in.crashed = true
	if !in.DropUnsynced {
		return
	}
	for _, f := range in.files {
		if !f.closed {
			f.f.Truncate(f.synced)
		}
	}
}

func (in *Injector) Create(name string) (File, error) {
	if f, err := in.check(OpCreate, name); err != nil {
		return nil, err
	} else if f != None {
		return nil, faultErr(f)
	}
	inner, err := in.inner.Create(name)
	return in.track(name, inner, err)
}

func (in *Injector) Open(name string) (File, error) {
	if f, err := in.check(OpOpen, name); err != nil {
		return nil, err
	} else if f != None {
		return nil, faultErr(f)
	}
	inner, err := in.inner.Open(name)
	return in.track(name, inner, err)
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if f, err := in.check(OpOpen, name); err != nil {
		return nil, err
	} else if f != None {
		return nil, faultErr(f)
	}
	inner, err := in.inner.OpenFile(name, flag, perm)
	return in.track(name, inner, err)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if f, err := in.check(OpRename, oldpath); err != nil {
		return err
	} else if f != None {
		return faultErr(f)
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if f, err := in.check(OpRemove, name); err != nil {
		return err
	} else if f != None {
		return faultErr(f)
	}
	return in.inner.Remove(name)
}

// faultErr maps a non-Crash fault to its surfaced error; Crash surfaces
// ErrCrashed (the state transition already happened in check).
func faultErr(f Fault) error {
	if f == Crash {
		return ErrCrashed
	}
	return ErrInjected
}

// track registers a successfully opened file for crash bookkeeping.
func (in *Injector) track(name string, f File, err error) (File, error) {
	if err != nil {
		return nil, err
	}
	jf := &injFile{in: in, f: f, name: name}
	if fi, serr := f.Stat(); serr == nil {
		// Pre-existing bytes are on disk already; only writes after this
		// open are at risk until the next sync.
		jf.synced = fi.Size()
	}
	in.mu.Lock()
	in.files = append(in.files, jf)
	in.mu.Unlock()
	return jf, nil
}

// injFile wraps one open file with fault checks and synced-size
// tracking: Sync records the file's length as durable, a Crash with
// DropUnsynced rewinds to it.
type injFile struct {
	in     *Injector
	f      File
	name   string
	synced int64 // length known durable (set by Sync, cut by Truncate)
	closed bool
}

func (jf *injFile) Read(p []byte) (int, error) { return jf.f.Read(p) }
func (jf *injFile) Seek(offset int64, whence int) (int64, error) {
	return jf.f.Seek(offset, whence)
}
func (jf *injFile) Stat() (os.FileInfo, error) { return jf.f.Stat() }
func (jf *injFile) Fd() uintptr                { return jf.f.Fd() }

func (jf *injFile) Write(p []byte) (int, error) {
	fault, err := jf.in.check(OpWrite, jf.name)
	if err != nil {
		return 0, err
	}
	switch fault {
	case None:
		return jf.f.Write(p)
	case ShortWrite:
		n, _ := jf.f.Write(p[:len(p)/2])
		return n, fmt.Errorf("%w: short write (%d of %d bytes)", ErrInjected, n, len(p))
	case Crash:
		// A crash mid-write may leave any prefix; persist half, then die.
		// With DropUnsynced the crash handler already rewound the file to
		// its synced length — a lost write — so write nothing more.
		if !jf.in.DropUnsynced {
			jf.f.Write(p[:len(p)/2])
		}
		return 0, ErrCrashed
	default:
		return 0, ErrInjected
	}
}

func (jf *injFile) WriteString(s string) (int, error) { return jf.Write([]byte(s)) }

func (jf *injFile) Sync() error {
	fault, err := jf.in.check(OpSync, jf.name)
	if err != nil {
		return err
	}
	if fault != None {
		return faultErr(fault)
	}
	if err := jf.f.Sync(); err != nil {
		return err
	}
	if fi, err := jf.f.Stat(); err == nil {
		jf.in.mu.Lock()
		jf.synced = fi.Size()
		jf.in.mu.Unlock()
	}
	return nil
}

func (jf *injFile) Truncate(size int64) error {
	fault, err := jf.in.check(OpTruncate, jf.name)
	if err != nil {
		return err
	}
	if fault != None {
		return faultErr(fault)
	}
	if err := jf.f.Truncate(size); err != nil {
		return err
	}
	jf.in.mu.Lock()
	if jf.synced > size {
		jf.synced = size
	}
	jf.in.mu.Unlock()
	return nil
}

func (jf *injFile) Close() error {
	jf.in.mu.Lock()
	jf.closed = true
	jf.in.mu.Unlock()
	return jf.f.Close()
}
