package repl

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rdfindexes/internal/core"
	"rdfindexes/internal/rdf"
	"rdfindexes/internal/store"
)

// Tight timings so reconnect/backoff/heartbeat paths run in
// milliseconds under test.
func testLeaderOptions() LeaderOptions {
	return LeaderOptions{HeartbeatInterval: 5 * time.Millisecond, HelloTimeout: time.Second}
}

func testFollowerOptions() FollowerOptions {
	return FollowerOptions{
		ReadTimeout:     250 * time.Millisecond,
		SnapshotTimeout: 5 * time.Second,
		BackoffMin:      time.Millisecond,
		BackoffMax:      20 * time.Millisecond,
	}
}

// buildSeedStore writes a small dictionary store and returns its path.
func buildSeedStore(t *testing.T, dir string) string {
	t.Helper()
	nt := `<http://ex/alice> <http://ex/knows> <http://ex/bob> .
<http://ex/bob> <http://ex/knows> <http://ex/carol> .
`
	statements, err := rdf.ParseAll(strings.NewReader(nt))
	if err != nil {
		t.Fatal(err)
	}
	d, dicts, err := rdf.Encode(statements)
	if err != nil {
		t.Fatal(err)
	}
	x, err := core.Build(d, core.Layout2Tp)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "leader.idx")
	if err := store.Write(path, &store.Store{Index: x, Dicts: dicts}); err != nil {
		t.Fatal(err)
	}
	return path
}

// startLeader opens the store for writing, attaches a leader, and
// serves it on a loopback listener.
func startLeader(t *testing.T, path string, threshold int) (*store.Mutable, *Leader, string) {
	t.Helper()
	mut, err := store.OpenMutable(path, threshold)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLeader(mut, testLeaderOptions())
	if err != nil {
		mut.Close()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go l.Serve(ln)
	t.Cleanup(func() {
		l.Close()
		mut.Close()
	})
	return mut, l, ln.Addr().String()
}

// startFollower opens (bootstrapping if needed) and runs a follower in
// the background.
func startFollower(t *testing.T, path, addr string) (*Follower, context.CancelFunc) {
	t.Helper()
	f, err := OpenFollower(path, addr, testFollowerOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
		f.Close()
	})
	return f, cancel
}

// waitConverged polls until the follower holds exactly the leader's
// state: same WAL position, same base file fingerprint, same triple
// count.
func waitConverged(t *testing.T, leader *store.Mutable, f *Follower) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		lSeq, fSeq := leader.WALSeq(), f.Mutable().WALSeq()
		lFp, _ := store.FileFingerprint(leader.Path())
		fFp, _ := store.FileFingerprint(f.Mutable().Path())
		lN := leader.View().Index.NumTriples()
		fN := f.Mutable().View().Index.NumTriples()
		if lSeq == fSeq && lFp == fFp && lN == fN {
			return
		}
		last = fmt.Sprintf("leader seq=%d fp=%016x n=%d; follower seq=%d fp=%016x n=%d",
			lSeq, lFp, lN, fSeq, fFp, fN)
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("follower did not converge: %s", last)
}

func insertN(t *testing.T, mut *store.Mutable, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		s := fmt.Sprintf("<http://ex/s%d>", i)
		o := fmt.Sprintf("<http://ex/o%d>", i)
		if _, err := mut.Insert(s, "<http://ex/p>", o); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
}

func TestReplicateBootstrapAndTail(t *testing.T) {
	dir := t.TempDir()
	leaderPath := buildSeedStore(t, dir)
	mut, l, addr := startLeader(t, leaderPath, -1)

	insertN(t, mut, 0, 5) // records before the follower exists

	f, _ := startFollower(t, filepath.Join(dir, "replica.idx"), addr)
	waitConverged(t, mut, f)
	if got := f.Stats().SnapshotsInstalled; got < 1 {
		t.Fatalf("bootstrap should install a snapshot, got %d", got)
	}

	insertN(t, mut, 5, 5) // live tail
	waitConverged(t, mut, f)

	st := f.Mutable().View()
	pat, err := st.ParsePattern("<http://ex/s7>", "<http://ex/p>", "<http://ex/o7>")
	if err != nil {
		t.Fatal(err)
	}
	if n := st.Index.Select(pat).Count(); n != 1 {
		t.Fatalf("replicated triple lookup = %d, want 1", n)
	}
	// Ready flips once a heartbeat confirms the commit offset.
	deadline := time.Now().Add(5 * time.Second)
	for !f.Ready() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !f.Ready() {
		t.Fatal("follower never became ready")
	}
	if ls := l.Stats(); ls.RecordsShipped < 10 {
		t.Fatalf("leader shipped %d records, want >= 10", ls.RecordsShipped)
	}
}

func TestFollowerResumesWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	leaderPath := buildSeedStore(t, dir)
	mut, _, addr := startLeader(t, leaderPath, -1)
	replicaPath := filepath.Join(dir, "replica.idx")

	f, err := OpenFollower(replicaPath, addr, testFollowerOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()
	insertN(t, mut, 0, 5)
	waitConverged(t, mut, f)
	cancel()
	<-done
	f.Close()

	insertN(t, mut, 5, 3) // written while the follower is down

	f2, _ := startFollower(t, replicaPath, addr)
	waitConverged(t, mut, f2)
	if got := f2.Stats().SnapshotsInstalled; got != 0 {
		t.Fatalf("resume from a live position took %d snapshots, want 0", got)
	}
	if got := f2.Mutable().WALSeq(); got != 8 {
		t.Fatalf("follower WAL seq = %d, want 8", got)
	}
}

func TestMergePropagatesAsEpochEnd(t *testing.T) {
	dir := t.TempDir()
	leaderPath := buildSeedStore(t, dir)
	mut, _, addr := startLeader(t, leaderPath, -1)

	f, _ := startFollower(t, filepath.Join(dir, "replica.idx"), addr)
	insertN(t, mut, 0, 4)
	waitConverged(t, mut, f)
	before := f.Stats().SnapshotsInstalled

	if err := mut.Merge(); err != nil {
		t.Fatal(err)
	}
	insertN(t, mut, 4, 3)
	waitConverged(t, mut, f)

	if f.Mutable().WALSeq() != 3 {
		t.Fatalf("follower seq after merge = %d, want 3", f.Mutable().WALSeq())
	}
	if got := f.Stats().SnapshotsInstalled - before; got != 0 {
		t.Fatalf("in-stream merge took %d snapshots, want 0 (local merge replay)", got)
	}
}

func TestSnapshotCatchUpAfterRetentionLoss(t *testing.T) {
	dir := t.TempDir()
	leaderPath := buildSeedStore(t, dir)
	mut, _, addr := startLeader(t, leaderPath, -1)
	replicaPath := filepath.Join(dir, "replica.idx")

	f, err := OpenFollower(replicaPath, addr, testFollowerOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()
	insertN(t, mut, 0, 3)
	waitConverged(t, mut, f)
	cancel()
	<-done
	f.Close()

	// Two merges while the follower is away: its position falls out of
	// the two-epoch retention window, forcing full-snapshot catch-up.
	insertN(t, mut, 3, 3)
	if err := mut.Merge(); err != nil {
		t.Fatal(err)
	}
	insertN(t, mut, 6, 3)
	if err := mut.Merge(); err != nil {
		t.Fatal(err)
	}
	insertN(t, mut, 9, 2)

	f2, _ := startFollower(t, replicaPath, addr)
	waitConverged(t, mut, f2)
	if got := f2.Stats().SnapshotsInstalled; got < 1 {
		t.Fatalf("retention loss should force a snapshot, got %d", got)
	}
	if n := f2.Mutable().View().Index.NumTriples(); n != 13 {
		t.Fatalf("follower triples = %d, want 13", n)
	}
}

func TestFollowerSurvivesLeaderRestart(t *testing.T) {
	dir := t.TempDir()
	leaderPath := buildSeedStore(t, dir)

	mut, err := store.OpenMutable(leaderPath, -1)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLeader(mut, testLeaderOptions())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go l.Serve(ln)

	f, _ := startFollower(t, filepath.Join(dir, "replica.idx"), addr)
	insertN(t, mut, 0, 4)
	waitConverged(t, mut, f)

	// Kill the leader mid-stream and bring a new one up on the same
	// address — the follower must reconnect and resume unattended.
	l.Close()
	mut.Close()
	mut2, err := store.OpenMutable(leaderPath, -1)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := NewLeader(mut2, testLeaderOptions())
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go l2.Serve(ln2)
	t.Cleanup(func() {
		l2.Close()
		mut2.Close()
	})

	insertN(t, mut2, 4, 4)
	waitConverged(t, mut2, f)
	if got := f.Stats().Reconnects; got < 1 {
		t.Fatalf("follower reconnects = %d, want >= 1", got)
	}
}

func TestFrameRoundtripAndDamage(t *testing.T) {
	var buf strings.Builder
	line := []byte("deadbeef 1 I <a> <b> <c> .\n")
	if err := writeFrame(&buf, encodeRecord(7, 9, line)); err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	fp, gen, got, err := decodeRecord(payload)
	if err != nil || fp != 7 || gen != 9 || string(got) != string(line) {
		t.Fatalf("record roundtrip = (%d,%d,%q,%v)", fp, gen, got, err)
	}

	// Flip one payload byte: the frame checksum must catch it.
	raw := []byte(buf.String())
	raw[10] ^= 0x40
	if _, err := readFrame(strings.NewReader(string(raw))); err == nil {
		t.Fatal("corrupt frame passed checksum")
	}

	// Truncated stream must surface as an error, not a short frame.
	if _, err := readFrame(strings.NewReader(buf.String()[:5])); err == nil {
		t.Fatal("truncated frame did not error")
	}
}
