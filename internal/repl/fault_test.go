package repl

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"rdfindexes/internal/faultnet"
	"rdfindexes/internal/store"
)

// TestFaultSweep crash-tortures the replication link: for every fault
// kind (disconnect, torn frame, duplicated write, stall) and every
// operation index into the protocol (hello, snapshot header, snapshot
// body, record frames, epoch end, heartbeats), one fault is injected at
// exactly that state. The follower must always (a) converge to the
// leader's exact state without manual intervention and (b) never
// publish a view that is not a prefix of the leader's write sequence.
func TestFaultSweep(t *testing.T) {
	const sweepOps = 16
	kinds := []struct {
		name  string
		fault faultnet.Fault
	}{
		{"cut", faultnet.Cut},
		{"torn", faultnet.Torn},
		{"dup", faultnet.Dup},
		{"stall", faultnet.Stall},
	}
	for _, k := range kinds {
		for target := 0; target < sweepOps; target++ {
			t.Run(fmt.Sprintf("%s/op%02d", k.name, target), func(t *testing.T) {
				t.Parallel()
				runFaultScenario(t, k.fault, target)
			})
		}
	}
}

func runFaultScenario(t *testing.T, fault faultnet.Fault, target int) {
	dir := t.TempDir()
	leaderPath := buildSeedStore(t, dir)
	mut, _, addr := startLeader(t, leaderPath, -1)
	insertN(t, mut, 0, 3) // records already in the WAL at first contact

	inj := faultnet.NewInjector(func(op faultnet.Op, n int) faultnet.Fault {
		if n == target {
			return fault
		}
		return faultnet.None
	}, 150*time.Millisecond)

	opts := testFollowerOptions()
	opts.ReadTimeout = 60 * time.Millisecond
	opts.Dial = func(addr string) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			return nil, err
		}
		return inj.Wrap(c), nil
	}

	// Bootstrap itself rides the faulty link; the injected fault can land
	// there, so opening retries like a supervisor would restart a dying
	// process.
	var f *Follower
	var err error
	replicaPath := filepath.Join(dir, "replica.idx")
	for try := 0; try < 50; try++ {
		f, err = OpenFollower(replicaPath, addr, opts)
		if err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("bootstrap never succeeded: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() { defer close(runDone); f.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		<-runDone
		f.Close()
	})

	// Prefix-invariant sampler: every published follower view must be
	// the seed plus the first k inserted triples for some k — a torn or
	// reordered application would break either the count or the
	// membership pattern.
	samplerDone := make(chan string, 1)
	samplerStop := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-samplerStop:
				return
			default:
			}
			if msg := checkPrefixView(f.Mutable().View()); msg != "" {
				samplerDone <- msg
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	insertN(t, mut, 3, 4)
	if err := mut.Merge(); err != nil {
		t.Fatal(err)
	}
	insertN(t, mut, 7, 3)
	waitConverged(t, mut, f)

	close(samplerStop)
	if msg, ok := <-samplerDone; ok && msg != "" {
		t.Fatalf("follower published a non-prefix view: %s", msg)
	}
	if msg := checkPrefixView(f.Mutable().View()); msg != "" {
		t.Fatalf("final view: %s", msg)
	}
	if n := f.Mutable().View().Index.NumTriples(); n != 12 {
		t.Fatalf("final follower triples = %d, want 12", n)
	}
}

// checkPrefixView verifies st holds the 2 seed triples plus exactly the
// first k inserted ones, returning a description of the violation ("" if
// none).
func checkPrefixView(st *store.Store) string {
	n := st.Index.NumTriples()
	k := n - 2
	if k < 0 || k > 10 {
		return fmt.Sprintf("triple count %d outside prefix range", n)
	}
	probe := func(i int) bool {
		pat, err := st.ParsePattern(fmt.Sprintf("<http://ex/s%d>", i), "<http://ex/p>", fmt.Sprintf("<http://ex/o%d>", i))
		if err != nil {
			return false // terms not in any dictionary: triple absent
		}
		return st.Index.Select(pat).Count() == 1
	}
	if k > 0 && !probe(k-1) {
		return fmt.Sprintf("count says %d inserts but insert %d is missing", k, k-1)
	}
	if k < 10 && probe(k) {
		return fmt.Sprintf("count says %d inserts but insert %d is present", k, k)
	}
	return ""
}
