// Package repl implements WAL-shipping replication: a leader streams
// the mutable store's CRC+sequence-numbered WAL records to follower
// processes over a length-prefixed binary frame protocol; followers
// replay them into their own store.Mutable and publish RCU snapshots,
// giving N read replicas behind one writer.
//
// Protocol (all integers big-endian):
//
//	frame   = u32 payloadLen | u32 crc32c(payload) | payload
//	payload = type byte, then type-specific fields
//
//	'H' hello      (f→l)  u16 version | u64 baseFp | u64 seq | u8 flags
//	'R' record     (l→f)  u64 fp | u64 gen | u32 lineLen | line bytes
//	'E' epochEnd   (l→f)  u64 prevFp | u64 prevFinalSeq | u64 newFp | u64 gen
//	'B' heartbeat  (l→f)  u64 fp | u64 seq | u64 gen | i64 sentUnixNano
//	'S' snapshot   (l→f)  u64 fp | u64 gen | u64 size — then size raw
//	                      store-container bytes follow, unframed
//
// A WAL epoch is the life of one WAL file between merges; its identity
// is the base store file's content fingerprint (store.FileFingerprint),
// which is durable across process restarts. A follower announces
// (baseFp, seq) in its hello; the leader resumes the stream from there
// when its retained event log still covers that position, and falls
// back to a full snapshot otherwise. Every record frame carries the
// exact WAL line bytes the leader fsynced — CRC framing included — so
// the follower verifies and appends them verbatim: follower WALs are
// byte-for-byte mirrors of the leader's.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"rdfindexes/internal/codec"
)

const (
	protocolVersion = 1

	// maxFrame bounds a frame's payload; WAL records are single
	// statements, far below this. A length prefix past the bound means a
	// desynced or damaged stream, not a big record.
	maxFrame = 1 << 20

	frameHello     = 'H'
	frameRecord    = 'R'
	frameEpochEnd  = 'E'
	frameHeartbeat = 'B'
	frameSnapshot  = 'S'

	helloWantSnapshot = 1 << 0
)

// ErrFrame reports a frame that fails its length bound, checksum, or
// type-specific shape — stream damage or desync; the receiving side
// drops the connection and reconnects.
var ErrFrame = errors.New("repl: invalid frame")

// writeFrame sends one framed payload in a single Write call, so a
// byte-level write duplication (fault injection, pathological proxies)
// duplicates whole frames — which the protocol tolerates — rather than
// splicing half-frames.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("%w: oversized payload (%d bytes)", ErrFrame, len(payload))
	}
	buf := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(payload, codec.Castagnoli))
	copy(buf[8:], payload)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame and returns its verified payload. The
// buffer is reused across calls by the caller.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("%w: payload length %d", ErrFrame, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if crc32.Checksum(payload, codec.Castagnoli) != binary.BigEndian.Uint32(hdr[4:8]) {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrFrame)
	}
	return payload, nil
}

// hello is the one follower→leader frame: where the follower is and
// whether it wants a full snapshot regardless.
type hello struct {
	version      uint16
	baseFp       uint64
	seq          uint64
	wantSnapshot bool
}

func (h hello) encode() []byte {
	b := make([]byte, 0, 20)
	b = append(b, frameHello)
	b = binary.BigEndian.AppendUint16(b, h.version)
	b = binary.BigEndian.AppendUint64(b, h.baseFp)
	b = binary.BigEndian.AppendUint64(b, h.seq)
	flags := byte(0)
	if h.wantSnapshot {
		flags |= helloWantSnapshot
	}
	return append(b, flags)
}

func decodeHello(p []byte) (hello, error) {
	if len(p) != 20 || p[0] != frameHello {
		return hello{}, fmt.Errorf("%w: bad hello", ErrFrame)
	}
	return hello{
		version:      binary.BigEndian.Uint16(p[1:3]),
		baseFp:       binary.BigEndian.Uint64(p[3:11]),
		seq:          binary.BigEndian.Uint64(p[11:19]),
		wantSnapshot: p[19]&helloWantSnapshot != 0,
	}, nil
}

func encodeRecord(fp, gen uint64, line []byte) []byte {
	b := make([]byte, 0, 21+len(line))
	b = append(b, frameRecord)
	b = binary.BigEndian.AppendUint64(b, fp)
	b = binary.BigEndian.AppendUint64(b, gen)
	b = binary.BigEndian.AppendUint32(b, uint32(len(line)))
	return append(b, line...)
}

func decodeRecord(p []byte) (fp, gen uint64, line []byte, err error) {
	if len(p) < 21 {
		return 0, 0, nil, fmt.Errorf("%w: short record frame", ErrFrame)
	}
	n := binary.BigEndian.Uint32(p[17:21])
	if int(n) != len(p)-21 {
		return 0, 0, nil, fmt.Errorf("%w: record length mismatch", ErrFrame)
	}
	return binary.BigEndian.Uint64(p[1:9]), binary.BigEndian.Uint64(p[9:17]), p[21:], nil
}

func encodeEpochEnd(prevFp, prevFinalSeq, newFp, gen uint64) []byte {
	b := make([]byte, 0, 33)
	b = append(b, frameEpochEnd)
	b = binary.BigEndian.AppendUint64(b, prevFp)
	b = binary.BigEndian.AppendUint64(b, prevFinalSeq)
	b = binary.BigEndian.AppendUint64(b, newFp)
	return binary.BigEndian.AppendUint64(b, gen)
}

func decodeEpochEnd(p []byte) (prevFp, prevFinalSeq, newFp, gen uint64, err error) {
	if len(p) != 33 {
		return 0, 0, 0, 0, fmt.Errorf("%w: bad epoch-end frame", ErrFrame)
	}
	return binary.BigEndian.Uint64(p[1:9]), binary.BigEndian.Uint64(p[9:17]),
		binary.BigEndian.Uint64(p[17:25]), binary.BigEndian.Uint64(p[25:33]), nil
}

func encodeHeartbeat(fp, seq, gen uint64, sentNano int64) []byte {
	b := make([]byte, 0, 33)
	b = append(b, frameHeartbeat)
	b = binary.BigEndian.AppendUint64(b, fp)
	b = binary.BigEndian.AppendUint64(b, seq)
	b = binary.BigEndian.AppendUint64(b, gen)
	return binary.BigEndian.AppendUint64(b, uint64(sentNano))
}

func decodeHeartbeat(p []byte) (fp, seq, gen uint64, sentNano int64, err error) {
	if len(p) != 33 {
		return 0, 0, 0, 0, fmt.Errorf("%w: bad heartbeat frame", ErrFrame)
	}
	return binary.BigEndian.Uint64(p[1:9]), binary.BigEndian.Uint64(p[9:17]),
		binary.BigEndian.Uint64(p[17:25]), int64(binary.BigEndian.Uint64(p[25:33])), nil
}

func encodeSnapshotHeader(fp, gen, size uint64) []byte {
	b := make([]byte, 0, 25)
	b = append(b, frameSnapshot)
	b = binary.BigEndian.AppendUint64(b, fp)
	b = binary.BigEndian.AppendUint64(b, gen)
	return binary.BigEndian.AppendUint64(b, size)
}

func decodeSnapshotHeader(p []byte) (fp, gen, size uint64, err error) {
	if len(p) != 25 {
		return 0, 0, 0, fmt.Errorf("%w: bad snapshot header", ErrFrame)
	}
	return binary.BigEndian.Uint64(p[1:9]), binary.BigEndian.Uint64(p[9:17]),
		binary.BigEndian.Uint64(p[17:25]), nil
}
