package repl

import (
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"rdfindexes/internal/store"
)

// LeaderOptions tune a replication leader. The zero value is production
// defaults; tests tighten the timings.
type LeaderOptions struct {
	// HeartbeatInterval is how often an idle stream sends a heartbeat
	// frame (commit offset + generation + leader clock). Default 1s.
	HeartbeatInterval time.Duration
	// HelloTimeout bounds how long an accepted connection may take to
	// send its hello before being dropped. Default 10s.
	HelloTimeout time.Duration
}

func (o LeaderOptions) withDefaults() LeaderOptions {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = time.Second
	}
	if o.HelloTimeout <= 0 {
		o.HelloTimeout = 10 * time.Second
	}
	return o
}

// LeaderStats is a point-in-time snapshot of a leader's replication
// counters, surfaced through /stats and /metrics.
type LeaderStats struct {
	Followers      int    `json:"followers"`
	Epoch          uint64 `json:"epoch_fingerprint"`
	Seq            uint64 `json:"wal_seq"`
	RecordsShipped uint64 `json:"records_shipped"`
	SnapshotsSent  uint64 `json:"snapshots_sent"`
	Heartbeats     uint64 `json:"heartbeats_sent"`
}

// Leader streams a Mutable's WAL to any number of followers. It
// installs itself as the store's WAL observer, keeps an in-memory event
// log covering the current epoch and the previous one (older positions
// fall back to snapshots), and serves each accepted connection with its
// own writer goroutine.
type Leader struct {
	mut  *store.Mutable
	opts LeaderOptions
	hub  hub

	ln       net.Listener
	wg       sync.WaitGroup
	closed   atomic.Bool
	conns    sync.Map // net.Conn → struct{}
	shipped  atomic.Uint64
	snaps    atomic.Uint64
	beats    atomic.Uint64
	follower atomic.Int64
}

// NewLeader attaches a replication leader to mut. A WAL left by a
// pre-CRC version is merged away first — legacy records cannot be
// verified on the follower side — and the current WAL is loaded into
// the event log so followers can resume from any live position.
func NewLeader(mut *store.Mutable, opts LeaderOptions) (*Leader, error) {
	if mut.LegacyWAL() {
		if err := mut.Merge(); err != nil {
			return nil, fmt.Errorf("repl: merging legacy WAL: %w", err)
		}
	}
	fp, err := store.FileFingerprint(mut.Path())
	if err != nil {
		return nil, fmt.Errorf("repl: fingerprint base store: %w", err)
	}
	l := &Leader{mut: mut, opts: opts.withDefaults()}
	gen := mut.Generation()
	l.hub.init(fp, gen)
	// Seed the event log with the WAL's current contents and install the
	// live observer under one writer-lock acquisition, so no record can
	// fall into the gap between the scan and live observation.
	if err := mut.AttachWALObserver((*leaderObserver)(l), func(seq uint64, line []byte) error {
		l.hub.appendRecord(fp, seq, gen, line)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("repl: seed WAL event log: %w", err)
	}
	return l, nil
}

// leaderObserver implements store.WALObserver on a separate type so the
// observer methods (which run under the store's writer lock and must
// not call back into it) do not sit on Leader's public API.
type leaderObserver Leader

func (o *leaderObserver) WALAppended(rec store.WALRecord) {
	l := (*Leader)(o)
	l.hub.appendRecord(l.hub.currentFp(), rec.Seq, rec.Gen, rec.Line)
}

func (o *leaderObserver) WALMerged(finalSeq, gen uint64) {
	l := (*Leader)(o)
	// The merge just renamed the rebuilt store file into place; its
	// fingerprint is the new epoch identity. Reading the file here runs
	// under the store's writer lock — O(file), merge-frequency only.
	newFp, err := store.FileFingerprint(l.mut.Path())
	if err != nil {
		// Without the new fingerprint the stream cannot continue
		// verifiably; poison the epoch so followers snapshot.
		newFp = 0
	}
	l.hub.endEpoch(finalSeq, newFp, gen)
}

// Serve accepts follower connections on ln until Close. It blocks; run
// it in a goroutine.
func (l *Leader) Serve(ln net.Listener) error {
	l.ln = ln
	for {
		conn, err := ln.Accept()
		if err != nil {
			if l.closed.Load() {
				return nil
			}
			return err
		}
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			l.serveConn(conn)
		}()
	}
}

// Close detaches from the store, stops accepting, and closes all
// follower connections.
func (l *Leader) Close() error {
	l.closed.Store(true)
	l.mut.SetWALObserver(nil)
	if l.ln != nil {
		l.ln.Close()
	}
	l.conns.Range(func(k, _ any) bool {
		k.(net.Conn).Close()
		return true
	})
	l.hub.wakeAll()
	l.wg.Wait()
	return nil
}

// Stats snapshots the leader's counters.
func (l *Leader) Stats() LeaderStats {
	fp, seq, _ := l.hub.position()
	return LeaderStats{
		Followers:      int(l.follower.Load()),
		Epoch:          fp,
		Seq:            seq,
		RecordsShipped: l.shipped.Load(),
		SnapshotsSent:  l.snaps.Load(),
		Heartbeats:     l.beats.Load(),
	}
}

// Addr returns the listener address once Serve has been called.
func (l *Leader) Addr() net.Addr {
	if l.ln == nil {
		return nil
	}
	return l.ln.Addr()
}

func (l *Leader) serveConn(conn net.Conn) {
	l.conns.Store(conn, struct{}{})
	l.follower.Add(1)
	defer func() {
		l.follower.Add(-1)
		l.conns.Delete(conn)
		conn.Close()
	}()
	conn.SetReadDeadline(time.Now().Add(l.opts.HelloTimeout))
	payload, err := readFrame(conn)
	if err != nil {
		return
	}
	h, err := decodeHello(payload)
	if err != nil || h.version != protocolVersion {
		return
	}
	conn.SetReadDeadline(time.Time{})

	sub := l.hub.subscribe()
	defer l.hub.unsubscribe(sub)

	pos, ok := uint64(0), false
	if !h.wantSnapshot {
		pos, ok = l.hub.resumeAt(h.baseFp, h.seq)
	}
	if !ok {
		pos, err = l.sendSnapshot(conn)
		if err != nil {
			return
		}
	}
	l.streamEvents(conn, sub, pos)
}

// sendSnapshot streams the current base store file (header + raw bytes)
// and returns the event-log position from which the records of that
// file's epoch follow. The file is read through an open handle, so a
// concurrent merge renaming a new file over the path cannot tear the
// bytes; the fingerprint is re-checked against the hub after hashing
// and the read retried when a merge slipped between open and hash.
func (l *Leader) sendSnapshot(conn net.Conn) (pos uint64, err error) {
	for try := 0; ; try++ {
		f, err := os.Open(l.mut.Path())
		if err != nil {
			return 0, err
		}
		fp, size, err := fingerprint(f)
		if err != nil {
			f.Close()
			return 0, err
		}
		pos, gen, ok := l.hub.epochStart(fp)
		if !ok {
			f.Close()
			if try < 5 {
				continue // merged between open and hash; re-read
			}
			return 0, errors.New("repl: store file kept changing under snapshot")
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return 0, err
		}
		if err := writeFrame(conn, encodeSnapshotHeader(fp, gen, uint64(size))); err != nil {
			f.Close()
			return 0, err
		}
		_, err = io.Copy(conn, io.NewSectionReader(f, 0, size))
		f.Close()
		if err != nil {
			return 0, err
		}
		l.snaps.Add(1)
		return pos, nil
	}
}

// streamEvents ships event-log entries from pos onward, heartbeating
// when idle, until the connection dies or the leader closes. A follower
// that falls behind the event log's retention (two epochs) is cut off
// and will reconnect into the snapshot path.
func (l *Leader) streamEvents(conn net.Conn, sub *subscriber, pos uint64) {
	for {
		evs, next, ok := l.hub.eventsFrom(pos)
		if !ok {
			return // fell behind retention; follower reconnects → snapshot
		}
		pos = next
		for _, ev := range evs {
			var payload []byte
			switch ev.kind {
			case frameRecord:
				payload = encodeRecord(ev.fp, ev.gen, ev.line)
			case frameEpochEnd:
				payload = encodeEpochEnd(ev.fp, ev.seq, ev.newFp, ev.gen)
			}
			if err := writeFrame(conn, payload); err != nil {
				return
			}
			if ev.kind == frameRecord {
				l.shipped.Add(1)
			}
		}
		if len(evs) > 0 {
			continue // drain before sleeping
		}
		select {
		case <-sub.wake:
		case <-time.After(l.opts.HeartbeatInterval):
			fp, seq, gen := l.hub.position()
			if err := writeFrame(conn, encodeHeartbeat(fp, seq, gen, time.Now().UnixNano())); err != nil {
				return
			}
			l.beats.Add(1)
		}
		if l.closed.Load() {
			return
		}
	}
}

// fingerprint hashes an open store file exactly as
// store.FileFingerprint does, returning the size alongside.
func fingerprint(f *os.File) (fp uint64, size int64, err error) {
	h := crc64.New(crc64.MakeTable(crc64.ECMA))
	n, err := io.Copy(h, f)
	if err != nil {
		return 0, 0, err
	}
	return h.Sum64() ^ uint64(n), n, nil
}

// event is one entry in the hub's log: a shipped WAL record or an epoch
// end (merge).
type event struct {
	kind  byte   // frameRecord or frameEpochEnd
	fp    uint64 // record: its epoch; epochEnd: the epoch that ended
	seq   uint64 // record: its sequence; epochEnd: the final sequence
	gen   uint64
	line  []byte // record only (owned copy)
	newFp uint64 // epochEnd only
}

// subscriber is one streaming connection's wake handle.
type subscriber struct {
	wake chan struct{}
}

// hub is the shared event log. Writers (the store's WAL observer)
// append under the store's writer lock; streaming goroutines copy
// slices out under the hub lock and never block writers on the network.
// Lock ordering: store.Mutable.mu → hub.mu; hub methods never call into
// the Mutable.
type hub struct {
	mu     sync.Mutex
	fp     uint64 // current epoch fingerprint
	prevFp uint64 // previous epoch's, for retention checks
	seq    uint64 // last record sequence in the current epoch
	gen    uint64 // latest write generation
	base   uint64 // absolute index of events[0]
	events []event
	subs   map[*subscriber]struct{}
}

func (h *hub) init(fp, gen uint64) {
	h.fp, h.gen = fp, gen
	h.subs = make(map[*subscriber]struct{})
}

func (h *hub) currentFp() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fp
}

func (h *hub) position() (fp, seq, gen uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fp, h.seq, h.gen
}

// appendRecord adds one shipped record, deduping by sequence number
// (the seed scan and the live observer can overlap by a record).
func (h *hub) appendRecord(fp, seq, gen uint64, line []byte) {
	h.mu.Lock()
	if fp == h.fp && seq <= h.seq {
		h.mu.Unlock()
		return
	}
	h.events = append(h.events, event{
		kind: frameRecord, fp: fp, seq: seq, gen: gen,
		line: append([]byte(nil), line...),
	})
	h.seq, h.gen = seq, gen
	h.wakeLocked()
	h.mu.Unlock()
}

// endEpoch records a merge: the current epoch ended at finalSeq and the
// rebuilt base file (fingerprint newFp) starts the next. Events older
// than the epoch that just ended are dropped — retention is the closed
// epoch plus the new one, so a follower can be at most one merge behind
// before snapshot catch-up kicks in.
func (h *hub) endEpoch(finalSeq, newFp, gen uint64) {
	h.mu.Lock()
	ended := h.fp
	h.events = append(h.events, event{
		kind: frameEpochEnd, fp: ended, seq: finalSeq, gen: gen, newFp: newFp,
	})
	// Drop events from epochs before the one that just ended.
	drop := 0
	for drop < len(h.events) {
		ev := h.events[drop]
		if ev.fp == ended || (ev.kind == frameEpochEnd && ev.newFp == ended) {
			break
		}
		drop++
	}
	if drop > 0 {
		h.events = append([]event(nil), h.events[drop:]...)
		h.base += uint64(drop)
	}
	h.prevFp = ended
	h.fp, h.seq, h.gen = newFp, 0, gen
	h.wakeLocked()
	h.mu.Unlock()
}

func (h *hub) subscribe() *subscriber {
	s := &subscriber{wake: make(chan struct{}, 1)}
	h.mu.Lock()
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	return s
}

func (h *hub) unsubscribe(s *subscriber) {
	h.mu.Lock()
	delete(h.subs, s)
	h.mu.Unlock()
}

func (h *hub) wakeAll() {
	h.mu.Lock()
	h.wakeLocked()
	h.mu.Unlock()
}

func (h *hub) wakeLocked() {
	for s := range h.subs {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
}

// resumeAt returns the absolute event index from which a follower at
// (fp, seq) can resume tailing, or ok=false when the retained log no
// longer covers that position (snapshot required). The position is
// valid iff the follower's next record (seq+1 of its epoch) — or that
// epoch's end marker at exactly seq — is still retained, or the
// follower is exactly at the live head.
func (h *hub) resumeAt(fp, seq uint64) (pos uint64, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, ev := range h.events {
		if ev.kind == frameRecord && ev.fp == fp {
			if ev.seq <= seq {
				continue // follower already has it
			}
			if ev.seq == seq+1 {
				return h.base + uint64(i), true
			}
			return 0, false // retention gap
		}
		if ev.kind == frameEpochEnd && ev.fp == fp {
			if ev.seq == seq {
				return h.base + uint64(i), true
			}
			return 0, false // records between seq and the epoch end are gone
		}
	}
	if fp == h.fp && seq == h.seq {
		return h.base + uint64(len(h.events)), true
	}
	return 0, false
}

// epochStart returns the position of the first retained event of epoch
// fp (the log head when none exist yet) and the generation to stamp on
// a snapshot of that epoch's base file. ok=false when fp is not the
// current epoch — the caller raced a merge and must re-read the file.
func (h *hub) epochStart(fp uint64) (pos, gen uint64, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if fp != h.fp {
		return 0, 0, false
	}
	for i, ev := range h.events {
		if ev.kind == frameRecord && ev.fp == fp {
			return h.base + uint64(i), h.gen, true
		}
	}
	return h.base + uint64(len(h.events)), h.gen, true
}

// eventsFrom copies the retained events at and after absolute position
// pos. ok=false when pos has been dropped from retention. The returned
// slice aliases immutable event values (lines are owned copies), safe
// to use without the lock.
func (h *hub) eventsFrom(pos uint64) (evs []event, next uint64, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if pos < h.base {
		return nil, 0, false
	}
	i := pos - h.base
	if i >= uint64(len(h.events)) {
		return nil, pos, true
	}
	evs = append(evs, h.events[i:]...)
	return evs, h.base + uint64(len(h.events)), true
}
