package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"os"
	"sync/atomic"
	"time"

	"rdfindexes/internal/store"
)

// FollowerOptions tune a replication follower. The zero value is
// production defaults; tests tighten the timings.
type FollowerOptions struct {
	// ReadTimeout bounds each frame read; it must exceed the leader's
	// heartbeat interval or an idle stream looks dead. Default 5s.
	ReadTimeout time.Duration
	// SnapshotTimeout bounds receiving one full snapshot body. Default 5m.
	SnapshotTimeout time.Duration
	// BackoffMin/BackoffMax bound the jittered exponential reconnect
	// backoff. Defaults 100ms and 5s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Dial opens the replication link; tests substitute fault-injecting
	// dialers. Default: TCP with a 5s timeout.
	Dial func(addr string) (net.Conn, error)
	// Logf, when set, receives one line per reconnect and snapshot
	// fallback for operator visibility.
	Logf func(format string, args ...any)
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 5 * time.Second
	}
	if o.SnapshotTimeout <= 0 {
		o.SnapshotTimeout = 5 * time.Minute
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.Dial == nil {
		o.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	return o
}

// FollowerStats is a point-in-time snapshot of a follower's replication
// state, surfaced through /stats and /metrics.
type FollowerStats struct {
	Leader             string  `json:"leader"`
	Connected          bool    `json:"connected"`
	CaughtUp           bool    `json:"caught_up"`
	LastSeq            uint64  `json:"replica_last_seq"`
	AppliedGeneration  uint64  `json:"applied_generation"`
	Reconnects         uint64  `json:"reconnects"`
	SnapshotsInstalled uint64  `json:"snapshots_installed"`
	RecordsApplied     uint64  `json:"records_applied"`
	DupRecords         uint64  `json:"duplicate_records"`
	LagSeconds         float64 `json:"replication_lag_seconds"`
}

// Follower tails a leader's WAL stream into its own Mutable, publishing
// a fresh RCU view per applied record. It reconnects with jittered
// exponential backoff, resumes from its last verified sequence number,
// and falls back to full-snapshot catch-up when the leader merged past
// its position or the local state diverged.
type Follower struct {
	mut  *store.Mutable
	addr string
	opts FollowerOptions

	// forceSnapshot is only touched by the Run goroutine's session loop:
	// set when the local position can no longer be reconciled with the
	// stream (gap, damage, divergent merge), cleared after a snapshot.
	forceSnapshot bool

	connected    atomic.Bool
	caughtUp     atomic.Bool
	appliedGen   atomic.Uint64
	lastSeq      atomic.Uint64
	reconnects   atomic.Uint64
	snapshots    atomic.Uint64
	applied      atomic.Uint64
	dups         atomic.Uint64
	lastSyncNano atomic.Int64 // local clock at last applied record / confirming heartbeat
}

// OpenFollower opens (or bootstraps) the store at path as a replica of
// the leader at addr. A missing store file is fetched as a full
// verified snapshot before the store opens. The returned follower does
// not replicate until Run is called; local merges are disabled (the
// leader's epoch ends drive them), and the caller must not write to the
// store.
func OpenFollower(path, addr string, opts FollowerOptions) (*Follower, error) {
	opts = opts.withDefaults()
	bootstrapped := false
	if _, err := os.Stat(path); os.IsNotExist(err) {
		if err := bootstrapSnapshot(path, addr, opts); err != nil {
			return nil, fmt.Errorf("repl: bootstrap from %s: %w", addr, err)
		}
		bootstrapped = true
	}
	// Threshold -1 disables every locally-triggered merge: the follower
	// merges exactly when the leader's stream says the epoch ended, so
	// the two WALs stay byte-for-byte aligned.
	mut, err := store.OpenMutable(path, -1)
	if err != nil {
		return nil, err
	}
	f := &Follower{mut: mut, addr: addr, opts: opts}
	if bootstrapped {
		f.snapshots.Add(1)
	}
	return f, nil
}

// bootstrapSnapshot fetches a full snapshot into path with a one-shot
// connection: temp file, full container verification, atomic rename.
func bootstrapSnapshot(path, addr string, opts FollowerOptions) error {
	conn, err := opts.Dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(opts.SnapshotTimeout))
	h := hello{version: protocolVersion, wantSnapshot: true}
	if err := writeFrame(conn, h.encode()); err != nil {
		return err
	}
	payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	if len(payload) == 0 || payload[0] != frameSnapshot {
		return fmt.Errorf("%w: want snapshot, got %q", ErrFrame, payload[0])
	}
	_, _, size, err := decodeSnapshotHeader(payload)
	if err != nil {
		return err
	}
	tmp := path + ".boot.tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, cerr := io.CopyN(f, conn, int64(size))
	if cerr == nil {
		cerr = f.Sync()
	}
	if err := f.Close(); cerr == nil {
		cerr = err
	}
	if cerr != nil {
		os.Remove(tmp)
		return cerr
	}
	if _, err := store.Read(tmp); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot verify: %w", err)
	}
	return os.Rename(tmp, path)
}

// Mutable returns the follower's store for serving. Callers must treat
// it as read-only.
func (f *Follower) Mutable() *store.Mutable { return f.mut }

// Leader returns the leader address this follower replicates from.
func (f *Follower) Leader() string { return f.addr }

// Ready reports whether the follower is connected and caught up with
// the leader's commit offset — the load-balancer readiness signal.
func (f *Follower) Ready() bool { return f.connected.Load() && f.caughtUp.Load() }

// AppliedGeneration returns the latest leader write generation known to
// be fully contained in the current view — the value min-gen reads are
// checked against.
func (f *Follower) AppliedGeneration() uint64 { return f.appliedGen.Load() }

// Stats snapshots the follower's replication state.
func (f *Follower) Stats() FollowerStats {
	var lag float64
	if t := f.lastSyncNano.Load(); t > 0 {
		lag = time.Since(time.Unix(0, t)).Seconds()
	}
	return FollowerStats{
		Leader:             f.addr,
		Connected:          f.connected.Load(),
		CaughtUp:           f.caughtUp.Load(),
		LastSeq:            f.lastSeq.Load(),
		AppliedGeneration:  f.appliedGen.Load(),
		Reconnects:         f.reconnects.Load(),
		SnapshotsInstalled: f.snapshots.Load(),
		RecordsApplied:     f.applied.Load(),
		DupRecords:         f.dups.Load(),
		LagSeconds:         lag,
	}
}

// Run replicates until ctx is cancelled, reconnecting with jittered
// exponential backoff on every failure. It returns ctx.Err() on
// cancellation; it never gives up on its own.
func (f *Follower) Run(ctx context.Context) error {
	backoff := f.opts.BackoffMin
	for {
		progressed, err := f.session(ctx)
		f.connected.Store(false)
		f.caughtUp.Store(false)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		f.reconnects.Add(1)
		if f.opts.Logf != nil && err != nil {
			f.opts.Logf("repl: follower session ended: %v (snapshot=%v)", err, f.forceSnapshot)
		}
		if progressed {
			backoff = f.opts.BackoffMin
		}
		// Full jitter: anywhere in [backoff, 2*backoff) so a fleet of
		// followers losing one leader does not reconnect in lockstep.
		d := backoff + time.Duration(rand.Int64N(int64(backoff)))
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
		}
		if backoff *= 2; backoff > f.opts.BackoffMax {
			backoff = f.opts.BackoffMax
		}
	}
}

// Close closes the follower's store. Call after Run has returned.
func (f *Follower) Close() error { return f.mut.Close() }

// session runs one connection: hello, then apply frames until the link
// or the protocol breaks. progressed reports whether any frame was
// applied, which resets the reconnect backoff.
func (f *Follower) session(ctx context.Context) (progressed bool, err error) {
	conn, err := f.opts.Dial(f.addr)
	if err != nil {
		return false, err
	}
	defer conn.Close()
	// Unblock reads when ctx dies mid-session.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()

	curFp, err := store.FileFingerprint(f.mut.Path())
	if err != nil {
		return false, err
	}
	h := hello{
		version:      protocolVersion,
		baseFp:       curFp,
		seq:          f.mut.WALSeq(),
		wantSnapshot: f.forceSnapshot,
	}
	conn.SetWriteDeadline(time.Now().Add(f.opts.ReadTimeout))
	if err := writeFrame(conn, h.encode()); err != nil {
		return false, err
	}
	f.connected.Store(true)
	f.lastSeq.Store(h.seq)

	for {
		conn.SetReadDeadline(time.Now().Add(f.opts.ReadTimeout))
		payload, err := readFrame(conn)
		if err != nil {
			return progressed, err
		}
		switch payload[0] {
		case frameRecord:
			fp, gen, line, err := decodeRecord(payload)
			if err != nil {
				return progressed, err
			}
			if fp != curFp {
				f.forceSnapshot = true
				return progressed, fmt.Errorf("repl: record for epoch %016x, local epoch %016x", fp, curFp)
			}
			dup, err := f.mut.ApplyReplicated(line)
			if err != nil {
				if errors.Is(err, store.ErrReplGap) || errors.Is(err, store.ErrReplRecord) {
					f.forceSnapshot = true
				}
				return progressed, err
			}
			if dup {
				f.dups.Add(1)
				continue
			}
			// The view containing this write is published; only now may
			// min-gen reads observe its generation.
			f.lastSeq.Store(f.mut.WALSeq())
			f.appliedGen.Store(gen)
			f.applied.Add(1)
			f.lastSyncNano.Store(time.Now().UnixNano())
			progressed = true

		case frameEpochEnd:
			prevFp, prevFinal, newFp, gen, err := decodeEpochEnd(payload)
			if err != nil {
				return progressed, err
			}
			if prevFp != curFp || prevFinal != f.mut.WALSeq() {
				f.forceSnapshot = true
				return progressed, fmt.Errorf("repl: epoch end %016x@%d does not match local %016x@%d",
					prevFp, prevFinal, curFp, f.mut.WALSeq())
			}
			if err := f.mut.MergeReplicated(); err != nil {
				return progressed, err
			}
			myFp, err := store.FileFingerprint(f.mut.Path())
			if err != nil {
				return progressed, err
			}
			if newFp != 0 && myFp != newFp {
				// The local rebuild diverged byte-wise from the leader's.
				// Correctness comes from the snapshot fallback, not from
				// assuming determinism.
				f.forceSnapshot = true
				return progressed, fmt.Errorf("repl: merged to %016x, leader announced %016x", myFp, newFp)
			}
			curFp = myFp
			f.lastSeq.Store(0)
			f.appliedGen.Store(gen)
			f.lastSyncNano.Store(time.Now().UnixNano())
			progressed = true

		case frameHeartbeat:
			fp, seq, gen, _, err := decodeHeartbeat(payload)
			if err != nil {
				return progressed, err
			}
			// Heartbeats are advisory: one raced ahead of an in-flight
			// epoch end is simply ignored.
			if fp != curFp {
				continue
			}
			if seq == f.mut.WALSeq() {
				f.appliedGen.Store(gen)
				f.caughtUp.Store(true)
				f.lastSyncNano.Store(time.Now().UnixNano())
			} else {
				f.caughtUp.Store(false)
			}

		case frameSnapshot:
			fp, gen, size, err := decodeSnapshotHeader(payload)
			if err != nil {
				return progressed, err
			}
			conn.SetReadDeadline(time.Now().Add(f.opts.SnapshotTimeout))
			if err := f.mut.InstallSnapshot(conn, int64(size)); err != nil {
				return progressed, err
			}
			curFp = fp
			f.forceSnapshot = false
			f.lastSeq.Store(0)
			f.appliedGen.Store(gen)
			f.snapshots.Add(1)
			f.lastSyncNano.Store(time.Now().UnixNano())
			progressed = true

		default:
			return progressed, fmt.Errorf("%w: unknown frame type %q", ErrFrame, payload[0])
		}
	}
}
