// Package seq presents the four integer-sequence representations of the
// paper (Compact, Elias-Fano, partitioned Elias-Fano, blocked VByte)
// behind a single interface suited to trie levels: sequences whose values
// are sorted only within the sibling ranges delimited by an external
// pointer structure.
//
// For the monotone encoders (EF, PEF, VByte) the package applies the
// prefix-sum transformation of Section 3.1 of the paper: each stored value
// is the original plus the running base of its range, where the base of a
// range is the stored value immediately preceding it. Lookups take the
// start of the enclosing range and add/subtract the base transparently;
// the Compact representation stores original values and needs no
// transformation.
package seq

import (
	"fmt"
	"sort"

	"rdfindexes/internal/bits"
	"rdfindexes/internal/codec"
	"rdfindexes/internal/ef"
	"rdfindexes/internal/vbyte"
)

// Kind identifies a sequence representation.
type Kind uint8

// The four representations benchmarked in Table 1 of the paper, plus the
// cost-optimized partitioned Elias-Fano variant (an extension used by the
// ablation study).
const (
	KindCompact Kind = iota
	KindEF
	KindPEF
	KindVByte
	KindPEFOpt
)

// String returns the representation name as used in the paper.
func (k Kind) String() string {
	switch k {
	case KindCompact:
		return "Compact"
	case KindEF:
		return "EF"
	case KindPEF:
		return "PEF"
	case KindVByte:
		return "VByte"
	case KindPEFOpt:
		return "PEFOpt"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKind parses a representation name.
func ParseKind(s string) (Kind, error) {
	for _, k := range []Kind{KindCompact, KindEF, KindPEF, KindVByte, KindPEFOpt} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("seq: unknown kind %q", s)
}

// Iterator yields consecutive original values of one range. Beyond
// per-element Next, every implementation supports block decoding
// (NextBatch), forward skips for merge-intersections (NextGEQ) and
// in-place repositioning (Reset), so hot loops pay neither an interface
// dispatch per element nor an allocation per sibling range.
type Iterator interface {
	// Next returns the next value, or ok=false at the end of the range.
	Next() (uint64, bool)
	// NextBatch decodes up to len(buf) next values into buf and returns
	// how many were written; 0 iff the range is exhausted.
	// Implementations may return short (non-zero) counts at internal
	// block boundaries, so callers must loop.
	NextBatch(buf []uint64) int
	// NextGEQ skips forward to the first remaining value >= x, consumes
	// it and returns it. ok is false when no remaining value qualifies,
	// in which case the iterator is exhausted.
	NextGEQ(x uint64) (uint64, bool)
	// Reset repositions the iterator to positions [from, end) of the
	// sorted range starting at rangeBegin of the same sequence, reusing
	// its state instead of allocating a fresh iterator. When the new
	// range starts exactly where the previous one ended (the common case
	// when scanning consecutive sibling ranges), the prefix-sum base is
	// carried over from the last decoded value instead of being fetched
	// with a random access.
	Reset(rangeBegin, from, end int)
}

// Sequence is an immutable compressed integer sequence whose values are
// sorted (strictly increasing) within externally delimited ranges.
type Sequence interface {
	// Len returns the total number of values.
	Len() int
	// At returns the original value at absolute position i; begin must be
	// the start of the range containing i.
	At(begin, i int) uint64
	// At2 returns the values at positions i and i+1 (both within the
	// range starting at begin). Implementations may amortize the two
	// lookups; trie pointer pairs are the hot caller.
	At2(begin, i int) (uint64, uint64)
	// Find returns the absolute position of x within the sorted range
	// [begin, end), or -1 if x does not occur there.
	Find(begin, end int, x uint64) int
	// FindGEQ returns the absolute position and value of the first element
	// >= x within the sorted range [begin, end); ok is false when every
	// element of the range is smaller.
	FindGEQ(begin, end int, x uint64) (pos int, val uint64, ok bool)
	// Iter iterates the original values of the range [begin, end).
	Iter(begin, end int) Iterator
	// IterFrom iterates the original values of positions [from, end)
	// within the sorted range starting at rangeBegin (rangeBegin <= from).
	IterFrom(rangeBegin, from, end int) Iterator
	// SizeBits returns the storage footprint in bits.
	SizeBits() uint64
	// Kind returns the representation identifier.
	Kind() Kind

	encode(w *codec.Writer)
}

// Build encodes values with the given representation. ranges delimits the
// sorted sub-ranges: ranges[k] is the start of range k, with
// ranges[0] == 0 and ranges[len-1] == len(values). A nil ranges treats the
// whole input as a single sorted range (a plain monotone sequence).
func Build(kind Kind, values []uint64, ranges []int) Sequence {
	if ranges == nil {
		ranges = []int{0, len(values)}
	}
	if len(ranges) < 2 || ranges[0] != 0 || ranges[len(ranges)-1] != len(values) {
		panic("seq: invalid range delimiters")
	}
	switch kind {
	case KindCompact:
		return newCompactSeq(values)
	case KindEF:
		return &efSeq{s: ef.New(prefixSum(values, ranges))}
	case KindPEF:
		return &pefSeq{s: ef.NewPartitioned(prefixSum(values, ranges))}
	case KindVByte:
		return &vbyteSeq{s: vbyte.NewBlocked(prefixSum(values, ranges))}
	case KindPEFOpt:
		return &pefOptSeq{s: ef.NewOptPartitioned(prefixSum(values, ranges))}
	}
	panic(fmt.Sprintf("seq: unknown kind %d", kind))
}

// BuildMono encodes an already-monotone sequence (e.g. trie pointers).
func BuildMono(kind Kind, values []uint64) Sequence {
	return Build(kind, values, nil)
}

// prefixSum rewrites each range by adding the stored value that precedes
// it, making the concatenation globally non-decreasing (Section 3.1).
func prefixSum(values []uint64, ranges []int) []uint64 {
	enc := make([]uint64, len(values))
	var base uint64
	for k := 0; k+1 < len(ranges); k++ {
		lo, hi := ranges[k], ranges[k+1]
		for i := lo; i < hi; i++ {
			enc[i] = values[i] + base
		}
		if hi > lo {
			base = enc[hi-1]
		}
	}
	return enc
}

// monotone abstracts the three monotone encoders.
type monotone interface {
	Len() int
	Access(i int) uint64
	NextGEQ(x uint64) (int, uint64, bool)
}

//rdf:hotpath
func monoAt(m monotone, begin, i int) uint64 {
	v := m.Access(i)
	if begin > 0 {
		v -= m.Access(begin - 1)
	}
	return v
}

//rdf:hotpath
func monoFindGEQ(m monotone, begin, end int, x uint64) (int, uint64, bool) {
	if begin >= end {
		return end, 0, false
	}
	var base uint64
	if begin > 0 {
		base = m.Access(begin - 1)
	}
	pos, val, ok := m.NextGEQ(base + x)
	if !ok {
		return end, 0, false
	}
	if pos < begin {
		// Everything in the range is >= its base, hence >= the target.
		pos = begin
		val = m.Access(begin)
	}
	if pos >= end {
		return end, 0, false
	}
	return pos, val - base, true
}

//rdf:hotpath
func monoFind(m monotone, begin, end int, x uint64) int {
	if begin >= end {
		return -1
	}
	target := x
	if begin > 0 {
		target += m.Access(begin - 1)
	}
	pos, val, ok := m.NextGEQ(target)
	if !ok || val != target {
		return -1
	}
	// Duplicates of target may precede the range (the first value of a
	// range repeats its base when the original value is zero).
	for pos < begin {
		pos++
		if pos >= m.Len() || m.Access(pos) != target {
			return -1
		}
	}
	if pos >= end {
		return -1
	}
	return pos
}

// storedIter is the cursor over stored (prefix-summed) values that each
// monotone encoder provides: ef.Iterator, ef.PartIterator, ef.OptIterator
// and vbyte.Iterator all satisfy it.
type storedIter interface {
	Next() (uint64, bool)
	NextBatch(buf []uint64) int
	// SkipTo consumes elements up to and including the first one at or
	// after the cursor with value >= x, returning its index and value.
	SkipTo(x uint64) (int, uint64, bool)
	Reset(from int)
}

// monoIter adapts a stored-value cursor into original values of one
// sorted range by subtracting the range's prefix-sum base. It tracks the
// last stored value it decoded so that Reset to a contiguous next range
// can reuse it as the new base without a random access.
type monoIter struct {
	m        monotone
	inner    storedIter
	base     uint64
	pos, end int // absolute position of the next element, range end
	last     uint64
	haveLast bool // last == stored value at pos-1
}

//rdf:hotpath
func (it *monoIter) Next() (uint64, bool) {
	if it.pos >= it.end {
		return 0, false
	}
	v, ok := it.inner.Next()
	if !ok {
		it.pos = it.end
		it.haveLast = false
		return 0, false
	}
	it.pos++
	it.last = v
	it.haveLast = true
	return v - it.base, true
}

//rdf:hotpath
func (it *monoIter) NextBatch(buf []uint64) int {
	k := it.end - it.pos
	if k <= 0 || len(buf) == 0 {
		// An empty buffer must not disturb the cursor or the base
		// bookkeeping below.
		return 0
	}
	if k > len(buf) {
		k = len(buf)
	}
	n := it.inner.NextBatch(buf[:k])
	if n == 0 {
		it.pos = it.end
		return 0
	}
	it.pos += n
	it.last = buf[n-1]
	it.haveLast = true
	if base := it.base; base != 0 {
		for i := range buf[:n] {
			buf[i] -= base
		}
	}
	return n
}

//rdf:hotpath
func (it *monoIter) NextGEQ(x uint64) (uint64, bool) {
	if it.pos >= it.end {
		return 0, false
	}
	p, v, ok := it.inner.SkipTo(it.base + x)
	if !ok {
		// The cursor sits at the sequence end; keep pos in sync with it.
		it.pos = p
		it.haveLast = false
		return 0, false
	}
	it.pos = p + 1
	it.last = v
	it.haveLast = true
	if p >= it.end {
		return 0, false
	}
	return v - it.base, true
}

func (it *monoIter) Reset(rangeBegin, from, end int) {
	it.end = end
	if from != it.pos {
		it.inner.Reset(from)
		it.pos = from
		it.haveLast = false
	} else if from == rangeBegin && from > 0 && it.haveLast {
		// Contiguous advance: the base of the new range is the stored
		// value just before it, which is the last one decoded.
		it.base = it.last
		return
	}
	if rangeBegin > 0 {
		it.base = it.m.Access(rangeBegin - 1)
	} else {
		it.base = 0
	}
}

// The per-kind iterator wrappers embed their concrete stored-value
// cursor so that one allocation covers the whole iterator; the embedded
// monoIter reaches the cursor through its interface field, which points
// back into the same object.

type efIter struct {
	monoIter
	cur ef.Iterator
}

func newEFIter(s *ef.Sequence, rangeBegin, from, end int) Iterator {
	it := &efIter{}
	if rangeBegin == from && from > 0 && from <= s.Len() {
		var base uint64
		it.cur, base = s.MakeIteratorBase(from)
		it.initMonoBase(s, &it.cur, base, from, end)
		return it
	}
	it.cur = s.MakeIterator(from)
	it.initMono(s, &it.cur, rangeBegin, from, end)
	return it
}

type pefIter struct {
	monoIter
	cur ef.PartIterator
}

func newPEFIter(s *ef.Partitioned, rangeBegin, from, end int) Iterator {
	it := &pefIter{}
	if rangeBegin == from && from > 0 && from <= s.Len() {
		var base uint64
		it.cur, base = s.MakeIteratorBase(from)
		it.initMonoBase(s, &it.cur, base, from, end)
		return it
	}
	it.cur = s.MakeIterator(from)
	it.initMono(s, &it.cur, rangeBegin, from, end)
	return it
}

type pefOptIter struct {
	monoIter
	cur ef.OptIterator
}

func newPEFOptIter(s *ef.OptPartitioned, rangeBegin, from, end int) Iterator {
	it := &pefOptIter{}
	if rangeBegin == from && from > 0 && from <= s.Len() {
		var base uint64
		it.cur, base = s.MakeIteratorBase(from)
		it.initMonoBase(s, &it.cur, base, from, end)
		return it
	}
	it.cur = s.MakeIterator(from)
	it.initMono(s, &it.cur, rangeBegin, from, end)
	return it
}

type vbyteIter struct {
	monoIter
	cur vbyte.Iterator
}

func newVByteIter(s *vbyte.Blocked, rangeBegin, from, end int) Iterator {
	it := &vbyteIter{}
	if rangeBegin == from && from > 0 && from <= s.Len() {
		var base uint64
		it.cur, base = s.MakeIteratorBase(from)
		it.initMonoBase(s, &it.cur, base, from, end)
		return it
	}
	it.cur = s.MakeIterator(from)
	it.initMono(s, &it.cur, rangeBegin, from, end)
	return it
}

func (it *monoIter) initMono(m monotone, inner storedIter, rangeBegin, from, end int) {
	it.m = m
	it.inner = inner
	it.pos = from
	it.end = end
	if rangeBegin > 0 {
		it.base = m.Access(rangeBegin - 1)
	}
}

// initMonoBase initializes with a base already decoded by the inner
// cursor's fused positioning; the base doubles as the last stored value,
// so a later contiguous Reset needs no random access either.
func (it *monoIter) initMonoBase(m monotone, inner storedIter, base uint64, from, end int) {
	it.m = m
	it.inner = inner
	it.pos = from
	it.end = end
	it.base = base
	it.last = base
	it.haveLast = true
}

// compactSeq is the fixed-width representation; values are stored as-is.
type compactSeq struct {
	v *bits.CompactVector
}

func newCompactSeq(values []uint64) *compactSeq {
	return &compactSeq{v: bits.NewCompact(values)}
}

func (c *compactSeq) Len() int           { return c.v.Len() }
func (c *compactSeq) Kind() Kind         { return KindCompact }
func (c *compactSeq) SizeBits() uint64   { return c.v.SizeBits() }
func (c *compactSeq) At(_, i int) uint64 { return c.v.At(i) }
func (c *compactSeq) At2(_, i int) (uint64, uint64) {
	return c.v.At(i), c.v.At(i + 1)
}

func (c *compactSeq) Find(begin, end int, x uint64) int {
	i := begin + sort.Search(end-begin, func(j int) bool { return c.v.At(begin+j) >= x })
	if i < end && c.v.At(i) == x {
		return i
	}
	return -1
}

func (c *compactSeq) FindGEQ(begin, end int, x uint64) (int, uint64, bool) {
	i := begin + sort.Search(end-begin, func(j int) bool { return c.v.At(begin+j) >= x })
	if i < end {
		return i, c.v.At(i), true
	}
	return end, 0, false
}

type compactIter struct {
	v   *bits.CompactVector
	i   int
	end int
}

//rdf:hotpath
func (it *compactIter) Next() (uint64, bool) {
	if it.i >= it.end {
		return 0, false
	}
	v := it.v.At(it.i)
	it.i++
	return v, true
}

//rdf:hotpath
func (it *compactIter) NextBatch(buf []uint64) int {
	m := it.end - it.i
	if m <= 0 {
		return 0
	}
	if m > len(buf) {
		m = len(buf)
	}
	it.v.Fill(it.i, buf[:m])
	it.i += m
	return m
}

//rdf:hotpath
func (it *compactIter) NextGEQ(x uint64) (uint64, bool) {
	lo, hi := it.i, it.end
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if it.v.At(mid) >= x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo >= it.end {
		it.i = it.end
		return 0, false
	}
	it.i = lo + 1
	return it.v.At(lo), true
}

func (it *compactIter) Reset(_, from, end int) {
	it.i, it.end = from, end
}

func (c *compactSeq) Iter(begin, end int) Iterator {
	return &compactIter{v: c.v, i: begin, end: end}
}

func (c *compactSeq) IterFrom(_, from, end int) Iterator {
	return &compactIter{v: c.v, i: from, end: end}
}

func (c *compactSeq) encode(w *codec.Writer) { c.v.Encode(w) }

// efSeq wraps a plain Elias-Fano sequence of prefix-summed values.
type efSeq struct {
	s *ef.Sequence
}

func (e *efSeq) Len() int         { return e.s.Len() }
func (e *efSeq) Kind() Kind       { return KindEF }
func (e *efSeq) SizeBits() uint64 { return e.s.SizeBits() }
func (e *efSeq) At(begin, i int) uint64 {
	return monoAt(e.s, begin, i)
}
func (e *efSeq) At2(begin, i int) (uint64, uint64) {
	v1, v2 := e.s.AccessPair(i)
	if begin > 0 {
		base := e.s.Access(begin - 1)
		v1 -= base
		v2 -= base
	}
	return v1, v2
}
func (e *efSeq) Find(begin, end int, x uint64) int {
	return monoFind(e.s, begin, end, x)
}
func (e *efSeq) FindGEQ(begin, end int, x uint64) (int, uint64, bool) {
	return monoFindGEQ(e.s, begin, end, x)
}
func (e *efSeq) Iter(begin, end int) Iterator {
	return newEFIter(e.s, begin, begin, end)
}
func (e *efSeq) IterFrom(rangeBegin, from, end int) Iterator {
	return newEFIter(e.s, rangeBegin, from, end)
}
func (e *efSeq) encode(w *codec.Writer) { e.s.Encode(w) }

// pefSeq wraps a partitioned Elias-Fano sequence of prefix-summed values.
type pefSeq struct {
	s *ef.Partitioned
}

func (p *pefSeq) Len() int         { return p.s.Len() }
func (p *pefSeq) Kind() Kind       { return KindPEF }
func (p *pefSeq) SizeBits() uint64 { return p.s.SizeBits() }
func (p *pefSeq) At(begin, i int) uint64 {
	return monoAt(p.s, begin, i)
}
func (p *pefSeq) At2(begin, i int) (uint64, uint64) {
	return monoAt(p.s, begin, i), monoAt(p.s, begin, i+1)
}
func (p *pefSeq) Find(begin, end int, x uint64) int {
	return monoFind(p.s, begin, end, x)
}
func (p *pefSeq) FindGEQ(begin, end int, x uint64) (int, uint64, bool) {
	return monoFindGEQ(p.s, begin, end, x)
}
func (p *pefSeq) Iter(begin, end int) Iterator {
	return newPEFIter(p.s, begin, begin, end)
}
func (p *pefSeq) IterFrom(rangeBegin, from, end int) Iterator {
	return newPEFIter(p.s, rangeBegin, from, end)
}
func (p *pefSeq) encode(w *codec.Writer) { p.s.Encode(w) }

// vbyteSeq wraps a blocked VByte sequence of prefix-summed values.
type vbyteSeq struct {
	s *vbyte.Blocked
}

func (v *vbyteSeq) Len() int         { return v.s.Len() }
func (v *vbyteSeq) Kind() Kind       { return KindVByte }
func (v *vbyteSeq) SizeBits() uint64 { return v.s.SizeBits() }
func (v *vbyteSeq) At(begin, i int) uint64 {
	return monoAt(v.s, begin, i)
}
func (v *vbyteSeq) At2(begin, i int) (uint64, uint64) {
	return monoAt(v.s, begin, i), monoAt(v.s, begin, i+1)
}
func (v *vbyteSeq) Find(begin, end int, x uint64) int {
	return monoFind(v.s, begin, end, x)
}
func (v *vbyteSeq) FindGEQ(begin, end int, x uint64) (int, uint64, bool) {
	return monoFindGEQ(v.s, begin, end, x)
}
func (v *vbyteSeq) Iter(begin, end int) Iterator {
	return newVByteIter(v.s, begin, begin, end)
}
func (v *vbyteSeq) IterFrom(rangeBegin, from, end int) Iterator {
	return newVByteIter(v.s, rangeBegin, from, end)
}
func (v *vbyteSeq) encode(w *codec.Writer) { v.s.Encode(w) }

// pefOptSeq wraps a cost-optimized partitioned Elias-Fano sequence.
type pefOptSeq struct {
	s *ef.OptPartitioned
}

func (p *pefOptSeq) Len() int         { return p.s.Len() }
func (p *pefOptSeq) Kind() Kind       { return KindPEFOpt }
func (p *pefOptSeq) SizeBits() uint64 { return p.s.SizeBits() }
func (p *pefOptSeq) At(begin, i int) uint64 {
	return monoAt(p.s, begin, i)
}
func (p *pefOptSeq) At2(begin, i int) (uint64, uint64) {
	return monoAt(p.s, begin, i), monoAt(p.s, begin, i+1)
}
func (p *pefOptSeq) Find(begin, end int, x uint64) int {
	return monoFind(p.s, begin, end, x)
}
func (p *pefOptSeq) FindGEQ(begin, end int, x uint64) (int, uint64, bool) {
	return monoFindGEQ(p.s, begin, end, x)
}
func (p *pefOptSeq) Iter(begin, end int) Iterator {
	return newPEFOptIter(p.s, begin, begin, end)
}
func (p *pefOptSeq) IterFrom(rangeBegin, from, end int) Iterator {
	return newPEFOptIter(p.s, rangeBegin, from, end)
}
func (p *pefOptSeq) encode(w *codec.Writer) { p.s.Encode(w) }

// Write serializes s with a leading kind tag.
func Write(w *codec.Writer, s Sequence) {
	w.Byte(byte(s.Kind()))
	s.encode(w)
}

// Read deserializes a sequence written by Write.
func Read(r *codec.Reader) (Sequence, error) {
	kind := Kind(r.Byte())
	if err := r.Err(); err != nil {
		return nil, err
	}
	switch kind {
	case KindCompact:
		v, err := bits.DecodeCompact(r)
		if err != nil {
			return nil, err
		}
		return &compactSeq{v: v}, nil
	case KindEF:
		s, err := ef.Decode(r)
		if err != nil {
			return nil, err
		}
		return &efSeq{s: s}, nil
	case KindPEF:
		s, err := ef.DecodePartitioned(r)
		if err != nil {
			return nil, err
		}
		return &pefSeq{s: s}, nil
	case KindVByte:
		s, err := vbyte.DecodeBlocked(r)
		if err != nil {
			return nil, err
		}
		return &vbyteSeq{s: s}, nil
	case KindPEFOpt:
		s, err := ef.DecodeOptPartitioned(r)
		if err != nil {
			return nil, err
		}
		return &pefOptSeq{s: s}, nil
	}
	return nil, r.Fail(fmt.Errorf("%w: unknown sequence kind %d", codec.ErrCorrupt, kind))
}
