package seq

import (
	"bytes"
	"math/rand"
	"testing"

	"rdfindexes/internal/codec"
)

// rangedData is a test fixture mimicking a trie level: values sorted
// strictly within ranges, arbitrary across ranges.
type rangedData struct {
	values []uint64
	ranges []int // numRanges+1 delimiters
}

func randomRanged(rng *rand.Rand, numRanges, maxRangeLen int, maxVal uint64) rangedData {
	var d rangedData
	d.ranges = append(d.ranges, 0)
	for r := 0; r < numRanges; r++ {
		n := 1 + rng.Intn(maxRangeLen)
		seen := map[uint64]bool{}
		vals := make([]uint64, 0, n)
		for len(vals) < n {
			v := rng.Uint64() % (maxVal + 1)
			if !seen[v] {
				seen[v] = true
				vals = append(vals, v)
			}
		}
		// strictly increasing within the range
		for i := 1; i < len(vals); i++ {
			for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
				vals[j], vals[j-1] = vals[j-1], vals[j]
			}
		}
		d.values = append(d.values, vals...)
		d.ranges = append(d.ranges, len(d.values))
	}
	return d
}

var allKinds = []Kind{KindCompact, KindEF, KindPEF, KindVByte, KindPEFOpt}

func TestSequenceOracleAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	fixtures := map[string]rangedData{
		"small-dense":  randomRanged(rng, 50, 8, 30),
		"wide":         randomRanged(rng, 40, 12, 1<<30),
		"tiny-ranges":  randomRanged(rng, 400, 2, 1000),
		"single-range": randomRanged(rng, 1, 500, 100000),
		"zero-heavy":   randomRanged(rng, 100, 3, 2),
	}
	for name, d := range fixtures {
		for _, kind := range allKinds {
			t.Run(name+"/"+kind.String(), func(t *testing.T) {
				s := Build(kind, d.values, d.ranges)
				checkSequence(t, s, d, rng)
			})
		}
	}
}

func checkSequence(t *testing.T, s Sequence, d rangedData, rng *rand.Rand) {
	t.Helper()
	if s.Len() != len(d.values) {
		t.Fatalf("Len() = %d, want %d", s.Len(), len(d.values))
	}
	for k := 0; k+1 < len(d.ranges); k++ {
		begin, end := d.ranges[k], d.ranges[k+1]
		// At
		for i := begin; i < end; i++ {
			if got := s.At(begin, i); got != d.values[i] {
				t.Fatalf("At(%d, %d) = %d, want %d", begin, i, got, d.values[i])
			}
		}
		// At2 agrees with two At calls.
		for i := begin; i+1 < end; i++ {
			v1, v2 := s.At2(begin, i)
			if v1 != d.values[i] || v2 != d.values[i+1] {
				t.Fatalf("At2(%d, %d) = (%d, %d), want (%d, %d)",
					begin, i, v1, v2, d.values[i], d.values[i+1])
			}
		}
		// Find: every present value, plus absent probes
		for i := begin; i < end; i++ {
			if got := s.Find(begin, end, d.values[i]); got != i {
				t.Fatalf("Find(%d, %d, %d) = %d, want %d", begin, end, d.values[i], got, i)
			}
		}
		for trial := 0; trial < 4; trial++ {
			x := rng.Uint64() % (1 << 31)
			present := -1
			for i := begin; i < end; i++ {
				if d.values[i] == x {
					present = i
					break
				}
			}
			if got := s.Find(begin, end, x); got != present {
				t.Fatalf("Find(%d, %d, %d) = %d, want %d", begin, end, x, got, present)
			}
		}
		// FindGEQ oracle
		for trial := 0; trial < 6; trial++ {
			x := rng.Uint64() % (1 << 31)
			if trial < 3 && end > begin {
				x = d.values[begin+rng.Intn(end-begin)] // exact hits too
			}
			wantPos, wantVal, wantOK := end, uint64(0), false
			for i := begin; i < end; i++ {
				if d.values[i] >= x {
					wantPos, wantVal, wantOK = i, d.values[i], true
					break
				}
			}
			pos, val, ok := s.FindGEQ(begin, end, x)
			if ok != wantOK || (ok && (pos != wantPos || val != wantVal)) {
				t.Fatalf("FindGEQ(%d, %d, %d) = (%d, %d, %v), want (%d, %d, %v)",
					begin, end, x, pos, val, ok, wantPos, wantVal, wantOK)
			}
		}
		// Iter
		it := s.Iter(begin, end)
		for i := begin; i < end; i++ {
			v, ok := it.Next()
			if !ok || v != d.values[i] {
				t.Fatalf("Iter(%d, %d) at %d = (%d, %v), want %d", begin, end, i, v, ok, d.values[i])
			}
		}
		if _, ok := it.Next(); ok {
			t.Fatalf("Iter(%d, %d) did not stop", begin, end)
		}
		// IterFrom starting mid-range must agree with the values oracle.
		if end > begin {
			from := begin + rng.Intn(end-begin)
			fit := s.IterFrom(begin, from, end)
			for i := from; i < end; i++ {
				v, ok := fit.Next()
				if !ok || v != d.values[i] {
					t.Fatalf("IterFrom(%d, %d, %d) at %d = (%d, %v), want %d",
						begin, from, end, i, v, ok, d.values[i])
				}
			}
			if _, ok := fit.Next(); ok {
				t.Fatalf("IterFrom(%d, %d, %d) did not stop", begin, from, end)
			}
		}
	}
	// Find on an empty range.
	if got := s.Find(0, 0, 0); got != -1 {
		t.Fatalf("Find on empty range = %d, want -1", got)
	}
}

func TestSequenceFindDuplicateBases(t *testing.T) {
	// Ranges starting with value 0 make the stored value equal the
	// previous range's last stored value: the duplicate-skipping logic in
	// monoFind must still resolve positions inside the right range.
	values := []uint64{0, 1, 2, 0, 5, 0, 0, 3}
	ranges := []int{0, 3, 5, 6, 8}
	for _, kind := range allKinds {
		s := Build(kind, values, ranges)
		for k := 0; k+1 < len(ranges); k++ {
			begin, end := ranges[k], ranges[k+1]
			for i := begin; i < end; i++ {
				if got := s.Find(begin, end, values[i]); got != i {
					t.Errorf("%v: Find(%d, %d, %d) = %d, want %d",
						kind, begin, end, values[i], got, i)
				}
				if got := s.At(begin, i); got != values[i] {
					t.Errorf("%v: At(%d, %d) = %d, want %d", kind, begin, i, got, values[i])
				}
			}
			// 4 never occurs in any range.
			if got := s.Find(begin, end, 4); got != -1 {
				t.Errorf("%v: Find(%d, %d, 4) = %d, want -1", kind, begin, end, got)
			}
		}
	}
}

func TestBuildMono(t *testing.T) {
	values := []uint64{0, 3, 3, 9, 120, 121}
	for _, kind := range []Kind{KindEF, KindPEF, KindVByte} {
		s := BuildMono(kind, values)
		for i, v := range values {
			if got := s.At(0, i); got != v {
				t.Errorf("%v: At(0, %d) = %d, want %d", kind, i, got, v)
			}
		}
	}
}

func TestSequenceRoundTripAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	d := randomRanged(rng, 60, 10, 1<<24)
	for _, kind := range allKinds {
		s := Build(kind, d.values, d.ranges)
		var buf bytes.Buffer
		w := codec.NewWriter(&buf)
		Write(w, s)
		if err := w.Flush(); err != nil {
			t.Fatalf("%v: flush: %v", kind, err)
		}
		got, err := Read(codec.NewReader(&buf))
		if err != nil {
			t.Fatalf("%v: read: %v", kind, err)
		}
		if got.Kind() != kind {
			t.Fatalf("decoded kind = %v, want %v", got.Kind(), kind)
		}
		for k := 0; k+1 < len(d.ranges); k++ {
			begin, end := d.ranges[k], d.ranges[k+1]
			for i := begin; i < end; i++ {
				if got.At(begin, i) != d.values[i] {
					t.Fatalf("%v: decoded At(%d, %d) mismatch", kind, begin, i)
				}
			}
		}
	}
}

func TestReadUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	w := codec.NewWriter(&buf)
	w.Byte(99)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(codec.NewReader(&buf)); err == nil {
		t.Fatal("Read accepted unknown kind tag")
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range allKinds {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted bogus name")
	}
}

func TestKindString(t *testing.T) {
	if Kind(77).String() != "Kind(77)" {
		t.Errorf("unexpected String for unknown kind: %s", Kind(77))
	}
}

func TestPEFSmallerThanCompactOnSkewedRanges(t *testing.T) {
	// Long, highly compressible ranges (the POS second level shape of the
	// paper): PEF should beat Compact by a wide margin.
	var values []uint64
	ranges := []int{0}
	for r := 0; r < 20; r++ {
		for i := 0; i < 5000; i++ {
			values = append(values, uint64(i*2))
		}
		ranges = append(ranges, len(values))
	}
	pef := Build(KindPEF, values, ranges)
	compact := Build(KindCompact, values, ranges)
	if pef.SizeBits() >= compact.SizeBits()/2 {
		t.Errorf("PEF = %d bits, Compact = %d bits: expected PEF < half",
			pef.SizeBits(), compact.SizeBits())
	}
}
