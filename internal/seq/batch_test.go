package seq

import (
	"math/rand"
	"testing"
)

// randRanged builds a random ranged-sorted input: values strictly
// increasing within each range, with the range layout randomized.
func randRanged(rng *rand.Rand, n, maxRanges int, universe uint64) (values []uint64, ranges []int) {
	ranges = []int{0}
	for len(values) < n {
		left := n - len(values)
		sz := 1 + rng.Intn(maxInt(1, minInt(left, n/maxRanges+1)))
		if sz > left {
			sz = left
		}
		// strictly increasing values within the range
		used := map[uint64]bool{}
		vals := make([]uint64, 0, sz)
		for len(vals) < sz {
			v := uint64(rng.Int63n(int64(universe)))
			if !used[v] {
				used[v] = true
				vals = append(vals, v)
			}
		}
		sortU64(vals)
		values = append(values, vals...)
		ranges = append(ranges, len(values))
	}
	return values, ranges
}

func sortU64(v []uint64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestNextBatchMatchesNext cross-checks the block decoder against the
// scalar path on randomized ranges and batch sizes.
func TestNextBatchMatchesNext(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, kind := range allKinds {
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(3000)
			values, ranges := randRanged(rng, n, 1+rng.Intn(50), 1+uint64(rng.Int63n(1<<20)))
			s := Build(kind, values, ranges)
			for k := 0; k+1 < len(ranges); k++ {
				lo, hi := ranges[k], ranges[k+1]
				want := make([]uint64, 0, hi-lo)
				it := s.Iter(lo, hi)
				for {
					v, ok := it.Next()
					if !ok {
						break
					}
					want = append(want, v)
				}
				if len(want) != hi-lo {
					t.Fatalf("%v: range %d scalar decoded %d of %d", kind, k, len(want), hi-lo)
				}
				// batch decode with a randomized buffer size
				bufSize := 1 + rng.Intn(40)
				buf := make([]uint64, bufSize)
				got := make([]uint64, 0, hi-lo)
				bit := s.Iter(lo, hi)
				for {
					m := bit.NextBatch(buf)
					if m == 0 {
						break
					}
					got = append(got, buf[:m]...)
				}
				if len(got) != len(want) {
					t.Fatalf("%v: range %d batch decoded %d, want %d", kind, k, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%v: range %d pos %d: batch %d, scalar %d", kind, k, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestNextGEQMatchesFindGEQ cross-checks the iterator skip against the
// sequence-level search, including skips that land between and beyond
// elements.
func TestNextGEQMatchesFindGEQ(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, kind := range allKinds {
		for trial := 0; trial < 15; trial++ {
			n := 1 + rng.Intn(2000)
			universe := 1 + uint64(rng.Int63n(1<<18))
			values, ranges := randRanged(rng, n, 1+rng.Intn(20), universe)
			s := Build(kind, values, ranges)
			for k := 0; k+1 < len(ranges); k++ {
				lo, hi := ranges[k], ranges[k+1]
				it := s.Iter(lo, hi)
				var prev uint64
				first := true
				for probe := 0; probe < 30; probe++ {
					// strictly increasing targets, as in a gallop join
					x := prev + uint64(rng.Int63n(int64(universe/8+2)))
					if !first {
						x = prev + 1 + uint64(rng.Int63n(int64(universe/8+2)))
					}
					pos, val, ok := s.FindGEQ(lo, hi, x)
					got, gok := it.NextGEQ(x)
					if gok != ok {
						t.Fatalf("%v: range %d NextGEQ(%d) ok=%v, FindGEQ ok=%v", kind, k, x, gok, ok)
					}
					if !ok {
						break
					}
					_ = pos
					if got != val {
						t.Fatalf("%v: range %d NextGEQ(%d) = %d, FindGEQ = %d", kind, k, x, got, val)
					}
					prev = val
					first = false
				}
			}
		}
	}
}

// TestResetReuseMatchesFresh drives one reused iterator through every
// range (the pattern of the core selection algorithms, including the
// contiguous-range base carry-over) and compares with fresh iterators.
func TestResetReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, kind := range allKinds {
		for trial := 0; trial < 15; trial++ {
			n := 1 + rng.Intn(2000)
			values, ranges := randRanged(rng, n, 1+rng.Intn(30), 1+uint64(rng.Int63n(1<<19)))
			s := Build(kind, values, ranges)
			var reused Iterator
			buf := make([]uint64, 7)
			// Walk ranges in order (contiguous resets), then revisit a few
			// random ranges (non-contiguous resets).
			visit := make([]int, 0, len(ranges)+5)
			for k := 0; k+1 < len(ranges); k++ {
				visit = append(visit, k)
			}
			for i := 0; i < 5 && len(ranges) > 1; i++ {
				visit = append(visit, rng.Intn(len(ranges)-1))
			}
			for _, k := range visit {
				lo, hi := ranges[k], ranges[k+1]
				if reused == nil {
					reused = s.Iter(lo, hi)
				} else {
					reused.Reset(lo, lo, hi)
				}
				fresh := s.Iter(lo, hi)
				for {
					m := reused.NextBatch(buf)
					want := make([]uint64, len(buf))
					wm := 0
					for wm < m {
						v, ok := fresh.Next()
						if !ok {
							break
						}
						want[wm] = v
						wm++
					}
					if wm != m {
						t.Fatalf("%v: range %d reused yielded %d, fresh %d", kind, k, m, wm)
					}
					for i := 0; i < m; i++ {
						if buf[i] != want[i] {
							t.Fatalf("%v: range %d: reused %d, fresh %d", kind, k, buf[i], want[i])
						}
					}
					if m == 0 {
						if _, ok := fresh.Next(); ok {
							t.Fatalf("%v: range %d reused exhausted early", kind, k)
						}
						break
					}
				}
			}
		}
	}
}

// TestIterFromMatchesSuffix checks mid-range iteration (IterFrom) for
// every kind.
func TestIterFromMatchesSuffix(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, kind := range allKinds {
		values, ranges := randRanged(rng, 1200, 12, 1<<16)
		s := Build(kind, values, ranges)
		for k := 0; k+1 < len(ranges); k++ {
			lo, hi := ranges[k], ranges[k+1]
			from := lo + rng.Intn(hi-lo)
			it := s.IterFrom(lo, from, hi)
			for i := from; i < hi; i++ {
				v, ok := it.Next()
				if !ok {
					t.Fatalf("%v: IterFrom ended at %d of [%d,%d)", kind, i, from, hi)
				}
				if want := s.At(lo, i); v != want {
					t.Fatalf("%v: IterFrom pos %d = %d, At = %d", kind, i, v, want)
				}
			}
			if _, ok := it.Next(); ok {
				t.Fatalf("%v: IterFrom overruns range end", kind)
			}
		}
	}
}
