package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"rdfindexes/internal/core"
	"rdfindexes/internal/sparql"
)

// The structured generators build schema-shaped datasets with a shared
// subject/object entity ID space, so that join queries are meaningful.
// LUBM is itself a synthetic benchmark (the paper generates it with the
// official tool); this generator reproduces its university schema at a
// configurable scale. The WatDiv-like generator reproduces an e-commerce
// schema with numeric attributes for the range-query experiment of
// Section 4.1.

// LUBM predicate IDs (a compact rendition of the benchmark's ontology).
const (
	LubmType = iota
	LubmSubOrganizationOf
	LubmWorksFor
	LubmMemberOf
	LubmAdvisor
	LubmTakesCourse
	LubmTeacherOf
	LubmHeadOf
	LubmUndergraduateDegreeFrom
	LubmMastersDegreeFrom
	LubmDoctoralDegreeFrom
	LubmPublicationAuthor
	LubmName
	LubmEmailAddress
	LubmTelephone
	LubmResearchInterest
	LubmTitle
	lubmNumPreds
)

// LUBM class IDs (objects of the type predicate).
const (
	LubmClassUniversity = iota
	LubmClassDepartment
	LubmClassProfessor
	LubmClassGradStudent
	LubmClassUndergradStudent
	LubmClassCourse
	LubmClassPublication
	lubmFirstEntity = 10
)

// LUBMData is a generated university dataset with the entity groups
// needed to instantiate query templates.
type LUBMData struct {
	Dataset      *core.Dataset
	Universities []core.ID
	Departments  []core.ID
	Professors   []core.ID
	Students     []core.ID
	Courses      []core.ID
}

// LUBM generates a dataset with the given number of universities,
// following the proportions of the Lehigh University Benchmark.
func LUBM(universities int, seed int64) *LUBMData {
	rng := rand.New(rand.NewSource(seed))
	data := &LUBMData{}
	next := core.ID(lubmFirstEntity)
	alloc := func() core.ID {
		id := next
		next++
		return id
	}
	var ts []core.Triple
	add := func(s core.ID, p int, o core.ID) {
		ts = append(ts, core.Triple{S: s, P: core.ID(p), O: o})
	}
	interests := make([]core.ID, 24)
	for i := range interests {
		interests[i] = alloc()
	}
	for u := 0; u < universities; u++ {
		uni := alloc()
		data.Universities = append(data.Universities, uni)
		add(uni, LubmType, LubmClassUniversity)
		add(uni, LubmName, alloc())
		numDepts := 3 + rng.Intn(6)
		for dI := 0; dI < numDepts; dI++ {
			dept := alloc()
			data.Departments = append(data.Departments, dept)
			add(dept, LubmType, LubmClassDepartment)
			add(dept, LubmSubOrganizationOf, uni)
			add(dept, LubmName, alloc())

			numProfs := 4 + rng.Intn(7)
			profs := make([]core.ID, 0, numProfs)
			var courses []core.ID
			for pI := 0; pI < numProfs; pI++ {
				prof := alloc()
				profs = append(profs, prof)
				data.Professors = append(data.Professors, prof)
				add(prof, LubmType, LubmClassProfessor)
				add(prof, LubmWorksFor, dept)
				add(prof, LubmName, alloc())
				add(prof, LubmEmailAddress, alloc())
				add(prof, LubmTelephone, alloc())
				add(prof, LubmResearchInterest, interests[rng.Intn(len(interests))])
				if len(data.Universities) > 0 {
					add(prof, LubmUndergraduateDegreeFrom,
						data.Universities[rng.Intn(len(data.Universities))])
					add(prof, LubmDoctoralDegreeFrom,
						data.Universities[rng.Intn(len(data.Universities))])
				}
				if pI == 0 {
					add(prof, LubmHeadOf, dept)
				}
				numCourses := 1 + rng.Intn(3)
				for cI := 0; cI < numCourses; cI++ {
					course := alloc()
					courses = append(courses, course)
					data.Courses = append(data.Courses, course)
					add(course, LubmType, LubmClassCourse)
					add(course, LubmName, alloc())
					add(prof, LubmTeacherOf, course)
				}
				numPubs := 1 + rng.Intn(4)
				for bI := 0; bI < numPubs; bI++ {
					pub := alloc()
					add(pub, LubmType, LubmClassPublication)
					add(pub, LubmTitle, alloc())
					add(pub, LubmPublicationAuthor, prof)
				}
			}
			numStudents := 15 + rng.Intn(30)
			for sI := 0; sI < numStudents; sI++ {
				student := alloc()
				data.Students = append(data.Students, student)
				grad := rng.Intn(4) == 0
				if grad {
					add(student, LubmType, LubmClassGradStudent)
					add(student, LubmUndergraduateDegreeFrom,
						data.Universities[rng.Intn(len(data.Universities))])
					add(student, LubmAdvisor, profs[rng.Intn(len(profs))])
				} else {
					add(student, LubmType, LubmClassUndergradStudent)
				}
				add(student, LubmMemberOf, dept)
				add(student, LubmName, alloc())
				add(student, LubmEmailAddress, alloc())
				take := 2 + rng.Intn(3)
				for k := 0; k < take && len(courses) > 0; k++ {
					add(student, LubmTakesCourse, courses[rng.Intn(len(courses))])
				}
			}
		}
	}
	data.Dataset = core.NewDataset(ts)
	// Shared entity space: make the subject and object spaces coincide.
	unify(data.Dataset)
	return data
}

// unify widens both ID spaces to their union so the trie first levels
// cover every entity regardless of which position it appears in.
func unify(d *core.Dataset) {
	if d.NO > d.NS {
		d.NS = d.NO
	} else {
		d.NO = d.NS
	}
}

// LUBMQueries generates a query log of n queries cycling through
// simplified renditions of the LUBM query mix (selective lookups, star
// joins and chains).
func LUBMQueries(data *LUBMData, n int, seed int64) []sparql.Query {
	rng := rand.New(rand.NewSource(seed))
	pick := func(ids []core.ID) core.ID { return ids[rng.Intn(len(ids))] }
	var out []sparql.Query
	for len(out) < n {
		switch len(out) % 6 {
		case 0: // students taking a given course
			out = append(out, mustParse(fmt.Sprintf(
				"SELECT ?x WHERE { ?x <%d> <%d> . ?x <%d> <%d> . }",
				LubmTakesCourse, pick(data.Courses), LubmType, LubmClassUndergradStudent)))
		case 1: // professors of a department and their advisees
			out = append(out, mustParse(fmt.Sprintf(
				"SELECT ?p ?s WHERE { ?p <%d> <%d> . ?s <%d> ?p . }",
				LubmWorksFor, pick(data.Departments), LubmAdvisor)))
		case 2: // contact card star
			out = append(out, mustParse(fmt.Sprintf(
				"SELECT ?p ?n ?e WHERE { ?p <%d> <%d> . ?p <%d> ?n . ?p <%d> ?e . }",
				LubmWorksFor, pick(data.Departments), LubmName, LubmEmailAddress)))
		case 3: // members of a university through its departments (chain)
			out = append(out, mustParse(fmt.Sprintf(
				"SELECT ?x ?d WHERE { ?x <%d> ?d . ?d <%d> <%d> . }",
				LubmMemberOf, LubmSubOrganizationOf, pick(data.Universities))))
		case 4: // classmates of the courses taught by a professor
			out = append(out, mustParse(fmt.Sprintf(
				"SELECT ?s ?c WHERE { <%d> <%d> ?c . ?s <%d> ?c . }",
				pick(data.Professors), LubmTeacherOf, LubmTakesCourse)))
		case 5: // advisor chain to a university
			out = append(out, mustParse(fmt.Sprintf(
				"SELECT ?s ?p WHERE { ?s <%d> ?p . ?p <%d> ?d . ?d <%d> <%d> . }",
				LubmAdvisor, LubmWorksFor, LubmSubOrganizationOf, pick(data.Universities))))
		}
	}
	return out
}

// WatDiv predicate IDs.
const (
	WdType = iota
	WdPurchases
	WdReviewsProduct
	WdReviewer
	WdRating
	WdPrice
	WdDate
	WdFriendOf
	WdLikes
	WdName
	WdCaption
	WdRetailerOf
	wdNumPreds
)

// WatDiv class IDs.
const (
	WdClassUser = iota
	WdClassProduct
	WdClassReview
	WdClassRetailer
	wdFirstEntity = 10
)

// WatDivData is a generated e-commerce dataset; numeric attribute values
// occupy the contiguous object ID block [NumericBase, NumericBase +
// len(NumericValues)) in increasing value order, as the range-query ID
// assignment of Section 3.1 requires.
type WatDivData struct {
	Dataset       *core.Dataset
	Users         []core.ID
	Products      []core.ID
	Reviews       []core.ID
	NumericBase   core.ID
	NumericValues []uint64
}

// R builds the paper's R structure over the numeric block.
func (w *WatDivData) R() *core.R { return core.NewR(w.NumericBase, w.NumericValues) }

// WatDiv generates a dataset with the given number of products.
func WatDiv(products int, seed int64) *WatDivData {
	rng := rand.New(rand.NewSource(seed))
	data := &WatDivData{}
	next := core.ID(wdFirstEntity)
	alloc := func() core.ID {
		id := next
		next++
		return id
	}

	type numericTriple struct {
		s core.ID
		p int
		v uint64
	}
	var numerics []numericTriple
	var ts []core.Triple
	add := func(s core.ID, p int, o core.ID) {
		ts = append(ts, core.Triple{S: s, P: core.ID(p), O: o})
	}

	numUsers := products/2 + 4
	numRetailers := products/100 + 2
	retailers := make([]core.ID, numRetailers)
	for i := range retailers {
		retailers[i] = alloc()
		add(retailers[i], WdType, WdClassRetailer)
		add(retailers[i], WdName, alloc())
	}
	for i := 0; i < products; i++ {
		prod := alloc()
		data.Products = append(data.Products, prod)
		add(prod, WdType, WdClassProduct)
		add(prod, WdCaption, alloc())
		add(retailers[rng.Intn(numRetailers)], WdRetailerOf, prod)
		numerics = append(numerics,
			numericTriple{prod, WdPrice, uint64(100 + rng.Intn(99900))},
			numericTriple{prod, WdDate, uint64(20100101 + rng.Intn(99999))})
	}
	for i := 0; i < numUsers; i++ {
		user := alloc()
		data.Users = append(data.Users, user)
		add(user, WdType, WdClassUser)
		add(user, WdName, alloc())
		buys := 1 + rng.Intn(6)
		for k := 0; k < buys; k++ {
			add(user, WdPurchases, data.Products[rng.Intn(products)])
		}
		likes := rng.Intn(4)
		for k := 0; k < likes; k++ {
			add(user, WdLikes, data.Products[rng.Intn(products)])
		}
		if i > 0 && rng.Intn(2) == 0 {
			add(user, WdFriendOf, data.Users[rng.Intn(i)])
		}
	}
	numReviews := products * 2
	for i := 0; i < numReviews; i++ {
		rev := alloc()
		data.Reviews = append(data.Reviews, rev)
		add(rev, WdType, WdClassReview)
		add(rev, WdReviewsProduct, data.Products[rng.Intn(products)])
		add(rev, WdReviewer, data.Users[rng.Intn(numUsers)])
		numerics = append(numerics, numericTriple{rev, WdRating, uint64(rng.Intn(11))})
	}

	// Assign the numeric block: distinct values sorted ascending receive
	// consecutive IDs starting after all entities and literals.
	distinct := map[uint64]bool{}
	for _, nt := range numerics {
		distinct[nt.v] = true
	}
	values := make([]uint64, 0, len(distinct))
	for v := range distinct {
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	rank := make(map[uint64]int, len(values))
	for i, v := range values {
		rank[v] = i
	}
	data.NumericBase = next
	data.NumericValues = values
	for _, nt := range numerics {
		add(nt.s, nt.p, data.NumericBase+core.ID(rank[nt.v]))
	}

	data.Dataset = core.NewDataset(ts)
	unify(data.Dataset)
	return data
}

// WatDivQueries generates a query log of n star/chain queries in the
// spirit of the WatDiv stress workload.
func WatDivQueries(data *WatDivData, n int, seed int64) []sparql.Query {
	rng := rand.New(rand.NewSource(seed))
	pickP := func() core.ID { return data.Products[rng.Intn(len(data.Products))] }
	pickU := func() core.ID { return data.Users[rng.Intn(len(data.Users))] }
	var out []sparql.Query
	for len(out) < n {
		switch len(out) % 5 {
		case 0: // reviews of a product with their raters
			out = append(out, mustParse(fmt.Sprintf(
				"SELECT ?r ?u WHERE { ?r <%d> <%d> . ?r <%d> ?u . }",
				WdReviewsProduct, pickP(), WdReviewer)))
		case 1: // what a user's friends purchased
			out = append(out, mustParse(fmt.Sprintf(
				"SELECT ?f ?p WHERE { <%d> <%d> ?f . ?f <%d> ?p . }",
				pickU(), WdFriendOf, WdPurchases)))
		case 2: // product star: caption and price
			out = append(out, mustParse(fmt.Sprintf(
				"SELECT ?c ?v WHERE { <%d> <%d> ?c . <%d> <%d> ?v . }",
				pickP(), WdCaption, pickP(), WdPrice)))
		case 3: // purchasers of products a user likes
			out = append(out, mustParse(fmt.Sprintf(
				"SELECT ?p ?u WHERE { <%d> <%d> ?p . ?u <%d> ?p . }",
				pickU(), WdLikes, WdPurchases)))
		case 4: // review chain: user -> purchases -> reviewed by
			out = append(out, mustParse(fmt.Sprintf(
				"SELECT ?p ?r WHERE { <%d> <%d> ?p . ?r <%d> ?p . }",
				pickU(), WdPurchases, WdReviewsProduct)))
		}
	}
	return out
}

func mustParse(s string) sparql.Query {
	q, err := sparql.Parse(s)
	if err != nil {
		panic(fmt.Sprintf("gen: bad query template %q: %v", s, err))
	}
	return q
}
