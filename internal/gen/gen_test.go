package gen

import (
	"math"
	"math/rand"
	"testing"

	"rdfindexes/internal/core"
)

func TestZipfDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	z := NewZipf(100, 1.0)
	counts := make([]int, 100)
	n := 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(rng)]++
	}
	// Element 0 should be about 2x element 1, 3x element 2 (harmonic).
	if counts[0] < counts[1] || counts[1] < counts[2] {
		t.Fatalf("Zipf head not decreasing: %v", counts[:5])
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if math.Abs(ratio-2) > 0.3 {
		t.Errorf("counts[0]/counts[1] = %.2f, want ~2", ratio)
	}
	// Uniform case.
	u := NewZipf(10, 0)
	counts = make([]int, 10)
	for i := 0; i < n; i++ {
		counts[u.Sample(rng)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-float64(n)/10) > float64(n)/50 {
			t.Errorf("s=0 not uniform: counts[%d] = %d", i, c)
		}
	}
}

func TestZipfDeterministic(t *testing.T) {
	z := NewZipf(50, 1.2)
	a := z.Sample(rand.New(rand.NewSource(7)))
	b := z.Sample(rand.New(rand.NewSource(7)))
	if a != b {
		t.Fatal("Zipf sampling not deterministic for a fixed seed")
	}
}

func TestGeneratePresetShapes(t *testing.T) {
	for _, name := range PresetNames() {
		d, err := GeneratePreset(name, 30000, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		st := d.ComputeStats()
		if st.Triples < 25000 {
			t.Fatalf("%s: generated only %d triples", name, st.Triples)
		}
		cfg := presets[name]
		// Distinct subjects should be within 2x of the calibrated ratio
		// (skew makes some IDs unused).
		wantS := float64(st.Triples) * cfg.SubjectRatio
		if float64(st.DistinctS) > wantS*1.5 || float64(st.DistinctS) < wantS*0.3 {
			t.Errorf("%s: distinct subjects %d, calibrated for ~%.0f", name, st.DistinctS, wantS)
		}
		if st.DistinctP > cfg.Predicates {
			t.Errorf("%s: %d predicates exceeds configured %d", name, st.DistinctP, cfg.Predicates)
		}
		// RDF shape invariants the paper relies on.
		if st.DistinctP >= st.DistinctS || st.DistinctP >= st.DistinctO {
			t.Errorf("%s: predicates (%d) not the small component (S=%d, O=%d)",
				name, st.DistinctP, st.DistinctS, st.DistinctO)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := GeneratePreset("dbpedia", 5000, 9)
	b, _ := GeneratePreset("dbpedia", 5000, 9)
	if a.Len() != b.Len() {
		t.Fatal("same seed produced different sizes")
	}
	for i := range a.Triples {
		if a.Triples[i] != b.Triples[i] {
			t.Fatal("same seed produced different triples")
		}
	}
	c, _ := GeneratePreset("dbpedia", 5000, 10)
	same := c.Len() == a.Len()
	if same {
		for i := range a.Triples {
			if a.Triples[i] != c.Triples[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestPresetUnknown(t *testing.T) {
	if _, err := Preset("nope", 10, 1); err == nil {
		t.Fatal("Preset accepted unknown name")
	}
}

func TestSampleTriplesAndWorkload(t *testing.T) {
	d, _ := GeneratePreset("dblp", 5000, 5)
	sample := SampleTriples(d, 100, 3)
	if len(sample) != 100 {
		t.Fatalf("sampled %d, want 100", len(sample))
	}
	pats := PatternWorkload(sample, core.ShapexPO)
	for i, p := range pats {
		if p.Shape() != core.ShapexPO {
			t.Fatalf("pattern %d has shape %v", i, p.Shape())
		}
		if !p.Matches(sample[i]) {
			t.Fatalf("pattern %d does not match its source triple", i)
		}
	}
	// Sampling more than the dataset returns everything.
	all := SampleTriples(d, d.Len()+10, 3)
	if len(all) != d.Len() {
		t.Fatalf("oversample returned %d, want %d", len(all), d.Len())
	}
}

func TestSubjectsByOutDegree(t *testing.T) {
	d := core.NewDataset([]core.Triple{
		{S: 0, P: 0, O: 0}, {S: 0, P: 1, O: 0}, {S: 0, P: 1, O: 1}, // s0: 2 predicates
		{S: 1, P: 2, O: 0}, // s1: 1 predicate
	})
	buckets := SubjectsByOutDegree(d)
	if len(buckets[2]) != 1 || buckets[2][0] != 0 {
		t.Fatalf("degree-2 bucket = %v, want [0]", buckets[2])
	}
	if len(buckets[1]) != 1 || buckets[1][0] != 1 {
		t.Fatalf("degree-1 bucket = %v, want [1]", buckets[1])
	}
}

func TestLUBMStructure(t *testing.T) {
	data := LUBM(3, 11)
	d := data.Dataset
	if d.Len() == 0 || len(data.Universities) != 3 {
		t.Fatalf("LUBM(3) produced %d triples, %d universities", d.Len(), len(data.Universities))
	}
	if d.NS != d.NO {
		t.Fatalf("LUBM spaces not unified: NS=%d NO=%d", d.NS, d.NO)
	}
	// Every department must belong to a university.
	x, err := core.Build2Tp(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, dept := range data.Departments {
		pat := core.Pattern{S: dept, P: core.ID(LubmSubOrganizationOf), O: core.Wildcard}
		if x.Select(pat).Count() != 1 {
			t.Fatalf("department %d has no university", dept)
		}
	}
	// Type triples exist for every professor.
	for _, prof := range data.Professors[:minInt(20, len(data.Professors))] {
		if !core.Lookup(x, core.Triple{S: prof, P: LubmType, O: LubmClassProfessor}) {
			t.Fatalf("professor %d missing type triple", prof)
		}
	}
}

func TestLUBMQueriesExecutable(t *testing.T) {
	data := LUBM(3, 13)
	x, err := core.Build2Tp(data.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	queries := LUBMQueries(data, 12, 17)
	if len(queries) != 12 {
		t.Fatalf("generated %d queries", len(queries))
	}
	totalResults := 0
	for _, q := range queries {
		st, err := execCount(q, x)
		if err != nil {
			t.Fatalf("query %v: %v", q, err)
		}
		totalResults += st
	}
	if totalResults == 0 {
		t.Fatal("no LUBM query produced any result; templates or data broken")
	}
}

func TestWatDivStructureAndNumerics(t *testing.T) {
	data := WatDiv(200, 19)
	d := data.Dataset
	if len(data.Products) != 200 {
		t.Fatalf("got %d products", len(data.Products))
	}
	// Numeric values sorted and aligned with the block.
	for i := 1; i < len(data.NumericValues); i++ {
		if data.NumericValues[i] < data.NumericValues[i-1] {
			t.Fatal("numeric values not sorted")
		}
	}
	r := data.R()
	if r.Len() != len(data.NumericValues) {
		t.Fatalf("R holds %d values, want %d", r.Len(), len(data.NumericValues))
	}
	// Every product must have a price triple pointing into the block.
	x, err := core.Build2Tp(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, prod := range data.Products[:20] {
		it := x.Select(core.Pattern{S: prod, P: WdPrice, O: core.Wildcard})
		tr, ok := it.Next()
		if !ok {
			t.Fatalf("product %d has no price", prod)
		}
		if tr.O < data.NumericBase || int(tr.O-data.NumericBase) >= r.Len() {
			t.Fatalf("price object %d outside numeric block", tr.O)
		}
	}
	// Range query sanity: prices are in [100, 100000); the full range
	// must return every price triple.
	prices := x.Select(core.Pattern{S: core.Wildcard, P: WdPrice, O: core.Wildcard}).Count()
	got := core.SelectValueRange(x, r, WdPrice, 0, 1<<40).Count()
	if got != prices {
		t.Fatalf("full-range query returned %d, want %d", got, prices)
	}
	// A narrow range returns a subset consistent with the oracle.
	lo, hi := uint64(20000), uint64(30000)
	want := 0
	for _, tr := range d.Triples {
		if tr.P == WdPrice && tr.O >= data.NumericBase &&
			int(tr.O-data.NumericBase) < len(data.NumericValues) {
			v := data.NumericValues[tr.O-data.NumericBase]
			if v >= lo && v <= hi {
				want++
			}
		}
	}
	if got := core.SelectValueRange(x, r, WdPrice, lo, hi).Count(); got != want {
		t.Fatalf("range [%d, %d] returned %d, want %d", lo, hi, got, want)
	}
}

func TestWatDivQueriesExecutable(t *testing.T) {
	data := WatDiv(150, 23)
	x, err := core.Build2Tp(data.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	queries := WatDivQueries(data, 10, 29)
	total := 0
	for _, q := range queries {
		st, err := execCount(q, x)
		if err != nil {
			t.Fatalf("query %v: %v", q, err)
		}
		total += st
	}
	if total == 0 {
		t.Fatal("no WatDiv query produced any result")
	}
}
