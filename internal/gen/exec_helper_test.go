package gen

import (
	"rdfindexes/internal/core"
	"rdfindexes/internal/sparql"
)

// execCount runs a query and returns the number of solutions.
func execCount(q sparql.Query, x core.Index) (int, error) {
	stats, err := sparql.Execute(q, x, nil)
	if err != nil {
		return 0, err
	}
	return stats.Results, nil
}
