// Package gen produces the synthetic datasets and query workloads used to
// reproduce the paper's experiments. The paper evaluates on six public
// datasets of 88M-2.07B triples (Table 3); those dumps are not available
// offline, so this package generates scaled-down datasets calibrated to
// the statistics that drive the paper's results: the ratios of distinct
// subjects/predicates/objects to triples, the Zipfian skew of predicate
// usage, the low out-degree of subjects, and the mostly-rare objects with
// a popular head. DESIGN.md documents this substitution.
package gen

import (
	"math"
	"math/rand"
)

// Zipf samples from {0, ..., n-1} with probability proportional to
// 1/(i+1)^s. Unlike math/rand's Zipf it allows s <= 1 and is reproducible
// across Go versions, since it is a plain inverse-CDF sampler.
type Zipf struct {
	cdf []float64
}

// NewZipf precomputes the distribution's CDF.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("gen: Zipf needs n > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Sample draws one value using rng.
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
