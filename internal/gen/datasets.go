package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"rdfindexes/internal/core"
)

// Config parameterizes the statistical generator. The ratios are relative
// to the number of triples, mirroring how Table 3 of the paper reports
// dataset shapes; the per-subject statistics mirror Table 2 (children per
// trie node), which are the quantities Sections 3.2-3.3 build on.
type Config struct {
	Name string
	// Triples is the target number of distinct triples.
	Triples int
	// SubjectRatio, ObjectRatio scale the subject/object ID spaces as a
	// fraction of Triples.
	SubjectRatio float64
	ObjectRatio  float64
	// Predicates is the absolute predicate count (RDF predicate sets are
	// small and do not scale with the data).
	Predicates int
	// PredicateSkew is the Zipf exponent of predicate usage; larger means
	// a few predicates dominate (high predicate associativity).
	PredicateSkew float64
	// PredsPerSubject is the mean number of distinct predicates per
	// subject (the paper's SP pairs / |S|, i.e. the average C of Fig. 7).
	PredsPerSubject float64
	// ObjsPerPair is the mean number of objects per (subject, predicate)
	// pair (the paper's triples / SP pairs).
	ObjsPerPair float64
	// ObjectHeadFraction is the probability that a triple's object is
	// drawn from the small popular head rather than the long tail.
	ObjectHeadFraction float64
	// ObjectHead is the size of the popular head.
	ObjectHead int
	Seed       int64
}

// Presets calibrated against Tables 2 and 3 of the paper:
// PredsPerSubject = SP pairs / |S| and ObjsPerPair = triples / SP pairs,
// computed from the Table 3 rows.
var presets = map[string]Config{
	"dblp": {
		SubjectRatio: 0.058, ObjectRatio: 0.41, Predicates: 27,
		PredicateSkew: 0.9, PredsPerSubject: 11.4, ObjsPerPair: 1.51,
		ObjectHeadFraction: 0.25, ObjectHead: 64,
	},
	"geonames": {
		SubjectRatio: 0.068, ObjectRatio: 0.35, Predicates: 26,
		PredicateSkew: 0.6, PredsPerSubject: 14.2, ObjsPerPair: 1.04,
		ObjectHeadFraction: 0.3, ObjectHead: 128,
	},
	"dbpedia": {
		SubjectRatio: 0.078, ObjectRatio: 0.33, Predicates: 1480,
		PredicateSkew: 1.1, PredsPerSubject: 5.5, ObjsPerPair: 2.32,
		ObjectHeadFraction: 0.2, ObjectHead: 256,
	},
	"watdiv": {
		SubjectRatio: 0.048, ObjectRatio: 0.084, Predicates: 86,
		PredicateSkew: 0.8, PredsPerSubject: 4.4, ObjsPerPair: 4.75,
		ObjectHeadFraction: 0.15, ObjectHead: 64,
	},
	"lubm": {
		SubjectRatio: 0.16, ObjectRatio: 0.12, Predicates: 17,
		PredicateSkew: 0.7, PredsPerSubject: 4.9, ObjsPerPair: 1.26,
		ObjectHeadFraction: 0.1, ObjectHead: 32,
	},
	"freebase": {
		SubjectRatio: 0.049, ObjectRatio: 0.21, Predicates: 800,
		PredicateSkew: 1.2, PredsPerSubject: 8.6, ObjsPerPair: 2.35,
		ObjectHeadFraction: 0.2, ObjectHead: 256,
	},
}

// PresetNames lists the available dataset presets in the paper's order.
func PresetNames() []string {
	return []string{"dblp", "geonames", "dbpedia", "watdiv", "lubm", "freebase"}
}

// Preset returns the configuration named after one of the paper's
// datasets, scaled to the given triple count.
func Preset(name string, triples int, seed int64) (Config, error) {
	c, ok := presets[name]
	if !ok {
		return Config{}, fmt.Errorf("gen: unknown preset %q (have %v)", name, PresetNames())
	}
	c.Name = name
	c.Triples = triples
	c.Seed = seed
	return c, nil
}

// Generate produces a dataset according to the configuration. Triples
// are generated subject by subject: each subject draws a small set of
// distinct predicates (mean PredsPerSubject, exponential spread so that
// the Fig. 7 out-degree distribution has a long tail) and each
// (subject, predicate) pair draws one or more objects (mean ObjsPerPair).
func Generate(c Config) *core.Dataset {
	if c.Triples <= 0 {
		return core.NewDataset(nil)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	numS := maxInt(int(float64(c.Triples)*c.SubjectRatio), 4)
	numO := maxInt(int(float64(c.Triples)*c.ObjectRatio), 4)
	numP := maxInt(c.Predicates, 1)
	head := minInt(maxInt(c.ObjectHead, 1), numO)
	meanPreds := c.PredsPerSubject
	if meanPreds < 1 {
		meanPreds = 1
	}
	meanObjs := c.ObjsPerPair
	if meanObjs < 1 {
		meanObjs = 1
	}

	predicates := NewZipf(numP, c.PredicateSkew)
	headDist := NewZipf(head, 1.0)
	sampleObject := func() core.ID {
		if rng.Float64() < c.ObjectHeadFraction {
			return core.ID(headDist.Sample(rng))
		}
		return core.ID(head + rng.Intn(maxInt(numO-head, 1)))
	}

	seen := make(map[core.Triple]struct{}, c.Triples)
	ts := make([]core.Triple, 0, c.Triples)
	var predSet []core.ID
	for s := 0; len(ts) < c.Triples; s = (s + 1) % numS {
		outDeg := 1 + int(rng.ExpFloat64()*(meanPreds-1)+0.5)
		if outDeg > numP {
			outDeg = numP
		}
		predSet = predSet[:0]
		for len(predSet) < outDeg {
			p := core.ID(predicates.Sample(rng))
			dup := false
			for _, q := range predSet {
				if q == p {
					dup = true
					break
				}
			}
			if !dup {
				predSet = append(predSet, p)
			}
		}
		for _, p := range predSet {
			numObjs := 1 + int(rng.ExpFloat64()*(meanObjs-1)+0.5)
			for k := 0; k < numObjs && len(ts) < c.Triples; k++ {
				t := core.Triple{S: core.ID(s), P: p, O: sampleObject()}
				if _, dup := seen[t]; dup {
					continue
				}
				seen[t] = struct{}{}
				ts = append(ts, t)
			}
		}
	}
	return core.NewDataset(ts)
}

// GeneratePreset is shorthand for Preset followed by Generate.
func GeneratePreset(name string, triples int, seed int64) (*core.Dataset, error) {
	c, err := Preset(name, triples, seed)
	if err != nil {
		return nil, err
	}
	return Generate(c), nil
}

// SampleTriples draws n triples at random from the dataset, the paper's
// methodology for building per-pattern query sets (Section 4,
// "experimental setting": 5,000 triples drawn at random).
func SampleTriples(d *core.Dataset, n int, seed int64) []core.Triple {
	rng := rand.New(rand.NewSource(seed))
	if n >= d.Len() {
		out := append([]core.Triple(nil), d.Triples...)
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	out := make([]core.Triple, n)
	for i := range out {
		out[i] = d.Triples[rng.Intn(d.Len())]
	}
	return out
}

// PatternWorkload turns sampled triples into patterns of a given shape.
func PatternWorkload(sample []core.Triple, shape core.Shape) []core.Pattern {
	out := make([]core.Pattern, len(sample))
	for i, t := range sample {
		out[i] = core.WithWildcards(t, shape)
	}
	return out
}

// SubjectsByOutDegree buckets sampled subjects by their number of
// distinct predicates (the C statistic of Fig. 7) and returns, for each
// out-degree value, the subjects having it and the count distribution.
func SubjectsByOutDegree(d *core.Dataset) map[int][]core.ID {
	deg := make(map[core.ID]int)
	var ps core.ID
	var pp core.ID
	for i, t := range d.Triples {
		if i == 0 || t.S != ps || t.P != pp {
			deg[t.S]++
		}
		ps, pp = t.S, t.P
	}
	buckets := make(map[int][]core.ID)
	for s, c := range deg {
		buckets[c] = append(buckets[c], s)
	}
	for _, b := range buckets {
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	}
	return buckets
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
