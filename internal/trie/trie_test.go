package trie

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"rdfindexes/internal/codec"
	"rdfindexes/internal/seq"
)

// fig1Triples is the worked example of Fig. 1 of the paper.
var fig1Triples = [][3]uint32{
	{0, 0, 2}, {0, 0, 3}, {0, 1, 0},
	{1, 0, 4}, {1, 2, 0}, {1, 2, 1},
	{2, 0, 2}, {2, 1, 0},
	{3, 2, 1}, {3, 2, 2},
	{4, 2, 4},
}

func buildFrom(t *testing.T, triples [][3]uint32, numRoots int, cfg Config) *Trie {
	t.Helper()
	tr, err := Build(len(triples), numRoots, func(i int) (uint32, uint32, uint32) {
		return triples[i][0], triples[i][1], triples[i][2]
	}, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tr
}

func allConfigs() []Config {
	var cfgs []Config
	kinds := []seq.Kind{seq.KindCompact, seq.KindEF, seq.KindPEF, seq.KindVByte}
	for _, k := range kinds {
		cfgs = append(cfgs, Config{Nodes1: k, Nodes2: k, Ptr0: seq.KindEF, Ptr1: seq.KindEF})
	}
	cfgs = append(cfgs, DefaultConfig())
	return cfgs
}

func TestFig1Example(t *testing.T) {
	for _, cfg := range allConfigs() {
		tr := buildFrom(t, fig1Triples, 5, cfg)

		if tr.NumTriples() != 11 || tr.NumRoots() != 5 || tr.NumInternal() != 8 {
			t.Fatalf("cfg %+v: sizes = (%d, %d, %d), want (11, 5, 8)",
				cfg, tr.NumTriples(), tr.NumRoots(), tr.NumInternal())
		}

		// The paper resolves (1, 2, ?): pointers (2, 4), find 2 at position
		// 3, pointers (4, 6), completions {0, 1}.
		begin, end := tr.RootRange(1)
		if begin != 2 || end != 4 {
			t.Fatalf("RootRange(1) = (%d, %d), want (2, 4)", begin, end)
		}
		j := tr.FindChild1(begin, end, 2)
		if j != 3 {
			t.Fatalf("FindChild1(2, 4, 2) = %d, want 3", j)
		}
		b2, e2 := tr.ChildRange(j)
		if b2 != 4 || e2 != 6 {
			t.Fatalf("ChildRange(3) = (%d, %d), want (4, 6)", b2, e2)
		}
		it := tr.Iter2(b2, e2)
		var got []uint32
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, uint32(v))
		}
		if len(got) != 2 || got[0] != 0 || got[1] != 1 {
			t.Fatalf("completions of (1, 2) = %v, want [0 1]", got)
		}

		// Expected level contents from the figure.
		wantNodes1 := []uint32{0, 1, 0, 2, 0, 1, 2, 2}
		wantPtr0 := []int{0, 2, 4, 6, 7, 8}
		wantPtr1 := []int{0, 2, 3, 4, 6, 7, 8, 10, 11}
		wantNodes2 := []uint32{2, 3, 0, 4, 0, 1, 2, 0, 1, 2, 4}
		for a := 0; a < 5; a++ {
			b, e := tr.RootRange(uint32(a))
			if b != wantPtr0[a] || e != wantPtr0[a+1] {
				t.Fatalf("RootRange(%d) = (%d, %d), want (%d, %d)", a, b, e, wantPtr0[a], wantPtr0[a+1])
			}
			for i := b; i < e; i++ {
				if got := tr.Node1At(b, i); got != wantNodes1[i] {
					t.Fatalf("Node1At(%d, %d) = %d, want %d", b, i, got, wantNodes1[i])
				}
			}
		}
		for i := 0; i < 8; i++ {
			b, e := tr.ChildRange(i)
			if b != wantPtr1[i] || e != wantPtr1[i+1] {
				t.Fatalf("ChildRange(%d) = (%d, %d), want (%d, %d)", i, b, e, wantPtr1[i], wantPtr1[i+1])
			}
			for k := b; k < e; k++ {
				if got := tr.Node2At(b, k); got != wantNodes2[k] {
					t.Fatalf("Node2At(%d, %d) = %d, want %d", b, k, got, wantNodes2[k])
				}
			}
		}

		// FindChild2: (0, 0) has children {2, 3}.
		b0, e0 := tr.ChildRange(0)
		if p := tr.FindChild2(b0, e0, 3); p != 1 {
			t.Fatalf("FindChild2 for object 3 = %d, want 1", p)
		}
		if p := tr.FindChild2(b0, e0, 4); p != -1 {
			t.Fatalf("FindChild2 for absent object = %d, want -1", p)
		}
	}
}

func TestChildStatsFig1(t *testing.T) {
	tr := buildFrom(t, fig1Triples, 5, DefaultConfig())
	avg1, max1 := tr.ChildStats(1)
	if avg1 != 8.0/5.0 || max1 != 2 {
		t.Fatalf("ChildStats(1) = (%v, %d), want (1.6, 2)", avg1, max1)
	}
	avg2, max2 := tr.ChildStats(2)
	if avg2 != 11.0/8.0 || max2 != 2 {
		t.Fatalf("ChildStats(2) = (%v, %d), want (1.375, 2)", avg2, max2)
	}
}

func TestRootGaps(t *testing.T) {
	// Roots 1 and 3 have no triples: their ranges must be empty and the
	// others unaffected.
	triples := [][3]uint32{{0, 1, 1}, {2, 5, 7}, {4, 0, 0}}
	tr := buildFrom(t, triples, 6, DefaultConfig())
	for a, wantLen := range []int{1, 0, 1, 0, 1, 0} {
		b, e := tr.RootRange(uint32(a))
		if e-b != wantLen {
			t.Errorf("RootRange(%d) has %d children, want %d", a, e-b, wantLen)
		}
	}
	// Out-of-space root yields an empty range.
	if b, e := tr.RootRange(100); b != 0 || e != 0 {
		t.Errorf("RootRange(100) = (%d, %d), want (0, 0)", b, e)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := map[string][][3]uint32{
		"unsorted-roots": {{1, 0, 0}, {0, 0, 0}},
		"unsorted-mid":   {{0, 2, 0}, {0, 1, 0}},
		"unsorted-last":  {{0, 0, 5}, {0, 0, 1}},
		"duplicate":      {{0, 0, 1}, {0, 0, 1}},
	}
	for name, triples := range cases {
		_, err := Build(len(triples), 10, func(i int) (uint32, uint32, uint32) {
			return triples[i][0], triples[i][1], triples[i][2]
		}, DefaultConfig())
		if err == nil {
			t.Errorf("%s: Build accepted invalid input", name)
		}
	}
	_, err := Build(1, 1, func(int) (uint32, uint32, uint32) { return 5, 0, 0 }, DefaultConfig())
	if err == nil {
		t.Error("Build accepted out-of-range root")
	}
}

// randomTriples returns n distinct sorted triples over the given ID spaces.
func randomTriples(rng *rand.Rand, n, na, nb, nc int) [][3]uint32 {
	seen := map[[3]uint32]bool{}
	for len(seen) < n {
		t := [3]uint32{uint32(rng.Intn(na)), uint32(rng.Intn(nb)), uint32(rng.Intn(nc))}
		seen[t] = true
	}
	out := make([][3]uint32, 0, n)
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	return out
}

func TestRandomTrieFullEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	triples := randomTriples(rng, 5000, 300, 20, 400)
	for _, cfg := range allConfigs() {
		tr := buildFrom(t, triples, 300, cfg)
		// Walk the whole trie and compare against the input.
		var got [][3]uint32
		for a := 0; a < 300; a++ {
			b1, e1 := tr.RootRange(uint32(a))
			it1 := tr.Iter1(b1, e1)
			for i := b1; i < e1; i++ {
				bv, ok := it1.Next()
				if !ok {
					t.Fatalf("Iter1 exhausted early at %d", i)
				}
				b2, e2 := tr.ChildRange(i)
				it2 := tr.Iter2(b2, e2)
				for k := b2; k < e2; k++ {
					cv, ok := it2.Next()
					if !ok {
						t.Fatalf("Iter2 exhausted early at %d", k)
					}
					got = append(got, [3]uint32{uint32(a), uint32(bv), uint32(cv)})
				}
			}
		}
		if len(got) != len(triples) {
			t.Fatalf("cfg %+v: enumerated %d triples, want %d", cfg, len(got), len(triples))
		}
		for i := range got {
			if got[i] != triples[i] {
				t.Fatalf("cfg %+v: triple %d = %v, want %v", cfg, i, got[i], triples[i])
			}
		}
	}
}

func TestTrieRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	triples := randomTriples(rng, 2000, 100, 10, 200)
	tr := buildFrom(t, triples, 100, DefaultConfig())
	var buf bytes.Buffer
	w := codec.NewWriter(&buf)
	tr.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(codec.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTriples() != tr.NumTriples() || got.NumRoots() != tr.NumRoots() {
		t.Fatal("decoded trie header mismatch")
	}
	for _, tri := range triples {
		b1, e1 := got.RootRange(tri[0])
		j := got.FindChild1(b1, e1, tri[1])
		if j < 0 {
			t.Fatalf("decoded trie lost pair (%d, %d)", tri[0], tri[1])
		}
		b2, e2 := got.ChildRange(j)
		if got.FindChild2(b2, e2, tri[2]) < 0 {
			t.Fatalf("decoded trie lost triple %v", tri)
		}
	}
}

func TestDecodeCorruptTrie(t *testing.T) {
	var buf bytes.Buffer
	w := codec.NewWriter(&buf)
	w.Uvarint(5)                                            // n
	w.Uvarint(3)                                            // numRoots
	seq.Write(w, seq.BuildMono(seq.KindEF, []uint64{0, 1})) // wrong ptr0 length
	seq.Write(w, seq.BuildMono(seq.KindEF, []uint64{0}))
	seq.Write(w, seq.BuildMono(seq.KindEF, []uint64{0, 1}))
	seq.Write(w, seq.BuildMono(seq.KindEF, []uint64{0}))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(codec.NewReader(&buf)); err == nil {
		t.Fatal("Decode accepted inconsistent trie")
	}
}
