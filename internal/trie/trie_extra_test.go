package trie

import (
	"math/rand"
	"testing"

	"rdfindexes/internal/seq"
)

// TestAllKindCombinations builds the Fig. 1 trie with every node/pointer
// representation combination and verifies a full structural walk.
func TestAllKindCombinations(t *testing.T) {
	nodeKinds := []seq.Kind{seq.KindCompact, seq.KindEF, seq.KindPEF, seq.KindVByte, seq.KindPEFOpt}
	ptrKinds := []seq.Kind{seq.KindEF, seq.KindPEF, seq.KindVByte, seq.KindPEFOpt}
	for _, nk := range nodeKinds {
		for _, pk := range ptrKinds {
			cfg := Config{Nodes1: nk, Nodes2: nk, Ptr0: pk, Ptr1: pk}
			tr := buildFrom(t, fig1Triples, 5, cfg)
			for _, want := range fig1Triples {
				b1, e1 := tr.RootRange(want[0])
				j := tr.FindChild1(b1, e1, want[1])
				if j < 0 {
					t.Fatalf("nodes=%v ptrs=%v: lost pair (%d, %d)", nk, pk, want[0], want[1])
				}
				b2, e2 := tr.ChildRange(j)
				if tr.FindChild2(b2, e2, want[2]) < 0 {
					t.Fatalf("nodes=%v ptrs=%v: lost triple %v", nk, pk, want)
				}
			}
		}
	}
}

// TestPtr1IterMatchesChildRange verifies the sequential pointer iterator
// used by the enumerate algorithm agrees with random-access ChildRange.
func TestPtr1IterMatchesChildRange(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	triples := randomTriples(rng, 3000, 200, 15, 300)
	tr := buildFrom(t, triples, 200, DefaultConfig())
	for root := 0; root < 200; root++ {
		b1, e1 := tr.RootRange(uint32(root))
		if b1 >= e1 {
			continue
		}
		it := tr.Ptr1Iter(b1, e1+1)
		first, ok := it.Next()
		if !ok {
			t.Fatalf("root %d: pointer iterator empty", root)
		}
		prev := int(first)
		for i := b1; i < e1; i++ {
			endv, ok := it.Next()
			if !ok {
				t.Fatalf("root %d: pointer iterator exhausted at %d", root, i)
			}
			wb, we := tr.ChildRange(i)
			if prev != wb || int(endv) != we {
				t.Fatalf("root %d pos %d: iter gives (%d, %d), ChildRange gives (%d, %d)",
					root, i, prev, endv, wb, we)
			}
			prev = int(endv)
		}
	}
}

// TestNodesPointersAccessors pins the level accessor panics and sizes.
func TestNodesPointersAccessors(t *testing.T) {
	tr := buildFrom(t, fig1Triples, 5, DefaultConfig())
	if tr.Nodes(1).Len() != 8 || tr.Nodes(2).Len() != 11 {
		t.Fatalf("node level sizes: %d, %d", tr.Nodes(1).Len(), tr.Nodes(2).Len())
	}
	if tr.Pointers(0).Len() != 6 || tr.Pointers(1).Len() != 9 {
		t.Fatalf("pointer level sizes: %d, %d", tr.Pointers(0).Len(), tr.Pointers(1).Len())
	}
	for _, fn := range []func(){
		func() { tr.Nodes(0) },
		func() { tr.Nodes(3) },
		func() { tr.Pointers(2) },
		func() { tr.ChildStats(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("accessor did not panic on invalid level")
				}
			}()
			fn()
		}()
	}
}

// TestTrieSizeBitsConsistent ensures the reported size equals the sum of
// its parts (the space accounting behind every bits/triple figure).
func TestTrieSizeBitsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(277))
	triples := randomTriples(rng, 2000, 100, 10, 200)
	tr := buildFrom(t, triples, 100, DefaultConfig())
	sum := tr.Nodes(1).SizeBits() + tr.Nodes(2).SizeBits() +
		tr.Pointers(0).SizeBits() + tr.Pointers(1).SizeBits() + 2*64
	if tr.SizeBits() != sum {
		t.Fatalf("SizeBits() = %d, parts sum to %d", tr.SizeBits(), sum)
	}
}
