// Package trie implements the three-level trie layout of Section 3.1 of
// the paper: one permutation of a triple set, with the nodes of each level
// concatenated into a compressed integer sequence and sibling groups
// delimited by pointer sequences. The first level is implicit (root IDs
// form the complete range [0, numRoots)), so a trie stores four sequences:
// pointers of levels 0 and 1 and nodes of levels 1 and 2.
package trie

import (
	"errors"
	"fmt"

	"rdfindexes/internal/codec"
	"rdfindexes/internal/seq"
)

// Config selects the representation of each stored sequence.
type Config struct {
	Nodes1 seq.Kind // node IDs of the second level
	Nodes2 seq.Kind // node IDs of the third level
	Ptr0   seq.Kind // pointers of the first level
	Ptr1   seq.Kind // pointers of the second level
}

// DefaultConfig is the paper's preferred configuration: PEF for node
// sequences and plain EF for pointer sequences. (The 3T index overrides
// Nodes2 of the SPO trie to Compact; see the core package.)
func DefaultConfig() Config {
	return Config{
		Nodes1: seq.KindPEF,
		Nodes2: seq.KindPEF,
		Ptr0:   seq.KindEF,
		Ptr1:   seq.KindEF,
	}
}

// Trie is an immutable three-level trie over n triples.
type Trie struct {
	n        int
	numRoots int
	ptr0     seq.Sequence // numRoots+1 positions into nodes1
	nodes1   seq.Sequence
	ptr1     seq.Sequence // len(nodes1)+1 positions into nodes2
	nodes2   seq.Sequence
}

// ErrUnsorted reports build input that is not strictly increasing.
var ErrUnsorted = errors.New("trie: triples not sorted or not distinct")

// Build constructs a trie over n triples. at(i) must return the i-th
// triple in the permutation's component order; triples must be sorted
// lexicographically and distinct. numRoots is the size of the first
// component's ID space; every first component must be below it.
func Build(n, numRoots int, at func(int) (uint32, uint32, uint32), cfg Config) (*Trie, error) {
	ptr0 := make([]uint64, 0, numRoots+1)
	ptr1 := []uint64{}
	var nodes1, nodes2 []uint64

	var pa, pb, pc uint32
	for i := 0; i < n; i++ {
		a, b, c := at(i)
		if int(a) >= numRoots {
			return nil, fmt.Errorf("trie: root %d out of range [0, %d)", a, numRoots)
		}
		newRoot := i == 0 || a != pa
		newChild := newRoot || b != pb
		if i > 0 {
			if a < pa || (a == pa && (b < pb || (b == pb && c <= pc))) {
				return nil, fmt.Errorf("%w: position %d", ErrUnsorted, i)
			}
		}
		if newRoot {
			for len(ptr0) <= int(a) {
				ptr0 = append(ptr0, uint64(len(nodes1)))
			}
		}
		if newChild {
			nodes1 = append(nodes1, uint64(b))
			ptr1 = append(ptr1, uint64(len(nodes2)))
		}
		nodes2 = append(nodes2, uint64(c))
		pa, pb, pc = a, b, c
	}
	for len(ptr0) <= numRoots {
		ptr0 = append(ptr0, uint64(len(nodes1)))
	}
	ptr1 = append(ptr1, uint64(len(nodes2)))

	// Range delimiters for the ranged node sequences.
	ranges1 := make([]int, len(ptr0))
	for i, p := range ptr0 {
		ranges1[i] = int(p)
	}
	ranges2 := make([]int, len(ptr1))
	for i, p := range ptr1 {
		ranges2[i] = int(p)
	}

	t := &Trie{
		n:        n,
		numRoots: numRoots,
		ptr0:     seq.BuildMono(cfg.Ptr0, ptr0),
		nodes1:   seq.Build(cfg.Nodes1, nodes1, normalizeRanges(ranges1, len(nodes1))),
		ptr1:     seq.BuildMono(cfg.Ptr1, ptr1),
		nodes2:   seq.Build(cfg.Nodes2, nodes2, normalizeRanges(ranges2, len(nodes2))),
	}
	return t, nil
}

// normalizeRanges validates pointer arrays as range delimiters for
// seq.Build (first 0, last n). An empty trie (numRoots == 0) yields a
// single-entry pointer array, normalized to the trivial delimiter pair.
func normalizeRanges(ranges []int, n int) []int {
	if len(ranges) == 1 && ranges[0] == 0 && n == 0 {
		return []int{0, 0}
	}
	if len(ranges) < 2 || ranges[0] != 0 || ranges[len(ranges)-1] != n {
		panic("trie: internal pointer inconsistency")
	}
	return ranges
}

// NumTriples returns the number of triples represented.
func (t *Trie) NumTriples() int { return t.n }

// NumRoots returns the size of the first level's ID space.
func (t *Trie) NumRoots() int { return t.numRoots }

// NumInternal returns the number of nodes in the second level (the number
// of distinct first-two-component pairs).
func (t *Trie) NumInternal() int { return t.nodes1.Len() }

// RootRange returns the positions [begin, end) of root a's children in
// the second level. The range is empty when the root has no triples.
func (t *Trie) RootRange(a uint32) (begin, end int) {
	if int(a) >= t.numRoots {
		return 0, 0
	}
	b, e := t.ptr0.At2(0, int(a))
	return int(b), int(e)
}

// ChildRange returns the positions [begin, end) in the third level of the
// children of the second-level node at absolute position i.
func (t *Trie) ChildRange(i int) (begin, end int) {
	b, e := t.ptr1.At2(0, i)
	return int(b), int(e)
}

// Ptr1Iter iterates the level-1 pointer values at positions [from, to).
// Scanning consecutive sibling ranges through this iterator costs a few
// nanoseconds per pointer instead of two random accesses per child, which
// is what makes the enumerate algorithm of Fig. 5 profitable.
func (t *Trie) Ptr1Iter(from, to int) seq.Iterator {
	return t.ptr1.IterFrom(0, from, to)
}

// FindChild1 locates node ID x among the second-level nodes in
// [begin, end) and returns its absolute position, or -1.
func (t *Trie) FindChild1(begin, end int, x uint32) int {
	return t.nodes1.Find(begin, end, uint64(x))
}

// FindChild2 locates node ID x among the third-level nodes in
// [begin, end) and returns its absolute position, or -1.
func (t *Trie) FindChild2(begin, end int, x uint32) int {
	return t.nodes2.Find(begin, end, uint64(x))
}

// Node1At returns the second-level node ID at absolute position i, where
// begin is the start of the sibling range containing i.
func (t *Trie) Node1At(begin, i int) uint32 {
	return uint32(t.nodes1.At(begin, i))
}

// Node2At returns the third-level node ID at absolute position i, where
// begin is the start of the sibling range containing i.
func (t *Trie) Node2At(begin, i int) uint32 {
	return uint32(t.nodes2.At(begin, i))
}

// Iter1 iterates the second-level node IDs in [begin, end).
func (t *Trie) Iter1(begin, end int) seq.Iterator { return t.nodes1.Iter(begin, end) }

// Iter1From iterates the second-level node IDs in [from, end) where
// rangeBegin is the start of the sibling range containing from.
func (t *Trie) Iter1From(rangeBegin, from, end int) seq.Iterator {
	return t.nodes1.IterFrom(rangeBegin, from, end)
}

// Iter2 iterates the third-level node IDs in [begin, end).
func (t *Trie) Iter2(begin, end int) seq.Iterator { return t.nodes2.Iter(begin, end) }

// Nodes returns the node sequence of level 1 or 2 (the paper's levels two
// and three); used by the Table 1 micro-benchmarks.
func (t *Trie) Nodes(level int) seq.Sequence {
	switch level {
	case 1:
		return t.nodes1
	case 2:
		return t.nodes2
	}
	panic(fmt.Sprintf("trie: no node sequence at level %d", level))
}

// Pointers returns the pointer sequence of level 0 or 1.
func (t *Trie) Pointers(level int) seq.Sequence {
	switch level {
	case 0:
		return t.ptr0
	case 1:
		return t.ptr1
	}
	panic(fmt.Sprintf("trie: no pointer sequence at level %d", level))
}

// ChildStats returns the average and maximum number of children of the
// nodes at the given level (1 = roots, 2 = second level), as in Table 2.
func (t *Trie) ChildStats(level int) (avg float64, max int) {
	var ptr seq.Sequence
	var parents int
	switch level {
	case 1:
		ptr, parents = t.ptr0, t.numRoots
	case 2:
		ptr, parents = t.ptr1, t.nodes1.Len()
	default:
		panic(fmt.Sprintf("trie: no children at level %d", level))
	}
	if parents == 0 {
		return 0, 0
	}
	prev := uint64(0)
	for i := 1; i <= parents; i++ {
		cur := ptr.At(0, i)
		if d := int(cur - prev); d > max {
			max = d
		}
		prev = cur
	}
	return float64(prev) / float64(parents), max
}

// SizeBits returns the total storage footprint in bits.
func (t *Trie) SizeBits() uint64 {
	return t.ptr0.SizeBits() + t.nodes1.SizeBits() + t.ptr1.SizeBits() + t.nodes2.SizeBits() + 2*64
}

// Encode writes the trie to w.
func (t *Trie) Encode(w *codec.Writer) {
	w.Uvarint(uint64(t.n))
	w.Uvarint(uint64(t.numRoots))
	seq.Write(w, t.ptr0)
	seq.Write(w, t.nodes1)
	seq.Write(w, t.ptr1)
	seq.Write(w, t.nodes2)
}

// Decode reads a trie written by Encode.
func Decode(r *codec.Reader) (*Trie, error) {
	t := &Trie{}
	t.n = int(r.Uvarint())
	t.numRoots = int(r.Uvarint())
	var err error
	if t.ptr0, err = seq.Read(r); err != nil {
		return nil, err
	}
	if t.nodes1, err = seq.Read(r); err != nil {
		return nil, err
	}
	if t.ptr1, err = seq.Read(r); err != nil {
		return nil, err
	}
	if t.nodes2, err = seq.Read(r); err != nil {
		return nil, err
	}
	if t.ptr0.Len() != t.numRoots+1 || t.ptr1.Len() != t.nodes1.Len()+1 || t.nodes2.Len() != t.n {
		return nil, r.Fail(fmt.Errorf("%w: trie level sizes", codec.ErrCorrupt))
	}
	return t, nil
}
