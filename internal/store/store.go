// Package store bundles a compressed index with its string dictionaries
// into the on-disk store the rdfstore CLI and the query server share. A
// loaded Store is immutable: the index, the dictionaries and the lookup
// helpers below are all read-only, so one Store may serve any number of
// goroutines concurrently (the "one index, N goroutines" contract of
// internal/core). Updates go through Mutable (mutable.go), which keeps
// that contract by publishing a fresh immutable Store view per write.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"rdfindexes/internal/codec"
	"rdfindexes/internal/core"
	"rdfindexes/internal/dict"
	"rdfindexes/internal/faultfs"
	"rdfindexes/internal/rdf"
	"rdfindexes/internal/shard"
)

// MagicV1 is the legacy (unchecksummed) single-index store signature.
// V1 files still open — read-compat — but nothing verifies their bytes,
// which stats and verify surface as "unverified".
const MagicV1 = "RDFSTORE1"

// MagicShardedV1 is the legacy multi-shard store signature: magic, the
// optional dictionaries (shared by all shards), the shard count, a table
// of per-shard section byte lengths, then the shards' serialized indexes
// back to back. The length table gives every shard's file offset up
// front, so Read decodes the sections in parallel with independent
// readers.
const MagicShardedV1 = "RDFSHARD1"

// Magic is the current single-index store signature. Version 2 carries
// per-section CRC32C checksums so a flipped byte anywhere in the file is
// detected at open instead of decoding into silent garbage:
//
//	magic
//	header  = dict flag, dictionaries            | CRC32C
//	table   = one uint64 section payload length  | CRC32C
//	section = serialized index                   | CRC32C
//
// Every checksum covers exactly the bytes of its section and trails
// them, written through a counting/hashing writer at O(1) extra memory.
const Magic = "RDFSTORE2"

// MagicSharded is the current multi-shard store signature: as Magic, but
// the header additionally ends with the shard count, the table holds one
// payload length per shard, and one checksummed section follows per
// shard. Sections are still decoded in parallel; each section reader
// hashes its bytes as it goes and verifies its own trailing CRC.
const MagicSharded = "RDFSHARD2"

// CurrentVersion is the container format version Write produces.
const CurrentVersion = 2

// Integrity describes what Read verified about the container a Store
// was loaded from.
type Integrity struct {
	// Version is the container format version: 1 for the legacy
	// unchecksummed formats, 2 for the checksummed ones. 0 for views
	// that never touched disk (fresh mutable snapshots inherit the
	// loaded store's value).
	Version int
	// Verified is true when every section's CRC32C was checked at open.
	Verified bool
	// Quarantined lists shard sections that failed their checksum and
	// were excluded by a degraded open (nil after a strict Read).
	Quarantined []int
}

// Store is an index plus its dictionaries (nil Dicts for integer-only
// datasets that were built from binary triple files).
type Store struct {
	Index core.Index
	Dicts *rdf.Dicts
	// Gen is the write generation this view belongs to (0 for a store
	// loaded from disk). Mutable stamps it at publication, so a reader
	// holding the view holds its matching generation — the pair cannot
	// be torn by a concurrent write, which is what makes generation-keyed
	// response caches sound across merges (a merge remaps dictionary
	// IDs, so the same ID text means different terms across generations).
	Gen uint64
	// Integrity records the container version and checksum verification
	// outcome of the load that produced this store.
	Integrity Integrity
	// Modified is when this view came to be: the container file's mtime
	// for a store loaded from disk, the publication time for a view
	// published by Mutable. It backs the HTTP Last-Modified header, so
	// it is per-view immutable like Gen.
	Modified time.Time
}

// fsys is the filesystem the write paths go through; the crash-torture
// tests swap in a faultfs.Injector.
var fsys faultfs.FS = faultfs.OS{}

// Write serializes the store to path: magic, optional dictionaries, then
// the index — the single-index format for plain indexes, the multi-shard
// container for a *shard.Store. Only static state serializes; a serving
// view (dynamic snapshot index, overlay dictionaries) must be folded
// (merged) first.
func Write(path string, st *Store) error {
	if _, ok := st.Index.(*core.DynamicSnapshot); ok {
		return fmt.Errorf("store: index is a serving snapshot, not serializable (merge first)")
	}
	var so, p *dict.Dict
	if st.Dicts != nil {
		var ok bool
		if so, ok = st.Dicts.SO.(*dict.Dict); !ok {
			return fmt.Errorf("store: SO dictionary is not serializable (fold the overlay first)")
		}
		if p, ok = st.Dicts.P.(*dict.Dict); !ok {
			return fmt.Errorf("store: P dictionary is not serializable (fold the overlay first)")
		}
	}
	sh, sharded := st.Index.(*shard.Store)
	if sharded {
		if q := sh.Quarantined(); len(q) > 0 {
			return fmt.Errorf("store: refusing to serialize a degraded store (shards %v quarantined); rebuild from the source data", q)
		}
	}
	f, err := fsys.Create(path)
	if err != nil {
		return err
	}
	// Closed explicitly below so close-time write-back failures surface;
	// the defer only covers the error paths.
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	w := codec.NewWriter(f)
	if sharded {
		w.String(MagicSharded)
	} else {
		w.String(Magic)
	}
	// The header section (dictionaries, shard count) streams through the
	// writer's CRC32C tee; its checksum trails it.
	w.StartChecksum()
	if st.Dicts != nil {
		w.Byte(1)
		so.Encode(w)
		p.Encode(w)
	} else {
		w.Byte(0)
	}
	if sharded {
		w.Uvarint(uint64(sh.NumShards()))
	}
	w.Uint32(w.StopChecksum())
	if err := w.Flush(); err != nil {
		return err
	}
	if sharded {
		err = writeSections(f, sh.NumShards(), sh.Shard)
	} else {
		err = writeSections(f, 1, func(int) core.Index { return st.Index })
	}
	if err != nil {
		return err
	}
	// The merge path renames this file over the live store and then
	// truncates the WAL; the data must be on disk before either step,
	// or a power failure could lose WAL-acknowledged writes.
	if err := f.Sync(); err != nil {
		return err
	}
	err = f.Close()
	f = nil
	return err
}

// writeSections streams the n index sections straight to the file and
// then patches the section-length table in place: a placeholder table is
// written first, each section streams through a counting/hashing writer
// (no section is ever buffered whole, so writing costs O(1) extra memory
// regardless of store size) with its CRC32C appended right behind it,
// and a final seek pair fills in the measured lengths plus the table's
// own checksum.
func writeSections(f faultfs.File, n int, section func(int) core.Index) error {
	tablePos, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		return err
	}
	// n uint64 payload lengths followed by the table's CRC32C.
	table := make([]byte, 8*n+4)
	if _, err := f.Write(table); err != nil {
		return err
	}
	var crcBuf [4]byte
	for i := 0; i < n; i++ {
		cw := &countingWriter{w: f}
		if err := core.WriteIndex(cw, section(i)); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(crcBuf[:], cw.crc)
		if _, err := f.Write(crcBuf[:]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(table[8*i:], cw.n)
	}
	binary.LittleEndian.PutUint32(table[8*n:], crc32.Checksum(table[:8*n], codec.Castagnoli))
	if _, err := f.Seek(tablePos, io.SeekStart); err != nil {
		return err
	}
	if _, err := f.Write(table); err != nil {
		return err
	}
	_, err = f.Seek(0, io.SeekEnd)
	return err
}

// countingWriter counts and CRC32C-hashes the bytes passed through to w.
type countingWriter struct {
	w   io.Writer
	n   uint64
	crc uint32
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += uint64(n)
	c.crc = crc32.Update(c.crc, codec.Castagnoli, p[:n])
	return n, err
}

// Read loads a store written by Write, auto-detecting the four
// container formats (v1/v2, single/sharded) by their magic. Version-2
// files verify every section checksum during the load; any mismatch
// fails the open with the offending section named. Multi-shard files
// decode their shard sections in parallel.
func Read(path string) (*Store, error) { return readStore(path, false) }

// ReadDegraded loads a store like Read, but a v2 shard section that
// fails its checksum is quarantined instead of failing the open: the
// remaining shards keep serving (routed queries to the quarantined
// shard return no matches, fan-outs skip it) and the loss is recorded
// in Integrity.Quarantined for /stats and /healthz to surface. Header,
// dictionary or table corruption still fails — there is nothing to
// degrade to — as does a store with no healthy shard left.
func ReadDegraded(path string) (*Store, error) { return readStore(path, true) }

func readStore(path string, degraded bool) (st *Store, err error) {
	// Decoders assume length fields they read are self-consistent; on a
	// corrupted file that assumption can surface as a slice-bounds panic
	// before a checksum is reached. This boundary converts any such
	// panic into a corruption error: Read never takes the process down.
	defer func() {
		if p := recover(); p != nil {
			st, err = nil, fmt.Errorf("store: %s: %w: decoder panic: %v", path, codec.ErrCorrupt, p)
		}
	}()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	// One buffered stream shared by the header decoder and the section
	// loads of the single-index legacy format.
	br := bufio.NewReader(f)
	r := codec.NewReader(br)
	r.SetAllocLimit(fi.Size())
	magic := r.String()
	var v2, sharded bool
	switch magic {
	case MagicV1:
	case MagicShardedV1:
		sharded = true
	case Magic:
		v2 = true
	case MagicSharded:
		v2, sharded = true, true
	default:
		return nil, fmt.Errorf("not an rdfstore file (magic %q)", magic)
	}
	st = &Store{Integrity: Integrity{Version: 1}, Modified: fi.ModTime()}
	if v2 {
		st.Integrity = Integrity{Version: 2, Verified: true}
		r.StartChecksum()
	}
	if r.Byte() == 1 {
		so, err := dict.Decode(r)
		if err != nil {
			return nil, err
		}
		p, err := dict.Decode(r)
		if err != nil {
			return nil, err
		}
		// The O(1) Locate index is not serialized; rebuild it while the
		// dictionaries are still private to this load.
		so.BuildLocateHash()
		p.BuildLocateHash()
		st.Dicts = &rdf.Dicts{SO: so, P: p}
	}
	n := 1
	if sharded {
		n = int(r.Uvarint())
		if err := r.Err(); err != nil {
			return nil, err
		}
		if n < 1 || n > shard.MaxShards {
			return nil, fmt.Errorf("%w: shard count %d out of range [1, %d]", codec.ErrCorrupt, n, shard.MaxShards)
		}
	}
	if v2 {
		sum := r.StopChecksum()
		stored := r.Uint32()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if sum != stored {
			return nil, fmt.Errorf("%w: section header checksum mismatch (stored %08x, computed %08x)",
				codec.ErrCorrupt, stored, sum)
		}
	}
	if !v2 {
		// Legacy formats: no table for single indexes, an unchecksummed
		// length table for sharded ones. Nothing is verified.
		if sharded {
			st.Index, err = readShardsV1(f, fi.Size(), r, n)
		} else {
			if err := r.Err(); err != nil {
				return nil, err
			}
			st.Index, err = core.ReadIndexLimited(br, fi.Size())
		}
		if err != nil {
			return nil, err
		}
		return st, nil
	}

	// V2: checksummed section-length table, then one checksummed section
	// per index.
	lengths := make([]int64, n)
	var total int64
	r.StartChecksum()
	for i := range lengths {
		v := r.Uint64()
		if v > 1<<62 || int64(v) < 0 {
			return nil, fmt.Errorf("%w: section %d length %d", codec.ErrCorrupt, i, v)
		}
		lengths[i] = int64(v)
		total += lengths[i] + 4
	}
	tableSum := r.StopChecksum()
	tableStored := r.Uint32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if tableSum != tableStored {
		return nil, fmt.Errorf("%w: section table checksum mismatch (stored %08x, computed %08x)",
			codec.ErrCorrupt, tableStored, tableSum)
	}
	base := r.Read()
	if base+total != fi.Size() {
		return nil, fmt.Errorf("%w: sections cover %d bytes, file has %d after the header",
			codec.ErrCorrupt, total, fi.Size()-base)
	}
	shards := make([]core.Index, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	off := base
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int, off, length int64) {
			defer wg.Done()
			shards[i], errs[i] = readSectionChecksummed(f, off, length, sectionName(sharded, i))
		}(i, off, lengths[i])
		off += lengths[i] + 4
	}
	wg.Wait()
	if !sharded {
		if errs[0] != nil {
			return nil, errs[0]
		}
		st.Index = shards[0]
		return st, nil
	}
	var quarantined []int
	for i, err := range errs {
		if err == nil {
			continue
		}
		if !degraded {
			return nil, err
		}
		quarantined = append(quarantined, i)
		shards[i] = nil
	}
	if len(quarantined) == n {
		return nil, fmt.Errorf("store: %s: all %d shard sections failed verification: %w", path, n, errs[0])
	}
	if len(quarantined) > 0 {
		st.Index, err = shard.NewDegraded(shards)
	} else {
		st.Index, err = shard.New(shards)
	}
	if err != nil {
		return nil, err
	}
	st.Integrity.Quarantined = quarantined
	return st, nil
}

// sectionName names an index section for error reports.
func sectionName(sharded bool, i int) string {
	if sharded {
		return fmt.Sprintf("shard %d", i)
	}
	return "index"
}

// readSectionChecksummed loads one v2 index section: the payload bytes
// at [off, off+length) are decoded while streaming through a CRC32C
// hash, and the section's trailing stored checksum must match — whether
// or not the decode succeeded, so a flipped byte that still parses is
// caught, and one that breaks parsing is reported as the checksum
// mismatch it is.
func readSectionChecksummed(f *os.File, off, length int64, name string) (core.Index, error) {
	sr := io.NewSectionReader(f, off, length)
	h := crc32.New(codec.Castagnoli)
	br := bufio.NewReader(io.TeeReader(sr, h))
	x, decodeErr := core.ReadIndexLimited(br, length)
	// Hash whatever the decoder did not consume so the checksum always
	// covers the full section.
	if _, err := io.Copy(io.Discard, br); err != nil {
		return nil, fmt.Errorf("store: section %s: %w", name, err)
	}
	var crcb [4]byte
	if _, err := f.ReadAt(crcb[:], off+length); err != nil {
		return nil, fmt.Errorf("%w: section %s checksum missing: %v", codec.ErrCorrupt, name, err)
	}
	if stored := binary.LittleEndian.Uint32(crcb[:]); h.Sum32() != stored {
		return nil, fmt.Errorf("%w: section %s checksum mismatch (stored %08x, computed %08x)",
			codec.ErrCorrupt, name, stored, h.Sum32())
	}
	if decodeErr != nil {
		// The bytes verify but do not parse: a writer/decoder version
		// mismatch rather than storage corruption.
		return nil, fmt.Errorf("store: section %s: %w", name, decodeErr)
	}
	return x, nil
}

// readShardsV1 decodes the unchecksummed shard table of a legacy
// multi-shard store and loads every shard section concurrently through
// an independent section reader. r must be positioned at the length
// table; its consumed-byte counter gives the file offset of the first
// section (every header byte passes through it).
func readShardsV1(f *os.File, size int64, r *codec.Reader, n int) (*shard.Store, error) {
	lengths := make([]int64, n)
	var total int64
	for i := range lengths {
		v := r.Uint64()
		if v > 1<<62 || int64(v) < 0 {
			return nil, fmt.Errorf("%w: shard %d section length %d", codec.ErrCorrupt, i, v)
		}
		lengths[i] = int64(v)
		total += lengths[i]
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	base := r.Read()
	if base+total != size {
		return nil, fmt.Errorf("%w: shard sections cover %d bytes, file has %d after the header",
			codec.ErrCorrupt, total, size-base)
	}
	shards := make([]core.Index, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	off := base
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int, off, length int64) {
			defer wg.Done()
			shards[i], errs[i] = core.ReadIndexLimited(io.NewSectionReader(f, off, length), length)
		}(i, off, lengths[i])
		off += lengths[i]
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return shard.New(shards)
}

// IsSharded reports whether the file at path is a multi-shard store,
// by sniffing its magic — no index data is decoded, so callers that
// must branch on shardedness before committing to a full load (the
// mutable open path) stay O(1).
func IsSharded(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	r := codec.NewReader(f)
	magic := r.String()
	if err := r.Err(); err != nil {
		return false, err
	}
	switch magic {
	case MagicV1, Magic:
		return false, nil
	case MagicShardedV1, MagicSharded:
		return true, nil
	}
	return false, fmt.Errorf("not an rdfstore file (magic %q)", magic)
}

// Shards returns the shard count of the store's index: the partition
// width for a sharded index, 1 for everything else.
func (st *Store) Shards() int {
	if sh, ok := st.Index.(*shard.Store); ok {
		return sh.NumShards()
	}
	return 1
}

// ParseTerm interprets a query term: "?" (or empty) is a wildcard, <...>
// and quoted literals go through the dictionary (the predicate
// dictionary when predicate is true), bare integers are raw IDs.
func (st *Store) ParseTerm(s string, predicate bool) (core.ID, error) {
	if s == "?" || s == "" {
		return core.Wildcard, nil
	}
	if strings.HasPrefix(s, "<") || strings.HasPrefix(s, "\"") || strings.HasPrefix(s, "_:") {
		if st.Dicts == nil {
			return 0, fmt.Errorf("store has no dictionary; use integer IDs")
		}
		d := st.Dicts.SO
		if predicate {
			d = st.Dicts.P
		}
		id, ok := d.Locate(s)
		if !ok {
			return 0, fmt.Errorf("term %s not in dictionary", s)
		}
		return core.ID(id), nil
	}
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("term %q is neither ?, a <uri>, a literal, nor an integer ID", s)
	}
	return core.ID(v), nil
}

// ParsePattern resolves the three term strings of a selection pattern.
func (st *Store) ParsePattern(s, p, o string) (core.Pattern, error) {
	var pat core.Pattern
	var err error
	if pat.S, err = st.ParseTerm(s, false); err != nil {
		return pat, err
	}
	if pat.P, err = st.ParseTerm(p, true); err != nil {
		return pat, err
	}
	if pat.O, err = st.ParseTerm(o, false); err != nil {
		return pat, err
	}
	return pat, nil
}

// Render maps a subject/object ID back to its term, falling back to
// <id> notation for integer-only stores.
func (st *Store) Render(id core.ID) string {
	if st.Dicts != nil {
		if s, ok := st.Dicts.SO.Extract(int(id)); ok {
			return s
		}
	}
	return fmt.Sprintf("<%d>", id)
}

// RenderPredicate maps a predicate ID back to its term.
func (st *Store) RenderPredicate(id core.ID) string {
	if st.Dicts != nil {
		if s, ok := st.Dicts.P.Extract(int(id)); ok {
			return s
		}
	}
	return fmt.Sprintf("<%d>", id)
}

// TranslateQuery rewrites URI/literal constants of a BGP query into
// dictionary IDs so the integer-level sparql parser can handle it.
// Constants in predicate position use the predicate dictionary;
// subject/object positions use the shared SO dictionary. The body is
// tokenized term-aware — dots inside <IRI>s and "literal"s (near
// universal in real RDF) are not pattern separators.
func (st *Store) TranslateQuery(qs string) (string, error) {
	open := strings.IndexByte(qs, '{')
	close := strings.LastIndexByte(qs, '}')
	if open < 0 || close < open {
		return "", fmt.Errorf("query has no { ... } block")
	}
	head := qs[:open+1]
	toks, err := tokenizeBGPBody(qs[open+1 : close])
	if err != nil {
		return "", err
	}
	var out strings.Builder
	out.WriteString(head)
	for len(toks) > 0 {
		if len(toks) < 3 {
			return "", fmt.Errorf("triple pattern %q does not have 3 terms", strings.Join(toks, " "))
		}
		for pos, f := range toks[:3] {
			if f == "." {
				return "", fmt.Errorf("triple pattern ends after %d terms", pos)
			}
			out.WriteByte(' ')
			if strings.HasPrefix(f, "?") || isNumericIRI(f) {
				out.WriteString(f)
				continue
			}
			if st.Dicts == nil {
				return "", fmt.Errorf("store has no dictionary; use <id> constants")
			}
			d := st.Dicts.SO
			if pos == 1 {
				d = st.Dicts.P
			}
			id, ok := d.Locate(f)
			if !ok {
				return "", fmt.Errorf("term %s not in dictionary", f)
			}
			fmt.Fprintf(&out, "<%d>", id)
		}
		toks = toks[3:]
		// The separating dot is mandatory between patterns, optional
		// after the last one.
		if len(toks) > 0 {
			if toks[0] != "." {
				return "", fmt.Errorf("expected '.' after triple pattern, got %q", toks[0])
			}
			toks = toks[1:]
		}
		out.WriteString(" .")
	}
	out.WriteString(" }")
	return out.String(), nil
}

// tokenizeBGPBody splits a BGP body into terms and "." separators. A
// dot is a separator only outside <...> and "..." spans; literals keep
// any @lang or ^^<datatype> suffix attached.
func tokenizeBGPBody(body string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(body) {
		c := body[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '.':
			toks = append(toks, ".")
			i++
		case c == '<':
			j := strings.IndexByte(body[i:], '>')
			if j < 0 {
				return nil, fmt.Errorf("unterminated <...> in BGP")
			}
			toks = append(toks, body[i:i+j+1])
			i += j + 1
		case c == '"':
			j := i + 1
			for j < len(body) {
				if body[j] == '\\' {
					j += 2
					continue
				}
				if body[j] == '"' {
					break
				}
				j++
			}
			if j >= len(body) {
				return nil, fmt.Errorf("unterminated string literal in BGP")
			}
			j++ // closing quote
			// Attached @lang or ^^<datatype> suffix; a bare '.' after
			// the quote stays a pattern separator.
			if j < len(body) && body[j] == '@' {
				j++
				for j < len(body) && (isNameByte(body[j]) || body[j] == '-') {
					j++
				}
			} else if j+1 < len(body) && body[j] == '^' && body[j+1] == '^' {
				j += 2
				if j < len(body) && body[j] == '<' {
					k := strings.IndexByte(body[j:], '>')
					if k < 0 {
						return nil, fmt.Errorf("unterminated datatype IRI in BGP")
					}
					j += k + 1
				}
			}
			toks = append(toks, body[i:j])
			i = j
		default:
			// Bare token (?var, _:blank, keyword): runs to whitespace or
			// a separating dot.
			j := i
			for j < len(body) && !isSpaceByte(body[j]) && body[j] != '.' {
				j++
			}
			toks = append(toks, body[i:j])
			i = j
		}
	}
	return toks, nil
}

func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func isNumericIRI(s string) bool {
	if !strings.HasPrefix(s, "<") || !strings.HasSuffix(s, ">") {
		return false
	}
	body := s[1 : len(s)-1]
	if body == "" {
		return false
	}
	for _, c := range body {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}
