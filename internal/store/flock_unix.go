//go:build unix

package store

import (
	"syscall"
)

// flockExclusive takes a non-blocking exclusive advisory lock on f,
// held until the file handle closes (including on process death, which
// is what makes it safe as a liveness-scoped store lock). The interface
// admits both *os.File and the faultfs wrappers.
func flockExclusive(f interface{ Fd() uintptr }) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
