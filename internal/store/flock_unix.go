//go:build unix

package store

import (
	"os"
	"syscall"
)

// flockExclusive takes a non-blocking exclusive advisory lock on f,
// held until the file handle closes (including on process death, which
// is what makes it safe as a liveness-scoped store lock).
func flockExclusive(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
