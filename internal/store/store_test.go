package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rdfindexes/internal/core"
	"rdfindexes/internal/rdf"
)

const sampleNT = `<http://ex/alice> <http://ex/knows> <http://ex/bob> .
<http://ex/bob> <http://ex/knows> <http://ex/carol> .
<http://ex/alice> <http://ex/age> "30" .
<http://ex/carol> <http://ex/knows> <http://ex/alice> .
`

func buildSample(t *testing.T, layout core.Layout) *Store {
	t.Helper()
	statements, err := rdf.ParseAll(strings.NewReader(sampleNT))
	if err != nil {
		t.Fatal(err)
	}
	d, dicts, err := rdf.Encode(statements)
	if err != nil {
		t.Fatal(err)
	}
	x, err := core.Build(d, layout)
	if err != nil {
		t.Fatal(err)
	}
	return &Store{Index: x, Dicts: dicts}
}

func TestStoreRoundTrip(t *testing.T) {
	for _, layout := range []core.Layout{core.Layout3T, core.LayoutCC, core.Layout2Tp, core.Layout2To} {
		t.Run(layout.String(), func(t *testing.T) {
			st := buildSample(t, layout)
			path := filepath.Join(t.TempDir(), "store.idx")
			if err := Write(path, st); err != nil {
				t.Fatal(err)
			}
			got, err := Read(path)
			if err != nil {
				t.Fatal(err)
			}
			if got.Index.Layout() != layout || got.Index.NumTriples() != st.Index.NumTriples() {
				t.Fatalf("round trip changed the index: %v/%d", got.Index.Layout(), got.Index.NumTriples())
			}
			pat, err := got.ParsePattern("<http://ex/alice>", "?", "?")
			if err != nil {
				t.Fatal(err)
			}
			if n := got.Index.Select(pat).Count(); n != 2 {
				t.Fatalf("alice has %d triples, want 2", n)
			}
		})
	}
}

func TestParseTerm(t *testing.T) {
	st := buildSample(t, core.Layout2Tp)
	if id, err := st.ParseTerm("?", false); err != nil || id != core.Wildcard {
		t.Fatalf("wildcard: %v %v", id, err)
	}
	if id, err := st.ParseTerm("", false); err != nil || id != core.Wildcard {
		t.Fatalf("empty: %v %v", id, err)
	}
	if _, err := st.ParseTerm("<http://ex/nobody>", false); err == nil {
		t.Fatal("unknown term accepted")
	}
	if id, err := st.ParseTerm("3", false); err != nil || id != 3 {
		t.Fatalf("integer ID: %v %v", id, err)
	}
	if _, err := st.ParseTerm("bogus term", false); err == nil {
		t.Fatal("garbage term accepted")
	}
	// Predicate terms resolve through the predicate dictionary.
	pid, err := st.ParseTerm("<http://ex/knows>", true)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.RenderPredicate(pid); got != "<http://ex/knows>" {
		t.Fatalf("predicate render: %q", got)
	}
	// Literals resolve through the SO dictionary.
	if _, err := st.ParseTerm("\"30\"", false); err != nil {
		t.Fatalf("literal: %v", err)
	}
}

func TestTranslateQuery(t *testing.T) {
	st := buildSample(t, core.Layout2Tp)
	out, err := st.TranslateQuery("SELECT ?x WHERE { ?x <http://ex/knows> <http://ex/bob> . }")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "http://") {
		t.Fatalf("translation left URIs behind: %s", out)
	}
	if _, err := st.TranslateQuery("SELECT ?x WHERE { ?x <http://ex/knows> . }"); err == nil {
		t.Fatal("2-term pattern accepted")
	}
	if _, err := st.TranslateQuery("no braces"); err == nil {
		t.Fatal("query without block accepted")
	}
	if _, err := st.TranslateQuery("SELECT ?x WHERE { ?x <http://ex/missing> ?y . }"); err == nil {
		t.Fatal("unknown predicate accepted")
	}
}

// TestTranslateQueryDottedTerms covers real-world RDF spellings: IRIs
// with dots (virtually all of them), literals with dots, datatype and
// language suffixes, and a separator dot glued to a term.
func TestTranslateQueryDottedTerms(t *testing.T) {
	nt := `<http://example.org/alice> <http://xmlns.com/foaf/0.1/knows> <http://example.org/bob> .
<http://example.org/alice> <http://example.org/version> "v1.0" .
`
	statements, err := rdf.ParseAll(strings.NewReader(nt))
	if err != nil {
		t.Fatal(err)
	}
	d, dicts, err := rdf.Encode(statements)
	if err != nil {
		t.Fatal(err)
	}
	x, err := core.Build(d, core.Layout2Tp)
	if err != nil {
		t.Fatal(err)
	}
	st := &Store{Index: x, Dicts: dicts}

	for _, q := range []string{
		"SELECT ?x WHERE { ?x <http://xmlns.com/foaf/0.1/knows> <http://example.org/bob> . }",
		"SELECT ?x WHERE { ?x <http://example.org/version> \"v1.0\" . }",
		// Two patterns, separator dot between them, none at the end.
		"SELECT ?x ?y WHERE { ?x <http://xmlns.com/foaf/0.1/knows> ?y . ?x <http://example.org/version> \"v1.0\" }",
		// Separator dot glued to the closing term.
		"SELECT ?x WHERE { ?x <http://example.org/version> \"v1.0\". }",
	} {
		out, err := st.TranslateQuery(q)
		if err != nil {
			t.Errorf("TranslateQuery(%q): %v", q, err)
			continue
		}
		if strings.Contains(out, "http") {
			t.Errorf("TranslateQuery(%q) left terms untranslated: %s", q, out)
		}
	}

	if _, err := st.TranslateQuery("SELECT ?x WHERE { ?x <http://unterminated }"); err == nil {
		t.Error("unterminated IRI accepted")
	}
	if _, err := st.TranslateQuery("SELECT ?x WHERE { ?x <http://example.org/version> \"unterminated }"); err == nil {
		t.Error("unterminated literal accepted")
	}
	if _, err := st.TranslateQuery("SELECT ?x WHERE { ?x ?y . }"); err == nil {
		t.Error("2-term pattern accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.idx")
	if err := os.WriteFile(path, []byte("not a store"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("garbage file accepted")
	}
}
