package store

import (
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"rdfindexes/internal/codec"
	"rdfindexes/internal/core"
)

// benchFile lazily builds one moderately sized container on disk and
// reuses it across the container benchmarks. The dataset shape (many
// subjects, few predicates, skewed objects) loosely follows the RDF
// benchmark presets.
var benchFile struct {
	once sync.Once
	path string
	st   *Store
	size int64
	err  error
}

func benchContainer(b *testing.B) (string, *Store, int64) {
	b.Helper()
	benchFile.once.Do(func() {
		var ts []core.Triple
		for i := 0; i < 300_000; i++ {
			ts = append(ts, core.Triple{
				S: core.ID(i % 20_011), P: core.ID(i % 19), O: core.ID((i * 31) % 9973),
			})
		}
		x, err := core.Build(core.NewDataset(ts), core.Layout2Tp)
		if err != nil {
			benchFile.err = err
			return
		}
		dir, err := os.MkdirTemp("", "storebench")
		if err != nil {
			benchFile.err = err
			return
		}
		benchFile.path = filepath.Join(dir, "bench.idx")
		benchFile.st = &Store{Index: x}
		if err := Write(benchFile.path, benchFile.st); err != nil {
			benchFile.err = err
			return
		}
		fi, err := os.Stat(benchFile.path)
		if err != nil {
			benchFile.err = err
			return
		}
		benchFile.size = fi.Size()
	})
	if benchFile.err != nil {
		b.Fatal(benchFile.err)
	}
	return benchFile.path, benchFile.st, benchFile.size
}

// BenchmarkWriteV2 measures writing the checksummed v2 container
// (CRC32C is folded into the buffered writer, so this is the full
// serialization cost including checksumming).
func BenchmarkWriteV2(b *testing.B) {
	path, st, size := benchContainer(b)
	out := filepath.Join(filepath.Dir(path), "write.idx")
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Write(out, st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadV2 measures opening the v2 container with every section
// checksum verified (the default read path).
func BenchmarkReadV2(b *testing.B) {
	path, _, size := benchContainer(b)
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(path); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerify measures the standalone integrity scan (`rdfstore
// verify`): decode-free section checksum passes.
func BenchmarkVerify(b *testing.B) {
	path, _, size := benchContainer(b)
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Verify(path)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.OK {
			b.Fatal("bench container failed verification")
		}
	}
}

// BenchmarkChecksumPass isolates the marginal cost verification adds to
// a read: one CRC32C pass over the container bytes. Compare against
// BenchmarkReadV2 to see what fraction of open time checksumming is.
func BenchmarkChecksumPass(b *testing.B) {
	path, _, size := benchContainer(b)
	data, err := os.ReadFile(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if crc32.Checksum(data, codec.Castagnoli) == 0 {
			b.Fatal("degenerate checksum")
		}
	}
}
