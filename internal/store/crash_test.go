package store

import (
	"fmt"
	"testing"

	"rdfindexes/internal/core"
	"rdfindexes/internal/faultfs"
)

// tortureOp is one step of the crash-torture workload: an insert, a
// delete, or an explicit merge.
type tortureOp struct {
	kind    byte // 'I', 'D', 'M'
	s, p, o string
}

// tortureWorkload mixes inserts of new terms, a delete of a base
// triple, churn on a fresh triple, and an explicit merge; with a merge
// threshold of 3 the later writes also trigger an automatic merge, so
// the crash sweep covers WAL appends, syncs, the store rewrite, the
// rename, and the WAL truncation.
func tortureWorkload() []tortureOp {
	return []tortureOp{
		{'I', "<http://ex/t1>", "<http://ex/knows>", "<http://ex/alice>"},
		{'I', "<http://ex/t2>", "<http://ex/knows>", `"v2"`},
		{'D', "<http://ex/alice>", "<http://ex/knows>", "<http://ex/bob>"},
		{'M', "", "", ""},
		{'I', "<http://ex/t3>", "<http://ex/admires>", "<http://ex/t1>"},
		{'D', "<http://ex/t2>", "<http://ex/knows>", `"v2"`},
		{'I', "<http://ex/t4>", "<http://ex/knows>", "<http://ex/t2>"},
	}
}

// dumpTriples renders the view's full logical triple set.
func dumpTriples(t *testing.T, st *Store) map[string]bool {
	t.Helper()
	pat, err := st.ParsePattern("?", "?", "?")
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[string]bool)
	it := st.Index.Select(pat)
	for {
		tr, ok := it.Next()
		if !ok {
			break
		}
		set[st.Render(tr.S)+" "+st.RenderPredicate(tr.P)+" "+st.Render(tr.O)] = true
	}
	return set
}

// applyExpected advances the oracle triple set by one workload op.
func applyExpected(set map[string]bool, op tortureOp) map[string]bool {
	next := make(map[string]bool, len(set)+1)
	for k := range set {
		next[k] = true
	}
	key := op.s + " " + op.p + " " + op.o
	switch op.kind {
	case 'I':
		next[key] = true
	case 'D':
		delete(next, key)
	}
	return next
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// runTortureWorkload opens the store and drives the workload until the
// first failure, returning how many ops were acknowledged and whether
// one was in flight when the failure hit.
func runTortureWorkload(path string, ops []tortureOp) (acked int, inFlight bool) {
	m, err := OpenMutable(path, 3)
	if err != nil {
		return 0, false
	}
	defer m.Close()
	for _, op := range ops {
		switch op.kind {
		case 'I':
			_, err = m.Insert(op.s, op.p, op.o)
		case 'D':
			_, err = m.Delete(op.s, op.p, op.o)
		case 'M':
			err = m.Merge()
		}
		if err != nil {
			return acked, true
		}
		acked++
	}
	return acked, false
}

// TestCrashTorture simulates a crash at every faultable filesystem
// operation of an insert/delete/merge workload — in both crash models:
// writes-survive (the filesystem kept everything already issued) and
// unsynced-dropped (power failure discarded everything not fsynced) —
// and asserts that the store reopens cleanly each time with no
// acknowledged write lost: the recovered triple set must equal the
// oracle set after exactly the acknowledged ops, except that the single
// in-flight op may additionally have landed (it became durable before
// its acknowledgment could be delivered — a lost ack, not a lost or
// phantom write).
func TestCrashTorture(t *testing.T) {
	ops := tortureWorkload()
	for _, drop := range []bool{false, true} {
		name := "writes-survive"
		if drop {
			name = "unsynced-dropped"
		}
		t.Run(name, func(t *testing.T) {
			// Clean instrumented pass: learn the total operation count and
			// the oracle end state.
			path := buildTestStore(t, t.TempDir(), core.Layout2Tp)
			inj := faultfs.NewInjector(faultfs.OS{})
			inj.DropUnsynced = drop
			fsys = inj
			acked, inFlight := runTortureWorkload(path, ops)
			fsys = faultfs.OS{}
			if acked != len(ops) || inFlight {
				t.Fatalf("clean pass failed: acked %d of %d", acked, len(ops))
			}
			totalOps := inj.Ops()
			if totalOps < 20 {
				t.Fatalf("suspiciously few faultable ops (%d); is fsys wired through the write paths?", totalOps)
			}

			// Oracle states: expected[i] is the triple set after i acked ops.
			expected := make([]map[string]bool, len(ops)+1)
			st, err := Read(path)
			if err != nil {
				t.Fatal(err)
			}
			base := dumpTriples(t, st)
			// The clean pass ends with every op applied; rebuild the
			// initial set by replaying the oracle backwards from a fresh
			// store instead — simpler: build a fresh store per crash point
			// below, and derive expected[0] from it once here.
			freshPath := buildTestStore(t, t.TempDir(), core.Layout2Tp)
			fresh, err := Read(freshPath)
			if err != nil {
				t.Fatal(err)
			}
			expected[0] = dumpTriples(t, fresh)
			for i, op := range ops {
				expected[i+1] = applyExpected(expected[i], op)
			}
			if !sameSet(base, expected[len(ops)]) {
				t.Fatalf("oracle diverges from the clean pass: %v vs %v", base, expected[len(ops)])
			}

			for crashAt := 1; crashAt <= totalOps; crashAt++ {
				t.Run(fmt.Sprintf("op%03d", crashAt), func(t *testing.T) {
					path := buildTestStore(t, t.TempDir(), core.Layout2Tp)
					inj := faultfs.NewInjector(faultfs.OS{})
					inj.DropUnsynced = drop
					inj.CrashAtOp(crashAt)
					fsys = inj
					acked, inFlight := runTortureWorkload(path, ops)
					fsys = faultfs.OS{}
					if !inj.Crashed() {
						t.Fatalf("crash point %d never fired (%d ops observed)", crashAt, inj.Ops())
					}

					m, err := OpenMutable(path, 3)
					if err != nil {
						t.Fatalf("store did not reopen after crash at op %d (acked %d): %v", crashAt, acked, err)
					}
					defer m.Close()
					if rec := m.Recovery(); rec.Corrupt {
						t.Fatalf("crash at op %d left a WAL the replay flags as corrupt: %+v", crashAt, rec)
					}
					got := dumpTriples(t, m.View())
					if sameSet(got, expected[acked]) {
						return
					}
					if inFlight && acked < len(ops) && sameSet(got, expected[acked+1]) {
						return // the in-flight op landed; only its ack was lost
					}
					t.Fatalf("crash at op %d: reopened set %v matches neither %d acked ops %v nor acked+in-flight %v",
						crashAt, got, acked, expected[acked], expected[acked+1])
				})
			}
		})
	}
}
