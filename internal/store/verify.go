package store

import (
	"bufio"
	"fmt"
	"os"
	"sync"

	"rdfindexes/internal/codec"
	"rdfindexes/internal/dict"
	"rdfindexes/internal/shard"
)

// SectionStatus is one section's verification outcome.
type SectionStatus struct {
	// Name identifies the section: "magic", "header", "table", "index",
	// "shard N", "wal", or "container" for legacy formats verified only
	// by a full decode.
	Name string `json:"name"`
	// Bytes is the section's size where known (0 when the walk could not
	// establish it).
	Bytes int64 `json:"bytes,omitempty"`
	// OK is false when the section failed its checksum or decode.
	OK bool `json:"ok"`
	// Error describes the failure.
	Error string `json:"error,omitempty"`
}

// VerifyReport is the per-section integrity report behind `rdfstore
// verify`.
type VerifyReport struct {
	Path string `json:"path"`
	// Version is the container format version (2 carries checksums).
	Version int  `json:"version"`
	Sharded bool `json:"sharded"`
	Shards  int  `json:"shards,omitempty"`
	// Verified is true when the format carries checksums, so OK means
	// "bytes proven intact" rather than merely "bytes still decode".
	Verified bool `json:"verified"`
	// OK is true when no section failed.
	OK       bool            `json:"ok"`
	Sections []SectionStatus `json:"sections"`
	// WAL reports the write-ahead log scan when one exists next to the
	// store (nil otherwise).
	WAL *WALRecovery `json:"wal,omitempty"`
}

// fail records one failed section and flips the report.
func (rep *VerifyReport) fail(name string, bytes int64, err error) {
	rep.OK = false
	rep.Sections = append(rep.Sections, SectionStatus{Name: name, Bytes: bytes, Error: err.Error()})
}

func (rep *VerifyReport) pass(name string, bytes int64) {
	rep.Sections = append(rep.Sections, SectionStatus{Name: name, Bytes: bytes, OK: true})
}

// Verify checks the store at path section by section and reports every
// failure instead of stopping at the first, so an operator sees the full
// extent of the damage (one flipped sector vs. a truncated half). Unlike
// Read it does not stop at the first bad section and does not need the
// whole store to be loadable. The returned error covers only
// environmental problems (the file cannot be opened or statted);
// corruption is reported through the report itself.
func Verify(path string) (rep *VerifyReport, err error) {
	rep = &VerifyReport{Path: path, OK: true}
	defer func() {
		if p := recover(); p != nil {
			rep.fail("container", 0, fmt.Errorf("%w: decoder panic: %v", codec.ErrCorrupt, p))
			err = nil
		}
	}()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(f)
	r := codec.NewReader(br)
	r.SetAllocLimit(fi.Size())
	magic := r.String()
	if err := r.Err(); err != nil {
		rep.fail("magic", r.Read(), err)
		return rep, nil
	}
	var v2 bool
	switch magic {
	case MagicV1:
		rep.Version = 1
	case MagicShardedV1:
		rep.Version, rep.Sharded = 1, true
	case Magic:
		rep.Version, v2 = 2, true
	case MagicSharded:
		rep.Version, rep.Sharded, v2 = 2, true, true
	default:
		rep.fail("magic", r.Read(), fmt.Errorf("not an rdfstore file (magic %q)", magic))
		return rep, nil
	}
	rep.Verified = v2
	if !v2 {
		// Legacy formats carry no checksums; the only verification
		// available is a full decode, which proves self-consistency but
		// not byte-for-byte integrity.
		if _, rerr := Read(path); rerr != nil {
			rep.fail("container", fi.Size(), rerr)
		} else {
			rep.pass("container", fi.Size())
		}
		rep.verifyWAL(path)
		return rep, nil
	}

	// Header: dictionary flag + dictionaries (+ shard count), then its CRC.
	headerStart := r.Read()
	r.StartChecksum()
	hasDicts := r.Byte() == 1
	if hasDicts {
		if _, derr := dict.Decode(r); derr != nil {
			rep.fail("header", r.Read()-headerStart, fmt.Errorf("SO dictionary: %w", derr))
			return rep, nil
		}
		if _, derr := dict.Decode(r); derr != nil {
			rep.fail("header", r.Read()-headerStart, fmt.Errorf("P dictionary: %w", derr))
			return rep, nil
		}
	}
	n := 1
	if rep.Sharded {
		n = int(r.Uvarint())
		if n < 1 || n > shard.MaxShards {
			rep.fail("header", r.Read()-headerStart, fmt.Errorf("%w: shard count %d out of range [1, %d]", codec.ErrCorrupt, n, shard.MaxShards))
			return rep, nil
		}
		rep.Shards = n
	}
	sum := r.StopChecksum()
	stored := r.Uint32()
	if err := r.Err(); err != nil {
		rep.fail("header", r.Read()-headerStart, err)
		return rep, nil
	}
	if sum != stored {
		// The dictionaries decoded, so the header's *shape* is plausible;
		// section offsets below may still be sound. Keep going — reporting
		// what else is damaged is this function's purpose.
		rep.fail("header", r.Read()-headerStart, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", codec.ErrCorrupt, stored, sum))
	} else {
		rep.pass("header", r.Read()-headerStart)
	}

	// Section-length table + its CRC.
	tableStart := r.Read()
	lengths := make([]int64, n)
	var total int64
	r.StartChecksum()
	for i := range lengths {
		v := r.Uint64()
		if v > 1<<62 || int64(v) < 0 {
			rep.fail("table", r.Read()-tableStart, fmt.Errorf("%w: section %d length %d", codec.ErrCorrupt, i, v))
			return rep, nil
		}
		lengths[i] = int64(v)
		total += lengths[i] + 4
	}
	tableSum := r.StopChecksum()
	tableStored := r.Uint32()
	if err := r.Err(); err != nil {
		rep.fail("table", r.Read()-tableStart, err)
		return rep, nil
	}
	if tableSum != tableStored {
		rep.fail("table", r.Read()-tableStart, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", codec.ErrCorrupt, tableStored, tableSum))
		return rep, nil // offsets below would be untrustworthy
	}
	base := r.Read()
	if base+total != fi.Size() {
		rep.fail("table", r.Read()-tableStart, fmt.Errorf("%w: sections cover %d bytes, file has %d after the header",
			codec.ErrCorrupt, total, fi.Size()-base))
		return rep, nil
	}
	rep.pass("table", r.Read()-tableStart)

	// Every index section, in parallel, each hashed and decoded
	// independently — a failure in one does not stop the others.
	type result struct {
		name string
		size int64
		err  error
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	off := base
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int, off, length int64) {
			defer wg.Done()
			name := sectionName(rep.Sharded, i)
			_, serr := readSectionChecksummed(f, off, length, name)
			results[i] = result{name: name, size: length, err: serr}
		}(i, off, lengths[i])
		off += lengths[i] + 4
	}
	wg.Wait()
	for _, res := range results {
		if res.err != nil {
			rep.fail(res.name, res.size, res.err)
		} else {
			rep.pass(res.name, res.size)
		}
	}
	rep.verifyWAL(path)
	return rep, nil
}

// verifyWAL scans the write-ahead log next to the store, when one
// exists, by replaying it read-only through the identical recovery path
// a serving open uses — so "verify says clean" and "the server opens it"
// cannot disagree. A WAL next to a sharded store is an orphan (left by
// an in-place rebuild) and is reported as harmless.
func (rep *VerifyReport) verifyWAL(path string) {
	if _, err := os.Stat(path + WALSuffix); err != nil {
		return // no WAL (or it vanished); nothing to scan
	}
	if rep.Sharded {
		rep.pass("wal", 0)
		return
	}
	if !rep.OK {
		// The store itself is damaged; the WAL replays against its terms,
		// so a scan would only report noise.
		return
	}
	m, err := openMutable(path, -1, false)
	if err != nil {
		rep.fail("wal", 0, err)
		return
	}
	rec := m.Recovery()
	m.Close()
	rep.WAL = &rec
	if rec.Corrupt {
		rep.OK = false
	}
}
