package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rdfindexes/internal/core"
	"rdfindexes/internal/rdf"
)

// buildTestStore writes a small dictionary store to dir and returns its
// path.
func buildTestStore(t *testing.T, dir string, layout core.Layout) string {
	t.Helper()
	nt := `<http://ex/alice> <http://ex/knows> <http://ex/bob> .
<http://ex/bob> <http://ex/knows> <http://ex/carol> .
<http://ex/alice> <http://ex/likes> "cheese" .
<http://ex/carol> <http://ex/likes> "wine"@fr .
`
	statements, err := rdf.ParseAll(strings.NewReader(nt))
	if err != nil {
		t.Fatal(err)
	}
	d, dicts, err := rdf.Encode(statements)
	if err != nil {
		t.Fatal(err)
	}
	x, err := core.Build(d, layout)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "test.idx")
	if err := Write(path, &Store{Index: x, Dicts: dicts}); err != nil {
		t.Fatal(err)
	}
	return path
}

// countMatches resolves a pattern of term strings on the view.
func countMatches(t *testing.T, st *Store, s, p, o string) int {
	t.Helper()
	pat, err := st.ParsePattern(s, p, o)
	if err != nil {
		t.Fatalf("ParsePattern(%q,%q,%q): %v", s, p, o, err)
	}
	return st.Index.Select(pat).Count()
}

func TestMutableInsertDeleteOverlay(t *testing.T) {
	dir := t.TempDir()
	path := buildTestStore(t, dir, core.Layout2Tp)
	m, err := OpenMutable(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	v0 := m.View()
	if n := v0.Index.NumTriples(); n != 4 {
		t.Fatalf("initial triples = %d, want 4", n)
	}
	gen0 := m.Generation()

	// Insert with a brand-new IRI and a brand-new predicate.
	res, err := m.Insert("<http://ex/dave>", "<http://ex/admires>", "<http://ex/alice>")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Changed || res.Triples != 5 || res.LogSize != 1 {
		t.Fatalf("insert result %+v", res)
	}
	if m.Generation() == gen0 {
		t.Fatal("generation did not advance on a changing write")
	}
	// The pre-write view is isolated; the new view sees the triple with
	// both new terms resolvable.
	if got := countMatches(t, m.View(), "<http://ex/dave>", "?", "?"); got != 1 {
		t.Fatalf("new view matches = %d, want 1", got)
	}
	if _, err := v0.ParseTerm("<http://ex/dave>", false); err == nil {
		t.Fatal("old view already knows the new term")
	}
	// Render round-trips through the overlay.
	st := m.View()
	pat, err := st.ParsePattern("<http://ex/dave>", "?", "?")
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := st.Index.Select(pat).Next()
	if !ok {
		t.Fatal("inserted triple not found")
	}
	if st.Render(tr.S) != "<http://ex/dave>" || st.RenderPredicate(tr.P) != "<http://ex/admires>" {
		t.Fatalf("render: %s %s", st.Render(tr.S), st.RenderPredicate(tr.P))
	}

	// Duplicate insert: no change, no generation bump.
	gen1 := m.Generation()
	if res, err = m.Insert("<http://ex/dave>", "<http://ex/admires>", "<http://ex/alice>"); err != nil {
		t.Fatal(err)
	}
	if res.Changed || m.Generation() != gen1 {
		t.Fatalf("duplicate insert changed=%v gen moved=%v", res.Changed, m.Generation() != gen1)
	}

	// Delete a base triple; literals with qualifiers work as terms.
	if res, err = m.Delete("<http://ex/carol>", "<http://ex/likes>", `"wine"@fr`); err != nil {
		t.Fatal(err)
	}
	if !res.Changed || res.Triples != 4 {
		t.Fatalf("delete result %+v", res)
	}
	if got := countMatches(t, m.View(), "<http://ex/carol>", "?", "?"); got != 0 {
		t.Fatalf("deleted triple still matches: %d", got)
	}
	// Deleting with an unknown term is a no-op, not an error.
	if res, err = m.Delete("<http://ex/unknown>", "<http://ex/likes>", `"x"`); err != nil || res.Changed {
		t.Fatalf("delete of unknown term: res=%+v err=%v", res, err)
	}
	// Writes with wildcards or junk are rejected.
	if _, err = m.Insert("?", "<http://ex/p>", "<http://ex/o>"); err == nil {
		t.Fatal("wildcard subject accepted")
	}
	if _, err = m.Insert("<http://ex/s>", `"notaniri"`, "<http://ex/o>"); err == nil {
		t.Fatal("literal predicate accepted")
	}
	// Raw newlines inside IRIs or blank labels would corrupt the
	// line-framed WAL; escaped ones in literals are fine.
	if _, err = m.Insert("<http://ex/evil\ntwo>", "<http://ex/likes>", `"x"`); err == nil {
		t.Fatal("newline IRI accepted")
	}
	if res, err := m.Insert("<http://ex/alice>", "<http://ex/likes>", "\"line\nbreak\""); err != nil || !res.Changed {
		t.Fatalf("literal with newline (escaped in the WAL) rejected: %v", err)
	}
}

func TestMutableWALRecoveryAndMerge(t *testing.T) {
	dir := t.TempDir()
	path := buildTestStore(t, dir, core.Layout2Tp)

	m, err := OpenMutable(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert("<http://ex/dave>", "<http://ex/knows>", "<http://ex/alice>"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Delete("<http://ex/alice>", "<http://ex/likes>", `"cheese"`); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path + WALSuffix); err != nil || fi.Size() == 0 {
		t.Fatalf("WAL missing or empty: %v", err)
	}
	// The store file on disk still holds the pre-write state (writes are
	// WAL-only until merge)…
	cold, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Index.NumTriples() != 4 {
		t.Fatalf("store file changed before merge: %d triples", cold.Index.NumTriples())
	}
	// …and reopening replays the WAL.
	m, err = OpenMutable(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := m.View()
	if st.Index.NumTriples() != 4 { // 4 +1 insert -1 delete
		t.Fatalf("recovered triples = %d, want 4", st.Index.NumTriples())
	}
	if got := countMatches(t, st, "<http://ex/dave>", "?", "?"); got != 1 {
		t.Fatalf("recovered insert lost: %d", got)
	}
	if got := countMatches(t, st, "<http://ex/alice>", "<http://ex/likes>", "?"); got != 0 {
		t.Fatalf("recovered delete lost: %d matches", got)
	}

	// Record the full result set, force a merge, and compare.
	before := allLines(t, st)
	if err := m.Merge(); err != nil {
		t.Fatal(err)
	}
	st = m.View()
	if dyn, ok := st.Index.(*core.DynamicSnapshot); !ok || dyn.LogSize() != 0 {
		t.Fatalf("log not folded: %T", st.Index)
	}
	after := allLines(t, st)
	if before != after {
		t.Fatalf("merge changed query results:\nbefore: %s\nafter: %s", before, after)
	}
	if fi, err := os.Stat(path + WALSuffix); err != nil || fi.Size() != 0 {
		t.Fatalf("WAL not truncated after merge: %v, %d bytes", err, fi.Size())
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// The rewritten store file is complete and self-contained.
	cold, err = Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Index.NumTriples() != 4 {
		t.Fatalf("merged store file has %d triples, want 4", cold.Index.NumTriples())
	}
	if allLines(t, cold) != after {
		t.Fatal("merged store file disagrees with the served view")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind by merge")
	}
}

// allLines renders the full content of a view as sorted N-Triples text,
// the comparison key for "unchanged query results" across merges (IDs
// are remapped, strings are not).
func allLines(t *testing.T, st *Store) string {
	t.Helper()
	it := st.Index.Select(core.Pattern{S: core.Wildcard, P: core.Wildcard, O: core.Wildcard})
	var lines []string
	for {
		tr, ok := it.Next()
		if !ok {
			break
		}
		lines = append(lines, fmt.Sprintf("%s %s %s .", st.Render(tr.S), st.RenderPredicate(tr.P), st.Render(tr.O)))
	}
	// The emission order is ID-dependent; sort to compare across remaps.
	for i := 1; i < len(lines); i++ {
		for j := i; j > 0 && lines[j] < lines[j-1]; j-- {
			lines[j], lines[j-1] = lines[j-1], lines[j]
		}
	}
	return strings.Join(lines, "\n")
}

// TestMutableThresholdMerge drives enough inserts through a tiny
// threshold to trigger automatic merges, checking the folded store keeps
// every triple queryable by term.
func TestMutableThresholdMerge(t *testing.T) {
	dir := t.TempDir()
	path := buildTestStore(t, dir, core.Layout2Tp)
	m, err := OpenMutable(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	sawMerge := false
	for i := 0; i < 12; i++ {
		res, err := m.Insert(
			fmt.Sprintf("<http://ex/new%d>", i),
			"<http://ex/knows>",
			"<http://ex/alice>")
		if err != nil {
			t.Fatal(err)
		}
		sawMerge = sawMerge || res.Merged
	}
	if !sawMerge || m.Merges() == 0 {
		t.Fatalf("threshold 5 never merged across 12 inserts (merges=%d)", m.Merges())
	}
	st := m.View()
	if st.Index.NumTriples() != 16 {
		t.Fatalf("triples = %d, want 16", st.Index.NumTriples())
	}
	for i := 0; i < 12; i++ {
		if got := countMatches(t, st, fmt.Sprintf("<http://ex/new%d>", i), "?", "?"); got != 1 {
			t.Fatalf("new%d lost across merges: %d matches", i, got)
		}
	}
}

// TestMutableSingleProcessLock pins the flock: while one Mutable holds
// the store, a second writing open fails fast instead of silently
// diverging, and a lock-free ReadView still works.
func TestMutableSingleProcessLock(t *testing.T) {
	dir := t.TempDir()
	path := buildTestStore(t, dir, core.Layout2Tp)
	m, err := OpenMutable(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMutable(path, 0); err == nil {
		t.Fatal("second writing open succeeded while the first holds the lock")
	}
	if _, err := m.Insert("<http://ex/x>", "<http://ex/knows>", "<http://ex/alice>"); err != nil {
		t.Fatal(err)
	}
	// Reads stay possible alongside the writer.
	st, err := ReadView(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := countMatches(t, st, "<http://ex/x>", "?", "?"); got != 1 {
		t.Fatalf("ReadView misses the pending write: %d", got)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Closing releases the lock.
	m2, err := OpenMutable(path, 0)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	m2.Close()
}

// TestReadViewDoesNotMerge pins ReadView's non-destructive contract:
// even a WAL larger than the default merge threshold is replayed
// without rewriting the store file or truncating the WAL.
func TestReadViewDoesNotMerge(t *testing.T) {
	dir := t.TempDir()
	path := buildTestStore(t, dir, core.Layout2Tp)
	m, err := OpenMutable(path, -1) // manual merging: let the WAL grow
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := m.Insert(fmt.Sprintf("<http://ex/r%d>", i), "<http://ex/knows>", "<http://ex/alice>"); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	walBefore, err := os.ReadFile(path + WALSuffix)
	if err != nil {
		t.Fatal(err)
	}
	storeBefore, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ReadView(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Index.NumTriples() != 12 {
		t.Fatalf("ReadView triples = %d, want 12", st.Index.NumTriples())
	}
	walAfter, _ := os.ReadFile(path + WALSuffix)
	storeAfter, _ := os.Stat(path)
	if string(walAfter) != string(walBefore) {
		t.Fatal("ReadView modified the WAL")
	}
	if storeAfter.Size() != storeBefore.Size() || storeAfter.ModTime() != storeBefore.ModTime() {
		t.Fatal("ReadView rewrote the store file")
	}
}

// TestMutableRejectedInsertLeaksNoTerms pins the two-phase resolution:
// an insert rejected on a later term must not have admitted an earlier
// term into the overlay dictionary.
func TestMutableRejectedInsertLeaksNoTerms(t *testing.T) {
	dir := t.TempDir()
	path := buildTestStore(t, dir, core.Layout2Tp)
	m, err := OpenMutable(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Subject is new; predicate is an (invalid) literal.
	if _, err := m.Insert("<http://ex/stray>", `"notaniri"`, "<http://ex/alice>"); err == nil {
		t.Fatal("literal predicate accepted")
	}
	if _, err := m.View().ParseTerm("<http://ex/stray>", false); err == nil {
		t.Fatal("rejected insert leaked its subject into the dictionary")
	}
	// The term is admitted by a subsequently valid insert.
	if res, err := m.Insert("<http://ex/stray>", "<http://ex/knows>", "<http://ex/alice>"); err != nil || !res.Changed {
		t.Fatalf("valid insert after rejection: %+v, %v", res, err)
	}
}

// TestMutableTornWALTail simulates a crash mid-append: an unterminated
// final record must be skipped on replay and truncated away so new
// appends cannot weld onto it.
func TestMutableTornWALTail(t *testing.T) {
	dir := t.TempDir()
	path := buildTestStore(t, dir, core.Layout2Tp)
	m, err := OpenMutable(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert("<http://ex/ok>", "<http://ex/knows>", "<http://ex/alice>"); err != nil {
		t.Fatal(err)
	}
	m.Close()
	// Tear the tail: a partial record without its newline.
	f, err := os.OpenFile(path+WALSuffix, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("I <http://ex/torn> <http://ex/kn"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m, err = OpenMutable(path, 0)
	if err != nil {
		t.Fatalf("torn tail failed the open: %v", err)
	}
	st := m.View()
	if got := countMatches(t, st, "<http://ex/ok>", "?", "?"); got != 1 {
		t.Fatalf("complete record lost: %d", got)
	}
	if _, err := st.ParseTerm("<http://ex/torn>", false); err == nil {
		t.Fatal("torn record was applied")
	}
	// The torn bytes are gone: a fresh append starts a clean record that
	// the next open replays.
	if _, err := m.Insert("<http://ex/after>", "<http://ex/knows>", "<http://ex/bob>"); err != nil {
		t.Fatal(err)
	}
	m.Close()
	m, err = OpenMutable(path, 0)
	if err != nil {
		t.Fatalf("reopen after post-torn append: %v", err)
	}
	defer m.Close()
	if got := countMatches(t, m.View(), "<http://ex/after>", "?", "?"); got != 1 {
		t.Fatalf("append after torn tail lost: %d", got)
	}
}

// TestMutableWALChurnTriggersMerge pins the walChurnFactor trigger:
// alternating insert/delete of the same triple keeps the logical log
// tiny but must still bound the WAL via a forced merge.
func TestMutableWALChurnTriggersMerge(t *testing.T) {
	dir := t.TempDir()
	path := buildTestStore(t, dir, core.Layout2Tp)
	const threshold = 8
	m, err := OpenMutable(path, threshold)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 3*walChurnFactor*threshold; i++ {
		var err error
		if i%2 == 0 {
			_, err = m.Insert("<http://ex/churn>", "<http://ex/knows>", "<http://ex/alice>")
		} else {
			_, err = m.Delete("<http://ex/churn>", "<http://ex/knows>", "<http://ex/alice>")
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if m.Merges() == 0 {
		t.Fatal("cancelling churn never merged; WAL growth is unbounded")
	}
	fi, err := os.Stat(path + WALSuffix)
	if err != nil {
		t.Fatal(err)
	}
	// Each record is ~60 bytes; the WAL must stay within one churn
	// window of the threshold, not accumulate all writes.
	if fi.Size() > int64(walChurnFactor*threshold)*128 {
		t.Fatalf("WAL grew to %d bytes despite merges", fi.Size())
	}
}

// TestMutableIntegerStore exercises the dictionary-less path: raw IDs in
// the write API and the WAL.
func TestMutableIntegerStore(t *testing.T) {
	dir := t.TempDir()
	d := core.NewDataset([]core.Triple{{S: 0, P: 0, O: 0}, {S: 1, P: 0, O: 2}})
	x, err := core.Build(d, core.Layout3T)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "int.idx")
	if err := Write(path, &Store{Index: x}); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMutable(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := m.Insert("7", "1", "9"); err != nil || !res.Changed {
		t.Fatalf("integer insert: %+v, %v", res, err)
	}
	if _, err := m.Insert("<http://ex/a>", "<http://ex/b>", "<http://ex/c>"); err == nil {
		t.Fatal("dictionary term accepted by integer-only store")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m, err = OpenMutable(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st := m.View()
	if st.Index.NumTriples() != 3 {
		t.Fatalf("recovered integer store has %d triples", st.Index.NumTriples())
	}
	if !st.Index.(*core.DynamicSnapshot).Lookup(core.Triple{S: 7, P: 1, O: 9}) {
		t.Fatal("integer insert lost across restart")
	}
	if err := m.Merge(); err != nil {
		t.Fatal(err)
	}
	if m.View().Index.NumTriples() != 3 {
		t.Fatal("integer merge lost a triple")
	}
}
