package store

import (
	"fmt"
	"os"
	"testing"

	"rdfindexes/internal/core"
	"rdfindexes/internal/faultfs"
)

// walInserts is the torn-tail workload: distinct new triples so every
// replayed record adds exactly one triple to the view.
func walInserts() [][3]string {
	return [][3]string{
		{"<http://ex/w1>", "<http://ex/knows>", "<http://ex/alice>"},
		{"<http://ex/w2>", "<http://ex/knows>", "<http://ex/w1>"},
		{"<http://ex/w3>", "<http://ex/likes>", `"torn"`},
		{"<http://ex/w4>", "<http://ex/admires>", "<http://ex/w3>"},
	}
}

// buildWALFixture builds a store, applies the workload, and returns the
// store path, the raw WAL bytes, and the record boundaries:
// boundaries[i] is the byte offset after i complete records.
func buildWALFixture(t *testing.T) (path string, wal []byte, boundaries []int64) {
	t.Helper()
	path = buildTestStore(t, t.TempDir(), core.Layout2Tp)
	m, err := OpenMutable(path, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range walInserts() {
		if _, err := m.Insert(in[0], in[1], in[2]); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	wal, err = os.ReadFile(path + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	boundaries = []int64{0}
	for i, b := range wal {
		if b == '\n' {
			boundaries = append(boundaries, int64(i)+1)
		}
	}
	if len(boundaries) != len(walInserts())+1 {
		t.Fatalf("WAL has %d records, want %d", len(boundaries)-1, len(walInserts()))
	}
	return path, wal, boundaries
}

// TestWALTornTailByteSweep truncates the WAL at every byte offset —
// the byte-exact analogue of the power-loss model, where any prefix of
// the final unsynced append may survive — and asserts the replay
// invariants at each cut: the valid record prefix replays, a cut
// exactly on a record boundary is a clean tail (no torn-tail flag, no
// dropped bytes), a mid-record cut reports exactly the partial bytes as
// a torn tail, and nothing is ever flagged as corruption. The existing
// crash torture sweeps operations; this sweeps bytes, so the
// boundary-exact cases the op sweep can skip over are all hit.
func TestWALTornTailByteSweep(t *testing.T) {
	path, wal, boundaries := buildWALFixture(t)
	base, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	baseTriples := base.Index.NumTriples()
	storeBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(wal); cut++ {
		t.Run(fmt.Sprintf("cut%03d", cut), func(t *testing.T) {
			dir := t.TempDir()
			dst := dir + "/store.idx"
			if err := os.WriteFile(dst, storeBytes, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(dst+".wal", wal[:cut], 0o644); err != nil {
				t.Fatal(err)
			}

			want := 0
			for want+1 < len(boundaries) && boundaries[want+1] <= int64(cut) {
				want++
			}
			atBoundary := boundaries[want] == int64(cut)

			m, err := OpenMutable(dst, -1)
			if err != nil {
				t.Fatalf("reopen at cut %d: %v", cut, err)
			}
			defer m.Close()
			rec := m.Recovery()
			if rec.Corrupt || rec.DroppedRecords != 0 {
				t.Fatalf("truncation misread as corruption: %+v", rec)
			}
			if rec.Replayed != want {
				t.Fatalf("replayed %d records, want %d", rec.Replayed, want)
			}
			if rec.TornTail == atBoundary {
				t.Fatalf("cut %d (boundary=%v) reported torn=%v: %+v", cut, atBoundary, rec.TornTail, rec)
			}
			if got := rec.DroppedBytes; got != int64(cut)-boundaries[want] {
				t.Fatalf("dropped %d bytes, want %d", got, int64(cut)-boundaries[want])
			}
			if n := m.View().Index.NumTriples(); n != baseTriples+want {
				t.Fatalf("view has %d triples after %d replayed records (base %d)", n, want, baseTriples)
			}
			// The writing open truncated the tail; the WAL accepts new
			// appends from the verified prefix.
			if _, err := m.Insert("<http://ex/after>", "<http://ex/knows>", "<http://ex/w1>"); err != nil {
				t.Fatalf("append after torn-tail recovery: %v", err)
			}
			if got := m.WALSeq(); got != uint64(want)+1 {
				t.Fatalf("WAL seq %d after recovery + 1 insert, want %d", got, want+1)
			}
		})
	}
}

// TestDropUnsyncedCrashLandsOnRecordBoundary drives the faultfs
// DropUnsynced power-loss model through a crash in the middle of a WAL
// append: the page-cache rewind lands the file exactly on the previous
// record boundary (every acknowledged append was fsynced), and the
// replay must read it as a clean tail — full prefix replayed, no torn
// tail, nothing dropped.
func TestDropUnsyncedCrashLandsOnRecordBoundary(t *testing.T) {
	path := buildTestStore(t, t.TempDir(), core.Layout2Tp)
	inj := faultfs.NewInjector(faultfs.OS{})
	inj.DropUnsynced = true
	fsys = inj
	defer func() { fsys = faultfs.OS{} }()

	m, err := OpenMutable(path, -1)
	if err != nil {
		t.Fatal(err)
	}
	ins := walInserts()
	for _, in := range ins[:2] {
		if _, err := m.Insert(in[0], in[1], in[2]); err != nil {
			t.Fatal(err)
		}
	}
	inj.SetPlan(func(op faultfs.Op) faultfs.Fault {
		if op.Kind == faultfs.OpWrite {
			return faultfs.Crash
		}
		return faultfs.None
	})
	if _, err := m.Insert(ins[2][0], ins[2][1], ins[2][2]); err == nil {
		t.Fatal("insert survived the injected crash")
	}
	m.Close()
	fsys = faultfs.OS{}

	m2, err := OpenMutable(path, -1)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	rec := m2.Recovery()
	if rec.Corrupt || rec.TornTail || rec.DroppedBytes != 0 || rec.Replayed != 2 {
		t.Fatalf("boundary-exact rewind misread: %+v", rec)
	}
}
