package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"testing"

	"rdfindexes/internal/core"
	"rdfindexes/internal/dict"
	"rdfindexes/internal/rdf"
)

// buildOverlaySample wraps the sample store's dictionaries in overlays
// with a few added terms, mimicking a mutable serving view.
func buildOverlaySample(t *testing.T, layout core.Layout) *Store {
	t.Helper()
	st := buildSample(t, layout)
	so := dict.NewOverlay(st.Dicts.SO.(*dict.Dict))
	p := dict.NewOverlay(st.Dicts.P.(*dict.Dict))
	for i := 0; i < 8; i++ {
		so.Add(fmt.Sprintf("<http://zz/new%d>", i))
		p.Add(fmt.Sprintf("<http://zz/pred%d>", i))
	}
	return &Store{Index: st.Index, Dicts: &rdf.Dicts{SO: so.View(), P: p.View()}}
}

func TestRendererMatchesRender(t *testing.T) {
	stores := map[string]*Store{
		"dict":    buildSample(t, core.Layout2Tp),
		"overlay": buildOverlaySample(t, core.Layout2Tp),
		"sharded": buildShardedSample(t, core.Layout2Tp, 3),
		"ints":    {Index: buildSample(t, core.Layout2Tp).Index},
	}
	for name, st := range stores {
		rend := AcquireRenderer(st)
		n := 8
		if st.Dicts != nil {
			n = st.Dicts.SO.Len() + 2
		}
		var buf []byte
		for id := 0; id < n; id++ {
			buf = rend.AppendTerm(buf[:0], core.ID(id))
			if got, want := string(buf), st.Render(core.ID(id)); got != want {
				t.Fatalf("%s: AppendTerm(%d) = %q, want %q", name, id, got, want)
			}
			buf = rend.AppendPredicate(buf[:0], core.ID(id))
			if got, want := string(buf), st.RenderPredicate(core.ID(id)); got != want {
				t.Fatalf("%s: AppendPredicate(%d) = %q, want %q", name, id, got, want)
			}
		}
		rend.Release()
	}
}

// decodeNDJSON parses every line the writer produced.
func decodeNDJSON(t *testing.T, body []byte) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		m := map[string]any{}
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("invalid NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, m)
	}
	return out
}

func TestNDJSONWriterRows(t *testing.T) {
	for name, st := range map[string]*Store{
		"dict":    buildSample(t, core.Layout2Tp),
		"overlay": buildOverlaySample(t, core.Layout2Tp),
		"sharded": buildShardedSample(t, core.Layout2Tp, 3),
	} {
		var out bytes.Buffer
		nw := AcquireNDJSON(st, &out)
		it := st.Index.Select(core.NewPattern(-1, -1, -1))
		var triples []core.Triple
		for {
			tr, ok := it.Next()
			if !ok {
				break
			}
			triples = append(triples, tr)
			nw.WriteTriple(tr)
			nw.WriteTriple(tr) // repeats exercise the term cache
		}
		if err := nw.Flush(); err != nil {
			t.Fatal(err)
		}
		nw.Release()
		lines := decodeNDJSON(t, out.Bytes())
		if len(lines) != 2*len(triples) {
			t.Fatalf("%s: %d lines, want %d", name, len(lines), 2*len(triples))
		}
		for i, tr := range triples {
			for _, m := range []map[string]any{lines[2*i], lines[2*i+1]} {
				if m["s"] != st.Render(tr.S) || m["p"] != st.RenderPredicate(tr.P) || m["o"] != st.Render(tr.O) {
					t.Fatalf("%s: row %v, want triple %v", name, m, tr)
				}
			}
		}
	}
}

func TestNDJSONWriterIntsAndSolutions(t *testing.T) {
	ints := &Store{Index: buildSample(t, core.Layout2Tp).Index}
	var out bytes.Buffer
	nw := AcquireNDJSON(ints, &out)
	nw.WriteTriple(core.Triple{S: 1, P: 2, O: 3})
	nw.SetVars([]string{"x", "y", "z"})
	nw.WriteSolution(map[string]core.ID{"x": 1, "z": 2})
	nw.WriteError(`boom "quoted\"`)
	nw.AppendRaw([]byte("{\"matches\":1}\n"))
	if err := nw.Flush(); err != nil {
		t.Fatal(err)
	}
	nw.Release()
	lines := decodeNDJSON(t, out.Bytes())
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 4", len(lines))
	}
	if lines[0]["s"] != float64(1) || lines[0]["o"] != float64(3) {
		t.Fatalf("ints row = %v, want numeric IDs", lines[0])
	}
	if lines[1]["x"] != "<1>" || lines[1]["z"] != "<2>" {
		t.Fatalf("solution row = %v", lines[1])
	}
	if _, hasY := lines[1]["y"]; hasY {
		t.Fatalf("unbound var emitted: %v", lines[1])
	}
	if lines[2]["error"] != `boom "quoted\"` {
		t.Fatalf("error line = %v", lines[2])
	}
	if lines[3]["matches"] != float64(1) {
		t.Fatalf("raw line = %v", lines[3])
	}
}

// TestNDJSONEscaping runs terms with every escape-worthy byte class
// through a real dictionary and checks the writer emits decodable JSON
// that round-trips the exact term.
func TestNDJSONEscaping(t *testing.T) {
	terms := []string{
		"\"plain literal\"",
		"\"tab\tand\nnewline\r\"",
		"\"back\\\\slash\"",
		"\"ctrl\x01byte\"",
		"\"unicode é世\"",
		"<http://ex/iri>",
	}
	sort.Strings(terms)
	so, err := dict.New(terms, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := dict.New([]string{"<http://ex/p>"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A store with no triples still renders: the writer only needs dicts.
	d := core.NewDataset([]core.Triple{{S: 0, P: 0, O: 1}})
	d.NS, d.NO = so.Len(), so.Len()
	x, err := core.Build(d, core.Layout2Tp)
	if err != nil {
		t.Fatal(err)
	}
	st := &Store{Index: x, Dicts: &rdf.Dicts{SO: so, P: p}}
	var out bytes.Buffer
	nw := AcquireNDJSON(st, &out)
	nw.SetVars([]string{"v"})
	for id := range terms {
		nw.WriteSolution(map[string]core.ID{"v": core.ID(id)})
	}
	if err := nw.Flush(); err != nil {
		t.Fatal(err)
	}
	nw.Release()
	lines := decodeNDJSON(t, out.Bytes())
	for i, want := range terms {
		if lines[i]["v"] != want {
			t.Fatalf("term %d round-tripped to %q, want %q", i, lines[i]["v"], want)
		}
	}
}

// TestNDJSONWriterAllocs pins the zero-alloc steady state of the server
// row path across plain-dictionary, overlay and sharded stores.
func TestNDJSONWriterAllocs(t *testing.T) {
	for name, st := range map[string]*Store{
		"dict":    buildSample(t, core.Layout2Tp),
		"overlay": buildOverlaySample(t, core.Layout2Tp),
		"sharded": buildShardedSample(t, core.Layout2Tp, 3),
		"ints":    {Index: buildSample(t, core.Layout2Tp).Index},
	} {
		t.Run(name, func(t *testing.T) {
			var triples []core.Triple
			it := st.Index.Select(core.NewPattern(-1, -1, -1))
			for {
				tr, ok := it.Next()
				if !ok {
					break
				}
				triples = append(triples, tr)
			}
			nw := AcquireNDJSON(st, io.Discard)
			defer nw.Release()
			nw.SetVars([]string{"x", "y"})
			// Warm: first pass fills the term cache and grows the buffers.
			for _, tr := range triples {
				nw.WriteTriple(tr)
				nw.WriteSolution(map[string]core.ID{"x": tr.S, "y": tr.O})
			}
			nw.Flush()
			i := 0
			if a := testing.AllocsPerRun(500, func() {
				tr := triples[i%len(triples)]
				nw.WriteTriple(tr)
				i++
			}); a != 0 {
				t.Errorf("WriteTriple allocs/row = %v, want 0", a)
			}
			sol := map[string]core.ID{"x": 0, "y": 0}
			if a := testing.AllocsPerRun(500, func() {
				tr := triples[i%len(triples)]
				sol["x"], sol["y"] = tr.S, tr.O
				nw.WriteSolution(sol)
				i++
			}); a != 0 {
				t.Errorf("WriteSolution allocs/row = %v, want 0", a)
			}
			nw.Flush()
		})
	}
}

func TestRendererFallbackSharedPool(t *testing.T) {
	// A renderer released after serving one store must rebind cleanly to
	// another (pool reuse across stores and generations).
	a := buildSample(t, core.Layout2Tp)
	b := buildOverlaySample(t, core.Layout3T)
	for i := 0; i < 4; i++ {
		for _, st := range []*Store{a, b} {
			r := AcquireRenderer(st)
			got := string(r.AppendTerm(nil, 0))
			if want := st.Render(0); got != want {
				t.Fatalf("rebind: got %q want %q", got, want)
			}
			r.Release()
		}
	}
}
