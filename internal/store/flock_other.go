//go:build !unix

package store

import "os"

// flockExclusive is a no-op on platforms without flock semantics; the
// single-writer guarantee then only holds within one process.
func flockExclusive(*os.File) error { return nil }
