//go:build !unix

package store

// flockExclusive is a no-op on platforms without flock semantics; the
// single-writer guarantee then only holds within one process.
func flockExclusive(interface{ Fd() uintptr }) error { return nil }
