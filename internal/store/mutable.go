package store

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rdfindexes/internal/codec"
	"rdfindexes/internal/core"
	"rdfindexes/internal/dict"
	"rdfindexes/internal/faultfs"
	"rdfindexes/internal/rdf"
)

// Mutable is the updatable serving store: the immutable on-disk Store
// (static index + front-coded dictionaries) extended with the paper's
// Section 3.1 amortized-update machinery, wired for concurrent serving.
//
//   - Writes go through a single-writer mutex into a core.DynamicIndex
//     log; triples may use never-before-seen terms, which are assigned
//     IDs by overlay dictionaries (immutable base + in-memory additions
//     sharing one ID space).
//   - Every accepted write is appended to a write-ahead log next to the
//     store file, so a restarted server recovers the pending log by
//     replaying it through the identical code path (the overlay assigns
//     the same IDs in the same order).
//   - Readers never lock: each write publishes a fresh immutable view —
//     a *Store whose Index is a core.DynamicSnapshot and whose Dicts are
//     overlay views — through an atomic pointer (RCU), so the pooled
//     zero-allocation read path of internal/core keeps holding.
//   - When the log reaches the merge threshold, the overlay dictionaries
//     are folded into rebuilt front-coded ones, every live triple is
//     remapped into the new ID space, the static index is rebuilt, the
//     store file is rewritten atomically (temp file + rename), and the
//     WAL is truncated.
type Mutable struct {
	mu        sync.Mutex // serializes writers and merges
	path      string
	walPath   string
	wal       faultfs.File
	threshold int
	layout    core.Layout
	integrity Integrity   // of the store file this Mutable was opened from
	recovery  WALRecovery // what replayWAL found at open

	dyn *core.DynamicIndex
	so  *dict.Overlay // nil for integer-only stores
	p   *dict.Overlay

	// walRecords counts the records currently in the WAL. It can exceed
	// LogSize when inserts and deletes cancel out, so it gets its own
	// merge trigger: merging is the only point that truncates the WAL
	// and folds the overlays, and a churning writer must not grow either
	// without bound.
	walRecords int

	// walObs, when set, receives every durable WAL append and every
	// merge for WAL-shipping replication (see repl.go); legacyWAL
	// records whether the opening replay saw CRC-less records, which
	// cannot be shipped verifiably.
	walObs    WALObserver
	legacyWAL bool

	view   atomic.Pointer[Store]
	gen    atomic.Uint64
	merges atomic.Uint64

	// walBytes mirrors the WAL file's size so metric scrapes read it
	// with one atomic load instead of a Stat (or worse, taking mu while
	// a merge rewrites the store). Maintained at open (valid prefix
	// length), append (success or rollback) and merge truncation.
	walBytes atomic.Int64
}

// walChurnFactor bounds WAL growth under cancelling writes: a merge is
// forced once the WAL holds walChurnFactor*threshold records even if
// the logical log stays small.
const walChurnFactor = 4

// WALSuffix is appended to the store path to name its write-ahead log.
const WALSuffix = ".wal"

// WALRecovery reports what replayWAL found at open. A WAL damaged in the
// middle (bit flip, partial page loss) no longer fails the open: replay
// stops at the last verifiable record prefix, the writing opener
// truncates the damage away, and the loss is surfaced here so operators
// can tell "clean start" from "recovered with N records dropped".
type WALRecovery struct {
	// Replayed is the number of records successfully re-applied.
	Replayed int `json:"replayed"`
	// Corrupt is true when a damaged record stopped the replay before
	// the end of the file.
	Corrupt bool `json:"corrupt"`
	// TornTail is true when an unterminated final record (a crash
	// mid-append) was discarded; unlike Corrupt this is an expected
	// crash artifact, not data damage.
	TornTail bool `json:"torn_tail,omitempty"`
	// DroppedRecords counts complete records discarded after the valid
	// prefix (the corrupt record and everything behind it).
	DroppedRecords int `json:"dropped_records,omitempty"`
	// DroppedBytes counts WAL bytes discarded (corrupt suffix plus any
	// torn tail).
	DroppedBytes int64 `json:"dropped_bytes,omitempty"`
	// Error describes the first corruption encountered.
	Error string `json:"error,omitempty"`
}

// Recovery returns what the opening WAL replay found.
func (m *Mutable) Recovery() WALRecovery { return m.recovery }

// WriteResult reports the effect of one Insert or Delete.
type WriteResult struct {
	// Changed is true when the logical triple set changed.
	Changed bool `json:"changed"`
	// Merged is true when this write triggered a merge (log folded into
	// a rebuilt static index and persisted).
	Merged bool `json:"merged"`
	// Triples is the logical triple count after the write.
	Triples int `json:"triples"`
	// LogSize is the pending update-log size after the write.
	LogSize int `json:"log_size"`
	// Generation is the write generation of the view current after this
	// write — the read-your-writes token a client presents to a replica
	// via min-gen.
	Generation uint64 `json:"generation"`
}

// OpenMutable loads the store at path for serving with updates,
// replaying any write-ahead log left by a previous process. threshold
// == 0 selects core.DefaultMergeThreshold; threshold < 0 disables
// automatic merging (ReadView uses that to stay non-destructive).
//
// The WAL file carries an exclusive flock for the lifetime of the
// Mutable, so two writing processes (a server plus a CLI insert, say)
// cannot silently diverge: the second opener fails fast instead of
// acknowledging writes the first would erase at its next merge.
func OpenMutable(path string, threshold int) (*Mutable, error) {
	return openMutable(path, threshold, true)
}

func openMutable(path string, threshold int, lock bool) (*Mutable, error) {
	if threshold == 0 {
		threshold = core.DefaultMergeThreshold
	}
	// A merge would rebuild the log into a single index and silently
	// de-shard the store, so refuse writes instead — detected by magic
	// sniff, before the full (and, for callers that fall back to a
	// read-only load, wasted) decode.
	if sharded, err := IsSharded(path); err != nil {
		return nil, err
	} else if sharded {
		return nil, fmt.Errorf("store: %s: %w", path, ErrSharded)
	}
	st, err := Read(path)
	if err != nil {
		return nil, err
	}
	m := &Mutable{
		path:      path,
		walPath:   path + WALSuffix,
		threshold: threshold,
		integrity: st.Integrity,
		layout:    st.Index.Layout(),
		dyn:       newDynamicFor(st),
	}
	if st.Dicts != nil {
		if m.so, m.p, err = overlaysFor(st); err != nil {
			return nil, err
		}
	}
	if lock {
		// Only a writing open touches the WAL file: read views must work
		// without write permission and must never create or recreate it.
		m.wal, err = fsys.OpenFile(m.walPath, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		if err := flockExclusive(m.wal); err != nil {
			m.wal.Close()
			return nil, fmt.Errorf("store: %s is in use by another process: %w", path, err)
		}
	}
	validLen, err := m.replayWAL()
	if err != nil {
		m.closeWAL()
		return nil, err
	}
	m.walBytes.Store(validLen)
	if lock {
		// Drop a torn tail or corrupt suffix so later appends cannot weld
		// onto it; read-only opens just ignore it.
		if fi, err := m.wal.Stat(); err == nil && fi.Size() > validLen {
			if err := m.wal.Truncate(validLen); err != nil {
				m.wal.Close()
				return nil, fmt.Errorf("store: WAL truncate torn tail: %w", err)
			}
		}
	}
	if m.mergeDueLocked() {
		if err := m.mergeLocked(); err != nil {
			m.closeWAL()
			return nil, err
		}
	}
	m.publishLocked()
	return m, nil
}

// closeWAL closes the WAL handle if one is open (read-only opens have
// none).
func (m *Mutable) closeWAL() {
	if m.wal != nil {
		m.wal.Close()
	}
}

// mergeDueLocked reports whether the pending state warrants a merge:
// the logical log reached the threshold, or cancelling churn bloated
// the WAL past walChurnFactor times it.
func (m *Mutable) mergeDueLocked() bool {
	return m.threshold > 0 &&
		(m.dyn.LogSize() >= m.threshold || m.walRecords >= walChurnFactor*m.threshold)
}

// ReadView loads the store at path as an immutable read view,
// incorporating any pending write-ahead log without disturbing it: no
// lock, no merge, no writes. The store file and the WAL are read
// without a lock, so a concurrent merge (which renames a new store file
// over the old and truncates the WAL) could slip between the two reads;
// ReadView detects that by re-checking the store file's identity after
// the replay and retries, so the returned view is always a state the
// serving process actually published. Without a WAL this is a plain
// Read.
func ReadView(path string) (*Store, error) { return readView(path, Read) }

// ReadViewDegraded is ReadView for serving: a sharded store with
// checksum-failed shard sections opens degraded (ReadDegraded) instead
// of failing, so one bad sector quarantines one shard rather than the
// whole store. Non-sharded stores are unaffected — a single corrupt
// index section has nothing to degrade to.
func ReadViewDegraded(path string) (*Store, error) { return readView(path, ReadDegraded) }

func readView(path string, read func(string) (*Store, error)) (*Store, error) {
	const attempts = 5
	var lastErr error
	for try := 0; try < attempts; try++ {
		before, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		if _, err := os.Stat(path + WALSuffix); err != nil {
			if os.IsNotExist(err) {
				return read(path)
			}
			return nil, err
		}
		m, err := openMutable(path, -1, false)
		if err != nil {
			// A WAL next to a sharded store is an orphan (an in-place
			// rebuild replaced an updatable store); the sharded store
			// itself is complete without it.
			if errors.Is(err, ErrSharded) {
				return read(path)
			}
			// A merge mid-read can also surface as a parse failure
			// (store and WAL from different generations); retry those
			// too when the file identity moved.
			if after, serr := os.Stat(path); serr == nil && !os.SameFile(before, after) {
				lastErr = err
				continue
			}
			return nil, err
		}
		st := m.View()
		m.Close()
		after, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		if os.SameFile(before, after) {
			return st, nil
		}
		lastErr = fmt.Errorf("store: %s was replaced concurrently", path)
	}
	return nil, fmt.Errorf("store: %s kept changing under the read (%d attempts): %w", path, attempts, lastErr)
}

// Close releases the write-ahead log file handle (dropping its flock).
// Pending log entries stay in the WAL and are recovered by the next
// OpenMutable.
func (m *Mutable) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.wal == nil {
		return nil
	}
	err := m.wal.Close()
	m.wal = nil
	return err
}

// View returns the current immutable read view. The view is a consistent
// snapshot: any number of goroutines may query it concurrently, and it
// is never invalidated — later writes publish new views instead.
func (m *Mutable) View() *Store { return m.view.Load() }

// Generation returns a counter that increases on every write that
// changed the logical triple set (including merges). It is read off the
// current view — the view and its generation are stamped together at
// publication, so the pair cannot be torn. Caches keyed on query text
// must incorporate the generation of the view they were computed from.
func (m *Mutable) Generation() uint64 { return m.view.Load().Gen }

// Merges returns the number of merges performed since open.
func (m *Mutable) Merges() uint64 { return m.merges.Load() }

// Threshold returns the merge threshold.
func (m *Mutable) Threshold() int { return m.threshold }

// WALBytes returns the current size of the write-ahead log in bytes,
// without touching the filesystem or the writer lock — safe to call
// from a metrics scrape at any rate.
func (m *Mutable) WALBytes() int64 { return m.walBytes.Load() }

// publishLocked installs a fresh immutable view carrying the next write
// generation; callers hold m.mu. Stamping the generation inside the
// atomically-swapped view is load-bearing: readers obtain (view, gen)
// with one pointer load, so a cache key built from the generation can
// never describe IDs resolved against a different view's dictionaries.
func (m *Mutable) publishLocked() {
	st := &Store{Index: m.dyn.Snapshot(), Gen: m.gen.Add(1), Integrity: m.integrity, Modified: time.Now()}
	if m.so != nil {
		st.Dicts = &rdf.Dicts{SO: m.so.View(), P: m.p.View()}
	}
	m.view.Store(st)
}

// Insert adds one triple given as N-Triples terms (or bare integer IDs
// for integer-only stores). Terms never seen before are assigned fresh
// dictionary IDs via the overlay. The write is logged to the WAL before
// the result is visible to new views.
func (m *Mutable) Insert(s, p, o string) (WriteResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.applyLocked(opInsert, s, p, o, true)
}

// Delete removes one triple given as N-Triples terms. Deleting an
// absent triple (including one with unknown terms) is a no-op, not an
// error.
func (m *Mutable) Delete(s, p, o string) (WriteResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.applyLocked(opDelete, s, p, o, true)
}

// Merge forces the pending log to fold into a rebuilt, persisted static
// index even below the threshold.
func (m *Mutable) Merge() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dyn.LogSize() == 0 && m.walRecords == 0 {
		return nil
	}
	finalSeq := uint64(m.walRecords)
	if err := m.mergeLocked(); err != nil {
		return err
	}
	m.publishLocked()
	if m.walObs != nil {
		m.walObs.WALMerged(finalSeq, m.view.Load().Gen)
	}
	return nil
}

const (
	opInsert = 'I'
	opDelete = 'D'
)

// ErrTerm marks write failures caused by the request's terms (unbound,
// unparsable, wrong kind, out of range) as opposed to internal faults
// like WAL I/O or merge errors; the HTTP layer maps the two classes to
// 400 and 500.
var ErrTerm = errors.New("invalid write term")

// ErrSharded reports an attempt to open a sharded store for writing.
// Sharded stores serve read-only: callers (the CLI, the server) catch
// this to fall back to ReadView.
var ErrSharded = errors.New("sharded store is read-only (rebuild with -shards to change the partition)")

// PrepareRebuild clears the way for overwriting the store at path with
// a freshly built one. It takes the WAL's non-blocking exclusive flock
// (the same liveness lock OpenMutable holds while serving) so a live
// writing process fails the rebuild fast instead of having its WAL
// yanked from under it; refuses while the WAL still holds acknowledged
// writes, which a rebuild would silently drop; and removes an empty
// leftover WAL so it cannot replay into the unrelated new store. A
// missing WAL needs no preparation.
func PrepareRebuild(path string) error {
	walPath := path + WALSuffix
	f, err := fsys.OpenFile(walPath, os.O_RDWR, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	if err := flockExclusive(f); err != nil {
		return fmt.Errorf("store: %s is in use by another process: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if fi.Size() > 0 {
		return fmt.Errorf("store: %s holds pending writes for the previous store; merge them or delete the WAL before rebuilding", walPath)
	}
	return fsys.Remove(walPath)
}

// writeTerm is one resolved write-side term: its canonical WAL
// spelling, its ID (when found), and which dictionary would assign it
// one otherwise.
type writeTerm struct {
	key   string
	id    core.ID
	found bool
	dict  *dict.Overlay // nil for raw integer IDs
}

// resolveWriteTerm parses and canonicalizes one write-side term and
// looks it up, without allocating: overlay IDs for genuinely new terms
// are assigned by applyLocked only after the whole triple validates, so
// a rejected request cannot leak terms into the dictionary.
func (m *Mutable) resolveWriteTerm(s string, predicate bool) (writeTerm, error) {
	if s == "" || s == "?" {
		return writeTerm{}, fmt.Errorf("%w: write terms must be bound, got %q", ErrTerm, s)
	}
	if strings.HasPrefix(s, "<") || strings.HasPrefix(s, "\"") || strings.HasPrefix(s, "_:") {
		if m.so == nil {
			return writeTerm{}, fmt.Errorf("%w: integer-only store; use integer IDs", ErrTerm)
		}
		t, err := rdf.ParseTerm(s)
		if err != nil {
			return writeTerm{}, fmt.Errorf("%w: %v", ErrTerm, err)
		}
		if predicate && t.Kind != rdf.IRI {
			return writeTerm{}, fmt.Errorf("%w: predicate must be an IRI, got %s", ErrTerm, s)
		}
		d := m.so
		if predicate {
			d = m.p
		}
		wt := writeTerm{key: t.Key(), dict: d}
		// Literal keys escape control characters, but IRIs, blank-node
		// labels and language tags pass bytes through raw — and the WAL
		// is line-framed, so an embedded newline would corrupt it
		// irrecoverably.
		if strings.ContainsAny(wt.key, "\n\r") {
			return writeTerm{}, fmt.Errorf("%w: term must not contain newline bytes", ErrTerm)
		}
		if n, ok := d.Locate(wt.key); ok {
			wt.id, wt.found = core.ID(n), true
		}
		return wt, nil
	}
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return writeTerm{}, fmt.Errorf("%w: term %q is neither a <uri>, a literal, _:blank, nor an integer ID", ErrTerm, s)
	}
	if core.ID(v) > core.MaxID {
		return writeTerm{}, fmt.Errorf("%w: ID %d out of range", ErrTerm, v)
	}
	if m.so != nil {
		// Translate raw IDs to their canonical terms so the WAL stays
		// uniform N-Triples for dictionary stores.
		d := m.so
		if predicate {
			d = m.p
		}
		str, ok := d.Extract(int(v))
		if !ok {
			return writeTerm{}, fmt.Errorf("%w: ID %d not in dictionary", ErrTerm, v)
		}
		return writeTerm{key: str, id: core.ID(v), found: true, dict: d}, nil
	}
	return writeTerm{key: s, id: core.ID(v), found: true}, nil
}

// applyLocked resolves terms, applies the operation to the dynamic
// index, appends the WAL record (when logWAL and the set changed), and
// publishes a fresh view (replay defers publication to OpenMutable).
// Callers hold m.mu.
func (m *Mutable) applyLocked(op byte, s, p, o string, logWAL bool) (WriteResult, error) {
	terms := [3]writeTerm{}
	for i, arg := range [3]struct {
		s         string
		predicate bool
	}{{s, false}, {p, true}, {o, false}} {
		var err error
		if terms[i], err = m.resolveWriteTerm(arg.s, arg.predicate); err != nil {
			return WriteResult{}, err
		}
	}
	res := WriteResult{Triples: m.dyn.NumTriples(), LogSize: m.dyn.LogSize()}
	// The view is nil only during the opening WAL replay, before the
	// first publication; replay callers ignore the result anyway.
	if v := m.view.Load(); v != nil {
		res.Generation = v.Gen
	}
	if op == opInsert {
		// All three terms validated; unknown ones may now safely enter
		// the overlay.
		for i := range terms {
			if !terms[i].found {
				terms[i].id = core.ID(terms[i].dict.Add(terms[i].key))
				terms[i].found = true
			}
		}
	} else if !terms[0].found || !terms[1].found || !terms[2].found {
		// Delete with an unknown term: the triple is certainly absent.
		return res, nil
	}
	skey, pkey, okey := terms[0].key, terms[1].key, terms[2].key
	t := core.Triple{S: terms[0].id, P: terms[1].id, O: terms[2].id}
	// WAL-first: a changing write becomes durable before it is applied,
	// so a failed append leaves the in-memory state exactly at the last
	// WAL record (stray overlay IDs aside, which the WAL's term-based
	// replay reassigns consistently anyway).
	if m.dyn.Lookup(t) == (op == opInsert) {
		return res, nil // no-op: insert of a present / delete of an absent triple
	}
	var line string
	if logWAL {
		var err error
		if line, err = m.appendWAL(op, skey, pkey, okey); err != nil {
			return WriteResult{}, err
		}
		m.walRecords++
	}
	var changed bool
	var err error
	if op == opInsert {
		changed, err = m.dyn.Insert(t)
	} else {
		changed, err = m.dyn.Delete(t)
	}
	if err != nil {
		return WriteResult{}, err
	}
	if !changed {
		// Unreachable given the Lookup gate; kept as a defensive check so
		// the WAL and the log can never silently disagree.
		return WriteResult{}, fmt.Errorf("store: WAL/log divergence applying %c %v", op, t)
	}
	res.Changed = true
	res.Triples = m.dyn.NumTriples()
	res.LogSize = m.dyn.LogSize()
	// During WAL replay (logWAL=false) merging and publication are both
	// deferred: OpenMutable performs one threshold check and one publish
	// after the replay completes, instead of copying the whole log into
	// a fresh snapshot per record.
	if !logWAL {
		return res, nil
	}
	seq := uint64(m.walRecords)
	if m.mergeDueLocked() {
		if err := m.mergeLocked(); err != nil {
			return WriteResult{}, err
		}
		res.Merged = true
		res.Triples = m.dyn.NumTriples()
		res.LogSize = 0
	}
	m.publishLocked()
	res.Generation = m.view.Load().Gen
	if m.walObs != nil {
		// The record is shipped first even when it triggered a merge:
		// followers replay it, then the epoch-end makes them merge the
		// same state locally.
		m.walObs.WALAppended(WALRecord{Seq: seq, Gen: res.Generation, Line: []byte(line)})
		if res.Merged {
			m.walObs.WALMerged(seq, res.Generation)
		}
	}
	return res, nil
}

// appendWAL writes one durable log record. Dictionary stores log
// canonical N-Triples statements; integer-only stores log raw IDs.
//
// Record framing (v2): "CCCCCCCC SEQ OP TERMS...\n" — an 8-hex-digit
// CRC32C over everything after its trailing space, then a monotonic
// sequence number (the record's 1-based position in the WAL, resetting
// when a merge truncates it). The CRC turns a bit flip anywhere in the
// record into a detected stop point for replay instead of applied
// garbage; the sequence number additionally catches records that are
// individually intact but out of place (a lost middle page splicing two
// valid regions together). Records written by older versions ("OP
// TERMS...") still replay, unverified.
//
// Any failure rolls the file back to its pre-append length: a
// half-written record must not linger for the next append to weld onto
// (which would make the WAL permanently unparseable), and a record
// whose fsync failed must not resurface on replay after the caller was
// told the write failed.
func (m *Mutable) appendWAL(op byte, skey, pkey, okey string) (string, error) {
	var body string
	if m.so != nil {
		body = fmt.Sprintf("%d %c %s %s %s .", m.walRecords+1, op, skey, pkey, okey)
	} else {
		body = fmt.Sprintf("%d %c %s %s %s", m.walRecords+1, op, skey, pkey, okey)
	}
	line := fmt.Sprintf("%08x %s\n", crc32.Checksum([]byte(body), codec.Castagnoli), body)
	if err := m.appendWALLine(line); err != nil {
		return "", err
	}
	return line, nil
}

// appendWALLine durably appends one pre-framed record line (newline
// included) to the WAL: write, fsync, and on any failure truncate back
// to the previous length so a half-written record never welds onto the
// valid prefix. Shared by local writes (appendWAL) and replicated
// applies (ApplyReplicated), which mirror the leader's framing verbatim.
func (m *Mutable) appendWALLine(line string) error {
	fi, err := m.wal.Stat()
	if err != nil {
		return fmt.Errorf("store: WAL stat: %w", err)
	}
	rollback := func(cause error) error {
		m.walBytes.Store(fi.Size())
		if terr := m.wal.Truncate(fi.Size()); terr != nil {
			return fmt.Errorf("%w (rollback also failed: %v; reopen the store to recover)", cause, terr)
		}
		return cause
	}
	if _, err := m.wal.WriteString(line); err != nil {
		return rollback(fmt.Errorf("store: WAL append: %w", err))
	}
	if err := m.wal.Sync(); err != nil {
		return rollback(fmt.Errorf("store: WAL sync: %w", err))
	}
	m.walBytes.Store(fi.Size() + int64(len(line)))
	return nil
}

// replayWAL re-applies pending operations left by a previous process,
// in order, through the same resolution path that wrote them — so
// overlay IDs are re-assigned deterministically. It returns the byte
// length of the valid record prefix and fills m.recovery:
//
//   - a final record without its terminating newline is a torn append
//     from a crash mid-write and is skipped;
//   - a complete record that fails its CRC, carries the wrong sequence
//     number, or does not parse is corruption: replay stops at the last
//     verifiable prefix and everything behind the damage is discarded
//     (the writing opener truncates it away) — applying records past an
//     undetected splice could resurrect deleted triples;
//   - a record that verifies but whose terms cannot be re-applied is
//     not a storage fault and still fails the open.
func (m *Mutable) replayWAL() (validLen int64, err error) {
	f, err := fsys.Open(m.walPath)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	lineNo := 0
	// corrupt stops the replay, recording the damage; the remaining
	// complete records are counted so the loss is quantified.
	corrupt := func(format string, args ...any) (int64, error) {
		m.recovery.Corrupt = true
		m.recovery.Error = fmt.Sprintf("%s line %d: %s", m.walPath, lineNo, fmt.Sprintf(format, args...))
		m.recovery.DroppedRecords = 1
		for {
			rest, rerr := br.ReadString('\n')
			if rerr != nil {
				m.recovery.TornTail = rest != ""
				break
			}
			m.recovery.DroppedRecords++
		}
		if fi, serr := f.Stat(); serr == nil {
			m.recovery.DroppedBytes = fi.Size() - validLen
		}
		return validLen, nil
	}
	for {
		line, rerr := br.ReadString('\n')
		if rerr == io.EOF {
			// Any unterminated tail in line is a torn append: skip it.
			if line != "" {
				m.recovery.TornTail = true
				m.recovery.DroppedBytes += int64(len(line))
			}
			return validLen, nil
		}
		if rerr != nil {
			return validLen, rerr
		}
		lineNo++
		recLen := int64(len(line))
		line = strings.TrimSuffix(line, "\n")
		if line == "" {
			validLen += recLen
			continue
		}
		if crcField, rest, ok := splitWALCRC(line); ok {
			// v2 record: verify the checksum before even looking inside,
			// then the sequence number against this record's position.
			if crc32.Checksum([]byte(rest), codec.Castagnoli) != crcField {
				return corrupt("record checksum mismatch")
			}
			seqStr, body, ok := strings.Cut(rest, " ")
			if !ok {
				return corrupt("bad record %q", line)
			}
			seq, perr := strconv.ParseUint(seqStr, 10, 64)
			if perr != nil {
				return corrupt("bad sequence number %q", seqStr)
			}
			if seq != uint64(m.walRecords+1) {
				return corrupt("sequence jump: record claims %d, expected %d", seq, m.walRecords+1)
			}
			line = body
		} else {
			// A pre-v2 record without CRC framing: replayable locally, but
			// unverifiable on a follower — replication merges such WALs away.
			m.legacyWAL = true
		}
		op, s, p, o, perr := parseWALStatement(line, m.so != nil)
		if perr != nil {
			return corrupt("%v", perr)
		}
		if _, err := m.applyLocked(op, s, p, o, false); err != nil {
			return validLen, fmt.Errorf("store: WAL %s line %d: %w", m.walPath, lineNo, err)
		}
		m.walRecords++
		m.recovery.Replayed++
		validLen += recLen
	}
}

// parseWALStatement parses the operation byte and three terms of one
// WAL record statement (the body after the CRC and sequence fields).
// Dictionary-backed stores carry N-Triples term keys; integer-only
// stores carry three raw IDs. Shared by the opening replay and the
// replicated-apply path so both resolve terms identically.
func parseWALStatement(stmt string, hasDicts bool) (op byte, s, p, o string, err error) {
	if len(stmt) < 2 || stmt[1] != ' ' || (stmt[0] != opInsert && stmt[0] != opDelete) {
		return 0, "", "", "", fmt.Errorf("bad record %q", stmt)
	}
	op = stmt[0]
	if hasDicts {
		st, ok, perr := rdf.ParseLine(stmt[2:])
		if perr != nil || !ok {
			return 0, "", "", "", fmt.Errorf("unparsable statement: %v", perr)
		}
		return op, st.S.Key(), st.P.Key(), st.O.Key(), nil
	}
	fields := strings.Fields(stmt[2:])
	if len(fields) != 3 {
		return 0, "", "", "", fmt.Errorf("want 3 IDs, got %q", stmt)
	}
	return op, fields[0], fields[1], fields[2], nil
}

// splitWALCRC detects the v2 record framing: an 8-hex-digit CRC field
// followed by a space. Legacy records start with "I " or "D ", which
// cannot collide with eight hex digits.
func splitWALCRC(line string) (crc uint32, rest string, ok bool) {
	if len(line) < 10 || line[8] != ' ' {
		return 0, "", false
	}
	v, err := strconv.ParseUint(line[:8], 16, 32)
	if err != nil {
		return 0, "", false
	}
	return uint32(v), line[9:], true
}

// syncDir best-effort-syncs the directory containing path so a rename
// inside it is durable before dependent state changes (not all
// filesystems support syncing a directory handle).
func syncDir(path string) {
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
}

// newDynamicFor wraps a loaded store's static index in the write-side
// dynamic log. The DynamicIndex never merges on its own (threshold -1):
// the Mutable drives merges so dictionaries fold and files rewrite in
// the same step.
func newDynamicFor(st *Store) *core.DynamicIndex {
	return core.NewDynamicFromIndex(st.Index, -1)
}

// overlaysFor builds fresh write overlays over a loaded store's
// front-coded dictionaries. Callers have checked st.Dicts != nil.
func overlaysFor(st *Store) (so, p *dict.Overlay, err error) {
	soDict, ok := st.Dicts.SO.(*dict.Dict)
	if !ok {
		return nil, nil, fmt.Errorf("store: loaded SO dictionary has unexpected type %T", st.Dicts.SO)
	}
	pDict, ok := st.Dicts.P.(*dict.Dict)
	if !ok {
		return nil, nil, fmt.Errorf("store: loaded P dictionary has unexpected type %T", st.Dicts.P)
	}
	return dict.NewOverlay(soDict), dict.NewOverlay(pDict), nil
}

// mergeLocked folds the pending log and overlay dictionaries into a
// rebuilt static store, persists it atomically (temp file + rename), and
// truncates the WAL. Callers hold m.mu.
func (m *Mutable) mergeLocked() error {
	live := m.dyn.LiveTriples()
	var dicts *rdf.Dicts
	var soDict, pDict *dict.Dict
	if m.so != nil {
		var soMap, pMap []int
		var err error
		soDict, soMap, err = m.so.Fold(dict.DefaultBucketSize)
		if err != nil {
			return fmt.Errorf("store: fold SO dictionary: %w", err)
		}
		pDict, pMap, err = m.p.Fold(dict.DefaultBucketSize)
		if err != nil {
			return fmt.Errorf("store: fold P dictionary: %w", err)
		}
		for i, t := range live {
			live[i] = core.Triple{
				S: core.ID(soMap[t.S]),
				P: core.ID(pMap[t.P]),
				O: core.ID(soMap[t.O]),
			}
		}
		dicts = &rdf.Dicts{SO: soDict, P: pDict}
	}
	d := core.NewDataset(live)
	if soDict != nil {
		// Keep the complete-integer-range invariant over the whole
		// dictionary ID spaces, matching rdf.Encode; folded dictionaries
		// may hold terms that no longer appear in any triple.
		if soDict.Len() > d.NS {
			d.NS = soDict.Len()
		}
		if soDict.Len() > d.NO {
			d.NO = soDict.Len()
		}
		if pDict.Len() > d.NP {
			d.NP = pDict.Len()
		}
	}
	x, err := core.Build(d, m.layout)
	if err != nil {
		return fmt.Errorf("store: merge rebuild: %w", err)
	}
	tmp := m.path + ".tmp"
	if err := Write(tmp, &Store{Index: x, Dicts: dicts}); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, m.path); err != nil {
		return err
	}
	syncDir(m.path)
	// The merged state is durable; drop the WAL. Truncate keeps the
	// append handle valid (O_APPEND repositions every write).
	if m.wal != nil {
		if err := m.wal.Truncate(0); err != nil {
			return fmt.Errorf("store: WAL truncate: %w", err)
		}
	}
	m.walBytes.Store(0)
	m.dyn = core.NewDynamicFromIndex(x, -1)
	if soDict != nil {
		m.so = dict.NewOverlay(soDict)
		m.p = dict.NewOverlay(pDict)
	}
	m.walRecords = 0
	// The rewritten file is the current checksummed format; views
	// published from here on no longer inherit a legacy "unverified"
	// badge from the file this Mutable was originally opened from.
	m.integrity = Integrity{Version: CurrentVersion, Verified: true}
	m.merges.Add(1)
	return nil
}
