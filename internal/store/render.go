// Result materialization: the pooled, allocation-free path from result
// IDs back to rendered terms. Renderer holds the per-request dictionary
// cursors (mirroring core.QueryCtx for the ID-level scratch), and
// NDJSONWriter streams /query and /sparql result rows as NDJSON with an
// escaped-term cache keyed by ID — the dominant cost of result streaming
// after the ID-level pipeline went zero-alloc (PR 1) was exactly this
// layer re-decoding front-coded buckets and allocating a row object per
// result.

package store

import (
	"io"
	"strconv"
	"sync"

	"rdfindexes/internal/core"
	"rdfindexes/internal/dict"
)

// Renderer resolves result IDs to terms through stateful dictionary
// cursors: runs of nearby subject/object IDs (result streams arrive
// sorted) decode each front-coded bucket entry at most once, and the
// repeated predicate IDs of a pattern stream cost nothing. A Renderer is
// a single-goroutine object; acquire one per request and release it when
// the stream ends.
type Renderer struct {
	so, p    dict.Extractor
	hasDicts bool
}

var rendererPool = sync.Pool{New: func() any { return &Renderer{} }}

// AcquireRenderer takes a pooled renderer bound to the store's
// dictionaries (or to the <id> fallback notation when the store has
// none).
func AcquireRenderer(st *Store) *Renderer {
	r := rendererPool.Get().(*Renderer)
	if st.Dicts != nil {
		r.so.Bind(st.Dicts.SO)
		r.p.Bind(st.Dicts.P)
		r.hasDicts = true
	} else {
		r.hasDicts = false
	}
	//rdf:allow(ownership transfers to the caller; Release returns it to the pool)
	return r
}

// Release unbinds the cursors (so a pooled renderer never pins a retired
// store view) and returns the renderer to the pool.
func (r *Renderer) Release() {
	if r == nil {
		return
	}
	r.so.Bind(nil)
	r.p.Bind(nil)
	r.hasDicts = false
	rendererPool.Put(r)
}

// HasDicts reports whether the renderer resolves terms through
// dictionaries (false for integer-only stores).
func (r *Renderer) HasDicts() bool { return r.hasDicts }

// AppendTerm appends the rendered subject/object term for id to buf,
// falling back to <id> notation exactly like Store.Render.
//
//rdf:hotpath
func (r *Renderer) AppendTerm(buf []byte, id core.ID) []byte {
	if r.hasDicts {
		if t, ok := r.so.Extract(int(id)); ok {
			return append(buf, t...)
		}
	}
	return appendIDTerm(buf, id)
}

// AppendPredicate appends the rendered predicate term for id to buf.
//
//rdf:hotpath
func (r *Renderer) AppendPredicate(buf []byte, id core.ID) []byte {
	if r.hasDicts {
		if t, ok := r.p.Extract(int(id)); ok {
			return append(buf, t...)
		}
	}
	return appendIDTerm(buf, id)
}

//rdf:hotpath
func appendIDTerm(buf []byte, id core.ID) []byte {
	buf = append(buf, '<')
	buf = strconv.AppendUint(buf, uint64(id), 10)
	return append(buf, '>')
}

// termSpan is one cached escaped term inside an NDJSONWriter arena.
type termSpan struct{ start, end int }

// ndjsonFlushAt is the pending-output size that triggers a flush to the
// underlying writer.
const ndjsonFlushAt = 8 << 10

// maxCachedTerms bounds each per-request escaped-term cache; result
// streams wider than this (rare) render the overflow terms directly
// without caching, keeping the arena bounded.
const maxCachedTerms = 1 << 14

// ndjsonTrimCap is the largest buffer capacity a pooled writer retains;
// anything a pathological request grew beyond it is handed back to the
// garbage collector on Release.
const ndjsonTrimCap = 1 << 20

// NDJSONWriter streams result rows as NDJSON through pooled scratch:
// rendered terms are JSON-escaped once per distinct ID per request and
// replayed from an arena cache after that, rows are hand-built into a
// batched output buffer (no reflection, no per-row allocation), and the
// dictionary work goes through a Renderer's cursors. The zero-alloc
// steady state holds across plain, overlay-dictionary and sharded
// stores. A writer serves one request on one goroutine.
type NDJSONWriter struct {
	w    io.Writer
	rend *Renderer
	ints bool // integer-only store: pattern rows carry raw IDs as numbers
	err  error

	buf   []byte // pending output
	raw   []byte // unescaped term scratch
	arena []byte // escaped-term cache backing
	so    map[core.ID]termSpan
	pd    map[core.ID]termSpan

	vars   []string // solution row keys, in emission order
	keybuf []byte   // escaped `"var":` fragments back to back
	keyoff []termSpan
}

var ndjsonPool = sync.Pool{New: func() any {
	return &NDJSONWriter{so: map[core.ID]termSpan{}, pd: map[core.ID]termSpan{}}
}}

// AcquireNDJSON takes a pooled writer streaming to w with terms resolved
// against st.
func AcquireNDJSON(st *Store, w io.Writer) *NDJSONWriter {
	n := ndjsonPool.Get().(*NDJSONWriter)
	n.w = w
	n.rend = AcquireRenderer(st)
	n.ints = st.Dicts == nil
	n.err = nil
	//rdf:allow(ownership transfers to the caller; Release returns it to the pool)
	return n
}

// Release flushes nothing (call Flush first), clears the per-request
// caches and returns the writer to the pool.
func (n *NDJSONWriter) Release() {
	if n == nil {
		return
	}
	n.rend.Release()
	n.rend, n.w = nil, nil
	clear(n.so)
	clear(n.pd)
	n.buf = trimCap(n.buf)
	n.raw = trimCap(n.raw)
	n.arena = trimCap(n.arena)
	n.keybuf = trimCap(n.keybuf)
	n.vars = n.vars[:0]
	n.keyoff = n.keyoff[:0]
	ndjsonPool.Put(n)
}

func trimCap(b []byte) []byte {
	if cap(b) > ndjsonTrimCap {
		return nil
	}
	return b[:0]
}

// Flush writes any pending bytes to the underlying writer and reports
// the first write error seen on this stream.
func (n *NDJSONWriter) Flush() error {
	if len(n.buf) > 0 && n.err == nil {
		_, n.err = n.w.Write(n.buf)
	}
	n.buf = n.buf[:0]
	return n.err
}

func (n *NDJSONWriter) maybeFlush() {
	if len(n.buf) >= ndjsonFlushAt {
		n.Flush()
	}
}

// Err returns the sticky stream error.
func (n *NDJSONWriter) Err() error { return n.err }

// AppendRaw appends pre-encoded bytes (a hand-built summary line) to the
// pending output verbatim.
//
//rdf:hotpath
func (n *NDJSONWriter) AppendRaw(p []byte) {
	n.buf = append(n.buf, p...)
	n.maybeFlush()
}

// WriteError emits an {"error": msg} line.
func (n *NDJSONWriter) WriteError(msg string) {
	n.buf = append(n.buf, `{"error":`...)
	n.raw = append(n.raw[:0], msg...)
	n.buf = appendJSONString(n.buf, n.raw)
	n.buf = append(n.buf, '}', '\n')
	n.maybeFlush()
}

// WriteTriple emits one pattern-query result row: terms when the store
// has dictionaries, raw IDs as JSON numbers otherwise (matching the
// pre-writer server behavior).
//
//rdf:hotpath
func (n *NDJSONWriter) WriteTriple(t core.Triple) {
	n.buf = append(n.buf, `{"s":`...)
	n.appendID(t.S, false)
	n.buf = append(n.buf, `,"p":`...)
	n.appendID(t.P, true)
	n.buf = append(n.buf, `,"o":`...)
	n.appendID(t.O, false)
	n.buf = append(n.buf, '}', '\n')
	n.maybeFlush()
}

//rdf:hotpath
func (n *NDJSONWriter) appendID(id core.ID, predicate bool) {
	if n.ints {
		n.buf = strconv.AppendUint(n.buf, uint64(id), 10)
		return
	}
	n.appendTerm(id, predicate)
}

// appendTerm appends the escaped term for id, serving repeats from the
// arena cache.
//
//rdf:hotpath
func (n *NDJSONWriter) appendTerm(id core.ID, predicate bool) {
	cache := n.so
	if predicate {
		cache = n.pd
	}
	if sp, ok := cache[id]; ok {
		n.buf = append(n.buf, n.arena[sp.start:sp.end]...)
		return
	}
	if predicate {
		n.raw = n.rend.AppendPredicate(n.raw[:0], id)
	} else {
		n.raw = n.rend.AppendTerm(n.raw[:0], id)
	}
	if len(cache) < maxCachedTerms {
		start := len(n.arena)
		n.arena = appendJSONString(n.arena, n.raw)
		cache[id] = termSpan{start, len(n.arena)}
		n.buf = append(n.buf, n.arena[start:]...)
		return
	}
	n.buf = appendJSONString(n.buf, n.raw)
}

// SetVars fixes the key set and order of subsequent WriteSolution rows,
// pre-escaping every variable name once.
func (n *NDJSONWriter) SetVars(vars []string) {
	n.vars = append(n.vars[:0], vars...)
	n.keybuf = n.keybuf[:0]
	n.keyoff = n.keyoff[:0]
	for _, v := range vars {
		start := len(n.keybuf)
		n.raw = append(n.raw[:0], v...)
		n.keybuf = appendJSONString(n.keybuf, n.raw)
		n.keybuf = append(n.keybuf, ':')
		n.keyoff = append(n.keyoff, termSpan{start, len(n.keybuf)})
	}
}

// WriteSolution emits one BGP solution row over the SetVars keys;
// variables absent from b are omitted. Solution terms always render as
// strings (the <id> fallback covers integer-only stores), matching the
// pre-writer server behavior.
//
//rdf:hotpath
func (n *NDJSONWriter) WriteSolution(b map[string]core.ID) {
	n.buf = append(n.buf, '{')
	first := true
	for i, v := range n.vars {
		id, ok := b[v]
		if !ok {
			continue
		}
		if !first {
			n.buf = append(n.buf, ',')
		}
		first = false
		sp := n.keyoff[i]
		n.buf = append(n.buf, n.keybuf[sp.start:sp.end]...)
		n.appendTerm(id, false)
	}
	n.buf = append(n.buf, '}', '\n')
	n.maybeFlush()
}

// appendJSONString appends s as a JSON string literal, escaping quotes,
// backslashes and control bytes; valid UTF-8 passes through verbatim.
//
//rdf:hotpath
func appendJSONString(dst, s []byte) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '"' && c != '\\' && c >= 0x20 {
			continue
		}
		dst = append(dst, s[start:i]...)
		switch c {
		case '"':
			dst = append(dst, '\\', '"')
		case '\\':
			dst = append(dst, '\\', '\\')
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\r':
			dst = append(dst, '\\', 'r')
		case '\t':
			dst = append(dst, '\\', 't')
		default:
			const hex = "0123456789abcdef"
			dst = append(dst, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
		start = i + 1
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
