package store

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rdfindexes/internal/core"
	"rdfindexes/internal/rdf"
	"rdfindexes/internal/shard"
)

// buildShardedSample builds a dictionary-backed sharded store from the
// shared sample data.
func buildShardedSample(t *testing.T, layout core.Layout, shards int) *Store {
	t.Helper()
	statements, err := rdf.ParseAll(strings.NewReader(sampleNT))
	if err != nil {
		t.Fatal(err)
	}
	d, dicts, err := rdf.Encode(statements)
	if err != nil {
		t.Fatal(err)
	}
	x, err := shard.BuildSharded(d, layout, shards)
	if err != nil {
		t.Fatal(err)
	}
	return &Store{Index: x, Dicts: dicts}
}

// TestShardedStoreRoundTrip pins the multi-shard container format: a
// written sharded store reads back with the same shard count, triples
// and result streams, dictionaries intact.
func TestShardedStoreRoundTrip(t *testing.T) {
	for _, layout := range []core.Layout{core.Layout3T, core.LayoutCC, core.Layout2Tp, core.Layout2To} {
		t.Run(layout.String(), func(t *testing.T) {
			st := buildShardedSample(t, layout, 3)
			path := filepath.Join(t.TempDir(), "store.idx")
			if err := Write(path, st); err != nil {
				t.Fatal(err)
			}
			got, err := Read(path)
			if err != nil {
				t.Fatal(err)
			}
			if got.Shards() != 3 {
				t.Fatalf("Shards = %d, want 3", got.Shards())
			}
			if got.Index.Layout() != layout || got.Index.NumTriples() != st.Index.NumTriples() {
				t.Fatalf("round trip changed the index: %v/%d", got.Index.Layout(), got.Index.NumTriples())
			}
			// Every shape through the loaded store matches the in-memory one.
			for _, p := range []core.Pattern{
				core.NewPattern(-1, -1, -1),
				core.NewPattern(0, -1, -1),
				core.NewPattern(-1, 0, -1),
			} {
				want := st.Index.Select(p).Collect(-1)
				gotT := got.Index.Select(p).Collect(-1)
				if len(want) != len(gotT) {
					t.Fatalf("pattern %v: %d results, want %d", p, len(gotT), len(want))
				}
				for i := range want {
					if want[i] != gotT[i] {
						t.Fatalf("pattern %v: result %d = %v, want %v", p, i, gotT[i], want[i])
					}
				}
			}
			pat, err := got.ParsePattern("<http://ex/alice>", "?", "?")
			if err != nil {
				t.Fatal(err)
			}
			if n := got.Index.Select(pat).Count(); n != 2 {
				t.Fatalf("alice has %d triples, want 2", n)
			}
		})
	}
}

// TestShardedStoreLargeRoundTrip shards a bigger integer dataset and
// compares full streams against a single-index store after the disk
// round trip (both files written and reloaded).
func TestShardedStoreLargeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ts := make([]core.Triple, 0, 3000)
	for i := 0; i < 3000; i++ {
		ts = append(ts, core.Triple{
			S: core.ID(rng.Intn(200)), P: core.ID(rng.Intn(9)), O: core.ID(rng.Intn(150)),
		})
	}
	d := core.NewDataset(ts)
	single, err := core.Build(d, core.Layout2Tp)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := shard.BuildSharded(d, core.Layout2Tp, 4)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	shPath := filepath.Join(dir, "sharded.idx")
	if err := Write(shPath, &Store{Index: sh}); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(shPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []core.Pattern{
		core.NewPattern(-1, -1, -1),
		core.NewPattern(-1, 4, -1),
		core.NewPattern(-1, -1, 7),
		core.NewPattern(17, -1, -1),
	} {
		want := single.Select(p).Collect(-1)
		got := loaded.Index.Select(p).Collect(-1)
		if len(got) != len(want) {
			t.Fatalf("pattern %v: %d results, want %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pattern %v: result %d = %v, want %v (order broken)", p, i, got[i], want[i])
			}
		}
	}
}

// TestShardedStoreReadOnly pins the write-path refusal: OpenMutable
// fails with ErrSharded, and ReadView still serves the store.
func TestShardedStoreReadOnly(t *testing.T) {
	st := buildShardedSample(t, core.Layout2Tp, 2)
	path := filepath.Join(t.TempDir(), "store.idx")
	if err := Write(path, st); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMutable(path, 0); !errors.Is(err, ErrSharded) {
		t.Fatalf("OpenMutable on sharded store: %v, want ErrSharded", err)
	}
	view, err := ReadView(path)
	if err != nil {
		t.Fatal(err)
	}
	if view.Shards() != 2 {
		t.Fatalf("ReadView shards = %d, want 2", view.Shards())
	}

	// An orphaned WAL next to a sharded store (left by an in-place
	// rebuild of an updatable store) must not wedge the read path: the
	// sharded store is complete without it.
	if err := os.WriteFile(path+WALSuffix, []byte("I <a> <b> <c> .\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	view, err = ReadView(path)
	if err != nil {
		t.Fatalf("ReadView with orphaned WAL: %v", err)
	}
	if view.Shards() != 2 || view.Index.NumTriples() != st.Index.NumTriples() {
		t.Fatalf("orphaned WAL changed the view: shards=%d triples=%d", view.Shards(), view.Index.NumTriples())
	}
}

// TestShardedStoreCorruption rejects a length table that disagrees with
// the file size instead of decoding garbage sections.
func TestShardedStoreCorruption(t *testing.T) {
	st := buildShardedSample(t, core.Layout2Tp, 2)
	path := filepath.Join(t.TempDir(), "store.idx")
	if err := Write(path, st); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("truncated sharded store accepted")
	}
}

// TestPrepareRebuild pins the rebuild guard: a WAL flocked by a live
// writer refuses the rebuild, a WAL with pending records refuses, an
// empty unlocked leftover is removed, a missing WAL is fine.
func TestPrepareRebuild(t *testing.T) {
	st := buildSample(t, core.Layout2Tp)
	path := filepath.Join(t.TempDir(), "store.idx")
	if err := Write(path, st); err != nil {
		t.Fatal(err)
	}
	if err := PrepareRebuild(path); err != nil {
		t.Fatalf("missing WAL: %v", err)
	}

	// Live writer: its flock must block the rebuild.
	m, err := OpenMutable(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := PrepareRebuild(path); err == nil {
		m.Close()
		t.Fatal("rebuild allowed over a live flocked WAL")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Closed writer, empty WAL: removed.
	if err := PrepareRebuild(path); err != nil {
		t.Fatalf("empty WAL: %v", err)
	}
	if _, err := os.Stat(path + WALSuffix); !os.IsNotExist(err) {
		t.Fatalf("empty WAL not removed: %v", err)
	}

	// Pending records: refused.
	m, err = OpenMutable(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert("<http://ex/x>", "<http://ex/y>", "<http://ex/z>"); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := PrepareRebuild(path); err == nil {
		t.Fatal("rebuild allowed over pending WAL records")
	}
}
