package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rdfindexes/internal/core"
	"rdfindexes/internal/shard"
)

// writeSampleFile serializes the shared sample store (single-index or
// sharded) and returns its path and bytes.
func writeSampleFile(t *testing.T, shards int) (string, []byte) {
	t.Helper()
	var st *Store
	if shards > 1 {
		st = buildShardedSample(t, core.Layout2Tp, shards)
	} else {
		st = buildSample(t, core.Layout2Tp)
	}
	path := filepath.Join(t.TempDir(), "store.idx")
	if err := Write(path, st); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

// TestReadFlippedByteEveryOffset flips one byte at every offset of a v2
// store file and asserts Read detects each: the format checksums every
// byte (magic aside, where the flip breaks the signature), so there is
// no offset where silent acceptance is correct — and no input that may
// panic instead of returning an error.
func TestReadFlippedByteEveryOffset(t *testing.T) {
	for _, shards := range []int{1, 2} {
		path, data := writeSampleFile(t, shards)
		for off := range data {
			mut := append([]byte(nil), data...)
			mut[off] ^= 0xa5
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Read(path); err == nil {
				t.Fatalf("shards=%d: flipped byte at offset %d/%d accepted", shards, off, len(data))
			}
		}
	}
}

// TestReadTruncatedEveryLength truncates a v2 store at every possible
// length and asserts Read errors each time — short headers, half
// tables, sections cut mid-payload, and a missing trailing checksum all
// included.
func TestReadTruncatedEveryLength(t *testing.T) {
	for _, shards := range []int{1, 2} {
		path, data := writeSampleFile(t, shards)
		for n := 0; n < len(data); n++ {
			if err := os.WriteFile(path, data[:n], 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Read(path); err == nil {
				t.Fatalf("shards=%d: truncation to %d/%d bytes accepted", shards, n, len(data))
			}
		}
	}
}

// TestVerifyReport pins the verify walk: a clean store reports every
// section ok; a flipped byte in the last shard section is attributed to
// that section while the rest stay ok; a clean WAL is scanned.
func TestVerifyReport(t *testing.T) {
	path, data := writeSampleFile(t, 3)
	rep, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK || !rep.Verified || rep.Version != 2 || rep.Shards != 3 {
		t.Fatalf("clean store: %+v", rep)
	}
	// header + table + 3 shards
	if len(rep.Sections) != 5 {
		t.Fatalf("sections: %+v", rep.Sections)
	}

	// Damage the final shard's payload (its trailing CRC is the last 4
	// bytes of the file; the byte before that is payload).
	mut := append([]byte(nil), data...)
	mut[len(mut)-5] ^= 0x01
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("corrupt shard not reported")
	}
	var bad []string
	for _, sec := range rep.Sections {
		if !sec.OK {
			bad = append(bad, sec.Name)
		}
	}
	if len(bad) != 1 || bad[0] != "shard 2" {
		t.Fatalf("corruption attributed to %v, want [shard 2]; report %+v", bad, rep.Sections)
	}

	// The legacy report path: verify falls back to a decode check.
	legacy := filepath.Join(t.TempDir(), "old.idx")
	if err := os.WriteFile(legacy, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = Verify(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("garbage verified ok")
	}
}

// TestDegradedShardedOracle corrupts one shard section and checks the
// degraded open against an oracle: a store built from the original
// dataset minus exactly the quarantined shard's triples. Every query
// must return identical result streams — the quarantined shard
// disappears, nothing else shifts.
func TestDegradedShardedOracle(t *testing.T) {
	const n = 3
	var ts []core.Triple
	for i := 0; i < 900; i++ {
		ts = append(ts, core.Triple{
			S: core.ID(i % 97), P: core.ID(i % 7), O: core.ID((i * 13) % 83),
		})
	}
	d := core.NewDataset(ts)
	sh, err := shard.BuildSharded(d, core.Layout2Tp, n)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "store.idx")
	if err := Write(path, &Store{Index: sh}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The file ends with shard n-1's payload + CRC: damage its payload.
	quarantine := n - 1
	data[len(data)-5] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Strict read refuses; degraded read quarantines exactly that shard.
	if _, err := Read(path); err == nil {
		t.Fatal("strict Read accepted the corrupt shard")
	}
	got, err := ReadDegraded(path)
	if err != nil {
		t.Fatalf("degraded open: %v", err)
	}
	if q := got.Integrity.Quarantined; len(q) != 1 || q[0] != quarantine {
		t.Fatalf("quarantined %v, want [%d]", q, quarantine)
	}
	if got.Integrity.Version != 2 || !got.Integrity.Verified {
		t.Fatalf("integrity %+v", got.Integrity)
	}

	// Oracle: the same dataset minus the quarantined shard's triples,
	// partitioned identically (same shard count over the same ID space).
	var kept []core.Triple
	for _, tr := range ts {
		if shard.ShardOf(tr.S, n) != quarantine {
			kept = append(kept, tr)
		}
	}
	od := core.NewDataset(kept)
	// Preserve the ID-space bounds of the full dataset so routing and
	// bounds checks agree with the degraded store.
	od.NS, od.NP, od.NO = d.NS, d.NP, d.NO
	oracle, err := shard.BuildSharded(od, core.Layout2Tp, n)
	if err != nil {
		t.Fatal(err)
	}

	// One subject routed into the quarantined shard, one routed elsewhere.
	sIn, sOut := -1, -1
	for s := 0; s < 97; s++ {
		if shard.ShardOf(core.ID(s), n) == quarantine {
			sIn = s
		} else {
			sOut = s
		}
	}
	patterns := []core.Pattern{
		core.NewPattern(-1, -1, -1),   // full scan
		core.NewPattern(-1, 4, -1),    // fan-out
		core.NewPattern(-1, -1, 13),   // fan-out by object
		core.NewPattern(sIn, -1, -1),  // routed into the quarantined shard
		core.NewPattern(sOut, -1, -1), // routed to a healthy shard
		core.NewPattern(17, -1, -1),
	}
	for _, p := range patterns {
		want := oracle.Select(p).Collect(-1)
		have := got.Index.Select(p).Collect(-1)
		if len(want) != len(have) {
			t.Fatalf("pattern %v: %d results degraded, oracle %d", p, len(have), len(want))
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("pattern %v: result %d = %v, oracle %v", p, i, have[i], want[i])
			}
		}
	}

	// A degraded store must refuse to serialize: writing it out would
	// make the data loss permanent and silent.
	if err := Write(filepath.Join(t.TempDir(), "out.idx"), got); err == nil {
		t.Fatal("degraded store serialized")
	}
}

// TestWALCorruptMiddle damages a record in the middle of the WAL and
// checks the recovery contract: the open succeeds, replay stops at the
// last verifiable prefix (applying nothing after the damage), the loss
// is reported, and the truncated WAL accepts new writes cleanly.
func TestWALCorruptMiddle(t *testing.T) {
	dir := t.TempDir()
	path := buildTestStore(t, dir, core.Layout2Tp)
	m, err := OpenMutable(path, -1) // manual merges: the WAL keeps all records
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"<http://ex/w1>", "<http://ex/w2>", "<http://ex/w3>"} {
		if _, err := m.Insert(s, "<http://ex/knows>", "<http://ex/alice>"); err != nil {
			t.Fatal(err)
		}
	}
	if rec := m.Recovery(); rec.Corrupt || rec.Replayed != 0 {
		t.Fatalf("fresh open recovery %+v", rec)
	}
	m.Close()

	// Flip one byte inside the second record's term bytes.
	walPath := path + WALSuffix
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 3 {
		t.Fatalf("unexpected WAL shape: %q", data)
	}
	off := len(lines[0]) + len(lines[1])/2
	data[off] ^= 0x20
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	m, err = OpenMutable(path, -1)
	if err != nil {
		t.Fatalf("corrupt middle failed the open: %v", err)
	}
	rec := m.Recovery()
	if !rec.Corrupt || rec.Replayed != 1 || rec.DroppedRecords != 2 {
		t.Fatalf("recovery %+v, want corrupt with 1 replayed / 2 dropped", rec)
	}
	if !strings.Contains(rec.Error, "checksum mismatch") {
		t.Fatalf("recovery error %q", rec.Error)
	}
	st := m.View()
	if got := countMatches(t, st, "<http://ex/w1>", "?", "?"); got != 1 {
		t.Fatalf("valid prefix record lost: %d", got)
	}
	// Nothing past the damage was applied — not even the intact third
	// record, whose placement can no longer be trusted.
	for _, s := range []string{"<http://ex/w2>", "<http://ex/w3>"} {
		if _, err := st.ParseTerm(s, false); err == nil {
			t.Fatalf("record after the corruption was applied: %s", s)
		}
	}
	// The damage is truncated away; appends and replays work again.
	if fi, err := os.Stat(walPath); err != nil || fi.Size() != int64(len(lines[0])) {
		t.Fatalf("WAL not truncated to the valid prefix: %v bytes, want %d", fi.Size(), len(lines[0]))
	}
	if _, err := m.Insert("<http://ex/w4>", "<http://ex/knows>", "<http://ex/alice>"); err != nil {
		t.Fatal(err)
	}
	m.Close()
	m, err = OpenMutable(path, -1)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if rec := m.Recovery(); rec.Corrupt || rec.Replayed != 2 {
		t.Fatalf("post-repair recovery %+v", rec)
	}
	if got := countMatches(t, m.View(), "<http://ex/w4>", "?", "?"); got != 1 {
		t.Fatalf("append after repair lost: %d", got)
	}
}

// TestWALSequenceSplice deletes a whole record from the middle of the
// WAL: both neighbors are individually intact, so only the sequence
// numbers reveal the gap — replay must stop before the spliced record
// rather than apply operations out of order.
func TestWALSequenceSplice(t *testing.T) {
	dir := t.TempDir()
	path := buildTestStore(t, dir, core.Layout2Tp)
	m, err := OpenMutable(path, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"<http://ex/w1>", "<http://ex/w2>", "<http://ex/w3>"} {
		if _, err := m.Insert(s, "<http://ex/knows>", "<http://ex/alice>"); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	walPath := path + WALSuffix
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	spliced := lines[0] + lines[2] // record 2 lost in its entirety
	if err := os.WriteFile(walPath, []byte(spliced), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err = OpenMutable(path, -1)
	if err != nil {
		t.Fatalf("spliced WAL failed the open: %v", err)
	}
	defer m.Close()
	rec := m.Recovery()
	if !rec.Corrupt || rec.Replayed != 1 || !strings.Contains(rec.Error, "sequence jump") {
		t.Fatalf("recovery %+v, want a sequence-jump stop after 1 record", rec)
	}
	if _, err := m.View().ParseTerm("<http://ex/w3>", false); err == nil {
		t.Fatal("out-of-place record was applied")
	}
}

// FuzzStoreRead feeds arbitrary bytes to the container reader: whatever
// the input, Read and ReadDegraded must return (a store or an error)
// without panicking or over-allocating.
func FuzzStoreRead(f *testing.F) {
	dir := f.TempDir()
	var seedStore *Store
	{
		// Seed with real containers (v2 single and sharded) so the fuzzer
		// starts from deep coverage, plus edge-case fragments.
		st := &Store{}
		statements := []core.Triple{{S: 0, P: 0, O: 1}, {S: 1, P: 0, O: 0}}
		x, err := core.Build(core.NewDataset(statements), core.Layout2Tp)
		if err != nil {
			f.Fatal(err)
		}
		st.Index = x
		seedStore = st
	}
	single := filepath.Join(dir, "single.idx")
	if err := Write(single, seedStore); err != nil {
		f.Fatal(err)
	}
	if data, err := os.ReadFile(single); err == nil {
		f.Add(data)
		f.Add(data[:len(data)/2])
	}
	sh, err := shard.BuildSharded(core.NewDataset([]core.Triple{{S: 0, P: 0, O: 1}, {S: 1, P: 0, O: 0}}), core.Layout2Tp, 2)
	if err != nil {
		f.Fatal(err)
	}
	sharded := filepath.Join(dir, "sharded.idx")
	if err := Write(sharded, &Store{Index: sh}); err != nil {
		f.Fatal(err)
	}
	if data, err := os.ReadFile(sharded); err == nil {
		f.Add(data)
	}
	f.Add([]byte(Magic))
	f.Add([]byte(MagicSharded))
	f.Add([]byte(MagicV1))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.idx")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		st, err := Read(path)
		if err == nil && st.Index == nil {
			t.Fatal("Read returned a store with no index")
		}
		st, err = ReadDegraded(path)
		if err == nil && st.Index == nil {
			t.Fatal("ReadDegraded returned a store with no index")
		}
	})
}
