package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"hash/crc64"
	"io"
	"os"
	"strconv"
	"strings"

	"rdfindexes/internal/codec"
)

// This file is the store side of WAL-shipping replication
// (internal/repl): observation hooks that let a leader stream every
// durable WAL append to followers, and the follower-side entry points
// that replay shipped records and install full snapshots without ever
// exposing a torn view.

// WALRecord is one durable WAL append as seen by a replication
// observer: the record's sequence number within the current WAL epoch
// (an epoch is the life of one WAL file between merges — merging
// truncates the WAL and starts a new epoch over a new base store file)
// and the exact framed line bytes, CRC and trailing newline included,
// so a follower can verify and append them verbatim.
type WALRecord struct {
	Seq  uint64
	Gen  uint64 // write generation of the view published with this record
	Line []byte // not retained by Mutable; observers must copy to keep
}

// WALObserver receives replication events. Both callbacks run while the
// store's writer lock is held: they must be fast, must not block on the
// network, and must never call back into the Mutable (deadlock). The
// intended implementation copies the event into an in-memory log and
// signals streaming goroutines.
type WALObserver interface {
	// WALAppended fires after a record is durably in the WAL and the
	// corresponding view has been published.
	WALAppended(rec WALRecord)
	// WALMerged fires after a merge rebuilt the base store file and
	// truncated the WAL: the epoch ended at finalSeq, and followers that
	// replayed through it can reproduce the new base by merging locally.
	WALMerged(finalSeq uint64, gen uint64)
}

// SetWALObserver installs obs (nil detaches). Only one observer is
// supported; installing replaces the previous one.
func (m *Mutable) SetWALObserver(obs WALObserver) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.walObs = obs
}

// AttachWALObserver scans the WAL's current valid prefix through seed
// and installs obs under one writer-lock acquisition: no record can
// land between the seed scan and live observation, so the observer's
// event stream is gap-free from the scanned prefix onward.
func (m *Mutable) AttachWALObserver(obs WALObserver, seed func(seq uint64, line []byte) error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.forEachWALRecordLocked(seed); err != nil {
		return err
	}
	m.walObs = obs
	return nil
}

// WALSeq returns the sequence number of the last record in the current
// WAL epoch (0 when the WAL is empty).
func (m *Mutable) WALSeq() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return uint64(m.walRecords)
}

// LegacyWAL reports whether the opening replay encountered records
// without CRC+sequence framing. A replication leader merges such a WAL
// away before serving followers: legacy records cannot be verified on
// the follower side.
func (m *Mutable) LegacyWAL() bool { return m.legacyWAL }

// Path returns the store file path this Mutable was opened from.
func (m *Mutable) Path() string { return m.path }

// ForEachWALRecord calls fn with every framed record line (newline
// included) in the WAL's valid prefix, in order. The writer lock is
// held across the scan, so the lines form a consistent prefix of the
// current epoch; fn must not retain the line or call back into the
// Mutable.
func (m *Mutable) ForEachWALRecord(fn func(seq uint64, line []byte) error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.forEachWALRecordLocked(fn)
}

func (m *Mutable) forEachWALRecordLocked(fn func(seq uint64, line []byte) error) error {
	limit := m.walBytes.Load()
	if limit == 0 {
		return nil
	}
	f, err := fsys.Open(m.walPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	buf := make([]byte, limit)
	if _, err := io.ReadFull(f, buf); err != nil {
		return fmt.Errorf("store: WAL scan: %w", err)
	}
	var seq uint64
	for len(buf) > 0 {
		nl := 0
		for nl < len(buf) && buf[nl] != '\n' {
			nl++
		}
		if nl == len(buf) {
			break // unterminated tail past the valid prefix; unreachable
		}
		line := buf[:nl+1]
		buf = buf[nl+1:]
		if nl == 0 {
			continue // blank line, as the replay path tolerates
		}
		seq++
		if err := fn(seq, line); err != nil {
			return err
		}
	}
	return nil
}

// Replication apply errors. ErrReplGap and ErrReplRecord mean the
// shipped stream and the local WAL disagree; the follower resolves
// either by falling back to a full snapshot.
var (
	// ErrReplGap reports a shipped record whose sequence number skips
	// ahead of the local WAL position.
	ErrReplGap = errors.New("store: replicated record skips sequence numbers")
	// ErrReplRecord reports a shipped record that fails its own CRC or
	// does not parse — damage in flight or a protocol desync.
	ErrReplRecord = errors.New("store: replicated record is invalid")
)

// ApplyReplicated verifies and applies one shipped WAL record line
// (framed exactly as appendWAL writes it: CRC, sequence number,
// operation, terms, newline). The record is appended to the local WAL
// verbatim — follower WALs are byte-for-byte mirrors of the leader's —
// and a fresh view is published after it applies, so readers only ever
// observe record boundaries. A record at or before the current position
// is a duplicate delivery and is skipped idempotently (dup=true).
func (m *Mutable) ApplyReplicated(line []byte) (dup bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.wal == nil {
		return false, errors.New("store: ApplyReplicated on a closed or read-only store")
	}
	body := strings.TrimSuffix(string(line), "\n")
	crcField, rest, ok := splitWALCRC(body)
	if !ok {
		return false, fmt.Errorf("%w: missing CRC framing", ErrReplRecord)
	}
	if crc32.Checksum([]byte(rest), codec.Castagnoli) != crcField {
		return false, fmt.Errorf("%w: checksum mismatch", ErrReplRecord)
	}
	seqStr, stmt, ok := strings.Cut(rest, " ")
	if !ok {
		return false, fmt.Errorf("%w: no sequence field", ErrReplRecord)
	}
	seq, perr := strconv.ParseUint(seqStr, 10, 64)
	if perr != nil {
		return false, fmt.Errorf("%w: bad sequence number %q", ErrReplRecord, seqStr)
	}
	if seq <= uint64(m.walRecords) {
		return true, nil // duplicate delivery (reconnect overlap): already applied
	}
	if seq != uint64(m.walRecords)+1 {
		return false, fmt.Errorf("%w: record %d arrived at position %d", ErrReplGap, seq, m.walRecords+1)
	}
	op, s, p, o, perr2 := parseWALStatement(stmt, m.so != nil)
	if perr2 != nil {
		return false, fmt.Errorf("%w: %v", ErrReplRecord, perr2)
	}
	// Durable-first, exactly like a local write: the verbatim line goes
	// to the local WAL with fsync and rollback-on-failure, then applies.
	if err := m.appendWALLine(string(line)); err != nil {
		return false, err
	}
	m.walRecords++
	if _, err := m.applyLocked(op, s, p, o, false); err != nil {
		return false, err
	}
	m.publishLocked()
	if m.walObs != nil {
		m.walObs.WALAppended(WALRecord{Seq: seq, Gen: m.view.Load().Gen, Line: line})
	}
	return false, nil
}

// MergeReplicated folds the pending log in response to the leader's
// epoch end, exactly like Merge: the follower rebuilds the same base
// the leader just merged to (the WAL records were identical) and starts
// its next epoch at sequence 0.
func (m *Mutable) MergeReplicated() error { return m.Merge() }

// InstallSnapshot replaces the entire store with a full snapshot
// streamed from a leader: n bytes of a serialized store container read
// from r. The bytes land in a temp file, are verified by a full
// checksummed decode, and only then atomically renamed over the store
// file; the WAL is truncated and the in-memory state rebuilt from the
// verified store. Any failure — short stream, torn bytes, checksum
// mismatch — leaves the previous state untouched and serving: a torn
// snapshot can never become a view.
func (m *Mutable) InstallSnapshot(r io.Reader, n int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.wal == nil {
		return errors.New("store: InstallSnapshot on a closed or read-only store")
	}
	tmp := m.path + ".snap.tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	_, cerr := io.CopyN(f, r, n)
	if cerr == nil {
		cerr = f.Sync()
	}
	if err := f.Close(); cerr == nil {
		cerr = err
	}
	if cerr != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("store: snapshot receive: %w", cerr)
	}
	// Full verification before the new bytes can touch the live path.
	st, err := Read(tmp)
	if err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("store: snapshot verify: %w", err)
	}
	if err := m.adoptStoreLocked(tmp, st); err != nil {
		fsys.Remove(tmp)
		return err
	}
	m.publishLocked()
	return nil
}

// adoptStoreLocked renames a verified store file over the live path and
// rebuilds the in-memory state (dynamic index, overlays, WAL position)
// from it. Callers hold m.mu and have fully verified the file at tmp.
func (m *Mutable) adoptStoreLocked(tmp string, st *Store) error {
	// Layout follows the leader: the follower serves whatever the
	// leader built, and its next local merge rebuilds in that layout.
	m.layout = st.Index.Layout()
	if err := fsys.Rename(tmp, m.path); err != nil {
		return err
	}
	syncDir(m.path)
	if err := m.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: WAL truncate after snapshot: %w", err)
	}
	m.walBytes.Store(0)
	m.walRecords = 0
	m.dyn = newDynamicFor(st)
	m.so, m.p = nil, nil
	if st.Dicts != nil {
		so, p, err := overlaysFor(st)
		if err != nil {
			return err
		}
		m.so, m.p = so, p
	}
	m.integrity = st.Integrity
	return nil
}

// FileFingerprint identifies a store file's exact content: CRC64-ECMA
// over every byte plus the length. Replication uses it as the epoch
// identity — a follower resumes tailing only when its base store file
// fingerprint matches the leader's; any mismatch (a merge the follower
// missed, a divergent local rebuild) falls back to full-snapshot
// catch-up. O(file) at open and per merge, never on a serving path.
func FileFingerprint(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	h := crc64.New(crc64.MakeTable(crc64.ECMA))
	n, err := io.Copy(h, f)
	if err != nil {
		return 0, err
	}
	return h.Sum64() ^ uint64(n), nil
}
