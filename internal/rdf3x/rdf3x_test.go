package rdf3x

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"rdfindexes/internal/codec"
	"rdfindexes/internal/core"
)

func refSelect(ts []core.Triple, p core.Pattern) []core.Triple {
	var out []core.Triple
	for _, t := range ts {
		if p.Matches(t) {
			out = append(out, t)
		}
	}
	return out
}

func sameSet(a, b []core.Triple) bool {
	if len(a) != len(b) {
		return false
	}
	less := func(ts []core.Triple) func(i, j int) bool {
		return func(i, j int) bool { return ts[i].Less(ts[j]) }
	}
	as := append([]core.Triple(nil), a...)
	bs := append([]core.Triple(nil), b...)
	sort.Slice(as, less(as))
	sort.Slice(bs, less(bs))
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func testDataset(rng *rand.Rand, n int) *core.Dataset {
	ts := make([]core.Triple, 0, n)
	for len(ts) < n {
		ts = append(ts, core.Triple{
			S: core.ID(rng.Intn(n/10 + 20)),
			P: core.ID(rng.Intn(12)),
			O: core.ID(rng.Intn(n/3 + 30)),
		})
	}
	return core.NewDataset(ts)
}

func TestRDF3XAgainstOracleAllShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(167))
	d := testDataset(rng, 5000) // > pageLen triples: exercises page scans
	x, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		tr := d.Triples[rng.Intn(len(d.Triples))]
		for _, s := range core.AllShapes() {
			pat := core.WithWildcards(tr, s)
			want := refSelect(d.Triples, pat)
			got := x.Select(pat).Collect(-1)
			if !sameSet(got, want) {
				t.Fatalf("pattern %v (%v): got %d matches, want %d", pat, s, len(got), len(want))
			}
		}
	}
}

func TestRDF3XMuchLargerThan2Tp(t *testing.T) {
	// Six materialized permutations: RDF-3X is reported 2-4.6x larger
	// than trie-based indexes.
	rng := rand.New(rand.NewSource(173))
	d := testDataset(rng, 20000)
	x, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := core.Build2Tp(d)
	if err != nil {
		t.Fatal(err)
	}
	if x.SizeBits() < 2*p2.SizeBits() {
		t.Errorf("RDF-3X (%d bits) not at least 2x 2Tp (%d bits)", x.SizeBits(), p2.SizeBits())
	}
}

func TestRDF3XRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(179))
	d := testDataset(rng, 3000)
	x, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := codec.NewWriter(&buf)
	x.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(codec.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		tr := d.Triples[rng.Intn(len(d.Triples))]
		for _, s := range core.AllShapes() {
			pat := core.WithWildcards(tr, s)
			if !sameSet(got.Select(pat).Collect(-1), x.Select(pat).Collect(-1)) {
				t.Fatalf("decoded index disagrees on %v", pat)
			}
		}
	}
}

func TestRDF3XEmpty(t *testing.T) {
	d := core.NewDataset(nil)
	x, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Select(core.NewPattern(-1, -1, -1)).Count(); got != 0 {
		t.Fatalf("scan of empty index returned %d", got)
	}
}
