// Package rdf3x implements a simplified RDF-3X-style baseline: all six
// S-P-O permutations materialized as delta-compressed sorted triple runs
// in fixed-size pages with a page directory (the in-memory analogue of
// RDF-3X's VByte-compressed clustered B+ trees). The paper compares
// against RDF-3X through the measurements of the HDT-FoQ and TripleBit
// papers (Section 4.2); this package reproduces the system's space shape
// — roughly 2-4x larger than the 2Tp index since every permutation is
// materialized — as an extended baseline. RDF-3X's count-aggregated
// projection indexes are not reproduced: the paper's benchmark exercises
// only triple selection patterns.
package rdf3x

import (
	"rdfindexes/internal/bits"
	"rdfindexes/internal/codec"
	"rdfindexes/internal/core"
	"rdfindexes/internal/vbyte"
)

// pageLen is the number of triples per compressed page.
const pageLen = 1024

// permIndex stores one permutation's sorted triples.
type permIndex struct {
	perm    core.Perm
	n       int
	data    []byte
	firstA  *bits.CompactVector
	firstB  *bits.CompactVector
	firstC  *bits.CompactVector
	offsets *bits.CompactVector
}

func buildPerm(d *core.Dataset, scratch []core.Triple, p core.Perm) *permIndex {
	copy(scratch, d.Triples)
	core.SortPerm(scratch, p, d.NS, d.NP, d.NO)
	px := &permIndex{perm: p, n: len(scratch)}
	var fa, fb, fc, offs []uint64
	var pa, pb, pc uint64
	for i, t := range scratch {
		a, b, c := p.Apply(t)
		ua, ub, uc := uint64(a), uint64(b), uint64(c)
		if i%pageLen == 0 {
			fa = append(fa, ua)
			fb = append(fb, ub)
			fc = append(fc, uc)
			offs = append(offs, uint64(len(px.data)))
		} else {
			da := ua - pa
			px.data = vbyte.Put(px.data, da)
			if da > 0 {
				px.data = vbyte.Put(px.data, ub)
				px.data = vbyte.Put(px.data, uc)
			} else {
				db := ub - pb
				px.data = vbyte.Put(px.data, db)
				if db > 0 {
					px.data = vbyte.Put(px.data, uc)
				} else {
					px.data = vbyte.Put(px.data, uc-pc)
				}
			}
		}
		pa, pb, pc = ua, ub, uc
	}
	px.firstA = bits.NewCompact(fa)
	px.firstB = bits.NewCompact(fb)
	px.firstC = bits.NewCompact(fc)
	px.offsets = bits.NewCompact(offs)
	return px
}

func (px *permIndex) numPages() int { return px.firstA.Len() }

func (px *permIndex) pageSize(k int) int {
	if (k+1)*pageLen <= px.n {
		return pageLen
	}
	return px.n - k*pageLen
}

// scanPage invokes fn for each triple of page k until fn returns false.
func (px *permIndex) scanPage(k int, fn func(a, b, c uint64) bool) bool {
	a, b, c := px.firstA.At(k), px.firstB.At(k), px.firstC.At(k)
	if !fn(a, b, c) {
		return false
	}
	pos := int(px.offsets.At(k))
	for i := 1; i < px.pageSize(k); i++ {
		var da uint64
		da, pos = vbyte.Get(px.data, pos)
		if da > 0 {
			a += da
			b, pos = vbyte.Get(px.data, pos)
			c, pos = vbyte.Get(px.data, pos)
		} else {
			var db uint64
			db, pos = vbyte.Get(px.data, pos)
			if db > 0 {
				b += db
				c, pos = vbyte.Get(px.data, pos)
			} else {
				var dc uint64
				dc, pos = vbyte.Get(px.data, pos)
				c += dc
			}
		}
		if !fn(a, b, c) {
			return false
		}
	}
	return true
}

// cmpPrefix compares (a, b, c) against a target prefix where negative
// components are unconstrained.
func cmpPrefix(a, b, c uint64, ta, tb int64) int {
	if int64(a) != ta {
		if int64(a) < ta {
			return -1
		}
		return 1
	}
	if tb < 0 {
		return 0
	}
	if int64(b) != tb {
		if int64(b) < tb {
			return -1
		}
		return 1
	}
	return 0
}

// scanPrefix yields every triple whose first components match the given
// prefix (tb may be -1 for "any").
func (px *permIndex) scanPrefix(ta, tb int64, fn func(a, b, c uint64) bool) {
	if px.n == 0 {
		return
	}
	// Find the last page whose leading triple is strictly before the
	// prefix; matching triples cannot start earlier.
	lo, hi := 0, px.numPages()-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if cmpPrefix(px.firstA.At(mid), px.firstB.At(mid), px.firstC.At(mid), ta, tb) < 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	for k := lo; k < px.numPages(); k++ {
		if cmpPrefix(px.firstA.At(k), px.firstB.At(k), px.firstC.At(k), ta, tb) > 0 {
			return
		}
		done := false
		px.scanPage(k, func(a, b, c uint64) bool {
			switch cmpPrefix(a, b, c, ta, tb) {
			case -1:
				return true
			case 1:
				done = true
				return false
			}
			return fn(a, b, c)
		})
		if done {
			return
		}
	}
}

func (px *permIndex) sizeBits() uint64 {
	return uint64(len(px.data))*8 + px.firstA.SizeBits() + px.firstB.SizeBits() +
		px.firstC.SizeBits() + px.offsets.SizeBits() + 64
}

func (px *permIndex) encode(w *codec.Writer) {
	w.Byte(byte(px.perm))
	w.Uvarint(uint64(px.n))
	w.Bytes(px.data)
	px.firstA.Encode(w)
	px.firstB.Encode(w)
	px.firstC.Encode(w)
	px.offsets.Encode(w)
}

func decodePerm(r *codec.Reader) (*permIndex, error) {
	px := &permIndex{}
	px.perm = core.Perm(r.Byte())
	px.n = int(r.Uvarint())
	px.data = r.BytesBuf()
	var err error
	if px.firstA, err = bits.DecodeCompact(r); err != nil {
		return nil, err
	}
	if px.firstB, err = bits.DecodeCompact(r); err != nil {
		return nil, err
	}
	if px.firstC, err = bits.DecodeCompact(r); err != nil {
		return nil, err
	}
	if px.offsets, err = bits.DecodeCompact(r); err != nil {
		return nil, err
	}
	return px, nil
}

// Index is an immutable RDF-3X-style index over all six permutations.
type Index struct {
	numTriples int
	perms      [core.NumPerms]*permIndex
}

// Build constructs the index from a dataset.
func Build(d *core.Dataset) (*Index, error) {
	x := &Index{numTriples: d.Len()}
	scratch := make([]core.Triple, len(d.Triples))
	for p := core.Perm(0); p < core.NumPerms; p++ {
		x.perms[p] = buildPerm(d, scratch, p)
	}
	return x, nil
}

// NumTriples returns the number of indexed triples.
func (x *Index) NumTriples() int { return x.numTriples }

// SizeBits returns the total storage footprint in bits.
func (x *Index) SizeBits() uint64 {
	total := uint64(64)
	for _, px := range x.perms {
		total += px.sizeBits()
	}
	return total
}

// Select resolves a triple selection pattern on the most selective
// permutation (every pattern maps to a contiguous run in one of the six).
func (x *Index) Select(pat core.Pattern) *core.Iterator {
	var (
		perm   core.Perm
		ta, tb int64 = -1, -1
		filter       = func(core.Triple) bool { return true }
	)
	switch pat.Shape() {
	case core.ShapeSPO:
		perm, ta, tb = core.PermSPO, int64(pat.S), int64(pat.P)
		filter = func(t core.Triple) bool { return t.O == pat.O }
	case core.ShapeSPx:
		perm, ta, tb = core.PermSPO, int64(pat.S), int64(pat.P)
	case core.ShapeSxx:
		perm, ta = core.PermSPO, int64(pat.S)
	case core.ShapeSxO:
		perm, ta, tb = core.PermSOP, int64(pat.S), int64(pat.O)
	case core.ShapexPO:
		perm, ta, tb = core.PermPOS, int64(pat.P), int64(pat.O)
	case core.ShapexPx:
		perm, ta = core.PermPOS, int64(pat.P)
	case core.ShapexxO:
		perm, ta = core.PermOSP, int64(pat.O)
	default:
		perm = core.PermSPO
	}
	px := x.perms[perm]
	var buf []core.Triple
	if ta < 0 {
		if px.n > 0 {
			px.scanAll(&buf)
		}
	} else {
		px.scanPrefix(ta, tb, func(a, b, c uint64) bool {
			t := perm.Restore(core.ID(a), core.ID(b), core.ID(c))
			if filter(t) {
				buf = append(buf, t)
			}
			return true
		})
	}
	i := 0
	return core.NewIterator(func() (core.Triple, bool) {
		if i >= len(buf) {
			return core.Triple{}, false
		}
		t := buf[i]
		i++
		return t, true
	})
}

// scanAll appends every triple of the permutation to buf.
func (px *permIndex) scanAll(buf *[]core.Triple) {
	for k := 0; k < px.numPages(); k++ {
		px.scanPage(k, func(a, b, c uint64) bool {
			*buf = append(*buf, px.perm.Restore(core.ID(a), core.ID(b), core.ID(c)))
			return true
		})
	}
}

// Encode writes the index to w.
func (x *Index) Encode(w *codec.Writer) {
	w.Uvarint(uint64(x.numTriples))
	for _, px := range x.perms {
		px.encode(w)
	}
}

// Decode reads an index written by Encode.
func Decode(r *codec.Reader) (*Index, error) {
	x := &Index{}
	x.numTriples = int(r.Uvarint())
	for p := core.Perm(0); p < core.NumPerms; p++ {
		px, err := decodePerm(r)
		if err != nil {
			return nil, err
		}
		x.perms[p] = px
	}
	return x, nil
}
