package shard

import (
	"math/rand"
	"sync"
	"testing"

	"rdfindexes/internal/core"
)

// randDataset builds a dataset with enough ID collisions that every
// pattern shape has multi-match results spread across shards.
func randDataset(t *testing.T, n int, seed int64) *core.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ts := make([]core.Triple, 0, n)
	for i := 0; i < n; i++ {
		ts = append(ts, core.Triple{
			S: core.ID(rng.Intn(48)),
			P: core.ID(rng.Intn(7)),
			O: core.ID(rng.Intn(36)),
		})
	}
	return core.NewDataset(ts)
}

var testLayouts = []core.Layout{core.Layout3T, core.LayoutCC, core.Layout2Tp, core.Layout2To}

var testShardCounts = []int{1, 2, 4, 7}

// samplePatterns draws, for every shape, patterns from indexed triples
// plus patterns with components that match nothing.
func samplePatterns(d *core.Dataset, rng *rand.Rand, perShape int) []core.Pattern {
	var pats []core.Pattern
	for _, shape := range core.AllShapes() {
		for i := 0; i < perShape; i++ {
			tr := d.Triples[rng.Intn(len(d.Triples))]
			pats = append(pats, core.WithWildcards(tr, shape))
		}
		// A miss: components just past the ID spaces.
		miss := core.Triple{S: core.ID(d.NS), P: core.ID(d.NP), O: core.ID(d.NO)}
		pats = append(pats, core.WithWildcards(miss, shape))
	}
	return pats
}

// collectScalar drains through Next, covering the scalar path on top of
// the batched one Collect uses.
func collectScalar(it *core.Iterator) []core.Triple {
	var out []core.Triple
	for {
		t, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

func equalTriples(a, b []core.Triple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardOracle is the randomized scatter-gather oracle: for every
// layout, shard count and pattern shape, the sharded store must return
// the byte-identical result stream — same triples, same order — as the
// single index built over the same dataset.
func TestShardOracle(t *testing.T) {
	d := randDataset(t, 900, 42)
	rng := rand.New(rand.NewSource(7))
	pats := samplePatterns(d, rng, 6)
	for _, layout := range testLayouts {
		single, err := core.Build(d, layout)
		if err != nil {
			t.Fatalf("%v: build single: %v", layout, err)
		}
		for _, n := range testShardCounts {
			sh, err := BuildSharded(d, layout, n)
			if err != nil {
				t.Fatalf("%v/%d: BuildSharded: %v", layout, n, err)
			}
			if got, want := sh.NumTriples(), single.NumTriples(); got != want {
				t.Fatalf("%v/%d: NumTriples = %d, want %d", layout, n, got, want)
			}
			if sh.Layout() != layout {
				t.Fatalf("%v/%d: Layout = %v", layout, n, sh.Layout())
			}
			qc := core.AcquireQueryCtx()
			for _, p := range pats {
				want := single.Select(p).Collect(-1)
				got := sh.Select(p).Collect(-1)
				if !equalTriples(got, want) {
					t.Fatalf("%v/%d shards, pattern %v (%v): sharded stream diverges\n got %v\nwant %v",
						layout, n, p, p.Shape(), got, want)
				}
				// The emission order must be the layout's for the shape,
				// not merely some permutation of the matches.
				perm := core.EmitPerm(layout, p.Shape())
				for i := 1; i < len(got); i++ {
					if !core.PermLess(perm, got[i-1], got[i]) {
						t.Fatalf("%v/%d shards, pattern %v: results not in %v order at %d",
							layout, n, p, perm, i)
					}
				}
				// Ctx-drawing path and the scalar drain.
				if got := collectScalar(sh.SelectCtx(p, qc)); !equalTriples(got, want) {
					t.Fatalf("%v/%d shards, pattern %v: SelectCtx stream diverges", layout, n, p)
				}
			}
			qc.Release()
		}
	}
}

// TestShardOracleLimitedDrain abandons merged iterators early (the
// server's limit path) and checks prefixes; abandoned fan-outs must not
// poison later queries through the recycled merge/ctx pools.
func TestShardOracleLimitedDrain(t *testing.T) {
	d := randDataset(t, 700, 3)
	single, err := core.Build(d, core.Layout2Tp)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := BuildSharded(d, core.Layout2Tp, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	pats := samplePatterns(d, rng, 4)
	for round := 0; round < 3; round++ {
		for _, p := range pats {
			limit := rng.Intn(5)
			want := single.Select(p).Collect(limit)
			got := sh.Select(p).Collect(limit)
			if !equalTriples(got, want) {
				t.Fatalf("pattern %v limit %d: got %v want %v", p, limit, got, want)
			}
		}
	}
}

// TestShardCount covers Count on merged streams (drains through fill).
func TestShardCount(t *testing.T) {
	d := randDataset(t, 800, 11)
	single, err := core.Build(d, core.Layout3T)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := BuildSharded(d, core.Layout3T, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []core.Pattern{
		core.NewPattern(-1, -1, -1),
		core.NewPattern(-1, 3, -1),
		core.NewPattern(-1, -1, 5),
		core.NewPattern(-1, 2, 9),
	} {
		if got, want := sh.Select(p).Count(), single.Select(p).Count(); got != want {
			t.Fatalf("Count(%v) = %d, want %d", p, got, want)
		}
	}
}

func TestBuildShardedValidation(t *testing.T) {
	d := randDataset(t, 50, 1)
	if _, err := BuildSharded(d, core.Layout3T, 0); err == nil {
		t.Fatal("BuildSharded with 0 shards should fail")
	}
	if _, err := BuildSharded(d, core.Layout3T, MaxShards+1); err == nil {
		t.Fatal("BuildSharded beyond MaxShards should fail")
	}
	if _, err := New(nil); err == nil {
		t.Fatal("New with no shards should fail")
	}
	a, err := core.Build(d, core.Layout3T)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Build(d, core.Layout2Tp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New([]core.Index{a, b}); err == nil {
		t.Fatal("New with mixed layouts should fail")
	}
}

func TestPartitionInvariants(t *testing.T) {
	d := randDataset(t, 600, 5)
	parts := Partition(d, 5)
	total := 0
	for i, part := range parts {
		total += len(part.Triples)
		if part.NS != d.NS || part.NP != d.NP || part.NO != d.NO {
			t.Fatalf("shard %d lost the global ID spaces", i)
		}
		for j, tr := range part.Triples {
			if ShardOf(tr.S, 5) != i {
				t.Fatalf("triple %v in wrong shard %d", tr, i)
			}
			if j > 0 && !part.Triples[j-1].Less(tr) {
				t.Fatalf("shard %d not in sorted SPO order at %d", i, j)
			}
		}
	}
	if total != len(d.Triples) {
		t.Fatalf("partition dropped triples: %d != %d", total, len(d.Triples))
	}
}

// TestShardSizeBits pins the accounting: the sum of the shards.
func TestShardSizeBits(t *testing.T) {
	d := randDataset(t, 400, 8)
	sh, err := BuildSharded(d, core.Layout2To, 3)
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for i := 0; i < sh.NumShards(); i++ {
		want += sh.Shard(i).SizeBits()
	}
	if got := sh.SizeBits(); got != want {
		t.Fatalf("SizeBits = %d, want %d", got, want)
	}
	if sh.Trie(core.PermSPO) != nil {
		t.Fatal("multi-shard store should not expose a single trie")
	}
	one, err := BuildSharded(d, core.Layout2To, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.Trie(core.PermSPO) == nil {
		t.Fatal("single-shard store should delegate Trie")
	}
}

// TestShardRaceStress hammers one shared sharded store from 16
// goroutines mixing routed and fan-out shapes, each drawing pooled
// contexts; run under -race this exercises the per-shard ctx pools and
// the merge-state pool. Expected counts are computed serially first.
func TestShardRaceStress(t *testing.T) {
	d := randDataset(t, 1200, 77)
	sh, err := BuildSharded(d, core.Layout2Tp, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	pats := samplePatterns(d, rng, 8)
	want := make([]int, len(pats))
	for i, p := range pats {
		want[i] = sh.Select(p).Count()
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			qc := core.AcquireQueryCtx()
			defer qc.Release()
			buf := qc.Batch()
			for round := 0; round < 30; round++ {
				i := (g*31 + round*7) % len(pats)
				it := sh.SelectCtx(pats[i], qc)
				n := 0
				for {
					k := it.NextBatch(buf)
					if k == 0 {
						break
					}
					n += k
				}
				if n != want[i] {
					errc <- errCount{i: i, got: n, want: want[i]}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

type errCount struct{ i, got, want int }

func (e errCount) Error() string {
	return "concurrent count mismatch"
}
