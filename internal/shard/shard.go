// Package shard partitions one triple collection into N independent
// permuted-trie indexes over a single shared dictionary and ID space,
// turning the monolithic index of internal/core into a horizontally
// organized store: builds parallelize across shards (one core each),
// per-shard working sets stay bounded, and the read path scatters a
// pattern to the shards that can hold matches and gathers their sorted
// result streams back into the exact emission order of the equivalent
// single index.
//
// Partitioning is by subject: every triple (s, p, o) lives in shard
// ShardOf(s, N). Because the paper's pattern dispatch resolves every
// subject-bound shape (SPO, SP?, S?O, S??) on tries rooted at the
// subject, those queries route to exactly one shard and execute there
// unchanged. Subject-unbound shapes fan out to all shards; each shard
// emits its matches in the layout's emission order for the shape
// (core.EmitPerm), and a loser-tree merge interleaves the N sorted
// streams back into that same global order, so callers cannot tell a
// sharded store from a single index by looking at results.
//
// All shards share the dataset's global NS/NP/NO ID spaces. That keeps
// the partition invisible to the algorithms — inverted scans iterate
// the full predicate range on every shard, finds address the same root
// spaces — at the cost of N root-level pointer structures sized by the
// global spaces, which the per-shard SizeBits accounting makes visible.
//
// A Store is immutable after construction and follows the core
// concurrency contract ("one index, N goroutines"): any number of
// goroutines may query it concurrently. Fan-out scratch is drawn from
// per-shard QueryCtx pools so each shard's warmed compressed-sequence
// cursors are reused by later fan-outs instead of ping-ponging between
// shards.
package shard

import (
	"fmt"
	"sync"

	"rdfindexes/internal/core"
	"rdfindexes/internal/trie"
)

// MaxShards bounds the shard count: a sanity limit for the store file
// format, far above any useful partition of one process's cores.
const MaxShards = 4096

// ShardOf maps a subject ID to its shard. The multiply-shift hash
// (Fibonacci hashing by the golden-ratio constant) spreads the dense,
// correlated subject IDs produced by dictionary encoding evenly across
// shards; the function is pure, so the builder and the query router
// always agree. n <= 1 collapses to shard 0.
func ShardOf(s core.ID, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(s) * 0x9E3779B97F4A7C15
	return int((h >> 33) % uint64(n))
}

// Partition splits a dataset into n per-shard datasets by subject hash.
// The canonical SPO sort order of the input is preserved within each
// shard (the split is a stable scan), and every part keeps the global
// NS/NP/NO ID-space sizes — the invariant that makes per-shard tries
// address the same root spaces as the unsharded index.
func Partition(d *core.Dataset, n int) []*core.Dataset {
	counts := make([]int, n)
	for _, t := range d.Triples {
		counts[ShardOf(t.S, n)]++
	}
	bufs := make([][]core.Triple, n)
	for i := range bufs {
		bufs[i] = make([]core.Triple, 0, counts[i])
	}
	for _, t := range d.Triples {
		i := ShardOf(t.S, n)
		bufs[i] = append(bufs[i], t)
	}
	parts := make([]*core.Dataset, n)
	for i := range parts {
		parts[i] = &core.Dataset{Triples: bufs[i], NS: d.NS, NP: d.NP, NO: d.NO}
	}
	return parts
}

// Store is a sharded index: N per-shard core indexes of one layout over
// a shared ID space. It implements core.Index and core.CtxSelecter, so
// the whole read stack — pooled QueryCtx selection, the SPARQL
// executor, the HTTP server — serves it exactly like a single index.
type Store struct {
	shards     []core.Index
	layout     core.Layout
	numTriples int

	// pools hold per-shard query contexts for the fan-out path; see the
	// package comment. Entry i only ever serves shard i.
	pools []sync.Pool
	// merges recycles scatter-gather merge states (streams, loser tree,
	// per-stream read-ahead buffers) across fan-out queries.
	merges sync.Pool
}

// BuildSharded partitions d by subject hash and builds the n per-shard
// indexes concurrently, one goroutine per shard. With n == 1 the result
// wraps a single index built exactly like core.Build.
func BuildSharded(d *core.Dataset, layout core.Layout, n int, opts ...core.Option) (*Store, error) {
	if n < 1 || n > MaxShards {
		return nil, fmt.Errorf("shard: shard count %d out of range [1, %d]", n, MaxShards)
	}
	if n == 1 {
		// The partition is the identity; build from d directly instead
		// of copying the whole triple slice through Partition.
		x, err := core.Build(d, layout, opts...)
		if err != nil {
			return nil, fmt.Errorf("shard: build: %w", err)
		}
		return New([]core.Index{x})
	}
	parts := Partition(d, n)
	shards := make([]core.Index, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			shards[i], errs[i] = core.Build(parts[i], layout, opts...)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard: build: %w", err)
		}
	}
	return New(shards)
}

// New assembles a Store from already-built per-shard indexes (the store
// loader uses it after decoding shard sections in parallel). All shards
// must share one layout; shard i must hold exactly the triples whose
// subject hashes to i under ShardOf(s, len(shards)).
func New(shards []core.Index) (*Store, error) {
	for i, x := range shards {
		if x == nil {
			return nil, fmt.Errorf("shard: shard %d is nil", i)
		}
	}
	return NewDegraded(shards)
}

// NewDegraded assembles a Store like New, but tolerates nil entries:
// a nil shard is quarantined (its section failed integrity checking and
// was excluded by a degraded open). The partition geometry is preserved
// — routing still hashes over the original shard count — so queries
// routed to a quarantined shard return no matches and fan-outs merge
// only the healthy shards. At least one shard must be healthy.
func NewDegraded(shards []core.Index) (*Store, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: no shards")
	}
	if len(shards) > MaxShards {
		return nil, fmt.Errorf("shard: shard count %d out of range [1, %d]", len(shards), MaxShards)
	}
	var layout core.Layout
	healthy, total := 0, 0
	for i, x := range shards {
		if x == nil {
			continue
		}
		if healthy == 0 {
			layout = x.Layout()
		} else if x.Layout() != layout {
			return nil, fmt.Errorf("shard: shard %d has layout %v, want %v", i, x.Layout(), layout)
		}
		healthy++
		total += x.NumTriples()
	}
	if healthy == 0 {
		return nil, fmt.Errorf("shard: no healthy shards")
	}
	return &Store{shards: shards, layout: layout, numTriples: total, pools: make([]sync.Pool, len(shards))}, nil
}

// Quarantined returns the indexes of quarantined (nil) shards, nil when
// every shard is healthy.
func (s *Store) Quarantined() []int {
	var q []int
	for i, x := range s.shards {
		if x == nil {
			q = append(q, i)
		}
	}
	return q
}

// Layout returns the layout shared by every shard.
func (s *Store) Layout() core.Layout { return s.layout }

// NumShards returns the number of shards.
func (s *Store) NumShards() int { return len(s.shards) }

// Shard returns the i-th per-shard index; the store loader serializes
// them individually.
func (s *Store) Shard(i int) core.Index { return s.shards[i] }

// NumTriples returns the total triple count across shards.
func (s *Store) NumTriples() int { return s.numTriples }

// SizeBits returns the summed storage footprint of all healthy shards.
func (s *Store) SizeBits() uint64 {
	var total uint64
	for _, x := range s.shards {
		if x != nil {
			total += x.SizeBits()
		}
	}
	return total
}

// Trie exposes a materialized permutation only for single-shard stores,
// where it is the underlying index's trie; a multi-shard store has no
// single trie per permutation and returns nil (statistics should use
// NumTriples/SizeBits, as with dynamic snapshots).
func (s *Store) Trie(p core.Perm) *trie.Trie {
	if len(s.shards) == 1 {
		return s.shards[0].Trie(p)
	}
	return nil
}

// Select resolves a pattern: routed to the owning shard when the
// subject is bound, scatter-gathered across all shards otherwise.
func (s *Store) Select(p core.Pattern) *core.Iterator { return s.SelectCtx(p, nil) }

// SelectCtx resolves a pattern like Select. The caller's ctx (which may
// be nil) serves routed lookups directly; fan-outs draw per-shard
// contexts from the store's own pools instead, so shard-affine cursor
// reuse is preserved no matter which caller ctx arrives.
func (s *Store) SelectCtx(p core.Pattern, qc *core.QueryCtx) *core.Iterator {
	if len(s.shards) == 1 {
		return core.SelectWithCtx(s.shards[0], p, qc)
	}
	if p.S != core.Wildcard {
		// Every triple with this subject lives in one shard, so the
		// routed query's result stream is exactly the single-index one.
		x := s.shards[ShardOf(p.S, len(s.shards))]
		if x == nil {
			// The owning shard is quarantined: degraded serving answers
			// from the healthy shards only, and this subject's triples
			// all lived in the lost one.
			return core.EmptyIterator()
		}
		return core.SelectWithCtx(x, p, qc)
	}
	return s.selectFanOut(p)
}

// acquireCtx takes a query context from shard i's pool.
func (s *Store) acquireCtx(i int) *core.QueryCtx {
	if qc, ok := s.pools[i].Get().(*core.QueryCtx); ok {
		//rdf:allow(ownership transfers to the caller; releaseCtx returns it to the pool)
		return qc
	}
	return &core.QueryCtx{}
}

// releaseCtx returns a drained shard context to shard i's pool.
func (s *Store) releaseCtx(i int, qc *core.QueryCtx) { s.pools[i].Put(qc) }
