package shard

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"rdfindexes/internal/core"
	"rdfindexes/internal/sparql"
)

// execAll runs a query and returns its solutions rendered to sorted
// strings (BGP solution order is an executor detail, not part of the
// sharding contract; the set must match).
func execAll(t *testing.T, q sparql.Query, st sparql.Store) []string {
	t.Helper()
	var rows []string
	_, err := sparql.ExecuteContext(context.Background(), q, st, func(b sparql.Bindings) {
		var row []string
		for _, v := range q.Vars {
			row = append(row, fmt.Sprintf("%s=%d", v, b[v]))
		}
		rows = append(rows, fmt.Sprint(row))
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(rows)
	return rows
}

// TestSparqlOverShardedStore runs BGP queries through the executor over
// sharded stores and checks the solution sets against the single index.
// The sharded store satisfies sparql.Store via core.Index, so this is
// the end-to-end wiring the server uses.
func TestSparqlOverShardedStore(t *testing.T) {
	d := randDataset(t, 900, 19)
	queries := []string{
		"SELECT ?x ?y WHERE { ?x <1> ?y . }",
		"SELECT ?x ?y ?z WHERE { ?x <1> ?y . ?y <2> ?z . }",
		"SELECT ?x WHERE { ?x <0> ?y . ?x <3> ?z . }",
		"SELECT ?x ?y WHERE { ?x ?p <5> . ?x <2> ?y . }",
	}
	for _, layout := range []core.Layout{core.Layout3T, core.Layout2Tp} {
		single, err := core.Build(d, layout)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{2, 4} {
			sh, err := BuildSharded(d, layout, n)
			if err != nil {
				t.Fatal(err)
			}
			for _, qs := range queries {
				q, err := sparql.Parse(qs)
				if err != nil {
					t.Fatal(err)
				}
				want := execAll(t, q, single)
				got := execAll(t, q, sh)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%v/%d shards, %s: %d solutions, want %d\n got %v\nwant %v",
						layout, n, qs, len(got), len(want), got, want)
				}
			}
		}
	}
}

// TestSparqlShardedCancellation pins that context cancellation
// propagates through scatter-gather iteration.
func TestSparqlShardedCancellation(t *testing.T) {
	d := randDataset(t, 1500, 31)
	sh, err := BuildSharded(d, core.Layout2Tp, 4)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sparql.Parse("SELECT ?x ?y ?z WHERE { ?x ?p ?y . ?y ?q ?z . }")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sparql.ExecuteContext(ctx, q, sh, nil); err == nil {
		t.Fatal("cancelled execution returned no error")
	}
}

// TestSparqlStreamOverShardedStore pins that the reused-bindings
// streaming executor produces the same solution set as the allocating
// one over a scatter-gather store — the path the server's NDJSON row
// writer rides on.
func TestSparqlStreamOverShardedStore(t *testing.T) {
	d := randDataset(t, 900, 23)
	sh, err := BuildSharded(d, core.Layout2Tp, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, qs := range []string{
		"SELECT ?x ?y WHERE { ?x <1> ?y . }",
		"SELECT ?x ?y ?z WHERE { ?x <1> ?y . ?y <2> ?z . }",
	} {
		q, err := sparql.Parse(qs)
		if err != nil {
			t.Fatal(err)
		}
		want := execAll(t, q, sh)
		var got []string
		var prev sparql.Bindings
		_, err = sparql.StreamWithOrder(context.Background(), q, sh, sparql.Plan(q), func(b sparql.Bindings) {
			if prev != nil && reflect.ValueOf(b).Pointer() != reflect.ValueOf(prev).Pointer() {
				t.Fatal("StreamWithOrder allocated a fresh bindings map")
			}
			prev = b //rdf:allow(test asserts the executor reuses one map; retaining it is the point)
			var row []string
			for _, v := range q.Vars {
				row = append(row, fmt.Sprintf("%s=%d", v, b[v]))
			}
			got = append(got, fmt.Sprint(row))
		})
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: stream solutions diverge\n got %v\nwant %v", qs, got, want)
		}
	}
}
