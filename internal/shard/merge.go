package shard

import (
	"rdfindexes/internal/core"
)

// The scatter-gather read path: a subject-unbound pattern is issued to
// every shard, and the N sorted result streams are interleaved by a
// loser tree keyed on the layout's emission permutation for the shape.
// Each stream reads ahead in blocks through a per-shard pooled
// QueryCtx, so steady-state merging costs one tree replay (log N triple
// comparisons) per emitted triple and no allocation; when all but one
// stream are exhausted the tree is bypassed and the survivor's blocks
// are copied straight into the caller's batch.
//
// Triples are globally distinct and each lives in exactly one shard, so
// the merge never sees equal keys: the interleaving is unique, and it
// equals the emission order of the unsharded index — the property the
// randomized oracle in shard_test.go pins for every layout and shape.

// streamBatch is the per-stream read-ahead block. Small enough that an
// 8-shard merge state stays cache-resident, large enough to amortize
// the per-refill virtual call into the shard iterator.
const streamBatch = 64

// stream is one shard's sorted result cursor inside a merge.
type stream struct {
	it   *core.Iterator
	qc   *core.QueryCtx // returned to the shard's pool on exhaustion
	head core.Triple    // next unemitted triple, valid while live
	pos  int
	n    int
	buf  [streamBatch]core.Triple
}

// advance loads the stream's next head, refilling the read-ahead block
// when drained; it reports false when the shard iterator is exhausted.
//
//rdf:hotpath
func (st *stream) advance() bool {
	if st.pos >= st.n {
		st.n = st.it.NextBatch(st.buf[:])
		st.pos = 0
		if st.n == 0 {
			return false
		}
	}
	st.head = st.buf[st.pos]
	st.pos++
	return true
}

// mergeState is the recycled scatter-gather state: the per-shard
// streams plus the loser tree over them. It implements core.BlockSource
// so the merged result plugs into the standard batched Iterator.
type mergeState struct {
	store *Store
	perm  core.Perm

	streams []stream
	// Loser tree over len(streams) leaves padded to pad (a power of
	// two): loser[v] for internal nodes v in [1, pad) holds the stream
	// index that lost the match at v, winner holds the overall winner.
	// Stream index -1 is an exhausted (infinite-key) leaf. win is the
	// scratch winners array reused by rebuilds.
	loser  []int
	win    []int
	pad    int
	winner int
	live   int
	done   bool // final Fill returned 0 and the state was recycled
}

// selectFanOut issues p on every shard and returns the order-preserving
// merged iterator.
func (s *Store) selectFanOut(p core.Pattern) *core.Iterator {
	m, ok := s.merges.Get().(*mergeState)
	if !ok {
		m = &mergeState{store: s}
	}
	m.init(p)
	//rdf:allow(ownership transfers to the iterator; recycle() reclaims it when the merge drains)
	return core.NewBlockIterator(m)
}

// init primes the per-shard streams and builds the loser tree.
func (m *mergeState) init(p core.Pattern) {
	s := m.store
	k := len(s.shards)
	m.perm = core.EmitPerm(s.layout, p.Shape())
	if cap(m.streams) < k {
		m.streams = make([]stream, k)
	}
	m.streams = m.streams[:k]
	m.done = false
	m.live = 0
	for i := range m.streams {
		st := &m.streams[i]
		if s.shards[i] == nil {
			// Quarantined shard: an exhausted-from-the-start stream.
			st.it, st.qc = nil, nil
			st.pos, st.n = 0, 0
			continue
		}
		st.qc = s.acquireCtx(i)
		st.it = core.SelectWithCtx(s.shards[i], p, st.qc)
		st.pos, st.n = 0, 0
		if st.advance() {
			m.live++
		} else {
			m.finish(i)
		}
	}
	m.build()
}

// finish releases stream i's shard context back to its pool and marks
// the stream exhausted (nil iterator = infinite key).
func (m *mergeState) finish(i int) {
	st := &m.streams[i]
	st.it = nil
	if st.qc != nil {
		m.store.releaseCtx(i, st.qc)
		st.qc = nil
	}
}

// beats reports whether stream a's head precedes stream b's head in the
// merge permutation. Exhausted streams (-1 or a nil iterator) compare
// as infinity; distinct triples guarantee no ties between live streams.
//
//rdf:hotpath
func (m *mergeState) beats(a, b int) bool {
	if a < 0 || m.streams[a].it == nil {
		return false
	}
	if b < 0 || m.streams[b].it == nil {
		return true
	}
	return core.PermLess(m.perm, m.streams[a].head, m.streams[b].head)
}

// build constructs the loser tree bottom-up over the primed streams.
func (m *mergeState) build() {
	k := len(m.streams)
	pad := 1
	for pad < k {
		pad *= 2
	}
	m.pad = pad
	if cap(m.loser) < pad {
		m.loser = make([]int, pad)
		m.win = make([]int, 2*pad)
	}
	m.loser = m.loser[:pad]
	m.win = m.win[:2*pad]
	for i := 0; i < pad; i++ {
		if i < k && m.streams[i].it != nil {
			m.win[pad+i] = i
		} else {
			m.win[pad+i] = -1
		}
	}
	for v := pad - 1; v >= 1; v-- {
		a, b := m.win[2*v], m.win[2*v+1]
		if m.beats(a, b) {
			m.win[v], m.loser[v] = a, b
		} else {
			m.win[v], m.loser[v] = b, a
		}
	}
	m.winner = m.win[1]
	if m.live == 0 {
		m.winner = -1
	}
}

// replay re-runs the matches on the path from stream s's leaf to the
// root after s's head changed (advanced or exhausted), restoring the
// tree invariant and the overall winner.
//
//rdf:hotpath
func (m *mergeState) replay(s int) {
	w := s
	for v := (m.pad + s) / 2; v >= 1; v /= 2 {
		if m.beats(m.loser[v], w) {
			m.loser[v], w = w, m.loser[v]
		}
	}
	m.winner = w
	if m.live == 0 {
		m.winner = -1
	}
}

// recycle detaches the state and returns it to the store's merge pool.
// Called exactly once, on the Fill call that returns 0 — the batched
// Iterator never calls its source again after that.
func (m *mergeState) recycle() {
	if m.done {
		return
	}
	m.done = true
	for i := range m.streams {
		if m.streams[i].it != nil {
			m.finish(i)
		}
	}
	m.store.merges.Put(m)
}

// Fill implements core.BlockSource: it emits the globally next triples
// in merge order until out is full or every stream is exhausted.
//
//rdf:hotpath
func (m *mergeState) Fill(out []core.Triple) int {
	if m.winner < 0 {
		m.recycle()
		return 0
	}
	n := 0
	for n < len(out) {
		w := m.winner
		if w < 0 {
			break
		}
		if m.live == 1 {
			return n + m.drainSolo(w, out[n:])
		}
		st := &m.streams[w]
		out[n] = st.head
		n++
		if !st.advance() {
			m.live--
			m.finish(w)
		}
		m.replay(w)
	}
	return n
}

// drainSolo bypasses the tree once a single live stream remains: emit
// its head, copy its buffered block, then let it decode straight into
// the caller's batch. The head invariant is restored before returning
// so the next Fill continues seamlessly.
//
//rdf:hotpath
func (m *mergeState) drainSolo(w int, out []core.Triple) int {
	st := &m.streams[w]
	out[0] = st.head
	n := 1
	for n < len(out) {
		if st.pos < st.n {
			c := copy(out[n:], st.buf[st.pos:st.n])
			st.pos += c
			n += c
			continue
		}
		k := st.it.NextBatch(out[n:])
		if k == 0 {
			m.live--
			m.finish(w)
			m.winner = -1
			return n
		}
		n += k
	}
	// out is full; pull the next head (or discover exhaustion) so the
	// next Fill call starts from a consistent stream state.
	if !st.advance() {
		m.live--
		m.finish(w)
		m.winner = -1
	}
	return n
}
