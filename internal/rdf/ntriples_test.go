package rdf

import (
	"strings"
	"testing"

	"rdfindexes/internal/core"
)

func TestParseLineForms(t *testing.T) {
	cases := []struct {
		line string
		want Statement
	}{
		{
			`<http://a> <http://p> <http://b> .`,
			Statement{Term{IRI, "http://a", ""}, Term{IRI, "http://p", ""}, Term{IRI, "http://b", ""}},
		},
		{
			`_:x <http://p> "hello" .`,
			Statement{Term{BlankNode, "x", ""}, Term{IRI, "http://p", ""}, Term{Literal, "hello", ""}},
		},
		{
			`<http://a> <http://p> "bonjour"@fr .`,
			Statement{Term{IRI, "http://a", ""}, Term{IRI, "http://p", ""}, Term{Literal, "bonjour", "@fr"}},
		},
		{
			`<http://a> <http://p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
			Statement{Term{IRI, "http://a", ""}, Term{IRI, "http://p", ""},
				Term{Literal, "42", "http://www.w3.org/2001/XMLSchema#integer"}},
		},
		{
			`<http://a> <http://p> "with \"quotes\" and \n newline" .`,
			Statement{Term{IRI, "http://a", ""}, Term{IRI, "http://p", ""},
				Term{Literal, "with \"quotes\" and \n newline", ""}},
		},
	}
	for _, c := range cases {
		got, ok, err := ParseLine(c.line)
		if err != nil || !ok {
			t.Fatalf("ParseLine(%q): ok=%v err=%v", c.line, ok, err)
		}
		if got != c.want {
			t.Fatalf("ParseLine(%q) = %+v, want %+v", c.line, got, c.want)
		}
	}
}

func TestParseLineSkipsCommentsAndBlank(t *testing.T) {
	for _, line := range []string{"", "   ", "# a comment", "  # indented comment"} {
		_, ok, err := ParseLine(line)
		if err != nil || ok {
			t.Fatalf("ParseLine(%q): ok=%v err=%v, want skip", line, ok, err)
		}
	}
}

func TestParseLineErrors(t *testing.T) {
	bad := []string{
		`<http://a> <http://p> <http://b>`,  // no dot
		`<http://a> "lit" <http://b> .`,     // literal predicate
		`<http://a <http://p> <http://b> .`, // unterminated IRI
		`<http://a> <http://p> "open .`,     // unterminated literal
		`_: <http://p> <http://b> .`,        // empty blank label
		`<http://a> <http://p> .`,           // missing object
	}
	for _, line := range bad {
		if _, ok, err := ParseLine(line); err == nil && ok {
			t.Errorf("ParseLine accepted %q", line)
		}
	}
}

func TestStatementStringRoundTrip(t *testing.T) {
	lines := []string{
		`<http://a> <http://p> <http://b> .`,
		`_:x <http://p> "hello" .`,
		`<http://a> <http://p> "bonjour"@fr .`,
		`<http://a> <http://p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
	}
	for _, line := range lines {
		st, ok, err := ParseLine(line)
		if err != nil || !ok {
			t.Fatalf("parse %q: %v", line, err)
		}
		st2, ok, err := ParseLine(st.String())
		if err != nil || !ok {
			t.Fatalf("re-parse %q: %v", st.String(), err)
		}
		if st != st2 {
			t.Fatalf("round trip changed %+v to %+v", st, st2)
		}
	}
}

// TestTermKeyRoundTrip pins Parse(Term.Key()) = Term for literals with
// bytes %q-style serialization would escape in ways the parser does not
// decode — the invariant the write-ahead log's term records depend on.
func TestTermKeyRoundTrip(t *testing.T) {
	values := []string{
		"plain",
		"with \"quotes\" and \\backslash\\",
		"tab\there\nnewline\rcr",
		"control \x01 byte and del \x7f",
		"utf8 héllo ✓",
		"",
	}
	for _, v := range values {
		for _, term := range []Term{
			{Kind: Literal, Value: v},
			{Kind: Literal, Value: v, Qualifier: "@en"},
			{Kind: Literal, Value: v, Qualifier: "http://t"},
		} {
			back, err := ParseTerm(term.Key())
			if err != nil {
				t.Fatalf("ParseTerm(%q): %v", term.Key(), err)
			}
			if back != term {
				t.Fatalf("round trip changed %+v to %+v (key %q)", term, back, term.Key())
			}
			if back.Key() != term.Key() {
				t.Fatalf("key not stable: %q vs %q", term.Key(), back.Key())
			}
		}
	}
}

const sampleNT = `# sample graph
<http://ex/alice> <http://ex/knows> <http://ex/bob> .
<http://ex/bob> <http://ex/knows> <http://ex/carol> .
<http://ex/alice> <http://ex/name> "Alice" .
<http://ex/bob> <http://ex/name> "Bob" .
<http://ex/carol> <http://ex/age> "29"^^<http://www.w3.org/2001/XMLSchema#integer> .
`

func TestParseAllAndEncode(t *testing.T) {
	sts, err := ParseAll(strings.NewReader(sampleNT))
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 5 {
		t.Fatalf("parsed %d statements, want 5", len(sts))
	}
	d, dicts, err := Encode(sts)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 5 {
		t.Fatalf("dataset has %d triples, want 5", d.Len())
	}
	if d.NS != d.NO || d.NS != dicts.SO.Len() {
		t.Fatalf("shared SO space broken: NS=%d NO=%d dict=%d", d.NS, d.NO, dicts.SO.Len())
	}
	// Query through an index by URI.
	x, err := core.Build2Tp(d)
	if err != nil {
		t.Fatal(err)
	}
	alice, ok := dicts.SO.Locate("<http://ex/alice>")
	if !ok {
		t.Fatal("alice missing from dictionary")
	}
	knows, ok := dicts.P.Locate("<http://ex/knows>")
	if !ok {
		t.Fatal("knows missing from dictionary")
	}
	matches := x.Select(core.Pattern{S: core.ID(alice), P: core.ID(knows), O: core.Wildcard}).Collect(-1)
	if len(matches) != 1 {
		t.Fatalf("alice knows %d people, want 1", len(matches))
	}
	line, err := dicts.DecodeTriple(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if line != "<http://ex/alice> <http://ex/knows> <http://ex/bob> ." {
		t.Fatalf("decoded triple %q", line)
	}
}
