// Package rdf provides a minimal RDF term model and an N-Triples subset
// parser/serializer, plus the bridge that dictionary-encodes parsed
// statements into the integer datasets the indexes operate on. The paper
// indexes integer triples and treats URI-to-ID mapping as a separate
// problem; this package supplies that mapping for the end-to-end tools.
package rdf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"rdfindexes/internal/core"
	"rdfindexes/internal/dict"
)

// TermKind discriminates RDF term types.
type TermKind uint8

// The three N-Triples term kinds.
const (
	IRI TermKind = iota
	BlankNode
	Literal
)

// Term is an RDF term. For literals, Value holds the lexical form and
// Qualifier the language tag or datatype IRI (may be empty).
type Term struct {
	Kind      TermKind
	Value     string
	Qualifier string
}

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case BlankNode:
		return "_:" + t.Value
	default:
		s := quoteLiteral(t.Value)
		if strings.HasPrefix(t.Qualifier, "@") {
			return s + t.Qualifier
		}
		if t.Qualifier != "" {
			return s + "^^<" + t.Qualifier + ">"
		}
		return s
	}
}

// quoteLiteral serializes a literal's lexical form using exactly the
// escape set the parser decodes (\\ \" \n \r \t); other bytes pass
// through raw. Emitting Go-style \x.. or \u.. escapes here would break
// the Key round trip the write-ahead log depends on — the parser would
// read them back as different characters.
func quoteLiteral(s string) string {
	var sb strings.Builder
	sb.Grow(len(s) + 2)
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

// Key returns a canonical string for dictionary encoding.
func (t Term) Key() string { return t.String() }

// Statement is one parsed triple.
type Statement struct {
	S, P, O Term
}

// String renders the statement as an N-Triples line.
func (st Statement) String() string {
	return fmt.Sprintf("%v %v %v .", st.S, st.P, st.O)
}

// ParseLine parses a single N-Triples statement. Empty lines and
// #-comments yield ok=false with a nil error.
func ParseLine(line string) (Statement, bool, error) {
	p := &lineParser{s: line}
	p.skipSpace()
	if p.done() || p.peek() == '#' {
		return Statement{}, false, nil
	}
	s, err := p.term()
	if err != nil {
		return Statement{}, false, err
	}
	pr, err := p.term()
	if err != nil {
		return Statement{}, false, err
	}
	if pr.Kind != IRI {
		return Statement{}, false, fmt.Errorf("rdf: predicate must be an IRI in %q", line)
	}
	o, err := p.term()
	if err != nil {
		return Statement{}, false, err
	}
	p.skipSpace()
	if p.done() || p.peek() != '.' {
		return Statement{}, false, fmt.Errorf("rdf: missing terminating '.' in %q", line)
	}
	return Statement{S: s, P: pr, O: o}, true, nil
}

type lineParser struct {
	s   string
	pos int
}

func (p *lineParser) done() bool { return p.pos >= len(p.s) }
func (p *lineParser) peek() byte { return p.s[p.pos] }
func (p *lineParser) skipSpace() {
	for !p.done() && (p.peek() == ' ' || p.peek() == '\t') {
		p.pos++
	}
}

func (p *lineParser) term() (Term, error) {
	p.skipSpace()
	if p.done() {
		return Term{}, fmt.Errorf("rdf: truncated statement %q", p.s)
	}
	switch p.peek() {
	case '<':
		end := strings.IndexByte(p.s[p.pos:], '>')
		if end < 0 {
			return Term{}, fmt.Errorf("rdf: unterminated IRI in %q", p.s)
		}
		iri := p.s[p.pos+1 : p.pos+end]
		p.pos += end + 1
		return Term{Kind: IRI, Value: iri}, nil
	case '_':
		if p.pos+1 >= len(p.s) || p.s[p.pos+1] != ':' {
			return Term{}, fmt.Errorf("rdf: malformed blank node in %q", p.s)
		}
		j := p.pos + 2
		for j < len(p.s) && p.s[j] != ' ' && p.s[j] != '\t' {
			j++
		}
		name := p.s[p.pos+2 : j]
		p.pos = j
		if name == "" {
			return Term{}, fmt.Errorf("rdf: empty blank node label in %q", p.s)
		}
		return Term{Kind: BlankNode, Value: name}, nil
	case '"':
		// Scan the closing quote honoring backslash escapes.
		j := p.pos + 1
		var sb strings.Builder
		for j < len(p.s) {
			c := p.s[j]
			if c == '\\' && j+1 < len(p.s) {
				esc := p.s[j+1]
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case 'r':
					sb.WriteByte('\r')
				case '"', '\\':
					sb.WriteByte(esc)
				default:
					sb.WriteByte(esc)
				}
				j += 2
				continue
			}
			if c == '"' {
				break
			}
			sb.WriteByte(c)
			j++
		}
		if j >= len(p.s) {
			return Term{}, fmt.Errorf("rdf: unterminated literal in %q", p.s)
		}
		term := Term{Kind: Literal, Value: sb.String()}
		p.pos = j + 1
		// Optional language tag or datatype.
		if p.pos < len(p.s) && p.peek() == '@' {
			k := p.pos
			for k < len(p.s) && p.s[k] != ' ' && p.s[k] != '\t' {
				k++
			}
			term.Qualifier = p.s[p.pos:k]
			p.pos = k
		} else if strings.HasPrefix(p.s[p.pos:], "^^<") {
			end := strings.IndexByte(p.s[p.pos+3:], '>')
			if end < 0 {
				return Term{}, fmt.Errorf("rdf: unterminated datatype in %q", p.s)
			}
			term.Qualifier = p.s[p.pos+3 : p.pos+3+end]
			p.pos += 3 + end + 1
		}
		return term, nil
	}
	return Term{}, fmt.Errorf("rdf: unexpected character %q in %q", p.peek(), p.s)
}

// ParseTerm parses exactly one N-Triples term (IRI, blank node, or
// literal with optional language tag or datatype), requiring the whole
// string to be consumed. The write path uses it to canonicalize
// user-supplied terms before dictionary lookup and WAL logging.
func ParseTerm(s string) (Term, error) {
	p := &lineParser{s: s}
	t, err := p.term()
	if err != nil {
		return Term{}, err
	}
	p.skipSpace()
	if !p.done() {
		return Term{}, fmt.Errorf("rdf: trailing input after term in %q", s)
	}
	return t, nil
}

// ParseAll reads N-Triples statements from r, skipping comments and blank
// lines.
func ParseAll(r io.Reader) ([]Statement, error) {
	var out []Statement
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		st, ok, err := ParseLine(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if ok {
			out = append(out, st)
		}
	}
	return out, sc.Err()
}

// Dicts holds the three component dictionaries. Subjects and objects
// share one dictionary (entities commonly appear in both positions, and
// joins require a shared ID space); predicates get their own. The fields
// are dict.Reader so a serving view can substitute overlay-extended
// dictionaries (immutable front-coded base + in-memory additions) for
// the plain front-coded ones the build path produces.
type Dicts struct {
	SO dict.Reader
	P  dict.Reader
}

// Encode dictionary-encodes statements into an integer dataset plus its
// dictionaries.
func Encode(statements []Statement) (*core.Dataset, *Dicts, error) {
	soSet := map[string]bool{}
	pSet := map[string]bool{}
	for _, st := range statements {
		soSet[st.S.Key()] = true
		soSet[st.O.Key()] = true
		pSet[st.P.Key()] = true
	}
	soStrs := make([]string, 0, len(soSet))
	for s := range soSet {
		soStrs = append(soStrs, s)
	}
	sort.Strings(soStrs)
	pStrs := make([]string, 0, len(pSet))
	for s := range pSet {
		pStrs = append(pStrs, s)
	}
	sort.Strings(pStrs)

	so, err := dict.New(soStrs, dict.DefaultBucketSize)
	if err != nil {
		return nil, nil, err
	}
	pd, err := dict.New(pStrs, dict.DefaultBucketSize)
	if err != nil {
		return nil, nil, err
	}
	// The encode loop below locates every term of every statement; the
	// O(1) hash index pays for itself immediately and then serves the
	// query path.
	so.BuildLocateHash()
	pd.BuildLocateHash()
	ds := &Dicts{SO: so, P: pd}

	ts := make([]core.Triple, 0, len(statements))
	for _, st := range statements {
		s, _ := so.Locate(st.S.Key())
		p, _ := pd.Locate(st.P.Key())
		o, _ := so.Locate(st.O.Key())
		ts = append(ts, core.Triple{S: core.ID(s), P: core.ID(p), O: core.ID(o)})
	}
	d := core.NewDataset(ts)
	// Shared subject/object space.
	if ds.SO.Len() > d.NS {
		d.NS = ds.SO.Len()
	}
	if ds.SO.Len() > d.NO {
		d.NO = ds.SO.Len()
	}
	return d, ds, nil
}

// DecodeTriple maps an integer triple back to N-Triples syntax.
func (ds *Dicts) DecodeTriple(t core.Triple) (string, error) {
	s, ok1 := ds.SO.Extract(int(t.S))
	p, ok2 := ds.P.Extract(int(t.P))
	o, ok3 := ds.SO.Extract(int(t.O))
	if !ok1 || !ok2 || !ok3 {
		return "", fmt.Errorf("rdf: triple %v has IDs outside the dictionaries", t)
	}
	return fmt.Sprintf("%s %s %s .", s, p, o), nil
}
