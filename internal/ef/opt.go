package ef

import (
	"fmt"
	"math/bits"

	xbits "rdfindexes/internal/bits"
	"rdfindexes/internal/codec"
)

// OptPartitioned is the cost-optimized variant of partitioned Elias-Fano:
// instead of fixed-size partitions, boundaries are chosen by a dynamic
// program minimizing the estimated encoded size (the approach of
// Ottaviano and Venturini, here at a boundary granularity of optGrain
// positions, which approximates the optimum within a small constant).
// Random access pays one extra search to locate the partition of a
// position; the space is at most that of the uniform partitioning.
type OptPartitioned struct {
	n        int
	universe uint64
	ends     *Sequence // exclusive end position of each partition
	upper    *Sequence // upper bound of each partition
	kinds    []byte
	offsets  *xbits.CompactVector
	payload  *xbits.Vector
}

// optGrain is the boundary granularity of the partitioning DP.
const optGrain = 64

// optMaxPart is the maximum partition size considered by the DP.
const optMaxPart = 4096

// optFixedCost approximates the per-partition overhead in bits (endpoint,
// upper bound, offset and kind entries).
const optFixedCost = 96

// estimateCost approximates the encoded size in bits of one partition.
func estimateCost(sz int, span uint64) uint64 {
	if span == uint64(sz) {
		return optFixedCost // likely allOnes
	}
	l := lowBitsFor(sz, span)
	ef := uint64(6) + uint64(sz)*uint64(l) + uint64(sz) + span>>l + 1
	if span < ef {
		return span + optFixedCost // bitmap
	}
	return ef + optFixedCost
}

// NewOptPartitioned encodes values (non-decreasing) with cost-optimized
// partition boundaries.
func NewOptPartitioned(values []uint64) *OptPartitioned {
	n := len(values)
	p := &OptPartitioned{n: n}
	if n > 0 {
		p.universe = values[n-1]
	}
	for i := 1; i < n; i++ {
		if values[i] < values[i-1] {
			panic(fmt.Sprintf("ef: sequence not monotone at %d", i))
		}
	}

	// Candidate boundaries at multiples of optGrain plus n itself.
	numCands := (n + optGrain - 1) / optGrain
	boundary := func(c int) int { // boundary position of candidate c
		if pos := c * optGrain; pos < n {
			return pos
		}
		return n
	}
	// dp over candidates 0..numCands; dp[c] = best cost of encoding
	// values[0:boundary(c)].
	const inf = ^uint64(0) >> 1
	dp := make([]uint64, numCands+1)
	from := make([]int32, numCands+1)
	for c := 1; c <= numCands; c++ {
		dp[c] = inf
		end := boundary(c)
		maxBack := optMaxPart / optGrain
		for back := 1; back <= maxBack && c-back >= 0; back++ {
			start := boundary(c - back)
			if start >= end {
				continue
			}
			var base uint64
			if start > 0 {
				base = values[start-1]
			}
			cost := dp[c-back] + estimateCost(end-start, values[end-1]-base)
			if cost < dp[c] {
				dp[c] = cost
				from[c] = int32(c - back)
			}
		}
	}

	// Recover boundaries and encode each partition.
	var cuts []int
	for c := numCands; c > 0; c = int(from[c]) {
		cuts = append(cuts, boundary(c))
	}
	for i, j := 0, len(cuts)-1; i < j; i, j = i+1, j-1 {
		cuts[i], cuts[j] = cuts[j], cuts[i]
	}

	p.payload = xbits.WithCapacity(n)
	var ends, uppers, offsets []uint64
	start := 0
	var base uint64
	for _, end := range cuts {
		part := values[start:end]
		ub := part[len(part)-1]
		ends = append(ends, uint64(end))
		uppers = append(uppers, ub)
		offsets = append(offsets, uint64(p.payload.Len()))
		p.kinds = append(p.kinds, encodePartitionInto(p.payload, part, base, ub))
		base = ub
		start = end
	}
	if len(offsets) == 0 {
		offsets = []uint64{0}
	}
	p.ends = New(ends)
	p.upper = New(uppers)
	p.offsets = xbits.NewCompact(offsets)
	return p
}

// Len returns the number of elements.
func (p *OptPartitioned) Len() int { return p.n }

// Universe returns the largest value.
func (p *OptPartitioned) Universe() uint64 { return p.universe }

// NumPartitions returns the number of partitions chosen by the DP.
func (p *OptPartitioned) NumPartitions() int { return len(p.kinds) }

// partBounds returns the global position range of partition k.
func (p *OptPartitioned) partBounds(k int) (int, int) {
	var start uint64
	var end uint64
	if k > 0 {
		start, end = p.ends.AccessPair(k - 1)
	} else {
		end = p.ends.Access(0)
	}
	return int(start), int(end)
}

func (p *OptPartitioned) part(k int) partView {
	var base, ub uint64
	if k > 0 {
		base, ub = p.upper.AccessPair(k - 1)
	} else {
		ub = p.upper.Access(0)
	}
	start, end := p.partBounds(k)
	return partView{
		payload: p.payload,
		kind:    p.kinds[k],
		base:    base,
		span:    ub - base,
		off:     int(p.offsets.At(k)),
		sz:      end - start,
	}
}

// partOf locates the partition containing global position i.
func (p *OptPartitioned) partOf(i int) int {
	k, _, ok := p.ends.NextGEQ(uint64(i) + 1)
	if !ok {
		panic("ef: position beyond last partition")
	}
	return k
}

// Access returns the i-th value.
func (p *OptPartitioned) Access(i int) uint64 {
	k := p.partOf(i)
	start, _ := p.partBounds(k)
	return p.part(k).access(i - start)
}

// AccessPair returns values i and i+1.
func (p *OptPartitioned) AccessPair(i int) (uint64, uint64) {
	return p.Access(i), p.Access(i + 1)
}

// NextGEQ returns the position and value of the first element >= x.
func (p *OptPartitioned) NextGEQ(x uint64) (int, uint64, bool) {
	if p.n == 0 || x > p.universe {
		return p.n, 0, false
	}
	k, _, ok := p.upper.NextGEQ(x)
	if !ok {
		return p.n, 0, false
	}
	pv := p.part(k)
	j, v, ok := pv.nextGEQ(x)
	if !ok {
		return p.n, 0, false
	}
	start, _ := p.partBounds(k)
	return start + j, v, true
}

// OptIterator iterates an OptPartitioned sequence with the same streaming
// cursor as PartIterator.
type OptIterator struct {
	p       *OptPartitioned
	i       int
	k       int
	partEnd int
	pv      partView
	l       uint
	lowOff  int
	regOff  int
	regLen  int
	chBase  int
	chunk   uint64
	inPart  int
}

// Iterator returns an iterator positioned at index from.
func (p *OptPartitioned) Iterator(from int) *OptIterator {
	return &OptIterator{p: p, i: from, k: -1}
}

// MakeIterator returns an iterator value positioned at index from, for
// callers that embed it without a separate allocation.
func (p *OptPartitioned) MakeIterator(from int) OptIterator {
	return OptIterator{p: p, i: from, k: -1}
}

// MakeIteratorBase returns an iterator positioned at index from together
// with the value at from-1, decoding the predecessor on the way instead
// of paying a separate random access. from must be in [1, Len()].
func (p *OptPartitioned) MakeIteratorBase(from int) (OptIterator, uint64) {
	it := OptIterator{p: p, i: from - 1, k: -1}
	base, _ := it.Next()
	return it, base
}

// Reset repositions the iterator at index from. The partition cursor is
// re-established lazily on the next read.
func (it *OptIterator) Reset(from int) {
	it.i = from
	it.k = -1
	it.partEnd = 0
}

func (it *OptIterator) enter(k, j int) {
	it.k = k
	_, it.partEnd = it.p.partBounds(k)
	it.pv = it.p.part(k)
	it.inPart = j
	switch it.pv.kind {
	case kindAllOnes:
		return
	case kindBitmap:
		it.regOff = it.pv.off
		it.regLen = int(it.pv.span)
	default:
		it.l = uint(it.pv.payload.Get(it.pv.off, 6))
		it.lowOff = it.pv.off + 6
		it.regOff = it.lowOff + it.pv.sz*int(it.l)
		it.regLen = it.pv.sz + int(it.pv.span>>it.l) + 1
	}
	pos := selectInRange(it.pv.payload, it.regOff, it.regLen, j)
	it.chBase = pos &^ 63
	w := it.regLen - it.chBase
	if w > 64 {
		w = 64
	}
	it.chunk = it.pv.payload.Get(it.regOff+it.chBase, uint(w))
	it.chunk &^= 1<<uint(pos-it.chBase) - 1
}

func (it *OptIterator) nextBit() int {
	for it.chunk == 0 {
		it.chBase += 64
		w := it.regLen - it.chBase
		if w > 64 {
			w = 64
		}
		it.chunk = it.pv.payload.Get(it.regOff+it.chBase, uint(w))
	}
	t := bits.TrailingZeros64(it.chunk)
	it.chunk &= it.chunk - 1
	return it.chBase + t
}

// Next returns the next value, or ok=false at the end.
func (it *OptIterator) Next() (uint64, bool) {
	if it.i >= it.p.n {
		return 0, false
	}
	if it.k < 0 || it.i >= it.partEnd {
		k := it.k + 1
		if it.k < 0 {
			k = it.p.partOf(it.i)
		}
		start, _ := it.p.partBounds(k)
		it.enter(k, it.i-start)
	}
	var v uint64
	switch it.pv.kind {
	case kindAllOnes:
		v = it.pv.base + uint64(it.inPart) + 1
	case kindBitmap:
		v = it.pv.base + 1 + uint64(it.nextBit())
	default:
		pos := it.nextBit()
		hi := uint64(pos - it.inPart)
		v = it.pv.base + (hi<<it.l | it.pv.payload.Get(it.lowOff+it.inPart*int(it.l), it.l))
	}
	it.inPart++
	it.i++
	return v, true
}

// NextBatch decodes up to len(buf) consecutive values into buf and
// returns how many were written (0 iff the sequence is exhausted),
// dispatching on the encoding kind once per partition.
func (it *OptIterator) NextBatch(buf []uint64) int {
	p := it.p
	n := 0
	for n < len(buf) && it.i < p.n {
		if it.k < 0 || it.i >= it.partEnd {
			k := it.k + 1
			if it.k < 0 {
				k = p.partOf(it.i)
			}
			start, _ := p.partBounds(k)
			it.enter(k, it.i-start)
		}
		m := it.partEnd - it.i
		if m > len(buf)-n {
			m = len(buf) - n
		}
		out := buf[n : n+m]
		switch it.pv.kind {
		case kindAllOnes:
			v := it.pv.base + uint64(it.inPart)
			for j := range out {
				v++
				out[j] = v
			}
		case kindBitmap:
			base := it.pv.base + 1
			for j := range out {
				out[j] = base + uint64(it.nextBit())
			}
		default:
			l := it.l
			inPart := it.inPart
			lowPos := it.lowOff + inPart*int(l)
			payload := it.pv.payload
			base := it.pv.base
			for j := range out {
				pos := it.nextBit()
				hi := uint64(pos - inPart - j)
				out[j] = base + (hi<<l | payload.Get(lowPos, l))
				lowPos += int(l)
			}
		}
		it.inPart += m
		it.i += m
		n += m
	}
	return n
}

// SkipTo advances the iterator to the first element at or after the
// current position whose value is >= x, consumes it, and returns its
// index and value. Partitions whose upper bound is below x are skipped
// through the upper-bound directory.
func (it *OptIterator) SkipTo(x uint64) (int, uint64, bool) {
	p := it.p
	if it.i >= p.n {
		return p.n, 0, false
	}
	if x > p.universe {
		it.i = p.n
		return p.n, 0, false
	}
	// Locate the target with partition metadata only; the bit cursor is
	// positioned once, at the end, when the target is known.
	inCursor := it.k >= 0 && it.i < it.partEnd
	k := it.k
	pv := it.pv
	if !inCursor {
		k = p.partOf(it.i)
		pv = p.part(k)
	}
	if x > pv.base+pv.span {
		kk, _, ok := p.upper.NextGEQ(x)
		if !ok {
			it.i = p.n
			return p.n, 0, false
		}
		k = kk
		pv = p.part(k)
		inCursor = false
	}
	j, _, ok := pv.nextGEQ(x)
	if !ok {
		it.i = p.n
		return p.n, 0, false
	}
	if !inCursor || j > it.inPart {
		start, _ := p.partBounds(k)
		it.enter(k, j)
		it.i = start + j
	}
	v, ok := it.Next()
	if !ok {
		return p.n, 0, false
	}
	return it.i - 1, v, true
}

// SizeBits returns the storage footprint in bits.
func (p *OptPartitioned) SizeBits() uint64 {
	return p.payload.SizeBits() + p.ends.SizeBits() + p.upper.SizeBits() +
		uint64(len(p.kinds))*8 + p.offsets.SizeBits() + 2*64
}

// Encode writes the sequence to w.
func (p *OptPartitioned) Encode(w *codec.Writer) {
	w.Uvarint(uint64(p.n))
	w.Uvarint(p.universe)
	p.ends.Encode(w)
	p.upper.Encode(w)
	w.Bytes(p.kinds)
	p.offsets.Encode(w)
	p.payload.Encode(w)
}

// DecodeOptPartitioned reads a sequence written by Encode.
func DecodeOptPartitioned(r *codec.Reader) (*OptPartitioned, error) {
	p := &OptPartitioned{}
	p.n = int(r.Uvarint())
	p.universe = r.Uvarint()
	var err error
	if p.ends, err = Decode(r); err != nil {
		return nil, err
	}
	if p.upper, err = Decode(r); err != nil {
		return nil, err
	}
	p.kinds = r.BytesBuf()
	if p.offsets, err = xbits.DecodeCompact(r); err != nil {
		return nil, err
	}
	if p.payload, err = xbits.DecodeVector(r); err != nil {
		return nil, err
	}
	if len(p.kinds) != p.ends.Len() || p.upper.Len() != p.ends.Len() {
		return nil, r.Fail(fmt.Errorf("%w: opt-pef partition count", codec.ErrCorrupt))
	}
	return p, nil
}
