package ef

import (
	"bytes"
	"math/rand"
	"testing"

	"rdfindexes/internal/codec"
)

func TestOptPartitionedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(251))
	for _, tc := range []struct {
		name string
		vals monotone
	}{
		{"empty", nil},
		{"single", monotone{42}},
		{"zeros", monotone{0, 0, 0, 0}},
		{"small", randomMonotone(rng, 50, 100)},
		{"grain-boundary", randomMonotone(rng, optGrain, 10)},
		{"grain-plus-one", randomMonotone(rng, optGrain+1, 10)},
		{"dense", randomMonotone(rng, 3000, 2)},
		{"sparse", randomMonotone(rng, 3000, 1<<22)},
		{"duplicates", randomMonotone(rng, 3000, 1)},
		{"clustered", clusteredMonotone(rng, 6000)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := NewOptPartitioned(tc.vals)
			checkAgainstOracle(t, "opt-pef", p, tc.vals)
			checkIterator(t, "opt-pef", tc.vals, func(from int) func() (uint64, bool) {
				it := p.Iterator(from)
				return it.Next
			})
		})
	}
}

func TestOptPartitionedNotLargerThanUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(257))
	for _, vals := range []monotone{
		clusteredMonotone(rng, 60000),
		randomMonotone(rng, 60000, 1000),
	} {
		uni := NewPartitioned(vals)
		opt := NewOptPartitioned(vals)
		// The DP optimizes an estimate, so allow a small slack, but the
		// optimized layout must not be meaningfully worse and is usually
		// better on clustered data.
		if float64(opt.SizeBits()) > 1.05*float64(uni.SizeBits()) {
			t.Errorf("opt-PEF %d bits > 1.05x uniform PEF %d bits",
				opt.SizeBits(), uni.SizeBits())
		}
	}
}

func TestOptPartitionedVariableBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(263))
	// Clustered data should provoke partitions of different sizes.
	vals := clusteredMonotone(rng, 50000)
	p := NewOptPartitioned(vals)
	if p.NumPartitions() < 2 {
		t.Skip("degenerate partitioning")
	}
	sizes := map[int]bool{}
	for k := 0; k < p.NumPartitions(); k++ {
		start, end := p.partBounds(k)
		sizes[end-start] = true
	}
	if len(sizes) < 2 {
		t.Errorf("DP produced uniform partitions only: %v", sizes)
	}
}

func TestOptPartitionedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(269))
	vals := clusteredMonotone(rng, 5000)
	p := NewOptPartitioned(vals)
	var buf bytes.Buffer
	w := codec.NewWriter(&buf)
	p.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeOptPartitioned(codec.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, "opt-pef-decoded", got, vals)
}

func BenchmarkOptPEFAccess(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := NewOptPartitioned(randomMonotone(rng, 1<<20, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Access((i * 2654435761) & (1<<20 - 1))
	}
}
