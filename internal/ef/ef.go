// Package ef implements Elias-Fano encodings of monotone integer
// sequences: the plain encoding with constant-time access and fast
// successor queries, and the partitioned variant (PEF) of Ottaviano and
// Venturini that splits the sequence into partitions encoded independently
// as Elias-Fano, plain bitmaps, or implicit runs, whichever is smallest.
package ef

import (
	"fmt"
	"math/bits"

	xbits "rdfindexes/internal/bits"
	"rdfindexes/internal/codec"
)

// Sequence is a plain Elias-Fano encoded non-decreasing integer sequence.
// It supports O(1) Access, near-O(1) NextGEQ, and fast sequential
// iteration.
type Sequence struct {
	n        int
	universe uint64
	l        uint
	low      *xbits.Vector
	high     *xbits.RankSelect
}

// lowBitsFor returns the optimal number of low bits: floor(log2(u/n)).
func lowBitsFor(n int, universe uint64) uint {
	if n == 0 || universe/uint64(n) < 2 {
		return 0
	}
	return uint(bits.Len64(universe/uint64(n)) - 1)
}

// New encodes values, which must be non-decreasing. An empty slice yields
// an empty sequence.
func New(values []uint64) *Sequence {
	var universe uint64
	if len(values) > 0 {
		universe = values[len(values)-1]
	}
	return NewWithUniverse(values, universe)
}

// NewWithUniverse encodes values with an explicit universe >= the last
// value. A larger universe wastes space but lets callers reserve headroom.
func NewWithUniverse(values []uint64, universe uint64) *Sequence {
	n := len(values)
	l := lowBitsFor(n, universe)
	s := &Sequence{n: n, universe: universe, l: l}
	highLen := n + int(universe>>l) + 1
	high := xbits.NewVector(highLen)
	low := xbits.WithCapacity(n * int(l))
	var prev uint64
	for i, v := range values {
		if v < prev {
			panic(fmt.Sprintf("ef: sequence not monotone at %d: %d < %d", i, v, prev))
		}
		if v > universe {
			panic(fmt.Sprintf("ef: value %d exceeds universe %d", v, universe))
		}
		prev = v
		high.SetBit(int(v>>l) + i)
		low.AppendBits(v&(1<<l-1), l)
	}
	s.low = low
	s.high = xbits.NewRankSelect(high)
	return s
}

// Len returns the number of elements.
func (s *Sequence) Len() int { return s.n }

// Universe returns the declared universe (an upper bound on all values).
func (s *Sequence) Universe() uint64 { return s.universe }

// Access returns the i-th value.
func (s *Sequence) Access(i int) uint64 {
	pos := s.high.Select1(i)
	return uint64(pos-i)<<s.l | s.low.Get(i*int(s.l), s.l)
}

// AccessPair returns the i-th and (i+1)-th values with a single select:
// the successor's high part is found by scanning forward from the first
// one's position. Trie pointer lookups (begin, end) are the hot caller.
func (s *Sequence) AccessPair(i int) (uint64, uint64) {
	pos := s.high.Select1(i)
	v1 := uint64(pos-i)<<s.l | s.low.Get(i*int(s.l), s.l)
	words := s.high.Vector().Words()
	w := pos >> 6
	cur := words[w] &^ (uint64(1)<<(uint(pos)&63) - 1)
	cur &= cur - 1 // drop the i-th one itself
	for cur == 0 {
		w++
		cur = words[w]
	}
	pos2 := w<<6 + bits.TrailingZeros64(cur)
	v2 := uint64(pos2-(i+1))<<s.l | s.low.Get((i+1)*int(s.l), s.l)
	return v1, v2
}

// NextGEQ returns the position and value of the first element >= x. ok is
// false when every element is smaller than x, in which case pos is Len().
func (s *Sequence) NextGEQ(x uint64) (pos int, val uint64, ok bool) {
	if s.n == 0 || x > s.universe {
		return s.n, 0, false
	}
	hx := x >> s.l
	i := 0
	if hx > 0 {
		// Elements with high part < hx all precede the (hx-1)-th zero.
		p := s.high.Select0(int(hx) - 1)
		i = p - (int(hx) - 1) // number of ones before position p
	}
	// The first candidate is the first element of bucket hx; at most one
	// bucket needs to be scanned before values exceed x.
	for ; i < s.n; i++ {
		if v := s.Access(i); v >= x {
			return i, v, true
		}
	}
	return s.n, 0, false
}

// Iterator iterates the sequence from index from, decoding the upper bits
// by streaming over the words of the high bit vector.
type Iterator struct {
	s       *Sequence
	i       int
	wordIdx int
	word    uint64
}

// Iterator returns an iterator positioned at index from.
func (s *Sequence) Iterator(from int) *Iterator {
	it := &Iterator{s: s, i: from}
	if from >= s.n {
		it.i = s.n
		return it
	}
	p := s.high.Select1(from)
	it.wordIdx = p >> 6
	it.word = s.high.Vector().Words()[it.wordIdx] &^ (1<<(uint(p)&63) - 1)
	return it
}

// Next returns the next value, or ok=false at the end.
func (it *Iterator) Next() (uint64, bool) {
	s := it.s
	if it.i >= s.n {
		return 0, false
	}
	words := s.high.Vector().Words()
	for it.word == 0 {
		it.wordIdx++
		it.word = words[it.wordIdx]
	}
	p := it.wordIdx<<6 + bits.TrailingZeros64(it.word)
	it.word &= it.word - 1
	v := uint64(p-it.i)<<s.l | s.low.Get(it.i*int(s.l), s.l)
	it.i++
	return v, true
}

// SizeBits returns the storage footprint in bits.
func (s *Sequence) SizeBits() uint64 {
	return s.low.SizeBits() + s.high.Vector().SizeBits() + s.high.SizeBits() + 3*64
}

// Encode writes the sequence to w. The rank/select directory is rebuilt at
// decode time rather than serialized.
func (s *Sequence) Encode(w *codec.Writer) {
	w.Uvarint(uint64(s.n))
	w.Uvarint(s.universe)
	w.Byte(byte(s.l))
	s.low.Encode(w)
	s.high.Vector().Encode(w)
}

// Decode reads a sequence written by Encode.
func Decode(r *codec.Reader) (*Sequence, error) {
	n := int(r.Uvarint())
	universe := r.Uvarint()
	l := uint(r.Byte())
	low, err := xbits.DecodeVector(r)
	if err != nil {
		return nil, err
	}
	high, err := xbits.DecodeVector(r)
	if err != nil {
		return nil, err
	}
	if l > 64 || low.Len() != n*int(l) {
		return nil, r.Fail(fmt.Errorf("%w: elias-fano header", codec.ErrCorrupt))
	}
	s := &Sequence{n: n, universe: universe, l: l, low: low}
	s.high = xbits.NewRankSelect(high)
	if s.high.Ones() != n {
		return nil, r.Fail(fmt.Errorf("%w: elias-fano high bits", codec.ErrCorrupt))
	}
	return s, nil
}
