// Package ef implements Elias-Fano encodings of monotone integer
// sequences: the plain encoding with constant-time access and fast
// successor queries, and the partitioned variant (PEF) of Ottaviano and
// Venturini that splits the sequence into partitions encoded independently
// as Elias-Fano, plain bitmaps, or implicit runs, whichever is smallest.
package ef

import (
	"fmt"
	"math/bits"

	xbits "rdfindexes/internal/bits"
	"rdfindexes/internal/codec"
)

// Sequence is a plain Elias-Fano encoded non-decreasing integer sequence.
// It supports O(1) Access, near-O(1) NextGEQ, and fast sequential
// iteration.
type Sequence struct {
	n        int
	universe uint64
	l        uint
	low      *xbits.Vector
	high     *xbits.RankSelect
}

// lowBitsFor returns the optimal number of low bits: floor(log2(u/n)).
func lowBitsFor(n int, universe uint64) uint {
	if n == 0 || universe/uint64(n) < 2 {
		return 0
	}
	return uint(bits.Len64(universe/uint64(n)) - 1)
}

// New encodes values, which must be non-decreasing. An empty slice yields
// an empty sequence.
func New(values []uint64) *Sequence {
	var universe uint64
	if len(values) > 0 {
		universe = values[len(values)-1]
	}
	return NewWithUniverse(values, universe)
}

// NewWithUniverse encodes values with an explicit universe >= the last
// value. A larger universe wastes space but lets callers reserve headroom.
func NewWithUniverse(values []uint64, universe uint64) *Sequence {
	n := len(values)
	l := lowBitsFor(n, universe)
	s := &Sequence{n: n, universe: universe, l: l}
	highLen := n + int(universe>>l) + 1
	high := xbits.NewVector(highLen)
	low := xbits.WithCapacity(n * int(l))
	var prev uint64
	for i, v := range values {
		if v < prev {
			panic(fmt.Sprintf("ef: sequence not monotone at %d: %d < %d", i, v, prev))
		}
		if v > universe {
			panic(fmt.Sprintf("ef: value %d exceeds universe %d", v, universe))
		}
		prev = v
		high.SetBit(int(v>>l) + i)
		low.AppendBits(v&(1<<l-1), l)
	}
	s.low = low
	s.high = xbits.NewRankSelect(high)
	return s
}

// Len returns the number of elements.
func (s *Sequence) Len() int { return s.n }

// Universe returns the declared universe (an upper bound on all values).
func (s *Sequence) Universe() uint64 { return s.universe }

// Access returns the i-th value.
func (s *Sequence) Access(i int) uint64 {
	pos := s.high.Select1(i)
	return uint64(pos-i)<<s.l | s.low.Get(i*int(s.l), s.l)
}

// AccessPair returns the i-th and (i+1)-th values with a single select:
// the successor's high part is found by scanning forward from the first
// one's position. Trie pointer lookups (begin, end) are the hot caller.
func (s *Sequence) AccessPair(i int) (uint64, uint64) {
	pos := s.high.Select1(i)
	v1 := uint64(pos-i)<<s.l | s.low.Get(i*int(s.l), s.l)
	words := s.high.Vector().Words()
	w := pos >> 6
	cur := words[w] &^ (uint64(1)<<(uint(pos)&63) - 1)
	cur &= cur - 1 // drop the i-th one itself
	for cur == 0 {
		w++
		cur = words[w]
	}
	pos2 := w<<6 + bits.TrailingZeros64(cur)
	v2 := uint64(pos2-(i+1))<<s.l | s.low.Get((i+1)*int(s.l), s.l)
	return v1, v2
}

// NextGEQ returns the position and value of the first element >= x. ok is
// false when every element is smaller than x, in which case pos is Len().
func (s *Sequence) NextGEQ(x uint64) (pos int, val uint64, ok bool) {
	if s.n == 0 || x > s.universe {
		return s.n, 0, false
	}
	hx := x >> s.l
	i := 0
	p := 0
	if hx > 0 {
		// Elements with high part < hx all precede the (hx-1)-th zero.
		p = s.high.Select0(int(hx)-1) + 1
		i = p - int(hx) // number of ones before position p
	}
	// Scan the candidates by streaming over the upper-bits words from
	// position p instead of paying one Select1 per candidate; at most one
	// bucket is traversed before values reach x.
	words := s.high.Vector().Words()
	w := p >> 6
	cur := words[w] &^ (1<<(uint(p)&63) - 1)
	l := s.l
	lowPos := i * int(l)
	for i < s.n {
		for cur == 0 {
			w++
			cur = words[w]
		}
		bitPos := w<<6 + bits.TrailingZeros64(cur)
		cur &= cur - 1
		v := uint64(bitPos-i)<<l | s.low.Get(lowPos, l)
		if v >= x {
			return i, v, true
		}
		i++
		lowPos += int(l)
	}
	return s.n, 0, false
}

// Iterator iterates the sequence from index from, decoding the upper bits
// by streaming over the words of the high bit vector.
type Iterator struct {
	s       *Sequence
	i       int
	wordIdx int
	word    uint64
}

// Iterator returns an iterator positioned at index from.
func (s *Sequence) Iterator(from int) *Iterator {
	it := s.MakeIterator(from)
	return &it
}

// MakeIterator returns an iterator value positioned at index from, for
// callers that embed it without a separate allocation.
func (s *Sequence) MakeIterator(from int) Iterator {
	it := Iterator{s: s}
	it.Reset(from)
	return it
}

// MakeIteratorBase returns an iterator positioned at index from together
// with the value at from-1, sharing the positioning work instead of
// paying a separate random access for the predecessor. from must be in
// [1, Len()].
func (s *Sequence) MakeIteratorBase(from int) (Iterator, uint64) {
	it := Iterator{s: s}
	it.Reset(from - 1)
	base, _ := it.Next()
	return it, base
}

// Reset repositions the iterator at index from.
func (it *Iterator) Reset(from int) {
	s := it.s
	if from >= s.n {
		it.i = s.n
		it.word = 0
		return
	}
	it.i = from
	p := s.high.Select1(from)
	it.wordIdx = p >> 6
	it.word = s.high.Vector().Words()[it.wordIdx] &^ (1<<(uint(p)&63) - 1)
}

// Next returns the next value, or ok=false at the end.
func (it *Iterator) Next() (uint64, bool) {
	s := it.s
	if it.i >= s.n {
		return 0, false
	}
	words := s.high.Vector().Words()
	for it.word == 0 {
		it.wordIdx++
		it.word = words[it.wordIdx]
	}
	p := it.wordIdx<<6 + bits.TrailingZeros64(it.word)
	it.word &= it.word - 1
	v := uint64(p-it.i)<<s.l | s.low.Get(it.i*int(s.l), s.l)
	it.i++
	return v, true
}

// NextBatch decodes up to len(buf) consecutive values into buf and
// returns how many were written (0 iff the sequence is exhausted). The
// upper-bits vector is consumed by word-level trailing-zero scans and the
// low-bits cursor advances sequentially, so the per-element cost is a few
// instructions instead of a Select1.
func (it *Iterator) NextBatch(buf []uint64) int {
	s := it.s
	m := s.n - it.i
	if m <= 0 {
		return 0
	}
	if m > len(buf) {
		m = len(buf)
	}
	words := s.high.Vector().Words()
	l := s.l
	lowPos := it.i * int(l)
	i, wordIdx, word := it.i, it.wordIdx, it.word
	for j := 0; j < m; j++ {
		for word == 0 {
			wordIdx++
			word = words[wordIdx]
		}
		p := wordIdx<<6 + bits.TrailingZeros64(word)
		word &= word - 1
		buf[j] = uint64(p-i)<<l | s.low.Get(lowPos, l)
		lowPos += int(l)
		i++
	}
	it.i, it.wordIdx, it.word = i, wordIdx, word
	return m
}

// SkipTo advances the iterator to the first element at or after the
// current position whose value is >= x, consumes it, and returns its
// index and value. ok is false when no remaining element qualifies, in
// which case the iterator is exhausted.
func (it *Iterator) SkipTo(x uint64) (int, uint64, bool) {
	s := it.s
	if it.i >= s.n {
		return s.n, 0, false
	}
	// Close targets are cheaper to reach by scanning the upper-bits words
	// ahead of the cursor than by a directory jump: the target's bucket
	// starts at bit position (x>>l)+i, so the distance is known up front.
	if targetBit := int(x>>s.l) + it.i; targetBit-(it.wordIdx<<6) <= 4*64 {
		for {
			v, ok := it.Next()
			if !ok {
				return s.n, 0, false
			}
			if v >= x {
				return it.i - 1, v, true
			}
		}
	}
	pos, val, ok := s.NextGEQ(x)
	if !ok {
		it.i = s.n
		it.word = 0
		return s.n, 0, false
	}
	if pos <= it.i {
		// The sequence is monotone, so the next element already
		// qualifies; consume it in place.
		v, _ := it.Next()
		return it.i - 1, v, true
	}
	it.Reset(pos + 1)
	return pos, val, true
}

// SizeBits returns the storage footprint in bits.
func (s *Sequence) SizeBits() uint64 {
	return s.low.SizeBits() + s.high.Vector().SizeBits() + s.high.SizeBits() + 3*64
}

// Encode writes the sequence to w. The rank/select directory is rebuilt at
// decode time rather than serialized.
func (s *Sequence) Encode(w *codec.Writer) {
	w.Uvarint(uint64(s.n))
	w.Uvarint(s.universe)
	w.Byte(byte(s.l))
	s.low.Encode(w)
	s.high.Vector().Encode(w)
}

// Decode reads a sequence written by Encode.
func Decode(r *codec.Reader) (*Sequence, error) {
	n := int(r.Uvarint())
	universe := r.Uvarint()
	l := uint(r.Byte())
	low, err := xbits.DecodeVector(r)
	if err != nil {
		return nil, err
	}
	high, err := xbits.DecodeVector(r)
	if err != nil {
		return nil, err
	}
	if l > 64 || low.Len() != n*int(l) {
		return nil, r.Fail(fmt.Errorf("%w: elias-fano header", codec.ErrCorrupt))
	}
	s := &Sequence{n: n, universe: universe, l: l, low: low}
	s.high = xbits.NewRankSelect(high)
	if s.high.Ones() != n {
		return nil, r.Fail(fmt.Errorf("%w: elias-fano high bits", codec.ErrCorrupt))
	}
	return s, nil
}
