package ef

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rdfindexes/internal/codec"
)

// monotone is the kind of sequence both encoders accept.
type monotone []uint64

func randomMonotone(rng *rand.Rand, n int, maxGap uint64) monotone {
	vals := make([]uint64, n)
	var cur uint64
	for i := range vals {
		cur += rng.Uint64() % (maxGap + 1) // gaps of 0 allowed: duplicates
		vals[i] = cur
	}
	return vals
}

func clusteredMonotone(rng *rand.Rand, n int) monotone {
	// Long dense runs separated by large jumps: exercises the allOnes and
	// bitmap partition kinds of PEF.
	vals := make([]uint64, 0, n)
	var cur uint64
	for len(vals) < n {
		runLen := 1 + rng.Intn(600)
		if runLen > n-len(vals) {
			runLen = n - len(vals)
		}
		if rng.Intn(3) == 0 {
			cur += uint64(rng.Intn(1 << 20))
		}
		// Alternate perfectly consecutive runs (allOnes partitions) with
		// dense-but-gappy runs (bitmap partitions).
		gappy := rng.Intn(2) == 0
		for i := 0; i < runLen; i++ {
			if gappy {
				cur += uint64(1 + rng.Intn(2))
			} else {
				cur++
			}
			vals = append(vals, cur)
		}
	}
	return vals
}

type intSeq interface {
	Len() int
	Universe() uint64
	Access(i int) uint64
	NextGEQ(x uint64) (int, uint64, bool)
}

func checkAgainstOracle(t *testing.T, name string, s intSeq, vals []uint64) {
	t.Helper()
	if s.Len() != len(vals) {
		t.Fatalf("%s: Len() = %d, want %d", name, s.Len(), len(vals))
	}
	for i, v := range vals {
		if got := s.Access(i); got != v {
			t.Fatalf("%s: Access(%d) = %d, want %d", name, i, got, v)
		}
	}
	// NextGEQ oracle at exact values, off-by-one probes, and extremes.
	probe := func(x uint64) {
		wantPos := sort.Search(len(vals), func(i int) bool { return vals[i] >= x })
		pos, val, ok := s.NextGEQ(x)
		if wantPos == len(vals) {
			if ok {
				t.Fatalf("%s: NextGEQ(%d) = (%d, %d, true), want not found", name, x, pos, val)
			}
			return
		}
		if !ok || pos != wantPos || val != vals[wantPos] {
			t.Fatalf("%s: NextGEQ(%d) = (%d, %d, %v), want (%d, %d, true)",
				name, x, pos, val, ok, wantPos, vals[wantPos])
		}
	}
	probe(0)
	for i := 0; i < len(vals); i += 1 + len(vals)/211 {
		v := vals[i]
		probe(v)
		if v > 0 {
			probe(v - 1)
		}
		probe(v + 1)
	}
	if len(vals) > 0 {
		probe(vals[len(vals)-1] + 100)
	}
}

func checkIterator(t *testing.T, name string, vals []uint64, iter func(from int) func() (uint64, bool)) {
	t.Helper()
	for _, from := range []int{0, 1, len(vals) / 3, len(vals) - 1, len(vals)} {
		if from < 0 {
			continue
		}
		next := iter(from)
		for i := from; i < len(vals); i++ {
			v, ok := next()
			if !ok || v != vals[i] {
				t.Fatalf("%s: iterator(from=%d) at %d = (%d, %v), want %d", name, from, i, v, ok, vals[i])
			}
		}
		if v, ok := next(); ok {
			t.Fatalf("%s: iterator(from=%d) yielded %d past the end", name, from, v)
		}
	}
}

func TestSequenceOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		name string
		vals monotone
	}{
		{"empty", nil},
		{"single", monotone{42}},
		{"zeros", monotone{0, 0, 0, 0}},
		{"dense", randomMonotone(rng, 2000, 2)},
		{"sparse", randomMonotone(rng, 2000, 1<<22)},
		{"duplicates", randomMonotone(rng, 3000, 1)},
		{"clustered", clusteredMonotone(rng, 5000)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := New(tc.vals)
			checkAgainstOracle(t, "ef", s, tc.vals)
			checkIterator(t, "ef", tc.vals, func(from int) func() (uint64, bool) {
				it := s.Iterator(from)
				return it.Next
			})
		})
	}
}

func TestPartitionedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, tc := range []struct {
		name string
		vals monotone
	}{
		{"empty", nil},
		{"single", monotone{42}},
		{"zeros", monotone{0, 0, 0, 0}},
		{"one-partition", randomMonotone(rng, 100, 50)},
		{"exact-partition", randomMonotone(rng, 256, 9)},
		{"dense", randomMonotone(rng, 3000, 2)},
		{"sparse", randomMonotone(rng, 3000, 1<<22)},
		{"duplicates", randomMonotone(rng, 3000, 1)},
		{"clustered", clusteredMonotone(rng, 6000)},
		{"consecutive", func() monotone {
			v := make(monotone, 1000)
			for i := range v {
				v[i] = uint64(i) + 7
			}
			return v
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := NewPartitioned(tc.vals)
			checkAgainstOracle(t, "pef", p, tc.vals)
			checkIterator(t, "pef", tc.vals, func(from int) func() (uint64, bool) {
				it := p.Iterator(from)
				return it.Next
			})
		})
	}
}

func TestPartitionedKindsExercised(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	vals := clusteredMonotone(rng, 20000)
	p := NewPartitioned(vals)
	var have [3]bool
	for _, k := range p.kinds {
		have[k] = true
	}
	for k, ok := range have {
		if !ok {
			t.Errorf("partition kind %d never produced by clustered input", k)
		}
	}
}

func TestPartitionedSmallerOnClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	vals := clusteredMonotone(rng, 50000)
	plain := New(vals)
	part := NewPartitioned(vals)
	if part.SizeBits() >= plain.SizeBits() {
		t.Errorf("PEF (%d bits) not smaller than EF (%d bits) on clustered data",
			part.SizeBits(), plain.SizeBits())
	}
}

func TestSequenceQuick(t *testing.T) {
	f := func(gaps []uint16, seed int64) bool {
		vals := make([]uint64, len(gaps))
		var cur uint64
		for i, g := range gaps {
			cur += uint64(g)
			vals[i] = cur
		}
		s := New(vals)
		p := NewPartitionedLog(vals, 4) // tiny partitions stress boundaries
		for i, v := range vals {
			if s.Access(i) != v || p.Access(i) != v {
				return false
			}
		}
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 20 && len(vals) > 0; trial++ {
			x := rng.Uint64() % (vals[len(vals)-1] + 2)
			wantPos := sort.Search(len(vals), func(i int) bool { return vals[i] >= x })
			p1, v1, ok1 := s.NextGEQ(x)
			p2, v2, ok2 := p.NextGEQ(x)
			if wantPos == len(vals) {
				if ok1 || ok2 {
					return false
				}
				continue
			}
			if !ok1 || !ok2 || p1 != wantPos || p2 != wantPos || v1 != vals[wantPos] || v2 != vals[wantPos] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSequenceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	vals := randomMonotone(rng, 5000, 1000)
	s := New(vals)
	var buf bytes.Buffer
	w := codec.NewWriter(&buf)
	s.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(codec.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, "ef-decoded", got, vals)
}

func TestPartitionedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	vals := clusteredMonotone(rng, 5000)
	p := NewPartitioned(vals)
	var buf bytes.Buffer
	w := codec.NewWriter(&buf)
	p.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePartitioned(codec.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, "pef-decoded", got, vals)
}

func TestDecodeCorrupt(t *testing.T) {
	var buf bytes.Buffer
	w := codec.NewWriter(&buf)
	w.Uvarint(10)  // n
	w.Uvarint(100) // universe
	w.Byte(70)     // invalid l > 64
	w.Uvarint(0)   // low bits len
	w.Uint64s(nil) // low words
	w.Uvarint(0)   // high bits len
	w.Uint64s(nil) // high words
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(codec.NewReader(&buf)); err == nil {
		t.Fatal("Decode accepted invalid low-bit width")
	}
}

func TestNonMonotonePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New did not panic on non-monotone input")
		}
	}()
	New([]uint64{5, 3})
}

func BenchmarkEFAccess(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := New(randomMonotone(rng, 1<<20, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Access((i * 2654435761) & (1<<20 - 1))
	}
}

func BenchmarkPEFAccess(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := NewPartitioned(randomMonotone(rng, 1<<20, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Access((i * 2654435761) & (1<<20 - 1))
	}
}

func BenchmarkEFScan(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := New(randomMonotone(rng, 1<<20, 64))
	b.ResetTimer()
	it := s.Iterator(0)
	for i := 0; i < b.N; i++ {
		if _, ok := it.Next(); !ok {
			it = s.Iterator(0)
		}
	}
}

func BenchmarkPEFScan(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := NewPartitioned(randomMonotone(rng, 1<<20, 64))
	b.ResetTimer()
	it := s.Iterator(0)
	for i := 0; i < b.N; i++ {
		if _, ok := it.Next(); !ok {
			it = s.Iterator(0)
		}
	}
}
