package ef

import (
	"fmt"
	"math/bits"

	xbits "rdfindexes/internal/bits"
	"rdfindexes/internal/codec"
)

// Partition encodings. Each partition of 2^partLog consecutive values is
// stored relative to the exclusive lower bound given by the previous
// partition's upper bound, using whichever representation is smallest.
const (
	kindAllOnes = iota // consecutive run: nothing stored
	kindBitmap         // characteristic bitmap of the spanned interval
	kindEF             // inline Elias-Fano: 6-bit l, low bits, high bits
)

// DefaultPartLog is the default log2 of the partition size (256 values),
// a good space/time balance for the trie level sequences of the paper.
const DefaultPartLog = 8

// Partitioned is a partitioned Elias-Fano (PEF) encoded non-decreasing
// sequence. Compared to plain Elias-Fano it is smaller on clustered data
// and faster for bounded searches, at the price of slower random access.
type Partitioned struct {
	n        int
	universe uint64
	partLog  uint
	upper    *Sequence            // upper bound of each partition
	kinds    []byte               // encoding kind of each partition
	offsets  *xbits.CompactVector // bit offset of each partition in payload
	payload  *xbits.Vector
}

// NewPartitioned encodes values (non-decreasing) with the default
// partition size.
func NewPartitioned(values []uint64) *Partitioned {
	return NewPartitionedLog(values, DefaultPartLog)
}

// NewPartitionedLog encodes values with partitions of 2^partLog values.
func NewPartitionedLog(values []uint64, partLog uint) *Partitioned {
	if partLog < 2 || partLog > 20 {
		panic(fmt.Sprintf("ef: invalid partition log %d", partLog))
	}
	n := len(values)
	p := &Partitioned{n: n, partLog: partLog}
	if n > 0 {
		p.universe = values[n-1]
	}
	partSize := 1 << partLog
	numParts := (n + partSize - 1) / partSize

	uppers := make([]uint64, 0, numParts)
	offsets := make([]uint64, 0, numParts+1)
	p.kinds = make([]byte, 0, numParts)
	p.payload = xbits.WithCapacity(n) // grows as needed

	var prev uint64
	for i, v := range values {
		if v < prev {
			panic(fmt.Sprintf("ef: sequence not monotone at %d: %d < %d", i, v, prev))
		}
		prev = v
	}

	var base uint64
	for k := 0; k < numParts; k++ {
		lo := k * partSize
		hi := lo + partSize
		if hi > n {
			hi = n
		}
		part := values[lo:hi]
		ub := part[len(part)-1]
		uppers = append(uppers, ub)
		offsets = append(offsets, uint64(p.payload.Len()))
		p.kinds = append(p.kinds, p.encodePartition(part, base, ub))
		base = ub
	}
	offsets = append(offsets, uint64(p.payload.Len()))

	p.upper = New(uppers)
	if len(offsets) > 0 {
		p.offsets = xbits.NewCompact(offsets)
	} else {
		p.offsets = xbits.NewCompact([]uint64{0})
	}
	return p
}

// encodePartition appends the cheapest encoding of part (relative to the
// exclusive lower bound base, spanning up to ub) and returns its kind.
func (p *Partitioned) encodePartition(part []uint64, base, ub uint64) byte {
	return encodePartitionInto(p.payload, part, base, ub)
}

// encodePartitionInto is the shared partition encoder used by both the
// uniform and the cost-optimized partitionings.
func encodePartitionInto(payload *xbits.Vector, part []uint64, base, ub uint64) byte {
	sz := len(part)
	span := ub - base

	strict := true
	for i, v := range part {
		if v <= base || (i > 0 && v <= part[i-1]) {
			strict = false
			break
		}
	}

	if strict && span == uint64(sz) {
		return kindAllOnes // part[j] == base + j + 1, nothing to store
	}

	l := lowBitsFor(sz, span)
	efCost := uint64(6) + uint64(sz)*uint64(l) + uint64(sz) + span>>l + 1
	if strict && span <= efCost {
		// Characteristic bitmap over (base, ub].
		start := payload.Len()
		for i := 0; i < int(span); i++ {
			payload.AppendBit(false)
		}
		for _, v := range part {
			payload.SetBit(start + int(v-base-1))
		}
		return kindBitmap
	}

	// Inline Elias-Fano of the relative values.
	payload.AppendBits(uint64(l), 6)
	for _, v := range part {
		payload.AppendBits((v-base)&(1<<l-1), l)
	}
	highLen := sz + int(span>>l) + 1
	start := payload.Len()
	for i := 0; i < highLen; i++ {
		payload.AppendBit(false)
	}
	for i, v := range part {
		payload.SetBit(start + int((v-base)>>l) + i)
	}
	return kindEF
}

// Len returns the number of elements.
func (p *Partitioned) Len() int { return p.n }

// Universe returns the largest value.
func (p *Partitioned) Universe() uint64 { return p.universe }

// partView captures the decoding context of one partition.
type partView struct {
	payload *xbits.Vector
	kind    byte
	base    uint64
	span    uint64
	off     int
	sz      int
}

func (p *Partitioned) part(k int) partView {
	var base, ub uint64
	if k > 0 {
		base, ub = p.upper.AccessPair(k - 1)
	} else {
		ub = p.upper.Access(0)
	}
	sz := 1 << p.partLog
	if lo := k << p.partLog; lo+sz > p.n {
		sz = p.n - lo
	}
	return partView{
		payload: p.payload,
		kind:    p.kinds[k],
		base:    base,
		span:    ub - base,
		off:     int(p.offsets.At(k)),
		sz:      sz,
	}
}

// selectInRange returns the position (relative to off) of the k-th set bit
// in payload[off, off+length).
func selectInRange(payload *xbits.Vector, off, length, k int) int {
	pos := 0
	for pos < length {
		w := length - pos
		if w > 64 {
			w = 64
		}
		chunk := payload.Get(off+pos, uint(w))
		c := bits.OnesCount64(chunk)
		if k < c {
			return pos + xbits.SelectInWord(chunk, k)
		}
		k -= c
		pos += w
	}
	panic("ef: selectInRange out of range")
}

func (pv partView) access(j int) uint64 {
	switch pv.kind {
	case kindAllOnes:
		return pv.base + uint64(j) + 1
	case kindBitmap:
		pos := selectInRange(pv.payload, pv.off, int(pv.span), j)
		return pv.base + 1 + uint64(pos)
	default:
		l := uint(pv.payload.Get(pv.off, 6))
		lowOff := pv.off + 6
		highOff := lowOff + pv.sz*int(l)
		highLen := pv.sz + int(pv.span>>l) + 1
		pos := selectInRange(pv.payload, highOff, highLen, j)
		hi := uint64(pos - j)
		return pv.base + (hi<<l | pv.payload.Get(lowOff+j*int(l), l))
	}
}

// nextGEQ returns the index within the partition of the first value >= x
// (absolute), with its value. ok is false when all values are smaller.
func (pv partView) nextGEQ(x uint64) (int, uint64, bool) {
	if x <= pv.base {
		x = pv.base // relative target becomes 0
	}
	if x > pv.base+pv.span {
		return pv.sz, 0, false
	}
	switch pv.kind {
	case kindAllOnes:
		if x <= pv.base+1 {
			return 0, pv.base + 1, true
		}
		j := int(x - pv.base - 1)
		return j, x, true
	case kindBitmap:
		rel := 0
		if x > pv.base+1 {
			rel = int(x - pv.base - 1)
		}
		j := 0
		pos := 0
		span := int(pv.span)
		for pos < span {
			w := span - pos
			if w > 64 {
				w = 64
			}
			chunk := pv.payload.Get(pv.off+pos, uint(w))
			if pos+w <= rel {
				j += bits.OnesCount64(chunk)
				pos += w
				continue
			}
			if pos < rel {
				mask := uint64(1)<<uint(rel-pos) - 1
				j += bits.OnesCount64(chunk & mask)
				chunk &^= mask
			}
			if chunk != 0 {
				t := bits.TrailingZeros64(chunk)
				return j, pv.base + 1 + uint64(pos+t), true
			}
			pos += w
		}
		return pv.sz, 0, false
	default:
		l := uint(pv.payload.Get(pv.off, 6))
		lowOff := pv.off + 6
		highOff := lowOff + pv.sz*int(l)
		highLen := pv.sz + int(pv.span>>l) + 1
		rel := x - pv.base
		hx := rel >> l
		i := 0 // elements seen
		pos := 0
		for pos < highLen {
			w := highLen - pos
			if w > 64 {
				w = 64
			}
			chunk := pv.payload.Get(highOff+pos, uint(w))
			for chunk != 0 {
				t := bits.TrailingZeros64(chunk)
				chunk &= chunk - 1
				bitPos := pos + t
				hi := uint64(bitPos - i)
				if hi >= hx {
					v := pv.base + (hi<<l | pv.payload.Get(lowOff+i*int(l), l))
					if v >= x {
						return i, v, true
					}
				}
				i++
			}
			pos += w
		}
		return pv.sz, 0, false
	}
}

// Access returns the i-th value.
func (p *Partitioned) Access(i int) uint64 {
	k := i >> p.partLog
	j := i - k<<p.partLog
	return p.part(k).access(j)
}

// NextGEQ returns the position and value of the first element >= x. ok is
// false when every element is smaller than x, in which case pos is Len().
func (p *Partitioned) NextGEQ(x uint64) (pos int, val uint64, ok bool) {
	if p.n == 0 || x > p.universe {
		return p.n, 0, false
	}
	k, _, ok := p.upper.NextGEQ(x)
	if !ok {
		return p.n, 0, false
	}
	pv := p.part(k)
	j, v, ok := pv.nextGEQ(x)
	if !ok {
		// Cannot happen: the partition's upper bound is >= x.
		return p.n, 0, false
	}
	return k<<p.partLog + j, v, ok
}

// PartIterator iterates a Partitioned sequence. Entering a partition
// positions a bit cursor with one in-partition select; each Next advances
// by trailing-zero scanning, so short iterations over long partitions do
// not pay for decoding the whole partition.
type PartIterator struct {
	p  *Partitioned
	i  int // global index of the next element
	k  int // current partition, -1 before the first Next
	pv partView
	// streaming state for the bitmap and EF kinds
	l         uint
	lowOff    int
	regionOff int // payload offset of the bit region being scanned
	regionLen int
	chunkBase int    // region-relative offset of the loaded chunk
	chunk     uint64 // loaded chunk with consumed bits cleared
	inPart    int    // partition-relative index of the next element
}

// Iterator returns an iterator positioned at index from.
func (p *Partitioned) Iterator(from int) *PartIterator {
	return &PartIterator{p: p, i: from, k: -1}
}

// MakeIterator returns an iterator value positioned at index from, for
// callers that embed it without a separate allocation.
func (p *Partitioned) MakeIterator(from int) PartIterator {
	return PartIterator{p: p, i: from, k: -1}
}

// MakeIteratorBase returns an iterator positioned at index from together
// with the value at from-1, decoding the predecessor on the way instead
// of paying a separate random access. from must be in [1, Len()].
func (p *Partitioned) MakeIteratorBase(from int) (PartIterator, uint64) {
	it := PartIterator{p: p, i: from - 1, k: -1}
	base, _ := it.Next()
	return it, base
}

// Reset repositions the iterator at index from. The partition cursor is
// re-established lazily on the next read.
func (it *PartIterator) Reset(from int) {
	it.i = from
	it.k = -1
}

// enterPartition initializes the cursor at element j of partition k.
func (it *PartIterator) enterPartition(k, j int) {
	it.k = k
	it.pv = it.p.part(k)
	it.inPart = j
	switch it.pv.kind {
	case kindAllOnes:
		return
	case kindBitmap:
		it.regionOff = it.pv.off
		it.regionLen = int(it.pv.span)
	default:
		it.l = uint(it.pv.payload.Get(it.pv.off, 6))
		it.lowOff = it.pv.off + 6
		it.regionOff = it.lowOff + it.pv.sz*int(it.l)
		it.regionLen = it.pv.sz + int(it.pv.span>>it.l) + 1
	}
	// Position the chunk cursor at the j-th set bit of the region.
	pos := selectInRange(it.pv.payload, it.regionOff, it.regionLen, j)
	it.chunkBase = pos &^ 63
	w := it.regionLen - it.chunkBase
	if w > 64 {
		w = 64
	}
	it.chunk = it.pv.payload.Get(it.regionOff+it.chunkBase, uint(w))
	it.chunk &^= 1<<uint(pos-it.chunkBase) - 1 // clear bits before pos
}

// nextBit returns the position of the next set bit of the region.
func (it *PartIterator) nextBit() int {
	for it.chunk == 0 {
		it.chunkBase += 64
		w := it.regionLen - it.chunkBase
		if w > 64 {
			w = 64
		}
		it.chunk = it.pv.payload.Get(it.regionOff+it.chunkBase, uint(w))
	}
	t := bits.TrailingZeros64(it.chunk)
	it.chunk &= it.chunk - 1
	return it.chunkBase + t
}

// Next returns the next value, or ok=false at the end.
func (it *PartIterator) Next() (uint64, bool) {
	if it.i >= it.p.n {
		return 0, false
	}
	k := it.i >> it.p.partLog
	if k != it.k {
		it.enterPartition(k, it.i-k<<it.p.partLog)
	}
	var v uint64
	switch it.pv.kind {
	case kindAllOnes:
		v = it.pv.base + uint64(it.inPart) + 1
	case kindBitmap:
		v = it.pv.base + 1 + uint64(it.nextBit())
	default:
		pos := it.nextBit()
		hi := uint64(pos - it.inPart)
		v = it.pv.base + (hi<<it.l | it.pv.payload.Get(it.lowOff+it.inPart*int(it.l), it.l))
	}
	it.inPart++
	it.i++
	return v, true
}

// NextBatch decodes up to len(buf) consecutive values into buf and
// returns how many were written (0 iff the sequence is exhausted). The
// encoding kind is dispatched once per partition instead of once per
// element, and within a partition the bit region is consumed by
// word-level scans.
func (it *PartIterator) NextBatch(buf []uint64) int {
	p := it.p
	n := 0
	for n < len(buf) && it.i < p.n {
		k := it.i >> p.partLog
		if k != it.k {
			it.enterPartition(k, it.i-k<<p.partLog)
		}
		partEnd := (k + 1) << p.partLog
		if partEnd > p.n {
			partEnd = p.n
		}
		m := partEnd - it.i
		if m > len(buf)-n {
			m = len(buf) - n
		}
		out := buf[n : n+m]
		switch it.pv.kind {
		case kindAllOnes:
			v := it.pv.base + uint64(it.inPart)
			for j := range out {
				v++
				out[j] = v
			}
		case kindBitmap:
			base := it.pv.base + 1
			for j := range out {
				out[j] = base + uint64(it.nextBit())
			}
		default:
			l := it.l
			inPart := it.inPart
			lowPos := it.lowOff + inPart*int(l)
			payload := it.pv.payload
			base := it.pv.base
			for j := range out {
				pos := it.nextBit()
				hi := uint64(pos - inPart - j)
				out[j] = base + (hi<<l | payload.Get(lowPos, l))
				lowPos += int(l)
			}
		}
		it.inPart += m
		it.i += m
		n += m
	}
	return n
}

// SkipTo advances the iterator to the first element at or after the
// current position whose value is >= x, consumes it, and returns its
// index and value. Partitions whose upper bound is below x are skipped
// through the upper-bound directory without touching their payload.
func (it *PartIterator) SkipTo(x uint64) (int, uint64, bool) {
	p := it.p
	if it.i >= p.n {
		return p.n, 0, false
	}
	if x > p.universe {
		it.i = p.n
		return p.n, 0, false
	}
	// Locate the target with partition metadata only; the bit cursor is
	// positioned once, at the end, when the target is known.
	k := it.i >> p.partLog
	pv := it.pv
	if k != it.k {
		pv = p.part(k)
	}
	if x > pv.base+pv.span {
		// Beyond this partition: jump to the first partition whose upper
		// bound reaches x.
		kk, _, ok := p.upper.NextGEQ(x)
		if !ok {
			it.i = p.n
			return p.n, 0, false
		}
		k = kk
		pv = p.part(k)
	}
	j, _, ok := pv.nextGEQ(x)
	if !ok {
		it.i = p.n
		return p.n, 0, false
	}
	if k != it.k || j > it.inPart {
		it.enterPartition(k, j)
		it.i = k<<p.partLog + j
	}
	// The element at the cursor now satisfies >= x (by monotonicity when
	// it was already at or past position j); consume it.
	v, ok := it.Next()
	if !ok {
		return p.n, 0, false
	}
	return it.i - 1, v, true
}

// SizeBits returns the storage footprint in bits.
func (p *Partitioned) SizeBits() uint64 {
	return p.payload.SizeBits() + p.upper.SizeBits() +
		uint64(len(p.kinds))*8 + p.offsets.SizeBits() + 3*64
}

// Encode writes the sequence to w.
func (p *Partitioned) Encode(w *codec.Writer) {
	w.Uvarint(uint64(p.n))
	w.Uvarint(p.universe)
	w.Byte(byte(p.partLog))
	p.upper.Encode(w)
	w.Bytes(p.kinds)
	p.offsets.Encode(w)
	p.payload.Encode(w)
}

// DecodePartitioned reads a sequence written by Encode.
func DecodePartitioned(r *codec.Reader) (*Partitioned, error) {
	p := &Partitioned{}
	p.n = int(r.Uvarint())
	p.universe = r.Uvarint()
	p.partLog = uint(r.Byte())
	if p.partLog < 2 || p.partLog > 20 {
		return nil, r.Fail(fmt.Errorf("%w: pef partition log", codec.ErrCorrupt))
	}
	var err error
	if p.upper, err = Decode(r); err != nil {
		return nil, err
	}
	p.kinds = r.BytesBuf()
	if p.offsets, err = xbits.DecodeCompact(r); err != nil {
		return nil, err
	}
	if p.payload, err = xbits.DecodeVector(r); err != nil {
		return nil, err
	}
	numParts := (p.n + 1<<p.partLog - 1) >> p.partLog
	if len(p.kinds) != numParts || p.upper.Len() != numParts {
		return nil, r.Fail(fmt.Errorf("%w: pef partition count", codec.ErrCorrupt))
	}
	return p, nil
}
