// Package triplebit reimplements the TripleBit baseline of Yuan et al.,
// the second system the paper compares against in Tables 5 and 6.
// TripleBit stores, for every predicate, the (subject, object) pairs of
// its triples in two byte-compressed, chunked vectors — one sorted by
// subject (SO) and one by object (OS) — plus entity-to-predicate indexes
// (the ID-Chunk matrix of the original system, simplified to
// entity-to-predicate lists) used to resolve patterns that do not fix the
// predicate. As in the original system, the fully-specified SPO pattern is
// not among the natively supported operations of the benchmark (Table 5
// omits it); this implementation resolves it through SP? with a filter.
package triplebit

import (
	"fmt"

	"rdfindexes/internal/bits"
	"rdfindexes/internal/codec"
	"rdfindexes/internal/core"
	"rdfindexes/internal/ef"
	"rdfindexes/internal/vbyte"
)

// chunkLen is the number of pairs per compressed chunk.
const chunkLen = 256

// chunkedPairs is a vector of (x, y) pairs sorted by (x, y), delta
// compressed with VByte in chunks, with a directory of chunk-leading
// pairs for skipping.
type chunkedPairs struct {
	n       int
	data    []byte
	firstX  *bits.CompactVector
	firstY  *bits.CompactVector
	offsets *bits.CompactVector
}

// buildChunked encodes pairs, which must be sorted by (x, y).
func buildChunked(xs, ys []uint64) *chunkedPairs {
	c := &chunkedPairs{n: len(xs)}
	var firstX, firstY, offsets []uint64
	var px, py uint64
	for i := range xs {
		if i%chunkLen == 0 {
			firstX = append(firstX, xs[i])
			firstY = append(firstY, ys[i])
			offsets = append(offsets, uint64(len(c.data)))
		} else {
			dx := xs[i] - px
			c.data = vbyte.Put(c.data, dx)
			if dx > 0 {
				c.data = vbyte.Put(c.data, ys[i])
			} else {
				c.data = vbyte.Put(c.data, ys[i]-py)
			}
		}
		px, py = xs[i], ys[i]
	}
	c.firstX = bits.NewCompact(firstX)
	c.firstY = bits.NewCompact(firstY)
	c.offsets = bits.NewCompact(offsets)
	return c
}

func (c *chunkedPairs) numChunks() int { return c.firstX.Len() }

func (c *chunkedPairs) chunkSize(k int) int {
	if (k+1)*chunkLen <= c.n {
		return chunkLen
	}
	return c.n - k*chunkLen
}

// scanChunk invokes fn for every pair of chunk k until fn returns false.
func (c *chunkedPairs) scanChunk(k int, fn func(x, y uint64) bool) bool {
	x := c.firstX.At(k)
	y := c.firstY.At(k)
	if !fn(x, y) {
		return false
	}
	pos := int(c.offsets.At(k))
	for i := 1; i < c.chunkSize(k); i++ {
		var dx uint64
		dx, pos = vbyte.Get(c.data, pos)
		if dx > 0 {
			x += dx
			y, pos = vbyte.Get(c.data, pos)
		} else {
			var dy uint64
			dy, pos = vbyte.Get(c.data, pos)
			y += dy
		}
		if !fn(x, y) {
			return false
		}
	}
	return true
}

// startChunkFor returns the first chunk that may contain pairs with the
// given x: the last chunk whose leading x is <= x (searching by strict
// inequality to handle runs of x spanning chunk boundaries).
func (c *chunkedPairs) startChunkFor(x uint64) int {
	lo, hi := 0, c.numChunks()-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if c.firstX.At(mid) < x {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// scanX invokes fn(y) for every pair with the given x.
func (c *chunkedPairs) scanX(x uint64, fn func(y uint64) bool) {
	if c.n == 0 {
		return
	}
	for k := c.startChunkFor(x); k < c.numChunks(); k++ {
		if c.firstX.At(k) > x {
			return
		}
		done := false
		c.scanChunk(k, func(px, py uint64) bool {
			if px > x {
				done = true
				return false
			}
			if px == x {
				return fn(py)
			}
			return true
		})
		if done {
			return
		}
	}
}

// contains reports whether the pair (x, y) occurs.
func (c *chunkedPairs) contains(x, y uint64) bool {
	found := false
	c.scanX(x, func(py uint64) bool {
		if py == y {
			found = true
			return false
		}
		return py < y
	})
	return found
}

// scanAll invokes fn for every pair.
func (c *chunkedPairs) scanAll(fn func(x, y uint64) bool) {
	for k := 0; k < c.numChunks(); k++ {
		if !c.scanChunk(k, fn) {
			return
		}
	}
}

func (c *chunkedPairs) sizeBits() uint64 {
	return uint64(len(c.data))*8 + c.firstX.SizeBits() + c.firstY.SizeBits() +
		c.offsets.SizeBits() + 64
}

func (c *chunkedPairs) encode(w *codec.Writer) {
	w.Uvarint(uint64(c.n))
	w.Bytes(c.data)
	c.firstX.Encode(w)
	c.firstY.Encode(w)
	c.offsets.Encode(w)
}

func decodeChunked(r *codec.Reader) (*chunkedPairs, error) {
	c := &chunkedPairs{}
	c.n = int(r.Uvarint())
	c.data = r.BytesBuf()
	var err error
	if c.firstX, err = bits.DecodeCompact(r); err != nil {
		return nil, err
	}
	if c.firstY, err = bits.DecodeCompact(r); err != nil {
		return nil, err
	}
	if c.offsets, err = bits.DecodeCompact(r); err != nil {
		return nil, err
	}
	return c, nil
}

// entityPreds maps every entity to the sorted list of predicates it
// occurs with.
type entityPreds struct {
	ptr   *ef.Sequence
	preds *bits.CompactVector
}

func buildEntityPreds(pairs [][2]uint64, numEntities int) *entityPreds {
	// pairs are (entity, predicate), sorted and distinct.
	ptr := make([]uint64, 0, numEntities+1)
	preds := make([]uint64, 0, len(pairs))
	for i, pr := range pairs {
		if i == 0 || pr[0] != pairs[i-1][0] {
			for len(ptr) <= int(pr[0]) {
				ptr = append(ptr, uint64(len(preds)))
			}
		}
		preds = append(preds, pr[1])
	}
	for len(ptr) <= numEntities {
		ptr = append(ptr, uint64(len(preds)))
	}
	return &entityPreds{ptr: ef.New(ptr), preds: bits.NewCompact(preds)}
}

// forEach invokes fn for every predicate of entity e.
func (ep *entityPreds) forEach(e int, fn func(p uint64) bool) {
	if e+1 >= ep.ptr.Len() {
		return
	}
	b, en := int(ep.ptr.Access(e)), int(ep.ptr.Access(e+1))
	for i := b; i < en; i++ {
		if !fn(ep.preds.At(i)) {
			return
		}
	}
}

func (ep *entityPreds) sizeBits() uint64 { return ep.ptr.SizeBits() + ep.preds.SizeBits() }

func (ep *entityPreds) encode(w *codec.Writer) {
	ep.ptr.Encode(w)
	ep.preds.Encode(w)
}

func decodeEntityPreds(r *codec.Reader) (*entityPreds, error) {
	ep := &entityPreds{}
	var err error
	if ep.ptr, err = ef.Decode(r); err != nil {
		return nil, err
	}
	if ep.preds, err = bits.DecodeCompact(r); err != nil {
		return nil, err
	}
	return ep, nil
}

// Index is an immutable TripleBit-style index.
type Index struct {
	numTriples int
	numS       int
	numP       int
	numO       int
	so         []*chunkedPairs // per predicate, pairs (s, o) sorted by (s, o)
	os         []*chunkedPairs // per predicate, pairs (o, s) sorted by (o, s)
	subjPreds  *entityPreds
	objPreds   *entityPreds
}

// Build constructs the index from a dataset.
func Build(d *core.Dataset) (*Index, error) {
	x := &Index{numTriples: d.Len(), numS: d.NS, numP: d.NP, numO: d.NO}
	x.so = make([]*chunkedPairs, d.NP)
	x.os = make([]*chunkedPairs, d.NP)

	// Bucket triples by predicate. The dataset is SPO-sorted, so within a
	// predicate the (s, o) pairs arrive already sorted.
	counts := make([]int, d.NP)
	for _, t := range d.Triples {
		counts[t.P]++
	}
	soX := make([][]uint64, d.NP)
	soY := make([][]uint64, d.NP)
	for p := 0; p < d.NP; p++ {
		soX[p] = make([]uint64, 0, counts[p])
		soY[p] = make([]uint64, 0, counts[p])
	}
	for _, t := range d.Triples {
		soX[t.P] = append(soX[t.P], uint64(t.S))
		soY[t.P] = append(soY[t.P], uint64(t.O))
	}
	scratch := make([]core.Triple, len(d.Triples))
	copy(scratch, d.Triples)
	core.SortPerm(scratch, core.PermPOS, d.NS, d.NP, d.NO)
	osX := make([][]uint64, d.NP)
	osY := make([][]uint64, d.NP)
	for p := 0; p < d.NP; p++ {
		osX[p] = make([]uint64, 0, counts[p])
		osY[p] = make([]uint64, 0, counts[p])
	}
	for _, t := range scratch {
		osX[t.P] = append(osX[t.P], uint64(t.O))
		osY[t.P] = append(osY[t.P], uint64(t.S))
	}
	for p := 0; p < d.NP; p++ {
		x.so[p] = buildChunked(soX[p], soY[p])
		x.os[p] = buildChunked(osX[p], osY[p])
	}

	// Entity-to-predicate indexes from distinct (s, p) and (o, p) pairs.
	core.SortPerm(scratch, core.PermSPO, d.NS, d.NP, d.NO)
	var spPairs [][2]uint64
	for i, t := range scratch {
		if i == 0 || t.S != scratch[i-1].S || t.P != scratch[i-1].P {
			spPairs = append(spPairs, [2]uint64{uint64(t.S), uint64(t.P)})
		}
	}
	x.subjPreds = buildEntityPreds(spPairs, d.NS)
	core.SortPerm(scratch, core.PermOPS, d.NS, d.NP, d.NO)
	var opPairs [][2]uint64
	for i, t := range scratch {
		if i == 0 || t.O != scratch[i-1].O || t.P != scratch[i-1].P {
			opPairs = append(opPairs, [2]uint64{uint64(t.O), uint64(t.P)})
		}
	}
	x.objPreds = buildEntityPreds(opPairs, d.NO)
	return x, nil
}

// NumTriples returns the number of indexed triples.
func (x *Index) NumTriples() int { return x.numTriples }

// SizeBits returns the total storage footprint in bits.
func (x *Index) SizeBits() uint64 {
	total := uint64(4 * 64)
	for p := 0; p < x.numP; p++ {
		total += x.so[p].sizeBits() + x.os[p].sizeBits()
	}
	total += x.subjPreds.sizeBits() + x.objPreds.sizeBits()
	return total
}

// Select resolves a triple selection pattern.
func (x *Index) Select(pat core.Pattern) *core.Iterator {
	switch pat.Shape() {
	case core.ShapeSPO:
		// Not natively supported by TripleBit; resolved as SP? + filter.
		return x.collect(func(emit func(core.Triple) bool) {
			if int(pat.P) >= x.numP {
				return
			}
			x.so[pat.P].scanX(uint64(pat.S), func(o uint64) bool {
				if o == uint64(pat.O) {
					emit(core.Triple{S: pat.S, P: pat.P, O: pat.O})
					return false
				}
				return o < uint64(pat.O)
			})
		})
	case core.ShapeSPx:
		return x.collect(func(emit func(core.Triple) bool) {
			if int(pat.P) >= x.numP {
				return
			}
			x.so[pat.P].scanX(uint64(pat.S), func(o uint64) bool {
				return emit(core.Triple{S: pat.S, P: pat.P, O: core.ID(o)})
			})
		})
	case core.ShapexPO:
		return x.collect(func(emit func(core.Triple) bool) {
			if int(pat.P) >= x.numP {
				return
			}
			x.os[pat.P].scanX(uint64(pat.O), func(s uint64) bool {
				return emit(core.Triple{S: core.ID(s), P: pat.P, O: pat.O})
			})
		})
	case core.ShapexPx:
		return x.collect(func(emit func(core.Triple) bool) {
			if int(pat.P) >= x.numP {
				return
			}
			x.so[pat.P].scanAll(func(s, o uint64) bool {
				return emit(core.Triple{S: core.ID(s), P: pat.P, O: core.ID(o)})
			})
		})
	case core.ShapeSxx:
		return x.collect(func(emit func(core.Triple) bool) {
			x.subjPreds.forEach(int(pat.S), func(p uint64) bool {
				cont := true
				x.so[p].scanX(uint64(pat.S), func(o uint64) bool {
					cont = emit(core.Triple{S: pat.S, P: core.ID(p), O: core.ID(o)})
					return cont
				})
				return cont
			})
		})
	case core.ShapexxO:
		return x.collect(func(emit func(core.Triple) bool) {
			x.objPreds.forEach(int(pat.O), func(p uint64) bool {
				cont := true
				x.os[p].scanX(uint64(pat.O), func(s uint64) bool {
					cont = emit(core.Triple{S: core.ID(s), P: core.ID(p), O: pat.O})
					return cont
				})
				return cont
			})
		})
	case core.ShapeSxO:
		return x.collect(func(emit func(core.Triple) bool) {
			x.subjPreds.forEach(int(pat.S), func(p uint64) bool {
				if x.so[p].contains(uint64(pat.S), uint64(pat.O)) {
					return emit(core.Triple{S: pat.S, P: core.ID(p), O: pat.O})
				}
				return true
			})
		})
	default:
		return x.collect(func(emit func(core.Triple) bool) {
			for p := 0; p < x.numP; p++ {
				cont := true
				x.so[p].scanAll(func(s, o uint64) bool {
					cont = emit(core.Triple{S: core.ID(s), P: core.ID(p), O: core.ID(o)})
					return cont
				})
				if !cont {
					return
				}
			}
		})
	}
}

// collect adapts callback-style producers into the pull-style Iterator
// used across the repository. The producer runs in a dedicated goroutine
// would be too costly; instead results are buffered eagerly per call.
// TripleBit's chunked scans are inherently push-based, and the paper's
// benchmark drains every iterator fully, so eager buffering preserves the
// measured work.
func (x *Index) collect(produce func(emit func(core.Triple) bool)) *core.Iterator {
	var buf []core.Triple
	produce(func(t core.Triple) bool {
		buf = append(buf, t)
		return true
	})
	i := 0
	return core.NewIterator(func() (core.Triple, bool) {
		if i >= len(buf) {
			return core.Triple{}, false
		}
		t := buf[i]
		i++
		return t, true
	})
}

// Encode writes the index to w.
func (x *Index) Encode(w *codec.Writer) {
	w.Uvarint(uint64(x.numTriples))
	w.Uvarint(uint64(x.numS))
	w.Uvarint(uint64(x.numP))
	w.Uvarint(uint64(x.numO))
	for p := 0; p < x.numP; p++ {
		x.so[p].encode(w)
		x.os[p].encode(w)
	}
	x.subjPreds.encode(w)
	x.objPreds.encode(w)
}

// Decode reads an index written by Encode.
func Decode(r *codec.Reader) (*Index, error) {
	x := &Index{}
	x.numTriples = int(r.Uvarint())
	x.numS = int(r.Uvarint())
	x.numP = int(r.Uvarint())
	x.numO = int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if x.numP < 0 || x.numP > 1<<30 {
		return nil, r.Fail(fmt.Errorf("%w: triplebit predicate count", codec.ErrCorrupt))
	}
	x.so = make([]*chunkedPairs, x.numP)
	x.os = make([]*chunkedPairs, x.numP)
	var err error
	for p := 0; p < x.numP; p++ {
		if x.so[p], err = decodeChunked(r); err != nil {
			return nil, err
		}
		if x.os[p], err = decodeChunked(r); err != nil {
			return nil, err
		}
	}
	if x.subjPreds, err = decodeEntityPreds(r); err != nil {
		return nil, err
	}
	if x.objPreds, err = decodeEntityPreds(r); err != nil {
		return nil, err
	}
	return x, nil
}
