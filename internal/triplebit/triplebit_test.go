package triplebit

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"rdfindexes/internal/codec"
	"rdfindexes/internal/core"
)

func refSelect(ts []core.Triple, p core.Pattern) []core.Triple {
	var out []core.Triple
	for _, t := range ts {
		if p.Matches(t) {
			out = append(out, t)
		}
	}
	return out
}

func sameSet(a, b []core.Triple) bool {
	if len(a) != len(b) {
		return false
	}
	less := func(ts []core.Triple) func(i, j int) bool {
		return func(i, j int) bool { return ts[i].Less(ts[j]) }
	}
	as := append([]core.Triple(nil), a...)
	bs := append([]core.Triple(nil), b...)
	sort.Slice(as, less(as))
	sort.Slice(bs, less(bs))
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func testDataset(rng *rand.Rand, n int) *core.Dataset {
	zipf := rand.NewZipf(rng, 1.3, 2, 11)
	ts := make([]core.Triple, 0, n)
	for len(ts) < n {
		ts = append(ts, core.Triple{
			S: core.ID(rng.Intn(n/10 + 20)),
			P: core.ID(zipf.Uint64()),
			O: core.ID(rng.Intn(n/3 + 30)),
		})
	}
	return core.NewDataset(ts)
}

func TestTripleBitAgainstOracleAllShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	d := testDataset(rng, 4000)
	x, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		tr := d.Triples[rng.Intn(len(d.Triples))]
		for _, s := range core.AllShapes() {
			pat := core.WithWildcards(tr, s)
			want := refSelect(d.Triples, pat)
			got := x.Select(pat).Collect(-1)
			if !sameSet(got, want) {
				t.Fatalf("pattern %v (%v): got %d matches, want %d", pat, s, len(got), len(want))
			}
		}
	}
	for i := 0; i < 30; i++ {
		tr := d.Triples[rng.Intn(len(d.Triples))]
		tr.S = core.ID(rng.Intn(d.NS))
		tr.O = core.ID(rng.Intn(d.NO))
		for _, s := range []core.Shape{core.ShapeSPO, core.ShapeSPx, core.ShapeSxO, core.ShapexPO} {
			pat := core.WithWildcards(tr, s)
			if !sameSet(x.Select(pat).Collect(-1), refSelect(d.Triples, pat)) {
				t.Fatalf("absent probe %v (%v) mismatch", pat, s)
			}
		}
	}
}

func TestTripleBitChunkBoundaries(t *testing.T) {
	// A single predicate with long runs of the same subject forces pairs
	// of one x to span multiple chunks.
	var ts []core.Triple
	for s := 0; s < 5; s++ {
		for o := 0; o < 3*chunkLen/2; o++ {
			ts = append(ts, core.Triple{S: core.ID(s), P: 0, O: core.ID(o)})
		}
	}
	d := core.NewDataset(ts)
	x, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		pat := core.NewPattern(s, 0, -1)
		if got, want := x.Select(pat).Count(), 3*chunkLen/2; got != want {
			t.Fatalf("SP? for s=%d: %d matches, want %d", s, got, want)
		}
	}
	if got := x.Select(core.NewPattern(2, 0, chunkLen)).Count(); got != 1 {
		t.Fatalf("SPO across chunk boundary: %d matches, want 1", got)
	}
}

func TestTripleBitLargerThan2Tp(t *testing.T) {
	// Table 5: TripleBit takes ~55-60% more space than 2Tp.
	rng := rand.New(rand.NewSource(157))
	d := testDataset(rng, 20000)
	x, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := core.Build2Tp(d)
	if err != nil {
		t.Fatal(err)
	}
	if x.SizeBits() <= p2.SizeBits() {
		t.Errorf("TripleBit (%d bits) not larger than 2Tp (%d bits)", x.SizeBits(), p2.SizeBits())
	}
}

func TestTripleBitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	d := testDataset(rng, 2000)
	x, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := codec.NewWriter(&buf)
	x.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(codec.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		tr := d.Triples[rng.Intn(len(d.Triples))]
		for _, s := range core.AllShapes() {
			pat := core.WithWildcards(tr, s)
			if !sameSet(got.Select(pat).Collect(-1), x.Select(pat).Collect(-1)) {
				t.Fatalf("decoded index disagrees on %v", pat)
			}
		}
	}
}

func TestTripleBitEmptyPredicateBucket(t *testing.T) {
	// Predicate 1 exists in the ID space but has no triples.
	d := core.NewDataset([]core.Triple{{S: 0, P: 0, O: 0}, {S: 1, P: 2, O: 1}})
	x, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Select(core.NewPattern(-1, 1, -1)).Count(); got != 0 {
		t.Fatalf("?P? on empty predicate returned %d matches", got)
	}
	if got := x.Select(core.NewPattern(-1, -1, -1)).Count(); got != 2 {
		t.Fatalf("full scan returned %d matches, want 2", got)
	}
}
