package dict

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rdfindexes/internal/codec"
)

func buildSorted(t *testing.T, strs []string, bucket int) *Dict {
	t.Helper()
	d, err := New(strs, bucket)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func uriLike(n int) []string {
	set := map[string]bool{}
	rng := rand.New(rand.NewSource(211))
	domains := []string{"http://dbpedia.org/resource/", "http://example.org/ns#", "http://xmlns.com/foaf/0.1/"}
	for len(set) < n {
		set[fmt.Sprintf("%sEntity_%d", domains[rng.Intn(len(domains))], rng.Intn(n*4))] = true
	}
	out := make([]string, 0, n)
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func TestDictExtractLocateRoundTrip(t *testing.T) {
	for _, bucket := range []int{1, 2, 7, 16, 64} {
		strs := uriLike(500)
		d := buildSorted(t, strs, bucket)
		if d.Len() != len(strs) {
			t.Fatalf("bucket %d: Len() = %d, want %d", bucket, d.Len(), len(strs))
		}
		for id, s := range strs {
			got, ok := d.Extract(id)
			if !ok || got != s {
				t.Fatalf("bucket %d: Extract(%d) = (%q, %v), want %q", bucket, id, got, ok, s)
			}
			gotID, ok := d.Locate(s)
			if !ok || gotID != id {
				t.Fatalf("bucket %d: Locate(%q) = (%d, %v), want %d", bucket, s, gotID, ok, id)
			}
		}
		// Absent strings.
		for _, probe := range []string{"", "aaaa", "http://zzz/last", strs[0] + "!"} {
			present := false
			for _, s := range strs {
				if s == probe {
					present = true
				}
			}
			if _, ok := d.Locate(probe); ok != present {
				t.Fatalf("bucket %d: Locate(%q) = %v, want %v", bucket, probe, ok, present)
			}
		}
	}
}

func TestDictExtractOutOfRange(t *testing.T) {
	d := buildSorted(t, []string{"a", "b"}, 4)
	if _, ok := d.Extract(-1); ok {
		t.Error("Extract(-1) succeeded")
	}
	if _, ok := d.Extract(2); ok {
		t.Error("Extract(2) succeeded")
	}
}

func TestDictRejectsUnsorted(t *testing.T) {
	if _, err := New([]string{"b", "a"}, 4); err == nil {
		t.Fatal("New accepted unsorted input")
	}
	if _, err := New([]string{"a", "a"}, 4); err == nil {
		t.Fatal("New accepted duplicates")
	}
}

func TestFromUnsorted(t *testing.T) {
	d, err := FromUnsorted([]string{"pear", "apple", "pear", "fig"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", d.Len())
	}
	for _, s := range []string{"apple", "fig", "pear"} {
		if _, ok := d.Locate(s); !ok {
			t.Fatalf("Locate(%q) failed", s)
		}
	}
}

func TestDictQuick(t *testing.T) {
	f := func(raw []string) bool {
		set := map[string]bool{}
		for _, s := range raw {
			set[s] = true
		}
		strs := make([]string, 0, len(set))
		for s := range set {
			strs = append(strs, s)
		}
		sort.Strings(strs)
		d, err := New(strs, 3)
		if err != nil {
			return false
		}
		for id, s := range strs {
			if got, ok := d.Extract(id); !ok || got != s {
				return false
			}
			if gotID, ok := d.Locate(s); !ok || gotID != id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDictCompression(t *testing.T) {
	// Front-coding should beat raw storage on shared-prefix URIs.
	strs := make([]string, 2000)
	for i := range strs {
		strs[i] = fmt.Sprintf("http://dbpedia.org/resource/Entity_%06d", i)
	}
	d := buildSorted(t, strs, 16)
	raw := 0
	for _, s := range strs {
		raw += len(s)
	}
	if d.SizeBits() >= uint64(raw)*8 {
		t.Errorf("dict %d bits >= raw %d bits", d.SizeBits(), raw*8)
	}
}

func TestDictSerializationRoundTrip(t *testing.T) {
	strs := uriLike(300)
	d := buildSorted(t, strs, 8)
	var buf bytes.Buffer
	w := codec.NewWriter(&buf)
	d.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(codec.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for id, s := range strs {
		if v, ok := got.Extract(id); !ok || v != s {
			t.Fatalf("decoded Extract(%d) = (%q, %v)", id, v, ok)
		}
	}
}

func TestDictEmpty(t *testing.T) {
	d := buildSorted(t, nil, 4)
	if d.Len() != 0 {
		t.Fatal("empty dict has nonzero length")
	}
	if _, ok := d.Locate("x"); ok {
		t.Fatal("Locate on empty dict succeeded")
	}
}
