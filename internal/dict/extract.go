package dict

import "sort"

// This file is the zero-allocation dictionary access path: a packed
// fingerprint hash that answers Locate with one expected bucket probe, a
// stateful Extractor cursor that decodes each bucket entry at most once
// across a run of nearby IDs, and a batch extraction API that groups a
// slice of IDs by bucket. The serving layers (internal/store's pooled
// renderer, the HTTP NDJSON writer, the CLI output paths) are built on
// these primitives.

// locateHash is a packed open-addressing fingerprint table over every
// string of a Dict: each occupied slot packs a 32-bit hash fingerprint
// with the 32-bit ID (stored +1 so a zero slot always means empty). A
// probe walks the string's linear-probe sequence comparing fingerprints
// only; a fingerprint hit is verified with one LCP-based bucket search,
// so lookups cost O(1) expected probes plus one bucket scan instead of a
// binary search over bucket headers.
type locateHash struct {
	mask  uint64
	slots []uint64
}

// FNV-1a, finalized with a murmur-style mix so the table index (low
// bits) and the fingerprint (high bits) are decorrelated.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

//rdf:hotpath
func hashMix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

//rdf:hotpath
func hashString(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return hashMix(h)
}

//rdf:hotpath
func hashBytes(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return hashMix(h)
}

// BuildLocateHash builds the packed hash index that makes Locate O(1).
// It enumerates every string once (through a cursor, so the build is
// linear in the encoded size) and costs 8 bytes per slot at load factor
// <= 1/2. The index is not serialized; loaders rebuild it after decode.
// It mutates the Dict, so it must be called before the dictionary is
// shared between goroutines — the store load, build and fold paths all
// call it before publication.
func (d *Dict) BuildLocateHash() {
	if d.hash != nil || d.n == 0 || d.n >= 1<<31 {
		return
	}
	size := 1
	for size < d.n*2 {
		size <<= 1
	}
	lh := &locateHash{mask: uint64(size - 1), slots: make([]uint64, size)}
	var e Extractor
	e.Bind(d)
	for id := 0; id < d.n; id++ {
		t, _ := e.Extract(id)
		h := hashBytes(t)
		fp := h >> 32
		for i := h & lh.mask; ; i = (i + 1) & lh.mask {
			if lh.slots[i] == 0 {
				lh.slots[i] = fp<<32 | uint64(id+1)
				break
			}
		}
	}
	d.hash = lh
}

// locate answers Locate through the fingerprint table. Fingerprint
// collisions are harmless: verification searches the candidate's bucket
// for s and accepts only when the found rank is the candidate itself.
//
//rdf:hotpath
func (lh *locateHash) locate(d *Dict, s string) (int, bool) {
	h := hashString(s)
	fp := h >> 32
	for i := h & lh.mask; ; i = (i + 1) & lh.mask {
		slot := lh.slots[i]
		if slot == 0 {
			return 0, false
		}
		if slot>>32 == fp {
			id := int(uint32(slot)) - 1
			if r, ok := d.searchBucket(id/d.bucketSize, s); ok && r == id {
				return id, true
			}
		}
	}
}

// Extractor is a stateful extraction cursor over a Dict or an Overlay.
// It remembers the bucket it last decoded and the buffer holding the
// current term, so a run of ascending or repeated IDs inside one bucket
// — the common case: result streams arrive sorted — decodes each bucket
// entry at most once instead of re-walking the bucket per term, and a
// repeated ID (a hot predicate) costs nothing at all. The returned term
// bytes stay valid until the next call on the same cursor.
//
// An Extractor is a single-goroutine object; the pooled renderers in
// internal/store hold one per dictionary per request.
type Extractor struct {
	d     *Dict    // front-coded base (nil only with a foreign Reader)
	added []string // overlay tail strings (ID = d.Len()+i), nil otherwise
	gen   Reader   // fallback for Reader implementations outside this package

	bucket int    // bucket currently decoded into cur, -1 when none
	idx    int    // entry index of cur within bucket
	pos    int    // byte offset in d.data of the entry after idx
	cur    []byte // owned buffer holding the current term

	ord []int32    // ExtractBatch rank scratch
	bo  batchOrder // ExtractBatch sorter (kept here so sort.Sort gets a pointer)
}

// NewExtractor returns a cursor over r. Dict and Overlay (including
// Overlay views) use the incremental bucket protocol; any other Reader
// falls back to its one-shot ExtractAppend.
func NewExtractor(r Reader) *Extractor {
	e := &Extractor{}
	e.Bind(r)
	return e
}

// Bind points the cursor at a (possibly different) dictionary, keeping
// its buffers. Bind(nil) unbinds, dropping dictionary references so a
// pooled cursor does not pin a retired store view.
func (e *Extractor) Bind(r Reader) {
	e.d, e.added, e.gen = nil, nil, nil
	switch v := r.(type) {
	case *Dict:
		e.d = v
	case *Overlay:
		e.d, e.added = v.base, v.added
	case nil:
	default:
		e.gen = r
	}
	e.bucket = -1
}

// Extract returns the term bytes for id, valid until the next call on
// this cursor. Steady state is allocation-free: the only allocations are
// growing the cursor's term buffer toward the longest term seen.
//
//rdf:hotpath
func (e *Extractor) Extract(id int) ([]byte, bool) {
	if e.d == nil {
		if e.gen == nil {
			return nil, false
		}
		var ok bool
		e.cur, ok = e.gen.ExtractAppend(e.cur[:0], id)
		return e.cur, ok
	}
	d := e.d
	if id >= d.n {
		if i := id - d.n; i < len(e.added) {
			e.bucket = -1 // cur no longer mirrors a bucket position
			e.cur = append(e.cur[:0], e.added[i]...)
			return e.cur, true
		}
		return nil, false
	}
	if id < 0 {
		return nil, false
	}
	k, j := id/d.bucketSize, id%d.bucketSize
	if k != e.bucket || j < e.idx {
		pos := int(d.offsets.Access(k))
		l, p := readUvarint(d.data, pos)
		e.cur = append(e.cur[:0], d.data[p:p+int(l)]...)
		e.bucket, e.idx, e.pos = k, 0, p+int(l)
	}
	for e.idx < j {
		lcp, p := readUvarint(d.data, e.pos)
		suf, p2 := readUvarint(d.data, p)
		e.cur = append(e.cur[:lcp], d.data[p2:p2+int(suf)]...)
		e.pos = p2 + int(suf)
		e.idx++
	}
	return e.cur, true
}

// batchOrder sorts batch ranks by their target ID; it lives inside the
// Extractor so sort.Sort receives an interface over a pre-existing
// pointer and the sort stays allocation-free.
type batchOrder struct {
	ids []int
	ord []int32
}

func (b *batchOrder) Len() int           { return len(b.ord) }
func (b *batchOrder) Less(i, j int) bool { return b.ids[b.ord[i]] < b.ids[b.ord[j]] }
func (b *batchOrder) Swap(i, j int)      { b.ord[i], b.ord[j] = b.ord[j], b.ord[i] }

// ExtractBatch resolves ids[i] into terms[i] for every i, decoding each
// touched bucket at most once: the IDs are visited in ascending order
// through the cursor regardless of their order in ids, and duplicate IDs
// share one decoded term. Term bytes are appended to arena, and the
// grown arena is returned; terms[i] slices remain valid even when the
// arena reallocates. Out-of-range IDs leave terms[i] nil and turn the
// result false. len(terms) must equal len(ids).
//
//rdf:hotpath
func (e *Extractor) ExtractBatch(ids []int, terms [][]byte, arena []byte) ([]byte, bool) {
	e.ord = e.ord[:0]
	for i := range ids {
		e.ord = append(e.ord, int32(i))
	}
	e.bo.ids, e.bo.ord = ids, e.ord
	sort.Sort(&e.bo)
	e.bo.ids = nil // do not retain the caller's slice past the call
	ok := true
	prev, prevOK := -1, false
	var prevSpan []byte
	for _, r := range e.ord {
		id := ids[r]
		if prevOK && id == prev {
			terms[r] = prevSpan
			continue
		}
		prev = id
		t, found := e.Extract(id)
		if !found {
			terms[r], prevSpan, prevOK = nil, nil, false
			ok = false
			continue
		}
		start := len(arena)
		arena = append(arena, t...)
		prevSpan, prevOK = arena[start:len(arena):len(arena)], true
		terms[r] = prevSpan
	}
	return arena, ok
}
