package dict

import "sort"

// Overlay extends an immutable front-coded base dictionary with a small
// mutable set of strings added at serve time, sharing one dense ID
// space: base strings keep their ranks [0, base.Len()) and overlay
// strings are numbered on from base.Len() in arrival order, so IDs
// already embedded in indexed triples and update logs stay stable until
// the overlay is folded into a rebuilt front-coded dictionary at merge
// (which remaps every ID; see Fold).
//
// Concurrency follows the RCU discipline of the serving stack: a single
// writer calls Add, and readers work on View copies published through an
// atomic pointer. Add never mutates state a previously published View
// can observe — the arrival slice only grows past the view's length and
// the sorted rank index is rebuilt copy-on-write — so views need no
// locking.
type Overlay struct {
	base  *Dict
	added []string // overlay strings in arrival order; ID = base.Len()+i
	byStr []int32  // overlay IDs sorted by string; copied on every Add
}

// NewOverlay wraps an immutable base dictionary with an empty overlay.
func NewOverlay(base *Dict) *Overlay {
	return &Overlay{base: base}
}

// Base returns the immutable base dictionary.
func (o *Overlay) Base() *Dict { return o.base }

// Len returns the total number of strings (base + overlay).
func (o *Overlay) Len() int { return o.base.Len() + len(o.added) }

// AddedLen returns the number of overlay strings pending a fold.
func (o *Overlay) AddedLen() int { return len(o.added) }

// str returns the overlay string with the given overlay rank index.
func (o *Overlay) str(i int32) string { return o.added[i] }

// Locate returns the ID of s, or ok=false if absent from both the base
// and the overlay.
//
//rdf:hotpath
func (o *Overlay) Locate(s string) (int, bool) {
	if id, ok := o.base.Locate(s); ok {
		return id, true
	}
	//rdf:allow(sort.Search does not retain f, so the closure stays on the stack; pinned by the escape gate)
	i := sort.Search(len(o.byStr), func(j int) bool { return o.str(o.byStr[j]) >= s })
	if i < len(o.byStr) && o.str(o.byStr[i]) == s {
		return o.base.Len() + int(o.byStr[i]), true
	}
	return 0, false
}

// Extract returns the string with the given ID.
func (o *Overlay) Extract(id int) (string, bool) {
	if id < o.base.Len() {
		return o.base.Extract(id)
	}
	if i := id - o.base.Len(); i < len(o.added) {
		return o.added[i], true
	}
	return "", false
}

// ExtractAppend appends the string with the given ID to buf: base IDs
// splice through the front-coded decoder, overlay IDs copy the added
// string. buf is returned unchanged when the ID is out of range.
//
//rdf:hotpath
//rdf:nonretaining
func (o *Overlay) ExtractAppend(buf []byte, id int) ([]byte, bool) {
	if id < o.base.Len() {
		return o.base.ExtractAppend(buf, id)
	}
	if i := id - o.base.Len(); i >= 0 && i < len(o.added) {
		return append(buf, o.added[i]...), true
	}
	return buf, false
}

// Add returns the ID of s, assigning the next free ID when the string is
// new. Only the single writer may call Add; published views are
// unaffected (copy-on-write, see the type comment).
func (o *Overlay) Add(s string) int {
	if id, ok := o.base.Locate(s); ok {
		return id
	}
	i := sort.Search(len(o.byStr), func(j int) bool { return o.str(o.byStr[j]) >= s })
	if i < len(o.byStr) && o.str(o.byStr[i]) == s {
		return o.base.Len() + int(o.byStr[i])
	}
	id := len(o.added)
	o.added = append(o.added, s)
	byStr := make([]int32, len(o.byStr)+1)
	copy(byStr, o.byStr[:i])
	byStr[i] = int32(id)
	copy(byStr[i+1:], o.byStr[i:])
	o.byStr = byStr
	return o.base.Len() + id
}

// View returns an immutable snapshot of the overlay for concurrent
// readers. The copy shares the slices; the writer's next Add will not
// disturb them.
func (o *Overlay) View() *Overlay {
	v := *o
	return &v
}

// SizeBits returns the base footprint plus the in-memory overlay charge
// (string bytes plus the rank index entry per added string).
func (o *Overlay) SizeBits() uint64 {
	bits := o.base.SizeBits()
	for _, s := range o.added {
		bits += uint64(len(s))*8 + 32
	}
	return bits
}

// Fold rebuilds one front-coded dictionary over the union of base and
// overlay strings and returns it together with the old-ID-to-new-ID
// mapping (indexed by old ID, length Len()). The caller remaps every
// triple that references the old ID space and starts a fresh overlay
// over the returned dictionary.
func (o *Overlay) Fold(bucketSize int) (*Dict, []int, error) {
	all := make([]string, 0, o.Len())
	e := NewExtractor(o.base)
	for i := 0; i < o.base.Len(); i++ {
		s, ok := e.Extract(i)
		if !ok {
			panic("dict: base dictionary ID out of range during fold")
		}
		all = append(all, string(s))
	}
	all = append(all, o.added...)
	d, err := FromUnsorted(all, bucketSize)
	if err != nil {
		return nil, nil, err
	}
	// The mapping loop below locates every string once, and the folded
	// dictionary replaces the base on the serving path; both want the
	// O(1) hash index, built here while the dict is still private.
	d.BuildLocateHash()
	mapping := make([]int, len(all))
	for oldID, s := range all {
		newID, ok := d.Locate(s)
		if !ok {
			panic("dict: folded dictionary lost a string")
		}
		mapping[oldID] = newID
	}
	return d, mapping, nil
}
