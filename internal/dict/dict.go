// Package dict implements a front-coded compressed string dictionary
// mapping sorted strings to dense integer IDs and back. The paper treats
// the string dictionary as a separate problem (Section 1) and excludes it
// from all measurements; this implementation exists so the end-to-end
// tools and examples can ingest real N-Triples data.
//
// Layout: strings are sorted and grouped into buckets of fixed size; the
// first string of each bucket is stored verbatim and the rest as (shared
// prefix length, suffix) pairs. Lookup binary searches the bucket headers
// and scans one bucket.
package dict

import (
	"fmt"
	"sort"

	"rdfindexes/internal/codec"
	"rdfindexes/internal/ef"
)

// DefaultBucketSize balances space (larger buckets share more prefixes)
// against lookup latency (a lookup scans one bucket).
const DefaultBucketSize = 16

// Reader is the read side shared by the immutable front-coded Dict and
// the mutable Overlay: everything the query path (term resolution,
// result rendering, statistics) needs, and nothing the write path adds.
type Reader interface {
	// Len returns the number of strings.
	Len() int
	// Locate returns the ID of s, or ok=false if absent.
	Locate(s string) (int, bool)
	// Extract returns the string with the given ID.
	Extract(id int) (string, bool)
	//rdf:nonretaining
	// ExtractAppend appends the string with the given ID to buf and
	// returns the extended buffer; buf is returned unchanged when the ID
	// is out of range. It never allocates beyond growing buf.
	ExtractAppend(buf []byte, id int) ([]byte, bool)
	// SizeBits returns the storage footprint in bits.
	SizeBits() uint64
}

// Dict is an immutable front-coded dictionary. IDs are the ranks of the
// strings in sorted order, starting at 0.
type Dict struct {
	n          int
	bucketSize int
	data       []byte
	offsets    *ef.Sequence // byte offset of each bucket in data
	hash       *locateHash  // optional O(1) Locate index (BuildLocateHash)
}

// New builds a dictionary over strs, which must be sorted and distinct.
func New(strs []string, bucketSize int) (*Dict, error) {
	if bucketSize <= 0 {
		bucketSize = DefaultBucketSize
	}
	d := &Dict{n: len(strs), bucketSize: bucketSize}
	var offsets []uint64
	for i, s := range strs {
		if i > 0 && strs[i-1] >= s {
			return nil, fmt.Errorf("dict: input not sorted/distinct at %d (%q >= %q)", i, strs[i-1], s)
		}
		if i%bucketSize == 0 {
			offsets = append(offsets, uint64(len(d.data)))
			d.data = appendUvarint(d.data, uint64(len(s)))
			d.data = append(d.data, s...)
		} else {
			lcp := commonPrefix(strs[i-1], s)
			d.data = appendUvarint(d.data, uint64(lcp))
			d.data = appendUvarint(d.data, uint64(len(s)-lcp))
			d.data = append(d.data, s[lcp:]...)
		}
	}
	offsets = append(offsets, uint64(len(d.data)))
	d.offsets = ef.New(offsets)
	return d, nil
}

// FromUnsorted sorts and deduplicates strs, builds the dictionary, and
// returns it. The input slice is not modified.
func FromUnsorted(strs []string, bucketSize int) (*Dict, error) {
	sorted := append([]string(nil), strs...)
	sort.Strings(sorted)
	w := 0
	for i, s := range sorted {
		if i == 0 || s != sorted[w-1] {
			sorted[w] = s
			w++
		}
	}
	return New(sorted[:w], bucketSize)
}

func commonPrefix(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

func appendUvarint(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

//rdf:hotpath
func readUvarint(data []byte, pos int) (uint64, int) {
	var v uint64
	var shift uint
	for {
		b := data[pos]
		pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, pos
		}
		shift += 7
	}
}

// Len returns the number of strings.
func (d *Dict) Len() int { return d.n }

// headerBytes returns the verbatim first string of bucket k as a
// subslice of the encoded data (no copy).
func (d *Dict) headerBytes(k int) []byte {
	pos := int(d.offsets.Access(k))
	l, pos := readUvarint(d.data, pos)
	return d.data[pos : pos+int(l)]
}

// Extract returns the string with the given ID.
func (d *Dict) Extract(id int) (string, bool) {
	b, ok := d.ExtractAppend(nil, id)
	if !ok {
		return "", false
	}
	return string(b), true
}

// ExtractAppend appends the string with the given ID to buf and returns
// the extended buffer. The bucket is decoded with one suffix splice per
// entry directly into buf: the shared prefix already sits at buf's tail
// after the previous entry, so each step truncates to the stored LCP and
// appends the suffix — no intermediate strings are materialized, and the
// only allocation is growing buf when its capacity runs out.
//
//rdf:hotpath
//rdf:nonretaining
func (d *Dict) ExtractAppend(buf []byte, id int) ([]byte, bool) {
	if id < 0 || id >= d.n {
		return buf, false
	}
	base := len(buf)
	k := id / d.bucketSize
	pos := int(d.offsets.Access(k))
	l, pos := readUvarint(d.data, pos)
	buf = append(buf, d.data[pos:pos+int(l)]...)
	pos += int(l)
	for i := 0; i < id%d.bucketSize; i++ {
		lcp, p := readUvarint(d.data, pos)
		suf, p2 := readUvarint(d.data, p)
		buf = append(buf[:base+int(lcp)], d.data[p2:p2+int(suf)]...)
		pos = p2 + int(suf)
	}
	return buf, true
}

// cmpBytesStr is bytes.Compare over a []byte and a string, avoiding the
// conversion allocation.
//
//rdf:hotpath
func cmpBytesStr(b []byte, s string) int {
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) < len(s):
		return -1
	case len(b) > len(s):
		return 1
	}
	return 0
}

// searchBucket finds s within bucket k without materializing any entry:
// it tracks match, the longest common prefix of s and the last decoded
// entry, and compares each entry through its stored LCP value. An entry
// whose LCP disagrees with match is ordered against s immediately — LCP
// below match means the entry already sorts past s (early exit), LCP
// above match means it still sorts before s (skipped without touching
// its suffix) — and only entries whose LCP equals match compare suffix
// bytes.
//
//rdf:hotpath
func (d *Dict) searchBucket(k int, s string) (int, bool) {
	pos := int(d.offsets.Access(k))
	l, pos := readUvarint(d.data, pos)
	hdr := d.data[pos : pos+int(l)]
	pos += int(l)
	match := 0
	for match < len(hdr) && match < len(s) && hdr[match] == s[match] {
		match++
	}
	if match == len(hdr) && match == len(s) {
		return k * d.bucketSize, true
	}
	if match == len(s) || (match < len(hdr) && hdr[match] > s[match]) {
		return 0, false // header > s, and entries only grow
	}
	limit := d.bucketSize
	if rem := d.n - k*d.bucketSize; rem < limit {
		limit = rem
	}
	for i := 1; i < limit; i++ {
		lcp, p := readUvarint(d.data, pos)
		suf, p2 := readUvarint(d.data, p)
		pos = p2 + int(suf)
		L := int(lcp)
		switch {
		case L < match:
			// The entry diverges from its predecessor before the prefix
			// matched so far, and sorted order makes it diverge upward.
			return 0, false
		case L > match:
			// The entry extends the predecessor beyond the first byte
			// where s already differs; it still sorts before s.
			continue
		}
		sb := d.data[p2:pos]
		j := 0
		for j < len(sb) && match+j < len(s) && sb[j] == s[match+j] {
			j++
		}
		if j == len(sb) {
			if match+j == len(s) {
				return k*d.bucketSize + i, true
			}
			match += j // entry is a proper prefix of s, keep scanning
			continue
		}
		if match+j == len(s) || sb[j] > s[match+j] {
			return 0, false // entry > s
		}
		match += j
	}
	return 0, false
}

// Locate returns the ID of s, or ok=false if absent. With a hash index
// built (BuildLocateHash), the bucket is found with one expected probe;
// otherwise a binary search over the verbatim bucket headers narrows to
// one bucket, and either way the in-bucket scan compares through the
// stored LCP values with early exit instead of materializing entries.
//
//rdf:hotpath
func (d *Dict) Locate(s string) (int, bool) {
	if d.n == 0 {
		return 0, false
	}
	if d.hash != nil {
		return d.hash.locate(d, s)
	}
	if cmpBytesStr(d.headerBytes(0), s) > 0 {
		return 0, false
	}
	// Last bucket whose header is <= s.
	numBuckets := (d.n + d.bucketSize - 1) / d.bucketSize
	lo, hi := 0, numBuckets-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if cmpBytesStr(d.headerBytes(mid), s) <= 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return d.searchBucket(lo, s)
}

// SizeBits returns the storage footprint in bits, including the hash
// index when one has been built.
func (d *Dict) SizeBits() uint64 {
	bits := uint64(len(d.data))*8 + d.offsets.SizeBits() + 2*64
	if d.hash != nil {
		bits += uint64(len(d.hash.slots)) * 64
	}
	return bits
}

// Encode writes the dictionary to w.
func (d *Dict) Encode(w *codec.Writer) {
	w.Uvarint(uint64(d.n))
	w.Uvarint(uint64(d.bucketSize))
	w.Bytes(d.data)
	d.offsets.Encode(w)
}

// Decode reads a dictionary written by Encode.
func Decode(r *codec.Reader) (*Dict, error) {
	d := &Dict{}
	d.n = int(r.Uvarint())
	d.bucketSize = int(r.Uvarint())
	d.data = r.BytesBuf()
	var err error
	if d.offsets, err = ef.Decode(r); err != nil {
		return nil, err
	}
	if d.bucketSize <= 0 {
		return nil, r.Fail(fmt.Errorf("%w: dict bucket size", codec.ErrCorrupt))
	}
	return d, nil
}

// Builder accumulates strings before constructing a dictionary; it is a
// convenience for streaming loaders.
type Builder struct {
	strs []string
}

// Add appends a string (duplicates allowed).
func (b *Builder) Add(s string) { b.strs = append(b.strs, s) }

// Build sorts, deduplicates and constructs the dictionary.
func (b *Builder) Build(bucketSize int) (*Dict, error) {
	return FromUnsorted(b.strs, bucketSize)
}
