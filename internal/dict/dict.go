// Package dict implements a front-coded compressed string dictionary
// mapping sorted strings to dense integer IDs and back. The paper treats
// the string dictionary as a separate problem (Section 1) and excludes it
// from all measurements; this implementation exists so the end-to-end
// tools and examples can ingest real N-Triples data.
//
// Layout: strings are sorted and grouped into buckets of fixed size; the
// first string of each bucket is stored verbatim and the rest as (shared
// prefix length, suffix) pairs. Lookup binary searches the bucket headers
// and scans one bucket.
package dict

import (
	"fmt"
	"sort"

	"rdfindexes/internal/codec"
	"rdfindexes/internal/ef"
)

// DefaultBucketSize balances space (larger buckets share more prefixes)
// against lookup latency (a lookup scans one bucket).
const DefaultBucketSize = 16

// Reader is the read side shared by the immutable front-coded Dict and
// the mutable Overlay: everything the query path (term resolution,
// result rendering, statistics) needs, and nothing the write path adds.
type Reader interface {
	// Len returns the number of strings.
	Len() int
	// Locate returns the ID of s, or ok=false if absent.
	Locate(s string) (int, bool)
	// Extract returns the string with the given ID.
	Extract(id int) (string, bool)
	// SizeBits returns the storage footprint in bits.
	SizeBits() uint64
}

// Dict is an immutable front-coded dictionary. IDs are the ranks of the
// strings in sorted order, starting at 0.
type Dict struct {
	n          int
	bucketSize int
	data       []byte
	offsets    *ef.Sequence // byte offset of each bucket in data
}

// New builds a dictionary over strs, which must be sorted and distinct.
func New(strs []string, bucketSize int) (*Dict, error) {
	if bucketSize <= 0 {
		bucketSize = DefaultBucketSize
	}
	d := &Dict{n: len(strs), bucketSize: bucketSize}
	var offsets []uint64
	for i, s := range strs {
		if i > 0 && strs[i-1] >= s {
			return nil, fmt.Errorf("dict: input not sorted/distinct at %d (%q >= %q)", i, strs[i-1], s)
		}
		if i%bucketSize == 0 {
			offsets = append(offsets, uint64(len(d.data)))
			d.data = appendUvarint(d.data, uint64(len(s)))
			d.data = append(d.data, s...)
		} else {
			lcp := commonPrefix(strs[i-1], s)
			d.data = appendUvarint(d.data, uint64(lcp))
			d.data = appendUvarint(d.data, uint64(len(s)-lcp))
			d.data = append(d.data, s[lcp:]...)
		}
	}
	offsets = append(offsets, uint64(len(d.data)))
	d.offsets = ef.New(offsets)
	return d, nil
}

// FromUnsorted sorts and deduplicates strs, builds the dictionary, and
// returns it. The input slice is not modified.
func FromUnsorted(strs []string, bucketSize int) (*Dict, error) {
	sorted := append([]string(nil), strs...)
	sort.Strings(sorted)
	w := 0
	for i, s := range sorted {
		if i == 0 || s != sorted[w-1] {
			sorted[w] = s
			w++
		}
	}
	return New(sorted[:w], bucketSize)
}

func commonPrefix(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

func appendUvarint(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

func readUvarint(data []byte, pos int) (uint64, int) {
	var v uint64
	var shift uint
	for {
		b := data[pos]
		pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, pos
		}
		shift += 7
	}
}

// Len returns the number of strings.
func (d *Dict) Len() int { return d.n }

// header decodes the first string of bucket k.
func (d *Dict) header(k int) string {
	pos := int(d.offsets.Access(k))
	l, pos := readUvarint(d.data, pos)
	return string(d.data[pos : pos+int(l)])
}

// Extract returns the string with the given ID.
func (d *Dict) Extract(id int) (string, bool) {
	if id < 0 || id >= d.n {
		return "", false
	}
	k := id / d.bucketSize
	pos := int(d.offsets.Access(k))
	l, pos := readUvarint(d.data, pos)
	cur := string(d.data[pos : pos+int(l)])
	pos += int(l)
	for i := 0; i < id%d.bucketSize; i++ {
		lcp, p := readUvarint(d.data, pos)
		suf, p2 := readUvarint(d.data, p)
		cur = cur[:lcp] + string(d.data[p2:p2+int(suf)])
		pos = p2 + int(suf)
	}
	return cur, true
}

// Locate returns the ID of s, or ok=false if absent.
func (d *Dict) Locate(s string) (int, bool) {
	if d.n == 0 {
		return 0, false
	}
	numBuckets := (d.n + d.bucketSize - 1) / d.bucketSize
	// Last bucket whose header is <= s.
	lo, hi := 0, numBuckets-1
	if d.header(0) > s {
		return 0, false
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if d.header(mid) <= s {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	k := lo
	pos := int(d.offsets.Access(k))
	l, pos := readUvarint(d.data, pos)
	cur := string(d.data[pos : pos+int(l)])
	pos += int(l)
	if cur == s {
		return k * d.bucketSize, true
	}
	limit := d.bucketSize
	if rem := d.n - k*d.bucketSize; rem < limit {
		limit = rem
	}
	for i := 1; i < limit; i++ {
		lcp, p := readUvarint(d.data, pos)
		suf, p2 := readUvarint(d.data, p)
		cur = cur[:lcp] + string(d.data[p2:p2+int(suf)])
		pos = p2 + int(suf)
		if cur == s {
			return k*d.bucketSize + i, true
		}
		if cur > s {
			return 0, false
		}
	}
	return 0, false
}

// SizeBits returns the storage footprint in bits.
func (d *Dict) SizeBits() uint64 {
	return uint64(len(d.data))*8 + d.offsets.SizeBits() + 2*64
}

// Encode writes the dictionary to w.
func (d *Dict) Encode(w *codec.Writer) {
	w.Uvarint(uint64(d.n))
	w.Uvarint(uint64(d.bucketSize))
	w.Bytes(d.data)
	d.offsets.Encode(w)
}

// Decode reads a dictionary written by Encode.
func Decode(r *codec.Reader) (*Dict, error) {
	d := &Dict{}
	d.n = int(r.Uvarint())
	d.bucketSize = int(r.Uvarint())
	d.data = r.BytesBuf()
	var err error
	if d.offsets, err = ef.Decode(r); err != nil {
		return nil, err
	}
	if d.bucketSize <= 0 {
		return nil, r.Fail(fmt.Errorf("%w: dict bucket size", codec.ErrCorrupt))
	}
	return d, nil
}

// Builder accumulates strings before constructing a dictionary; it is a
// convenience for streaming loaders.
type Builder struct {
	strs []string
}

// Add appends a string (duplicates allowed).
func (b *Builder) Add(s string) { b.strs = append(b.strs, s) }

// Build sorts, deduplicates and constructs the dictionary.
func (b *Builder) Build(bucketSize int) (*Dict, error) {
	return FromUnsorted(b.strs, bucketSize)
}
