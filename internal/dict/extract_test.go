package dict

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

var (
	_ Reader = (*Dict)(nil)
	_ Reader = (*Overlay)(nil)
)

func TestExtractAppend(t *testing.T) {
	for _, bucket := range []int{1, 2, 7, 16, 64} {
		strs := uriLike(400)
		d := buildSorted(t, strs, bucket)
		buf := []byte("prefix|")
		for id, want := range strs {
			got, ok := d.ExtractAppend(buf, id)
			if !ok {
				t.Fatalf("bucket %d: ExtractAppend(%d) failed", bucket, id)
			}
			if string(got) != "prefix|"+want {
				t.Fatalf("bucket %d: ExtractAppend(%d) = %q, want prefix|%q", bucket, id, got, want)
			}
		}
		if got, ok := d.ExtractAppend(buf, len(strs)); ok || string(got) != "prefix|" {
			t.Fatalf("out-of-range ExtractAppend = (%q, %v), want untouched buf", got, ok)
		}
		if got, ok := d.ExtractAppend(nil, -1); ok || got != nil {
			t.Fatalf("negative ExtractAppend = (%q, %v)", got, ok)
		}
	}
}

// extractorAccessPatterns drives a cursor through sequential, reverse,
// random, and repeated ID orders, checking every result against the
// one-shot Extract.
func TestExtractorAgainstExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	strs := uriLike(300)
	for _, bucket := range []int{1, 3, 16} {
		d := buildSorted(t, strs, bucket)
		readers := map[string]Reader{"dict": d}
		ov := NewOverlay(d)
		for i := 0; i < 40; i++ {
			ov.Add(fmt.Sprintf("zzz://overlay/%03d", i))
		}
		readers["overlay"] = ov.View()
		for name, r := range readers {
			n := r.Len()
			e := NewExtractor(r)
			var ids []int
			for i := 0; i < n; i++ {
				ids = append(ids, i) // sequential
			}
			for i := 0; i < n; i += 7 {
				ids = append(ids, i, i, i) // repeats
			}
			for i := n - 1; i >= 0; i -= 3 {
				ids = append(ids, i) // reverse
			}
			for i := 0; i < 200; i++ {
				ids = append(ids, rng.Intn(n)) // random
			}
			for _, id := range ids {
				want, _ := r.Extract(id)
				got, ok := e.Extract(id)
				if !ok || string(got) != want {
					t.Fatalf("%s bucket %d: cursor Extract(%d) = (%q, %v), want %q", name, bucket, id, got, ok, want)
				}
			}
			if _, ok := e.Extract(n); ok {
				t.Fatalf("%s: cursor Extract(%d) succeeded past the end", name, n)
			}
			if _, ok := e.Extract(-1); ok {
				t.Fatalf("%s: cursor Extract(-1) succeeded", name)
			}
		}
	}
}

func TestExtractBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	strs := uriLike(250)
	d := buildSorted(t, strs, 16)
	ov := NewOverlay(d)
	for i := 0; i < 30; i++ {
		ov.Add(fmt.Sprintf("zzz://overlay/%03d", i))
	}
	for name, r := range map[string]Reader{"dict": d, "overlay": ov.View()} {
		e := NewExtractor(r)
		n := r.Len()
		for trial := 0; trial < 20; trial++ {
			k := rng.Intn(50) + 1
			ids := make([]int, k)
			for i := range ids {
				ids[i] = rng.Intn(n)
				if rng.Intn(8) == 0 && i > 0 {
					ids[i] = ids[i-1] // duplicates
				}
			}
			terms := make([][]byte, k)
			arena, ok := e.ExtractBatch(ids, terms, nil)
			if !ok {
				t.Fatalf("%s: ExtractBatch failed on valid ids", name)
			}
			_ = arena
			for i, id := range ids {
				want, _ := r.Extract(id)
				if string(terms[i]) != want {
					t.Fatalf("%s: batch term[%d] (id %d) = %q, want %q", name, i, id, terms[i], want)
				}
			}
		}
		// Out-of-range IDs null their slot and fail the batch.
		ids := []int{0, n + 5, 1, -1}
		terms := make([][]byte, len(ids))
		if _, ok := e.ExtractBatch(ids, terms, nil); ok {
			t.Fatalf("%s: ExtractBatch accepted out-of-range ids", name)
		}
		if terms[1] != nil || terms[3] != nil {
			t.Fatalf("%s: out-of-range slots not nil", name)
		}
		if want, _ := r.Extract(0); string(terms[0]) != want {
			t.Fatalf("%s: valid slot lost in failed batch", name)
		}
	}
}

func TestLocateHashMatchesBinarySearch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, bucket := range []int{1, 2, 16} {
		strs := uriLike(600)
		plain := buildSorted(t, strs, bucket)
		hashed := buildSorted(t, strs, bucket)
		hashed.BuildLocateHash()
		probes := append([]string(nil), strs...)
		// Near-miss probes: prefixes, extensions, and mutations.
		for i := 0; i < 300; i++ {
			s := strs[rng.Intn(len(strs))]
			switch rng.Intn(3) {
			case 0:
				probes = append(probes, s[:rng.Intn(len(s)+1)])
			case 1:
				probes = append(probes, s+"x")
			default:
				b := []byte(s)
				b[rng.Intn(len(b))] ^= 1
				probes = append(probes, string(b))
			}
		}
		probes = append(probes, "", "\x00", "\xff\xff")
		for _, p := range probes {
			id1, ok1 := plain.Locate(p)
			id2, ok2 := hashed.Locate(p)
			if ok1 != ok2 || (ok1 && id1 != id2) {
				t.Fatalf("bucket %d: Locate(%q) binary=(%d,%v) hash=(%d,%v)", bucket, p, id1, ok1, id2, ok2)
			}
		}
	}
}

func TestBuildLocateHashIdempotentAndEmpty(t *testing.T) {
	d := buildSorted(t, nil, 4)
	d.BuildLocateHash()
	if d.hash != nil {
		t.Fatal("empty dict built a hash")
	}
	d2 := buildSorted(t, []string{"a", "b"}, 4)
	d2.BuildLocateHash()
	h := d2.hash
	d2.BuildLocateHash()
	if d2.hash != h {
		t.Fatal("BuildLocateHash rebuilt an existing index")
	}
}

func TestExtractorForeignReader(t *testing.T) {
	d := buildSorted(t, uriLike(50), 8)
	e := NewExtractor(wrapReader{d})
	for id := 0; id < d.Len(); id++ {
		want, _ := d.Extract(id)
		got, ok := e.Extract(id)
		if !ok || string(got) != want {
			t.Fatalf("foreign Extract(%d) = (%q, %v), want %q", id, got, ok, want)
		}
	}
	if _, ok := e.Extract(d.Len()); ok {
		t.Fatal("foreign cursor succeeded past the end")
	}
	e.Bind(nil)
	if _, ok := e.Extract(0); ok {
		t.Fatal("unbound cursor answered")
	}
}

// wrapReader hides the concrete type so the cursor takes its generic
// fallback path.
type wrapReader struct{ r Reader }

func (w wrapReader) Len() int                      { return w.r.Len() }
func (w wrapReader) Locate(s string) (int, bool)   { return w.r.Locate(s) }
func (w wrapReader) Extract(id int) (string, bool) { return w.r.Extract(id) }
func (w wrapReader) ExtractAppend(buf []byte, id int) ([]byte, bool) {
	return w.r.ExtractAppend(buf, id)
}
func (w wrapReader) SizeBits() uint64 { return w.r.SizeBits() }

// FuzzExtractorOracle cross-checks every batched/cursor access path
// against the one-shot Extract on a dictionary derived from fuzz input:
// the data bytes generate the term set, the bucket size, and the ID
// access sequence.
func FuzzExtractorOracle(f *testing.F) {
	f.Add([]byte("http://a\x00http://ab\x00zzz"), uint8(3), []byte{0, 1, 2, 2, 1, 0})
	f.Add([]byte("a\x00b\x00c\x00d\x00e"), uint8(1), []byte{4, 0, 4, 3})
	f.Add([]byte(""), uint8(16), []byte{0})
	f.Fuzz(func(t *testing.T, raw []byte, bucket uint8, seq []byte) {
		parts := strings.Split(string(raw), "\x00")
		set := map[string]bool{}
		for _, p := range parts {
			if len(p) > 0 {
				set[p] = true
			}
		}
		strs := make([]string, 0, len(set))
		for s := range set {
			strs = append(strs, s)
		}
		sort.Strings(strs)
		bs := int(bucket%64) + 1
		d, err := New(strs, bs)
		if err != nil {
			t.Fatalf("New rejected sorted distinct input: %v", err)
		}
		d.BuildLocateHash()
		ov := NewOverlay(d)
		for i := 0; i < len(strs)/2+1; i++ {
			ov.Add(fmt.Sprintf("\xffov%d", i))
		}
		for name, r := range map[string]Reader{"dict": d, "overlay": ov.View()} {
			n := r.Len()
			e := NewExtractor(r)
			ids := make([]int, 0, len(seq))
			for _, b := range seq {
				ids = append(ids, int(b)%(n+2)-1) // includes -1 and n, out of range
			}
			terms := make([][]byte, len(ids))
			arena, _ := e.ExtractBatch(ids, terms, nil)
			_ = arena
			var buf []byte
			for i, id := range ids {
				want, wantOK := r.Extract(id)
				got, ok := e.Extract(id)
				if ok != wantOK || (ok && string(got) != want) {
					t.Fatalf("%s: cursor Extract(%d) = (%q, %v), want (%q, %v)", name, id, got, ok, want, wantOK)
				}
				var aok bool
				buf, aok = r.ExtractAppend(buf[:0], id)
				if aok != wantOK || (aok && string(buf) != want) {
					t.Fatalf("%s: ExtractAppend(%d) = (%q, %v), want (%q, %v)", name, id, buf, aok, want, wantOK)
				}
				if wantOK != (terms[i] != nil) || (wantOK && string(terms[i]) != want) {
					t.Fatalf("%s: batch term[%d] (id %d) = %q, want (%q, %v)", name, i, id, terms[i], want, wantOK)
				}
				// Locate inverts Extract (base IDs exercise the hash).
				if wantOK {
					if lid, lok := r.Locate(want); !lok || lid != id {
						t.Fatalf("%s: Locate(%q) = (%d, %v), want %d", name, want, lid, lok, id)
					}
				}
			}
		}
	})
}

func TestExtractorAllocs(t *testing.T) {
	strs := uriLike(512)
	d := buildSorted(t, strs, 16)
	d.BuildLocateHash()
	ov := NewOverlay(d)
	for i := 0; i < 64; i++ {
		ov.Add(fmt.Sprintf("zzz://overlay/%03d", i))
	}
	view := ov.View()

	t.Run("ExtractAppend", func(t *testing.T) {
		buf := make([]byte, 0, 256)
		id := 0
		if n := testing.AllocsPerRun(500, func() {
			buf, _ = d.ExtractAppend(buf[:0], id)
			id = (id + 1) % d.Len()
		}); n != 0 {
			t.Errorf("ExtractAppend allocs/term = %v, want 0", n)
		}
	})
	t.Run("Extractor", func(t *testing.T) {
		for name, r := range map[string]Reader{"dict": d, "overlay": view} {
			e := NewExtractor(r)
			n := r.Len()
			// Warm the cursor buffer to the longest term.
			for i := 0; i < n; i++ {
				e.Extract(i)
			}
			id := 0
			if a := testing.AllocsPerRun(500, func() {
				e.Extract(id)
				id = (id + 3) % n
			}); a != 0 {
				t.Errorf("%s cursor allocs/term = %v, want 0", name, a)
			}
		}
	})
	t.Run("ExtractBatch", func(t *testing.T) {
		e := NewExtractor(d)
		ids := make([]int, 64)
		for i := range ids {
			ids[i] = (i * 37) % d.Len()
		}
		terms := make([][]byte, len(ids))
		arena := make([]byte, 0, 1<<14)
		e.ExtractBatch(ids, terms, arena[:0]) // warm ord scratch
		if a := testing.AllocsPerRun(200, func() {
			e.ExtractBatch(ids, terms, arena[:0])
		}); a != 0 {
			t.Errorf("ExtractBatch allocs/batch = %v, want 0", a)
		}
	})
	t.Run("Locate", func(t *testing.T) {
		for name, dd := range map[string]*Dict{"hash": d, "binary": buildSorted(t, strs, 16)} {
			i := 0
			if a := testing.AllocsPerRun(500, func() {
				dd.Locate(strs[i])
				i = (i + 1) % len(strs)
			}); a != 0 {
				t.Errorf("%s Locate allocs = %v, want 0", name, a)
			}
		}
	})
}
