package dict

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

func mustDict(t testing.TB, strs []string) *Dict {
	t.Helper()
	d, err := FromUnsorted(strs, 4)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestOverlayBasic(t *testing.T) {
	base := mustDict(t, []string{"<a>", "<b>", "<m>", "<z>"})
	o := NewOverlay(base)
	if o.Len() != 4 || o.AddedLen() != 0 {
		t.Fatalf("fresh overlay: len=%d added=%d", o.Len(), o.AddedLen())
	}
	// Adding a base string returns its base ID without growing.
	if id := o.Add("<m>"); id != 2 || o.AddedLen() != 0 {
		t.Fatalf("Add of base string: id=%d added=%d", id, o.AddedLen())
	}
	// New strings get dense IDs after the base, in arrival order.
	idQ := o.Add("<q>")
	idC := o.Add("<c>")
	if idQ != 4 || idC != 5 {
		t.Fatalf("overlay IDs = %d, %d; want 4, 5", idQ, idC)
	}
	if id := o.Add("<q>"); id != idQ {
		t.Fatalf("re-Add moved the ID: %d != %d", id, idQ)
	}
	if o.Len() != 6 || o.AddedLen() != 2 {
		t.Fatalf("after adds: len=%d added=%d", o.Len(), o.AddedLen())
	}
	for want, s := range map[int]string{0: "<a>", 2: "<m>", 4: "<q>", 5: "<c>"} {
		if id, ok := o.Locate(s); !ok || id != want {
			t.Fatalf("Locate(%q) = %d, %v; want %d", s, id, ok, want)
		}
		if got, ok := o.Extract(want); !ok || got != s {
			t.Fatalf("Extract(%d) = %q, %v; want %q", want, got, ok, s)
		}
	}
	if _, ok := o.Locate("<nope>"); ok {
		t.Fatal("Locate of absent string succeeded")
	}
	if _, ok := o.Extract(6); ok {
		t.Fatal("Extract beyond the overlay succeeded")
	}
	if o.SizeBits() <= base.SizeBits() {
		t.Fatal("overlay additions not charged in SizeBits")
	}
}

// TestOverlayViewIsolation pins the copy-on-write contract: a view taken
// before later Adds must not observe them.
func TestOverlayViewIsolation(t *testing.T) {
	base := mustDict(t, []string{"<a>", "<b>"})
	o := NewOverlay(base)
	o.Add("<x>")
	v := o.View()
	o.Add("<k>")
	o.Add("<y>")
	if v.Len() != 3 || v.AddedLen() != 1 {
		t.Fatalf("view grew after snapshot: len=%d added=%d", v.Len(), v.AddedLen())
	}
	if _, ok := v.Locate("<k>"); ok {
		t.Fatal("view sees a string added after the snapshot")
	}
	if id, ok := v.Locate("<x>"); !ok || id != 2 {
		t.Fatalf("view lost its own string: %d, %v", id, ok)
	}
	if id := o.Add("<k>"); id != 3 {
		t.Fatalf("writer ID drifted: %d", id)
	}
}

func TestOverlayFold(t *testing.T) {
	base := mustDict(t, []string{"<b>", "<d>", "<f>"})
	o := NewOverlay(base)
	o.Add("<e>") // id 3
	o.Add("<a>") // id 4
	d, mapping, err := o.Fold(4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 5 {
		t.Fatalf("folded len = %d, want 5", d.Len())
	}
	if len(mapping) != 5 {
		t.Fatalf("mapping len = %d, want 5", len(mapping))
	}
	// Every old ID must map to the new rank of the same string.
	for oldID := 0; oldID < o.Len(); oldID++ {
		s, ok := o.Extract(oldID)
		if !ok {
			t.Fatalf("Extract(%d) failed", oldID)
		}
		newID, ok := d.Locate(s)
		if !ok || mapping[oldID] != newID {
			t.Fatalf("old %d (%q): mapping says %d, dict says %d (%v)", oldID, s, mapping[oldID], newID, ok)
		}
	}
	// The folded dict is sorted: "<a>" is now rank 0.
	if got, _ := d.Extract(0); got != "<a>" {
		t.Fatalf("folded rank 0 = %q, want <a>", got)
	}
}

// FuzzOverlayRoundTrip checks Locate∘Extract = id and Extract∘Locate =
// string over a dictionary split arbitrarily into a front-coded base and
// an overlay, driven by fuzzed string content.
func FuzzOverlayRoundTrip(f *testing.F) {
	f.Add("alpha beta gamma delta", 2)
	f.Add("<http://ex/a> <http://ex/ab> \"lit with space\" _:b1", 1)
	f.Add("a aa aaa aaaa ab b", 3)
	f.Add("", 0)
	f.Fuzz(func(t *testing.T, words string, split int) {
		fields := strings.Fields(words)
		sort.Strings(fields)
		uniq := fields[:0]
		for i, s := range fields {
			if i == 0 || s != fields[i-1] {
				uniq = append(uniq, s)
			}
		}
		if split < 0 {
			split = -split
		}
		if len(uniq) == 0 {
			return
		}
		split %= len(uniq) + 1
		// Base takes the first `split` strings (sorted, as the build path
		// produces); the rest arrive through the overlay in scrambled
		// order.
		base, err := New(append([]string(nil), uniq[:split]...), 3)
		if err != nil {
			t.Fatal(err)
		}
		o := NewOverlay(base)
		rest := append([]string(nil), uniq[split:]...)
		for i, j := 0, len(rest)-1; i < j; i, j = i+1, j-1 {
			rest[i], rest[j] = rest[j], rest[i]
		}
		ids := map[string]int{}
		for _, s := range rest {
			ids[s] = o.Add(s)
		}
		if o.Len() != len(uniq) {
			t.Fatalf("Len = %d, want %d", o.Len(), len(uniq))
		}
		for id := 0; id < o.Len(); id++ {
			s, ok := o.Extract(id)
			if !ok {
				t.Fatalf("Extract(%d) failed", id)
			}
			back, ok := o.Locate(s)
			if !ok || back != id {
				t.Fatalf("Locate(Extract(%d)) = %d, %v", id, back, ok)
			}
		}
		for _, s := range uniq {
			id, ok := o.Locate(s)
			if !ok {
				t.Fatalf("Locate(%q) failed", s)
			}
			back, ok := o.Extract(id)
			if !ok || back != s {
				t.Fatalf("Extract(Locate(%q)) = %q, %v", s, back, ok)
			}
			if want, tracked := ids[s]; tracked && id != want {
				t.Fatalf("%q: ID moved from %d to %d", s, want, id)
			}
		}
		// Folding preserves the string set under remapped IDs.
		d, mapping, err := o.Fold(3)
		if err != nil {
			t.Fatal(err)
		}
		if d.Len() != o.Len() {
			t.Fatalf("fold changed cardinality: %d != %d", d.Len(), o.Len())
		}
		for oldID, newID := range mapping {
			s, _ := o.Extract(oldID)
			got, ok := d.Extract(newID)
			if !ok || got != s {
				t.Fatalf("fold mapping broken at %d -> %d: %q vs %q", oldID, newID, s, got)
			}
		}
	})
}

// FuzzDictRoundTrip fuzzes the plain front-coded dictionary the same
// way, including multi-byte content.
func FuzzDictRoundTrip(f *testing.F) {
	f.Add([]byte("one\ntwo\nthree\nthree3"))
	f.Add([]byte("<http://a>\n<http://a/b>\n\"x\"@en"))
	f.Add([]byte{0xff, 0xfe, '\n', 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		lines := strings.Split(string(data), "\n")
		d, err := FromUnsorted(lines, 5)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, s := range lines {
			seen[s] = true
		}
		if d.Len() != len(seen) {
			t.Fatalf("Len = %d, want %d distinct", d.Len(), len(seen))
		}
		for id := 0; id < d.Len(); id++ {
			s, ok := d.Extract(id)
			if !ok {
				t.Fatalf("Extract(%d) failed", id)
			}
			back, ok := d.Locate(s)
			if !ok || back != id {
				t.Fatalf("Locate(Extract(%d)) = %d, %v", id, back, ok)
			}
		}
		for s := range seen {
			id, ok := d.Locate(s)
			if !ok {
				t.Fatalf("Locate(%q) failed", s)
			}
			if back, ok := d.Extract(id); !ok || back != s {
				t.Fatalf("Extract(Locate(%q)) = %q", s, back)
			}
		}
		if _, ok := d.Locate(fmt.Sprintf("\x00absent-%d\xff", d.Len())); ok {
			// The probe string contains bytes the split can produce, so
			// only fail when it is genuinely absent.
			if !seen[fmt.Sprintf("\x00absent-%d\xff", d.Len())] {
				t.Fatal("Locate of absent string succeeded")
			}
		}
	})
}
