package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"rdfindexes/internal/core"
	"rdfindexes/internal/gen"
)

// updateThresholds are the merge thresholds compared by the update
// experiment: smaller thresholds merge (rebuild the static index) more
// often, trading insert throughput for a smaller always-fresh log.
var updateThresholds = []int{1 << 10, 1 << 12, 1 << 14}

// updateReaders is the size of the concurrent reader fleet measuring
// interference while the writer runs.
const updateReaders = 4

// UpdateThroughput measures the paper's Section 3.1 amortized-update
// strategy end to end on a 2Tp index: single-writer insert throughput
// (merge stalls included), the number of merges each threshold causes,
// and the read latency a snapshot-reading fleet observes while the
// writer runs, versus reading an idle index. Readers follow the serving
// stack's RCU discipline — the writer publishes an immutable snapshot
// after every insert, readers always query the latest published one —
// so the interference column reflects exactly what a serving deployment
// would see.
func UpdateThroughput(cfg Config) ([]*Table, error) {
	cfg = cfg.normalize()
	d, err := gen.GeneratePreset("dbpedia", cfg.Triples, cfg.Seed)
	if err != nil {
		return nil, err
	}
	pats := ParallelWorkload(d, cfg.Queries, cfg.Seed+7)
	writes := updateStream(d, 4*cfg.Queries, cfg.Seed+8)

	t := &Table{
		Title: "Amortized updates: insert throughput and read interference by merge threshold",
		Note: fmt.Sprintf("%s base triples, %d inserts, %d concurrent snapshot readers",
			N(d.Len()), len(writes), updateReaders),
		Header: []string{"threshold", "inserts/sec", "merges", "idle read ns/q", "busy read ns/q", "slowdown"},
	}
	for _, thr := range updateThresholds {
		x, err := core.NewDynamic(d, core.Layout2Tp, thr)
		if err != nil {
			return nil, err
		}
		var cur atomic.Pointer[core.DynamicSnapshot]
		cur.Store(x.Snapshot())

		idleNs := readPass(&cur, pats, len(pats))

		// Writer applies the whole stream, publishing a snapshot per
		// insert; readers hammer the latest snapshot until it finishes.
		var busyTotal, busyQueries atomic.Int64
		var done atomic.Bool
		var wg sync.WaitGroup
		for g := 0; g < updateReaders; g++ {
			wg.Add(1)
			go func(off int) {
				defer wg.Done()
				qc := core.AcquireQueryCtx()
				defer qc.Release()
				buf := qc.Batch()
				i := off
				var n int64
				start := time.Now()
				for !done.Load() {
					it := cur.Load().SelectCtx(pats[i%len(pats)], qc)
					for it.NextBatch(buf) > 0 {
					}
					i++
					n++
				}
				busyTotal.Add(time.Since(start).Nanoseconds())
				busyQueries.Add(n)
			}(g * len(pats) / updateReaders)
		}
		merges := 0
		base := x.Base()
		wstart := time.Now()
		for _, tr := range writes {
			if _, err := x.Insert(tr); err != nil {
				done.Store(true)
				wg.Wait()
				return nil, err
			}
			if x.Base() != base {
				base = x.Base()
				merges++
			}
			cur.Store(x.Snapshot())
		}
		insertsPerSec := float64(len(writes)) / time.Since(wstart).Seconds()
		done.Store(true)
		wg.Wait()

		busyNs := 0.0
		if q := busyQueries.Load(); q > 0 {
			busyNs = float64(busyTotal.Load()) / float64(q)
		}
		slowdown := 0.0
		if idleNs > 0 {
			slowdown = busyNs / idleNs
		}
		t.Add(N(thr), F(insertsPerSec), N(merges), F(idleNs), F(busyNs), F(slowdown))
	}
	return []*Table{t}, nil
}

// readPass answers count queries from the workload against the current
// snapshot and returns ns/query.
func readPass(cur *atomic.Pointer[core.DynamicSnapshot], pats []core.Pattern, count int) float64 {
	qc := core.AcquireQueryCtx()
	defer qc.Release()
	buf := qc.Batch()
	start := time.Now()
	for i := 0; i < count; i++ {
		it := cur.Load().SelectCtx(pats[i%len(pats)], qc)
		for it.NextBatch(buf) > 0 {
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(count)
}

// updateStream generates the insert workload: fresh triples drawn from
// the dataset's component distributions, with one in eight using a
// brand-new subject or object ID beyond the indexed spaces — the
// never-before-seen-term case the overlay dictionaries serve.
func updateStream(d *core.Dataset, n int, seed int64) []core.Triple {
	rng := rand.New(rand.NewSource(seed))
	out := make([]core.Triple, 0, n)
	fresh := 0
	for len(out) < n {
		t := core.Triple{
			S: core.ID(rng.Intn(d.NS)),
			P: core.ID(rng.Intn(d.NP)),
			O: core.ID(rng.Intn(d.NO)),
		}
		switch len(out) % 8 {
		case 3:
			t.S = core.ID(d.NS + fresh)
			fresh++
		case 7:
			t.O = core.ID(d.NO + fresh)
			fresh++
		}
		out = append(out, t)
	}
	return out
}
