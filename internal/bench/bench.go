// Package bench implements the experiment harness reproducing every table
// and figure of the paper's evaluation (Section 4). Each experiment
// builds the required indexes over calibrated synthetic datasets (see
// internal/gen and DESIGN.md for the data substitution), measures with
// the paper's methodology — query sets sampled from the indexed triples,
// averaged over multiple runs, single goroutine — and renders the same
// rows the paper reports. cmd/rdfbench drives it; bench_test.go wraps the
// same workloads as testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"rdfindexes/internal/core"
)

// Store is the minimal index capability measured by the harness; the
// paper's layouts and all baselines satisfy it.
type Store interface {
	Select(core.Pattern) *core.Iterator
	NumTriples() int
	SizeBits() uint64
}

// Config scales the experiments. The paper uses datasets of 88M-2B
// triples and 5,000-query samples with 5 runs; defaults here are sized
// for a laptop-scale run with the same shape.
type Config struct {
	Triples int // synthetic dataset size
	Queries int // sampled queries per pattern
	Runs    int // measurement repetitions (averaged)
	Seed    int64
}

// DefaultConfig returns laptop-scale defaults.
func DefaultConfig() Config {
	return Config{Triples: 300000, Queries: 2000, Runs: 3, Seed: 1}
}

// normalize fills zero fields with defaults.
func (c Config) normalize() Config {
	d := DefaultConfig()
	if c.Triples <= 0 {
		c.Triples = d.Triples
	}
	if c.Queries <= 0 {
		c.Queries = d.Queries
	}
	if c.Runs <= 0 {
		c.Runs = d.Runs
	}
	return c
}

// TimePatterns drains every pattern's iterator and returns the average
// nanoseconds per returned triple and the total number of matches,
// averaged over runs.
func TimePatterns(x Store, pats []core.Pattern, runs int) (nsPerTriple float64, matches int) {
	if runs <= 0 {
		runs = 1
	}
	var best time.Duration
	var buf [512]core.Triple
	for r := 0; r < runs; r++ {
		start := time.Now()
		total := 0
		for _, p := range pats {
			it := x.Select(p)
			for {
				k := it.NextBatch(buf[:])
				if k == 0 {
					break
				}
				total += k
			}
		}
		el := time.Since(start)
		matches = total
		if r == 0 || el < best {
			best = el
		}
	}
	if matches == 0 {
		return float64(best.Nanoseconds()), 0
	}
	return float64(best.Nanoseconds()) / float64(matches), matches
}

// TimeTotal drains every pattern's iterator and returns the best total
// wall time across runs and the matches.
func TimeTotal(x Store, pats []core.Pattern, runs int) (time.Duration, int) {
	if runs <= 0 {
		runs = 1
	}
	var best time.Duration
	matches := 0
	var buf [512]core.Triple
	for r := 0; r < runs; r++ {
		start := time.Now()
		total := 0
		for _, p := range pats {
			it := x.Select(p)
			for {
				k := it.NextBatch(buf[:])
				if k == 0 {
					break
				}
				total += k
			}
		}
		el := time.Since(start)
		matches = total
		if r == 0 || el < best {
			best = el
		}
	}
	return best, matches
}

// BitsPerTriple is the paper's space metric.
func BitsPerTriple(x Store) float64 {
	if x.NumTriples() == 0 {
		return 0
	}
	return float64(x.SizeBits()) / float64(x.NumTriples())
}

// Table is a formatted result table in the style of the paper.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// F formats a float compactly.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 10:
		return fmt.Sprintf("%.2f", v)
	case v < 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// N formats an int with thousands separators.
func N(v int) string {
	s := fmt.Sprintf("%d", v)
	if len(s) <= 3 {
		return s
	}
	var sb strings.Builder
	pre := len(s) % 3
	if pre > 0 {
		sb.WriteString(s[:pre])
	}
	for i := pre; i < len(s); i += 3 {
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(s[i : i+3])
	}
	return sb.String()
}
