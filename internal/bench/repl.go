package bench

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"rdfindexes/internal/core"
	"rdfindexes/internal/gen"
	"rdfindexes/internal/repl"
	"rdfindexes/internal/store"
)

// replFollowerCounts are the fan-out widths of the replication
// experiment.
var replFollowerCounts = []int{1, 2, 4, 8}

// replClientsPerFollower is the reader fleet driving each replica while
// the aggregate throughput is measured.
const replClientsPerFollower = 2

// ReplFanOut measures WAL-shipping replication end to end on a 2Tp
// store: the time to bootstrap N followers over full-snapshot streams,
// the leader's write throughput while shipping to all of them, the lag
// from the last acknowledged write until every follower has applied it,
// and the aggregate read throughput of the replica fleet. Each follower
// owns a full copy, so reads should scale near-linearly with N — the
// Broccoli-style many-cheap-frontends serving shape — while the
// shipping overhead on the write path stays flat (the hub fans one
// event log out to every subscriber).
func ReplFanOut(cfg Config) ([]*Table, error) {
	cfg = cfg.normalize()
	d, err := gen.GeneratePreset("dbpedia", cfg.Triples, cfg.Seed)
	if err != nil {
		return nil, err
	}
	pats := ParallelWorkload(d, cfg.Queries, cfg.Seed+11)
	writes := updateStream(d, cfg.Queries, cfg.Seed+12)

	dir, err := os.MkdirTemp("", "replbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	x, err := core.Build(d, core.Layout2Tp)
	if err != nil {
		return nil, err
	}
	pristine := filepath.Join(dir, "pristine.idx")
	if err := store.Write(pristine, &store.Store{Index: x}); err != nil {
		return nil, err
	}
	pristineBytes, err := os.ReadFile(pristine)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Replication fan-out: one leader shipping its WAL to N read replicas",
		Note: fmt.Sprintf("%s base triples, %d writes shipped, %d reader goroutines per replica",
			N(d.Len()), len(writes), replClientsPerFollower),
		Header: []string{"followers", "bootstrap ms", "writes/sec", "lag ms", "agg read q/s", "scaling"},
	}
	var baseRead float64
	for _, n := range replFollowerCounts {
		// Each width gets a fresh leader copy: reusing one store would turn
		// the repeated write stream into WAL-less no-ops from the second
		// run on, and nothing would ship.
		leaderPath := filepath.Join(dir, fmt.Sprintf("leader%d.idx", n))
		if err := os.WriteFile(leaderPath, pristineBytes, 0o644); err != nil {
			return nil, err
		}
		boot, wps, lag, read, err := replRun(dir, leaderPath, n, writes, pats)
		if err != nil {
			return nil, err
		}
		if baseRead == 0 {
			baseRead = read
		}
		t.Add(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", float64(boot.Microseconds())/1000),
			F(wps),
			fmt.Sprintf("%.1f", float64(lag.Microseconds())/1000),
			F(read),
			F(read/baseRead))
	}
	return []*Table{t}, nil
}

// replRun stands up one leader + n followers, drives the write stream,
// and returns bootstrap time, leader writes/sec while shipping,
// post-write convergence lag, and the fleet's aggregate read q/s.
func replRun(dir, leaderPath string, n int, writes []core.Triple, pats []core.Pattern) (boot time.Duration, wps float64, lag time.Duration, readQPS float64, err error) {
	m, err := store.OpenMutable(leaderPath, -1)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer m.Close()
	leader, err := repl.NewLeader(m, repl.LeaderOptions{HeartbeatInterval: 10 * time.Millisecond})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		leader.Close()
		return 0, 0, 0, 0, err
	}
	go leader.Serve(ln)
	defer leader.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := repl.FollowerOptions{
		ReadTimeout: time.Second,
		BackoffMin:  time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	}
	followers := make([]*repl.Follower, n)
	bootStart := time.Now()
	for i := range followers {
		path := filepath.Join(dir, fmt.Sprintf("replica%d_of_%d.idx", i, n))
		f, ferr := repl.OpenFollower(path, ln.Addr().String(), opts)
		if ferr != nil {
			return 0, 0, 0, 0, ferr
		}
		followers[i] = f
		defer f.Close()
		go f.Run(ctx)
	}
	for !replAllReady(followers) {
		time.Sleep(time.Millisecond)
	}
	boot = time.Since(bootStart)

	wstart := time.Now()
	for _, tr := range writes {
		if _, werr := m.Insert(
			fmt.Sprintf("%d", tr.S), fmt.Sprintf("%d", tr.P), fmt.Sprintf("%d", tr.O)); werr != nil {
			return 0, 0, 0, 0, werr
		}
	}
	wps = float64(len(writes)) / time.Since(wstart).Seconds()
	target := m.WALSeq()
	lstart := time.Now()
	for {
		caught := true
		for _, f := range followers {
			if f.Mutable().WALSeq() < target {
				caught = false
				break
			}
		}
		if caught {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	lag = time.Since(lstart)

	qps := make([]float64, n)
	var wg sync.WaitGroup
	for i, f := range followers {
		wg.Add(1)
		go func(i int, st *store.Store) {
			defer wg.Done()
			qps[i] = ThroughputAt(st.Index, pats, replClientsPerFollower, 2)
		}(i, f.Mutable().View())
	}
	wg.Wait()
	for _, q := range qps {
		readQPS += q
	}
	return boot, wps, lag, readQPS, nil
}

// replAllReady reports whether every follower is connected and caught
// up to the leader's commit offset.
func replAllReady(fs []*repl.Follower) bool {
	for _, f := range fs {
		if !f.Ready() {
			return false
		}
	}
	return true
}
