package bench

import (
	"strings"
	"testing"
)

func report(ns map[string]float64, matches map[string]int, bits map[string]float64) *JSONReport {
	rep := &JSONReport{Preset: "t", BitsPerTriple: bits}
	for k, v := range ns {
		parts := strings.SplitN(k, "/", 2)
		rep.Patterns = append(rep.Patterns, ShapeResult{
			Layout: parts[0], Shape: parts[1], NsPerTriple: v, Matches: matches[k],
		})
	}
	return rep
}

func TestCompare(t *testing.T) {
	base := report(
		map[string]float64{"2Tp/S??": 100, "2Tp/?P?": 0.5, "3T/??O": 40},
		map[string]int{"2Tp/S??": 10, "2Tp/?P?": 10, "3T/??O": 10},
		map[string]float64{"2Tp": 60},
	)

	t.Run("identical passes", func(t *testing.T) {
		if regs := Compare(base, base, 0.25); len(regs) != 0 {
			t.Fatalf("self-compare regressed: %v", regs)
		}
	})

	t.Run("slower fails", func(t *testing.T) {
		cur := report(
			map[string]float64{"2Tp/S??": 150, "2Tp/?P?": 0.5, "3T/??O": 40},
			map[string]int{"2Tp/S??": 10, "2Tp/?P?": 10, "3T/??O": 10},
			map[string]float64{"2Tp": 60},
		)
		regs := Compare(base, cur, 0.25)
		if len(regs) != 1 || regs[0].Metric != "ns/triple" || regs[0].Shape != "S??" {
			t.Fatalf("expected one S?? ns regression, got %v", regs)
		}
	})

	t.Run("noise floor absorbs tiny times", func(t *testing.T) {
		// 0.5 -> 1.5 ns is 3x but under the absolute floor.
		cur := report(
			map[string]float64{"2Tp/S??": 100, "2Tp/?P?": 1.5, "3T/??O": 40},
			map[string]int{"2Tp/S??": 10, "2Tp/?P?": 10, "3T/??O": 10},
			map[string]float64{"2Tp": 60},
		)
		if regs := Compare(base, cur, 0.25); len(regs) != 0 {
			t.Fatalf("noise flagged as regression: %v", regs)
		}
	})

	t.Run("match count drift fails", func(t *testing.T) {
		cur := report(
			map[string]float64{"2Tp/S??": 100, "2Tp/?P?": 0.5, "3T/??O": 40},
			map[string]int{"2Tp/S??": 11, "2Tp/?P?": 10, "3T/??O": 10},
			map[string]float64{"2Tp": 60},
		)
		regs := Compare(base, cur, 0.25)
		if len(regs) != 1 || regs[0].Metric != "matches" {
			t.Fatalf("expected a matches regression, got %v", regs)
		}
	})

	t.Run("space regression fails", func(t *testing.T) {
		cur := report(
			map[string]float64{"2Tp/S??": 100, "2Tp/?P?": 0.5, "3T/??O": 40},
			map[string]int{"2Tp/S??": 10, "2Tp/?P?": 10, "3T/??O": 10},
			map[string]float64{"2Tp": 70},
		)
		regs := Compare(base, cur, 0.25)
		if len(regs) != 1 || regs[0].Metric != "bits/triple" {
			t.Fatalf("expected a bits/triple regression, got %v", regs)
		}
	})

	t.Run("zero baseline renders without Inf", func(t *testing.T) {
		s := Regression{Layout: "2Tp", Shape: "S??", Metric: "matches", Base: 0, Current: 5}.String()
		if strings.Contains(s, "Inf") || strings.Contains(s, "NaN") {
			t.Fatalf("zero-base regression renders %q", s)
		}
	})

	t.Run("new pairs are ignored", func(t *testing.T) {
		cur := report(
			map[string]float64{"2Tp/S??": 100, "2Tp/?P?": 0.5, "3T/??O": 40, "NEW/S??": 9999},
			map[string]int{"2Tp/S??": 10, "2Tp/?P?": 10, "3T/??O": 10, "NEW/S??": 3},
			map[string]float64{"2Tp": 60, "NEW": 500},
		)
		if regs := Compare(base, cur, 0.25); len(regs) != 0 {
			t.Fatalf("new layout flagged: %v", regs)
		}
	})
}
