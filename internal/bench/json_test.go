package bench

import (
	"strings"
	"testing"

	"rdfindexes/internal/gen"
)

func report(ns map[string]float64, matches map[string]int, bits map[string]float64) *JSONReport {
	rep := &JSONReport{Preset: "t", BitsPerTriple: bits}
	for k, v := range ns {
		parts := strings.SplitN(k, "/", 2)
		rep.Patterns = append(rep.Patterns, ShapeResult{
			Layout: parts[0], Shape: parts[1], NsPerTriple: v, Matches: matches[k],
		})
	}
	return rep
}

func TestCompare(t *testing.T) {
	base := report(
		map[string]float64{"2Tp/S??": 100, "2Tp/?P?": 0.5, "3T/??O": 40},
		map[string]int{"2Tp/S??": 10, "2Tp/?P?": 10, "3T/??O": 10},
		map[string]float64{"2Tp": 60},
	)

	t.Run("identical passes", func(t *testing.T) {
		if regs := Compare(base, base, 0.25); len(regs) != 0 {
			t.Fatalf("self-compare regressed: %v", regs)
		}
	})

	t.Run("slower fails", func(t *testing.T) {
		cur := report(
			map[string]float64{"2Tp/S??": 150, "2Tp/?P?": 0.5, "3T/??O": 40},
			map[string]int{"2Tp/S??": 10, "2Tp/?P?": 10, "3T/??O": 10},
			map[string]float64{"2Tp": 60},
		)
		regs := Compare(base, cur, 0.25)
		if len(regs) != 1 || regs[0].Metric != "ns/triple" || regs[0].Shape != "S??" {
			t.Fatalf("expected one S?? ns regression, got %v", regs)
		}
	})

	t.Run("noise floor absorbs tiny times", func(t *testing.T) {
		// 0.5 -> 1.5 ns is 3x but under the absolute floor.
		cur := report(
			map[string]float64{"2Tp/S??": 100, "2Tp/?P?": 1.5, "3T/??O": 40},
			map[string]int{"2Tp/S??": 10, "2Tp/?P?": 10, "3T/??O": 10},
			map[string]float64{"2Tp": 60},
		)
		if regs := Compare(base, cur, 0.25); len(regs) != 0 {
			t.Fatalf("noise flagged as regression: %v", regs)
		}
	})

	t.Run("match count drift fails", func(t *testing.T) {
		cur := report(
			map[string]float64{"2Tp/S??": 100, "2Tp/?P?": 0.5, "3T/??O": 40},
			map[string]int{"2Tp/S??": 11, "2Tp/?P?": 10, "3T/??O": 10},
			map[string]float64{"2Tp": 60},
		)
		regs := Compare(base, cur, 0.25)
		if len(regs) != 1 || regs[0].Metric != "matches" {
			t.Fatalf("expected a matches regression, got %v", regs)
		}
	})

	t.Run("space regression fails", func(t *testing.T) {
		cur := report(
			map[string]float64{"2Tp/S??": 100, "2Tp/?P?": 0.5, "3T/??O": 40},
			map[string]int{"2Tp/S??": 10, "2Tp/?P?": 10, "3T/??O": 10},
			map[string]float64{"2Tp": 70},
		)
		regs := Compare(base, cur, 0.25)
		if len(regs) != 1 || regs[0].Metric != "bits/triple" {
			t.Fatalf("expected a bits/triple regression, got %v", regs)
		}
	})

	t.Run("zero baseline renders without Inf", func(t *testing.T) {
		s := Regression{Layout: "2Tp", Shape: "S??", Metric: "matches", Base: 0, Current: 5}.String()
		if strings.Contains(s, "Inf") || strings.Contains(s, "NaN") {
			t.Fatalf("zero-base regression renders %q", s)
		}
	})

	t.Run("new pairs are ignored", func(t *testing.T) {
		cur := report(
			map[string]float64{"2Tp/S??": 100, "2Tp/?P?": 0.5, "3T/??O": 40, "NEW/S??": 9999},
			map[string]int{"2Tp/S??": 10, "2Tp/?P?": 10, "3T/??O": 10, "NEW/S??": 3},
			map[string]float64{"2Tp": 60, "NEW": 500},
		)
		if regs := Compare(base, cur, 0.25); len(regs) != 0 {
			t.Fatalf("new layout flagged: %v", regs)
		}
	})
}

func TestCompareMaterializedRows(t *testing.T) {
	base := report(nil, nil, nil)
	base.MaterializedRowsPerSec, base.MaterializedRows = 1000, 50

	t.Run("faster passes", func(t *testing.T) {
		cur := report(nil, nil, nil)
		cur.MaterializedRowsPerSec, cur.MaterializedRows = 3000, 50
		if regs := Compare(base, cur, 0.25); len(regs) != 0 {
			t.Fatalf("faster materialization regressed: %v", regs)
		}
	})
	t.Run("slower fails", func(t *testing.T) {
		cur := report(nil, nil, nil)
		cur.MaterializedRowsPerSec, cur.MaterializedRows = 700, 50
		regs := Compare(base, cur, 0.25)
		if len(regs) != 1 || regs[0].Metric != "rows/sec" {
			t.Fatalf("expected one rows/sec regression, got %v", regs)
		}
	})
	t.Run("row drift fails", func(t *testing.T) {
		cur := report(nil, nil, nil)
		cur.MaterializedRowsPerSec, cur.MaterializedRows = 1000, 51
		regs := Compare(base, cur, 0.25)
		if len(regs) != 1 || regs[0].Metric != "matches" {
			t.Fatalf("expected one matches regression, got %v", regs)
		}
	})
	t.Run("missing baseline skips", func(t *testing.T) {
		old := report(nil, nil, nil) // predates the metric
		cur := report(nil, nil, nil)
		cur.MaterializedRowsPerSec, cur.MaterializedRows = 1, 50
		if regs := Compare(old, cur, 0.25); len(regs) != 0 {
			t.Fatalf("missing baseline gated: %v", regs)
		}
	})
}

func TestCompareMaterializedFormats(t *testing.T) {
	base := report(nil, nil, nil)
	base.MaterializedRowsPerSec, base.MaterializedRows = 1000, 50
	base.MaterializedFormatRowsPerSec = map[string]float64{
		"json": 900, "xml": 800, "csv": 1100, "tsv": 1200,
	}

	t.Run("equal or faster passes", func(t *testing.T) {
		cur := report(nil, nil, nil)
		cur.MaterializedRowsPerSec, cur.MaterializedRows = 1000, 50
		cur.MaterializedFormatRowsPerSec = map[string]float64{
			"json": 900, "xml": 850, "csv": 2000, "tsv": 1200,
		}
		if regs := Compare(base, cur, 0.25); len(regs) != 0 {
			t.Fatalf("non-regressing formats gated: %v", regs)
		}
	})
	t.Run("one slow format fails", func(t *testing.T) {
		cur := report(nil, nil, nil)
		cur.MaterializedRowsPerSec, cur.MaterializedRows = 1000, 50
		cur.MaterializedFormatRowsPerSec = map[string]float64{
			"json": 900, "xml": 500, "csv": 1100, "tsv": 1200,
		}
		regs := Compare(base, cur, 0.25)
		if len(regs) != 1 || regs[0].Layout != "materialize/xml" || regs[0].Metric != "rows/sec" {
			t.Fatalf("expected one xml rows/sec regression, got %v", regs)
		}
	})
	t.Run("format missing from either side skips", func(t *testing.T) {
		cur := report(nil, nil, nil)
		cur.MaterializedRowsPerSec, cur.MaterializedRows = 1000, 50
		cur.MaterializedFormatRowsPerSec = map[string]float64{"json": 900, "newfmt": 1}
		if regs := Compare(base, cur, 0.25); len(regs) != 0 {
			t.Fatalf("asymmetric format maps gated: %v", regs)
		}
	})
}

func TestCompareServeLatency(t *testing.T) {
	base := report(nil, nil, nil)
	base.ServeLatency = map[string]ServeLatencyResult{
		"1":  {QPS: 100000, P50us: 50, P95us: 200, P99us: 400},
		"16": {QPS: 800000, P50us: 80, P95us: 500, P99us: 900},
	}

	t.Run("equal or faster passes", func(t *testing.T) {
		cur := report(nil, nil, nil)
		cur.ServeLatency = map[string]ServeLatencyResult{
			"1":  {QPS: 110000, P50us: 45, P95us: 180, P99us: 390},
			"16": {QPS: 800000, P50us: 80, P95us: 500, P99us: 900},
		}
		if regs := Compare(base, cur, 0.25); len(regs) != 0 {
			t.Fatalf("non-regressing latency gated: %v", regs)
		}
	})
	t.Run("p99 regression fails", func(t *testing.T) {
		cur := report(nil, nil, nil)
		cur.ServeLatency = map[string]ServeLatencyResult{
			"1":  {QPS: 100000, P50us: 50, P95us: 200, P99us: 400},
			"16": {QPS: 400000, P50us: 80, P95us: 500, P99us: 2000},
		}
		regs := Compare(base, cur, 0.25)
		if len(regs) != 1 || regs[0].Layout != "serve/g=16" || regs[0].Metric != "p99 us" {
			t.Fatalf("expected one p99 regression at g=16, got %v", regs)
		}
	})
	t.Run("relative slip under absolute floor passes", func(t *testing.T) {
		// 50 -> 120µs is 2.4× the baseline but only +70µs: tail noise on
		// a shared machine, not a regression.
		cur := report(nil, nil, nil)
		cur.ServeLatency = map[string]ServeLatencyResult{
			"1":  {QPS: 100000, P50us: 120, P95us: 200, P99us: 400},
			"16": {QPS: 800000, P50us: 80, P95us: 500, P99us: 950},
		}
		if regs := Compare(base, cur, 0.25); len(regs) != 0 {
			t.Fatalf("sub-floor latency slip gated: %v", regs)
		}
	})
	t.Run("missing baseline skips", func(t *testing.T) {
		cur := report(nil, nil, nil)
		cur.ServeLatency = map[string]ServeLatencyResult{
			"4": {QPS: 100, P50us: 99999, P95us: 99999, P99us: 99999},
		}
		if regs := Compare(base, cur, 0.25); len(regs) != 0 {
			t.Fatalf("asymmetric latency maps gated: %v", regs)
		}
	})
	t.Run("absent from both skips", func(t *testing.T) {
		if regs := Compare(report(nil, nil, nil), report(nil, nil, nil), 0.25); len(regs) != 0 {
			t.Fatalf("absent latency gated: %v", regs)
		}
	})
}

func TestServeLatencyMeasured(t *testing.T) {
	rep, err := MeasureJSON(Config{Triples: 4000, Queries: 40, Runs: 1, Seed: 1}, "dblp")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ServeLatency) != len(parallelGoroutineCounts) {
		t.Fatalf("serve latency has %d levels, want %d", len(rep.ServeLatency), len(parallelGoroutineCounts))
	}
	for g, r := range rep.ServeLatency {
		if r.QPS <= 0 {
			t.Errorf("g=%s: qps %v", g, r.QPS)
		}
		if r.P50us <= 0 || r.P95us < r.P50us || r.P99us < r.P95us {
			t.Errorf("g=%s: percentiles not ordered: %+v", g, r)
		}
	}
}

func TestDictMaterializationExperiment(t *testing.T) {
	tables, err := DictMaterialization(Config{Triples: 6000, Queries: 50, Runs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("%d tables, want 4", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Fatalf("table %q has no rows", tb.Title)
		}
	}
}

func TestMaterializeRowsPerSecDeterministicRows(t *testing.T) {
	d, err := gen.GeneratePreset("dblp", 6000, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, rows1, err := MaterializeRowsPerSec(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, rows2, err := MaterializeRowsPerSec(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rows1 == 0 || rows1 != rows2 {
		t.Fatalf("materialized rows not deterministic: %d vs %d", rows1, rows2)
	}
}
