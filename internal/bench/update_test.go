package bench

import (
	"strconv"
	"testing"
)

// TestUpdateThroughput runs the amortized-update experiment at unit-test
// scale and sanity-checks the table: one row per threshold, positive
// insert throughput, and merges occurring once the write stream exceeds
// the smallest threshold.
func TestUpdateThroughput(t *testing.T) {
	cfg := Config{Triples: 6000, Queries: 300, Runs: 1, Seed: 1}
	tables, err := UpdateThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("want 1 table, got %d", len(tables))
	}
	tb := tables[0]
	if len(tb.Rows) != len(updateThresholds) {
		t.Fatalf("want %d rows, got %d", len(updateThresholds), len(tb.Rows))
	}
	for i, row := range tb.Rows {
		if len(row) != len(tb.Header) {
			t.Fatalf("row %d has %d cells, header has %d", i, len(row), len(tb.Header))
		}
		ips, err := strconv.ParseFloat(delimitedToPlain(row[1]), 64)
		if err != nil || ips <= 0 {
			t.Fatalf("row %d: inserts/sec %q not positive", i, row[1])
		}
	}
	// 4*Queries = 1200 inserts exceed the smallest threshold (1024), so
	// the first row must report at least one merge.
	merges, err := strconv.Atoi(delimitedToPlain(tb.Rows[0][2]))
	if err != nil || merges < 1 {
		t.Fatalf("smallest threshold reported %q merges, want >= 1", tb.Rows[0][2])
	}
}

// delimitedToPlain strips the thousands separators the table formatter
// may add to numeric cells.
func delimitedToPlain(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == ',' {
			continue
		}
		out = append(out, s[i])
	}
	return string(out)
}
