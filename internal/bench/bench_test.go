package bench

import (
	"bytes"
	"strings"
	"testing"

	"rdfindexes/internal/core"
	"rdfindexes/internal/gen"
)

// tiny returns a configuration small enough for unit-test latency.
func tiny() Config { return Config{Triples: 8000, Queries: 60, Runs: 1, Seed: 1} }

func TestAllExperimentsProduceTables(t *testing.T) {
	experiments := map[string]func(Config) ([]*Table, error){
		"table1": Table1, "table2": Table2, "table3": Table3,
		"table4": Table4, "table5": Table5, "table6": Table6,
		"fig6a": Fig6a, "fig6b": Fig6b, "fig7": Fig7,
		"range": RangeQueries, "ablation": Ablation, "breakdown": Breakdown,
	}
	for name, run := range experiments {
		t.Run(name, func(t *testing.T) {
			tables, err := run(tiny())
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", name)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("%s: table %q has no rows", name, tb.Title)
				}
				var buf bytes.Buffer
				tb.Fprint(&buf)
				out := buf.String()
				if !strings.Contains(out, tb.Header[0]) {
					t.Fatalf("%s: rendering lost the header: %q", name, out)
				}
			}
		})
	}
}

func TestTimePatterns(t *testing.T) {
	d, err := gen.GeneratePreset("dblp", 3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	x, err := core.Build2Tp(d)
	if err != nil {
		t.Fatal(err)
	}
	sample := gen.SampleTriples(d, 50, 2)
	pats := gen.PatternWorkload(sample, core.ShapeSPx)
	ns, matches := TimePatterns(x, pats, 2)
	if matches < len(pats) {
		t.Fatalf("matched %d < %d queries", matches, len(pats))
	}
	if ns <= 0 {
		t.Fatalf("non-positive ns/triple %v", ns)
	}
}

func TestFormatHelpers(t *testing.T) {
	if N(1234567) != "1,234,567" || N(12) != "12" || N(123) != "123" || N(1000) != "1,000" {
		t.Fatalf("N formatting wrong: %s %s %s %s", N(1234567), N(12), N(123), N(1000))
	}
	if F(0) != "0" || F(3.14159) != "3.14" || F(42.5) != "42.5" || F(1234) != "1234" {
		t.Fatalf("F formatting wrong: %s %s %s %s", F(0), F(3.14159), F(42.5), F(1234))
	}
}
