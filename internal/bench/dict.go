package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"rdfindexes/internal/core"
	"rdfindexes/internal/dict"
	"rdfindexes/internal/gen"
	"rdfindexes/internal/rdf"
	"rdfindexes/internal/server/results"
	"rdfindexes/internal/sparql"
	"rdfindexes/internal/store"
)

// SynthDicts builds dictionaries whose rank order matches the integer ID
// space of a synthetic dataset: zero-padded numeric suffixes make
// lexicographic order equal numeric order, so dictionary ID i is exactly
// dataset ID i and the dataset's triples can be served with terms
// without re-encoding. The URI shapes mirror DBLP-style entity and
// schema IRIs so front-coding sees realistic shared prefixes.
func SynthDicts(d *core.Dataset) (*rdf.Dicts, error) {
	nso := d.NS
	if d.NO > nso {
		nso = d.NO
	}
	soStrs := make([]string, nso)
	for i := range soStrs {
		soStrs[i] = fmt.Sprintf("<http://dblp.example.org/rec/conf/Entity_%010d>", i)
	}
	pStrs := make([]string, d.NP)
	for i := range pStrs {
		pStrs[i] = fmt.Sprintf("<http://dblp.example.org/schema#prop%06d>", i)
	}
	so, err := dict.New(soStrs, dict.DefaultBucketSize)
	if err != nil {
		return nil, err
	}
	p, err := dict.New(pStrs, dict.DefaultBucketSize)
	if err != nil {
		return nil, err
	}
	return &rdf.Dicts{SO: so, P: p}, nil
}

// bestOfRuns reports the best wall time of runs executions of f.
func bestOfRuns(runs int, f func()) time.Duration {
	if runs <= 0 {
		runs = 1
	}
	var best time.Duration
	for r := 0; r < runs; r++ {
		start := time.Now()
		f()
		el := time.Since(start)
		if r == 0 || el < best {
			best = el
		}
	}
	return best
}

func perSec(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// densestPredicate returns the predicate with the most triples and its
// count.
func densestPredicate(d *core.Dataset) (core.ID, int) {
	counts := make([]int, d.NP)
	for _, t := range d.Triples {
		counts[t.P]++
	}
	best, bestN := 0, 0
	for p, n := range counts {
		if n > bestN {
			best, bestN = p, n
		}
	}
	return core.ID(best), bestN
}

// legacyMaterialize replays the pre-writer /sparql row loop exactly: a
// fresh bindings map per solution from the executor, a fresh
// map[string]string per row, one-shot Store.Render per term, and
// reflection-based json.Encoder lines. It is the baseline the pooled
// NDJSON path is measured against.
func legacyMaterialize(st *store.Store, q sparql.Query, order []int, w io.Writer) (int, error) {
	enc := json.NewEncoder(w)
	rows := 0
	_, err := sparql.ExecuteWithOrder(q, st.Index, order, func(b sparql.Bindings) {
		out := make(map[string]string, len(q.Vars))
		for _, v := range q.Vars {
			if id, ok := b[v]; ok {
				out[v] = st.Render(id)
			}
		}
		enc.Encode(out)
		rows++
	})
	return rows, err
}

// pooledMaterialize runs the same query through the live serving path:
// reused-bindings streaming execution into the pooled NDJSON writer.
func pooledMaterialize(st *store.Store, q sparql.Query, order []int, w io.Writer) (int, error) {
	nw := store.AcquireNDJSON(st, w)
	defer nw.Release()
	nw.SetVars(q.Vars)
	rows := 0
	_, err := sparql.StreamWithOrder(nil, q, st.Index, order, func(b sparql.Bindings) {
		nw.WriteSolution(b)
		rows++
	})
	if err != nil {
		return rows, err
	}
	return rows, nw.Flush()
}

// protocolMaterialize runs the same query through one of the protocol
// endpoint's standard serializers (SPARQL JSON/XML/CSV/TSV), mirroring
// the live /sparql serving path.
func protocolMaterialize(st *store.Store, q sparql.Query, order []int, f results.Format, w io.Writer) (int, error) {
	wr := results.Acquire(f, st, w)
	defer wr.Release()
	wr.Begin(q.Vars)
	rows := 0
	_, err := sparql.StreamWithOrder(nil, q, st.Index, order, func(b sparql.Bindings) {
		wr.WriteSolution(b)
		rows++
	})
	if err != nil {
		return rows, err
	}
	wr.End()
	return rows, wr.Flush()
}

// materializeFixture builds the dictionary-backed store and densest-
// predicate scan the materialization measurements share.
func materializeFixture(d *core.Dataset) (*store.Store, sparql.Query, []int, error) {
	dicts, err := SynthDicts(d)
	if err != nil {
		return nil, sparql.Query{}, nil, err
	}
	x, err := core.Build2Tp(d)
	if err != nil {
		return nil, sparql.Query{}, nil, err
	}
	st := &store.Store{Index: x, Dicts: dicts}
	p, _ := densestPredicate(d)
	q, err := sparql.Parse(fmt.Sprintf("SELECT ?s ?o WHERE { ?s <%d> ?o . }", p))
	if err != nil {
		return nil, sparql.Query{}, nil, err
	}
	return st, q, sparql.Plan(q), nil
}

// MaterializeRowsPerSec measures the pooled /sparql row path on a
// dictionary-backed store built from the preset dataset: the densest
// predicate's ?s/?o scan is executed, rendered and NDJSON-encoded to a
// discarding writer, and the best of runs is reported as rows/sec. This
// is the number the BENCH_<preset>.json gate tracks.
func MaterializeRowsPerSec(d *core.Dataset, runs int) (float64, int, error) {
	st, q, order, err := materializeFixture(d)
	if err != nil {
		return 0, 0, err
	}
	rows := 0
	el := bestOfRuns(runs, func() {
		var rerr error
		rows, rerr = pooledMaterialize(st, q, order, io.Discard)
		if rerr != nil {
			err = rerr
		}
	})
	if err != nil {
		return 0, 0, err
	}
	return perSec(rows, el), rows, nil
}

// MaterializeFormatRowsPerSec measures the same scan through each of the
// protocol endpoint's serializers, keyed by format name. The row count
// is identical across formats (same seeded query), so the per-format
// numbers gate against a baseline exactly like the NDJSON one.
func MaterializeFormatRowsPerSec(d *core.Dataset, runs int) (map[string]float64, int, error) {
	st, q, order, err := materializeFixture(d)
	if err != nil {
		return nil, 0, err
	}
	out := make(map[string]float64, len(results.Formats()))
	rows := 0
	for _, f := range results.Formats() {
		el := bestOfRuns(runs, func() {
			var rerr error
			rows, rerr = protocolMaterialize(st, q, order, f, io.Discard)
			if rerr != nil {
				err = rerr
			}
		})
		if err != nil {
			return nil, 0, err
		}
		out[f.String()] = perSec(rows, el)
	}
	return out, rows, nil
}

// DictMaterialization measures the dictionary access path end to end:
// term extraction throughput of the one-shot Extract loop against the
// stateful cursor and the bucket-grouped batch API (sequential and
// random ID orders), Locate throughput of the header binary search
// against the packed fingerprint hash, and materialized /sparql rows/sec
// of the legacy row loop against the pooled NDJSON writer path.
func DictMaterialization(cfg Config) ([]*Table, error) {
	cfg = cfg.normalize()
	d, err := gen.GeneratePreset("dblp", cfg.Triples, cfg.Seed)
	if err != nil {
		return nil, err
	}
	dicts, err := SynthDicts(d)
	if err != nil {
		return nil, err
	}
	so := dicts.SO.(*dict.Dict)
	n := so.Len()

	// --- extraction ---
	seqIDs := make([]int, n)
	for i := range seqIDs {
		seqIDs[i] = i
	}
	randIDs := make([]int, n)
	copy(randIDs, seqIDs)
	rand.New(rand.NewSource(cfg.Seed+11)).Shuffle(n, func(i, j int) {
		randIDs[i], randIDs[j] = randIDs[j], randIDs[i]
	})

	extract := &Table{
		Title: "Dictionary extraction: terms/sec by access path",
		Note: fmt.Sprintf("%s front-coded terms (bucket %d), best of %d runs; one-shot re-decodes its bucket per term (the pre-cursor serving path; the seed's Extract also concatenated a string per bucket entry, so it was strictly slower than this baseline)",
			N(n), dict.DefaultBucketSize, cfg.Runs),
		Header: []string{"order", "one-shot/s", "cursor/s", "batch/s", "cursor speedup", "batch speedup"},
	}
	var sink int
	for _, row := range []struct {
		name string
		ids  []int
	}{{"sequential", seqIDs}, {"random", randIDs}} {
		oneshot := bestOfRuns(cfg.Runs, func() {
			for _, id := range row.ids {
				s, _ := so.Extract(id)
				sink += len(s)
			}
		})
		e := dict.NewExtractor(so)
		cursor := bestOfRuns(cfg.Runs, func() {
			for _, id := range row.ids {
				b, _ := e.Extract(id)
				sink += len(b)
			}
		})
		const batchSize = 512
		terms := make([][]byte, batchSize)
		arena := make([]byte, 0, 1<<16)
		batch := bestOfRuns(cfg.Runs, func() {
			for off := 0; off < len(row.ids); off += batchSize {
				chunk := row.ids[off:min(off+batchSize, len(row.ids))]
				a, _ := e.ExtractBatch(chunk, terms[:len(chunk)], arena[:0])
				sink += len(a)
			}
		})
		os, cs, bs := perSec(n, oneshot), perSec(n, cursor), perSec(n, batch)
		extract.Add(row.name, N(int(os)), N(int(cs)), N(int(bs)),
			fmt.Sprintf("%.1fx", cs/os), fmt.Sprintf("%.1fx", bs/os))
	}
	_ = sink

	// --- locate ---
	probeEvery := n/20000 + 1
	var probes []string
	for i := 0; i < n; i += probeEvery {
		s, _ := so.Extract(i)
		probes = append(probes, s)
	}
	hashed, err := SynthDicts(d) // second copy: hash index on, binary search off
	if err != nil {
		return nil, err
	}
	hso := hashed.SO.(*dict.Dict)
	hso.BuildLocateHash()
	locate := &Table{
		Title:  "Dictionary locate: lookups/sec, header binary search vs packed fingerprint hash",
		Note:   fmt.Sprintf("%d sampled present terms, best of %d runs", len(probes), cfg.Runs),
		Header: []string{"mode", "locates/s", "speedup"},
	}
	var found int
	binSearch := bestOfRuns(cfg.Runs, func() {
		for _, s := range probes {
			if _, ok := so.Locate(s); ok {
				found++
			}
		}
	})
	hash := bestOfRuns(cfg.Runs, func() {
		for _, s := range probes {
			if _, ok := hso.Locate(s); ok {
				found++
			}
		}
	})
	_ = found
	bl, hl := perSec(len(probes), binSearch), perSec(len(probes), hash)
	locate.Add("binary search", N(int(bl)), "1.0x")
	locate.Add("hash", N(int(hl)), fmt.Sprintf("%.1fx", hl/bl))

	// --- end-to-end materialization ---
	x, err := core.Build2Tp(d)
	if err != nil {
		return nil, err
	}
	st := &store.Store{Index: x, Dicts: dicts}
	p, pn := densestPredicate(d)
	q, err := sparql.Parse(fmt.Sprintf("SELECT ?s ?o WHERE { ?s <%d> ?o . }", p))
	if err != nil {
		return nil, err
	}
	order := sparql.Plan(q)
	rows := 0
	legacy := bestOfRuns(cfg.Runs, func() {
		rows, _ = legacyMaterialize(st, q, order, io.Discard)
	})
	pooled := bestOfRuns(cfg.Runs, func() {
		rows, _ = pooledMaterialize(st, q, order, io.Discard)
	})
	mat := &Table{
		Title: "Materialized /sparql rows/sec: legacy row loop vs pooled NDJSON writer",
		Note: fmt.Sprintf("SELECT ?s ?o over the densest predicate (%s rows), terms rendered and NDJSON-encoded to a discarding writer, best of %d runs",
			N(pn), cfg.Runs),
		Header: []string{"path", "rows/s", "speedup"},
	}
	lr, pr := perSec(rows, legacy), perSec(rows, pooled)
	mat.Add("legacy (map + Render + json.Encoder)", N(int(lr)), "1.0x")
	mat.Add("pooled (stream + cursor + term cache)", N(int(pr)), fmt.Sprintf("%.1fx", pr/lr))

	// --- protocol serializers ---
	proto := &Table{
		Title: "Materialized protocol rows/sec by serializer (/sparql endpoint)",
		Note: fmt.Sprintf("same densest-predicate scan through each standard result format, best of %d runs; all four share the pooled escaped-term arena, so none gives back the pooled-path win",
			cfg.Runs),
		Header: []string{"format", "rows/s", "vs NDJSON"},
	}
	for _, f := range results.Formats() {
		el := bestOfRuns(cfg.Runs, func() {
			rows, _ = protocolMaterialize(st, q, order, f, io.Discard)
		})
		fr := perSec(rows, el)
		proto.Add(f.String()+" ("+f.ContentType()+")", N(int(fr)), fmt.Sprintf("%.2fx", fr/pr))
	}
	return []*Table{extract, locate, mat, proto}, nil
}
