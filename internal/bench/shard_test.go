package bench

import (
	"testing"

	"rdfindexes/internal/core"
	"rdfindexes/internal/gen"
)

// TestShardScalingSmoke runs the experiment at toy scale: every row
// renders and the workload samplers produce the advertised shapes.
func TestShardScalingSmoke(t *testing.T) {
	tables, err := ShardScaling(Config{Triples: 4000, Queries: 60, Runs: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want 2", len(tables))
	}
	if got, want := len(tables[0].Rows), len(shardCounts); got != want {
		t.Fatalf("build table has %d rows, want %d", got, want)
	}
	if got, want := len(tables[1].Rows), len(shardCounts)*len(shardGoroutineCounts); got != want {
		t.Fatalf("serving table has %d rows, want %d", got, want)
	}
}

func TestShardWorkloadShapes(t *testing.T) {
	d, err := gen.GeneratePreset("dbpedia", 4000, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range RoutedWorkload(d, 50, 1) {
		if p.S == core.Wildcard {
			t.Fatalf("routed workload contains subject-unbound pattern %v", p)
		}
	}
	for _, p := range FanOutWorkload(d, 50, 1) {
		if p.S != core.Wildcard {
			t.Fatalf("fan-out workload contains subject-bound pattern %v", p)
		}
	}
}
