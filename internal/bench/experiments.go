package bench

import (
	"fmt"
	"time"

	"rdfindexes/internal/core"
	"rdfindexes/internal/gen"
	"rdfindexes/internal/hdt"
	"rdfindexes/internal/rdf3x"
	"rdfindexes/internal/seq"
	"rdfindexes/internal/sparql"
	"rdfindexes/internal/trie"
	"rdfindexes/internal/triplebit"
)

// table1Kinds are the encoders compared in Table 1. VByte is scalar here
// (the paper benchmarks a SIMD decoder; Go has no stdlib SIMD — the
// family's trade-off shape is preserved, see DESIGN.md).
var table1Kinds = []seq.Kind{seq.KindCompact, seq.KindEF, seq.KindPEF, seq.KindVByte}

// table1Perms are the three materialized permutations.
var table1Perms = []core.Perm{core.PermSPO, core.PermPOS, core.PermOSP}

// Table1 reproduces Table 1: space and access/find/scan speed of the
// four sequence representations on levels 2 and 3 of the three tries of
// the DBpedia-shaped dataset.
func Table1(cfg Config) ([]*Table, error) {
	cfg = cfg.normalize()
	d, err := gen.GeneratePreset("dbpedia", cfg.Triples, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sample := gen.SampleTriples(d, cfg.Queries, cfg.Seed+1)

	level2 := &Table{
		Title:  "Table 1 (level 2): bits/triple and ns/int for access, find, scan",
		Note:   fmt.Sprintf("DBpedia-shaped dataset, %s triples, %d sampled queries", N(d.Len()), len(sample)),
		Header: []string{"encoder", "SPO b/t", "acc", "find", "scan", "POS b/t", "acc", "find", "scan", "OSP b/t", "acc", "find", "scan"},
	}
	level3 := &Table{
		Title:  "Table 1 (level 3): bits/triple and ns/int for access, find, scan",
		Header: level2.Header,
	}

	for _, kind := range table1Kinds {
		row2 := []string{kind.String()}
		row3 := []string{kind.String()}
		for _, perm := range table1Perms {
			t, err := buildTrieForBench(d, perm, trie.Config{
				Nodes1: kind, Nodes2: kind, Ptr0: seq.KindEF, Ptr1: seq.KindEF,
			})
			if err != nil {
				return nil, err
			}
			m2, m3 := measureTrieLevels(t, perm, sample, cfg.Runs)
			row2 = append(row2, F(m2.bitsPerTriple), F(m2.accessNs), F(m2.findNs), F(m2.scanNs))
			row3 = append(row3, F(m3.bitsPerTriple), F(m3.accessNs), F(m3.findNs), F(m3.scanNs))
		}
		level2.Add(row2...)
		level3.Add(row3...)
	}
	return []*Table{level2, level3}, nil
}

func buildTrieForBench(d *core.Dataset, perm core.Perm, cfg trie.Config) (*trie.Trie, error) {
	scratch := make([]core.Triple, len(d.Triples))
	copy(scratch, d.Triples)
	core.SortPerm(scratch, perm, d.NS, d.NP, d.NO)
	return trie.Build(len(scratch), perm.RootSpace(d.NS, d.NP, d.NO), func(i int) (uint32, uint32, uint32) {
		a, b, c := perm.Apply(scratch[i])
		return uint32(a), uint32(b), uint32(c)
	}, cfg)
}

type levelMeasurement struct {
	bitsPerTriple float64
	accessNs      float64
	findNs        float64
	scanNs        float64
}

// measureTrieLevels runs the Table 1 micro-benchmarks: for every sampled
// triple, an access at the pre-calculated position of its second (third)
// component, a find for that component within its sibling range, and a
// full sequential scan of each level.
func measureTrieLevels(t *trie.Trie, perm core.Perm, sample []core.Triple, runs int) (levelMeasurement, levelMeasurement) {
	n := t.NumTriples()
	type probe struct {
		b1, e1, j int // second level: range and position of b
		b2, e2, k int // third level: range and position of c
		b, c      uint32
	}
	probes := make([]probe, 0, len(sample))
	for _, tr := range sample {
		a, b, c := perm.Apply(tr)
		p := probe{b: uint32(b), c: uint32(c)}
		p.b1, p.e1 = t.RootRange(uint32(a))
		p.j = t.FindChild1(p.b1, p.e1, uint32(b))
		if p.j < 0 {
			continue
		}
		p.b2, p.e2 = t.ChildRange(p.j)
		p.k = t.FindChild2(p.b2, p.e2, uint32(c))
		if p.k < 0 {
			continue
		}
		probes = append(probes, p)
	}

	nodes1, nodes2 := t.Nodes(1), t.Nodes(2)
	var m2, m3 levelMeasurement
	m2.bitsPerTriple = float64(nodes1.SizeBits()) / float64(n)
	m3.bitsPerTriple = float64(nodes2.SizeBits()) / float64(n)

	bestOf := func(f func()) time.Duration {
		var best time.Duration
		for r := 0; r < runs; r++ {
			start := time.Now()
			f()
			el := time.Since(start)
			if r == 0 || el < best {
				best = el
			}
		}
		return best
	}
	perOp := func(d time.Duration, ops int) float64 {
		if ops == 0 {
			return 0
		}
		return float64(d.Nanoseconds()) / float64(ops)
	}

	var sink uint64
	m2.accessNs = perOp(bestOf(func() {
		for _, p := range probes {
			sink += nodes1.At(p.b1, p.j)
		}
	}), len(probes))
	m2.findNs = perOp(bestOf(func() {
		for _, p := range probes {
			sink += uint64(nodes1.Find(p.b1, p.e1, uint64(p.b)))
		}
	}), len(probes))
	m3.accessNs = perOp(bestOf(func() {
		for _, p := range probes {
			sink += nodes2.At(p.b2, p.k)
		}
	}), len(probes))
	m3.findNs = perOp(bestOf(func() {
		for _, p := range probes {
			sink += uint64(nodes2.Find(p.b2, p.e2, uint64(p.c)))
		}
	}), len(probes))

	// Scans decode the whole level sequentially, as the paper measures
	// ("the time spent per node, when decoding the level sequentially").
	m2.scanNs = perOp(bestOf(func() {
		it := nodes1.Iter(0, nodes1.Len())
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			sink += v
		}
	}), nodes1.Len())
	m3.scanNs = perOp(bestOf(func() {
		it := nodes2.Iter(0, nodes2.Len())
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			sink += v
		}
	}), nodes2.Len())
	_ = sink
	return m2, m3
}

// Table2 reproduces Table 2: average and maximum number of children per
// trie level on the DBpedia-shaped dataset.
func Table2(cfg Config) ([]*Table, error) {
	cfg = cfg.normalize()
	d, err := gen.GeneratePreset("dbpedia", cfg.Triples, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table 2: number of children of the trie nodes (DBpedia-shaped)",
		Header: []string{"trie", "level", "average", "maximum"},
	}
	for _, perm := range table1Perms {
		tr, err := buildTrieForBench(d, perm, trie.DefaultConfig())
		if err != nil {
			return nil, err
		}
		for level := 1; level <= 2; level++ {
			avg, max := tr.ChildStats(level)
			t.Add(perm.String(), fmt.Sprintf("%d", level), F(avg), N(max))
		}
	}
	return []*Table{t}, nil
}

// Table3 reproduces Table 3: the basic statistics of all six datasets.
func Table3(cfg Config) ([]*Table, error) {
	cfg = cfg.normalize()
	t := &Table{
		Title:  "Table 3: dataset statistics (synthetic, calibrated to the paper's shapes)",
		Header: []string{"dataset", "triples", "S", "P", "O", "SP pairs", "PO pairs", "OS pairs"},
	}
	for _, name := range gen.PresetNames() {
		d, err := gen.GeneratePreset(name, cfg.Triples, cfg.Seed)
		if err != nil {
			return nil, err
		}
		st := d.ComputeStats()
		t.Add(name, N(st.Triples), N(st.DistinctS), N(st.DistinctP), N(st.DistinctO),
			N(st.PairsSP), N(st.PairsPO), N(st.PairsOS))
	}
	return []*Table{t}, nil
}

// table4Datasets are the real-world shapes of the 3T/CC/2T comparison.
var table4Datasets = []string{"dblp", "geonames", "dbpedia", "freebase"}

// Table4 reproduces Table 4: space and per-pattern speed of 3T, CC, 2To
// and 2Tp.
func Table4(cfg Config) ([]*Table, error) {
	cfg = cfg.normalize()
	space := &Table{
		Title:  "Table 4 (space): bits/triple of the index layouts",
		Header: append([]string{"index"}, table4Datasets...),
	}
	speed := &Table{
		Title:  "Table 4 (speed): average ns per returned triple",
		Header: append([]string{"pattern", "index"}, table4Datasets...),
	}

	type built struct {
		indexes map[string]core.Index
		sample  []core.Triple
	}
	builds := map[string]built{}
	for _, name := range table4Datasets {
		d, err := gen.GeneratePreset(name, cfg.Triples, cfg.Seed)
		if err != nil {
			return nil, err
		}
		b := built{indexes: map[string]core.Index{}, sample: gen.SampleTriples(d, cfg.Queries, cfg.Seed+2)}
		for _, layout := range []core.Layout{core.Layout3T, core.LayoutCC, core.Layout2To, core.Layout2Tp} {
			x, err := core.Build(d, layout)
			if err != nil {
				return nil, err
			}
			b.indexes[layout.String()] = x
		}
		builds[name] = b
	}

	for _, idx := range []string{"3T", "CC", "2To", "2Tp"} {
		row := []string{idx}
		for _, name := range table4Datasets {
			row = append(row, F(BitsPerTriple(builds[name].indexes[idx])))
		}
		space.Add(row...)
	}

	for _, shape := range core.AllShapes() {
		for _, idx := range []string{"3T", "CC", "2To", "2Tp"} {
			row := []string{shape.String(), idx}
			for _, name := range table4Datasets {
				b := builds[name]
				pats := gen.PatternWorkload(b.sample, shape)
				ns, _ := TimePatterns(b.indexes[idx], pats, cfg.Runs)
				row = append(row, F(ns))
			}
			speed.Add(row...)
		}
	}
	return []*Table{space, speed}, nil
}

// table5Shapes are the patterns reported in Table 5 (SPO and ??? are
// omitted there; TripleBit does not support SPO natively).
var table5Shapes = []core.Shape{core.ShapexPO, core.ShapeSxO, core.ShapeSPx, core.ShapeSxx, core.ShapexPx, core.ShapexxO}

// Table5 reproduces Table 5: 2Tp against the reimplemented HDT-FoQ and
// TripleBit baselines, plus the RDF-3X-style baseline as an extension.
func Table5(cfg Config) ([]*Table, error) {
	cfg = cfg.normalize()
	space := &Table{
		Title:  "Table 5 (space): bits/triple, 2Tp vs baselines",
		Header: append([]string{"index"}, table4Datasets...),
	}
	speed := &Table{
		Title:  "Table 5 (speed): average ns per returned triple",
		Header: append([]string{"pattern", "index"}, table4Datasets...),
	}
	names := []string{"2Tp", "HDT-FoQ", "TripleBit", "RDF-3X*"}
	type built struct {
		stores map[string]Store
		sample []core.Triple
	}
	builds := map[string]built{}
	for _, name := range table4Datasets {
		d, err := gen.GeneratePreset(name, cfg.Triples, cfg.Seed)
		if err != nil {
			return nil, err
		}
		p2, err := core.Build2Tp(d)
		if err != nil {
			return nil, err
		}
		h, err := hdt.Build(d)
		if err != nil {
			return nil, err
		}
		tb, err := triplebit.Build(d)
		if err != nil {
			return nil, err
		}
		r3, err := rdf3x.Build(d)
		if err != nil {
			return nil, err
		}
		builds[name] = built{
			stores: map[string]Store{"2Tp": p2, "HDT-FoQ": h, "TripleBit": tb, "RDF-3X*": r3},
			sample: gen.SampleTriples(d, cfg.Queries, cfg.Seed+3),
		}
	}
	for _, idx := range names {
		row := []string{idx}
		for _, name := range table4Datasets {
			row = append(row, F(BitsPerTriple(builds[name].stores[idx])))
		}
		space.Add(row...)
	}
	for _, shape := range table5Shapes {
		for _, idx := range names {
			row := []string{shape.String(), idx}
			for _, name := range table4Datasets {
				b := builds[name]
				pats := gen.PatternWorkload(b.sample, shape)
				ns, _ := TimePatterns(b.stores[idx], pats, cfg.Runs)
				row = append(row, F(ns))
			}
			speed.Add(row...)
		}
	}
	return []*Table{space, speed}, nil
}

// Table6 reproduces Table 6: the indexes execute the identical serial
// decomposition of the WatDiv and LUBM query logs into atomic selection
// patterns (obtained with the selectivity-driven planner, as the paper
// does with TripleBit's planner).
func Table6(cfg Config) ([]*Table, error) {
	cfg = cfg.normalize()
	t := &Table{
		Title:  "Table 6: bits/triple and seconds/query on the WatDiv and LUBM query logs",
		Header: []string{"index", "watdiv b/t", "watdiv s/query", "lubm b/t", "lubm s/query"},
	}
	type ds struct {
		d       *core.Dataset
		queries []sparql.Query
	}
	wd := gen.WatDiv(cfg.Triples/17+10, cfg.Seed)
	lu := gen.LUBM(cfg.Triples/3500+2, cfg.Seed)
	numQ := 40
	sets := []ds{
		{wd.Dataset, gen.WatDivQueries(wd, numQ, cfg.Seed+4)},
		{lu.Dataset, gen.LUBMQueries(lu, numQ, cfg.Seed+5)},
	}

	type row struct {
		name  string
		cells []string
	}
	rows := []row{{name: "2Tp"}, {name: "HDT-FoQ"}, {name: "TripleBit"}, {name: "RDF-3X*"}}
	for _, set := range sets {
		p2, err := core.Build2Tp(set.d)
		if err != nil {
			return nil, err
		}
		h, err := hdt.Build(set.d)
		if err != nil {
			return nil, err
		}
		tb, err := triplebit.Build(set.d)
		if err != nil {
			return nil, err
		}
		r3, err := rdf3x.Build(set.d)
		if err != nil {
			return nil, err
		}
		// Decompose every query once with the 2Tp index; replay the same
		// pattern sequence on every store.
		var patterns []core.Pattern
		for _, q := range set.queries {
			ps, err := sparql.Decompose(q, p2)
			if err != nil {
				return nil, err
			}
			patterns = append(patterns, ps...)
		}
		stores := []Store{p2, h, tb, r3}
		for i, st := range stores {
			el, _ := TimeTotal(st, patterns, cfg.Runs)
			secPerQuery := el.Seconds() / float64(len(set.queries))
			rows[i].cells = append(rows[i].cells,
				F(BitsPerTriple(st)), fmt.Sprintf("%.6f", secPerQuery))
		}
	}
	for _, r := range rows {
		t.Add(append([]string{r.name}, r.cells...)...)
	}
	t.Note = fmt.Sprintf("%d queries per log; identical pattern decompositions replayed on every index", numQ)
	return []*Table{t}, nil
}
