package bench

import (
	"fmt"
	"runtime"
	"testing"

	"rdfindexes/internal/core"
	"rdfindexes/internal/gen"
)

// BenchmarkServeParallel measures queries/sec over one shared immutable
// index at fixed goroutine counts (not GOMAXPROCS multiples), matching
// the serving scenario: N clients, one store, a pooled QueryCtx per
// client. Compare the 1/4/16 sub-benchmarks to see the scaling.
func BenchmarkServeParallel(b *testing.B) {
	d, err := gen.GeneratePreset("dbpedia", 120000, 1)
	if err != nil {
		b.Fatal(err)
	}
	x, err := core.Build2Tp(d)
	if err != nil {
		b.Fatal(err)
	}
	pats := ParallelWorkload(d, 2048, 7)

	for _, g := range parallelGoroutineCounts {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			Drive(x, pats, g, int64(b.N))
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
			}
		})
	}
}

// TestThroughputScalesWithGoroutines is the acceptance check behind the
// benchmark: on a multi-core machine, 4 goroutines must answer more
// queries per second than 1 on the same shared store. Kept as a test so
// `go test` (and the race job, at reduced size) enforces it.
func TestThroughputScalesWithGoroutines(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement skipped in -short")
	}
	d, err := gen.GeneratePreset("dbpedia", 60000, 1)
	if err != nil {
		t.Fatal(err)
	}
	x, err := core.Build2Tp(d)
	if err != nil {
		t.Fatal(err)
	}
	pats := ParallelWorkload(d, 1024, 7)
	rounds := 16 // ~50-100ms per measurement, enough to swamp goroutine startup
	best1, best4 := 0.0, 0.0
	for r := 0; r < 3; r++ {
		if q := ThroughputAt(x, pats, 1, rounds); q > best1 {
			best1 = q
		}
		if q := ThroughputAt(x, pats, 4, rounds); q > best4 {
			best4 = q
		}
	}
	t.Logf("throughput: 1 goroutine %.0f q/s, 4 goroutines %.0f q/s (%.2fx)", best1, best4, best4/best1)
	// Scaling needs cores to scale onto, and the race detector
	// serializes enough to erase it; enforce the ratio only where it can
	// physically hold.
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d: scaling assertion needs >= 4 CPUs", runtime.GOMAXPROCS(0))
	}
	if raceEnabled {
		return
	}
	// On shared CI runners a noisy neighbor can flatten one measurement,
	// so require a clear speedup in any of a few attempts rather than
	// best-of-one: a genuine serialization bug (a lock on the read path)
	// pins the ratio near 1.0x across all of them.
	const wantRatio = 1.15
	for attempt := 0; attempt < 3; attempt++ {
		if best4 > best1*wantRatio {
			return
		}
		if q := ThroughputAt(x, pats, 1, rounds); q > best1 {
			best1 = q
		}
		if q := ThroughputAt(x, pats, 4, rounds); q > best4 {
			best4 = q
		}
	}
	if best4 <= best1*wantRatio {
		t.Errorf("no scaling: 4 goroutines %.0f q/s vs 1 goroutine %.0f q/s (want >= %.2fx)",
			best4, best1, wantRatio)
	}
}
