package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"rdfindexes/internal/core"
	"rdfindexes/internal/gen"
	"rdfindexes/internal/obs"
)

// ShapeResult is one (layout, pattern shape) measurement.
type ShapeResult struct {
	Layout      string  `json:"layout"`
	Shape       string  `json:"shape"`
	NsPerTriple float64 `json:"ns_per_triple"`
	Matches     int     `json:"matches"`
}

// JSONReport is the machine-readable result of one preset run: space and
// per-pattern speed for every layout, in a stable schema so the perf
// trajectory can be tracked across commits (cmd/rdfbench writes it as
// BENCH_<preset>.json).
type JSONReport struct {
	Preset        string             `json:"preset"`
	Triples       int                `json:"triples"`
	Queries       int                `json:"queries"`
	Runs          int                `json:"runs"`
	Seed          int64              `json:"seed"`
	BitsPerTriple map[string]float64 `json:"bits_per_triple"`
	Patterns      []ShapeResult      `json:"patterns"`
	// MaterializedRowsPerSec is the throughput of the pooled /sparql row
	// path (streamed execution + dictionary cursors + NDJSON writer) on
	// a synthetic-dictionary store; MaterializedRows is the seeded row
	// count behind it (a mismatch means the measurements are not
	// comparable). Zero in reports from before the field existed, which
	// Compare treats as "no baseline".
	MaterializedRowsPerSec float64 `json:"materialized_rows_per_sec,omitempty"`
	MaterializedRows       int     `json:"materialized_rows,omitempty"`
	// MaterializedFormatRowsPerSec is the same scan through each of the
	// protocol endpoint's serializers (SPARQL json/xml/csv/tsv), keyed by
	// format name. The row count equals MaterializedRows (same seeded
	// query), so the per-format throughputs gate downward against a
	// baseline exactly like the NDJSON number. Absent in reports from
	// before the protocol endpoint existed, which Compare skips.
	MaterializedFormatRowsPerSec map[string]float64 `json:"materialized_format_rows_per_sec,omitempty"`
	// ServeLatency is the concurrent serving-path latency distribution,
	// keyed by goroutine count ("1", "4", "16"): the tail percentiles of
	// per-query latency on the shared 2Tp index, measured through the
	// same histogram type /metrics exports. Latency gates upward (higher
	// is worse) in Compare; absent in older reports, which skips the
	// gate.
	ServeLatency map[string]ServeLatencyResult `json:"serve_latency,omitempty"`
}

// ServeLatencyResult is the latency profile at one concurrency level.
type ServeLatencyResult struct {
	QPS   float64 `json:"qps"`
	P50us float64 `json:"p50_us"`
	P95us float64 `json:"p95_us"`
	P99us float64 `json:"p99_us"`
}

// MeasureJSON builds every layout over the preset's synthetic dataset
// and measures ns/triple for each of the eight selection shapes,
// returning the report.
func MeasureJSON(cfg Config, preset string) (*JSONReport, error) {
	cfg = cfg.normalize()
	d, err := gen.GeneratePreset(preset, cfg.Triples, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sample := gen.SampleTriples(d, cfg.Queries, cfg.Seed+1)
	rep := &JSONReport{
		Preset:        preset,
		Triples:       d.Len(),
		Queries:       cfg.Queries,
		Runs:          cfg.Runs,
		Seed:          cfg.Seed,
		BitsPerTriple: map[string]float64{},
	}
	for _, layout := range []core.Layout{core.Layout3T, core.LayoutCC, core.Layout2Tp, core.Layout2To} {
		x, err := core.Build(d, layout)
		if err != nil {
			return nil, fmt.Errorf("bench: build %s: %w", layout, err)
		}
		rep.BitsPerTriple[layout.String()] = BitsPerTriple(x)
		for _, shape := range core.AllShapes() {
			var pats []core.Pattern
			if shape == core.Shapexxx {
				pats = []core.Pattern{{S: core.Wildcard, P: core.Wildcard, O: core.Wildcard}}
			} else {
				pats = gen.PatternWorkload(sample, shape)
			}
			ns, matches := TimePatterns(x, pats, cfg.Runs)
			rep.Patterns = append(rep.Patterns, ShapeResult{
				Layout:      layout.String(),
				Shape:       shape.String(),
				NsPerTriple: ns,
				Matches:     matches,
			})
		}
	}
	rowsPerSec, rows, err := MaterializeRowsPerSec(d, cfg.Runs)
	if err != nil {
		return nil, fmt.Errorf("bench: materialization: %w", err)
	}
	rep.MaterializedRowsPerSec = rowsPerSec
	rep.MaterializedRows = rows
	formats, frows, err := MaterializeFormatRowsPerSec(d, cfg.Runs)
	if err != nil {
		return nil, fmt.Errorf("bench: format materialization: %w", err)
	}
	if frows != rows {
		return nil, fmt.Errorf("bench: format materialization rows %d != %d", frows, rows)
	}
	rep.MaterializedFormatRowsPerSec = formats
	rep.ServeLatency = map[string]ServeLatencyResult{}
	x2tp, err := core.Build2Tp(d)
	if err != nil {
		return nil, fmt.Errorf("bench: build 2tp: %w", err)
	}
	serve := ParallelWorkload(d, cfg.Queries, cfg.Seed+6)
	for _, g := range parallelGoroutineCounts {
		h := new(obs.Histogram)
		best := 0.0
		for r := 0; r < cfg.Runs; r++ {
			if qps := ThroughputLatencyAt(x2tp, serve, g, 2, h); qps > best {
				best = qps
			}
		}
		snap := h.Snapshot()
		rep.ServeLatency[fmt.Sprintf("%d", g)] = ServeLatencyResult{
			QPS:   best,
			P50us: float64(snap.Quantile(0.50)) / 1e3,
			P95us: float64(snap.Quantile(0.95)) / 1e3,
			P99us: float64(snap.Quantile(0.99)) / 1e3,
		}
	}
	return rep, nil
}

// WriteJSON renders the report with stable indentation.
func (r *JSONReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON parses a report written by WriteJSON.
func ReadJSON(rd io.Reader) (*JSONReport, error) {
	var rep JSONReport
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Regression is one baseline comparison failure.
type Regression struct {
	Layout, Shape string
	Metric        string  // "ns/triple", "bits/triple" or "matches"
	Base, Current float64 // baseline and current values
}

func (r Regression) String() string {
	if r.Base == 0 {
		return fmt.Sprintf("%s %s: %s %.2f -> %.2f",
			r.Layout, r.Shape, r.Metric, r.Base, r.Current)
	}
	return fmt.Sprintf("%s %s: %s %.2f -> %.2f (%+.0f%%)",
		r.Layout, r.Shape, r.Metric, r.Base, r.Current, 100*(r.Current/r.Base-1))
}

// regressionNsFloor is the absolute ns/triple slack below which relative
// changes are treated as timer noise: sub-nanosecond measurements
// flicker by large ratios without meaning anything.
const regressionNsFloor = 2.0

// latencyUsFloor is the absolute serving-latency slack (µs) a
// percentile must exceed the baseline by before the relative gate
// applies: scheduler jitter moves fast percentiles by tens of
// microseconds run to run.
const latencyUsFloor = 100.0

// Compare checks cur against a committed baseline and returns the
// regressions: ns/triple worse than tolerance (a ratio, e.g. 0.25 fails
// at >25% slower, subject to an absolute noise floor), bits/triple worse
// than 2% (space is deterministic, so the tolerance is tight), and any
// change in match counts (the workload is seeded, so counts must be
// identical — a mismatch means the measurement is not comparable).
// Pairs present in only one report are ignored, so adding layouts or
// shapes does not break older baselines.
func Compare(base, cur *JSONReport, tolerance float64) []Regression {
	var regs []Regression
	type key struct{ layout, shape string }
	baseline := map[key]ShapeResult{}
	for _, p := range base.Patterns {
		baseline[key{p.Layout, p.Shape}] = p
	}
	for _, p := range cur.Patterns {
		b, ok := baseline[key{p.Layout, p.Shape}]
		if !ok {
			continue
		}
		if b.Matches != p.Matches {
			regs = append(regs, Regression{
				Layout: p.Layout, Shape: p.Shape, Metric: "matches",
				Base: float64(b.Matches), Current: float64(p.Matches),
			})
			continue
		}
		if p.NsPerTriple > b.NsPerTriple*(1+tolerance) && p.NsPerTriple-b.NsPerTriple > regressionNsFloor {
			regs = append(regs, Regression{
				Layout: p.Layout, Shape: p.Shape, Metric: "ns/triple",
				Base: b.NsPerTriple, Current: p.NsPerTriple,
			})
		}
	}
	for layout, b := range base.BitsPerTriple {
		c, ok := cur.BitsPerTriple[layout]
		if !ok {
			continue
		}
		if c > b*1.02 {
			regs = append(regs, Regression{
				Layout: layout, Shape: "-", Metric: "bits/triple", Base: b, Current: c,
			})
		}
	}
	// Materialized-row throughput gates downward: higher is better, so a
	// regression is falling below (1 - tolerance) of the baseline. A
	// zero baseline (report predating the metric) skips the gate, like
	// layout/shape pairs present in only one report.
	if base.MaterializedRowsPerSec > 0 && cur.MaterializedRowsPerSec > 0 {
		if base.MaterializedRows != cur.MaterializedRows {
			regs = append(regs, Regression{
				Layout: "materialize", Shape: "-", Metric: "matches",
				Base: float64(base.MaterializedRows), Current: float64(cur.MaterializedRows),
			})
		} else if cur.MaterializedRowsPerSec < base.MaterializedRowsPerSec*(1-tolerance) {
			regs = append(regs, Regression{
				Layout: "materialize", Shape: "-", Metric: "rows/sec",
				Base: base.MaterializedRowsPerSec, Current: cur.MaterializedRowsPerSec,
			})
		}
	}
	// Per-format protocol serializer throughput gates the same way, one
	// entry per format present in both reports. Row-count comparability
	// is already covered by the MaterializedRows check above (the formats
	// measure the identical seeded scan).
	for format, b := range base.MaterializedFormatRowsPerSec {
		c, ok := cur.MaterializedFormatRowsPerSec[format]
		if !ok || b <= 0 || c <= 0 {
			continue
		}
		if c < b*(1-tolerance) {
			regs = append(regs, Regression{
				Layout: "materialize/" + format, Shape: "-", Metric: "rows/sec",
				Base: b, Current: c,
			})
		}
	}
	// Serving-path latency percentiles gate upward: a regression is
	// exceeding the baseline by more than the doubled tolerance (tails
	// are noisier than medians on shared CI machines) AND by more than
	// an absolute floor — sub-100µs percentiles flicker across runs
	// without meaning anything. Goroutine counts present in only one
	// report are skipped.
	for g, b := range base.ServeLatency {
		c, ok := cur.ServeLatency[g]
		if !ok {
			continue
		}
		for _, q := range []struct {
			name      string
			base, cur float64
		}{
			{"p50 us", b.P50us, c.P50us},
			{"p99 us", b.P99us, c.P99us},
		} {
			if q.base <= 0 || q.cur <= 0 {
				continue
			}
			if q.cur > q.base*(1+2*tolerance) && q.cur-q.base > latencyUsFloor {
				regs = append(regs, Regression{
					Layout: "serve/g=" + g, Shape: "-", Metric: q.name,
					Base: q.base, Current: q.cur,
				})
			}
		}
	}
	return regs
}
