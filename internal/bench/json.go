package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"rdfindexes/internal/core"
	"rdfindexes/internal/gen"
)

// ShapeResult is one (layout, pattern shape) measurement.
type ShapeResult struct {
	Layout      string  `json:"layout"`
	Shape       string  `json:"shape"`
	NsPerTriple float64 `json:"ns_per_triple"`
	Matches     int     `json:"matches"`
}

// JSONReport is the machine-readable result of one preset run: space and
// per-pattern speed for every layout, in a stable schema so the perf
// trajectory can be tracked across commits (cmd/rdfbench writes it as
// BENCH_<preset>.json).
type JSONReport struct {
	Preset        string             `json:"preset"`
	Triples       int                `json:"triples"`
	Queries       int                `json:"queries"`
	Runs          int                `json:"runs"`
	Seed          int64              `json:"seed"`
	BitsPerTriple map[string]float64 `json:"bits_per_triple"`
	Patterns      []ShapeResult      `json:"patterns"`
}

// MeasureJSON builds every layout over the preset's synthetic dataset
// and measures ns/triple for each of the eight selection shapes,
// returning the report.
func MeasureJSON(cfg Config, preset string) (*JSONReport, error) {
	cfg = cfg.normalize()
	d, err := gen.GeneratePreset(preset, cfg.Triples, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sample := gen.SampleTriples(d, cfg.Queries, cfg.Seed+1)
	rep := &JSONReport{
		Preset:        preset,
		Triples:       d.Len(),
		Queries:       cfg.Queries,
		Runs:          cfg.Runs,
		Seed:          cfg.Seed,
		BitsPerTriple: map[string]float64{},
	}
	for _, layout := range []core.Layout{core.Layout3T, core.LayoutCC, core.Layout2Tp, core.Layout2To} {
		x, err := core.Build(d, layout)
		if err != nil {
			return nil, fmt.Errorf("bench: build %s: %w", layout, err)
		}
		rep.BitsPerTriple[layout.String()] = BitsPerTriple(x)
		for _, shape := range core.AllShapes() {
			var pats []core.Pattern
			if shape == core.Shapexxx {
				pats = []core.Pattern{{S: core.Wildcard, P: core.Wildcard, O: core.Wildcard}}
			} else {
				pats = gen.PatternWorkload(sample, shape)
			}
			ns, matches := TimePatterns(x, pats, cfg.Runs)
			rep.Patterns = append(rep.Patterns, ShapeResult{
				Layout:      layout.String(),
				Shape:       shape.String(),
				NsPerTriple: ns,
				Matches:     matches,
			})
		}
	}
	return rep, nil
}

// WriteJSON renders the report with stable indentation.
func (r *JSONReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
