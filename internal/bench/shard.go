package bench

import (
	"fmt"
	"runtime"
	"time"

	"rdfindexes/internal/core"
	"rdfindexes/internal/gen"
	"rdfindexes/internal/shard"
)

// shardCounts are the partition widths of the scaling experiment.
var shardCounts = []int{1, 2, 4, 8}

// shardGoroutineCounts are the client fleet sizes driving each store;
// the 16-client column is the heavy-traffic serving scenario.
var shardGoroutineCounts = []int{1, 4, 16}

// RoutedWorkload samples subject-bound patterns (SPO, SP?, S?O, S??):
// the shapes the sharded store answers on exactly one shard.
func RoutedWorkload(d *core.Dataset, queries int, seed int64) []core.Pattern {
	sample := gen.SampleTriples(d, queries, seed)
	shapes := []core.Shape{core.ShapeSPO, core.ShapeSPx, core.ShapeSxO, core.ShapeSxx}
	pats := make([]core.Pattern, 0, len(sample))
	for i, tr := range sample {
		pats = append(pats, core.WithWildcards(tr, shapes[i%len(shapes)]))
	}
	return pats
}

// FanOutWorkload samples subject-unbound patterns (?PO, ??O): the
// shapes the sharded store scatters to every shard and gathers back
// through the loser-tree merge. The heavyweight ?P? shape is left out
// to keep the experiment's runtime bounded; its merge path is identical.
func FanOutWorkload(d *core.Dataset, queries int, seed int64) []core.Pattern {
	sample := gen.SampleTriples(d, queries, seed)
	shapes := []core.Shape{core.ShapexPO, core.ShapexxO}
	pats := make([]core.Pattern, 0, len(sample))
	for i, tr := range sample {
		pats = append(pats, core.WithWildcards(tr, shapes[i%len(shapes)]))
	}
	return pats
}

// ShardScaling measures the sharded subsystem end to end on a 2Tp
// index: parallel build time by shard count, then serving throughput of
// routed and fan-out pattern mixes at 1-16 client goroutines per shard
// count. Builds should speed up toward the core count; routed queries
// should hold single-index throughput (they execute on one shard,
// untouched); fan-outs pay the scatter-gather merge, bounding the
// acceptable regression.
func ShardScaling(cfg Config) ([]*Table, error) {
	cfg = cfg.normalize()
	d, err := gen.GeneratePreset("dbpedia", cfg.Triples, cfg.Seed)
	if err != nil {
		return nil, err
	}
	routed := RoutedWorkload(d, cfg.Queries, cfg.Seed+9)
	fanout := FanOutWorkload(d, cfg.Queries/4+1, cfg.Seed+10)

	build := &Table{
		Title: "Sharded build: subject-hash partition, one goroutine per shard (2Tp)",
		Note: fmt.Sprintf("%s triples, best of %d runs, GOMAXPROCS=%d",
			N(d.Len()), cfg.Runs, runtime.GOMAXPROCS(0)),
		Header: []string{"shards", "build ms", "speedup", "bits/triple"},
	}
	serve := &Table{
		Title: "Sharded serving: queries/sec on one shared store",
		Note: fmt.Sprintf("routed = subject-bound shapes (one shard), fan-out = ?PO/??O scatter-gather; %d/%d-query workloads",
			len(routed), len(fanout)),
		Header: []string{"shards", "goroutines", "routed q/s", "fan-out q/s"},
	}

	var baseBuild time.Duration
	for _, n := range shardCounts {
		var best time.Duration
		var st *shard.Store
		for r := 0; r < cfg.Runs; r++ {
			start := time.Now()
			s, err := shard.BuildSharded(d, core.Layout2Tp, n)
			if err != nil {
				return nil, err
			}
			if el := time.Since(start); r == 0 || el < best {
				best = el
			}
			st = s
		}
		if baseBuild == 0 {
			baseBuild = best
		}
		build.Add(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", float64(best.Microseconds())/1000),
			F(float64(baseBuild)/float64(best)),
			F(BitsPerTriple(st)))

		for _, g := range shardGoroutineCounts {
			bestRouted, bestFan := 0.0, 0.0
			for r := 0; r < cfg.Runs; r++ {
				if qps := ThroughputAt(st, routed, g, 2); qps > bestRouted {
					bestRouted = qps
				}
				if qps := ThroughputAt(st, fanout, g, 1); qps > bestFan {
					bestFan = qps
				}
			}
			serve.Add(fmt.Sprintf("%d", n), fmt.Sprintf("%d", g), F(bestRouted), F(bestFan))
		}
	}
	return []*Table{build, serve}, nil
}
