package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rdfindexes/internal/core"
	"rdfindexes/internal/gen"
	"rdfindexes/internal/obs"
)

// parallelGoroutineCounts are the concurrency levels of the scaling
// experiment; the paper's serving scenario ("heavy traffic") is the
// 16-client column.
var parallelGoroutineCounts = []int{1, 4, 16}

// ParallelWorkload builds the mixed pattern mix the throughput
// experiment fires at a shared index: the five selective shapes sampled
// from indexed triples, interleaved so consecutive queries hit different
// algorithms.
func ParallelWorkload(d *core.Dataset, queries int, seed int64) []core.Pattern {
	sample := gen.SampleTriples(d, queries, seed)
	shapes := []core.Shape{core.ShapeSPO, core.ShapeSPx, core.ShapexPO, core.ShapeSxO, core.ShapeSxx}
	pats := make([]core.Pattern, 0, len(sample))
	for i, tr := range sample {
		pats = append(pats, core.WithWildcards(tr, shapes[i%len(shapes)]))
	}
	return pats
}

// throughputChunk is the number of queries a worker claims per counter
// bump, keeping the dispatch counter off the hot path (a query can be
// well under a microsecond).
const throughputChunk = 64

// Drive answers total queries from the workload with g goroutines, each
// owning a pooled QueryCtx and claiming work in chunks. It is the shared
// worker loop of ThroughputAt and BenchmarkServeParallel, so the
// benchmark measures exactly the code the experiment runs.
func Drive(x core.Index, pats []core.Pattern, g int, total int64) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			qc := core.AcquireQueryCtx()
			defer qc.Release()
			buf := qc.Batch()
			for {
				lo := next.Add(throughputChunk) - throughputChunk
				if lo >= total {
					return
				}
				hi := lo + throughputChunk
				if hi > total {
					hi = total
				}
				for i := lo; i < hi; i++ {
					it := core.SelectWithCtx(x, pats[int(i)%len(pats)], qc)
					for it.NextBatch(buf) > 0 {
					}
				}
			}
		}()
	}
	wg.Wait()
}

// DriveTimed is Drive with per-query latency recording into h: each
// query is bracketed by two clock reads and observed individually, so
// the histogram holds the full latency distribution, not an average.
// The overhead (~2×30ns per query) is paid only on this measurement
// path; Drive stays clock-free for pure throughput runs.
func DriveTimed(x core.Index, pats []core.Pattern, g int, total int64, h *obs.Histogram) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			qc := core.AcquireQueryCtx()
			defer qc.Release()
			buf := qc.Batch()
			for {
				lo := next.Add(throughputChunk) - throughputChunk
				if lo >= total {
					return
				}
				hi := lo + throughputChunk
				if hi > total {
					hi = total
				}
				for i := lo; i < hi; i++ {
					q0 := time.Now()
					it := core.SelectWithCtx(x, pats[int(i)%len(pats)], qc)
					for it.NextBatch(buf) > 0 {
					}
					h.Observe(time.Since(q0))
				}
			}
		}()
	}
	wg.Wait()
}

// ThroughputAt drives the shared index with the workload from g
// goroutines, each owning a pooled QueryCtx, until every query of rounds
// passes over the workload completes. It returns queries/second.
func ThroughputAt(x core.Index, pats []core.Pattern, g, rounds int) float64 {
	total := int64(len(pats) * rounds)
	start := time.Now()
	Drive(x, pats, g, total)
	return float64(total) / time.Since(start).Seconds()
}

// ThroughputLatencyAt is ThroughputAt recording every query's latency
// into h alongside the aggregate queries/second.
func ThroughputLatencyAt(x core.Index, pats []core.Pattern, g, rounds int, h *obs.Histogram) float64 {
	total := int64(len(pats) * rounds)
	start := time.Now()
	DriveTimed(x, pats, g, total, h)
	return float64(total) / time.Since(start).Seconds()
}

// ServeParallel measures concurrent query throughput over one shared 2Tp
// index (the paper's preferred layout) at 1, 4 and 16 goroutines: the
// serving-path scaling that motivates the immutable shared-store
// design. Queries/sec should grow with goroutines until the core count
// saturates.
func ServeParallel(cfg Config) ([]*Table, error) {
	cfg = cfg.normalize()
	d, err := gen.GeneratePreset("dbpedia", cfg.Triples, cfg.Seed)
	if err != nil {
		return nil, err
	}
	x, err := core.Build2Tp(d)
	if err != nil {
		return nil, err
	}
	pats := ParallelWorkload(d, cfg.Queries, cfg.Seed+6)

	t := &Table{
		Title: "Concurrent throughput: mixed selection patterns on one shared 2Tp index",
		Note: fmt.Sprintf("%s triples, %d-query workload, best of %d runs, GOMAXPROCS=%d",
			N(d.Len()), len(pats), cfg.Runs, runtime.GOMAXPROCS(0)),
		Header: []string{"goroutines", "queries/sec", "speedup", "p50 us", "p95 us", "p99 us"},
	}
	var base float64
	for _, g := range parallelGoroutineCounts {
		// One histogram per concurrency level accumulates every run's
		// per-query latencies — the same obs.Histogram the server's
		// /metrics endpoint uses, so the offline percentiles and the
		// production ones share bucketing and quantile math.
		h := new(obs.Histogram)
		best := 0.0
		for r := 0; r < cfg.Runs; r++ {
			if qps := ThroughputLatencyAt(x, pats, g, 2, h); qps > best {
				best = qps
			}
		}
		if base == 0 {
			base = best
		}
		snap := h.Snapshot()
		t.Add(fmt.Sprintf("%d", g), F(best), F(best/base),
			F(float64(snap.Quantile(0.50))/1e3),
			F(float64(snap.Quantile(0.95))/1e3),
			F(float64(snap.Quantile(0.99))/1e3))
	}
	return []*Table{t}, nil
}
