package bench

import (
	"fmt"

	"rdfindexes/internal/core"
	"rdfindexes/internal/gen"
)

// Breakdown reproduces the space-breakdown discussion of Section 3.1
// (the percentages in parentheses in Table 1): the share of the whole 3T
// index taken by each level of each trie, identifying the three levels
// that dominate — the third levels of SPO and POS and the second level
// of OSP — which are precisely the targets of Sections 3.2 and 3.3.
func Breakdown(cfg Config) ([]*Table, error) {
	cfg = cfg.normalize()
	d, err := gen.GeneratePreset("dbpedia", cfg.Triples, cfg.Seed)
	if err != nil {
		return nil, err
	}
	x, err := core.Build3T(d)
	if err != nil {
		return nil, err
	}
	total := float64(x.SizeBits())
	n := float64(d.Len())

	t := &Table{
		Title:  "Space breakdown (Section 3.1): share of the whole 3T index per trie level",
		Note:   "nodes vs pointers per level; the paper reports pointers under 9% in total",
		Header: []string{"trie", "sequence", "bits/triple", "% of index"},
	}
	var pointerShare float64
	for _, perm := range []core.Perm{core.PermSPO, core.PermPOS, core.PermOSP} {
		tr := x.Trie(perm)
		rows := []struct {
			name string
			bits uint64
		}{
			{"pointers L0", tr.Pointers(0).SizeBits()},
			{"nodes L1", tr.Nodes(1).SizeBits()},
			{"pointers L1", tr.Pointers(1).SizeBits()},
			{"nodes L2", tr.Nodes(2).SizeBits()},
		}
		for _, r := range rows {
			share := float64(r.bits) / total * 100
			if r.name == "pointers L0" || r.name == "pointers L1" {
				pointerShare += share
			}
			t.Add(perm.String(), r.name, F(float64(r.bits)/n), fmt.Sprintf("%.2f%%", share))
		}
	}
	t.Add("all", "pointer total", "", fmt.Sprintf("%.2f%%", pointerShare))
	return []*Table{t}, nil
}
