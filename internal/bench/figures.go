package bench

import (
	"fmt"
	"sort"
	"time"

	"rdfindexes/internal/core"
	"rdfindexes/internal/gen"
	"rdfindexes/internal/seq"
	"rdfindexes/internal/trie"
)

// coverageSeries measures the per-triple time of several stores on the
// same query set, sorted by decreasing matches, reporting the running
// average at fixed coverage checkpoints (the x axis of Fig. 6).
func coverageSeries(stores map[string]Store, pats []core.Pattern, runs int) *Table {
	// Order patterns by decreasing matches, as the paper does.
	type withCount struct {
		p core.Pattern
		n int
	}
	counts := make([]withCount, len(pats))
	var any Store
	for _, s := range stores {
		any = s
		break
	}
	total := 0
	for i, p := range pats {
		n := 0
		it := any.Select(p)
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			n++
		}
		counts[i] = withCount{p, n}
		total += n
	}
	sort.SliceStable(counts, func(i, j int) bool { return counts[i].n > counts[j].n })

	checkpoints := []int{14, 28, 42, 57, 71, 85, 100}
	names := make([]string, 0, len(stores))
	for n := range stores {
		names = append(names, n)
	}
	sort.Strings(names)

	t := &Table{Header: append([]string{"coverage %"}, names...)}
	type cell struct{ ns float64 }
	results := make(map[string][]cell)
	for _, name := range names {
		st := stores[name]
		var series []cell
		var best []time.Duration
		for r := 0; r < runs; r++ {
			cum := time.Duration(0)
			matched := 0
			ci := 0
			var run []time.Duration
			for _, wc := range counts {
				start := time.Now()
				it := st.Select(wc.p)
				for {
					if _, ok := it.Next(); !ok {
						break
					}
					matched++
				}
				cum += time.Since(start)
				for ci < len(checkpoints) && matched*100 >= checkpoints[ci]*total && total > 0 {
					run = append(run, cum)
					ci++
				}
			}
			for ci < len(checkpoints) {
				run = append(run, cum)
				ci++
			}
			if r == 0 {
				best = run
			} else {
				for i := range run {
					if run[i] < best[i] {
						best[i] = run[i]
					}
				}
			}
		}
		for i := range checkpoints {
			m := total * checkpoints[i] / 100
			ns := 0.0
			if m > 0 {
				ns = float64(best[i].Nanoseconds()) / float64(m)
			}
			series = append(series, cell{ns})
		}
		results[name] = series
	}
	for i, cp := range checkpoints {
		row := []string{fmt.Sprintf("%d", cp)}
		for _, name := range names {
			row = append(row, F(results[name][i].ns))
		}
		t.Add(row...)
	}
	return t
}

// Fig6a reproduces Fig. 6a: average ns/triple for ??O by decreasing
// number of matches — select (on the OSP trie of 3T) versus inverted (the
// 2Tp algorithm issuing |P| finds on POS).
func Fig6a(cfg Config) ([]*Table, error) {
	cfg = cfg.normalize()
	d, err := gen.GeneratePreset("dbpedia", cfg.Triples, cfg.Seed)
	if err != nil {
		return nil, err
	}
	x3, err := core.Build3T(d)
	if err != nil {
		return nil, err
	}
	p2, err := core.Build2Tp(d)
	if err != nil {
		return nil, err
	}
	sample := gen.SampleTriples(d, cfg.Queries, cfg.Seed+6)
	pats := gen.PatternWorkload(sample, core.ShapexxO)
	t := coverageSeries(map[string]Store{"select (3T)": x3, "inverted (2Tp)": p2}, pats, cfg.Runs)
	t.Title = "Fig. 6a: ??O ns/triple by decreasing matches (triples coverage %)"
	return []*Table{t}, nil
}

// Fig6b reproduces Fig. 6b: the same stress for ?P? — select (3T),
// select+CC (cross-compressed POS, paying one unmap per match) and
// inverted (2To walking the PS structure).
func Fig6b(cfg Config) ([]*Table, error) {
	cfg = cfg.normalize()
	d, err := gen.GeneratePreset("dbpedia", cfg.Triples, cfg.Seed)
	if err != nil {
		return nil, err
	}
	x3, err := core.Build3T(d)
	if err != nil {
		return nil, err
	}
	cc, err := core.BuildCC(d)
	if err != nil {
		return nil, err
	}
	o2, err := core.Build2To(d)
	if err != nil {
		return nil, err
	}
	sample := gen.SampleTriples(d, cfg.Queries, cfg.Seed+7)
	pats := gen.PatternWorkload(sample, core.ShapexPx)
	t := coverageSeries(map[string]Store{
		"select (3T)": x3, "select+CC": cc, "inverted (2To)": o2,
	}, pats, cfg.Runs)
	t.Title = "Fig. 6b: ?P? ns/triple by decreasing matches (triples coverage %)"
	return []*Table{t}, nil
}

// Fig7 reproduces Fig. 7: select (3T, on OSP) versus enumerate (2Tp, on
// SPO) for S?O, for queries whose subjects have a given number of
// children C, together with the distribution of C.
func Fig7(cfg Config) ([]*Table, error) {
	cfg = cfg.normalize()
	d, err := gen.GeneratePreset("dbpedia", cfg.Triples, cfg.Seed)
	if err != nil {
		return nil, err
	}
	x3, err := core.Build3T(d)
	if err != nil {
		return nil, err
	}
	p2, err := core.Build2Tp(d)
	if err != nil {
		return nil, err
	}
	buckets := gen.SubjectsByOutDegree(d)
	degrees := make([]int, 0, len(buckets))
	for c := range buckets {
		degrees = append(degrees, c)
	}
	sort.Ints(degrees)

	// For each out-degree, build S?O queries from triples of bucket
	// subjects.
	bySubject := map[core.ID][]core.Triple{}
	for _, tr := range d.Triples {
		bySubject[tr.S] = append(bySubject[tr.S], tr)
	}
	t := &Table{
		Title:  "Fig. 7: S?O ns/triple by subject out-degree C, with the C distribution",
		Header: []string{"C", "subjects", "select (3T)", "enumerate (2Tp)"},
	}
	perBucket := cfg.Queries / len(degrees)
	if perBucket < 20 {
		perBucket = 20
	}
	for _, c := range degrees {
		subjects := buckets[c]
		var pats []core.Pattern
		for i := 0; len(pats) < perBucket; i++ {
			s := subjects[i%len(subjects)]
			tris := bySubject[s]
			tr := tris[i%len(tris)]
			pats = append(pats, core.Pattern{S: tr.S, P: core.Wildcard, O: tr.O})
			if i > perBucket*4 {
				break
			}
		}
		nsSel, _ := TimePatterns(x3, pats, cfg.Runs)
		nsEnum, _ := TimePatterns(p2, pats, cfg.Runs)
		t.Add(fmt.Sprintf("%d", c), N(len(subjects)), F(nsSel), F(nsEnum))
	}
	return []*Table{t}, nil
}

// RangeQueries reproduces the range-query experiment of Section 4.1:
// ?P? patterns with range constraints on numeric objects of the
// WatDiv-shaped dataset, resolved on the POS trie of 2Tp through the R
// structure.
func RangeQueries(cfg Config) ([]*Table, error) {
	cfg = cfg.normalize()
	wd := gen.WatDiv(cfg.Triples/17+10, cfg.Seed)
	d := wd.Dataset
	p2, err := core.Build2Tp(d)
	if err != nil {
		return nil, err
	}
	r := wd.R()

	type rangeQuery struct {
		p      core.ID
		lo, hi uint64
	}
	maxPrice := uint64(100000)
	var queries []rangeQuery
	rngWidths := []uint64{500, 5000, 50000}
	for i := 0; i < cfg.Queries; i++ {
		w := rngWidths[i%len(rngWidths)]
		lo := uint64(i*37) % maxPrice
		queries = append(queries, rangeQuery{core.ID(gen.WdPrice), lo, lo + w})
		queries = append(queries, rangeQuery{core.ID(gen.WdRating), uint64(i % 9), uint64(i%9 + 2)})
	}

	var best time.Duration
	matches := 0
	for run := 0; run < cfg.Runs; run++ {
		total := 0
		start := time.Now()
		for _, q := range queries {
			it := core.SelectValueRange(p2, r, q.p, q.lo, q.hi)
			for {
				if _, ok := it.Next(); !ok {
					break
				}
				total++
			}
		}
		el := time.Since(start)
		matches = total
		if run == 0 || el < best {
			best = el
		}
	}
	t := &Table{
		Title:  "Range queries (Section 4.1): ?P? with object value constraints on WatDiv-shaped data",
		Header: []string{"metric", "value"},
	}
	ns := 0.0
	if matches > 0 {
		ns = float64(best.Nanoseconds()) / float64(matches)
	}
	t.Add("queries executed", N(len(queries)))
	t.Add("triples returned", N(matches))
	t.Add("avg ns/triple", F(ns))
	t.Add("extra space of R (bits/triple)", fmt.Sprintf("%.4f", float64(r.SizeBits())/float64(d.Len())))
	return []*Table{t}, nil
}

// Ablation reports the design-choice studies DESIGN.md calls out: the
// per-level encoder choice (whole-index space/speed when deviating from
// the paper's PEF+Compact default) and cross-compressing every
// permutation instead of POS only.
func Ablation(cfg Config) ([]*Table, error) {
	cfg = cfg.normalize()
	d, err := gen.GeneratePreset("dbpedia", cfg.Triples, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sample := gen.SampleTriples(d, cfg.Queries, cfg.Seed+8)

	enc := &Table{
		Title:  "Ablation (encoders): 2Tp with uniform sequence representations",
		Header: []string{"config", "bits/triple", "SPO ns/t", "SP? ns/t", "?PO ns/t", "?P? ns/t"},
	}
	uniform := func(kind seq2Kind) []core.Option {
		cfgT := trie.Config{Nodes1: kind, Nodes2: kind, Ptr0: kind, Ptr1: kind}
		if kind == kindCompactAlias {
			// Compact pointers are legal; keep them EF for monotone data.
			cfgT.Ptr0, cfgT.Ptr1 = kindEFAlias, kindEFAlias
		}
		return []core.Option{
			core.WithTrieConfig(core.PermSPO, cfgT),
			core.WithTrieConfig(core.PermPOS, cfgT),
		}
	}
	configs := []struct {
		name string
		opts []core.Option
	}{
		{"paper default (PEF nodes + Compact SPO L3, EF ptrs)", nil},
		{"all Compact", uniform(kindCompactAlias)},
		{"all EF", uniform(kindEFAlias)},
		{"all PEF", uniform(kindPEFAlias)},
		{"all VByte", uniform(kindVByteAlias)},
		{"all PEF-opt (cost-optimized partitions)", uniform(seq.KindPEFOpt)},
	}
	for _, c := range configs {
		x, err := core.Build2Tp(d, c.opts...)
		if err != nil {
			return nil, err
		}
		row := []string{c.name, F(BitsPerTriple(x))}
		for _, shape := range []core.Shape{core.ShapeSPO, core.ShapeSPx, core.ShapexPO, core.ShapexPx} {
			pats := gen.PatternWorkload(sample, shape)
			ns, _ := TimePatterns(x, pats, cfg.Runs)
			row = append(row, F(ns))
		}
		enc.Add(row...)
	}

	cc := &Table{
		Title:  "Ablation (cross-compression): CC on POS only vs all permutations (Section 3.2 discussion)",
		Header: []string{"config", "bits/triple", "?PO ns/t", "SP? ns/t", "S?O ns/t"},
	}
	ccConfigs := []struct {
		name string
		opts []core.Option
	}{
		{"3T (no cross-compression)", nil},
		{"CC (POS only, paper's choice)", nil},
		{"CC (all permutations)", []core.Option{core.WithCCAllPermutations()}},
	}
	for i, c := range ccConfigs {
		var x core.Index
		var err error
		if i == 0 {
			x, err = core.Build3T(d)
		} else {
			x, err = core.BuildCC(d, c.opts...)
		}
		if err != nil {
			return nil, err
		}
		row := []string{c.name, F(BitsPerTriple(x))}
		for _, shape := range []core.Shape{core.ShapexPO, core.ShapeSPx, core.ShapeSxO} {
			pats := gen.PatternWorkload(sample, shape)
			ns, _ := TimePatterns(x, pats, cfg.Runs)
			row = append(row, F(ns))
		}
		cc.Add(row...)
	}
	return []*Table{enc, cc}, nil
}

// Aliases keeping the ablation configuration table compact.
type seq2Kind = seq.Kind

const (
	kindCompactAlias = seq.KindCompact
	kindEFAlias      = seq.KindEF
	kindPEFAlias     = seq.KindPEF
	kindVByteAlias   = seq.KindVByte
)
