// Package wavelet implements a level-wise (pointerless) wavelet tree over
// an integer sequence with alphabet [0, sigma), supporting access, rank
// and select in O(log sigma) time. It is the substrate HDT-FoQ uses to
// represent the predicate level of its single SPO trie (Section 2 of the
// paper); the per-occurrence select cost is what makes HDT-FoQ's ?P?
// pattern slow in Tables 5 and 6.
package wavelet

import (
	"fmt"
	"math/bits"

	xbits "rdfindexes/internal/bits"
	"rdfindexes/internal/codec"
)

// Tree is an immutable wavelet tree.
type Tree struct {
	n      int
	sigma  uint64
	height uint
	levels []*xbits.RankSelect
}

// New builds a wavelet tree over data with alphabet [0, sigma). Every
// value must be below sigma.
func New(data []uint64, sigma uint64) *Tree {
	if sigma == 0 {
		sigma = 1
	}
	t := &Tree{n: len(data), sigma: sigma, height: uint(bits.Len64(sigma - 1))}
	if t.height == 0 {
		return t // single-symbol alphabet: nothing to store
	}
	t.levels = make([]*xbits.RankSelect, t.height)
	cur := append([]uint64(nil), data...)
	next := make([]uint64, len(data))
	for l := uint(0); l < t.height; l++ {
		shift := t.height - 1 - l
		bv := xbits.NewVector(len(cur))
		for i, v := range cur {
			if v >= sigma {
				panic(fmt.Sprintf("wavelet: value %d outside alphabet [0, %d)", v, sigma))
			}
			if v>>shift&1 == 1 {
				bv.SetBit(i)
			}
		}
		t.levels[l] = xbits.NewRankSelect(bv)
		// Reorder stably by the top l+1 bits (counting sort by prefix):
		// cur is already grouped by the top l bits, so this partitions
		// each node's interval into its two children.
		numPrefixes := int((sigma-1)>>shift) + 1
		offsets := make([]int, numPrefixes+1)
		for _, v := range cur {
			offsets[v>>shift+1]++
		}
		for p := 1; p <= numPrefixes; p++ {
			offsets[p] += offsets[p-1]
		}
		for _, v := range cur {
			next[offsets[v>>shift]] = v
			offsets[v>>shift]++
		}
		cur, next = next, cur
	}
	return t
}

// Len returns the sequence length.
func (t *Tree) Len() int { return t.n }

// Sigma returns the alphabet size.
func (t *Tree) Sigma() uint64 { return t.sigma }

// Access returns the symbol at position i.
func (t *Tree) Access(i int) uint64 {
	var sym uint64
	a, b := 0, t.n
	for l := uint(0); l < t.height; l++ {
		rs := t.levels[l]
		onesA := rs.Rank1(a)
		zeros := (b - a) - (rs.Rank1(b) - onesA)
		sym <<= 1
		if rs.Vector().Bit(i) {
			sym |= 1
			i = a + zeros + (rs.Rank1(i) - onesA)
			a += zeros
		} else {
			i = a + (rs.Rank0(i) - (a - onesA))
			b = a + zeros
		}
	}
	return sym
}

// Rank returns the number of occurrences of sym in positions [0, i).
func (t *Tree) Rank(sym uint64, i int) int {
	if sym >= t.sigma {
		return 0
	}
	if t.height == 0 {
		return i
	}
	a, b := 0, t.n
	for l := uint(0); l < t.height; l++ {
		rs := t.levels[l]
		onesA := rs.Rank1(a)
		zeros := (b - a) - (rs.Rank1(b) - onesA)
		if sym>>(t.height-1-l)&1 == 0 {
			i = a + (rs.Rank0(i) - (a - onesA))
			b = a + zeros
		} else {
			i = a + zeros + (rs.Rank1(i) - onesA)
			a += zeros
		}
	}
	return i - a
}

// Count returns the number of occurrences of sym.
func (t *Tree) Count(sym uint64) int { return t.Rank(sym, t.n) }

// Select returns the position of the k-th (0-based) occurrence of sym, or
// -1 if sym occurs fewer than k+1 times.
func (t *Tree) Select(sym uint64, k int) int {
	if sym >= t.sigma || k < 0 {
		return -1
	}
	if t.height == 0 {
		if k >= t.n {
			return -1
		}
		return k
	}
	// Descend to the leaf interval, recording the node start per level.
	starts := make([]int, t.height)
	a, b := 0, t.n
	for l := uint(0); l < t.height; l++ {
		starts[l] = a
		rs := t.levels[l]
		onesA := rs.Rank1(a)
		zeros := (b - a) - (rs.Rank1(b) - onesA)
		if sym>>(t.height-1-l)&1 == 0 {
			b = a + zeros
		} else {
			a += zeros
		}
	}
	if k >= b-a {
		return -1
	}
	// Ascend, translating the occurrence index into positions.
	p := k
	for l := int(t.height) - 1; l >= 0; l-- {
		rs := t.levels[l]
		na := starts[l]
		if sym>>(t.height-1-uint(l))&1 == 0 {
			p = rs.Select0(rs.Rank0(na)+p) - na
		} else {
			p = rs.Select1(rs.Rank1(na)+p) - na
		}
	}
	return p
}

// SizeBits returns the storage footprint in bits.
func (t *Tree) SizeBits() uint64 {
	var total uint64 = 3 * 64
	for _, rs := range t.levels {
		total += rs.Vector().SizeBits() + rs.SizeBits()
	}
	return total
}

// Encode writes the tree to w; the rank/select directories are rebuilt at
// decode time.
func (t *Tree) Encode(w *codec.Writer) {
	w.Uvarint(uint64(t.n))
	w.Uvarint(t.sigma)
	for _, rs := range t.levels {
		rs.Vector().Encode(w)
	}
}

// Decode reads a tree written by Encode.
func Decode(r *codec.Reader) (*Tree, error) {
	t := &Tree{}
	t.n = int(r.Uvarint())
	t.sigma = r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if t.sigma == 0 {
		return nil, r.Fail(fmt.Errorf("%w: wavelet sigma", codec.ErrCorrupt))
	}
	t.height = uint(bits.Len64(t.sigma - 1))
	t.levels = make([]*xbits.RankSelect, t.height)
	for l := range t.levels {
		bv, err := xbits.DecodeVector(r)
		if err != nil {
			return nil, err
		}
		if bv.Len() != t.n {
			return nil, r.Fail(fmt.Errorf("%w: wavelet level length", codec.ErrCorrupt))
		}
		t.levels[l] = xbits.NewRankSelect(bv)
	}
	return t, nil
}
