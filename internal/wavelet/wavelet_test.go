package wavelet

import (
	"bytes"
	"math/rand"
	"testing"

	"rdfindexes/internal/codec"
)

func checkTree(t *testing.T, data []uint64, sigma uint64) {
	t.Helper()
	tree := New(data, sigma)
	if tree.Len() != len(data) {
		t.Fatalf("Len() = %d, want %d", tree.Len(), len(data))
	}
	// Access oracle.
	for i, v := range data {
		if got := tree.Access(i); got != v {
			t.Fatalf("Access(%d) = %d, want %d (sigma=%d)", i, got, v, sigma)
		}
	}
	// Rank oracle at every position for each symbol (bounded work).
	counts := make([]int, sigma)
	for i, v := range data {
		for sym := uint64(0); sym < sigma; sym++ {
			if got := tree.Rank(sym, i); got != counts[sym] {
				t.Fatalf("Rank(%d, %d) = %d, want %d", sym, i, got, counts[sym])
			}
		}
		counts[v]++
	}
	// Select oracle.
	occ := make(map[uint64][]int)
	for i, v := range data {
		occ[v] = append(occ[v], i)
	}
	for sym := uint64(0); sym < sigma; sym++ {
		positions := occ[sym]
		if got := tree.Count(sym); got != len(positions) {
			t.Fatalf("Count(%d) = %d, want %d", sym, got, len(positions))
		}
		for k, want := range positions {
			if got := tree.Select(sym, k); got != want {
				t.Fatalf("Select(%d, %d) = %d, want %d", sym, k, got, want)
			}
		}
		if got := tree.Select(sym, len(positions)); got != -1 {
			t.Fatalf("Select(%d, %d) = %d, want -1", sym, len(positions), got)
		}
	}
}

func TestTreeOracleSmall(t *testing.T) {
	cases := []struct {
		data  []uint64
		sigma uint64
	}{
		{nil, 4},
		{[]uint64{0}, 1},
		{[]uint64{0, 0, 0}, 1},
		{[]uint64{1, 0, 1, 1, 0}, 2},
		{[]uint64{3, 1, 4, 1, 5, 2, 6, 5, 3, 5}, 7},
		{[]uint64{7, 7, 7, 7}, 8},
		{[]uint64{0, 6}, 7}, // non-power-of-two alphabet
	}
	for _, c := range cases {
		checkTree(t, c.data, c.sigma)
	}
}

func TestTreeOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for _, sigma := range []uint64{2, 3, 5, 16, 27, 100} {
		data := make([]uint64, 600)
		for i := range data {
			data[i] = rng.Uint64() % sigma
		}
		checkTree(t, data, sigma)
	}
}

func TestTreeSkewed(t *testing.T) {
	// Zipf-like skew, the typical shape of RDF predicate sequences.
	rng := rand.New(rand.NewSource(127))
	zipf := rand.NewZipf(rng, 1.2, 2, 63)
	data := make([]uint64, 2000)
	for i := range data {
		data[i] = zipf.Uint64()
	}
	checkTree(t, data, 64)
}

func TestTreeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	data := make([]uint64, 1000)
	for i := range data {
		data[i] = rng.Uint64() % 37
	}
	tree := New(data, 37)
	var buf bytes.Buffer
	w := codec.NewWriter(&buf)
	tree.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(codec.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		if got.Access(i) != v {
			t.Fatalf("decoded Access(%d) = %d, want %d", i, got.Access(i), v)
		}
	}
	for sym := uint64(0); sym < 37; sym++ {
		if got.Count(sym) != tree.Count(sym) {
			t.Fatalf("decoded Count(%d) mismatch", sym)
		}
	}
}

func TestTreeOutOfAlphabetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted out-of-alphabet value")
		}
	}()
	New([]uint64{9}, 4)
}

func BenchmarkWaveletAccess(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := make([]uint64, 1<<18)
	for i := range data {
		data[i] = rng.Uint64() % 1000
	}
	tree := New(data, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Access((i * 2654435761) & (1<<18 - 1))
	}
}

func BenchmarkWaveletSelect(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := make([]uint64, 1<<18)
	for i := range data {
		data[i] = rng.Uint64() % 1000
	}
	tree := New(data, 1000)
	counts := make([]int, 1000)
	for _, v := range data {
		counts[v]++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sym := uint64(i % 1000)
		if counts[sym] > 0 {
			tree.Select(sym, i%counts[sym])
		}
	}
}
