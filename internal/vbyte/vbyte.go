// Package vbyte implements Variable-Byte coding (Thiel and Heaps) and a
// blocked layout for non-decreasing integer sequences: d-gaps are coded in
// blocks of 128 values with a directory of block-leading values and byte
// offsets for skipping. The paper benchmarks this family as VByte+SIMD;
// this implementation is scalar (Go has no stdlib SIMD), which preserves
// the family's qualitative trade-off: fastest sequential decoding, poor
// random access.
package vbyte

import (
	"fmt"

	"rdfindexes/internal/bits"
	"rdfindexes/internal/codec"
)

// BlockLen is the number of integers per block.
const BlockLen = 128

// Put appends the VByte encoding of v to buf and returns the extended
// slice. Each byte carries 7 data bits; the high bit marks continuation.
func Put(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

// Get decodes a VByte value starting at data[pos] and returns it together
// with the position of the next value.
func Get(data []byte, pos int) (uint64, int) {
	var v uint64
	var shift uint
	for {
		b := data[pos]
		pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, pos
		}
		shift += 7
	}
}

// Blocked is a blocked VByte encoded non-decreasing sequence.
type Blocked struct {
	n        int
	universe uint64
	data     []byte
	firsts   *bits.CompactVector // leading value of each block
	offsets  *bits.CompactVector // byte offset of each block's gap data
}

// NewBlocked encodes values, which must be non-decreasing.
func NewBlocked(values []uint64) *Blocked {
	b := &Blocked{n: len(values)}
	if len(values) == 0 {
		b.firsts = bits.NewCompact(nil)
		b.offsets = bits.NewCompact(nil)
		return b
	}
	b.universe = values[len(values)-1]
	numBlocks := (len(values) + BlockLen - 1) / BlockLen
	firsts := make([]uint64, 0, numBlocks)
	offsets := make([]uint64, 0, numBlocks)
	var prev uint64
	for i, v := range values {
		if v < prev {
			panic(fmt.Sprintf("vbyte: sequence not monotone at %d: %d < %d", i, v, prev))
		}
		if i%BlockLen == 0 {
			firsts = append(firsts, v)
			offsets = append(offsets, uint64(len(b.data)))
		} else {
			b.data = Put(b.data, v-prev)
		}
		prev = v
	}
	b.firsts = bits.NewCompact(firsts)
	b.offsets = bits.NewCompact(offsets)
	return b
}

// Len returns the number of elements.
func (b *Blocked) Len() int { return b.n }

// Universe returns the largest value.
func (b *Blocked) Universe() uint64 { return b.universe }

// blockLen returns the number of values in block k.
func (b *Blocked) blockLen(k int) int {
	if (k+1)*BlockLen <= b.n {
		return BlockLen
	}
	return b.n - k*BlockLen
}

// Access returns the i-th value by decoding its block prefix.
func (b *Blocked) Access(i int) uint64 {
	k := i / BlockLen
	v := b.firsts.At(k)
	pos := int(b.offsets.At(k))
	for j := k * BlockLen; j < i; j++ {
		var gap uint64
		gap, pos = Get(b.data, pos)
		v += gap
	}
	return v
}

// NextGEQ returns the position and value of the first element >= x. ok is
// false when every element is smaller than x.
func (b *Blocked) NextGEQ(x uint64) (int, uint64, bool) {
	if b.n == 0 || x > b.universe {
		return b.n, 0, false
	}
	// Binary search the last block whose leading value is strictly below
	// x (duplicates of x may span a block boundary); the answer is in that
	// block or is the next block's leading value.
	if b.firsts.At(0) >= x {
		return 0, b.firsts.At(0), true
	}
	lo, hi := 0, b.firsts.Len()-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if b.firsts.At(mid) < x {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	k := lo
	v := b.firsts.At(k)
	pos := int(b.offsets.At(k))
	blockEnd := k*BlockLen + b.blockLen(k)
	for i := k * BlockLen; i < blockEnd; i++ {
		if i > k*BlockLen {
			var gap uint64
			gap, pos = Get(b.data, pos)
			v += gap
		}
		if v >= x {
			return i, v, true
		}
	}
	if blockEnd < b.n {
		return blockEnd, b.firsts.At(k + 1), true
	}
	return b.n, 0, false
}

// Iterator iterates the sequence sequentially.
type Iterator struct {
	b   *Blocked
	i   int
	pos int
	v   uint64
}

// Iterator returns an iterator positioned at index from.
func (b *Blocked) Iterator(from int) *Iterator {
	it := b.MakeIterator(from)
	return &it
}

// MakeIterator returns an iterator value positioned at index from, for
// callers that embed it without a separate allocation.
func (b *Blocked) MakeIterator(from int) Iterator {
	it := Iterator{b: b}
	it.Reset(from)
	return it
}

// MakeIteratorBase returns an iterator positioned at index from together
// with the value at from-1, decoding the predecessor on the way instead
// of paying a separate random access. from must be in [1, Len()].
func (b *Blocked) MakeIteratorBase(from int) (Iterator, uint64) {
	it := Iterator{b: b}
	it.Reset(from - 1)
	base, _ := it.Next()
	return it, base
}

// Reset repositions the iterator at index from, decoding the block prefix
// in front of from.
func (it *Iterator) Reset(from int) {
	b := it.b
	if from >= b.n {
		it.i = b.n
		return
	}
	it.i = from
	// Position the cursor so that v holds the value at from-1 and pos
	// points at the gap for from; Next advances into position from.
	k := from / BlockLen
	it.v = b.firsts.At(k)
	it.pos = int(b.offsets.At(k))
	for j := k*BlockLen + 1; j < from; j++ {
		var gap uint64
		gap, it.pos = Get(b.data, it.pos)
		it.v += gap
	}
}

// Next returns the next value, or ok=false at the end.
func (it *Iterator) Next() (uint64, bool) {
	if it.i >= it.b.n {
		return 0, false
	}
	if it.i%BlockLen == 0 {
		k := it.i / BlockLen
		it.v = it.b.firsts.At(k)
		it.pos = int(it.b.offsets.At(k))
	} else {
		var gap uint64
		gap, it.pos = Get(it.b.data, it.pos)
		it.v += gap
	}
	it.i++
	return it.v, true
}

// NextBatch decodes up to len(buf) consecutive values into buf and
// returns how many were written (0 iff the sequence is exhausted). Gap
// decoding runs in a tight loop over the byte stream with the prefix-sum
// accumulator kept in a register.
func (it *Iterator) NextBatch(buf []uint64) int {
	b := it.b
	n := 0
	data := b.data
	for n < len(buf) && it.i < b.n {
		if it.i%BlockLen == 0 {
			k := it.i / BlockLen
			it.v = b.firsts.At(k)
			it.pos = int(b.offsets.At(k))
			buf[n] = it.v
			n++
			it.i++
			continue
		}
		blockEnd := (it.i/BlockLen + 1) * BlockLen
		if blockEnd > b.n {
			blockEnd = b.n
		}
		m := blockEnd - it.i
		if m > len(buf)-n {
			m = len(buf) - n
		}
		v, pos := it.v, it.pos
		out := buf[n : n+m]
		for j := range out {
			var gap uint64
			var shift uint
			for {
				byt := data[pos]
				pos++
				gap |= uint64(byt&0x7f) << shift
				if byt < 0x80 {
					break
				}
				shift += 7
			}
			v += gap
			out[j] = v
		}
		it.v, it.pos = v, pos
		n += m
		it.i += m
	}
	return n
}

// SkipTo advances the iterator to the first element at or after the
// current position whose value is >= x, consumes it, and returns its
// index and value. Whole blocks are skipped through the block-leading
// directory before the final block is scanned.
func (it *Iterator) SkipTo(x uint64) (int, uint64, bool) {
	b := it.b
	if it.i >= b.n {
		return b.n, 0, false
	}
	if x > b.universe {
		it.i = b.n
		return b.n, 0, false
	}
	curK := it.i / BlockLen
	if b.firsts.At(curK) < x {
		// Binary search the last block at or after curK whose leading
		// value is still below x; the answer lies in it or at the next
		// block's leading value.
		lo, hi := curK, b.firsts.Len()-1
		for lo < hi {
			mid := int(uint(lo+hi+1) >> 1)
			if b.firsts.At(mid) < x {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		if lo > curK {
			it.i = lo * BlockLen // Next reloads the block directory here
		}
	}
	for {
		v, ok := it.Next()
		if !ok {
			return b.n, 0, false
		}
		if v >= x {
			return it.i - 1, v, true
		}
	}
}

// SizeBits returns the storage footprint in bits.
func (b *Blocked) SizeBits() uint64 {
	return uint64(len(b.data))*8 + b.firsts.SizeBits() + b.offsets.SizeBits() + 2*64
}

// Encode writes the sequence to w.
func (b *Blocked) Encode(w *codec.Writer) {
	w.Uvarint(uint64(b.n))
	w.Uvarint(b.universe)
	w.Bytes(b.data)
	b.firsts.Encode(w)
	b.offsets.Encode(w)
}

// DecodeBlocked reads a sequence written by Encode.
func DecodeBlocked(r *codec.Reader) (*Blocked, error) {
	b := &Blocked{}
	b.n = int(r.Uvarint())
	b.universe = r.Uvarint()
	b.data = r.BytesBuf()
	var err error
	if b.firsts, err = bits.DecodeCompact(r); err != nil {
		return nil, err
	}
	if b.offsets, err = bits.DecodeCompact(r); err != nil {
		return nil, err
	}
	numBlocks := (b.n + BlockLen - 1) / BlockLen
	if b.n > 0 && (b.firsts.Len() != numBlocks || b.offsets.Len() != numBlocks) {
		return nil, r.Fail(fmt.Errorf("%w: vbyte block directory", codec.ErrCorrupt))
	}
	return b, nil
}
