package vbyte

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rdfindexes/internal/codec"
)

func TestPutGetRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 129, 16383, 16384, 1 << 21, 1<<35 + 7, ^uint64(0)}
	var buf []byte
	for _, v := range cases {
		buf = Put(buf, v)
	}
	pos := 0
	for _, want := range cases {
		var got uint64
		got, pos = Get(buf, pos)
		if got != want {
			t.Fatalf("Get = %d, want %d", got, want)
		}
	}
	if pos != len(buf) {
		t.Fatalf("decoded %d bytes, buffer has %d", pos, len(buf))
	}
}

func TestPutGetQuick(t *testing.T) {
	f := func(vals []uint64) bool {
		var buf []byte
		for _, v := range vals {
			buf = Put(buf, v)
		}
		pos := 0
		for _, want := range vals {
			var got uint64
			got, pos = Get(buf, pos)
			if got != want {
				return false
			}
		}
		return pos == len(buf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func randomMonotone(rng *rand.Rand, n int, maxGap uint64) []uint64 {
	vals := make([]uint64, n)
	var cur uint64
	for i := range vals {
		cur += rng.Uint64() % (maxGap + 1)
		vals[i] = cur
	}
	return vals
}

func TestBlockedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, tc := range []struct {
		name string
		vals []uint64
	}{
		{"empty", nil},
		{"single", []uint64{9}},
		{"one-block", randomMonotone(rng, 100, 37)},
		{"exact-block", randomMonotone(rng, 128, 37)},
		{"block-plus-one", randomMonotone(rng, 129, 37)},
		{"many", randomMonotone(rng, 5000, 1000)},
		{"duplicates", randomMonotone(rng, 2000, 1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBlocked(tc.vals)
			if b.Len() != len(tc.vals) {
				t.Fatalf("Len() = %d, want %d", b.Len(), len(tc.vals))
			}
			for i, v := range tc.vals {
				if got := b.Access(i); got != v {
					t.Fatalf("Access(%d) = %d, want %d", i, got, v)
				}
			}
			probe := func(x uint64) {
				wantPos := sort.Search(len(tc.vals), func(i int) bool { return tc.vals[i] >= x })
				pos, val, ok := b.NextGEQ(x)
				if wantPos == len(tc.vals) {
					if ok {
						t.Fatalf("NextGEQ(%d) = (%d, %d, true), want not found", x, pos, val)
					}
					return
				}
				if !ok || pos != wantPos || val != tc.vals[wantPos] {
					t.Fatalf("NextGEQ(%d) = (%d, %d, %v), want (%d, %d, true)",
						x, pos, val, ok, wantPos, tc.vals[wantPos])
				}
			}
			probe(0)
			for i := 0; i < len(tc.vals); i += 1 + len(tc.vals)/97 {
				v := tc.vals[i]
				probe(v)
				if v > 0 {
					probe(v - 1)
				}
				probe(v + 1)
			}
			for _, from := range []int{0, 1, len(tc.vals) / 2, len(tc.vals)} {
				it := b.Iterator(from)
				for i := from; i < len(tc.vals); i++ {
					v, ok := it.Next()
					if !ok || v != tc.vals[i] {
						t.Fatalf("Iterator(from=%d) at %d = (%d, %v), want %d", from, i, v, ok, tc.vals[i])
					}
				}
				if _, ok := it.Next(); ok {
					t.Fatalf("Iterator(from=%d) did not stop", from)
				}
			}
		})
	}
}

func TestBlockedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	vals := randomMonotone(rng, 3000, 512)
	b := NewBlocked(vals)
	var buf bytes.Buffer
	w := codec.NewWriter(&buf)
	b.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBlocked(codec.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if got.Access(i) != v {
			t.Fatalf("decoded Access(%d) = %d, want %d", i, got.Access(i), v)
		}
	}
}

func TestBlockedNonMonotonePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBlocked did not panic on non-monotone input")
		}
	}()
	NewBlocked([]uint64{5, 3})
}

func BenchmarkBlockedScan(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := NewBlocked(randomMonotone(rng, 1<<20, 64))
	b.ResetTimer()
	it := s.Iterator(0)
	for i := 0; i < b.N; i++ {
		if _, ok := it.Next(); !ok {
			it = s.Iterator(0)
		}
	}
}

func BenchmarkBlockedAccess(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := NewBlocked(randomMonotone(rng, 1<<20, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Access((i * 2654435761) & (1<<20 - 1))
	}
}
