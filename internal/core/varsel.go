package core

import (
	"rdfindexes/internal/seq"
	"rdfindexes/internal/trie"
)

// VarIter iterates, in strictly increasing order and without duplicates,
// the IDs that the single wildcard component of a pattern can take. Its
// NextGEQ skip makes sorted merge-intersections of several such streams
// possible, which is what turns star-shaped joins from nested loops into
// galloping intersections (the Broccoli-style use of compressed index
// lists, arXiv:1207.2615).
type VarIter struct {
	it    seq.Iterator
	empty bool
}

// Next returns the next candidate ID.
//
//rdf:hotpath
func (v *VarIter) Next() (ID, bool) {
	if v.empty {
		return 0, false
	}
	x, ok := v.it.Next()
	return ID(x), ok
}

// NextGEQ skips forward to the first remaining candidate >= x, consumes
// it and returns it.
//
//rdf:hotpath
func (v *VarIter) NextGEQ(x ID) (ID, bool) {
	if v.empty {
		return 0, false
	}
	got, ok := v.it.NextGEQ(uint64(x))
	return ID(got), ok
}

// emptyVarIter matches no candidate.
func emptyVarIter() *VarIter { return &VarIter{empty: true} }

// varIterOnTrie serves the sorted completions of the fixed prefix (a, b)
// on t's third level: the values the trie's last component takes, which
// are exactly the bindings of the pattern's single wildcard when it sits
// in that position.
func varIterOnTrie(t *trie.Trie, a, b ID) *VarIter {
	b1, e1 := t.RootRange(uint32(a))
	j := t.FindChild1(b1, e1, uint32(b))
	if j < 0 {
		return emptyVarIter()
	}
	b2, e2 := t.ChildRange(j)
	return &VarIter{it: t.Iter2(b2, e2)}
}

// VarSelecter is implemented by indexes that can produce the sorted
// stream of bindings for a pattern with exactly one wildcard without
// materializing triples. ok is false when the layout cannot serve the
// pattern natively (the executor then falls back to nested iteration).
type VarSelecter interface {
	SelectVarSorted(p Pattern) (*VarIter, bool)
}

// SelectVarSorted on 3T: SP? on SPO, ?PO on POS, S?O on OSP — in each
// case the wildcard is the resolving trie's third component.
func (x *Index3T) SelectVarSorted(p Pattern) (*VarIter, bool) {
	switch p.Shape() {
	case ShapeSPx:
		return varIterOnTrie(x.spo, p.S, p.P), true
	case ShapexPO:
		return varIterOnTrie(x.pos, p.P, p.O), true
	case ShapeSxO:
		return varIterOnTrie(x.osp, p.O, p.S), true
	}
	return nil, false
}

// SelectVarSorted on 2Tp: SP? on SPO and ?PO on POS. S?O has no
// third-level range here (it resolves with the enumerate algorithm).
func (x *Index2Tp) SelectVarSorted(p Pattern) (*VarIter, bool) {
	switch p.Shape() {
	case ShapeSPx:
		return varIterOnTrie(x.spo, p.S, p.P), true
	case ShapexPO:
		return varIterOnTrie(x.pos, p.P, p.O), true
	}
	return nil, false
}

// SelectVarSorted on 2To: SP? on SPO and ?PO on OPS.
func (x *Index2To) SelectVarSorted(p Pattern) (*VarIter, bool) {
	switch p.Shape() {
	case ShapeSPx:
		return varIterOnTrie(x.spo, p.S, p.P), true
	case ShapexPO:
		return varIterOnTrie(x.ops, p.O, p.P), true
	}
	return nil, false
}

// SelectVarSorted on CC: only levels that store real IDs qualify; mapped
// third levels hold positions, whose order is not the ID order.
func (x *IndexCC) SelectVarSorted(p Pattern) (*VarIter, bool) {
	if x.all {
		return nil, false
	}
	switch p.Shape() {
	case ShapeSPx:
		return varIterOnTrie(x.spo, p.S, p.P), true
	case ShapeSxO:
		return varIterOnTrie(x.osp, p.O, p.S), true
	}
	return nil, false
}
