package core

import (
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentReaders exercises the immutability claim: a built index
// must serve arbitrary concurrent Select streams. Run with -race.
func TestConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(239))
	d := skewedDataset(rng, 3000)
	for name, x := range allLayouts(t, d) {
		x := x
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			errs := make(chan string, 16)
			for g := 0; g < 16; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					local := rand.New(rand.NewSource(seed))
					for i := 0; i < 200; i++ {
						tr := d.Triples[local.Intn(len(d.Triples))]
						shape := Shape(local.Intn(int(NumShapes)))
						pat := WithWildcards(tr, shape)
						found := false
						it := x.Select(pat)
						for {
							m, ok := it.Next()
							if !ok {
								break
							}
							if m == tr {
								found = true
							}
							if !pat.Matches(m) {
								errs <- "non-matching triple from " + pat.Shape().String()
								return
							}
						}
						if !found {
							errs <- "source triple missing from " + pat.Shape().String()
							return
						}
					}
				}(int64(g))
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Fatal(e)
			}
		})
	}
}
