package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPatternShape(t *testing.T) {
	w := -1
	cases := []struct {
		s, p, o int
		want    Shape
	}{
		{1, 2, 3, ShapeSPO},
		{1, 2, w, ShapeSPx},
		{1, w, 3, ShapeSxO},
		{1, w, w, ShapeSxx},
		{w, 2, 3, ShapexPO},
		{w, 2, w, ShapexPx},
		{w, w, 3, ShapexxO},
		{w, w, w, Shapexxx},
	}
	for _, c := range cases {
		if got := NewPattern(c.s, c.p, c.o).Shape(); got != c.want {
			t.Errorf("Shape(%d,%d,%d) = %v, want %v", c.s, c.p, c.o, got, c.want)
		}
	}
}

func TestShapeStringParse(t *testing.T) {
	for _, s := range AllShapes() {
		got, err := ParseShape(s.String())
		if err != nil || got != s {
			t.Errorf("ParseShape(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseShape("XYZ"); err == nil {
		t.Error("ParseShape accepted junk")
	}
}

func TestWithWildcardsMatchesSource(t *testing.T) {
	tr := Triple{3, 5, 7}
	for _, s := range AllShapes() {
		p := WithWildcards(tr, s)
		if p.Shape() != s {
			t.Errorf("WithWildcards(%v, %v).Shape() = %v", tr, s, p.Shape())
		}
		if !p.Matches(tr) {
			t.Errorf("WithWildcards(%v, %v) does not match its source", tr, s)
		}
	}
}

func TestPermApplyRestore(t *testing.T) {
	f := func(s, p, o uint32) bool {
		tr := Triple{ID(s), ID(p), ID(o)}
		for perm := Perm(0); perm < NumPerms; perm++ {
			a, b, c := perm.Apply(tr)
			if perm.Restore(a, b, c) != tr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermDistinct(t *testing.T) {
	// The six permutations must produce six distinct component orders.
	tr := Triple{1, 2, 3}
	seen := map[[3]ID]Perm{}
	for perm := Perm(0); perm < NumPerms; perm++ {
		a, b, c := perm.Apply(tr)
		key := [3]ID{a, b, c}
		if prev, dup := seen[key]; dup {
			t.Fatalf("permutations %v and %v coincide", prev, perm)
		}
		seen[key] = perm
	}
}

func sortOracle(ts []Triple, p Perm) {
	sort.SliceStable(ts, func(i, j int) bool {
		ai, bi, ci := p.Apply(ts[i])
		aj, bj, cj := p.Apply(ts[j])
		if ai != aj {
			return ai < aj
		}
		if bi != bj {
			return bi < bj
		}
		return ci < cj
	})
}

func TestSortPermMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	spaces := []struct{ ns, np, no int }{
		{100, 10, 200},              // radix path, small
		{1 << 20, 1 << 11, 1 << 21}, // radix path, wide
		{1 << 30, 1 << 20, 1 << 30}, // 80 bits: comparison fallback
	}
	for _, sp := range spaces {
		for perm := Perm(0); perm < NumPerms; perm++ {
			n := 3000
			ts := make([]Triple, n)
			for i := range ts {
				ts[i] = Triple{
					ID(rng.Intn(sp.ns)), ID(rng.Intn(sp.np)), ID(rng.Intn(sp.no)),
				}
			}
			want := make([]Triple, n)
			copy(want, ts)
			sortOracle(want, perm)
			SortPerm(ts, perm, sp.ns, sp.np, sp.no)
			for i := range ts {
				if ts[i] != want[i] {
					t.Fatalf("spaces %+v perm %v: position %d = %v, want %v",
						sp, perm, i, ts[i], want[i])
				}
			}
		}
	}
}

func TestSortPermEmptyAndSingle(t *testing.T) {
	SortPerm(nil, PermPOS, 1, 1, 1)
	one := []Triple{{1, 2, 3}}
	SortPerm(one, PermOSP, 10, 10, 10)
	if one[0] != (Triple{1, 2, 3}) {
		t.Fatal("single-element sort corrupted data")
	}
}

func TestTripleLess(t *testing.T) {
	cases := []struct {
		a, b Triple
		want bool
	}{
		{Triple{0, 0, 0}, Triple{0, 0, 1}, true},
		{Triple{0, 1, 0}, Triple{0, 0, 9}, false},
		{Triple{1, 0, 0}, Triple{0, 9, 9}, false},
		{Triple{2, 3, 4}, Triple{2, 3, 4}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
