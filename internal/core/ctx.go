package core

import (
	"sync"

	"rdfindexes/internal/trie"
)

// QueryCtx is the pooled per-query scratch arena for pattern
// selection: selection states, batch buffers, and compressed-sequence
// cursors that are reused across queries instead of reallocated.
//
// Concurrency contract ("one index, N goroutines"): a built Index is
// immutable — every sequence, trie level and dictionary it holds is
// read-only after construction — so any number of goroutines may call
// Select/SelectCtx, Count, Lookup and SelectVarSorted on one shared index
// concurrently without synchronization. All mutable query state lives in
// the *Iterator values those calls return and in QueryCtx; both are
// single-goroutine objects. DynamicIndex is the exception: its update log
// is mutable, so Insert/Delete need external synchronization, and
// concurrent readers must query an immutable DynamicSnapshot (which
// implements Index and this file's CtxSelecter) rather than the live
// DynamicIndex — the RCU pattern internal/store publishes views with.
//
// QueryCtx is the pooled per-query scratch arena of that contract. A
// query (an HTTP request, one benchmark probe, one BGP execution)
// acquires a ctx, resolves any number of patterns through it, and
// releases it; the selection-state structs, their batch buffers and
// their compressed-sequence cursors are then reused instead of
// reallocated, so a serving loop reaches steady state with no per-query
// allocation on the hot shapes. States return to the ctx's free lists
// automatically when their iterator is exhausted, which is what makes
// nested-loop BGP execution (many short-lived inner iterators per query)
// allocation-free too.
//
// Rules: a QueryCtx must not be shared between goroutines, and Release
// must not be called while an unexhausted iterator obtained through the
// ctx is still going to be used. An iterator obtained through a ctx is
// dead once exhausted (its state may be reused by the next pattern);
// exhausted iterators still answer Next/NextBatch with "no more results"
// until their state is actually reused, but must not be retained.
type QueryCtx struct {
	// trip is the reusable result buffer handed out by Batch; sized to
	// one refill block so drain loops match the decoder's batch size.
	trip [triBatch]Triple

	free2  []*selectTwoState
	free1  []*selectOneState
	freeA  []*scanAllState
	freeE  []*enumerateState
	freeIP []*invertedPOSState
	freeIS []*invertedPSState
	freeL  []*litState
}

// ctxFreeCap bounds each free list; states beyond it (pathological BGP
// nesting depth) are left to the garbage collector.
const ctxFreeCap = 64

// ctxMismatchCap is the free-list size below which a trie mismatch
// allocates a fresh state instead of repurposing another trie's state.
// Repurposing destroys that trie's warmed cursors, and with one shared
// free list a workload alternating two tries would ping-pong a single
// state between them, reallocating cursors every query; letting the
// list grow to one state per trie first makes mixed workloads
// allocation-free. An index has at most 3 tries, so 4 covers every
// layout with slack.
const ctxMismatchCap = 4

var queryCtxPool = sync.Pool{New: func() any { return &QueryCtx{} }}

// AcquireQueryCtx takes a query context from the process-wide pool.
func AcquireQueryCtx() *QueryCtx {
	//rdf:allow(ownership transfers to the caller; Release returns it to the pool)
	return queryCtxPool.Get().(*QueryCtx)
}

// Release returns the ctx to the pool. The caller must have drained or
// abandoned every iterator obtained through it.
func (c *QueryCtx) Release() {
	if c != nil {
		queryCtxPool.Put(c)
	}
}

// Batch returns the ctx's reusable triple buffer for NextBatch drain
// loops. The buffer is invalidated by the next Batch call on the same
// ctx, not by state recycling.
func (c *QueryCtx) Batch() []Triple { return c.trip[:] }

// recycler is the hook through which an exhausted Iterator returns its
// backing state to the owning ctx's free list.
type recycler interface{ recycle() }

// ctxPop pops a free state, or returns nil when the list is empty.
func ctxPop[T any](free *[]*T) *T {
	n := len(*free)
	if n == 0 {
		return nil
	}
	st := (*free)[n-1]
	(*free)[n-1] = nil
	*free = (*free)[:n-1]
	return st
}

// ctxPopMatch pops the most recently freed state satisfying match, or
// nil. Used to prefer a state whose cursors already belong to the query
// trie: a mixed workload alternating tries would otherwise ping-pong
// states between tries and reallocate the cursors every time.
func ctxPopMatch[T any](free *[]*T, match func(*T) bool) *T {
	for i := len(*free) - 1; i >= 0; i-- {
		if match((*free)[i]) {
			st := (*free)[i]
			(*free)[i] = (*free)[len(*free)-1]
			(*free)[len(*free)-1] = nil
			*free = (*free)[:len(*free)-1]
			return st
		}
	}
	return nil
}

// ctxPush returns a state to its free list unless the list is full.
func ctxPush[T any](free *[]*T, st *T) {
	if len(*free) < ctxFreeCap {
		*free = append(*free, st)
	}
}

// CtxSelecter is implemented by indexes whose pattern resolution can draw
// per-query scratch from a QueryCtx. All layouts in this package
// implement it.
type CtxSelecter interface {
	SelectCtx(Pattern, *QueryCtx) *Iterator
}

// SelectWithCtx resolves p on x, drawing per-query scratch from c when c
// is non-nil and the index supports it; otherwise it behaves exactly
// like x.Select(p).
func SelectWithCtx(x Index, p Pattern, c *QueryCtx) *Iterator {
	if c != nil {
		if cs, ok := x.(CtxSelecter); ok {
			return cs.SelectCtx(p, c)
		}
	}
	return x.Select(p)
}

// The per-state acquisition helpers below either pop a recycled state
// (resetting its query-specific fields while keeping its scratch buffers
// and, where the trie matches, its compressed-sequence cursors) or
// allocate a fresh one. A nil ctx degrades to plain heap allocation, so
// the non-ctx Select path is unchanged.

func (c *QueryCtx) getSelectTwo(t *trie.Trie) *selectTwoState {
	if c != nil {
		st := ctxPopMatch(&c.free2, func(s *selectTwoState) bool { return s.t == t })
		if st == nil && len(c.free2) >= ctxMismatchCap {
			st = ctxPop(&c.free2)
		}
		if st != nil {
			st.perm, st.a, st.b, st.left, st.unmap = 0, 0, 0, 0, nil
			st.it.reinit(st, st)
			return st
		}
	}
	st := &selectTwoState{c: c}
	st.vals = st.vals0[:]
	st.it.reinit(st, ifCtx(c, st))
	return st
}

func (st *selectTwoState) recycle() { ctxPush(&st.c.free2, st) }

func (c *QueryCtx) getSelectOne(t *trie.Trie) *selectOneState {
	if c != nil {
		st := ctxPopMatch(&c.free1, func(s *selectOneState) bool { return s.t == t })
		if st == nil && len(c.free1) >= ctxMismatchCap {
			st = ctxPop(&c.free1)
		}
		if st != nil {
			st.perm, st.a, st.curB = 0, 0, 0
			st.it2Active, st.prev, st.left, st.unmap = false, 0, 0, nil
			st.it.reinit(st, st)
			return st
		}
	}
	st := &selectOneState{c: c}
	st.vals = st.vals0[:]
	st.it.reinit(st, ifCtx(c, st))
	return st
}

func (st *selectOneState) recycle() { ctxPush(&st.c.free1, st) }

func (c *QueryCtx) getScanAll() *scanAllState {
	if c != nil {
		if st := ctxPop(&c.freeA); st != nil {
			st.perm, st.root, st.pos1, st.e1, st.prev, st.curB = 0, 0, 0, 0, 0, 0
			st.it2Active, st.left, st.unmap = false, 0, nil
			// The level-1 cursors are position-dependent across roots, so
			// they are never carried over between queries.
			st.it1, st.ptrIt = nil, nil
			st.it.reinit(st, st)
			return st
		}
	}
	st := &scanAllState{c: c}
	st.vals = st.vals0[:]
	st.it.reinit(st, ifCtx(c, st))
	return st
}

func (st *scanAllState) recycle() { ctxPush(&st.c.freeA, st) }

func (c *QueryCtx) getEnumerate() *enumerateState {
	if c != nil {
		if st := ctxPop(&c.freeE); st != nil {
			st.s, st.o, st.prev, st.pos1, st.b1, st.e1 = 0, 0, 0, 0, 0, 0
			st.it.reinit(st, st)
			return st
		}
	}
	st := &enumerateState{c: c}
	st.it.reinit(st, ifCtx(c, st))
	return st
}

func (st *enumerateState) recycle() { ctxPush(&st.c.freeE, st) }

func (c *QueryCtx) getInvertedPOS() *invertedPOSState {
	if c != nil {
		if st := ctxPop(&c.freeIP); st != nil {
			st.o, st.curP, st.p = 0, 0, 0
			st.it2Active, st.left = false, 0
			st.it.reinit(st, st)
			return st
		}
	}
	st := &invertedPOSState{c: c}
	st.vals = st.vals0[:]
	st.it.reinit(st, ifCtx(c, st))
	return st
}

func (st *invertedPOSState) recycle() { ctxPush(&st.c.freeIP, st) }

func (c *QueryCtx) getInvertedPS() *invertedPSState {
	if c != nil {
		if st := ctxPop(&c.freeIS); st != nil {
			st.p, st.curS = 0, 0
			st.it2Active, st.left = false, 0
			st.it.reinit(st, st)
			return st
		}
	}
	st := &invertedPSState{c: c}
	st.vals = st.vals0[:]
	st.it.reinit(st, ifCtx(c, st))
	return st
}

func (st *invertedPSState) recycle() { ctxPush(&st.c.freeIS, st) }

// litState backs the zero- and one-triple iterators (fully-bound SPO
// lookups and miss early-exits), which dominate point-query serving:
// pooling them keeps even those shapes allocation-free.
type litState struct {
	c  *QueryCtx
	t  [1]Triple
	it Iterator
}

func (st *litState) recycle() { ctxPush(&st.c.freeL, st) }

// getLit returns a literal-result iterator holding n (0 or 1) buffered
// triples; the caller fills st.t[0] for n == 1. Must not be called with
// a nil ctx.
func (c *QueryCtx) getLit(n int) *litState {
	st := ctxPop(&c.freeL)
	if st == nil {
		st = &litState{c: c}
	}
	st.it.pos, st.it.n = 0, n
	st.it.done = true
	st.it.src = nil
	st.it.scalar = nil
	st.it.buf = st.t[:]
	st.it.owner = st
	return st
}

// ifCtx gates the recycling hook: states allocated without a ctx have no
// free list to return to.
func ifCtx(c *QueryCtx, r recycler) recycler {
	if c == nil {
		return nil
	}
	return r
}
