package core

import (
	"fmt"
	"math/bits"
	"sort"
)

// Perm is a permutation of the S-P-O components defining a trie's
// component order.
type Perm uint8

// The six permutations; the index layouts materialize subsets of them.
const (
	PermSPO Perm = iota
	PermSOP
	PermPSO
	PermPOS
	PermOSP
	PermOPS
	NumPerms = 6
)

var permNames = [NumPerms]string{"SPO", "SOP", "PSO", "POS", "OSP", "OPS"}

// String returns the permutation name, e.g. "POS".
func (p Perm) String() string {
	if int(p) < len(permNames) {
		return permNames[p]
	}
	return fmt.Sprintf("Perm(%d)", uint8(p))
}

// Apply returns t's components in the permutation's order.
//
//rdf:hotpath
func (p Perm) Apply(t Triple) (a, b, c ID) {
	switch p {
	case PermSPO:
		return t.S, t.P, t.O
	case PermSOP:
		return t.S, t.O, t.P
	case PermPSO:
		return t.P, t.S, t.O
	case PermPOS:
		return t.P, t.O, t.S
	case PermOSP:
		return t.O, t.S, t.P
	case PermOPS:
		return t.O, t.P, t.S
	}
	//rdf:allow(unreachable panic path; every Perm constant is handled above)
	panic(fmt.Sprintf("core: invalid permutation %d", p))
}

// Restore rebuilds a canonical triple from components in the
// permutation's order.
//
//rdf:hotpath
func (p Perm) Restore(a, b, c ID) Triple {
	switch p {
	case PermSPO:
		return Triple{a, b, c}
	case PermSOP:
		return Triple{a, c, b}
	case PermPSO:
		return Triple{b, a, c}
	case PermPOS:
		return Triple{c, a, b}
	case PermOSP:
		return Triple{b, c, a}
	case PermOPS:
		return Triple{c, b, a}
	}
	//rdf:allow(unreachable panic path; every Perm constant is handled above)
	panic(fmt.Sprintf("core: invalid permutation %d", p))
}

// RootSpace returns the ID-space size of the permutation's first
// component given the dataset's space sizes.
func (p Perm) RootSpace(ns, np, no int) int {
	switch p {
	case PermSPO, PermSOP:
		return ns
	case PermPSO, PermPOS:
		return np
	default:
		return no
	}
}

// SortPerm sorts triples in the lexicographic order of the permutation.
// When the three component ID spaces fit in a 64-bit packed key a
// byte-wise LSD radix sort is used; otherwise it falls back to a
// comparison sort.
func SortPerm(ts []Triple, p Perm, ns, np, no int) {
	ba := bits.Len(uint(max(ns-1, 1)))
	bb := bits.Len(uint(max(np-1, 1)))
	bc := bits.Len(uint(max(no-1, 1)))
	// widths in permuted order
	var wa, wb, wc int
	switch p {
	case PermSPO:
		wa, wb, wc = ba, bb, bc
	case PermSOP:
		wa, wb, wc = ba, bc, bb
	case PermPSO:
		wa, wb, wc = bb, ba, bc
	case PermPOS:
		wa, wb, wc = bb, bc, ba
	case PermOSP:
		wa, wb, wc = bc, ba, bb
	case PermOPS:
		wa, wb, wc = bc, bb, ba
	}
	total := wa + wb + wc
	if total <= 64 {
		radixSortPerm(ts, p, uint(wb), uint(wc), total)
		return
	}
	sort.Slice(ts, func(i, j int) bool {
		ai, bi, ci := p.Apply(ts[i])
		aj, bj, cj := p.Apply(ts[j])
		if ai != aj {
			return ai < aj
		}
		if bi != bj {
			return bi < bj
		}
		return ci < cj
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// radixSortPerm packs each permuted triple into a uint64 key and performs
// an LSD radix sort over the significant bytes.
func radixSortPerm(ts []Triple, p Perm, wb, wc uint, totalBits int) {
	n := len(ts)
	keys := make([]uint64, n)
	for i, t := range ts {
		a, b, c := p.Apply(t)
		keys[i] = uint64(a)<<(wb+wc) | uint64(b)<<wc | uint64(c)
	}
	tmp := make([]uint64, n)
	passes := (totalBits + 7) / 8
	for pass := 0; pass < passes; pass++ {
		shift := uint(8 * pass)
		var count [257]int
		for _, k := range keys {
			count[int(k>>shift&0xff)+1]++
		}
		if count[1] == n {
			continue // every key has a zero byte here: already in order
		}
		for b := 1; b < 257; b++ {
			count[b] += count[b-1]
		}
		for _, k := range keys {
			b := byte(k >> shift)
			tmp[count[b]] = k
			count[b]++
		}
		keys, tmp = tmp, keys
	}
	mask := uint64(1)<<wc - 1
	maskB := uint64(1)<<wb - 1
	for i, k := range keys {
		a := ID(k >> (wb + wc))
		b := ID(k >> wc & maskB)
		c := ID(k & mask)
		ts[i] = p.Restore(a, b, c)
	}
}
