package core

import (
	"rdfindexes/internal/codec"
	"rdfindexes/internal/seq"
	"rdfindexes/internal/trie"
)

// Index3T is the base permuted trie index of Section 3.1: the SPO, POS
// and OSP permutations, symmetrically covering all selection patterns
// with the select algorithm.
type Index3T struct {
	spo, pos, osp *trie.Trie
}

// Build3T constructs the 3T index.
func Build3T(d *Dataset, opts ...Option) (*Index3T, error) {
	o := buildOptions(opts)
	scratch := make([]Triple, len(d.Triples))
	spo, err := buildTrie(d, scratch, PermSPO, o.trieConfig(PermSPO))
	if err != nil {
		return nil, err
	}
	pos, err := buildTrie(d, scratch, PermPOS, o.trieConfig(PermPOS))
	if err != nil {
		return nil, err
	}
	osp, err := buildTrie(d, scratch, PermOSP, o.trieConfig(PermOSP))
	if err != nil {
		return nil, err
	}
	return &Index3T{spo: spo, pos: pos, osp: osp}, nil
}

// Layout returns Layout3T.
func (x *Index3T) Layout() Layout { return Layout3T }

// NumTriples returns the number of indexed triples.
func (x *Index3T) NumTriples() int { return x.spo.NumTriples() }

// SizeBits returns the total storage footprint in bits.
func (x *Index3T) SizeBits() uint64 {
	return x.spo.SizeBits() + x.pos.SizeBits() + x.osp.SizeBits()
}

// Trie exposes the materialized permutations.
func (x *Index3T) Trie(p Perm) *trie.Trie {
	switch p {
	case PermSPO:
		return x.spo
	case PermPOS:
		return x.pos
	case PermOSP:
		return x.osp
	}
	return nil
}

// Select resolves a pattern per the dispatch of Section 3.1: SP? and S??
// on SPO; ?PO and ?P? on POS; S?O and ??O on OSP; SPO and ??? on SPO.
func (x *Index3T) Select(p Pattern) *Iterator {
	switch p.Shape() {
	case ShapeSPO:
		return lookupSPO(x.spo, PermSPO, Triple{p.S, p.P, p.O})
	case ShapeSPx:
		return selectTwo(x.spo, PermSPO, p.S, p.P)
	case ShapeSxx:
		return selectOne(x.spo, PermSPO, p.S)
	case ShapeSxO:
		return selectTwo(x.osp, PermOSP, p.O, p.S)
	case ShapexPO:
		return selectTwo(x.pos, PermPOS, p.P, p.O)
	case ShapexPx:
		return selectOne(x.pos, PermPOS, p.P)
	case ShapexxO:
		return selectOne(x.osp, PermOSP, p.O)
	default:
		return scanAll(x.spo, PermSPO)
	}
}

// SelectObjectRange resolves ?P? with the object constrained to the ID
// interval [lo, hi] (Section 3.1, range queries), using the POS trie.
func (x *Index3T) SelectObjectRange(p ID, lo, hi ID) *Iterator {
	return selectObjectRangeOnPOS(x.pos, p, lo, hi)
}

func (x *Index3T) encode(w *codec.Writer) {
	x.spo.Encode(w)
	x.pos.Encode(w)
	x.osp.Encode(w)
}

func decode3T(r *codec.Reader) (*Index3T, error) {
	x := &Index3T{}
	var err error
	if x.spo, err = trie.Decode(r); err != nil {
		return nil, err
	}
	if x.pos, err = trie.Decode(r); err != nil {
		return nil, err
	}
	if x.osp, err = trie.Decode(r); err != nil {
		return nil, err
	}
	return x, nil
}

// selectObjectRangeOnPOS scans the children of predicate p whose IDs fall
// in [lo, hi], yielding all their subjects.
func selectObjectRangeOnPOS(pos *trie.Trie, p ID, lo, hi ID) *Iterator {
	b1, e1 := pos.RootRange(uint32(p))
	j, val, ok := pos.Nodes(1).FindGEQ(b1, e1, uint64(lo))
	if !ok || val > uint64(hi) {
		return emptyIterator()
	}
	it1 := pos.Iter1From(b1, j, e1)
	pos1 := j
	var (
		curO ID
		it2  seq.Iterator
	)
	return &Iterator{next: func() (Triple, bool) {
		for {
			if it2 != nil {
				if v, ok := it2.Next(); ok {
					return Triple{ID(v), p, curO}, true
				}
				it2 = nil
			}
			ov, ok := it1.Next()
			if !ok || ov > uint64(hi) {
				return Triple{}, false
			}
			curO = ID(ov)
			b2, e2 := pos.ChildRange(pos1)
			pos1++
			it2 = pos.Iter2(b2, e2)
		}
	}}
}
