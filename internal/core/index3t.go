package core

import (
	"rdfindexes/internal/codec"
	"rdfindexes/internal/seq"
	"rdfindexes/internal/trie"
)

// Index3T is the base permuted trie index of Section 3.1: the SPO, POS
// and OSP permutations, symmetrically covering all selection patterns
// with the select algorithm.
type Index3T struct {
	spo, pos, osp *trie.Trie
}

// Build3T constructs the 3T index.
func Build3T(d *Dataset, opts ...Option) (*Index3T, error) {
	o := buildOptions(opts)
	scratch := make([]Triple, len(d.Triples))
	spo, err := buildTrie(d, scratch, PermSPO, o.trieConfig(PermSPO))
	if err != nil {
		return nil, err
	}
	pos, err := buildTrie(d, scratch, PermPOS, o.trieConfig(PermPOS))
	if err != nil {
		return nil, err
	}
	osp, err := buildTrie(d, scratch, PermOSP, o.trieConfig(PermOSP))
	if err != nil {
		return nil, err
	}
	return &Index3T{spo: spo, pos: pos, osp: osp}, nil
}

// Layout returns Layout3T.
func (x *Index3T) Layout() Layout { return Layout3T }

// NumTriples returns the number of indexed triples.
func (x *Index3T) NumTriples() int { return x.spo.NumTriples() }

// SizeBits returns the total storage footprint in bits.
func (x *Index3T) SizeBits() uint64 {
	return x.spo.SizeBits() + x.pos.SizeBits() + x.osp.SizeBits()
}

// Trie exposes the materialized permutations.
func (x *Index3T) Trie(p Perm) *trie.Trie {
	switch p {
	case PermSPO:
		return x.spo
	case PermPOS:
		return x.pos
	case PermOSP:
		return x.osp
	}
	return nil
}

// Select resolves a pattern per the dispatch of Section 3.1: SP? and S??
// on SPO; ?PO and ?P? on POS; S?O and ??O on OSP; SPO and ??? on SPO.
func (x *Index3T) Select(p Pattern) *Iterator { return x.SelectCtx(p, nil) }

// SelectCtx resolves a pattern like Select, drawing per-query scratch
// from c (which may be nil).
func (x *Index3T) SelectCtx(p Pattern, c *QueryCtx) *Iterator {
	switch p.Shape() {
	case ShapeSPO:
		return lookupSPO(c, x.spo, PermSPO, Triple{p.S, p.P, p.O})
	case ShapeSPx:
		return selectTwo(c, x.spo, PermSPO, p.S, p.P)
	case ShapeSxx:
		return selectOne(c, x.spo, PermSPO, p.S)
	case ShapeSxO:
		return selectTwo(c, x.osp, PermOSP, p.O, p.S)
	case ShapexPO:
		return selectTwo(c, x.pos, PermPOS, p.P, p.O)
	case ShapexPx:
		return selectOne(c, x.pos, PermPOS, p.P)
	case ShapexxO:
		return selectOne(c, x.osp, PermOSP, p.O)
	default:
		return scanAll(c, x.spo, PermSPO)
	}
}

// SelectObjectRange resolves ?P? with the object constrained to the ID
// interval [lo, hi] (Section 3.1, range queries), using the POS trie.
func (x *Index3T) SelectObjectRange(p ID, lo, hi ID) *Iterator {
	return selectObjectRangeOnPOS(x.pos, p, lo, hi)
}

func (x *Index3T) encode(w *codec.Writer) {
	x.spo.Encode(w)
	x.pos.Encode(w)
	x.osp.Encode(w)
}

func decode3T(r *codec.Reader) (*Index3T, error) {
	x := &Index3T{}
	var err error
	if x.spo, err = trie.Decode(r); err != nil {
		return nil, err
	}
	if x.pos, err = trie.Decode(r); err != nil {
		return nil, err
	}
	if x.osp, err = trie.Decode(r); err != nil {
		return nil, err
	}
	return x, nil
}

// objectRangeState scans the children of predicate p whose IDs fall in
// [lo, hi], yielding all their subjects in blocks.
type objectRangeState struct {
	pos       *trie.Trie
	p, curO   ID
	hi        uint64
	pos1      int
	it1       seq.Iterator
	it2       seq.Iterator
	it2Active bool
	left      int
	unmap     func(ID, uint64) ID
	it        Iterator
	vals      []uint64
	vals0     [8]uint64
}

func (st *objectRangeState) fill(out []Triple) int {
	n := 0
	for n < len(out) {
		if st.it2Active {
			k := len(out) - n
			if k > st.left {
				k = st.left
			}
			vals := valBuf(&st.vals, k)
			m := st.it2.NextBatch(vals)
			st.left -= m
			if m > 0 {
				if st.unmap != nil {
					for i := range vals[:m] {
						vals[i] = uint64(st.unmap(st.curO, vals[i]))
					}
				}
				restoreBatch(PermPOS, st.p, st.curO, vals[:m], out[n:n+m])
				n += m
				continue
			}
			st.it2Active = false
		}
		ov, ok := st.it1.Next()
		if !ok || ov > st.hi {
			break
		}
		st.curO = ID(ov)
		b2, e2 := st.pos.ChildRange(st.pos1)
		st.pos1++
		if st.it2 == nil {
			st.it2 = st.pos.Iter2(b2, e2)
		} else {
			st.it2.Reset(b2, b2, e2)
		}
		st.left = e2 - b2
		st.it2Active = true
	}
	return n
}

func selectObjectRangeOnPOS(pos *trie.Trie, p ID, lo, hi ID) *Iterator {
	return selectObjectRangeOnPOSUnmap(pos, p, lo, hi, nil)
}

func selectObjectRangeOnPOSUnmap(pos *trie.Trie, p ID, lo, hi ID, unmap func(ID, uint64) ID) *Iterator {
	b1, e1 := pos.RootRange(uint32(p))
	j, val, ok := pos.Nodes(1).FindGEQ(b1, e1, uint64(lo))
	if !ok || val > uint64(hi) {
		return emptyIterator()
	}
	st := &objectRangeState{pos: pos, p: p, hi: uint64(hi), pos1: j, unmap: unmap}
	st.it1 = pos.Iter1From(b1, j, e1)
	st.vals = st.vals0[:]
	st.it.src = st
	return &st.it
}
