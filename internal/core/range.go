package core

import (
	"rdfindexes/internal/codec"
	"rdfindexes/internal/ef"
)

// R is the auxiliary structure for range queries of Section 3.1: numeric
// literal objects receive consecutive IDs [Base, Base+Len) assigned in
// increasing value order, and their values are kept in a compressed
// sorted sequence searchable directly in compressed form.
type R struct {
	base   ID
	values *ef.Sequence
}

// NewR builds the structure for the numeric objects with IDs starting at
// base; values must be sorted ascending, value[k] belonging to ID base+k.
func NewR(base ID, values []uint64) *R {
	return &R{base: base, values: ef.New(values)}
}

// Base returns the first numeric object ID.
func (r *R) Base() ID { return r.base }

// Len returns the number of numeric objects.
func (r *R) Len() int { return r.values.Len() }

// Value returns the numeric value of object id (which must be in range).
func (r *R) Value(id ID) uint64 { return r.values.Access(int(id - r.base)) }

// IDRange returns the object IDs whose values fall in [lo, hi]. ok is
// false when the interval is empty.
func (r *R) IDRange(lo, hi uint64) (idLo, idHi ID, ok bool) {
	if r.values.Len() == 0 || lo > hi {
		return 0, 0, false
	}
	posLo, vLo, found := r.values.NextGEQ(lo)
	if !found || vLo > hi {
		return 0, 0, false
	}
	// Last position with value <= hi: the predecessor of the first value
	// strictly greater than hi.
	posHi := r.values.Len() - 1
	if hi < r.values.Universe() {
		p, _, found := r.values.NextGEQ(hi + 1)
		if found {
			posHi = p - 1
		}
	}
	// Values can repeat; extend posHi over duplicates of hi is already
	// handled since NextGEQ(hi+1) skips them all.
	if posHi < posLo {
		return 0, 0, false
	}
	return r.base + ID(posLo), r.base + ID(posHi), true
}

// SizeBits returns the storage footprint in bits. The paper measures this
// extra space at under 0.1 bits/triple on WatDiv.
func (r *R) SizeBits() uint64 { return r.values.SizeBits() + 64 }

// Encode writes the structure to w.
func (r *R) Encode(w *codec.Writer) {
	w.Uint32(uint32(r.base))
	r.values.Encode(w)
}

// DecodeR reads a structure written by Encode.
func DecodeR(rd *codec.Reader) (*R, error) {
	base := ID(rd.Uint32())
	values, err := ef.Decode(rd)
	if err != nil {
		return nil, err
	}
	return &R{base: base, values: values}, nil
}

// RangeSelecter is implemented by the layouts that materialize POS and
// therefore support object-range-constrained ?P? patterns.
type RangeSelecter interface {
	Index
	SelectObjectRange(p ID, lo, hi ID) *Iterator
}

// SelectValueRange resolves the pattern (?, p, ?value) with the
// constraint lo <= value <= hi on the numeric values of r: the bounds are
// first translated to an ID interval with two searches in R, then the
// matches are produced by the index (Section 3.1).
func SelectValueRange(x RangeSelecter, r *R, p ID, lo, hi uint64) *Iterator {
	idLo, idHi, ok := r.IDRange(lo, hi)
	if !ok {
		return emptyIterator()
	}
	return x.SelectObjectRange(p, idLo, idHi)
}
