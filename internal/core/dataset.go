package core

// Dataset is an integer triple collection in canonical sorted SPO order
// with dense component ID spaces.
type Dataset struct {
	// Triples is sorted lexicographically and contains no duplicates.
	Triples []Triple
	// NS, NP, NO are the sizes of the subject, predicate and object ID
	// spaces (at least max component + 1).
	NS, NP, NO int
}

// NewDataset takes ownership of triples, sorts them in SPO order, removes
// duplicates, and derives the ID space sizes.
func NewDataset(triples []Triple) *Dataset {
	d := &Dataset{Triples: triples}
	for _, t := range triples {
		if int(t.S) >= d.NS {
			d.NS = int(t.S) + 1
		}
		if int(t.P) >= d.NP {
			d.NP = int(t.P) + 1
		}
		if int(t.O) >= d.NO {
			d.NO = int(t.O) + 1
		}
	}
	SortPerm(d.Triples, PermSPO, d.NS, d.NP, d.NO)
	d.Triples = dedupeSorted(d.Triples)
	return d
}

// dedupeSorted removes adjacent duplicates in place.
func dedupeSorted(ts []Triple) []Triple {
	if len(ts) == 0 {
		return ts
	}
	w := 1
	for i := 1; i < len(ts); i++ {
		if ts[i] != ts[w-1] {
			ts[w] = ts[i]
			w++
		}
	}
	return ts[:w]
}

// Len returns the number of triples.
func (d *Dataset) Len() int { return len(d.Triples) }

// Stats summarizes a dataset as in Table 3 of the paper.
type Stats struct {
	Triples   int
	DistinctS int
	DistinctP int
	DistinctO int
	PairsSP   int // distinct (subject, predicate) pairs
	PairsPO   int // distinct (predicate, object) pairs
	PairsOS   int // distinct (object, subject) pairs
}

// ComputeStats counts distinct components and distinct pairs. It sorts
// temporary copies of the triples, costing O(n) extra space.
func (d *Dataset) ComputeStats() Stats {
	st := Stats{Triples: len(d.Triples)}
	if len(d.Triples) == 0 {
		return st
	}

	// Distinct subjects and SP pairs straight off the canonical order.
	var prev Triple
	for i, t := range d.Triples {
		if i == 0 || t.S != prev.S {
			st.DistinctS++
		}
		if i == 0 || t.S != prev.S || t.P != prev.P {
			st.PairsSP++
		}
		prev = t
	}

	tmp := make([]Triple, len(d.Triples))

	copy(tmp, d.Triples)
	SortPerm(tmp, PermPOS, d.NS, d.NP, d.NO)
	for i, t := range tmp {
		if i == 0 || t.P != prev.P {
			st.DistinctP++
		}
		if i == 0 || t.P != prev.P || t.O != prev.O {
			st.PairsPO++
		}
		prev = t
	}

	copy(tmp, d.Triples)
	SortPerm(tmp, PermOSP, d.NS, d.NP, d.NO)
	for i, t := range tmp {
		if i == 0 || t.O != prev.O {
			st.DistinctO++
		}
		if i == 0 || t.O != prev.O || t.S != prev.S {
			st.PairsOS++
		}
		prev = t
	}
	return st
}
