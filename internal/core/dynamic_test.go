package core

import (
	"math/rand"
	"testing"
)

// refDynamic is the oracle: a plain set.
type refDynamic map[Triple]bool

func (r refDynamic) selectPattern(p Pattern) []Triple {
	var out []Triple
	for t := range r {
		if p.Matches(t) {
			out = append(out, t)
		}
	}
	return out
}

func TestDynamicIndexRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(233))
	d := skewedDataset(rng, 1000)
	x, err := NewDynamic(d, Layout2Tp, 200)
	if err != nil {
		t.Fatal(err)
	}
	ref := refDynamic{}
	for _, tr := range d.Triples {
		ref[tr] = true
	}

	check := func(step int) {
		t.Helper()
		if x.NumTriples() != len(ref) {
			t.Fatalf("step %d: NumTriples = %d, want %d", step, x.NumTriples(), len(ref))
		}
		// Compare a handful of patterns of every shape.
		for trial := 0; trial < 5; trial++ {
			var tr Triple
			for cand := range ref {
				tr = cand
				break
			}
			for _, s := range AllShapes() {
				pat := WithWildcards(tr, s)
				got := x.Select(pat).Collect(-1)
				want := ref.selectPattern(pat)
				if !sameTripleSet(got, want) {
					t.Fatalf("step %d: pattern %v: got %d, want %d", step, pat, len(got), len(want))
				}
			}
		}
	}

	randTriple := func() Triple {
		return Triple{
			S: ID(rng.Intn(d.NS)), P: ID(rng.Intn(d.NP)), O: ID(rng.Intn(d.NO)),
		}
	}
	for step := 0; step < 600; step++ {
		tr := randTriple()
		if rng.Intn(2) == 0 {
			changed, err := x.Insert(tr)
			if err != nil {
				t.Fatal(err)
			}
			if changed == ref[tr] {
				t.Fatalf("step %d: Insert(%v) changed=%v but ref contains=%v", step, tr, changed, ref[tr])
			}
			ref[tr] = true
		} else {
			changed, err := x.Delete(tr)
			if err != nil {
				t.Fatal(err)
			}
			if changed != ref[tr] {
				t.Fatalf("step %d: Delete(%v) changed=%v but ref contains=%v", step, tr, changed, ref[tr])
			}
			delete(ref, tr)
		}
		if step%97 == 0 {
			check(step)
		}
	}
	check(600)

	// Force a final merge and re-verify: the log must be empty and the
	// results unchanged.
	if err := x.Merge(); err != nil {
		t.Fatal(err)
	}
	if x.LogSize() != 0 {
		t.Fatalf("log not empty after merge: %d", x.LogSize())
	}
	check(601)
}

func TestDynamicIndexAutoMerge(t *testing.T) {
	d := NewDataset([]Triple{{0, 0, 0}})
	x, err := NewDynamic(d, Layout2Tp, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		if _, err := x.Insert(Triple{S: ID(i % 7), P: ID(i % 3), O: ID(i)}); err != nil {
			t.Fatal(err)
		}
		if x.LogSize() >= 10 {
			t.Fatalf("log size %d reached the threshold without merging", x.LogSize())
		}
	}
	if x.NumTriples() != 51 {
		t.Fatalf("NumTriples = %d, want 51", x.NumTriples())
	}
}

func TestDynamicInsertDeleteIdempotence(t *testing.T) {
	d := NewDataset([]Triple{{1, 1, 1}})
	x, err := NewDynamic(d, Layout3T, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Inserting an existing triple: no change.
	if changed, _ := x.Insert(Triple{1, 1, 1}); changed {
		t.Fatal("Insert of existing triple reported a change")
	}
	// Delete it, then delete again.
	if changed, _ := x.Delete(Triple{1, 1, 1}); !changed {
		t.Fatal("Delete of existing triple reported no change")
	}
	if changed, _ := x.Delete(Triple{1, 1, 1}); changed {
		t.Fatal("second Delete reported a change")
	}
	if x.Lookup(Triple{1, 1, 1}) {
		t.Fatal("deleted triple still visible")
	}
	// Re-insert resurrects it from the deletion log.
	if changed, _ := x.Insert(Triple{1, 1, 1}); !changed {
		t.Fatal("re-insert reported no change")
	}
	if !x.Lookup(Triple{1, 1, 1}) {
		t.Fatal("re-inserted triple not visible")
	}
	if x.NumTriples() != 1 {
		t.Fatalf("NumTriples = %d, want 1", x.NumTriples())
	}
}
