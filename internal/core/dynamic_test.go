package core

import (
	"math/rand"
	"testing"
)

// refDynamic is the oracle: a plain set.
type refDynamic map[Triple]bool

func (r refDynamic) selectPattern(p Pattern) []Triple {
	var out []Triple
	for t := range r {
		if p.Matches(t) {
			out = append(out, t)
		}
	}
	return out
}

// sortedByPerm reports whether ts is nondecreasing in the permutation's
// lexicographic order.
func sortedByPerm(ts []Triple, p Perm) bool {
	for i := 1; i < len(ts); i++ {
		if PermLess(p, ts[i], ts[i-1]) {
			return false
		}
	}
	return true
}

// checkDynamic cross-checks every pattern shape around a handful of
// reference triples: the result set must match the oracle and the
// stream must arrive merged in the layout's emission order for the
// shape ("results have to be merged accordingly").
func checkDynamic(t *testing.T, layout Layout, sel func(Pattern) *Iterator, ref refDynamic, step int) {
	t.Helper()
	for trial := 0; trial < 5; trial++ {
		var tr Triple
		for cand := range ref {
			tr = cand
			break
		}
		for _, s := range AllShapes() {
			pat := WithWildcards(tr, s)
			got := sel(pat).Collect(-1)
			want := ref.selectPattern(pat)
			if !sameTripleSet(got, want) {
				t.Fatalf("%v step %d: pattern %v: got %d, want %d", layout, step, pat, len(got), len(want))
			}
			if perm := EmitPerm(layout, s); !sortedByPerm(got, perm) {
				t.Fatalf("%v step %d: pattern %v (%v): stream not sorted in %v order",
					layout, step, pat, s, perm)
			}
		}
	}
}

// TestDynamicIndexRandomOps interleaves Insert/Delete/Select/Merge
// against a map-backed oracle for all four layouts and all eight
// pattern shapes. The skewed dataset and small ID spaces make the edge
// transitions common: re-insert of a pending deletion, delete of a
// pending insertion, repeated no-op writes.
func TestDynamicIndexRandomOps(t *testing.T) {
	for _, layout := range []Layout{Layout3T, LayoutCC, Layout2Tp, Layout2To} {
		t.Run(layout.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(233 + int64(layout)))
			d := skewedDataset(rng, 1000)
			ns, np, no := d.NS, d.NP, d.NO
			x, err := NewDynamic(d, layout, 200)
			if err != nil {
				t.Fatal(err)
			}
			ref := refDynamic{}
			for _, tr := range d.Triples {
				ref[tr] = true
			}

			randTriple := func() Triple {
				return Triple{
					S: ID(rng.Intn(ns)), P: ID(rng.Intn(np)), O: ID(rng.Intn(no)),
				}
			}
			for step := 0; step < 600; step++ {
				tr := randTriple()
				if rng.Intn(2) == 0 {
					changed, err := x.Insert(tr)
					if err != nil {
						t.Fatal(err)
					}
					if changed == ref[tr] {
						t.Fatalf("step %d: Insert(%v) changed=%v but ref contains=%v", step, tr, changed, ref[tr])
					}
					ref[tr] = true
				} else {
					changed, err := x.Delete(tr)
					if err != nil {
						t.Fatal(err)
					}
					if changed != ref[tr] {
						t.Fatalf("step %d: Delete(%v) changed=%v but ref contains=%v", step, tr, changed, ref[tr])
					}
					delete(ref, tr)
				}
				if x.NumTriples() != len(ref) {
					t.Fatalf("step %d: NumTriples = %d, want %d", step, x.NumTriples(), len(ref))
				}
				if x.Lookup(tr) != ref[tr] {
					t.Fatalf("step %d: Lookup(%v) = %v, want %v", step, tr, x.Lookup(tr), ref[tr])
				}
				if step%97 == 0 {
					checkDynamic(t, layout, x.Select, ref, step)
				}
			}
			checkDynamic(t, layout, x.Select, ref, 600)

			// Force a final merge and re-verify: the log must be empty and
			// the results unchanged.
			if err := x.Merge(); err != nil {
				t.Fatal(err)
			}
			if x.LogSize() != 0 {
				t.Fatalf("log not empty after merge: %d", x.LogSize())
			}
			checkDynamic(t, layout, x.Select, ref, 601)
		})
	}
}

// TestDynamicSelectMergesSortedStreams pins the ordering bug directly:
// base results for a one-bound pattern arrive in the layout's permuted
// order (e.g. ascending (p, s) for ?P? on 3T), and logged insertions
// must interleave into that order rather than trail the base stream.
func TestDynamicSelectMergesSortedStreams(t *testing.T) {
	base := []Triple{
		{5, 1, 9}, {6, 1, 2}, {6, 1, 7}, {7, 2, 3},
	}
	for _, layout := range []Layout{Layout3T, LayoutCC, Layout2Tp, Layout2To} {
		x, err := NewDynamic(NewDataset(append([]Triple(nil), base...)), layout, 1000)
		if err != nil {
			t.Fatal(err)
		}
		// SPO-wise these sort late (subject 6/5 high), but in the ?P?
		// emission orders their low objects/subjects interleave early.
		for _, tr := range []Triple{{6, 1, 1}, {5, 1, 3}, {4, 2, 8}} {
			if ok, err := x.Insert(tr); err != nil || !ok {
				t.Fatalf("%v: insert %v: ok=%v err=%v", layout, tr, ok, err)
			}
		}
		for _, p := range []ID{1, 2} {
			pat := Pattern{Wildcard, p, Wildcard}
			got := x.Select(pat).Collect(-1)
			perm := EmitPerm(layout, ShapexPx)
			if !sortedByPerm(got, perm) {
				t.Fatalf("%v: ?%d? stream %v not sorted in %v order", layout, p, got, perm)
			}
		}
		// Delete a base triple in the middle of a run and re-check.
		if ok, err := x.Delete(Triple{6, 1, 2}); err != nil || !ok {
			t.Fatalf("%v: delete: ok=%v err=%v", layout, ok, err)
		}
		got := x.Select(Pattern{Wildcard, 1, Wildcard}).Collect(-1)
		for _, tr := range got {
			if (tr == Triple{6, 1, 2}) {
				t.Fatalf("%v: deleted triple still emitted", layout)
			}
		}
		if !sortedByPerm(got, EmitPerm(layout, ShapexPx)) {
			t.Fatalf("%v: stream unsorted after tombstone skip", layout)
		}
	}
}

// TestDynamicAccounting pins the NumTriples and SizeBits bookkeeping
// that /stats and the bits/triple gate consume: pending deletions
// subtract from the logical count, and every log entry (insertion or
// deletion) charges logBits on top of the static footprint.
func TestDynamicAccounting(t *testing.T) {
	d := NewDataset([]Triple{{0, 0, 0}, {1, 1, 1}, {2, 2, 2}, {3, 3, 3}})
	x, err := NewDynamic(d, Layout2Tp, 1000)
	if err != nil {
		t.Fatal(err)
	}
	baseBits := x.SizeBits()
	if x.NumTriples() != 4 {
		t.Fatalf("NumTriples = %d, want 4", x.NumTriples())
	}
	if _, err := x.Insert(Triple{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if x.NumTriples() != 5 {
		t.Fatalf("after insert: NumTriples = %d, want 5", x.NumTriples())
	}
	if got := x.SizeBits(); got != baseBits+logBits {
		t.Fatalf("after insert: SizeBits = %d, want base+%d = %d", got, logBits, baseBits+logBits)
	}
	if _, err := x.Delete(Triple{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if x.NumTriples() != 4 {
		t.Fatalf("after delete: NumTriples = %d, want 4 (deletion must subtract)", x.NumTriples())
	}
	if got := x.SizeBits(); got != baseBits+2*logBits {
		t.Fatalf("after delete: SizeBits = %d, want base+%d", got, 2*logBits)
	}
	// No-op writes change nothing.
	if _, err := x.Insert(Triple{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := x.Delete(Triple{7, 7, 7}); err != nil {
		t.Fatal(err)
	}
	if x.NumTriples() != 4 || x.SizeBits() != baseBits+2*logBits {
		t.Fatalf("no-op writes moved the accounting: n=%d bits=%d", x.NumTriples(), x.SizeBits())
	}
	// Cancelling the pending deletion empties half the log.
	if _, err := x.Insert(Triple{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if x.NumTriples() != 5 || x.SizeBits() != baseBits+logBits {
		t.Fatalf("resurrect: n=%d bits=%d, want 5 and base+%d", x.NumTriples(), x.SizeBits(), logBits)
	}
}

// TestDynamicSnapshotIsolation takes a snapshot, keeps writing, and
// checks the snapshot still answers from its point in time — the
// property the RCU serving path relies on.
func TestDynamicSnapshotIsolation(t *testing.T) {
	d := NewDataset([]Triple{{1, 1, 1}, {2, 1, 2}})
	x, err := NewDynamic(d, Layout2Tp, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Insert(Triple{3, 1, 3}); err != nil {
		t.Fatal(err)
	}
	snap := x.Snapshot()
	if snap.NumTriples() != 3 {
		t.Fatalf("snapshot NumTriples = %d, want 3", snap.NumTriples())
	}
	// Mutate heavily after the snapshot, crossing a merge.
	for i := 10; i < 40; i++ {
		if _, err := x.Insert(Triple{ID(i), 2, ID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := x.Delete(Triple{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := x.Merge(); err != nil {
		t.Fatal(err)
	}
	got := snap.Select(Pattern{Wildcard, Wildcard, Wildcard}).Collect(-1)
	want := []Triple{{1, 1, 1}, {2, 1, 2}, {3, 1, 3}}
	if !sameTripleSet(got, want) {
		t.Fatalf("snapshot drifted after writes: %v", got)
	}
	if !snap.Lookup(Triple{1, 1, 1}) || snap.Lookup(Triple{11, 2, 11}) {
		t.Fatal("snapshot Lookup reflects post-snapshot writes")
	}
}

func TestDynamicIndexAutoMerge(t *testing.T) {
	d := NewDataset([]Triple{{0, 0, 0}})
	x, err := NewDynamic(d, Layout2Tp, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		if _, err := x.Insert(Triple{S: ID(i % 7), P: ID(i % 3), O: ID(i)}); err != nil {
			t.Fatal(err)
		}
		if x.LogSize() >= 10 {
			t.Fatalf("log size %d reached the threshold without merging", x.LogSize())
		}
	}
	if x.NumTriples() != 51 {
		t.Fatalf("NumTriples = %d, want 51", x.NumTriples())
	}
}

// TestDynamicManualMergeThreshold pins the threshold < 0 contract the
// persistent store uses: the log grows without bound until the caller
// merges.
func TestDynamicManualMergeThreshold(t *testing.T) {
	d := NewDataset([]Triple{{0, 0, 0}})
	x, err := NewDynamic(d, Layout2Tp, -1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		if _, err := x.Insert(Triple{S: ID(i), P: 0, O: ID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if x.LogSize() != 100 {
		t.Fatalf("manual mode merged on its own: log %d, want 100", x.LogSize())
	}
	if err := x.Merge(); err != nil {
		t.Fatal(err)
	}
	if x.LogSize() != 0 || x.NumTriples() != 101 {
		t.Fatalf("after manual merge: log=%d n=%d", x.LogSize(), x.NumTriples())
	}
}

func TestDynamicInsertDeleteIdempotence(t *testing.T) {
	d := NewDataset([]Triple{{1, 1, 1}})
	x, err := NewDynamic(d, Layout3T, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Inserting an existing triple: no change.
	if changed, _ := x.Insert(Triple{1, 1, 1}); changed {
		t.Fatal("Insert of existing triple reported a change")
	}
	// Delete it, then delete again.
	if changed, _ := x.Delete(Triple{1, 1, 1}); !changed {
		t.Fatal("Delete of existing triple reported no change")
	}
	if changed, _ := x.Delete(Triple{1, 1, 1}); changed {
		t.Fatal("second Delete reported a change")
	}
	if x.Lookup(Triple{1, 1, 1}) {
		t.Fatal("deleted triple still visible")
	}
	// Re-insert resurrects it from the deletion log.
	if changed, _ := x.Insert(Triple{1, 1, 1}); !changed {
		t.Fatal("re-insert reported no change")
	}
	if !x.Lookup(Triple{1, 1, 1}) {
		t.Fatal("re-inserted triple not visible")
	}
	if x.NumTriples() != 1 {
		t.Fatalf("NumTriples = %d, want 1", x.NumTriples())
	}
	// Delete-from-added: a logged insertion deleted again leaves no
	// trace in either log.
	if changed, _ := x.Insert(Triple{2, 2, 2}); !changed {
		t.Fatal("insert of new triple reported no change")
	}
	if changed, _ := x.Delete(Triple{2, 2, 2}); !changed {
		t.Fatal("delete of pending insertion reported no change")
	}
	if x.LogSize() != 0 {
		t.Fatalf("insert+delete left log entries: %d", x.LogSize())
	}
}
