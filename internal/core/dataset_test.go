package core

import (
	"math/rand"
	"testing"
)

func TestNewDatasetSortsAndDedupes(t *testing.T) {
	d := NewDataset([]Triple{
		{2, 0, 1}, {0, 1, 2}, {0, 1, 2}, {1, 0, 0}, {0, 0, 5}, {2, 0, 1},
	})
	want := []Triple{{0, 0, 5}, {0, 1, 2}, {1, 0, 0}, {2, 0, 1}}
	if len(d.Triples) != len(want) {
		t.Fatalf("got %d triples, want %d", len(d.Triples), len(want))
	}
	for i := range want {
		if d.Triples[i] != want[i] {
			t.Fatalf("triple %d = %v, want %v", i, d.Triples[i], want[i])
		}
	}
	if d.NS != 3 || d.NP != 2 || d.NO != 6 {
		t.Fatalf("spaces = (%d, %d, %d), want (3, 2, 6)", d.NS, d.NP, d.NO)
	}
}

func statsOracle(ts []Triple) Stats {
	st := Stats{Triples: len(ts)}
	s := map[ID]bool{}
	p := map[ID]bool{}
	o := map[ID]bool{}
	sp := map[[2]ID]bool{}
	po := map[[2]ID]bool{}
	os := map[[2]ID]bool{}
	for _, t := range ts {
		s[t.S] = true
		p[t.P] = true
		o[t.O] = true
		sp[[2]ID{t.S, t.P}] = true
		po[[2]ID{t.P, t.O}] = true
		os[[2]ID{t.O, t.S}] = true
	}
	st.DistinctS, st.DistinctP, st.DistinctO = len(s), len(p), len(o)
	st.PairsSP, st.PairsPO, st.PairsOS = len(sp), len(po), len(os)
	return st
}

func TestComputeStatsAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	ts := make([]Triple, 5000)
	for i := range ts {
		ts[i] = Triple{ID(rng.Intn(200)), ID(rng.Intn(12)), ID(rng.Intn(300))}
	}
	d := NewDataset(ts)
	got := d.ComputeStats()
	want := statsOracle(d.Triples)
	if got != want {
		t.Fatalf("ComputeStats = %+v, want %+v", got, want)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	d := NewDataset(nil)
	if got := d.ComputeStats(); got != (Stats{}) {
		t.Fatalf("stats of empty dataset = %+v", got)
	}
}
