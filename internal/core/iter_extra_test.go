package core

import (
	"math/rand"
	"testing"
)

func TestFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	d := skewedDataset(rng, 800)
	x, err := Build2Tp(d)
	if err != nil {
		t.Fatal(err)
	}
	all := x.Select(NewPattern(-1, 0, -1))
	even := Filter(all, func(tr Triple) bool { return tr.O%2 == 0 })
	count := 0
	for {
		tr, ok := even.Next()
		if !ok {
			break
		}
		if tr.P != 0 || tr.O%2 != 0 {
			t.Fatalf("filtered iterator yielded %v", tr)
		}
		count++
	}
	want := 0
	for _, tr := range d.Triples {
		if tr.P == 0 && tr.O%2 == 0 {
			want++
		}
	}
	if count != want {
		t.Fatalf("filtered count = %d, want %d", count, want)
	}
}

func TestIteratorExhaustionIsSticky(t *testing.T) {
	d := NewDataset([]Triple{{0, 0, 0}})
	x, err := Build2Tp(d)
	if err != nil {
		t.Fatal(err)
	}
	it := x.Select(NewPattern(0, 0, 0))
	if _, ok := it.Next(); !ok {
		t.Fatal("first Next failed")
	}
	for i := 0; i < 3; i++ {
		if _, ok := it.Next(); ok {
			t.Fatal("exhausted iterator produced a triple")
		}
	}
}

func TestSelectOutOfSpaceComponents(t *testing.T) {
	// Patterns with IDs beyond the dense spaces must return no matches on
	// every layout rather than panicking.
	rng := rand.New(rand.NewSource(227))
	d := skewedDataset(rng, 500)
	for name, x := range allLayouts(t, d) {
		for _, pat := range []Pattern{
			{S: ID(d.NS + 5), P: Wildcard, O: Wildcard},
			{S: Wildcard, P: ID(d.NP + 5), O: Wildcard},
			{S: Wildcard, P: Wildcard, O: ID(d.NO + 5)},
			{S: ID(d.NS + 5), P: ID(d.NP + 5), O: ID(d.NO + 5)},
			{S: ID(d.NS + 5), P: Wildcard, O: ID(d.NO + 5)},
		} {
			if got := x.Select(pat).Count(); got != 0 {
				t.Fatalf("%s: out-of-space pattern %v matched %d triples", name, pat, got)
			}
		}
	}
}

func TestCountMatchesCollectLength(t *testing.T) {
	rng := rand.New(rand.NewSource(229))
	d := skewedDataset(rng, 1000)
	x, err := Build3T(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tr := d.Triples[rng.Intn(len(d.Triples))]
		for _, s := range AllShapes() {
			pat := WithWildcards(tr, s)
			if c, l := Count(x, pat), len(x.Select(pat).Collect(-1)); c != l {
				t.Fatalf("Count (%d) != len(Collect) (%d) for %v", c, l, pat)
			}
		}
	}
}
