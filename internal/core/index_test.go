package core

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

// refSelect is the brute-force oracle for pattern matching.
func refSelect(ts []Triple, p Pattern) []Triple {
	var out []Triple
	for _, t := range ts {
		if p.Matches(t) {
			out = append(out, t)
		}
	}
	return out
}

func sortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
}

func sameTripleSet(a, b []Triple) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]Triple(nil), a...)
	bs := append([]Triple(nil), b...)
	sortTriples(as)
	sortTriples(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// skewedDataset mimics the RDF statistics the paper's techniques exploit:
// few, highly associative predicates; low subject out-degree; objects that
// are mostly rare (large ID space) with a small popular head.
func skewedDataset(rng *rand.Rand, n int) *Dataset {
	numS := n/12 + 30
	numP := 15
	popularO := 40
	longO := n/3 + 50
	zipfP := rand.NewZipf(rng, 1.3, 2, uint64(numP-1))
	ts := make([]Triple, 0, n)
	for len(ts) < n {
		s := ID(rng.Intn(numS))
		p := ID(zipfP.Uint64())
		var o ID
		if rng.Intn(100) < 25 {
			o = ID(rng.Intn(popularO))
		} else {
			o = ID(popularO + rng.Intn(longO))
		}
		ts = append(ts, Triple{s, p, o})
	}
	return NewDataset(ts)
}

func allLayouts(t *testing.T, d *Dataset) map[string]Index {
	t.Helper()
	out := map[string]Index{}
	x3, err := Build3T(d)
	if err != nil {
		t.Fatalf("Build3T: %v", err)
	}
	out["3T"] = x3
	cc, err := BuildCC(d)
	if err != nil {
		t.Fatalf("BuildCC: %v", err)
	}
	out["CC"] = cc
	ccAll, err := BuildCC(d, WithCCAllPermutations())
	if err != nil {
		t.Fatalf("BuildCC(all): %v", err)
	}
	out["CC-all"] = ccAll
	p2, err := Build2Tp(d)
	if err != nil {
		t.Fatalf("Build2Tp: %v", err)
	}
	out["2Tp"] = p2
	o2, err := Build2To(d)
	if err != nil {
		t.Fatalf("Build2To: %v", err)
	}
	out["2To"] = o2
	return out
}

func TestAllLayoutsAgainstOracleAllShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	d := skewedDataset(rng, 4000)
	indexes := allLayouts(t, d)

	// Pattern pool: shapes derived from existing triples plus absent ones.
	var patterns []Pattern
	for i := 0; i < 60; i++ {
		tr := d.Triples[rng.Intn(len(d.Triples))]
		for _, s := range AllShapes() {
			patterns = append(patterns, WithWildcards(tr, s))
		}
	}
	// Absent probes: components beyond the used spaces are not possible
	// (dense spaces), so perturb components to likely-absent combos.
	for i := 0; i < 40; i++ {
		tr := d.Triples[rng.Intn(len(d.Triples))]
		tr.O = ID(rng.Intn(d.NO))
		tr.P = ID(rng.Intn(d.NP))
		for _, s := range []Shape{ShapeSPO, ShapeSPx, ShapeSxO, ShapexPO} {
			patterns = append(patterns, WithWildcards(tr, s))
		}
	}

	for name, x := range indexes {
		if x.NumTriples() != d.Len() {
			t.Fatalf("%s: NumTriples = %d, want %d", name, x.NumTriples(), d.Len())
		}
		for _, p := range patterns {
			want := refSelect(d.Triples, p)
			got := x.Select(p).Collect(-1)
			if !sameTripleSet(got, want) {
				t.Fatalf("%s: pattern %v (%v): got %d matches, want %d",
					name, p, p.Shape(), len(got), len(want))
			}
			// Every produced triple must satisfy the pattern.
			for _, m := range got {
				if !p.Matches(m) {
					t.Fatalf("%s: pattern %v yielded non-matching %v", name, p, m)
				}
			}
		}
	}
}

func TestFullScanAllLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	d := skewedDataset(rng, 2000)
	for name, x := range allLayouts(t, d) {
		got := x.Select(NewPattern(-1, -1, -1)).Collect(-1)
		if !sameTripleSet(got, d.Triples) {
			t.Fatalf("%s: full scan returned %d triples, want %d", name, len(got), d.Len())
		}
	}
}

func TestLookupAndCount(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	d := skewedDataset(rng, 1500)
	for name, x := range allLayouts(t, d) {
		for i := 0; i < 100; i++ {
			tr := d.Triples[rng.Intn(len(d.Triples))]
			if !Lookup(x, tr) {
				t.Fatalf("%s: Lookup lost triple %v", name, tr)
			}
		}
		absent := Triple{ID(d.NS - 1), ID(d.NP - 1), ID(d.NO - 1)}
		if refSelect(d.Triples, PatternOf(absent)) == nil && Lookup(x, absent) {
			t.Fatalf("%s: Lookup found absent triple %v", name, absent)
		}
		p := NewPattern(-1, 0, -1)
		if got, want := Count(x, p), len(refSelect(d.Triples, p)); got != want {
			t.Fatalf("%s: Count(?0?) = %d, want %d", name, got, want)
		}
	}
}

func TestSpaceOrderingAcrossLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	d := skewedDataset(rng, 20000)
	x3, _ := Build3T(d)
	cc, _ := BuildCC(d)
	p2, _ := Build2Tp(d)
	o2, _ := Build2To(d)
	// Paper Table 4: 3T > CC > 2To > 2Tp.
	if !(x3.SizeBits() > cc.SizeBits()) {
		t.Errorf("3T (%d bits) not larger than CC (%d bits)", x3.SizeBits(), cc.SizeBits())
	}
	if !(cc.SizeBits() > p2.SizeBits()) {
		t.Errorf("CC (%d bits) not larger than 2Tp (%d bits)", cc.SizeBits(), p2.SizeBits())
	}
	if !(o2.SizeBits() > p2.SizeBits()) {
		t.Errorf("2To (%d bits) not larger than 2Tp (%d bits)", o2.SizeBits(), p2.SizeBits())
	}
	if !(x3.SizeBits() > o2.SizeBits()) {
		t.Errorf("3T (%d bits) not larger than 2To (%d bits)", x3.SizeBits(), o2.SizeBits())
	}
}

func TestEmptyAndTinyDatasets(t *testing.T) {
	for _, triples := range [][]Triple{
		{},
		{{0, 0, 0}},
		{{0, 0, 0}, {0, 0, 1}, {1, 0, 0}},
	} {
		d := NewDataset(append([]Triple(nil), triples...))
		for name, x := range allLayouts(t, d) {
			for _, s := range AllShapes() {
				var pat Pattern
				if len(d.Triples) > 0 {
					pat = WithWildcards(d.Triples[0], s)
				} else {
					pat = NewPattern(-1, -1, -1)
				}
				want := refSelect(d.Triples, pat)
				got := x.Select(pat).Collect(-1)
				if !sameTripleSet(got, want) {
					t.Fatalf("%s (n=%d): pattern %v mismatch", name, len(triples), pat)
				}
			}
		}
	}
}

func TestIndexSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	d := skewedDataset(rng, 2000)
	for name, x := range allLayouts(t, d) {
		var buf bytes.Buffer
		if err := WriteIndex(&buf, x); err != nil {
			t.Fatalf("%s: WriteIndex: %v", name, err)
		}
		got, err := ReadIndex(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: ReadIndex: %v", name, err)
		}
		if got.Layout() != x.Layout() || got.NumTriples() != x.NumTriples() {
			t.Fatalf("%s: decoded header mismatch", name)
		}
		for i := 0; i < 50; i++ {
			tr := d.Triples[rng.Intn(len(d.Triples))]
			for _, s := range AllShapes() {
				pat := WithWildcards(tr, s)
				if !sameTripleSet(got.Select(pat).Collect(-1), x.Select(pat).Collect(-1)) {
					t.Fatalf("%s: decoded index disagrees on %v", name, pat)
				}
			}
		}
	}
}

func TestReadIndexRejectsJunk(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader([]byte("not an index"))); err == nil {
		t.Fatal("ReadIndex accepted junk")
	}
}

func TestBuildDispatch(t *testing.T) {
	d := NewDataset([]Triple{{0, 0, 0}, {1, 1, 1}})
	for _, l := range []Layout{Layout3T, LayoutCC, Layout2Tp, Layout2To} {
		x, err := Build(d, l)
		if err != nil {
			t.Fatalf("Build(%v): %v", l, err)
		}
		if x.Layout() != l {
			t.Fatalf("Build(%v) returned layout %v", l, x.Layout())
		}
	}
	if _, err := Build(d, Layout(99)); err == nil {
		t.Fatal("Build accepted unknown layout")
	}
}

func TestLayoutParse(t *testing.T) {
	for _, l := range []Layout{Layout3T, LayoutCC, Layout2Tp, Layout2To} {
		got, err := ParseLayout(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLayout(%q) = %v, %v", l.String(), got, err)
		}
	}
	if _, err := ParseLayout("9T"); err == nil {
		t.Error("ParseLayout accepted junk")
	}
}

func TestIteratorCollectLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	d := skewedDataset(rng, 500)
	x, _ := Build2Tp(d)
	got := x.Select(NewPattern(-1, -1, -1)).Collect(10)
	if len(got) != 10 {
		t.Fatalf("Collect(10) returned %d triples", len(got))
	}
}
