package core

import (
	"rdfindexes/internal/codec"
	"rdfindexes/internal/seq"
	"rdfindexes/internal/trie"
)

// IndexCC is the cross-compressed index of Section 3.2. Like 3T it keeps
// the SPO, POS and OSP permutations, but the third level of POS stores,
// instead of subject IDs, their positions within the enclosing set of
// children of the object in the OSP trie (Fig. 3 and 4). By default only
// POS is cross-compressed — the paper's choice, since mapping the other
// two permutations yields only modest savings — but the ablation option
// WithCCAllPermutations maps all three.
type IndexCC struct {
	spo, pos, osp *trie.Trie
	all           bool // all three permutations cross-compressed
}

// BuildCC constructs the cross-compressed index.
func BuildCC(d *Dataset, opts ...Option) (*IndexCC, error) {
	o := buildOptions(opts)
	x := &IndexCC{all: o.CCAllPermutations}
	scratch := make([]Triple, len(d.Triples))

	// The mapping of a trie's third level reads only the first two levels
	// of the reference trie, which are never themselves mapped, so the
	// build order below is safe: OSP's own mapping (via SPO) is applied
	// last, by rebuilding it.
	ospCfg := o.trieConfig(PermOSP)
	if _, overridden := o.TrieConfigs[PermOSP]; !overridden {
		// Fast unmap needs O(1) random access to OSP's second level
		// (Section 3.2), so CC models it with Compact.
		ospCfg.Nodes1 = seq.KindCompact
	}
	osp, err := buildTrie(d, scratch, PermOSP, ospCfg)
	if err != nil {
		return nil, err
	}
	x.osp = osp

	pos, err := buildMappedTrie(d, scratch, PermPOS, o.trieConfig(PermPOS), x.mapPOS)
	if err != nil {
		return nil, err
	}
	x.pos = pos

	if !x.all {
		spo, err := buildTrie(d, scratch, PermSPO, o.trieConfig(PermSPO))
		if err != nil {
			return nil, err
		}
		x.spo = spo
		return x, nil
	}

	// Ablation: map SPO's objects via POS and OSP's predicates via SPO.
	spo, err := buildMappedTrie(d, scratch, PermSPO, o.trieConfig(PermSPO), x.mapSPO)
	if err != nil {
		return nil, err
	}
	x.spo = spo
	ospMapped, err := buildMappedTrie(d, scratch, PermOSP, ospCfg, x.mapOSP)
	if err != nil {
		return nil, err
	}
	x.osp = ospMapped
	return x, nil
}

// buildMappedTrie builds the permutation's trie with the third component
// rewritten by mapChild(secondComponent, thirdComponent).
func buildMappedTrie(d *Dataset, scratch []Triple, p Perm, cfg trie.Config,
	mapChild func(ID, ID) (uint64, bool)) (*trie.Trie, error) {
	copy(scratch, d.Triples)
	SortPerm(scratch, p, d.NS, d.NP, d.NO)
	numRoots := p.RootSpace(d.NS, d.NP, d.NO)
	return trie.Build(len(scratch), numRoots, func(i int) (uint32, uint32, uint32) {
		a, b, c := p.Apply(scratch[i])
		m, ok := mapChild(b, c)
		if !ok {
			// Impossible by the subset property of Section 3.2.
			panic("core: cross-compression mapping failed")
		}
		return uint32(a), uint32(b), uint32(m)
	}, cfg)
}

// mapPOS rewrites subject s as its position among the children of object
// o in the OSP trie (the map function of Fig. 4 with i = OSP).
func (x *IndexCC) mapPOS(o, s ID) (uint64, bool) {
	b, e := x.osp.RootRange(uint32(o))
	j := x.osp.FindChild1(b, e, uint32(s))
	if j < 0 {
		return 0, false
	}
	return uint64(j - b), true
}

// unmapPOS recovers the subject from its mapped position (Fig. 4).
func (x *IndexCC) unmapPOS(o ID, v uint64) ID {
	b, _ := x.osp.RootRange(uint32(o))
	return ID(x.osp.Node1At(b, b+int(v)))
}

// mapSPO rewrites object o as its position among the children of
// predicate p in the POS trie.
func (x *IndexCC) mapSPO(p, o ID) (uint64, bool) {
	b, e := x.pos.RootRange(uint32(p))
	j := x.pos.FindChild1(b, e, uint32(o))
	if j < 0 {
		return 0, false
	}
	return uint64(j - b), true
}

func (x *IndexCC) unmapSPO(p ID, v uint64) ID {
	b, _ := x.pos.RootRange(uint32(p))
	return ID(x.pos.Node1At(b, b+int(v)))
}

// mapOSP rewrites predicate p as its position among the children of
// subject s in the SPO trie.
func (x *IndexCC) mapOSP(s, p ID) (uint64, bool) {
	b, e := x.spo.RootRange(uint32(s))
	j := x.spo.FindChild1(b, e, uint32(p))
	if j < 0 {
		return 0, false
	}
	return uint64(j - b), true
}

func (x *IndexCC) unmapOSP(s ID, v uint64) ID {
	b, _ := x.spo.RootRange(uint32(s))
	return ID(x.spo.Node1At(b, b+int(v)))
}

// Layout returns LayoutCC.
func (x *IndexCC) Layout() Layout { return LayoutCC }

// NumTriples returns the number of indexed triples.
func (x *IndexCC) NumTriples() int { return x.spo.NumTriples() }

// SizeBits returns the total storage footprint in bits.
func (x *IndexCC) SizeBits() uint64 {
	return x.spo.SizeBits() + x.pos.SizeBits() + x.osp.SizeBits()
}

// Trie exposes the materialized permutations. Note that mapped third
// levels store positions, not IDs.
func (x *IndexCC) Trie(p Perm) *trie.Trie {
	switch p {
	case PermSPO:
		return x.spo
	case PermPOS:
		return x.pos
	case PermOSP:
		return x.osp
	}
	return nil
}

// Select resolves a pattern with the same dispatch as 3T, applying unmap
// to the third component of every match produced by a mapped trie.
func (x *IndexCC) Select(p Pattern) *Iterator { return x.SelectCtx(p, nil) }

// SelectCtx resolves a pattern like Select, drawing per-query scratch
// from c (which may be nil).
func (x *IndexCC) SelectCtx(p Pattern, c *QueryCtx) *Iterator {
	switch p.Shape() {
	case ShapeSPO:
		if x.all {
			return lookupMapped(c, x.spo, PermSPO, Triple{p.S, p.P, p.O}, x.mapSPO)
		}
		return lookupSPO(c, x.spo, PermSPO, Triple{p.S, p.P, p.O})
	case ShapeSPx:
		if x.all {
			return selectTwoMapped(c, x.spo, PermSPO, p.S, p.P, x.unmapSPO)
		}
		return selectTwo(c, x.spo, PermSPO, p.S, p.P)
	case ShapeSxx:
		if x.all {
			return selectOneMapped(c, x.spo, PermSPO, p.S, x.unmapSPO)
		}
		return selectOne(c, x.spo, PermSPO, p.S)
	case ShapeSxO:
		if x.all {
			return selectTwoMapped(c, x.osp, PermOSP, p.O, p.S, x.unmapOSP)
		}
		return selectTwo(c, x.osp, PermOSP, p.O, p.S)
	case ShapexPO:
		return selectTwoMapped(c, x.pos, PermPOS, p.P, p.O, x.unmapPOS)
	case ShapexPx:
		return selectOneMapped(c, x.pos, PermPOS, p.P, x.unmapPOS)
	case ShapexxO:
		if x.all {
			return selectOneMapped(c, x.osp, PermOSP, p.O, x.unmapOSP)
		}
		return selectOne(c, x.osp, PermOSP, p.O)
	default:
		if x.all {
			return scanAllMapped(c, x.spo, PermSPO, x.unmapSPO)
		}
		return scanAll(c, x.spo, PermSPO)
	}
}

// SelectObjectRange resolves ?P? with the object constrained to [lo, hi],
// unmapping each subject.
func (x *IndexCC) SelectObjectRange(p ID, lo, hi ID) *Iterator {
	return selectObjectRangeOnPOSUnmap(x.pos, p, lo, hi, x.unmapPOS)
}

func (x *IndexCC) encode(w *codec.Writer) {
	flag := byte(0)
	if x.all {
		flag = 1
	}
	w.Byte(flag)
	x.spo.Encode(w)
	x.pos.Encode(w)
	x.osp.Encode(w)
}

func decodeCC(r *codec.Reader) (*IndexCC, error) {
	x := &IndexCC{all: r.Byte() == 1}
	var err error
	if x.spo, err = trie.Decode(r); err != nil {
		return nil, err
	}
	if x.pos, err = trie.Decode(r); err != nil {
		return nil, err
	}
	if x.osp, err = trie.Decode(r); err != nil {
		return nil, err
	}
	return x, nil
}

// lookupMapped is lookupSPO on a trie with a mapped third level: the
// target child is first rewritten with the map function of Fig. 4.
func lookupMapped(qc *QueryCtx, t *trie.Trie, perm Perm, tr Triple,
	mapChild func(ID, ID) (uint64, bool)) *Iterator {
	a, b, c := perm.Apply(tr)
	b1, e1 := t.RootRange(uint32(a))
	j := t.FindChild1(b1, e1, uint32(b))
	if j < 0 {
		return emptyIteratorCtx(qc)
	}
	m, ok := mapChild(b, c)
	if !ok {
		return emptyIteratorCtx(qc)
	}
	b2, e2 := t.ChildRange(j)
	if t.FindChild2(b2, e2, uint32(m)) < 0 {
		return emptyIteratorCtx(qc)
	}
	return singleIteratorCtx(qc, tr)
}

// selectTwoMapped is selectTwo with unmap applied to each completion.
func selectTwoMapped(c *QueryCtx, t *trie.Trie, perm Perm, a, b ID,
	unmap func(ID, uint64) ID) *Iterator {
	return selectTwoUnmap(c, t, perm, a, b, unmap)
}

// selectOneMapped is selectOne with unmap applied to each completion.
func selectOneMapped(c *QueryCtx, t *trie.Trie, perm Perm, a ID,
	unmap func(ID, uint64) ID) *Iterator {
	return selectOneUnmap(c, t, perm, a, unmap)
}

// scanAllMapped is scanAll with unmap applied to each completion.
func scanAllMapped(c *QueryCtx, t *trie.Trie, perm Perm, unmap func(ID, uint64) ID) *Iterator {
	return scanAllUnmap(c, t, perm, unmap)
}
