package core

import (
	"fmt"

	"rdfindexes/internal/codec"
	"rdfindexes/internal/seq"
	"rdfindexes/internal/trie"
)

// Layout identifies an index variant.
type Layout uint8

// The index layouts of the paper.
const (
	Layout3T  Layout = iota // Section 3.1: SPO + POS + OSP
	LayoutCC                // Section 3.2: 3T with cross-compressed POS
	Layout2Tp               // Section 3.3: SPO + POS (predicate-based)
	Layout2To               // Section 3.3: SPO + OPS + PS (object-based)
)

var layoutNames = map[Layout]string{
	Layout3T: "3T", LayoutCC: "CC", Layout2Tp: "2Tp", Layout2To: "2To",
}

// String returns the paper's name for the layout.
func (l Layout) String() string {
	if n, ok := layoutNames[l]; ok {
		return n
	}
	return fmt.Sprintf("Layout(%d)", uint8(l))
}

// ParseLayout parses a layout name as used in the paper.
func ParseLayout(s string) (Layout, error) {
	for l, n := range layoutNames {
		if n == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("core: unknown layout %q", s)
}

// Index is a static compressed triple index resolving the eight selection
// patterns. Implementations outside this package (composed indexes like
// the sharded store) are allowed: serializability is a separate,
// optional capability checked by WriteIndex, not part of the interface.
type Index interface {
	// Layout identifies the index variant.
	Layout() Layout
	// NumTriples returns the number of indexed triples.
	NumTriples() int
	// SizeBits returns the total storage footprint in bits.
	SizeBits() uint64
	// Select returns an iterator over the triples matching the pattern.
	Select(Pattern) *Iterator
	// Trie exposes a materialized permutation, or nil if the layout does
	// not keep it. Used by statistics and benchmarks.
	Trie(Perm) *trie.Trie
}

// encoder is the serialization capability of the four in-package layouts;
// WriteIndex requires it. Composed indexes (dynamic snapshots, sharded
// stores) have their own storage formats and deliberately do not
// implement it.
type encoder interface {
	encode(w *codec.Writer)
}

// BitsPerTriple returns the index space divided by the number of triples.
func BitsPerTriple(x Index) float64 {
	if x.NumTriples() == 0 {
		return 0
	}
	return float64(x.SizeBits()) / float64(x.NumTriples())
}

// Count resolves the pattern and counts its matches.
func Count(x Index, p Pattern) int { return x.Select(p).Count() }

// Lookup reports whether the index contains t.
func Lookup(x Index, t Triple) bool {
	_, ok := x.Select(PatternOf(t)).Next()
	return ok
}

// Options configures index construction.
type Options struct {
	// TrieConfigs overrides the sequence representations of individual
	// permutations; missing entries use the paper's defaults.
	TrieConfigs map[Perm]trie.Config
	// CCAllPermutations applies cross-compression to all three
	// permutations of the CC layout instead of POS only (an ablation; the
	// paper argues it does not pay off, see Section 3.2).
	CCAllPermutations bool
}

// Option mutates Options.
type Option func(*Options)

// WithTrieConfig overrides the trie configuration of one permutation.
func WithTrieConfig(p Perm, cfg trie.Config) Option {
	return func(o *Options) {
		if o.TrieConfigs == nil {
			o.TrieConfigs = map[Perm]trie.Config{}
		}
		o.TrieConfigs[p] = cfg
	}
}

// WithCCAllPermutations enables cross-compression of every permutation in
// the CC layout (ablation).
func WithCCAllPermutations() Option {
	return func(o *Options) { o.CCAllPermutations = true }
}

func buildOptions(opts []Option) Options {
	var o Options
	for _, f := range opts {
		f(&o)
	}
	return o
}

// defaultTrieConfig returns the paper's representation choices: PEF node
// sequences and EF pointers everywhere, except the third level of SPO
// which uses Compact (Section 3.1, "design choices").
func defaultTrieConfig(p Perm) trie.Config {
	cfg := trie.DefaultConfig()
	if p == PermSPO {
		cfg.Nodes2 = seq.KindCompact
	}
	return cfg
}

func (o *Options) trieConfig(p Perm) trie.Config {
	if cfg, ok := o.TrieConfigs[p]; ok {
		return cfg
	}
	return defaultTrieConfig(p)
}

// buildTrie sorts a scratch copy of the triples in the permutation's
// order and builds its trie.
func buildTrie(d *Dataset, scratch []Triple, p Perm, cfg trie.Config) (*trie.Trie, error) {
	copy(scratch, d.Triples)
	SortPerm(scratch, p, d.NS, d.NP, d.NO)
	numRoots := p.RootSpace(d.NS, d.NP, d.NO)
	return trie.Build(len(scratch), numRoots, func(i int) (uint32, uint32, uint32) {
		a, b, c := p.Apply(scratch[i])
		return uint32(a), uint32(b), uint32(c)
	}, cfg)
}

// PS is the two-level predicate-to-subjects structure maintained by the
// 2To layout to resolve ?P? (Section 3.3): for every predicate p, the
// sorted list of subjects appearing in triples with predicate p.
type PS struct {
	ptr      seq.Sequence // NP+1 positions into subjects
	subjects seq.Sequence
}

// buildPS collects the distinct (p, s) pairs of the dataset.
func buildPS(d *Dataset, scratch []Triple) *PS {
	copy(scratch, d.Triples)
	SortPerm(scratch, PermPSO, d.NS, d.NP, d.NO)
	ptr := make([]uint64, 0, d.NP+1)
	var subjects []uint64
	var pp, ps ID
	for i, t := range scratch {
		if i == 0 || t.P != pp {
			for len(ptr) <= int(t.P) {
				ptr = append(ptr, uint64(len(subjects)))
			}
			subjects = append(subjects, uint64(t.S))
		} else if t.S != ps {
			subjects = append(subjects, uint64(t.S))
		}
		pp, ps = t.P, t.S
	}
	for len(ptr) <= d.NP {
		ptr = append(ptr, uint64(len(subjects)))
	}
	ranges := make([]int, len(ptr))
	for i, p := range ptr {
		ranges[i] = int(p)
	}
	if len(ranges) < 2 {
		ranges = []int{0, 0} // empty dataset: no predicates at all
	}
	return &PS{
		ptr:      seq.BuildMono(seq.KindEF, ptr),
		subjects: seq.Build(seq.KindPEF, subjects, ranges),
	}
}

// Range returns the positions [begin, end) of p's subject list.
func (ps *PS) Range(p ID) (int, int) {
	if int(p)+1 >= ps.ptr.Len() {
		return 0, 0
	}
	return int(ps.ptr.At(0, int(p))), int(ps.ptr.At(0, int(p)+1))
}

// Iter iterates the subject IDs in [begin, end).
func (ps *PS) Iter(begin, end int) seq.Iterator { return ps.subjects.Iter(begin, end) }

// SizeBits returns the storage footprint in bits.
func (ps *PS) SizeBits() uint64 { return ps.ptr.SizeBits() + ps.subjects.SizeBits() }

func (ps *PS) encode(w *codec.Writer) {
	seq.Write(w, ps.ptr)
	seq.Write(w, ps.subjects)
}

func decodePS(r *codec.Reader) (*PS, error) {
	ps := &PS{}
	var err error
	if ps.ptr, err = seq.Read(r); err != nil {
		return nil, err
	}
	if ps.subjects, err = seq.Read(r); err != nil {
		return nil, err
	}
	return ps, nil
}
