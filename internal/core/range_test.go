package core

import (
	"bytes"
	"math/rand"
	"testing"

	"rdfindexes/internal/codec"
)

// numericFixture builds a dataset whose object IDs [base, base+len) are
// numeric literals with sorted values, as required by the ID-assignment
// scheme of Section 3.1.
type numericFixture struct {
	d      *Dataset
	r      *R
	values []uint64 // values[k] belongs to object ID base+k
	base   ID
}

func newNumericFixture(rng *rand.Rand, n int) numericFixture {
	base := ID(50) // object IDs below base are non-numeric URIs
	numNumeric := 200
	values := make([]uint64, numNumeric)
	var cur uint64
	for i := range values {
		cur += uint64(rng.Intn(5)) // duplicates allowed
		values[i] = cur
	}
	ts := make([]Triple, 0, n)
	for len(ts) < n {
		s := ID(rng.Intn(150))
		p := ID(rng.Intn(8))
		var o ID
		if rng.Intn(2) == 0 {
			o = base + ID(rng.Intn(numNumeric))
		} else {
			o = ID(rng.Intn(int(base)))
		}
		ts = append(ts, Triple{s, p, o})
	}
	d := NewDataset(ts)
	return numericFixture{d: d, r: NewR(base, values), values: values, base: base}
}

func TestRIDRangeOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	fx := newNumericFixture(rng, 3000)
	maxV := fx.values[len(fx.values)-1]
	for trial := 0; trial < 500; trial++ {
		lo := rng.Uint64() % (maxV + 3)
		hi := rng.Uint64() % (maxV + 3)
		idLo, idHi, ok := fx.r.IDRange(lo, hi)
		// Oracle: scan values.
		wantLo, wantHi := -1, -1
		for k, v := range fx.values {
			if v >= lo && v <= hi {
				if wantLo < 0 {
					wantLo = k
				}
				wantHi = k
			}
		}
		if wantLo < 0 {
			if ok {
				t.Fatalf("IDRange(%d, %d) = (%d, %d, true), want empty", lo, hi, idLo, idHi)
			}
			continue
		}
		if !ok || idLo != fx.base+ID(wantLo) || idHi != fx.base+ID(wantHi) {
			t.Fatalf("IDRange(%d, %d) = (%d, %d, %v), want (%d, %d, true)",
				lo, hi, idLo, idHi, ok, fx.base+ID(wantLo), fx.base+ID(wantHi))
		}
	}
}

func TestSelectValueRangeAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	fx := newNumericFixture(rng, 4000)
	maxV := fx.values[len(fx.values)-1]

	x3, err := Build3T(fx.d)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := BuildCC(fx.d)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Build2Tp(fx.d)
	if err != nil {
		t.Fatal(err)
	}
	selecters := map[string]RangeSelecter{"3T": x3, "CC": cc, "2Tp": p2}

	inRange := func(o ID, lo, hi uint64) bool {
		if o < fx.base || int(o-fx.base) >= len(fx.values) {
			return false
		}
		v := fx.values[o-fx.base]
		return v >= lo && v <= hi
	}

	for trial := 0; trial < 60; trial++ {
		p := ID(rng.Intn(fx.d.NP))
		a := rng.Uint64() % (maxV + 2)
		b := rng.Uint64() % (maxV + 2)
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		var want []Triple
		for _, tr := range fx.d.Triples {
			if tr.P == p && inRange(tr.O, lo, hi) {
				want = append(want, tr)
			}
		}
		for name, x := range selecters {
			got := SelectValueRange(x, fx.r, p, lo, hi).Collect(-1)
			if !sameTripleSet(got, want) {
				t.Fatalf("%s: SelectValueRange(p=%d, [%d, %d]) = %d matches, want %d",
					name, p, lo, hi, len(got), len(want))
			}
		}
	}
}

func TestRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	fx := newNumericFixture(rng, 100)
	var buf bytes.Buffer
	w := codec.NewWriter(&buf)
	fx.r.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeR(codec.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Base() != fx.r.Base() || got.Len() != fx.r.Len() {
		t.Fatal("decoded R header mismatch")
	}
	for k, v := range fx.values {
		if got.Value(fx.base+ID(k)) != v {
			t.Fatalf("decoded Value(%d) = %d, want %d", fx.base+ID(k), got.Value(fx.base+ID(k)), v)
		}
	}
}

func TestRSmallSpace(t *testing.T) {
	// The paper reports < 0.1 bits/triple of extra space on WatDiv; with
	// sorted, dense numeric values the EF representation must stay tiny
	// relative to a realistic triple count.
	values := make([]uint64, 10000)
	for i := range values {
		values[i] = uint64(i * 3)
	}
	r := NewR(0, values)
	perValue := float64(r.SizeBits()) / float64(len(values))
	if perValue > 8 {
		t.Errorf("R takes %.2f bits per numeric value; expected well under a byte", perValue)
	}
}

func TestREmptyAndDegenerate(t *testing.T) {
	r := NewR(10, nil)
	if _, _, ok := r.IDRange(0, 100); ok {
		t.Error("empty R returned a non-empty range")
	}
	one := NewR(3, []uint64{42})
	if lo, hi, ok := one.IDRange(42, 42); !ok || lo != 3 || hi != 3 {
		t.Errorf("IDRange(42, 42) = (%d, %d, %v), want (3, 3, true)", lo, hi, ok)
	}
	if _, _, ok := one.IDRange(43, 41); ok {
		t.Error("inverted bounds returned a range")
	}
}
