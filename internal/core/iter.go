package core

import (
	"rdfindexes/internal/seq"
	"rdfindexes/internal/trie"
)

// triBatch is the number of triples materialized per refill. It is large
// enough to amortize the per-batch virtual calls and small enough that
// the value and triple buffers stay cache-resident.
const triBatch = 256

// Iterator yields the triples matching a selection pattern, in the order
// of the trie that resolves it, with components restored to canonical
// S-P-O form. Results are produced in blocks: the trie algorithms decode
// whole sibling ranges into an internal buffer via seq.Iterator.NextBatch
// and Next just hands out buffered entries, so steady-state iteration
// performs no allocation and no per-triple indirect call.
type Iterator struct {
	buf    []Triple
	pos, n int
	done   bool
	src    blockSource           // block source; fill returning 0 means exhausted
	scalar func() (Triple, bool) // legacy per-triple source
	owner  recycler              // QueryCtx hook, run once on exhaustion
}

// blockSource produces result blocks; the selection algorithm states
// implement it, so wiring one to an Iterator costs no closure allocation.
type blockSource interface {
	fill(out []Triple) int
}

// NewIterator wraps a generator function into an Iterator; used by the
// baseline index implementations outside this package.
func NewIterator(next func() (Triple, bool)) *Iterator { return &Iterator{scalar: next} }

// BlockSource is the exported face of the block-producing iterator
// protocol: Fill writes up to len(out) result triples and returns how
// many were written, 0 iff the source is exhausted. External index
// compositions (the sharded scatter-gather merge) implement it to plug
// into the same zero-allocation NextBatch pipeline the in-package
// selection algorithms use.
type BlockSource interface {
	Fill(out []Triple) int
}

// externalSrc adapts an exported BlockSource to the unexported protocol.
// It is a value (not a pointer), so wiring costs no allocation beyond
// the interface header.
type externalSrc struct{ s BlockSource }

func (e externalSrc) fill(out []Triple) int { return e.s.Fill(out) }

// NewBlockIterator wraps a BlockSource into an Iterator, giving external
// block producers the same batched drain path (Next, NextBatch, Count,
// Collect) as the native selection algorithms.
func NewBlockIterator(src BlockSource) *Iterator {
	it := &Iterator{}
	it.src = externalSrc{s: src}
	return it
}

// EmptyIterator returns an iterator with no results.
func EmptyIterator() *Iterator { return emptyIterator() }

// SingleIterator returns an iterator yielding exactly t.
func SingleIterator(t Triple) *Iterator { return singleIterator(t) }

// reinit prepares an embedded Iterator for a fresh query, keeping its
// grown buffer across reuses.
func (it *Iterator) reinit(src blockSource, owner recycler) {
	it.pos, it.n = 0, 0
	it.done = false
	it.src = src
	it.scalar = nil
	it.owner = owner
}

// drop runs the exhaustion hook once: the backing state returns to its
// QueryCtx free list and the source is detached so no further call can
// reach recycled state.
func (it *Iterator) drop() {
	if it.owner == nil {
		return
	}
	o := it.owner
	it.owner = nil
	it.src = nil
	o.recycle()
}

// Next returns the next matching triple, or ok=false when exhausted.
//
//rdf:hotpath
func (it *Iterator) Next() (Triple, bool) {
	if it.pos < it.n {
		t := it.buf[it.pos]
		it.pos++
		return t, true
	}
	return it.nextSlow()
}

// nextSlow refills the buffer (or falls back to the scalar source) after
// the fast path in Next misses.
//
//rdf:hotpath
func (it *Iterator) nextSlow() (Triple, bool) {
	if it.done {
		// Literal iterators are born done with buffered content; their
		// state recycles once that content is drained.
		it.drop()
		return Triple{}, false
	}
	if it.src == nil {
		if it.scalar != nil {
			if t, ok := it.scalar(); ok {
				return t, true
			}
		}
		it.done = true
		return Triple{}, false
	}
	if it.refill() == 0 {
		it.done = true
		it.drop()
		return Triple{}, false
	}
	it.pos = 1
	return it.buf[0], true
}

// refill grows the buffer geometrically — selective patterns never pay
// for a full block, exhaustive drains quickly reach triBatch — and runs
// the block source once.
func (it *Iterator) refill() int {
	if it.buf == nil {
		it.buf = make([]Triple, 8)
	} else if it.n == len(it.buf) && len(it.buf) < triBatch {
		n := len(it.buf) * 4
		if n > triBatch {
			n = triBatch
		}
		it.buf = make([]Triple, n)
	}
	n := it.src.fill(it.buf)
	it.pos, it.n = 0, n
	return n
}

// NextBatch fills out with up to len(out) triples and returns how many
// were written; 0 iff the iterator is exhausted. Block-producing
// iterators decode straight into out, so a caller that drains through
// NextBatch with a reusable buffer performs zero allocations per triple.
//
//rdf:hotpath
func (it *Iterator) NextBatch(out []Triple) int {
	n := 0
	for n < len(out) {
		if it.pos < it.n {
			c := copy(out[n:], it.buf[it.pos:it.n])
			it.pos += c
			n += c
			continue
		}
		if it.done {
			it.drop()
			break
		}
		if it.src != nil {
			k := it.src.fill(out[n:])
			if k == 0 {
				it.done = true
				it.drop()
				break
			}
			n += k
			continue
		}
		if it.scalar == nil {
			it.done = true
			break
		}
		t, ok := it.scalar()
		if !ok {
			it.done = true
			break
		}
		out[n] = t
		n++
	}
	return n
}

// Count drains the iterator and returns the number of triples.
func (it *Iterator) Count() int {
	n := it.n - it.pos
	it.pos = it.n
	if it.done {
		it.drop()
		return n
	}
	if it.src != nil {
		for {
			k := it.refill()
			if k == 0 {
				break
			}
			n += k
		}
		it.pos = it.n
		it.done = true
		it.drop()
		return n
	}
	if it.scalar != nil {
		for {
			if _, ok := it.scalar(); !ok {
				break
			}
			n++
		}
	}
	it.done = true
	return n
}

// Collect drains the iterator into a slice, stopping after limit triples
// if limit >= 0.
func (it *Iterator) Collect(limit int) []Triple {
	var out []Triple
	var chunk [triBatch]Triple
	for limit < 0 || len(out) < limit {
		want := len(chunk)
		if limit >= 0 && limit-len(out) < want {
			want = limit - len(out)
		}
		k := it.NextBatch(chunk[:want])
		if k == 0 {
			break
		}
		out = append(out, chunk[:k]...)
	}
	return out
}

func emptyIterator() *Iterator {
	return &Iterator{done: true}
}

func singleIterator(t Triple) *Iterator {
	return &Iterator{buf: []Triple{t}, n: 1, done: true}
}

// emptyIteratorCtx and singleIteratorCtx draw the literal-result
// iterator from the ctx pool when one is available.
func emptyIteratorCtx(c *QueryCtx) *Iterator {
	if c == nil {
		return emptyIterator()
	}
	return &c.getLit(0).it
}

func singleIteratorCtx(c *QueryCtx, t Triple) *Iterator {
	if c == nil {
		return singleIterator(t)
	}
	st := c.getLit(1)
	st.t[0] = t
	return &st.it
}

// restoreBatch writes perm.Restore(a, b, vals[i]) into out[i], hoisting
// the permutation dispatch out of the per-triple loop.
//
//rdf:hotpath
func restoreBatch(perm Perm, a, b ID, vals []uint64, out []Triple) {
	switch perm {
	case PermSPO:
		for i, v := range vals {
			out[i] = Triple{a, b, ID(v)}
		}
	case PermSOP:
		for i, v := range vals {
			out[i] = Triple{a, ID(v), b}
		}
	case PermPSO:
		for i, v := range vals {
			out[i] = Triple{b, a, ID(v)}
		}
	case PermPOS:
		for i, v := range vals {
			out[i] = Triple{ID(v), a, b}
		}
	case PermOSP:
		for i, v := range vals {
			out[i] = Triple{b, ID(v), a}
		}
	case PermOPS:
		for i, v := range vals {
			out[i] = Triple{ID(v), b, a}
		}
	}
}

// valBuf returns a scratch slice of up to k decoded values, growing the
// backing store geometrically so short selections never zero a full
// block.
func valBuf(p *[]uint64, k int) []uint64 {
	if k > triBatch {
		k = triBatch
	}
	if cap(*p) < k {
		n := 8
		for n < k {
			n *= 4
		}
		*p = make([]uint64, n)
	}
	return (*p)[:k]
}

// lookupSPO resolves the fully-specified pattern on any trie: two find
// operations (Section 3.1).
func lookupSPO(qc *QueryCtx, t *trie.Trie, perm Perm, tr Triple) *Iterator {
	a, b, c := perm.Apply(tr)
	b1, e1 := t.RootRange(uint32(a))
	j := t.FindChild1(b1, e1, uint32(b))
	if j < 0 {
		return emptyIteratorCtx(qc)
	}
	b2, e2 := t.ChildRange(j)
	if t.FindChild2(b2, e2, uint32(c)) < 0 {
		return emptyIteratorCtx(qc)
	}
	return singleIteratorCtx(qc, tr)
}

// selectTwoState resolves a pattern with the first two components fixed:
// the completions of one third-level range, decoded in blocks.
type selectTwoState struct {
	perm  Perm
	a, b  ID
	left  int        // elements remaining in the range
	t     *trie.Trie // trie the cursor below belongs to
	it2   seq.Iterator
	unmap func(ID, uint64) ID // nil unless cross-compressed
	c     *QueryCtx
	it    Iterator
	vals  []uint64
	vals0 [8]uint64
}

//rdf:hotpath
func (st *selectTwoState) fill(out []Triple) int {
	k := len(out)
	if k > st.left {
		k = st.left
	}
	vals := valBuf(&st.vals, k)
	n := st.it2.NextBatch(vals)
	st.left -= n
	if st.unmap != nil {
		for i := range vals[:n] {
			vals[i] = uint64(st.unmap(st.b, vals[i]))
		}
	}
	restoreBatch(st.perm, st.a, st.b, vals[:n], out[:n])
	return n
}

// selectTwo implements the select algorithm of Fig. 2 with the first two
// components fixed: one find on the second level, then a block-decoded
// scan of the completions on the third. A recycled state whose cursor
// already belongs to t is repositioned with Reset instead of allocating
// a fresh compressed-sequence iterator.
func selectTwo(c *QueryCtx, t *trie.Trie, perm Perm, a, b ID) *Iterator {
	return selectTwoUnmap(c, t, perm, a, b, nil)
}

func selectTwoUnmap(c *QueryCtx, t *trie.Trie, perm Perm, a, b ID, unmap func(ID, uint64) ID) *Iterator {
	b1, e1 := t.RootRange(uint32(a))
	j := t.FindChild1(b1, e1, uint32(b))
	if j < 0 {
		return emptyIteratorCtx(c)
	}
	b2, e2 := t.ChildRange(j)
	st := c.getSelectTwo(t)
	st.perm, st.a, st.b, st.left, st.unmap = perm, a, b, e2-b2, unmap
	if st.t == t && st.it2 != nil {
		st.it2.Reset(b2, b2, e2)
	} else {
		st.t = t
		st.it2 = t.Iter2(b2, e2)
	}
	return &st.it
}

// selectOneState walks the children of one root and their completions.
// Sibling ranges of the third level are contiguous, so a single reusable
// level-2 iterator is repositioned with Reset per child, which carries
// the prefix-sum base over instead of paying a random access.
type selectOneState struct {
	perm      Perm
	a, curB   ID
	t         *trie.Trie
	it1       seq.Iterator
	ptrIt     seq.Iterator
	it2       seq.Iterator
	it2Active bool
	prev      int
	left      int
	unmap     func(ID, uint64) ID
	c         *QueryCtx
	it        Iterator
	vals      []uint64
	vals0     [8]uint64
}

//rdf:hotpath
func (st *selectOneState) fill(out []Triple) int {
	n := 0
	for n < len(out) {
		if st.it2Active {
			k := len(out) - n
			if k > st.left {
				k = st.left
			}
			vals := valBuf(&st.vals, k)
			m := st.it2.NextBatch(vals)
			st.left -= m
			if m > 0 {
				if st.unmap != nil {
					for i := range vals[:m] {
						vals[i] = uint64(st.unmap(st.curB, vals[i]))
					}
				}
				restoreBatch(st.perm, st.a, st.curB, vals[:m], out[n:n+m])
				n += m
				continue
			}
			st.it2Active = false
		}
		bv, ok := st.it1.Next()
		if !ok {
			break
		}
		st.curB = ID(bv)
		endv, _ := st.ptrIt.Next()
		b2, e2 := st.prev, int(endv)
		st.prev = e2
		if st.it2 == nil {
			st.it2 = st.t.Iter2(b2, e2)
		} else {
			st.it2.Reset(b2, b2, e2)
		}
		st.left = e2 - b2
		st.it2Active = true
	}
	return n
}

// selectOne implements the select algorithm of Fig. 2 with only the first
// component fixed: scan the children and their completions. Sibling
// ranges are delimited by a sequential pointer iterator.
func selectOne(c *QueryCtx, t *trie.Trie, perm Perm, a ID) *Iterator {
	return selectOneUnmap(c, t, perm, a, nil)
}

func selectOneUnmap(c *QueryCtx, t *trie.Trie, perm Perm, a ID, unmap func(ID, uint64) ID) *Iterator {
	b1, e1 := t.RootRange(uint32(a))
	if b1 >= e1 {
		return emptyIteratorCtx(c)
	}
	st := c.getSelectOne(t)
	st.perm, st.a, st.unmap = perm, a, unmap
	if st.t == t && st.it1 != nil {
		st.it1.Reset(b1, b1, e1)
		st.ptrIt.Reset(0, b1, e1+1)
	} else {
		st.t = t
		st.it1 = t.Iter1(b1, e1)
		st.ptrIt = t.Ptr1Iter(b1, e1+1)
		st.it2 = nil
	}
	first, _ := st.ptrIt.Next()
	st.prev = int(first)
	return &st.it
}

// scanAllState enumerates the whole trie (the ??? pattern). The level-1
// node and pointer sequences are consumed by single sequential cursors:
// sibling ranges of consecutive roots are contiguous, so the level-1
// iterator is repositioned with the cheap contiguous Reset, and the
// pointer value closing one range opens the next.
type scanAllState struct {
	perm      Perm
	t         *trie.Trie
	root      int
	pos1, e1  int
	prev      int
	curB      ID
	it1       seq.Iterator
	ptrIt     seq.Iterator
	it2       seq.Iterator
	it2Active bool
	left      int
	unmap     func(ID, uint64) ID
	c         *QueryCtx
	it        Iterator
	vals      []uint64
	vals0     [8]uint64
}

//rdf:hotpath
func (st *scanAllState) fill(out []Triple) int {
	n := 0
	for n < len(out) {
		if st.it2Active {
			k := len(out) - n
			if k > st.left {
				k = st.left
			}
			vals := valBuf(&st.vals, k)
			m := st.it2.NextBatch(vals)
			st.left -= m
			if m > 0 {
				if st.unmap != nil {
					for i := range vals[:m] {
						vals[i] = uint64(st.unmap(st.curB, vals[i]))
					}
				}
				restoreBatch(st.perm, ID(st.root), st.curB, vals[:m], out[n:n+m])
				n += m
				continue
			}
			st.it2Active = false
		}
		if st.pos1 < st.e1 {
			bv, _ := st.it1.Next()
			st.curB = ID(bv)
			endv, _ := st.ptrIt.Next()
			b2, e2 := st.prev, int(endv)
			st.prev = e2
			st.pos1++
			if st.it2 == nil {
				st.it2 = st.t.Iter2(b2, e2)
			} else {
				st.it2.Reset(b2, b2, e2)
			}
			st.left = e2 - b2
			st.it2Active = true
			continue
		}
		// Advance to the next non-empty root.
		var b1 int
		for {
			st.root++
			if st.root >= st.t.NumRoots() {
				return n
			}
			b1, st.e1 = st.t.RootRange(uint32(st.root))
			if b1 < st.e1 {
				break
			}
		}
		st.pos1 = b1
		if st.it1 == nil {
			st.it1 = st.t.Iter1(b1, st.e1)
			st.ptrIt = st.t.Ptr1Iter(b1, st.t.NumInternal()+1)
			first, _ := st.ptrIt.Next()
			st.prev = int(first)
		} else {
			// Level-1 ranges of consecutive non-empty roots are
			// contiguous, and the pointer closing the previous range
			// (held in prev) already delimits the next one, so the
			// pointer cursor just keeps streaming.
			st.it1.Reset(b1, b1, st.e1)
		}
	}
	return n
}

// scanAll enumerates the whole trie (the ??? pattern).
func scanAll(c *QueryCtx, t *trie.Trie, perm Perm) *Iterator {
	return scanAllUnmap(c, t, perm, nil)
}

func scanAllUnmap(c *QueryCtx, t *trie.Trie, perm Perm, unmap func(ID, uint64) ID) *Iterator {
	st := c.getScanAll()
	if st.t != t {
		st.t = t
		st.it2 = nil
	}
	st.perm, st.root, st.unmap = perm, -1, unmap
	return &st.it
}

// enumerateState implements the algorithm of Fig. 5, resolving S?O
// directly on the SPO permutation: for each predicate child of s, one
// find among its objects. The subject's few children are walked with
// sequential node and pointer iterators, which is where the algorithm's
// advantage over percolating the OSP trie comes from (Section 3.3).
type enumerateState struct {
	spo          *trie.Trie
	s, o         ID
	ptrIt        seq.Iterator
	prev         int
	pos1, b1, e1 int
	c            *QueryCtx
	it           Iterator
}

//rdf:hotpath
func (st *enumerateState) fill(out []Triple) int {
	n := 0
	for st.pos1 < st.e1 && n < len(out) {
		endv, _ := st.ptrIt.Next()
		jb, je := st.prev, int(endv)
		st.prev = je
		j := st.pos1
		st.pos1++
		if st.spo.FindChild2(jb, je, uint32(st.o)) >= 0 {
			// Fetch the predicate only for matches (the pseudocode of
			// Fig. 5 reads levels[1].nodes[i] per iteration; deferring
			// it to hits avoids decoding the node sequence at all for
			// the misses, which dominate).
			out[n] = Triple{st.s, ID(st.spo.Node1At(st.b1, j)), st.o}
			n++
		}
	}
	return n
}

func enumerate(c *QueryCtx, spo *trie.Trie, s, o ID) *Iterator {
	b1, e1 := spo.RootRange(uint32(s))
	if b1 >= e1 {
		return emptyIteratorCtx(c)
	}
	st := c.getEnumerate()
	st.s, st.o, st.b1, st.e1, st.pos1 = s, o, b1, e1, b1
	if st.spo == spo && st.ptrIt != nil {
		st.ptrIt.Reset(0, b1, e1+1)
	} else {
		st.spo = spo
		st.ptrIt = spo.Ptr1Iter(b1, e1+1)
	}
	first, _ := st.ptrIt.Next()
	st.prev = int(first)
	return &st.it
}

// invertedPOSState resolves ??O on the POS permutation (the 2Tp fallback
// of Section 3.3): |P| find operations locate o among each predicate's
// children; matching subject ranges are decoded in blocks.
type invertedPOSState struct {
	pos       *trie.Trie
	o, curP   ID
	p         int
	it2       seq.Iterator
	it2Active bool
	left      int
	c         *QueryCtx
	it        Iterator
	vals      []uint64
	vals0     [8]uint64
}

//rdf:hotpath
func (st *invertedPOSState) fill(out []Triple) int {
	n := 0
	for n < len(out) {
		if st.it2Active {
			k := len(out) - n
			if k > st.left {
				k = st.left
			}
			vals := valBuf(&st.vals, k)
			m := st.it2.NextBatch(vals)
			st.left -= m
			if m > 0 {
				restoreBatch(PermPOS, st.curP, st.o, vals[:m], out[n:n+m])
				n += m
				continue
			}
			st.it2Active = false
		}
		st.p++
		if st.p >= st.pos.NumRoots() {
			break
		}
		b1, e1 := st.pos.RootRange(uint32(st.p))
		j := st.pos.FindChild1(b1, e1, uint32(st.o))
		if j < 0 {
			continue
		}
		st.curP = ID(st.p)
		b2, e2 := st.pos.ChildRange(j)
		if st.it2 == nil {
			st.it2 = st.pos.Iter2(b2, e2)
		} else {
			st.it2.Reset(b2, b2, e2)
		}
		st.left = e2 - b2
		st.it2Active = true
	}
	return n
}

func invertedOnPOS(c *QueryCtx, pos *trie.Trie, o ID) *Iterator {
	st := c.getInvertedPOS()
	if st.pos != pos {
		st.pos = pos
		st.it2 = nil
	}
	st.o, st.p = o, -1
	return &st.it
}

// invertedPSState resolves ?P? for 2To (Section 3.3): walk the PS
// structure's subject list of p and pattern match (s, p, ?) on SPO for
// each subject.
type invertedPSState struct {
	ps        *PS
	spo       *trie.Trie
	p, curS   ID
	subjects  seq.Iterator
	it2       seq.Iterator
	it2Active bool
	left      int
	c         *QueryCtx
	it        Iterator
	vals      []uint64
	vals0     [8]uint64
}

//rdf:hotpath
func (st *invertedPSState) fill(out []Triple) int {
	n := 0
	for n < len(out) {
		if st.it2Active {
			k := len(out) - n
			if k > st.left {
				k = st.left
			}
			vals := valBuf(&st.vals, k)
			m := st.it2.NextBatch(vals)
			st.left -= m
			if m > 0 {
				restoreBatch(PermSPO, st.curS, st.p, vals[:m], out[n:n+m])
				n += m
				continue
			}
			st.it2Active = false
		}
		sv, ok := st.subjects.Next()
		if !ok {
			break
		}
		// (s, p, ?) on SPO: every subject in the PS list has at least
		// one triple with predicate p, so the find always succeeds.
		b1, e1 := st.spo.RootRange(uint32(sv))
		j := st.spo.FindChild1(b1, e1, uint32(st.p))
		if j < 0 {
			continue
		}
		st.curS = ID(sv)
		b2, e2 := st.spo.ChildRange(j)
		if st.it2 == nil {
			st.it2 = st.spo.Iter2(b2, e2)
		} else {
			st.it2.Reset(b2, b2, e2)
		}
		st.left = e2 - b2
		st.it2Active = true
	}
	return n
}

func invertedOnPS(c *QueryCtx, ps *PS, spo *trie.Trie, p ID) *Iterator {
	b, e := ps.Range(p)
	if b >= e {
		return emptyIteratorCtx(c)
	}
	st := c.getInvertedPS()
	st.p = p
	if st.ps == ps && st.subjects != nil {
		st.subjects.Reset(b, b, e)
	} else {
		st.ps = ps
		st.subjects = ps.Iter(b, e)
	}
	if st.spo != spo {
		st.spo = spo
		st.it2 = nil
	}
	return &st.it
}

// filterState yields only the triples of inner satisfying keep.
type filterState struct {
	inner *Iterator
	keep  func(Triple) bool
	it    Iterator
	tmp   [triBatch]Triple
}

//rdf:hotpath
func (st *filterState) fill(out []Triple) int {
	for {
		k := len(out)
		if k > len(st.tmp) {
			k = len(st.tmp)
		}
		m := st.inner.NextBatch(st.tmp[:k])
		if m == 0 {
			return 0
		}
		n := 0
		for _, t := range st.tmp[:m] {
			if st.keep(t) {
				out[n] = t
				n++
			}
		}
		if n > 0 {
			return n
		}
	}
}

// Filter yields only the triples of inner satisfying keep.
func Filter(inner *Iterator, keep func(Triple) bool) *Iterator {
	st := &filterState{inner: inner, keep: keep}
	st.it.src = st
	return &st.it
}
