package core

import (
	"rdfindexes/internal/seq"
	"rdfindexes/internal/trie"
)

// Iterator yields the triples matching a selection pattern, in the order
// of the trie that resolves it, with components restored to canonical
// S-P-O form.
type Iterator struct {
	next func() (Triple, bool)
}

// NewIterator wraps a generator function into an Iterator; used by the
// baseline index implementations outside this package.
func NewIterator(next func() (Triple, bool)) *Iterator { return &Iterator{next: next} }

// EmptyIterator returns an iterator with no results.
func EmptyIterator() *Iterator { return emptyIterator() }

// SingleIterator returns an iterator yielding exactly t.
func SingleIterator(t Triple) *Iterator { return singleIterator(t) }

// Next returns the next matching triple, or ok=false when exhausted.
func (it *Iterator) Next() (Triple, bool) { return it.next() }

// Count drains the iterator and returns the number of triples.
func (it *Iterator) Count() int {
	n := 0
	for {
		if _, ok := it.next(); !ok {
			return n
		}
		n++
	}
}

// Collect drains the iterator into a slice, stopping after limit triples
// if limit >= 0.
func (it *Iterator) Collect(limit int) []Triple {
	var out []Triple
	for limit < 0 || len(out) < limit {
		t, ok := it.next()
		if !ok {
			break
		}
		out = append(out, t)
	}
	return out
}

func emptyIterator() *Iterator {
	return &Iterator{next: func() (Triple, bool) { return Triple{}, false }}
}

func singleIterator(t Triple) *Iterator {
	done := false
	return &Iterator{next: func() (Triple, bool) {
		if done {
			return Triple{}, false
		}
		done = true
		return t, true
	}}
}

// lookupSPO resolves the fully-specified pattern on any trie: two find
// operations (Section 3.1).
func lookupSPO(t *trie.Trie, perm Perm, tr Triple) *Iterator {
	a, b, c := perm.Apply(tr)
	b1, e1 := t.RootRange(uint32(a))
	j := t.FindChild1(b1, e1, uint32(b))
	if j < 0 {
		return emptyIterator()
	}
	b2, e2 := t.ChildRange(j)
	if t.FindChild2(b2, e2, uint32(c)) < 0 {
		return emptyIterator()
	}
	return singleIterator(tr)
}

// selectTwo implements the select algorithm of Fig. 2 with the first two
// components fixed: one find on the second level, then a scan of the
// completions on the third.
func selectTwo(t *trie.Trie, perm Perm, a, b ID) *Iterator {
	b1, e1 := t.RootRange(uint32(a))
	j := t.FindChild1(b1, e1, uint32(b))
	if j < 0 {
		return emptyIterator()
	}
	b2, e2 := t.ChildRange(j)
	it := t.Iter2(b2, e2)
	return &Iterator{next: func() (Triple, bool) {
		v, ok := it.Next()
		if !ok {
			return Triple{}, false
		}
		return perm.Restore(a, b, ID(v)), true
	}}
}

// selectOne implements the select algorithm of Fig. 2 with only the first
// component fixed: scan the children and their completions. Sibling
// ranges are delimited by a sequential pointer iterator.
func selectOne(t *trie.Trie, perm Perm, a ID) *Iterator {
	b1, e1 := t.RootRange(uint32(a))
	if b1 >= e1 {
		return emptyIterator()
	}
	it1 := t.Iter1(b1, e1)
	ptrIt := t.Ptr1Iter(b1, e1+1)
	first, _ := ptrIt.Next()
	prev := int(first)
	var (
		curB ID
		it2  seq.Iterator
	)
	return &Iterator{next: func() (Triple, bool) {
		for {
			if it2 != nil {
				if v, ok := it2.Next(); ok {
					return perm.Restore(a, curB, ID(v)), true
				}
				it2 = nil
			}
			bv, ok := it1.Next()
			if !ok {
				return Triple{}, false
			}
			curB = ID(bv)
			endv, _ := ptrIt.Next()
			b2, e2 := prev, int(endv)
			prev = e2
			it2 = t.Iter2(b2, e2)
		}
	}}
}

// scanAll enumerates the whole trie (the ??? pattern).
func scanAll(t *trie.Trie, perm Perm) *Iterator {
	var (
		root   = -1
		pos1   = 0
		prev   = 0
		curB   ID
		it1    seq.Iterator
		ptrIt  seq.Iterator
		it2    seq.Iterator
		b1, e1 int
	)
	return &Iterator{next: func() (Triple, bool) {
		for {
			if it2 != nil {
				if v, ok := it2.Next(); ok {
					return perm.Restore(ID(root), curB, ID(v)), true
				}
				it2 = nil
			}
			if it1 != nil && pos1 < e1 {
				bv, _ := it1.Next()
				curB = ID(bv)
				endv, _ := ptrIt.Next()
				b2, e2 := prev, int(endv)
				prev = e2
				pos1++
				it2 = t.Iter2(b2, e2)
				continue
			}
			it1 = nil
			// advance to the next non-empty root
			for {
				root++
				if root >= t.NumRoots() {
					return Triple{}, false
				}
				b1, e1 = t.RootRange(uint32(root))
				if b1 < e1 {
					break
				}
			}
			pos1 = b1
			it1 = t.Iter1(b1, e1)
			ptrIt = t.Ptr1Iter(b1, e1+1)
			first, _ := ptrIt.Next()
			prev = int(first)
		}
	}}
}

// enumerate implements the algorithm of Fig. 5, resolving S?O directly on
// the SPO permutation: for each predicate child of s, one find among its
// objects. The subject's few children are walked with sequential node and
// pointer iterators, which is where the algorithm's advantage over
// percolating the OSP trie comes from (Section 3.3).
func enumerate(spo *trie.Trie, s, o ID) *Iterator {
	b1, e1 := spo.RootRange(uint32(s))
	if b1 >= e1 {
		return emptyIterator()
	}
	ptrIt := spo.Ptr1Iter(b1, e1+1)
	first, _ := ptrIt.Next()
	prev := int(first)
	pos1 := b1
	return &Iterator{next: func() (Triple, bool) {
		for pos1 < e1 {
			endv, _ := ptrIt.Next()
			jb, je := prev, int(endv)
			prev = je
			j := pos1
			pos1++
			if spo.FindChild2(jb, je, uint32(o)) >= 0 {
				// Fetch the predicate only for matches (the pseudocode of
				// Fig. 5 reads levels[1].nodes[i] per iteration; deferring
				// it to hits avoids decoding the node sequence at all for
				// the misses, which dominate).
				return Triple{s, ID(spo.Node1At(b1, j)), o}, true
			}
		}
		return Triple{}, false
	}}
}

// invertedOnPOS resolves ??O on the POS permutation (the 2Tp fallback of
// Section 3.3): |P| find operations locate o among each predicate's
// children.
func invertedOnPOS(pos *trie.Trie, o ID) *Iterator {
	p := -1
	var (
		it2  seq.Iterator
		curP ID
	)
	return &Iterator{next: func() (Triple, bool) {
		for {
			if it2 != nil {
				if v, ok := it2.Next(); ok {
					return Triple{ID(v), curP, o}, true
				}
				it2 = nil
			}
			p++
			if p >= pos.NumRoots() {
				return Triple{}, false
			}
			b1, e1 := pos.RootRange(uint32(p))
			j := pos.FindChild1(b1, e1, uint32(o))
			if j < 0 {
				continue
			}
			curP = ID(p)
			b2, e2 := pos.ChildRange(j)
			it2 = pos.Iter2(b2, e2)
		}
	}}
}

// invertedOnPS resolves ?P? for 2To (Section 3.3): walk the PS structure's
// subject list of p and pattern match (s, p, ?) on SPO for each subject.
func invertedOnPS(ps *PS, spo *trie.Trie, p ID) *Iterator {
	b, e := ps.Range(p)
	if b >= e {
		return emptyIterator()
	}
	subjects := ps.Iter(b, e)
	var (
		curS ID
		it2  seq.Iterator
	)
	return &Iterator{next: func() (Triple, bool) {
		for {
			if it2 != nil {
				if v, ok := it2.Next(); ok {
					return Triple{curS, p, ID(v)}, true
				}
				it2 = nil
			}
			sv, ok := subjects.Next()
			if !ok {
				return Triple{}, false
			}
			// (s, p, ?) on SPO: every subject in the PS list has at least
			// one triple with predicate p, so the find always succeeds.
			b1, e1 := spo.RootRange(uint32(sv))
			j := spo.FindChild1(b1, e1, uint32(p))
			if j < 0 {
				continue
			}
			curS = ID(sv)
			b2, e2 := spo.ChildRange(j)
			it2 = spo.Iter2(b2, e2)
		}
	}}
}

// Filter yields only the triples of inner satisfying keep.
func Filter(inner *Iterator, keep func(Triple) bool) *Iterator {
	return &Iterator{next: func() (Triple, bool) {
		for {
			t, ok := inner.next()
			if !ok {
				return Triple{}, false
			}
			if keep(t) {
				return t, true
			}
		}
	}}
}
