package core

import (
	"math/rand"
	"sync"
	"testing"
)

// drainWith collects an iterator through the ctx batch buffer.
func drainWith(qc *QueryCtx, it *Iterator) []Triple {
	var out []Triple
	buf := qc.Batch()
	for {
		k := it.NextBatch(buf)
		if k == 0 {
			return out
		}
		out = append(out, buf[:k]...)
	}
}

// TestSelectCtxMatchesSelect runs every shape on every layout twice —
// once through a plain Select, once through a heavily reused QueryCtx —
// and requires identical results. The ctx path reuses selection states
// and compressed-sequence cursors across queries, so this exercises the
// reset paths for every algorithm.
func TestSelectCtxMatchesSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	d := skewedDataset(rng, 3000)
	qc := AcquireQueryCtx()
	defer qc.Release()
	for name, x := range allLayouts(t, d) {
		cs, ok := x.(CtxSelecter)
		if !ok {
			t.Fatalf("%s does not implement CtxSelecter", name)
		}
		for i := 0; i < 150; i++ {
			tr := d.Triples[rng.Intn(len(d.Triples))]
			shape := Shape(rng.Intn(int(NumShapes)))
			if shape == Shapexxx && i%37 != 0 {
				continue // full scans are slow; keep a few
			}
			pat := WithWildcards(tr, shape)
			want := x.Select(pat).Collect(-1)
			got := drainWith(qc, cs.SelectCtx(pat, qc))
			if len(got) != len(want) {
				t.Fatalf("%s %v: ctx path returned %d triples, want %d", name, pat, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("%s %v: triple %d mismatch: %v != %v", name, pat, j, got[j], want[j])
				}
			}
		}
	}
}

// TestQueryCtxRecycling verifies that exhausted iterators return their
// states to the ctx free lists and that the next query actually reuses
// them instead of allocating.
func TestQueryCtxRecycling(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	d := skewedDataset(rng, 2000)
	x, err := Build2Tp(d)
	if err != nil {
		t.Fatal(err)
	}
	qc := AcquireQueryCtx()
	defer qc.Release()
	// The pool may hand back a ctx warmed by an earlier test; start from
	// a known-empty free list.
	qc.free2 = nil
	tr := d.Triples[len(d.Triples)/2]
	pat := WithWildcards(tr, ShapeSPx)

	// Warm up: the first query allocates the state and recycles it on
	// exhaustion.
	drainWith(qc, x.SelectCtx(pat, qc))
	if len(qc.free2) != 1 {
		t.Fatalf("after drain, free2 has %d states, want 1", len(qc.free2))
	}
	st := qc.free2[0]
	drainWith(qc, x.SelectCtx(pat, qc))
	if len(qc.free2) != 1 || qc.free2[0] != st {
		t.Fatalf("second query did not reuse the recycled state")
	}

	// Steady state is allocation-free for the per-triple work: only the
	// result append in the test harness allocates, so measure a pure
	// count drain.
	allocs := testing.AllocsPerRun(50, func() {
		it := x.SelectCtx(pat, qc)
		buf := qc.Batch()
		for it.NextBatch(buf) > 0 {
		}
	})
	if allocs > 0 {
		t.Errorf("ctx steady-state drain allocates %.1f objects/query, want 0", allocs)
	}
}

// TestQueryCtxPartialDrainAbandonment checks that abandoning an
// unexhausted iterator neither corrupts the ctx nor recycles its state
// early: a fresh query after abandonment must not alias the live state.
func TestQueryCtxPartialDrainAbandonment(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := skewedDataset(rng, 2000)
	x, err := Build3T(d)
	if err != nil {
		t.Fatal(err)
	}
	qc := AcquireQueryCtx()
	defer qc.Release()
	tr := d.Triples[0]
	pat := WithWildcards(tr, ShapeSxx)

	it := x.SelectCtx(pat, qc)
	first, ok := it.Next() // partially consumed, then abandoned
	if !ok {
		t.Fatal("expected at least one match")
	}
	got := drainWith(qc, x.SelectCtx(pat, qc))
	want := x.Select(pat).Collect(-1)
	if len(got) != len(want) {
		t.Fatalf("query after abandonment returned %d triples, want %d", len(got), len(want))
	}
	if got[0] != first {
		t.Fatalf("first triple changed after abandonment: %v != %v", got[0], first)
	}
}

// TestQueryCtxConcurrent fires goroutines each owning a private ctx at
// one shared index; run with -race. This is the "one index, N
// goroutines" contract with pooling in play.
func TestQueryCtxConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	d := skewedDataset(rng, 3000)
	for name, x := range allLayouts(t, d) {
		x := x
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var wg sync.WaitGroup
			errs := make(chan string, 16)
			for g := 0; g < 16; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					local := rand.New(rand.NewSource(seed))
					qc := AcquireQueryCtx()
					defer qc.Release()
					buf := qc.Batch()
					for i := 0; i < 120; i++ {
						tr := d.Triples[local.Intn(len(d.Triples))]
						shape := Shape(local.Intn(int(NumShapes - 1))) // skip ??? for speed
						pat := WithWildcards(tr, shape)
						it := SelectWithCtx(x, pat, qc)
						found := false
						for {
							k := it.NextBatch(buf)
							if k == 0 {
								break
							}
							for _, m := range buf[:k] {
								if m == tr {
									found = true
								}
								if !pat.Matches(m) {
									errs <- "non-matching triple from " + pat.Shape().String()
									return
								}
							}
						}
						if !found {
							errs <- "source triple missing from " + pat.Shape().String()
							return
						}
					}
				}(int64(g))
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Fatal(e)
			}
		})
	}
}
