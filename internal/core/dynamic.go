package core

import (
	"fmt"
	"sort"
)

// DynamicIndex implements the amortized update strategy sketched in
// Section 3.1 of the paper: the static index is paired with a small
// in-memory log of insertions and deletions; queries consult both and
// merge, and when the log reaches a threshold it is merged into a freshly
// rebuilt static index.
type DynamicIndex struct {
	layout    Layout
	opts      []Option
	threshold int

	base    Index
	added   []Triple // sorted, distinct, disjoint from base
	deleted []Triple // sorted, distinct, all present in base
}

// DefaultMergeThreshold is the default log size triggering a merge.
const DefaultMergeThreshold = 1 << 16

// NewDynamic builds a dynamic index over an initial dataset. threshold
// <= 0 selects DefaultMergeThreshold.
func NewDynamic(d *Dataset, layout Layout, threshold int, opts ...Option) (*DynamicIndex, error) {
	if threshold <= 0 {
		threshold = DefaultMergeThreshold
	}
	base, err := Build(d, layout, opts...)
	if err != nil {
		return nil, err
	}
	return &DynamicIndex{layout: layout, opts: opts, threshold: threshold, base: base}, nil
}

// Layout returns the layout of the underlying static index.
func (x *DynamicIndex) Layout() Layout { return x.layout }

// NumTriples returns the logical triple count (base + inserted - deleted).
func (x *DynamicIndex) NumTriples() int {
	return x.base.NumTriples() + len(x.added) - len(x.deleted)
}

// LogSize returns the number of pending updates.
func (x *DynamicIndex) LogSize() int { return len(x.added) + len(x.deleted) }

// SizeBits returns the static index footprint plus the log.
func (x *DynamicIndex) SizeBits() uint64 {
	return x.base.SizeBits() + uint64(len(x.added)+len(x.deleted))*96
}

func searchTriple(ts []Triple, t Triple) (int, bool) {
	i := sort.Search(len(ts), func(j int) bool { return !ts[j].Less(t) })
	return i, i < len(ts) && ts[i] == t
}

func insertAt(ts []Triple, i int, t Triple) []Triple {
	ts = append(ts, Triple{})
	copy(ts[i+1:], ts[i:])
	ts[i] = t
	return ts
}

func removeAt(ts []Triple, i int) []Triple {
	copy(ts[i:], ts[i+1:])
	return ts[:len(ts)-1]
}

// Insert adds a triple. It returns true if the logical set changed, and
// merges the log when it exceeds the threshold.
func (x *DynamicIndex) Insert(t Triple) (bool, error) {
	if i, ok := searchTriple(x.deleted, t); ok {
		// Re-insertion of a base triple that was pending deletion.
		x.deleted = removeAt(x.deleted, i)
		return true, nil
	}
	if Lookup(x.base, t) {
		return false, nil
	}
	i, ok := searchTriple(x.added, t)
	if ok {
		return false, nil
	}
	x.added = insertAt(x.added, i, t)
	return true, x.maybeMerge()
}

// Delete removes a triple. It returns true if the logical set changed.
func (x *DynamicIndex) Delete(t Triple) (bool, error) {
	if i, ok := searchTriple(x.added, t); ok {
		x.added = removeAt(x.added, i)
		return true, nil
	}
	if !Lookup(x.base, t) {
		return false, nil
	}
	i, ok := searchTriple(x.deleted, t)
	if ok {
		return false, nil
	}
	x.deleted = insertAt(x.deleted, i, t)
	return true, x.maybeMerge()
}

func (x *DynamicIndex) maybeMerge() error {
	if x.LogSize() < x.threshold {
		return nil
	}
	return x.Merge()
}

// Merge folds the log into a rebuilt static index ("whenever the small
// index reaches a predefined size, its content is merged with the one of
// the main, static, index").
func (x *DynamicIndex) Merge() error {
	if x.LogSize() == 0 {
		return nil
	}
	merged := make([]Triple, 0, x.NumTriples())
	it := x.base.Select(Pattern{Wildcard, Wildcard, Wildcard})
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		if _, del := searchTriple(x.deleted, t); !del {
			merged = append(merged, t)
		}
	}
	merged = append(merged, x.added...)
	d := NewDataset(merged)
	base, err := Build(d, x.layout, x.opts...)
	if err != nil {
		return fmt.Errorf("core: merge rebuild failed: %w", err)
	}
	x.base = base
	x.added = nil
	x.deleted = nil
	return nil
}

// Select resolves a pattern against the static index and the log: base
// matches not pending deletion, then log insertions matching the
// pattern ("queries also need to involve both indexes and their results
// have to be merged accordingly").
func (x *DynamicIndex) Select(p Pattern) *Iterator {
	baseIt := x.base.Select(p)
	deleted := x.deleted
	inBase := true
	addPos := 0
	added := x.added
	return NewIterator(func() (Triple, bool) {
		if inBase {
			for {
				t, ok := baseIt.Next()
				if !ok {
					inBase = false
					break
				}
				if _, del := searchTriple(deleted, t); !del {
					return t, true
				}
			}
		}
		for addPos < len(added) {
			t := added[addPos]
			addPos++
			if p.Matches(t) {
				return t, true
			}
		}
		return Triple{}, false
	})
}

// Lookup reports whether the dynamic index contains t.
func (x *DynamicIndex) Lookup(t Triple) bool {
	_, ok := x.Select(PatternOf(t)).Next()
	return ok
}
