package core

import (
	"fmt"
	"sort"

	"rdfindexes/internal/trie"
)

// DynamicIndex implements the amortized update strategy sketched in
// Section 3.1 of the paper: the static index is paired with a small
// in-memory log of insertions and deletions; queries consult both and
// merge, and when the log reaches a threshold it is merged into a freshly
// rebuilt static index.
//
// A DynamicIndex is single-writer: Insert, Delete and Merge need external
// synchronization. Concurrent readers must not call Select on the index
// directly while writes are possible; they take an immutable Snapshot
// (O(1): the copy-on-write log slices are shared) and query that. The
// serving stack in internal/store publishes snapshots through an atomic
// pointer so the read path stays lock-free.
type DynamicIndex struct {
	layout    Layout
	opts      []Option
	threshold int

	base    Index
	added   []Triple // SPO-sorted, distinct, disjoint from base
	deleted []Triple // SPO-sorted, distinct, all present in base
}

// DefaultMergeThreshold is the default log size triggering a merge.
const DefaultMergeThreshold = 1 << 16

// NewDynamic builds a dynamic index over an initial dataset. threshold
// == 0 selects DefaultMergeThreshold; threshold < 0 disables automatic
// merging entirely (the caller drives Merge, as the persistent store
// does to fold dictionaries and rewrite files atomically).
func NewDynamic(d *Dataset, layout Layout, threshold int, opts ...Option) (*DynamicIndex, error) {
	base, err := Build(d, layout, opts...)
	if err != nil {
		return nil, err
	}
	return NewDynamicFromIndex(base, threshold, opts...), nil
}

// NewDynamicFromIndex wraps an already-built static index (e.g. one
// loaded from disk) with an empty update log. Threshold semantics match
// NewDynamic.
func NewDynamicFromIndex(base Index, threshold int, opts ...Option) *DynamicIndex {
	if threshold == 0 {
		threshold = DefaultMergeThreshold
	}
	return &DynamicIndex{layout: base.Layout(), opts: opts, threshold: threshold, base: base}
}

// Layout returns the layout of the underlying static index.
func (x *DynamicIndex) Layout() Layout { return x.layout }

// Base returns the current static index. It is replaced wholesale by
// Merge, never mutated.
func (x *DynamicIndex) Base() Index { return x.base }

// NumTriples returns the logical triple count (base + inserted - deleted).
// The Insert/Delete invariants — added is disjoint from the base, deleted
// is a subset of the base, and the two logs are disjoint — make the sum
// exact.
func (x *DynamicIndex) NumTriples() int {
	return x.base.NumTriples() + len(x.added) - len(x.deleted)
}

// LogSize returns the number of pending updates.
func (x *DynamicIndex) LogSize() int { return len(x.added) + len(x.deleted) }

// logBits is the in-memory charge per pending log entry: one Triple
// (3 x 32 bits).
const logBits = 96

// SizeBits returns the static index footprint plus the log: every pending
// insertion and deletion is charged at logBits, so /stats and the
// bits/triple gate see the update log the moment dynamic indexes are
// served.
func (x *DynamicIndex) SizeBits() uint64 {
	return x.base.SizeBits() + uint64(len(x.added)+len(x.deleted))*logBits
}

func searchTriple(ts []Triple, t Triple) (int, bool) {
	i := sort.Search(len(ts), func(j int) bool { return !ts[j].Less(t) })
	return i, i < len(ts) && ts[i] == t
}

// insertAt and removeAt are copy-on-write: they build a fresh slice
// instead of shifting in place (same O(n) cost), so log slices handed
// out by Snapshot — and captured by in-flight Select iterators — are
// never mutated by later writes. That is what makes Snapshot O(1).

func insertAt(ts []Triple, i int, t Triple) []Triple {
	out := make([]Triple, len(ts)+1)
	copy(out, ts[:i])
	out[i] = t
	copy(out[i+1:], ts[i:])
	return out
}

func removeAt(ts []Triple, i int) []Triple {
	out := make([]Triple, 0, len(ts)-1)
	out = append(out, ts[:i]...)
	return append(out, ts[i+1:]...)
}

// Insert adds a triple. It returns true if the logical set changed, and
// merges the log when it exceeds the threshold.
func (x *DynamicIndex) Insert(t Triple) (bool, error) {
	if i, ok := searchTriple(x.deleted, t); ok {
		// Re-insertion of a base triple that was pending deletion.
		x.deleted = removeAt(x.deleted, i)
		return true, nil
	}
	if Lookup(x.base, t) {
		return false, nil
	}
	i, ok := searchTriple(x.added, t)
	if ok {
		return false, nil
	}
	x.added = insertAt(x.added, i, t)
	return true, x.maybeMerge()
}

// Delete removes a triple. It returns true if the logical set changed.
func (x *DynamicIndex) Delete(t Triple) (bool, error) {
	if i, ok := searchTriple(x.added, t); ok {
		x.added = removeAt(x.added, i)
		return true, nil
	}
	if !Lookup(x.base, t) {
		return false, nil
	}
	i, ok := searchTriple(x.deleted, t)
	if ok {
		return false, nil
	}
	x.deleted = insertAt(x.deleted, i, t)
	return true, x.maybeMerge()
}

func (x *DynamicIndex) maybeMerge() error {
	if x.threshold < 0 || x.LogSize() < x.threshold {
		return nil
	}
	return x.Merge()
}

// Merge folds the log into a rebuilt static index ("whenever the small
// index reaches a predefined size, its content is merged with the one of
// the main, static, index").
func (x *DynamicIndex) Merge() error {
	if x.LogSize() == 0 {
		return nil
	}
	d := NewDataset(x.LiveTriples())
	base, err := Build(d, x.layout, x.opts...)
	if err != nil {
		return fmt.Errorf("core: merge rebuild failed: %w", err)
	}
	x.base = base
	x.added = nil
	x.deleted = nil
	return nil
}

// LiveTriples materializes the logical triple set: base matches not
// pending deletion, plus the insertion log. The persistent store uses it
// to rebuild the static index with remapped dictionary IDs at merge.
func (x *DynamicIndex) LiveTriples() []Triple {
	out := make([]Triple, 0, x.NumTriples())
	it := x.base.Select(Pattern{Wildcard, Wildcard, Wildcard})
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		if _, del := searchTriple(x.deleted, t); !del {
			out = append(out, t)
		}
	}
	return append(out, x.added...)
}

// Snapshot returns an immutable view of the current logical state, in
// O(1): the base index is shared (it is never mutated, only replaced),
// and the log slices are shared too, because every write replaces them
// copy-on-write (see insertAt/removeAt) rather than shifting in place.
func (x *DynamicIndex) Snapshot() *DynamicSnapshot {
	return &DynamicSnapshot{
		layout:  x.layout,
		base:    x.base,
		added:   x.added,
		deleted: x.deleted,
	}
}

// Select resolves a pattern against the static index and the log with
// the same two-way sorted merge as DynamicSnapshot.Select. The slices
// captured here are never mutated in place (copy-on-write writes), so
// the iterator stays valid even if the externally synchronized writer
// advances before it drains.
func (x *DynamicIndex) Select(p Pattern) *Iterator {
	return selectMerged(x.layout, x.base, x.added, x.deleted, p, nil)
}

// Lookup reports whether the dynamic index contains t.
func (x *DynamicIndex) Lookup(t Triple) bool {
	if _, ok := searchTriple(x.added, t); ok {
		return true
	}
	if _, ok := searchTriple(x.deleted, t); ok {
		return false
	}
	return Lookup(x.base, t)
}

// EmitPerm returns the permutation order in which the layout's Select
// emits the triples of a pattern shape. It mirrors the SelectCtx dispatch
// of each index: every selection algorithm walks one trie (or the PS
// structure) in its lexicographic order, and the CC layout's
// cross-compressed levels store sibling ranks, which are monotone in the
// original IDs, so mapped tries emit in the same order as plain ones.
// Fully-bound SPO lookups emit at most one triple; any perm works.
func EmitPerm(l Layout, s Shape) Perm {
	switch l {
	case Layout3T, LayoutCC:
		switch s {
		case ShapeSxO, ShapexxO:
			return PermOSP
		case ShapexPO, ShapexPx:
			return PermPOS
		default:
			return PermSPO
		}
	case Layout2Tp:
		switch s {
		case ShapexPO, ShapexPx, ShapexxO:
			// ??O is resolved by the inverted scan over the POS trie:
			// ascending predicate, then subject, for the fixed object.
			return PermPOS
		default:
			// S?O enumerates ascending predicates for fixed (s, o), which
			// coincides with SPO order.
			return PermSPO
		}
	default: // Layout2To
		switch s {
		case ShapexPO, ShapexxO:
			return PermOPS
		case ShapexPx:
			// ?P? walks the PS structure: ascending subject, then object,
			// for the fixed predicate.
			return PermPSO
		default:
			return PermSPO
		}
	}
}

// matchingRange narrows an SPO-sorted log slice to the smallest
// contiguous range that can contain matches of p: a (S) or (S, P)
// prefix binary search when those components are bound, the whole slice
// otherwise. Entries inside the range still need a Matches filter; the
// point is that fully- and subject-bound patterns — the bulk of point
// queries and BGP inner loops — stop paying a scan over the entire log.
func matchingRange(ts []Triple, p Pattern) []Triple {
	if p.S == Wildcard {
		return ts
	}
	lo := sort.Search(len(ts), func(i int) bool { return ts[i].S >= p.S })
	hi := lo + sort.Search(len(ts)-lo, func(i int) bool { return ts[lo+i].S > p.S })
	ts = ts[lo:hi]
	if p.P == Wildcard {
		return ts
	}
	lo = sort.Search(len(ts), func(i int) bool {
		return ts[i].P >= p.P
	})
	hi = lo + sort.Search(len(ts)-lo, func(i int) bool { return ts[lo+i].P > p.P })
	return ts[lo:hi]
}

// PermLess reports whether t precedes u in the permutation's
// lexicographic order.
func PermLess(p Perm, t, u Triple) bool {
	ta, tb, tc := p.Apply(t)
	ua, ub, uc := p.Apply(u)
	if ta != ua {
		return ta < ua
	}
	if tb != ub {
		return tb < ub
	}
	return tc < uc
}

// DynamicSnapshot is an immutable point-in-time view of a DynamicIndex.
// It implements Index (and CtxSelecter), so the whole read stack —
// pooled QueryCtx selection, the SPARQL executor, the HTTP server —
// serves it exactly like a static index while a single writer keeps
// advancing the live DynamicIndex underneath.
type DynamicSnapshot struct {
	layout  Layout
	base    Index
	added   []Triple // SPO-sorted, distinct, disjoint from base
	deleted []Triple // SPO-sorted, distinct, all present in base
}

// Layout returns the layout of the underlying static index.
func (x *DynamicSnapshot) Layout() Layout { return x.layout }

// Base returns the shared static index of the snapshot.
func (x *DynamicSnapshot) Base() Index { return x.base }

// LogSize returns the number of pending updates in the snapshot.
func (x *DynamicSnapshot) LogSize() int { return len(x.added) + len(x.deleted) }

// NumTriples returns the logical triple count.
func (x *DynamicSnapshot) NumTriples() int {
	return x.base.NumTriples() + len(x.added) - len(x.deleted)
}

// SizeBits returns the static index footprint plus the log.
func (x *DynamicSnapshot) SizeBits() uint64 {
	return x.base.SizeBits() + uint64(len(x.added)+len(x.deleted))*logBits
}

// Trie exposes the base index's materialized permutations. The log is
// not trie-shaped, so callers see the static core only; statistics over
// a snapshot should prefer NumTriples/SizeBits.
func (x *DynamicSnapshot) Trie(p Perm) *trie.Trie { return x.base.Trie(p) }

// Lookup reports whether the snapshot contains t.
func (x *DynamicSnapshot) Lookup(t Triple) bool {
	if _, ok := searchTriple(x.added, t); ok {
		return true
	}
	if _, ok := searchTriple(x.deleted, t); ok {
		return false
	}
	return Lookup(x.base, t)
}

// Select resolves a pattern against the base index and the log with a
// two-way sorted merge ("queries also need to involve both indexes and
// their results have to be merged accordingly"): base results arrive in
// the layout's emission order for the shape, the matching slice of the
// SPO-sorted insertion log is re-sorted into that same order, and
// base-side matches pending deletion are skipped.
func (x *DynamicSnapshot) Select(p Pattern) *Iterator { return x.SelectCtx(p, nil) }

// SelectCtx resolves a pattern like Select, drawing base-index scratch
// from c (which may be nil).
func (x *DynamicSnapshot) SelectCtx(p Pattern, c *QueryCtx) *Iterator {
	return selectMerged(x.layout, x.base, x.added, x.deleted, p, c)
}

// selectMerged builds the merged log+base iterator shared by
// DynamicIndex.Select and DynamicSnapshot.SelectCtx. added and deleted
// must stay unmutated while the iterator is live.
func selectMerged(layout Layout, base Index, added, deleted []Triple, p Pattern, c *QueryCtx) *Iterator {
	if len(added) == 0 && len(deleted) == 0 {
		return SelectWithCtx(base, p, c)
	}
	perm := EmitPerm(layout, p.Shape())
	var add []Triple
	for _, t := range matchingRange(added, p) {
		if p.Matches(t) {
			add = append(add, t)
		}
	}
	if len(add) > 1 {
		sort.Slice(add, func(i, j int) bool { return PermLess(perm, add[i], add[j]) })
	}
	baseIt := SelectWithCtx(base, p, c)
	var pend Triple
	havePend := false
	baseDone := false
	addPos := 0
	return NewIterator(func() (Triple, bool) {
		if !havePend && !baseDone {
			for {
				t, ok := baseIt.Next()
				if !ok {
					baseDone = true
					break
				}
				if _, del := searchTriple(deleted, t); !del {
					pend, havePend = t, true
					break
				}
			}
		}
		if havePend {
			// The insertion log is disjoint from the base, so the merge
			// never sees equal keys.
			if addPos < len(add) && PermLess(perm, add[addPos], pend) {
				t := add[addPos]
				addPos++
				return t, true
			}
			havePend = false
			return pend, true
		}
		if addPos < len(add) {
			t := add[addPos]
			addPos++
			return t, true
		}
		return Triple{}, false
	})
}
