package core

import (
	"math/rand"
	"testing"
)

// TestSteadyStateAllocations asserts the block-decoded pipeline's
// allocation contract: one Select plus a full drain through NextBatch
// performs only the constant handful of setup allocations (iterator
// state and per-level cursors), independent of how many triples stream
// out — i.e. zero allocations per triple in steady state.
func TestSteadyStateAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	d := skewedDataset(rng, 20000)
	for name, x := range allLayouts(t, d) {
		x := x
		t.Run(name, func(t *testing.T) {
			var buf [512]Triple
			for _, shape := range AllShapes() {
				// Pick a pattern with a healthy number of matches so a
				// per-triple allocation would dominate the measurement.
				var pat Pattern
				matches := 0
				for _, tr := range d.Triples[:200] {
					p := WithWildcards(tr, shape)
					if n := x.Select(p).Count(); n > matches {
						matches = n
						pat = p
					}
				}
				if matches == 0 {
					continue
				}
				got := 0
				allocs := testing.AllocsPerRun(10, func() {
					it := x.Select(pat)
					got = 0
					for {
						k := it.NextBatch(buf[:])
						if k == 0 {
							break
						}
						got += k
					}
				})
				if got != matches {
					t.Fatalf("%s: drained %d, want %d", shape, got, matches)
				}
				// Setup allocations only: the bound is deliberately far
				// below the match counts of the broad shapes, so any
				// per-triple or per-sibling-range allocation fails it.
				const maxSetupAllocs = 16
				if allocs > maxSetupAllocs {
					t.Errorf("%s (%d matches): %.1f allocs per select+drain, want <= %d",
						shape, matches, allocs, maxSetupAllocs)
				}
				if matches >= 100 && allocs/float64(matches) > 0.05 {
					t.Errorf("%s: %.4f allocs per triple, want ~0", shape, allocs/float64(matches))
				}
			}
		})
	}
}

// TestCountMatchesNextBatchAndCollect cross-checks the three drain paths
// of the buffered iterator on every layout and shape.
func TestCountMatchesNextBatchAndCollect(t *testing.T) {
	rng := rand.New(rand.NewSource(277))
	d := skewedDataset(rng, 5000)
	for name, x := range allLayouts(t, d) {
		for _, shape := range AllShapes() {
			for _, tr := range d.Triples[:50] {
				pat := WithWildcards(tr, shape)
				want := 0
				it := x.Select(pat)
				for {
					if _, ok := it.Next(); !ok {
						break
					}
					want++
				}
				if got := x.Select(pat).Count(); got != want {
					t.Fatalf("%s/%s: Count = %d, Next-drain = %d", name, shape, got, want)
				}
				if got := len(x.Select(pat).Collect(-1)); got != want {
					t.Fatalf("%s/%s: Collect = %d, Next-drain = %d", name, shape, got, want)
				}
				var buf [33]Triple
				got := 0
				bit := x.Select(pat)
				for {
					k := bit.NextBatch(buf[:])
					if k == 0 {
						break
					}
					for _, m := range buf[:k] {
						if !pat.Matches(m) {
							t.Fatalf("%s/%s: NextBatch produced non-matching %v", name, shape, m)
						}
					}
					got += k
				}
				if got != want {
					t.Fatalf("%s/%s: NextBatch-drain = %d, Next-drain = %d", name, shape, got, want)
				}
			}
		}
	}
}

// TestMixedNextAndNextBatch interleaves scalar and batched reads on one
// iterator; the buffered entries must hand over seamlessly.
func TestMixedNextAndNextBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(281))
	d := skewedDataset(rng, 4000)
	x, err := Build(d, Layout3T)
	if err != nil {
		t.Fatal(err)
	}
	pat := Pattern{S: Wildcard, P: d.Triples[0].P, O: Wildcard}
	want := x.Select(pat).Collect(-1)
	it := x.Select(pat)
	var got []Triple
	var buf [7]Triple
	for i := 0; ; i++ {
		if i%2 == 0 {
			tr, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, tr)
		} else {
			k := it.NextBatch(buf[:])
			if k == 0 {
				break
			}
			got = append(got, buf[:k]...)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("mixed drain: %d triples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mixed drain: pos %d = %v, want %v", i, got[i], want[i])
		}
	}
}
