// Package core implements the paper's contribution: the permuted trie
// index over integer RDF triples in its three variants — 3T (Section 3.1),
// CC with cross-compression (Section 3.2) and the two-trie layouts 2Tp and
// 2To (Section 3.3) — together with the select, enumerate and inverted
// pattern-matching algorithms, range queries, and dataset statistics.
package core

import "fmt"

// ID identifies a subject, predicate or object. Subjects, predicates and
// objects live in separate dense ID spaces so that trie first levels are
// complete integer ranges.
type ID uint32

// Wildcard is the pattern component that matches every ID.
const Wildcard = ID(^uint32(0))

// MaxID is the largest usable ID (Wildcard is reserved).
const MaxID = Wildcard - 1

// Triple is an RDF statement with components mapped to IDs.
type Triple struct {
	S, P, O ID
}

// String formats the triple as (s, p, o).
func (t Triple) String() string { return fmt.Sprintf("(%d, %d, %d)", t.S, t.P, t.O) }

// Less reports whether t precedes u in SPO lexicographic order.
func (t Triple) Less(u Triple) bool {
	if t.S != u.S {
		return t.S < u.S
	}
	if t.P != u.P {
		return t.P < u.P
	}
	return t.O < u.O
}

// Pattern is a triple selection pattern: each component is an ID or
// Wildcard.
type Pattern struct {
	S, P, O ID
}

// NewPattern builds a pattern from ints, mapping negative values to
// Wildcard.
func NewPattern(s, p, o int) Pattern {
	conv := func(x int) ID {
		if x < 0 {
			return Wildcard
		}
		return ID(x)
	}
	return Pattern{conv(s), conv(p), conv(o)}
}

// PatternOf returns the pattern that matches exactly t.
func PatternOf(t Triple) Pattern { return Pattern{t.S, t.P, t.O} }

// Matches reports whether t satisfies the pattern.
func (p Pattern) Matches(t Triple) bool {
	return (p.S == Wildcard || p.S == t.S) &&
		(p.P == Wildcard || p.P == t.P) &&
		(p.O == Wildcard || p.O == t.O)
}

// Shape classifies a pattern by which components are fixed.
type Shape uint8

// The eight triple selection patterns of the paper (x denotes a
// wildcard).
const (
	ShapeSPO Shape = iota
	ShapeSPx
	ShapeSxO
	ShapeSxx
	ShapexPO
	ShapexPx
	ShapexxO
	Shapexxx
	NumShapes = 8
)

var shapeNames = [NumShapes]string{"SPO", "SP?", "S?O", "S??", "?PO", "?P?", "??O", "???"}

// String returns the paper's notation for the shape, e.g. "S?O".
func (s Shape) String() string {
	if int(s) < len(shapeNames) {
		return shapeNames[s]
	}
	return fmt.Sprintf("Shape(%d)", uint8(s))
}

// ParseShape parses the paper's notation for a shape.
func ParseShape(s string) (Shape, error) {
	for i, n := range shapeNames {
		if n == s {
			return Shape(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown pattern shape %q", s)
}

// AllShapes lists the eight shapes in the paper's order.
func AllShapes() []Shape {
	out := make([]Shape, NumShapes)
	for i := range out {
		out[i] = Shape(i)
	}
	return out
}

// Shape returns the classification of p.
func (p Pattern) Shape() Shape {
	s, pr, o := p.S != Wildcard, p.P != Wildcard, p.O != Wildcard
	switch {
	case s && pr && o:
		return ShapeSPO
	case s && pr:
		return ShapeSPx
	case s && o:
		return ShapeSxO
	case s:
		return ShapeSxx
	case pr && o:
		return ShapexPO
	case pr:
		return ShapexPx
	case o:
		return ShapexxO
	}
	return Shapexxx
}

// WithWildcards returns the pattern obtained from t by replacing the
// components named by shape's wildcards, e.g. ShapeSxO keeps S and O.
func WithWildcards(t Triple, shape Shape) Pattern {
	p := PatternOf(t)
	switch shape {
	case ShapeSPx:
		p.O = Wildcard
	case ShapeSxO:
		p.P = Wildcard
	case ShapeSxx:
		p.P, p.O = Wildcard, Wildcard
	case ShapexPO:
		p.S = Wildcard
	case ShapexPx:
		p.S, p.O = Wildcard, Wildcard
	case ShapexxO:
		p.S, p.P = Wildcard, Wildcard
	case Shapexxx:
		p.S, p.P, p.O = Wildcard, Wildcard, Wildcard
	}
	return p
}
