package core

import (
	"fmt"
	"io"

	"rdfindexes/internal/codec"
)

// indexMagic identifies serialized index files; the trailing digit is the
// format version.
const indexMagic = "RDFIDX1"

// WriteIndex serializes any static index layout to w with a versioned
// header. Dynamic serving snapshots are views, not storage: merge the
// log and serialize the base index instead. Sharded stores have their
// own multi-shard container format in internal/store.
func WriteIndex(w io.Writer, x Index) error {
	if _, ok := x.(*DynamicSnapshot); ok {
		return fmt.Errorf("core: a DynamicSnapshot is not serializable; merge and write the base index")
	}
	enc, ok := x.(encoder)
	if !ok {
		return fmt.Errorf("core: index %T has no single-index serialization", x)
	}
	cw := codec.NewWriter(w)
	cw.String(indexMagic)
	cw.Byte(byte(x.Layout()))
	enc.encode(cw)
	return cw.Flush()
}

// ReadIndex deserializes an index written by WriteIndex, dispatching on
// the stored layout.
func ReadIndex(r io.Reader) (Index, error) { return ReadIndexLimited(r, -1) }

// ReadIndexLimited is ReadIndex with the input size known: decode-time
// allocations are bounded by it (a corrupt length prefix cannot demand
// more bytes than the section holds), and a decoder panic on adversarial
// input is converted into an ErrCorrupt error instead of taking down the
// process — the store loader decodes shard sections in goroutines, so
// this is the last line of defense for every section. size < 0 means
// unknown (no extra bound).
func ReadIndexLimited(r io.Reader, size int64) (x Index, err error) {
	defer func() {
		if p := recover(); p != nil {
			x, err = nil, fmt.Errorf("%w: decoder panic: %v", codec.ErrCorrupt, p)
		}
	}()
	cr := codec.NewReader(r)
	cr.SetAllocLimit(size)
	magic := cr.String()
	if err := cr.Err(); err != nil {
		return nil, err
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("%w: bad magic %q", codec.ErrCorrupt, magic)
	}
	layout := Layout(cr.Byte())
	switch layout {
	case Layout3T:
		x, err = decode3T(cr)
	case LayoutCC:
		x, err = decodeCC(cr)
	case Layout2Tp:
		x, err = decode2Tp(cr)
	case Layout2To:
		x, err = decode2To(cr)
	default:
		return nil, fmt.Errorf("%w: unknown layout %d", codec.ErrCorrupt, layout)
	}
	if err != nil {
		return nil, err
	}
	return x, nil
}

// datasetMagic identifies serialized dataset files.
const datasetMagic = "RDFDAT1"

// WriteDataset serializes a dataset to w.
func WriteDataset(w io.Writer, d *Dataset) error {
	cw := codec.NewWriter(w)
	cw.String(datasetMagic)
	cw.Uvarint(uint64(d.NS))
	cw.Uvarint(uint64(d.NP))
	cw.Uvarint(uint64(d.NO))
	cw.Uvarint(uint64(len(d.Triples)))
	// Delta-encode the sorted triples for a compact on-disk form.
	var prev Triple
	for _, t := range d.Triples {
		if t.S != prev.S {
			cw.Uvarint(uint64(t.S-prev.S)<<1 | 1)
			cw.Uvarint(uint64(t.P))
		} else if t.P != prev.P {
			cw.Uvarint(0 << 1)
			cw.Uvarint(uint64(t.P - prev.P))
		} else {
			cw.Uvarint(0)
			cw.Uvarint(0)
		}
		cw.Uvarint(uint64(t.O))
		prev = t
	}
	return cw.Flush()
}

// ReadDataset deserializes a dataset written by WriteDataset.
func ReadDataset(r io.Reader) (*Dataset, error) {
	cr := codec.NewReader(r)
	if magic := cr.String(); magic != datasetMagic {
		if err := cr.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: bad dataset magic", codec.ErrCorrupt)
	}
	d := &Dataset{}
	d.NS = int(cr.Uvarint())
	d.NP = int(cr.Uvarint())
	d.NO = int(cr.Uvarint())
	n := int(cr.Uvarint())
	if err := cr.Err(); err != nil {
		return nil, err
	}
	d.Triples = make([]Triple, 0, n)
	var prev Triple
	for i := 0; i < n; i++ {
		sTag := cr.Uvarint()
		p := cr.Uvarint()
		o := cr.Uvarint()
		if err := cr.Err(); err != nil {
			return nil, err
		}
		t := prev
		if sTag&1 == 1 {
			t.S = prev.S + ID(sTag>>1)
			t.P = ID(p)
		} else {
			t.P = prev.P + ID(p)
		}
		t.O = ID(o)
		d.Triples = append(d.Triples, t)
		prev = t
	}
	return d, nil
}

// Build constructs an index of the requested layout.
func Build(d *Dataset, layout Layout, opts ...Option) (Index, error) {
	switch layout {
	case Layout3T:
		return Build3T(d, opts...)
	case LayoutCC:
		return BuildCC(d, opts...)
	case Layout2Tp:
		return Build2Tp(d, opts...)
	case Layout2To:
		return Build2To(d, opts...)
	}
	return nil, fmt.Errorf("core: unknown layout %d", layout)
}
