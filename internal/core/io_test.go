package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDatasetRoundTripQuick(t *testing.T) {
	f := func(raw []uint32, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ts := make([]Triple, 0, len(raw))
		for _, v := range raw {
			ts = append(ts, Triple{
				S: ID(v % 97), P: ID(v / 97 % 13), O: ID(rng.Intn(1000)),
			})
		}
		d := NewDataset(ts)
		var buf bytes.Buffer
		if err := WriteDataset(&buf, d); err != nil {
			return false
		}
		got, err := ReadDataset(&buf)
		if err != nil {
			return false
		}
		if got.Len() != d.Len() || got.NS != d.NS || got.NP != d.NP || got.NO != d.NO {
			return false
		}
		for i := range d.Triples {
			if d.Triples[i] != got.Triples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReadDatasetRejectsJunk(t *testing.T) {
	if _, err := ReadDataset(bytes.NewReader([]byte("garbage data here"))); err == nil {
		t.Fatal("ReadDataset accepted junk")
	}
	// Truncated stream after a valid header.
	var buf bytes.Buffer
	d := NewDataset([]Triple{{1, 2, 3}, {4, 5, 6}})
	if err := WriteDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	half := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadDataset(bytes.NewReader(half)); err == nil {
		t.Fatal("ReadDataset accepted a truncated stream")
	}
}

func TestWriteIndexDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(283))
	d := skewedDataset(rng, 1500)
	x1, err := Build2Tp(d)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := Build2Tp(d)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := WriteIndex(&b1, x1); err != nil {
		t.Fatal(err)
	}
	if err := WriteIndex(&b2, x2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two builds over the same dataset serialized differently")
	}
}

func TestIndexBytesOnDiskMatchSizeBits(t *testing.T) {
	// SizeBits is an in-memory accounting; the serialized form must stay
	// within a reasonable factor of it (directories are rebuilt on load,
	// so the file can be smaller).
	rng := rand.New(rand.NewSource(293))
	d := skewedDataset(rng, 8000)
	for name, x := range allLayouts(t, d) {
		var buf bytes.Buffer
		if err := WriteIndex(&buf, x); err != nil {
			t.Fatal(err)
		}
		fileBits := uint64(buf.Len()) * 8
		if fileBits > x.SizeBits()*2 || x.SizeBits() > fileBits*3 {
			t.Errorf("%s: file %d bits vs SizeBits %d: accounting off", name, fileBits, x.SizeBits())
		}
	}
}
