package core

import (
	"rdfindexes/internal/codec"
	"rdfindexes/internal/trie"
)

// Index2Tp is the predicate-based two-trie layout of Section 3.3: SPO and
// POS. Five patterns resolve on SPO (including S?O via the enumerate
// algorithm of Fig. 5), ?PO and ?P? on POS, and ??O with the inverted
// algorithm (|P| finds on POS's second level).
type Index2Tp struct {
	spo, pos *trie.Trie
}

// Build2Tp constructs the 2Tp index.
func Build2Tp(d *Dataset, opts ...Option) (*Index2Tp, error) {
	o := buildOptions(opts)
	scratch := make([]Triple, len(d.Triples))
	spo, err := buildTrie(d, scratch, PermSPO, o.trieConfig(PermSPO))
	if err != nil {
		return nil, err
	}
	pos, err := buildTrie(d, scratch, PermPOS, o.trieConfig(PermPOS))
	if err != nil {
		return nil, err
	}
	return &Index2Tp{spo: spo, pos: pos}, nil
}

// Layout returns Layout2Tp.
func (x *Index2Tp) Layout() Layout { return Layout2Tp }

// NumTriples returns the number of indexed triples.
func (x *Index2Tp) NumTriples() int { return x.spo.NumTriples() }

// SizeBits returns the total storage footprint in bits.
func (x *Index2Tp) SizeBits() uint64 { return x.spo.SizeBits() + x.pos.SizeBits() }

// Trie exposes the materialized permutations.
func (x *Index2Tp) Trie(p Perm) *trie.Trie {
	switch p {
	case PermSPO:
		return x.spo
	case PermPOS:
		return x.pos
	}
	return nil
}

// Select resolves a pattern per the 2Tp dispatch of Section 3.3.
func (x *Index2Tp) Select(p Pattern) *Iterator { return x.SelectCtx(p, nil) }

// SelectCtx resolves a pattern like Select, drawing per-query scratch
// from c (which may be nil).
func (x *Index2Tp) SelectCtx(p Pattern, c *QueryCtx) *Iterator {
	switch p.Shape() {
	case ShapeSPO:
		return lookupSPO(c, x.spo, PermSPO, Triple{p.S, p.P, p.O})
	case ShapeSPx:
		return selectTwo(c, x.spo, PermSPO, p.S, p.P)
	case ShapeSxx:
		return selectOne(c, x.spo, PermSPO, p.S)
	case ShapeSxO:
		return enumerate(c, x.spo, p.S, p.O)
	case ShapexPO:
		return selectTwo(c, x.pos, PermPOS, p.P, p.O)
	case ShapexPx:
		return selectOne(c, x.pos, PermPOS, p.P)
	case ShapexxO:
		return invertedOnPOS(c, x.pos, p.O)
	default:
		return scanAll(c, x.spo, PermSPO)
	}
}

// SelectObjectRange resolves ?P? with the object constrained to [lo, hi]
// on the POS trie (the range-query experiment of Section 4.1).
func (x *Index2Tp) SelectObjectRange(p ID, lo, hi ID) *Iterator {
	return selectObjectRangeOnPOS(x.pos, p, lo, hi)
}

func (x *Index2Tp) encode(w *codec.Writer) {
	x.spo.Encode(w)
	x.pos.Encode(w)
}

func decode2Tp(r *codec.Reader) (*Index2Tp, error) {
	x := &Index2Tp{}
	var err error
	if x.spo, err = trie.Decode(r); err != nil {
		return nil, err
	}
	if x.pos, err = trie.Decode(r); err != nil {
		return nil, err
	}
	return x, nil
}

// Index2To is the object-based two-trie layout of Section 3.3: SPO and
// OPS, plus the two-level PS structure mapping each predicate to its
// subjects. ?PO and ??O resolve on OPS; ?P? uses the inverted algorithm
// over PS and SPO.
type Index2To struct {
	spo, ops *trie.Trie
	ps       *PS
}

// Build2To constructs the 2To index.
func Build2To(d *Dataset, opts ...Option) (*Index2To, error) {
	o := buildOptions(opts)
	scratch := make([]Triple, len(d.Triples))
	spo, err := buildTrie(d, scratch, PermSPO, o.trieConfig(PermSPO))
	if err != nil {
		return nil, err
	}
	ops, err := buildTrie(d, scratch, PermOPS, o.trieConfig(PermOPS))
	if err != nil {
		return nil, err
	}
	ps := buildPS(d, scratch)
	return &Index2To{spo: spo, ops: ops, ps: ps}, nil
}

// Layout returns Layout2To.
func (x *Index2To) Layout() Layout { return Layout2To }

// NumTriples returns the number of indexed triples.
func (x *Index2To) NumTriples() int { return x.spo.NumTriples() }

// SizeBits returns the total storage footprint in bits.
func (x *Index2To) SizeBits() uint64 {
	return x.spo.SizeBits() + x.ops.SizeBits() + x.ps.SizeBits()
}

// Trie exposes the materialized permutations.
func (x *Index2To) Trie(p Perm) *trie.Trie {
	switch p {
	case PermSPO:
		return x.spo
	case PermOPS:
		return x.ops
	}
	return nil
}

// PSStructure exposes the predicate-to-subjects structure.
func (x *Index2To) PSStructure() *PS { return x.ps }

// Select resolves a pattern per the 2To dispatch of Section 3.3.
func (x *Index2To) Select(p Pattern) *Iterator { return x.SelectCtx(p, nil) }

// SelectCtx resolves a pattern like Select, drawing per-query scratch
// from c (which may be nil).
func (x *Index2To) SelectCtx(p Pattern, c *QueryCtx) *Iterator {
	switch p.Shape() {
	case ShapeSPO:
		return lookupSPO(c, x.spo, PermSPO, Triple{p.S, p.P, p.O})
	case ShapeSPx:
		return selectTwo(c, x.spo, PermSPO, p.S, p.P)
	case ShapeSxx:
		return selectOne(c, x.spo, PermSPO, p.S)
	case ShapeSxO:
		return enumerate(c, x.spo, p.S, p.O)
	case ShapexPO:
		return selectTwo(c, x.ops, PermOPS, p.O, p.P)
	case ShapexPx:
		return invertedOnPS(c, x.ps, x.spo, p.P)
	case ShapexxO:
		return selectOne(c, x.ops, PermOPS, p.O)
	default:
		return scanAll(c, x.spo, PermSPO)
	}
}

func (x *Index2To) encode(w *codec.Writer) {
	x.spo.Encode(w)
	x.ops.Encode(w)
	x.ps.encode(w)
}

func decode2To(r *codec.Reader) (*Index2To, error) {
	x := &Index2To{}
	var err error
	if x.spo, err = trie.Decode(r); err != nil {
		return nil, err
	}
	if x.ops, err = trie.Decode(r); err != nil {
		return nil, err
	}
	if x.ps, err = decodePS(r); err != nil {
		return nil, err
	}
	return x, nil
}
