package codec

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uint64(math.MaxUint64)
	w.Uint32(12345)
	w.Byte(7)
	w.Uvarint(300)
	w.Uint64s([]uint64{1, 2, 3})
	w.Uint32s([]uint32{9, 8})
	w.Bytes([]byte("hello"))
	w.String("world")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	if got := r.Uint64(); got != math.MaxUint64 {
		t.Fatalf("Uint64 = %d", got)
	}
	if got := r.Uint32(); got != 12345 {
		t.Fatalf("Uint32 = %d", got)
	}
	if got := r.Byte(); got != 7 {
		t.Fatalf("Byte = %d", got)
	}
	if got := r.Uvarint(); got != 300 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := r.Uint64s(); len(got) != 3 || got[2] != 3 {
		t.Fatalf("Uint64s = %v", got)
	}
	if got := r.Uint32s(); len(got) != 2 || got[0] != 9 {
		t.Fatalf("Uint32s = %v", got)
	}
	if got := r.BytesBuf(); string(got) != "hello" {
		t.Fatalf("BytesBuf = %q", got)
	}
	if got := r.String(); got != "world" {
		t.Fatalf("String = %q", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestUvarintQuick(t *testing.T) {
	f := func(vals []uint64) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, v := range vals {
			w.Uvarint(v)
		}
		if w.Flush() != nil {
			return false
		}
		r := NewReader(&buf)
		for _, v := range vals {
			if r.Uvarint() != v {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReaderTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uint64(42)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:4] // cut mid-value
	r := NewReader(bytes.NewReader(data))
	r.Uint64()
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("truncated read produced %v, want ErrCorrupt", r.Err())
	}
	// Error is sticky: further reads stay failed and return zero values.
	if got := r.Uint64(); got != 0 {
		t.Fatalf("read after error = %d, want 0", got)
	}
}

func TestHugeLengthPrefixRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uvarint(1 << 60) // absurd element count
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if got := r.Uint64s(); got != nil || r.Err() == nil {
		t.Fatal("oversized slice length was not rejected")
	}
}

func TestWriterWritten(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uint64(1)
	w.Byte(2)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Written() != 9 {
		t.Fatalf("Written = %d, want 9", w.Written())
	}
}
